// Package rhhh implements Randomized Hierarchical Heavy Hitters (RHHH) from
// "Constant Time Updates in Hierarchical Heavy Hitters" (Ben Basat, Einziger,
// Friedman, Luizelli, Waisbard — SIGCOMM 2017), along with the deterministic
// algorithms it was evaluated against.
//
// A hierarchical heavy hitter (HHH) is an IP prefix — such as 181.7.0.0/16,
// or the source/destination pair (181.7.0.0/16 → 10.0.0.0/8) — responsible
// for more than a θ fraction of traffic that is not already accounted for by
// more specific heavy prefixes. RHHH finds approximate HHHs with O(1) worst
// case work per packet: instead of updating every level of the prefix
// hierarchy (H of them), each packet updates at most one randomly chosen
// level.
//
// Basic use:
//
//	m, err := rhhh.New(rhhh.Config{
//		Dims:        2,
//		Granularity: rhhh.Byte,
//		Epsilon:     0.001,
//		Delta:       0.001,
//	})
//	...
//	for each packet { m.Update(srcAddr, dstAddr) }
//	for _, hh := range m.HeavyHitters(0.01) { fmt.Println(hh) }
//
// The probabilistic guarantees hold once N ≥ Psi() packets have been
// processed (Theorem 6.17); Converged() reports that. Setting V to a
// multiple of the hierarchy size trades convergence speed for per-packet
// cost ("10-RHHH" in the paper is V = 10·H).
package rhhh

import (
	"errors"
	"fmt"
	"math"
	"net/netip"

	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
	"rhhh/internal/telemetry"
)

// Granularity is the prefix step of the hierarchy.
type Granularity int

// Byte gives the paper's byte-level hierarchies (H=5 for 1D IPv4); Nibble
// and Bit refine them (H=33 for 1D IPv4 bits — where RHHH's O(1) update
// shines).
const (
	Byte Granularity = iota
	Nibble
	Bit
)

func (g Granularity) hier() hierarchy.Granularity {
	switch g {
	case Byte:
		return hierarchy.Bytes
	case Nibble:
		return hierarchy.Nibbles
	case Bit:
		return hierarchy.Bits
	default:
		panic(fmt.Sprintf("rhhh: unknown granularity %d", int(g)))
	}
}

// Algorithm selects the measurement algorithm.
type Algorithm int

// RHHH is the paper's O(1) randomized algorithm (default). MST is the
// deterministic O(H) baseline of Mitzenmacher–Steinke–Thaler; FullAncestry
// and PartialAncestry are the trie baselines of Cormode et al. The baselines
// exist for comparison and for deployments that cannot tolerate the
// convergence period.
const (
	RHHH Algorithm = iota
	MST
	FullAncestry
	PartialAncestry
)

func (a Algorithm) String() string {
	switch a {
	case RHHH:
		return "RHHH"
	case MST:
		return "MST"
	case FullAncestry:
		return "full-ancestry"
	case PartialAncestry:
		return "partial-ancestry"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Backend selects the per-lattice-node counter structure of the RHHH
// engine (ignored by the deterministic algorithms).
type Backend int

// StreamSummary is the paper's Space Saving Stream-Summary (default):
// deterministic over-estimates with the Definition 4 (ε, δ) guarantee, O(1)
// updates through a bucket list. CuckooHeavyKeeper stores counters directly
// in a cuckoo table with exponential-decay eviction (after "Cuckoo Heavy
// Keeper", arXiv 2412.12873): no bucket list and a cheaper eviction path,
// at the price of probabilistic under-estimates — heavy-hitter recall is
// empirical rather than guaranteed (see internal/chk). HeapSpaceSaving is
// the O(log c) heap variant of Space Saving; it supports neither snapshots
// nor Watch (Monitor.Snapshot panics, Watch errors).
const (
	StreamSummary Backend = iota
	CuckooHeavyKeeper
	HeapSpaceSaving
)

func (b Backend) String() string {
	switch b {
	case StreamSummary:
		return "stream-summary"
	case CuckooHeavyKeeper:
		return "chk"
	case HeapSpaceSaving:
		return "heap"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// Config parameterizes a Monitor. Zero values get sensible defaults where a
// default exists; Epsilon and Delta must be set explicitly (for RHHH) since
// they determine memory and convergence.
type Config struct {
	// Dims is 1 (source hierarchy) or 2 (source × destination).
	Dims int
	// Granularity is the hierarchy step (default Byte).
	Granularity Granularity
	// IPv6 selects 128-bit hierarchies.
	IPv6 bool
	// Epsilon is the frequency estimation error bound ε ∈ (0,1); memory is
	// proportional to H/ε.
	Epsilon float64
	// Delta is the failure probability δ ∈ (0,1) of the probabilistic
	// guarantees (ignored by the deterministic algorithms).
	Delta float64
	// V is RHHH's performance parameter (0 → H; larger is faster but
	// converges proportionally slower). Ignored by other algorithms.
	V int
	// R is the number of independent RHHH updates per packet
	// (Corollary 6.8; 0 → 1).
	R int
	// Seed makes RHHH's randomized update path reproducible.
	Seed uint64
	// Algorithm selects the implementation (default RHHH).
	Algorithm Algorithm
	// Backend selects the RHHH engine's counter structure (default
	// StreamSummary; see Backend).
	Backend Backend
}

// HeavyHitter is one reported prefix.
type HeavyHitter struct {
	// Src is the source prefix; Dst is only valid when Dims == 2.
	Src netip.Prefix
	Dst netip.Prefix
	// Text is the paper-style rendering, e.g. "181.7.*" or
	// "(181.7.* -> 10.0.0.1)".
	Text string
	// Lower and Upper bound the prefix's frequency (f̂−, f̂+).
	Lower, Upper float64
	// Cond is the conservative conditioned-frequency estimate that
	// admitted the prefix (Ĉp|P ≥ θ·N).
	Cond float64
	// Level is the generalization distance from fully specified addresses
	// (0 = exact address/pair).
	Level int
}

// String renders the heavy hitter in paper style with its bounds.
func (h HeavyHitter) String() string {
	return fmt.Sprintf("%s [%.0f, %.0f]", h.Text, h.Lower, h.Upper)
}

// Monitor finds hierarchical heavy hitters over a packet stream. It is not
// safe for concurrent use; shard streams across Monitors or serialize
// externally.
type Monitor struct {
	impl monImpl
	cfg  Config
}

// monImpl abstracts over the four key types × four algorithms.
type monImpl interface {
	update(src, dst hierarchy.Addr, w uint64)
	updateBatch(srcs, dsts []netip.Addr)
	updateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64)
	output(theta float64) []HeavyHitter
	n() uint64
	psi() float64
	reset()
	reseed(seed uint64)
	snapshotInto(dst *Snapshot) *Snapshot
	loadSnapshot(sc snapCore) error
	size() int
	vParam() int
	watch(opts WatchOptions) (*Subscription, error)
	tickWatch()
	instrument(reg *telemetry.Registry) error
}

// New validates cfg and builds a Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Dims != 1 && cfg.Dims != 2 {
		return nil, fmt.Errorf("rhhh: Dims must be 1 or 2, got %d", cfg.Dims)
	}
	if !(cfg.Epsilon > 0 && cfg.Epsilon < 1) {
		return nil, errors.New("rhhh: Epsilon must be in (0, 1)")
	}
	if cfg.Algorithm == RHHH && !(cfg.Delta > 0 && cfg.Delta < 1) {
		return nil, errors.New("rhhh: Delta must be in (0, 1) for RHHH")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.01 // only used by RHHH; harmless default elsewhere
	}
	switch cfg.Granularity {
	case Byte, Nibble, Bit:
	default:
		return nil, fmt.Errorf("rhhh: unknown granularity %d", int(cfg.Granularity))
	}
	switch cfg.Algorithm {
	case RHHH, MST, FullAncestry, PartialAncestry:
	default:
		return nil, fmt.Errorf("rhhh: unknown algorithm %d", int(cfg.Algorithm))
	}

	var impl monImpl
	var err error
	switch {
	case cfg.Dims == 1 && !cfg.IPv6:
		dom := hierarchy.NewIPv4OneDim(cfg.Granularity.hier())
		impl, err = build(cfg, dom,
			func(src, _ hierarchy.Addr) uint32 { return src.IPv4() },
			split1v4)
	case cfg.Dims == 2 && !cfg.IPv6:
		dom := hierarchy.NewIPv4TwoDim(cfg.Granularity.hier())
		impl, err = build(cfg, dom,
			func(src, dst hierarchy.Addr) uint64 {
				return hierarchy.Pack2D(src.IPv4(), dst.IPv4())
			},
			split2v4)
	case cfg.Dims == 1 && cfg.IPv6:
		dom := hierarchy.NewIPv6OneDim(cfg.Granularity.hier())
		impl, err = build(cfg, dom,
			func(src, _ hierarchy.Addr) hierarchy.Addr { return src },
			split1v6)
	default:
		dom := hierarchy.NewIPv6TwoDim(cfg.Granularity.hier())
		impl, err = build(cfg, dom,
			func(src, dst hierarchy.Addr) hierarchy.AddrPair {
				return hierarchy.AddrPair{Src: src, Dst: dst}
			},
			split2v6)
	}
	if err != nil {
		return nil, err
	}
	return &Monitor{impl: impl, cfg: cfg}, nil
}

// MustNew is New, panicking on error — convenient in examples and tests.
func MustNew(cfg Config) *Monitor {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Update records one packet. For Dims == 1 dst is ignored (pass the zero
// netip.Addr). Addresses of the wrong family are a programming error and
// panic.
func (m *Monitor) Update(src, dst netip.Addr) {
	m.impl.update(toAddr(src, m.cfg.IPv6), toAddr(dst, m.cfg.IPv6), 1)
}

// UpdateWeighted records one packet carrying weight w (e.g. its byte count).
func (m *Monitor) UpdateWeighted(src, dst netip.Addr, w uint64) {
	m.impl.update(toAddr(src, m.cfg.IPv6), toAddr(dst, m.cfg.IPv6), w)
}

// UpdateBatch records a batch of packets in one call — the DPDK-style unit
// of work. For Dims == 1 pass dsts == nil; otherwise dsts must be the same
// length as srcs. Results are identical to updating each packet in order;
// the RHHH engine amortizes per-call overhead and, when V > H, skips over
// non-sampled packets in bulk.
func (m *Monitor) UpdateBatch(srcs, dsts []netip.Addr) {
	if dsts == nil {
		if m.cfg.Dims == 2 {
			panic("rhhh: UpdateBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateBatch srcs/dsts length mismatch")
	}
	m.impl.updateBatch(srcs, dsts)
}

// UpdateWeightedBatch records a batch of packets carrying per-packet weights
// (e.g. byte counts) in one call. For Dims == 1 pass dsts == nil; dsts (when
// given) and ws must be the same length as srcs. Results are identical to
// updating each (packet, weight) pair through UpdateWeighted in order; the
// RHHH engine applies the batch's samples node-grouped through its pipelined
// update kernel.
func (m *Monitor) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	if dsts == nil {
		if m.cfg.Dims == 2 {
			panic("rhhh: UpdateWeightedBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/dsts length mismatch")
	}
	if len(ws) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/weights length mismatch")
	}
	m.impl.updateWeightedBatch(srcs, dsts, ws)
}

// HeavyHitters returns the approximate HHH set for threshold θ ∈ (0, 1]:
// every prefix whose conditioned frequency estimate reaches θ·N. The
// guarantees of Definition 10 (accuracy within εN, coverage with
// probability 1−δ) hold once Converged().
//
// The returned slice is the monitor's reusable query buffer: treat it as
// read-only, valid until the monitor's next HeavyHitters call — copy it
// (e.g. with slices.Clone) to retain or reorder results.
func (m *Monitor) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	return m.impl.output(theta)
}

// N returns the total stream weight processed.
func (m *Monitor) N() uint64 { return m.impl.n() }

// Psi returns the convergence bound ψ: the minimum number of packets before
// the probabilistic guarantees hold (0 for deterministic algorithms).
func (m *Monitor) Psi() float64 { return m.impl.psi() }

// Converged reports whether N ≥ ψ.
func (m *Monitor) Converged() bool { return float64(m.impl.n()) >= m.impl.psi() }

// H returns the hierarchy size (number of lattice nodes).
func (m *Monitor) H() int { return m.impl.size() }

// V returns the performance parameter in effect (H for non-RHHH
// algorithms).
func (m *Monitor) V() int { return m.impl.vParam() }

// Algorithm returns the configured algorithm.
func (m *Monitor) Algorithm() Algorithm { return m.cfg.Algorithm }

// Reset clears all measurement state, keeping the configuration.
func (m *Monitor) Reset() { m.impl.reset() }

// Instrument registers the monitor's telemetry (engine counters, backend
// occupancy, standing-query stats) with reg. The update path publishes its
// counters every telemetryPublishPackets packets — the uninstrumented cost
// is one predictable branch per update. Call it before feeding traffic; the
// monitor is single-threaded, so the hookup shares its owner's ordering.
// Only the RHHH algorithm is instrumentable. A nil reg is a no-op.
func (m *Monitor) Instrument(reg *telemetry.Registry) error {
	if reg == nil {
		return nil
	}
	return m.impl.instrument(reg)
}

// toAddr converts a netip.Addr to the internal 128-bit form, validating the
// family. The zero Addr maps to the zero value (used for the ignored
// dimension).
func toAddr(a netip.Addr, v6 bool) hierarchy.Addr {
	if a == (netip.Addr{}) {
		return hierarchy.Addr{}
	}
	if v6 {
		if a.Is4() {
			panic("rhhh: IPv4 address given to an IPv6 monitor")
		}
		return hierarchy.AddrFrom16(a.As16())
	}
	if !a.Is4() && !a.Is4In6() {
		panic("rhhh: IPv6 address given to an IPv4 monitor")
	}
	b := a.As4()
	return hierarchy.AddrFromIPv4(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// algorithmIface is the common surface of the four implementations.
type algorithmIface[K comparable] interface {
	Update(K)
	UpdateWeighted(K, uint64)
	Output(float64) []core.Result[K]
	Reset()
}

// impl ties a domain, a key extractor, a per-dimension splitter and an
// algorithm together.
type impl[K comparable] struct {
	dom     *hierarchy.Domain[K]
	key     func(src, dst hierarchy.Addr) K
	split   func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix)
	alg     algorithmIface[K]
	batch   func([]K)           // alg's native batched update, when it has one
	batchW  func([]K, []uint64) // alg's native weighted batched update
	keyBuf  []K                 // scratch for updateBatch conversions
	conv    converter[K]
	v6      bool
	psiV    float64
	packets uint64
	vp      int

	// Standing-query state, created by the first Watch: the hub holds the
	// subscriptions, hubSnap is the reused capture buffer its ticks read.
	hub     *watchHub[K]
	hubSnap core.EngineSnapshot[K]

	// Telemetry state installed by instrument (tm nil when uninstrumented):
	// the update path republishes the engine block when packets reaches
	// tmNext, amortizing the O(H) backend walk over the publish interval.
	tm      *telemetry.EngineStats
	tmEng   *core.Engine[K]
	tmNext  uint64
	tmEvery uint64
	watchTM *telemetry.WatchStats
}

// telemetryPublishPackets is the monitor-level telemetry publish cadence.
const telemetryPublishPackets = 4096

func (im *impl[K]) instrument(reg *telemetry.Registry) error {
	eng, ok := im.alg.(*core.Engine[K])
	if !ok {
		return errors.New("rhhh: telemetry requires the RHHH algorithm")
	}
	im.tm = &telemetry.EngineStats{}
	im.tm.Register(reg, "")
	im.tmEng = eng
	im.tmEvery = telemetryPublishPackets
	im.tmNext = im.packets + im.tmEvery
	eng.TelemetryInto(im.tm)
	im.watchTM = &telemetry.WatchStats{}
	im.watchTM.Register(reg, "")
	if im.hub != nil {
		im.hub.instrument(im.watchTM)
	}
	return nil
}

// publishTelemetry refreshes the engine block and re-arms the watermark.
func (im *impl[K]) publishTelemetry() {
	im.tmEng.TelemetryInto(im.tm)
	im.tmNext = im.packets + im.tmEvery
}

// watch lazily builds the monitor-level hub (capture = engine snapshot into
// the reused buffer, so unchanged ticks skip the copy) and registers opts.
func (im *impl[K]) watch(opts WatchOptions) (*Subscription, error) {
	if im.hub == nil {
		eng, ok := im.alg.(*core.Engine[K])
		if !ok {
			return nil, errors.New("rhhh: Watch requires the RHHH algorithm")
		}
		if !eng.Snapshottable() {
			return nil, errors.New("rhhh: Watch requires a snapshot-capable backend (StreamSummary or CuckooHeavyKeeper)")
		}
		im.hub = newWatchHub(im.dom, im.split, im.v6, func() *core.EngineSnapshot[K] {
			return eng.SnapshotInto(&im.hubSnap)
		})
		if im.watchTM != nil {
			im.hub.instrument(im.watchTM)
		}
	}
	return im.hub.register(opts)
}

func (im *impl[K]) tickWatch() {
	if im.hub != nil {
		im.hub.tick()
	}
}

func build[K comparable](
	cfg Config,
	dom *hierarchy.Domain[K],
	key func(src, dst hierarchy.Addr) K,
	split func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix),
) (monImpl, error) {
	im := &impl[K]{dom: dom, key: key, split: split, vp: dom.Size(), v6: cfg.IPv6}
	switch cfg.Algorithm {
	case RHHH:
		v := cfg.V
		if v == 0 {
			v = dom.Size()
		}
		if v < dom.Size() {
			return nil, fmt.Errorf("rhhh: V=%d below hierarchy size H=%d", cfg.V, dom.Size())
		}
		var backend core.Backend
		switch cfg.Backend {
		case StreamSummary:
			backend = core.SpaceSavingBackend
		case CuckooHeavyKeeper:
			backend = core.CHKBackend
		case HeapSpaceSaving:
			backend = core.HeapBackend
		default:
			return nil, fmt.Errorf("rhhh: unknown backend %d", int(cfg.Backend))
		}
		eng := core.New(dom, core.Config{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			V: v, R: cfg.R, Seed: cfg.Seed, Backend: backend,
		})
		im.alg = eng
		im.psiV = eng.Psi()
		im.vp = v
	case MST:
		im.alg = mst.New(dom, cfg.Epsilon)
	case FullAncestry:
		im.alg = ancestry.New(dom, cfg.Epsilon, ancestry.Full)
	case PartialAncestry:
		im.alg = ancestry.New(dom, cfg.Epsilon, ancestry.Partial)
	}
	if ub, ok := im.alg.(interface{ UpdateBatch([]K) }); ok {
		im.batch = ub.UpdateBatch
	}
	if uw, ok := im.alg.(interface{ UpdateWeightedBatch([]K, []uint64) }); ok {
		im.batchW = uw.UpdateWeightedBatch
	}
	return im, nil
}

func (im *impl[K]) update(src, dst hierarchy.Addr, w uint64) {
	im.packets++
	k := im.key(src, dst)
	if w == 1 {
		im.alg.Update(k)
	} else {
		im.alg.UpdateWeighted(k, w)
	}
	if im.tm != nil && im.packets >= im.tmNext {
		im.publishTelemetry()
	}
}

func (im *impl[K]) updateBatch(srcs, dsts []netip.Addr) {
	buf := im.keyBuf[:0]
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		buf = append(buf, im.key(toAddr(src, im.v6), toAddr(dst, im.v6)))
	}
	im.keyBuf = buf
	im.packets += uint64(len(buf))
	if im.batch != nil {
		im.batch(buf)
	} else {
		for _, k := range buf {
			im.alg.Update(k)
		}
	}
	if im.tm != nil && im.packets >= im.tmNext {
		im.publishTelemetry()
	}
}

func (im *impl[K]) updateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	buf := im.keyBuf[:0]
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		buf = append(buf, im.key(toAddr(src, im.v6), toAddr(dst, im.v6)))
	}
	im.keyBuf = buf
	im.packets += uint64(len(buf))
	if im.batchW != nil {
		im.batchW(buf, ws)
	} else {
		for i, k := range buf {
			im.alg.UpdateWeighted(k, ws[i])
		}
	}
	if im.tm != nil && im.packets >= im.tmNext {
		im.publishTelemetry()
	}
}

func (im *impl[K]) output(theta float64) []HeavyHitter {
	return im.conv.convert(im.dom, im.split, im.alg.Output(theta))
}

// textKey identifies one rendered prefix in a converter's string cache.
type textKey[K comparable] struct {
	node int32
	key  K
}

// converter renders engine results into the public HeavyHitter shape on a
// reused buffer, caching the formatted prefix texts across queries — the
// last allocating stage of the warm query path. The returned slice is owned
// by the converter and valid until its next use.
type converter[K comparable] struct {
	buf   []HeavyHitter
	texts map[textKey[K]]string
	dom   *hierarchy.Domain[K] // the cache's domain; a switch resets it
}

// convTextCacheMax bounds the rendered-text cache: when prefixes churn past
// this many distinct (node, key) entries the cache is dropped and rebuilt
// from the live result set, so a long-running monitor cannot leak formatted
// strings indefinitely while steady-state queries stay allocation-free.
const convTextCacheMax = 1 << 14

func (c *converter[K]) convert(
	dom *hierarchy.Domain[K],
	split func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix),
	rs []core.Result[K],
) []HeavyHitter {
	if c.texts == nil || c.dom != dom {
		c.texts = make(map[textKey[K]]string)
		c.dom = dom
	}
	if len(c.texts) > convTextCacheMax && len(c.texts) > 4*len(rs) {
		clear(c.texts)
	}
	c.buf = c.buf[:0]
	for _, r := range rs {
		node := dom.Node(r.Node)
		tk := textKey[K]{node: int32(r.Node), key: r.Key}
		text, ok := c.texts[tk]
		if !ok {
			text = dom.Format(r.Key, r.Node)
			c.texts[tk] = text
		}
		srcP, dstP := split(r.Key, node.SrcBits, node.DstBits)
		c.buf = append(c.buf, HeavyHitter{
			Src:   srcP,
			Dst:   dstP,
			Text:  text,
			Lower: r.Lower,
			Upper: r.Upper,
			Cond:  r.Cond,
			Level: node.Level,
		})
	}
	return c.buf
}

// snapshotInto captures the engine state into dst (see Monitor.Snapshot).
func (im *impl[K]) snapshotInto(dst *Snapshot) *Snapshot {
	eng, ok := im.alg.(*core.Engine[K])
	if !ok {
		panic("rhhh: snapshots require the RHHH algorithm")
	}
	if dst == nil {
		dst = &Snapshot{}
	}
	st, ok := dst.impl.(*snapState[K])
	if !ok {
		st = &snapState[K]{}
		dst.impl = st
	}
	// Always re-point dom/split: a reused dst may come from a monitor with
	// the same carrier type but a different lattice.
	st.dom, st.split = im.dom, im.split
	eng.SnapshotInto(&st.es)
	return dst
}

// reseed rewinds the algorithm's RNG when it has one (deterministic
// algorithms are unaffected); with Reset it reproduces a freshly built
// monitor bit for bit.
func (im *impl[K]) reseed(seed uint64) {
	if eng, ok := im.alg.(interface{ Reseed(uint64) }); ok {
		eng.Reseed(seed)
	}
}

// loadSnapshot restores the engine state from a captured snapshot (see
// Monitor.LoadSnapshot).
func (im *impl[K]) loadSnapshot(sc snapCore) error {
	st, ok := sc.(*snapState[K])
	if !ok {
		return errors.New("rhhh: snapshot hierarchy does not match the monitor")
	}
	eng, ok := im.alg.(*core.Engine[K])
	if !ok {
		return errors.New("rhhh: restore requires the RHHH algorithm")
	}
	if err := eng.LoadSnapshot(&st.es); err != nil {
		return fmt.Errorf("rhhh: %w", err)
	}
	im.packets = st.es.Packets
	return nil
}

func (im *impl[K]) n() uint64 {
	if eng, ok := im.alg.(interface{ Weight() uint64 }); ok {
		return eng.Weight()
	}
	if a, ok := im.alg.(interface{ N() uint64 }); ok {
		return a.N()
	}
	return im.packets
}

func (im *impl[K]) psi() float64 { return im.psiV }
func (im *impl[K]) reset()       { im.alg.Reset(); im.packets = 0 }
func (im *impl[K]) size() int    { return im.dom.Size() }
func (im *impl[K]) vParam() int  { return im.vp }

// Per-key-type prefix splitters.

func split1v4(k uint32, srcBits, _ int) (netip.Prefix, netip.Prefix) {
	return v4Prefix(k, srcBits), netip.Prefix{}
}

func split2v4(k uint64, srcBits, dstBits int) (netip.Prefix, netip.Prefix) {
	s, d := hierarchy.Unpack2D(k)
	return v4Prefix(s, srcBits), v4Prefix(d, dstBits)
}

func split1v6(k hierarchy.Addr, srcBits, _ int) (netip.Prefix, netip.Prefix) {
	return v6Prefix(k, srcBits), netip.Prefix{}
}

func split2v6(k hierarchy.AddrPair, srcBits, dstBits int) (netip.Prefix, netip.Prefix) {
	return v6Prefix(k.Src, srcBits), v6Prefix(k.Dst, dstBits)
}

func v4Prefix(v uint32, bits int) netip.Prefix {
	a := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	return netip.PrefixFrom(a, bits)
}

func v6Prefix(a hierarchy.Addr, bits int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom16(a.Bytes16()), bits)
}

// Psi computes the paper's convergence bound ψ = Z(1−δs/2)·V·ε⁻² without
// building a Monitor — useful for sizing measurement intervals (§6.3
// discusses choosing V from the interval length). It uses the same δ split
// as the engine (δa = δs = δ/3).
func Psi(epsilon, delta float64, v int) float64 {
	if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) || v < 1 {
		return math.NaN()
	}
	return stats.Z(delta/6) * float64(v) / (epsilon * epsilon)
}
