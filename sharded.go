package rhhh

import (
	"fmt"
	"net/netip"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// Sharded spreads measurement across several independent RHHH monitors —
// the multi-queue deployment: modern NICs hash flows onto receive queues,
// and one shard per queue/core updates without locks. Queries merge the
// shards' Space Saving state (see core.MergeOutput); the union keeps the
// paper's guarantees with N equal to the combined stream length.
//
// Each shard is single-threaded: give every producing goroutine its own via
// Shard(i). HeavyHitters may run concurrently with updates only if the
// caller externally pauses the shards (merging reads their state).
type Sharded struct {
	cfg      Config
	monitors []*Monitor

	// Per-shard scratch for UpdateBatch routing (single-goroutine use, like
	// Update).
	srcBuf, dstBuf [][]netip.Addr
}

// NewSharded builds n independently seeded shards. Only Algorithm RHHH with
// the default (Space Saving) backend supports merging.
func NewSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("rhhh: need at least one shard, got %d", n)
	}
	if cfg.Algorithm != RHHH {
		return nil, fmt.Errorf("rhhh: sharding requires the RHHH algorithm, got %v", cfg.Algorithm)
	}
	s := &Sharded{cfg: cfg, monitors: make([]*Monitor, n)}
	for i := range s.monitors {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := New(c)
		if err != nil {
			return nil, err
		}
		s.monitors[i] = m
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.monitors) }

// Shard returns shard i's monitor; each goroutine must use its own shard.
func (s *Sharded) Shard(i int) *Monitor { return s.monitors[i] }

// N returns the combined stream weight across shards.
func (s *Sharded) N() uint64 {
	var n uint64
	for _, m := range s.monitors {
		n += m.N()
	}
	return n
}

// Psi returns the convergence bound for the combined stream (identical to a
// single shard's: ψ depends on V and ε, not on how the stream is split).
func (s *Sharded) Psi() float64 { return s.monitors[0].Psi() }

// Converged reports whether the combined N has passed ψ.
func (s *Sharded) Converged() bool { return float64(s.N()) >= s.Psi() }

// HeavyHitters merges all shards and answers the HHH query over the union
// stream. Do not call while shards are concurrently updating.
func (s *Sharded) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	// All shards share the same concrete impl type; dispatch on the first.
	switch im := s.monitors[0].impl.(type) {
	case *impl[uint32]:
		return mergeShards(s, im, theta)
	case *impl[uint64]:
		return mergeShards(s, im, theta)
	case *impl[hierarchy.Addr]:
		return mergeShards(s, im, theta)
	case *impl[hierarchy.AddrPair]:
		return mergeShards(s, im, theta)
	default:
		panic("rhhh: unknown shard implementation")
	}
}

func mergeShards[K comparable](s *Sharded, first *impl[K], theta float64) []HeavyHitter {
	engines := make([]*core.Engine[K], len(s.monitors))
	for i, m := range s.monitors {
		im := m.impl.(*impl[K])
		eng, ok := im.alg.(*core.Engine[K])
		if !ok {
			panic("rhhh: sharding requires the RHHH engine")
		}
		engines[i] = eng
	}
	return first.convert(core.MergeOutput(theta, engines...))
}

// Update is a convenience for single-goroutine use: it routes the packet to
// a shard by address hash. Concurrent producers should call
// Shard(i).Update directly instead.
func (s *Sharded) Update(src, dst netip.Addr) {
	h := hashAddrPair(src, dst)
	s.monitors[h%uint64(len(s.monitors))].Update(src, dst)
}

// UpdateBatch routes a batch of packets to their shards and feeds each
// shard its sub-batch in one call, preserving per-shard arrival order. For
// one-dimensional monitors pass dsts == nil. Single-goroutine use, like
// Update; concurrent producers should call Shard(i).UpdateBatch directly.
func (s *Sharded) UpdateBatch(srcs, dsts []netip.Addr) {
	if dsts == nil {
		if s.cfg.Dims == 2 {
			panic("rhhh: UpdateBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateBatch srcs/dsts length mismatch")
	}
	if s.srcBuf == nil {
		s.srcBuf = make([][]netip.Addr, len(s.monitors))
		s.dstBuf = make([][]netip.Addr, len(s.monitors))
	}
	for i := range s.srcBuf {
		s.srcBuf[i] = s.srcBuf[i][:0]
		s.dstBuf[i] = s.dstBuf[i][:0]
	}
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		shard := hashAddrPair(src, dst) % uint64(len(s.monitors))
		s.srcBuf[shard] = append(s.srcBuf[shard], src)
		s.dstBuf[shard] = append(s.dstBuf[shard], dst)
	}
	for i, m := range s.monitors {
		if len(s.srcBuf[i]) != 0 {
			m.UpdateBatch(s.srcBuf[i], s.dstBuf[i])
		}
	}
}

func hashAddrPair(src, dst netip.Addr) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	a := src.As16()
	b := dst.As16()
	var h uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < 16; i += 8 {
		h = mix(h ^ beUint64(a[i:]) ^ mix(beUint64(b[i:])))
	}
	return h
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
