package rhhh

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
)

// Sharded spreads measurement across several shared-nothing RHHH workers —
// the multi-queue deployment: modern NICs hash flows onto receive queues, and
// one worker per queue/core updates a private engine with no locks and no
// atomic read-modify-write operations on the hot path. Each worker
// periodically publishes an immutable, epoch-versioned snapshot of its engine
// through an atomic pointer (every PublishPackets packets or PublishBatches
// batch calls, or immediately on Sync); queries and standing watches load the
// latest published snapshot set and merge it with a reusable
// core.SnapshotMerger without ever touching a producer — no shard pause, no
// capture phase against live engines. The union keeps the paper's guarantees
// with N equal to the combined stream weight (see Snapshot and
// core.SnapshotMerger).
//
// Bounded staleness: a query observes every packet up to each worker's most
// recent publication, so it lags each producer by less than one publication
// interval (PublishPackets packets per worker, default 16384); a producer that
// calls Sync, and any worker that has reached a cadence boundary, is observed
// exactly. Between two publications of the same worker, queries are perfectly
// repeatable. Results at any published epoch set are bit-identical to a
// sequential merge of the per-worker streams truncated at those epochs.
//
// Give every producing goroutine its own worker via Worker(i); producers on
// different workers never contend, and queries may run concurrently with all
// of them.
type Sharded struct {
	cfg     Config
	workers []*Worker

	// aggMu serializes queries (merge and extract reuse the aggregator's
	// scratch); producers never take it — they only publish through their
	// own atomic cell.
	aggMu sync.Mutex
	agg   shardAgg

	// routerBusy guards the routed convenience entry points (Update,
	// UpdateBatch, ... on Sharded itself), whose routing scratch and worker
	// cadence state are single-goroutine: a second concurrent router is
	// detected and rejected instead of corrupting worker state.
	routerBusy atomic.Int32

	// Routing scratch for the batched convenience entry points.
	srcBuf, dstBuf [][]netip.Addr
	wBuf           [][]uint64

	// Standing-query driver state (see Watch): the hub holds subscriptions,
	// the supervised goroutine behind watchDone ticks it on the capture
	// interval. resPolicy supervises the driver (nil = resilience.Default).
	watchMu     sync.Mutex
	hub         watchCtl
	watchStop   chan struct{}
	watchWake   chan struct{}
	watchDone   <-chan struct{}
	watchClosed bool
	resPolicy   *resilience.Policy

	// pubScale widens every worker's publication cadence by the stored
	// factor (0 and 1 are neutral) — the degrade ladder's cadence lever.
	// Workers read it once per Sync, never on the packet path.
	pubScale atomic.Uint32

	// Telemetry blocks installed by Instrument (nil when uninstrumented):
	// qtm is owned by aggMu holders, watchTM by the watch hub.
	qtm     *telemetry.QueryStats
	watchTM *telemetry.WatchStats
}

// ShardedOptions tunes a Sharded's publication cadence. The zero value means
// defaults.
type ShardedOptions struct {
	// PublishPackets makes a worker republish after absorbing this many
	// packets since its previous publication (0 means the default, 16384).
	// Smaller values tighten the query staleness bound; larger values
	// amortize the publication copy over more traffic.
	PublishPackets uint64
	// PublishBatches makes a worker republish after this many batch calls
	// since its previous publication even when the packet watermark has not
	// been reached (0 means the default, 64), so small trickling batches
	// still surface promptly.
	PublishBatches int
}

const (
	defaultPublishPackets = 16384
	defaultPublishBatches = 64
)

// Worker is one producer's handle: a private monitor plus the atomic cell its
// publications go through. A worker is strictly single-producer — give every
// producing goroutine its own — and its update path takes no locks and
// performs no atomic read-modify-write operations; the only synchronization
// is one atomic pointer store per publication, amortized over the cadence.
type Worker struct {
	m    *Monitor
	cell *pubCell

	// Owner-goroutine cadence state, unsynchronized by design. The
	// effective cadence is the configured pubPackets/pubBatches times the
	// owning Sharded's publication scale, re-read at each Sync — so the
	// degrade ladder can widen the cadence without touching the hot path.
	count      uint64 // packets absorbed since construction
	batches    int    // batch calls since the last publication
	nextPub    uint64 // the update path's watermark check (see pubCheck)
	pubDue     uint64 // publish when count reaches this watermark
	pubPackets uint64
	pubBatches int
	curBatches int            // pubBatches × scale, recomputed at Sync
	scale      *atomic.Uint32 // the Sharded's pubScale

	// publish captures the worker's engine into a publication slot sharing
	// unchanged node buffers with prev and recycling buffers no reader can
	// still observe (see core.PubRing); installed by the carrier-typed
	// aggregator along with the producer-only ring/engine telemetry hooks.
	publish   func(prev any) (snap any, weight uint64)
	ringSlots func() int
	engTelem  func(*telemetry.EngineStats)

	// Telemetry block installed by Sharded.Instrument before producers
	// start; nil means uninstrumented. syncs/pubs are the owner-side live
	// counts published into tm at each Sync.
	tm    *telemetry.WorkerStats
	syncs uint64
	pubs  uint64

	// firstPending is the wall clock (unix nanos, 0 = none) of the first
	// packet absorbed since the last publication — always maintained,
	// telemetry or not, so Sharded.MaxPublishAge can report the age of
	// unpublished intake to the degrade controller. It costs the hot path
	// nothing: Sync arms nextPub one packet ahead as a sentinel, so the
	// idle→pending transition rides the existing watermark branch (see
	// pubCheck) and the clock read and atomic store run once per
	// publication interval.
	firstPending atomic.Int64
}

// pubCell is one worker's publication slot, padded onto its own cache lines
// so a worker's publications and the query side's loads never false-share
// with a neighboring worker's.
type pubCell struct {
	_ [64]byte
	v atomic.Value // *pubState, never nil after construction
	_ [48]byte
}

// pubState is one published epoch: the carrier-typed publication slot plus
// the epoch counter and published stream weight. A pubState is immutable;
// the slot it points to stays readable while this state is current or one
// epoch behind, and beyond that only under a reader pin (see core.PubSlot).
type pubState struct {
	snap   any // *core.PubSlot[K]
	epoch  uint64
	weight uint64
}

// pubCheck is the slow half of the update paths' watermark branch. nextPub
// is armed one packet past the last Sync, so the first intake of a fresh
// publication interval lands here once, stamps firstPending for the lag
// signal, and re-arms nextPub at the real cadence watermark; the next trip
// is a genuine publication.
func (w *Worker) pubCheck() {
	if w.count >= w.pubDue || w.batches >= w.curBatches {
		w.Sync()
		return
	}
	w.firstPending.Store(time.Now().UnixNano())
	w.nextPub = w.pubDue
}

// Update records one packet on this worker.
func (w *Worker) Update(src, dst netip.Addr) {
	w.m.Update(src, dst)
	w.count++
	if w.count >= w.nextPub {
		w.pubCheck()
	}
}

// UpdateWeighted records one packet carrying weight wt on this worker.
func (w *Worker) UpdateWeighted(src, dst netip.Addr, wt uint64) {
	w.m.UpdateWeighted(src, dst, wt)
	w.count++
	if w.count >= w.nextPub {
		w.pubCheck()
	}
}

// UpdateBatch records a batch of packets on this worker in one call — the
// preferred producer shape: the engine's batch kernel amortizes memory-level
// parallelism over the batch and the publication cadence over many batches.
func (w *Worker) UpdateBatch(srcs, dsts []netip.Addr) {
	w.m.UpdateBatch(srcs, dsts)
	w.count += uint64(len(srcs))
	w.batches++
	if w.count >= w.nextPub || w.batches >= w.curBatches {
		w.pubCheck()
	}
}

// UpdateWeightedBatch records a batch of packets carrying per-packet weights
// on this worker in one call.
func (w *Worker) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	w.m.UpdateWeightedBatch(srcs, dsts, ws)
	w.count += uint64(len(srcs))
	w.batches++
	if w.count >= w.nextPub || w.batches >= w.curBatches {
		w.pubCheck()
	}
}

// Sync publishes the worker's current state immediately, making everything it
// has absorbed visible to queries, snapshots and watches. Only the owning
// producer goroutine may call it (it is part of the single-producer surface);
// an idle Sync — nothing absorbed since the last publication — is nearly free
// and publishes nothing new.
func (w *Worker) Sync() {
	prev := w.cell.v.Load().(*pubState)
	snap, weight := w.publish(prev.snap)
	w.batches = 0
	// Everything absorbed so far is captured in snap: no intake is pending
	// anymore, whether or not the publication changed state.
	w.firstPending.Store(0)
	k := uint64(1)
	if w.scale != nil {
		if sc := w.scale.Load(); sc > 1 {
			k = uint64(sc)
		}
	}
	// Arm nextPub one packet ahead: the first intake of the new interval
	// detours through pubCheck to stamp firstPending, then the real
	// watermark (pubDue) takes over.
	w.pubDue = w.count + w.pubPackets*k
	w.nextPub = w.count + 1
	w.curBatches = w.pubBatches * int(k)
	if snap == prev.snap {
		if w.tm != nil {
			w.syncs++
			w.publishTelemetry(prev.epoch)
		}
		return // unchanged: keep the published epoch
	}
	w.cell.v.Store(&pubState{snap: snap, epoch: prev.epoch + 1, weight: weight})
	if w.tm != nil {
		w.syncs++
		w.pubs++
		w.publishTelemetry(prev.epoch + 1)
	}
}

// publishTelemetry stores the worker's owner-side counters and its engine's
// aggregates into the telemetry block. Producer-goroutine only; runs once
// per Sync, so its O(H) engine walk is amortized over the publication
// cadence.
func (w *Worker) publishTelemetry(epoch uint64) {
	tm := w.tm
	tm.Syncs.Store(w.syncs)
	tm.Publications.Store(w.pubs)
	tm.Epoch.Store(epoch)
	tm.RingSlots.Store(uint64(w.ringSlots()))
	tm.LastPublish.Store(uint64(time.Now().UnixNano()))
	w.engTelem(&tm.Engine)
}

// N returns the worker's live stream weight. Owner-goroutine read, like the
// update methods; other goroutines observe the worker only through its
// publications (Sharded.N sums those).
func (w *Worker) N() uint64 { return w.m.N() }

// Epoch returns the worker's published epoch number, which increments on
// every publication that changed state. Safe from any goroutine.
func (w *Worker) Epoch() uint64 { return w.cell.v.Load().(*pubState).epoch }

// PublishedN returns the stream weight of the worker's latest publication.
// Safe from any goroutine.
func (w *Worker) PublishedN() uint64 { return w.cell.v.Load().(*pubState).weight }

// NewSharded builds n shared-nothing workers with the default publication
// cadence. Only Algorithm RHHH with a mergeable backend (Space Saving or
// CHK) supports sharding.
func NewSharded(cfg Config, n int) (*Sharded, error) {
	return NewShardedOptions(cfg, n, ShardedOptions{})
}

// NewShardedOptions is NewSharded with an explicit publication cadence.
func NewShardedOptions(cfg Config, n int, opts ShardedOptions) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("rhhh: need at least one shard, got %d", n)
	}
	if cfg.Algorithm != RHHH {
		return nil, fmt.Errorf("rhhh: sharding requires the RHHH algorithm, got %v", cfg.Algorithm)
	}
	pubPackets := opts.PublishPackets
	if pubPackets == 0 {
		pubPackets = defaultPublishPackets
	}
	pubBatches := opts.PublishBatches
	if pubBatches == 0 {
		pubBatches = defaultPublishBatches
	}
	s := &Sharded{cfg: cfg, workers: make([]*Worker, n)}
	monitors := make([]*Monitor, n)
	for i := range s.workers {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := New(c)
		if err != nil {
			return nil, err
		}
		monitors[i] = m
		s.workers[i] = &Worker{
			m:          m,
			cell:       &pubCell{},
			pubPackets: pubPackets,
			pubBatches: pubBatches,
			curBatches: pubBatches,
			pubDue:     pubPackets,
			nextPub:    1, // sentinel: the first packet stamps firstPending
			scale:      &s.pubScale,
		}
	}
	// All workers share the same concrete impl type; dispatch on the first.
	switch im := monitors[0].impl.(type) {
	case *impl[uint32]:
		s.agg = newAggState(im, monitors)
	case *impl[uint64]:
		s.agg = newAggState(im, monitors)
	case *impl[hierarchy.Addr]:
		s.agg = newAggState(im, monitors)
	case *impl[hierarchy.AddrPair]:
		s.agg = newAggState(im, monitors)
	default:
		return nil, fmt.Errorf("rhhh: unknown shard implementation %T", monitors[0].impl)
	}
	for i, w := range s.workers {
		w.publish, w.ringSlots, w.engTelem = s.agg.publisher(i)
		snap, weight := w.publish(nil)
		w.cell.v.Store(&pubState{snap: snap, weight: weight})
	}
	return s, nil
}

// Instrument registers the sharded monitor's telemetry — one worker block
// per worker (labeled worker="i"), the query-path block, and the standing-
// query block — with reg. Call it after construction and before any
// producer goroutine starts: the per-worker hookup is unsynchronized by
// design (the producer sees it through the happens-before edge of its own
// goroutine start). A nil reg (telemetry.Disabled) leaves the monitor
// uninstrumented. Worker counters surface at each publication boundary;
// call Worker.Sync (or let the cadence fire) to refresh them.
func (s *Sharded) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i, w := range s.workers {
		tm := &telemetry.WorkerStats{}
		tm.Register(reg, fmt.Sprintf(`{worker="%d"}`, i))
		w.tm = tm
		// Seed the gauges so occupancy/slots are live before first traffic.
		w.publishTelemetry(w.Epoch())
	}
	s.aggMu.Lock()
	s.qtm = &telemetry.QueryStats{}
	s.qtm.Register(reg, "")
	s.agg.instrument(s.qtm)
	s.aggMu.Unlock()
	s.watchMu.Lock()
	s.watchTM = &telemetry.WatchStats{}
	s.watchTM.Register(reg, "")
	if s.hub != nil {
		s.hub.instrument(s.watchTM)
	}
	s.watchMu.Unlock()
}

// SetResiliencePolicy installs the supervision policy for the standing-
// query driver (and any future owned goroutines). Call before the first
// Watch; nil means resilience.Default.
func (s *Sharded) SetResiliencePolicy(p *resilience.Policy) {
	s.watchMu.Lock()
	s.resPolicy = p
	s.watchMu.Unlock()
}

// SetPublishScale widens every worker's publication cadence by k (0 and 1
// restore the configured cadence): the degrade ladder's lever. Workers
// pick the new scale up at their next Sync — one atomic load per
// publication, nothing on the packet path. Safe from any goroutine.
func (s *Sharded) SetPublishScale(k uint32) { s.pubScale.Store(k) }

// PublishScale returns the current publication-cadence scale (1 when
// neutral).
func (s *Sharded) PublishScale() uint32 {
	if k := s.pubScale.Load(); k > 1 {
		return k
	}
	return 1
}

// MaxPublishAge returns the age of the oldest absorbed-but-unpublished
// intake across workers — the ingest-lag signal the degrade controller
// watches. A worker with nothing pending contributes zero, so neither an
// idle daemon nor a worker whose bounded feeder finished (published its
// final state and went quiet) can read as ever-growing lag.
func (s *Sharded) MaxPublishAge(now time.Time) time.Duration {
	var maxAge time.Duration
	for _, w := range s.workers {
		first := w.firstPending.Load()
		if first == 0 {
			continue
		}
		if age := now.Sub(time.Unix(0, first)); age > maxAge {
			maxAge = age
		}
	}
	return maxAge
}

// Workers returns the number of workers.
func (s *Sharded) Workers() int { return len(s.workers) }

// Shards returns the number of workers (historical name).
func (s *Sharded) Shards() int { return len(s.workers) }

// Worker returns worker i's handle; each producing goroutine must own its
// worker exclusively.
func (s *Sharded) Worker(i int) *Worker { return s.workers[i] }

// Sync publishes every worker's current state. Because Sync on a worker is an
// owner-goroutine operation, Sharded.Sync is safe only when the caller owns
// all workers (the routed single-goroutine mode) or every producer is
// quiescent with a happens-before edge to the caller (e.g. after
// sync.WaitGroup.Wait). Producers that keep running should call their own
// Worker.Sync instead.
func (s *Sharded) Sync() {
	s.routeEnter()
	defer s.routeExit()
	for _, w := range s.workers {
		w.Sync()
	}
}

// N returns the combined published stream weight: the sum of every worker's
// latest publication. It lags live producers by their bounded publication
// staleness (see the type comment); after Sync it is exact.
func (s *Sharded) N() uint64 {
	var n uint64
	for _, w := range s.workers {
		n += w.PublishedN()
	}
	return n
}

// Psi returns the convergence bound for the combined stream (identical to a
// single worker's: ψ depends on V and ε, not on how the stream is split).
func (s *Sharded) Psi() float64 { return s.workers[0].m.Psi() }

// Converged reports whether the combined published N has passed ψ.
func (s *Sharded) Converged() bool { return float64(s.N()) >= s.Psi() }

// HeavyHitters answers the HHH query over the union stream as of each
// worker's latest publication. Producers are never touched: the query loads
// the published snapshot set and merges and extracts on reused buffers.
// Concurrent HeavyHitters calls serialize with each other.
//
// The returned slice is the aggregator's reusable query buffer: treat it as
// read-only, valid until the next HeavyHitters call — copy it (e.g. with
// slices.Clone) to retain or reorder results. A warm query allocates
// nothing, and when no worker published between queries at the same θ the
// whole pipeline short-circuits to the retained result.
func (s *Sharded) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	return s.agg.query(s.workers, theta)
}

// Snapshot merges every worker's latest publication into one standalone
// Snapshot — queryable, mergeable with other snapshots, and serializable.
// Like HeavyHitters, it never touches a producer.
func (s *Sharded) Snapshot() *Snapshot {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	return &Snapshot{
		impl: s.agg.freshSnapshot(s.workers),
		dims: s.cfg.Dims,
		gran: s.cfg.Granularity,
		ipv6: s.cfg.IPv6,
	}
}

// shardAgg is the carrier-typed aggregator behind the query path.
type shardAgg interface {
	query(workers []*Worker, theta float64) []HeavyHitter
	freshSnapshot(workers []*Worker) snapCore
	watchHub(s *Sharded) watchCtl
	publisher(i int) (pub func(prev any) (snap any, weight uint64), ringSlots func() int, engTelem func(*telemetry.EngineStats))
	instrument(q *telemetry.QueryStats)

	// Incremental-checkpoint surface (see Checkpointer): append encodes
	// the merged published state — full, or delta against the last
	// committed base; commit advances the base after the bytes are
	// durable; apply loads a recovered full+journal into worker 0's
	// engine. All three run under the Sharded's aggMu.
	appendCheckpoint(workers []*Worker, buf []byte, wantFull bool) (out []byte, wroteFull bool, err error)
	commitCheckpoint()
	applyCheckpoint(full []byte, segs [][]byte) error
}

// aggState implements shardAgg over carrier type K with a reusable merger and
// a reusable extractor+converter — a warm query allocates nothing across
// collect, merge, extraction and rendering. Because publications carry
// per-node mutation generations (unchanged nodes share buffers and
// generations across epochs), a query after a small traffic delta re-merges
// and re-indexes only the touched nodes, and a query with no new publications
// short-circuits entirely.
type aggState[K comparable] struct {
	im      *impl[K]
	engines []*core.Engine[K]
	pinned  []*core.PubSlot[K]
	ptrs    []*core.EngineSnapshot[K]
	sm      core.SnapshotMerger[K]
	merged  core.EngineSnapshot[K]
	ex      *core.Extractor[K]
	conv    converter[K]

	// Watch-path collect+merge scratch, separate from the query path's so
	// the two destinations keep their own unchanged-merge caches warm; the
	// watch hub serializes captures on its own lock.
	wpinned []*core.PubSlot[K]
	wptrs   []*core.EngineSnapshot[K]
	wsm     core.SnapshotMerger[K]
	wmerged core.EngineSnapshot[K]

	// Checkpoint scratch, owned by aggMu holders. ckptMerged is a third
	// merge destination (nothing else overwrites it between an append and
	// its commit, which bracket a disk write outside the lock); ckptBase /
	// ckptGens are the last durably committed state — the delta-encoding
	// base, advanced only by commitCheckpoint so a failed write never
	// moves it.
	ckptSM     core.SnapshotMerger[K]
	ckptMerged core.EngineSnapshot[K]
	ckptBase   core.EngineSnapshot[K]
	ckptGens   []uint64
	ckptCodec  core.DeltaCodec[K]
	ckptHasBase bool

	// qtm is the query-path telemetry block (nil when uninstrumented),
	// mutated only under the owning Sharded's aggMu — except the watch
	// capture closure's pin-retry accounting, which uses the cell's atomic
	// Add under the hub lock.
	qtm *telemetry.QueryStats
}

func (a *aggState[K]) instrument(q *telemetry.QueryStats) { a.qtm = q }

func newAggState[K comparable](first *impl[K], monitors []*Monitor) *aggState[K] {
	a := &aggState[K]{
		im:      first,
		engines: make([]*core.Engine[K], len(monitors)),
		pinned:  make([]*core.PubSlot[K], 0, len(monitors)),
		ptrs:    make([]*core.EngineSnapshot[K], 0, len(monitors)),
		wpinned: make([]*core.PubSlot[K], 0, len(monitors)),
		wptrs:   make([]*core.EngineSnapshot[K], 0, len(monitors)),
		ex:      core.NewExtractor(first.dom),
	}
	for i, m := range monitors {
		eng, ok := m.impl.(*impl[K]).alg.(*core.Engine[K])
		if !ok {
			panic("rhhh: sharding requires the RHHH engine")
		}
		a.engines[i] = eng
	}
	return a
}

// publisher returns worker i's publish closure: a capture of its engine into
// the worker's publication ring, sharing unchanged node buffers with the
// previous publication and recycling buffers no reader can still observe.
func (a *aggState[K]) publisher(i int) (func(prev any) (any, uint64), func() int, func(*telemetry.EngineStats)) {
	ring := core.NewPubRing(a.engines[i])
	eng := a.engines[i]
	pub := func(prev any) (any, uint64) {
		var p *core.PubSlot[K]
		if prev != nil {
			p = prev.(*core.PubSlot[K])
		}
		slot := ring.Publish(p)
		return slot, slot.Snapshot().Weight
	}
	return pub, ring.Slots, eng.TelemetryInto
}

// pinPubs pins every worker's latest published snapshot and collects the
// snapshot pointers (reused scratch, allocation-free once grown). The
// pin-then-verify handshake per worker: load the cell, pin the slot, re-load
// — if the published epoch advanced by 2 or more in between, the ring may
// already be recycling that slot's buffers, so unpin and retry. Callers must
// unpinPubs as soon as they are done reading (the merge copies everything it
// needs).
func pinPubs[K comparable](workers []*Worker, slots []*core.PubSlot[K], ptrs []*core.EngineSnapshot[K]) ([]*core.PubSlot[K], []*core.EngineSnapshot[K], int) {
	slots, ptrs = slots[:0], ptrs[:0]
	retries := 0
	for _, w := range workers {
		for {
			st := w.cell.v.Load().(*pubState)
			slot := st.snap.(*core.PubSlot[K])
			slot.Pin()
			if w.cell.v.Load().(*pubState).epoch-st.epoch < 2 {
				slots = append(slots, slot)
				ptrs = append(ptrs, slot.Snapshot())
				break
			}
			slot.Unpin()
			retries++
		}
	}
	return slots, ptrs, retries
}

func unpinPubs[K comparable](slots []*core.PubSlot[K]) {
	for _, s := range slots {
		s.Unpin()
	}
}

// query merges the latest published snapshot set (reusing all merge scratch)
// and runs the Output procedure — entirely against pinned publications,
// never against live engines. The pins are released right after the merge:
// the merged destination owns all of its buffers.
func (a *aggState[K]) query(workers []*Worker, theta float64) []HeavyHitter {
	var retries int
	a.pinned, a.ptrs, retries = pinPubs(workers, a.pinned, a.ptrs)
	merged := a.sm.Merge(&a.merged, a.ptrs...)
	unpinPubs(a.pinned)
	res := a.conv.convert(a.im.dom, a.im.split, a.ex.ExtractSnapshot(merged, theta))
	if a.qtm != nil {
		a.qtm.Queries.Add(1)
		a.qtm.PinRetries.Add(uint64(retries))
		a.qtm.Hits.Store(uint64(len(res)))
	}
	return res
}

// freshSnapshot merges the latest published set into a newly allocated
// snapshot state (it escapes to the caller, so no buffers are shared with the
// aggregator or the publication rings).
func (a *aggState[K]) freshSnapshot(workers []*Worker) snapCore {
	var retries int
	a.pinned, a.ptrs, retries = pinPubs(workers, a.pinned, a.ptrs)
	var sm core.SnapshotMerger[K]
	es := sm.Merge(nil, a.ptrs...)
	unpinPubs(a.pinned)
	if a.qtm != nil {
		a.qtm.Queries.Add(1)
		a.qtm.PinRetries.Add(uint64(retries))
	}
	return &snapState[K]{es: *es, dom: a.im.dom, split: a.im.split}
}

// appendCheckpoint captures the merged published state into the private
// checkpoint scratch and encodes it — the full engine-snapshot codec, or
// (when a committed base exists and the caller wants an increment) the
// generation-delta codec against that base. The base is deliberately not
// advanced here: the caller writes the bytes to disk first and commits
// only on durable success, so a failed write leaves the delta chain
// anchored at the last state that is actually recoverable.
func (a *aggState[K]) appendCheckpoint(workers []*Worker, buf []byte, wantFull bool) ([]byte, bool, error) {
	a.pinned, a.ptrs, _ = pinPubs(workers, a.pinned, a.ptrs)
	merged := a.ckptSM.Merge(&a.ckptMerged, a.ptrs...)
	unpinPubs(a.pinned)
	if !a.ckptHasBase {
		wantFull = true
	}
	if wantFull {
		out, err := merged.AppendBinary(buf)
		if err != nil {
			return buf, false, err
		}
		return out, true, nil
	}
	out, _, err := a.ckptCodec.AppendDelta(buf, merged, &a.ckptBase, a.ckptGens)
	if err != nil {
		return buf, false, err
	}
	return out, false, nil
}

// commitCheckpoint advances the delta base to the state appendCheckpoint
// last encoded, after the caller made its bytes durable. The generations
// are recorded from the merged source — CopyFrom stamps fresh ones on the
// copy — so the next delta compares against the capture-time generations,
// exactly the acked-report pattern of the vswitch DeltaReporter.
func (a *aggState[K]) commitCheckpoint() {
	a.ckptBase.CopyFrom(&a.ckptMerged)
	a.ckptGens = a.ckptMerged.NodeGens(a.ckptGens)
	a.ckptHasBase = true
}

// applyCheckpoint decodes a recovered full checkpoint, replays the journal
// segments onto it in order, and loads the result into worker 0's engine
// (restore runs before producers start; the worker's next Sync publishes
// it). The restored state also primes the delta base, so the first
// post-restore increment extends the recovered journal consistently.
func (a *aggState[K]) applyCheckpoint(full []byte, segs [][]byte) error {
	es, rest, err := core.DecodeEngineSnapshot[K](full)
	if err != nil {
		return fmt.Errorf("rhhh: checkpoint full: %w", err)
	}
	if len(rest) != 0 {
		return errors.New("rhhh: checkpoint full has trailing bytes")
	}
	for i, seg := range segs {
		rest, err := a.ckptCodec.ApplyDelta(es, seg)
		if err != nil {
			return fmt.Errorf("rhhh: checkpoint segment %d: %w", i+1, err)
		}
		if len(rest) != 0 {
			return fmt.Errorf("rhhh: checkpoint segment %d has trailing bytes", i+1)
		}
	}
	if err := a.engines[0].LoadSnapshot(es); err != nil {
		return fmt.Errorf("rhhh: checkpoint restore: %w", err)
	}
	a.ckptBase.CopyFrom(es)
	a.ckptGens = es.NodeGens(a.ckptGens)
	a.ckptHasBase = true
	return nil
}

// watchHub builds the sharded watch hub: each capture pins the latest
// published snapshot set and merges it on the hub's own scratch — producers
// are never paused, and the watch driver no longer contends with queries.
// Captures serialize on the hub lock.
func (a *aggState[K]) watchHub(s *Sharded) watchCtl {
	return newWatchHub(a.im.dom, a.im.split, a.im.v6, func() *core.EngineSnapshot[K] {
		var retries int
		a.wpinned, a.wptrs, retries = pinPubs(s.workers, a.wpinned, a.wptrs)
		merged := a.wsm.Merge(&a.wmerged, a.wptrs...)
		unpinPubs(a.wpinned)
		if retries != 0 && a.qtm != nil {
			a.qtm.PinRetries.Add(uint64(retries))
		}
		return merged
	})
}

// Watch registers a standing query over the union stream: a driver goroutine
// (started by the first Watch) reads the published epochs on the tick
// interval — the smallest WatchOptions.Interval across live subscriptions,
// 100ms by default — and delivers HHH set deltas to the subscription.
// Producers are never paused; a tick observes each worker's latest
// publication (the same bounded staleness as HeavyHitters). Close the
// subscription to unregister, or Close the Sharded to stop the driver and end
// every subscription.
func (s *Sharded) Watch(opts WatchOptions) (*Subscription, error) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchClosed {
		return nil, errors.New("rhhh: Watch on a closed Sharded")
	}
	if s.hub == nil {
		s.hub = s.agg.watchHub(s)
		if s.watchTM != nil {
			s.hub.instrument(s.watchTM)
		}
	}
	sub, err := s.hub.register(opts)
	if err != nil {
		return nil, err
	}
	if s.watchDone == nil {
		// First subscription: start the driver, which now sees the
		// registered interval from the start. The driver is supervised —
		// a panic in a subscriber's OnDelta callback (which runs on the
		// driver goroutine) is captured and the driver restarted with
		// backoff instead of killing the process.
		s.watchStop = make(chan struct{})
		s.watchWake = make(chan struct{}, 1)
		s.watchDone = s.resPolicy.Go("rhhh/sharded-watch", s.watchStop, s.watchLoop)
	} else {
		// Nudge the driver so a shorter interval takes effect immediately.
		select {
		case s.watchWake <- struct{}{}:
		default:
		}
	}
	return sub, nil
}

// watchLoop is the standing-query driver: it ticks the hub on the current
// minimum subscription interval until Close. It runs under the resilience
// policy's supervision (see Watch); the hub releases its lock on a panic,
// so a restarted driver resumes ticking cleanly.
func (s *Sharded) watchLoop() {
	timer := time.NewTimer(s.hub.minInterval())
	defer timer.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-s.watchWake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
			s.hub.tick()
		}
		timer.Reset(s.hub.minInterval())
	}
}

// Close stops the standing-query driver and closes every subscription's
// Events channel. Updates and queries keep working; further Watch calls
// fail. Idempotent.
func (s *Sharded) Close() error {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchClosed {
		return nil
	}
	s.watchClosed = true
	if s.watchDone != nil {
		close(s.watchStop)
		<-s.watchDone
	}
	if s.hub != nil {
		s.hub.closeHub()
	}
	return nil
}

// routeEnter claims the routed single-goroutine surface (Update, UpdateBatch,
// UpdateWeighted, UpdateWeightedBatch and Sync on Sharded itself). The
// routing scratch and worker cadence state behind those entry points are
// deliberately unsynchronized, so a second concurrent router is a data race:
// it is detected here and rejected loudly instead of corrupting state.
func (s *Sharded) routeEnter() {
	if !s.routerBusy.CompareAndSwap(0, 1) {
		panic("rhhh: concurrent routed update on Sharded — the routed entry points are single-goroutine; give each producing goroutine its own Worker")
	}
}

func (s *Sharded) routeExit() { s.routerBusy.Store(0) }

// Update is a convenience for single-goroutine use: it routes the packet to a
// worker by address hash. Concurrent producers should call Worker(i).Update
// directly instead; concurrent routed calls panic.
func (s *Sharded) Update(src, dst netip.Addr) {
	s.routeEnter()
	defer s.routeExit()
	h := hashAddrPair(src, dst)
	s.workers[h%uint64(len(s.workers))].Update(src, dst)
}

// UpdateWeighted is a convenience for single-goroutine use: it routes the
// weighted packet to a worker by address hash. Concurrent producers should
// call Worker(i).UpdateWeighted directly instead; concurrent routed calls
// panic.
func (s *Sharded) UpdateWeighted(src, dst netip.Addr, w uint64) {
	s.routeEnter()
	defer s.routeExit()
	h := hashAddrPair(src, dst)
	s.workers[h%uint64(len(s.workers))].UpdateWeighted(src, dst, w)
}

// UpdateBatch routes a batch of packets to their workers and feeds each
// worker its sub-batch in one call, preserving per-worker arrival order. For
// one-dimensional monitors pass dsts == nil. Single-goroutine use, like
// Update: concurrent producers should call Worker(i).UpdateBatch directly;
// concurrent routed calls panic.
func (s *Sharded) UpdateBatch(srcs, dsts []netip.Addr) {
	if dsts == nil {
		if s.cfg.Dims == 2 {
			panic("rhhh: UpdateBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateBatch srcs/dsts length mismatch")
	}
	s.routeEnter()
	defer s.routeExit()
	if s.srcBuf == nil {
		s.srcBuf = make([][]netip.Addr, len(s.workers))
		s.dstBuf = make([][]netip.Addr, len(s.workers))
	}
	for i := range s.srcBuf {
		s.srcBuf[i] = s.srcBuf[i][:0]
		s.dstBuf[i] = s.dstBuf[i][:0]
	}
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		shard := hashAddrPair(src, dst) % uint64(len(s.workers))
		s.srcBuf[shard] = append(s.srcBuf[shard], src)
		s.dstBuf[shard] = append(s.dstBuf[shard], dst)
	}
	for i, w := range s.workers {
		if len(s.srcBuf[i]) != 0 {
			w.UpdateBatch(s.srcBuf[i], s.dstBuf[i])
		}
	}
}

// UpdateWeightedBatch routes a batch of weighted packets to their workers and
// feeds each worker its sub-batch in one call, preserving per-worker arrival
// order. For one-dimensional monitors pass dsts == nil; ws must be the same
// length as srcs. Single-goroutine use, like UpdateBatch; concurrent routed
// calls panic.
func (s *Sharded) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	if dsts == nil {
		if s.cfg.Dims == 2 {
			panic("rhhh: UpdateWeightedBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/dsts length mismatch")
	}
	if len(ws) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/weights length mismatch")
	}
	s.routeEnter()
	defer s.routeExit()
	if s.srcBuf == nil {
		s.srcBuf = make([][]netip.Addr, len(s.workers))
		s.dstBuf = make([][]netip.Addr, len(s.workers))
	}
	if s.wBuf == nil {
		s.wBuf = make([][]uint64, len(s.workers))
	}
	for i := range s.srcBuf {
		s.srcBuf[i] = s.srcBuf[i][:0]
		s.dstBuf[i] = s.dstBuf[i][:0]
		s.wBuf[i] = s.wBuf[i][:0]
	}
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		shard := hashAddrPair(src, dst) % uint64(len(s.workers))
		s.srcBuf[shard] = append(s.srcBuf[shard], src)
		s.dstBuf[shard] = append(s.dstBuf[shard], dst)
		s.wBuf[shard] = append(s.wBuf[shard], ws[i])
	}
	for i, w := range s.workers {
		if len(s.srcBuf[i]) != 0 {
			w.UpdateWeightedBatch(s.srcBuf[i], s.dstBuf[i], s.wBuf[i])
		}
	}
}

func hashAddrPair(src, dst netip.Addr) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	a := src.As16()
	b := dst.As16()
	var h uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < 16; i += 8 {
		h = mix(h ^ beUint64(a[i:]) ^ mix(beUint64(b[i:])))
	}
	return h
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
