package rhhh

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// Sharded spreads measurement across several independent RHHH monitors —
// the multi-queue deployment: modern NICs hash flows onto receive queues,
// and one shard per queue/core updates with only its own (uncontended)
// shard lock. Queries are pause-free: HeavyHitters briefly captures a
// snapshot of each shard in turn — blocking that shard for one O(H·1/ε)
// copy, never all shards at once — and then merges and extracts entirely
// outside the shard locks, against a snapshot set whose buffers and merge
// scratch are reused across queries. The union keeps the paper's guarantees
// with N equal to the combined stream length (see Snapshot and
// core.SnapshotMerger).
//
// Give every producing goroutine its own shard via Shard(i); producers on
// different shards never contend, and HeavyHitters may run concurrently
// with all of them.
type Sharded struct {
	cfg    Config
	shards []*Shard

	// aggMu serializes queries (capture, merge and extract all reuse the
	// aggregator's scratch); producers never take it — a query holds only
	// one shard lock at a time, and only for that shard's snapshot copy.
	aggMu sync.Mutex
	agg   shardAgg

	// Per-call scratch for UpdateBatch routing (single-goroutine use, like
	// Update).
	srcBuf, dstBuf [][]netip.Addr
	wBuf           [][]uint64

	// Standing-query driver state (see Watch): the hub holds subscriptions,
	// the goroutine behind watchDone ticks it on the capture interval.
	watchMu     sync.Mutex
	hub         watchCtl
	watchStop   chan struct{}
	watchWake   chan struct{}
	watchDone   chan struct{}
	watchClosed bool
}

// Shard is one producer's handle: a monitor plus the lock that coordinates
// its updates with snapshot capture. Each shard is single-producer: give
// every producing goroutine its own.
type Shard struct {
	mu sync.Mutex
	m  *Monitor
}

// Update records one packet on this shard.
func (sh *Shard) Update(src, dst netip.Addr) {
	sh.mu.Lock()
	sh.m.Update(src, dst)
	sh.mu.Unlock()
}

// UpdateWeighted records one packet carrying weight w on this shard.
func (sh *Shard) UpdateWeighted(src, dst netip.Addr, w uint64) {
	sh.mu.Lock()
	sh.m.UpdateWeighted(src, dst, w)
	sh.mu.Unlock()
}

// UpdateBatch records a batch of packets on this shard in one call,
// amortizing the lock over the whole batch (the preferred producer shape).
func (sh *Shard) UpdateBatch(srcs, dsts []netip.Addr) {
	sh.mu.Lock()
	sh.m.UpdateBatch(srcs, dsts)
	sh.mu.Unlock()
}

// UpdateWeightedBatch records a batch of packets carrying per-packet weights
// on this shard in one call.
func (sh *Shard) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	sh.mu.Lock()
	sh.m.UpdateWeightedBatch(srcs, dsts, ws)
	sh.mu.Unlock()
}

// N returns this shard's stream weight.
func (sh *Shard) N() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.N()
}

// NewSharded builds n independently seeded shards. Only Algorithm RHHH with
// the default (Space Saving) backend supports merging.
func NewSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("rhhh: need at least one shard, got %d", n)
	}
	if cfg.Algorithm != RHHH {
		return nil, fmt.Errorf("rhhh: sharding requires the RHHH algorithm, got %v", cfg.Algorithm)
	}
	s := &Sharded{cfg: cfg, shards: make([]*Shard, n)}
	monitors := make([]*Monitor, n)
	for i := range s.shards {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := New(c)
		if err != nil {
			return nil, err
		}
		monitors[i] = m
		s.shards[i] = &Shard{m: m}
	}
	// All shards share the same concrete impl type; dispatch on the first.
	switch im := monitors[0].impl.(type) {
	case *impl[uint32]:
		s.agg = newAggState(im, monitors)
	case *impl[uint64]:
		s.agg = newAggState(im, monitors)
	case *impl[hierarchy.Addr]:
		s.agg = newAggState(im, monitors)
	case *impl[hierarchy.AddrPair]:
		s.agg = newAggState(im, monitors)
	default:
		return nil, fmt.Errorf("rhhh: unknown shard implementation %T", monitors[0].impl)
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's handle; each producing goroutine must use its own
// shard.
func (s *Sharded) Shard(i int) *Shard { return s.shards[i] }

// N returns the combined stream weight across shards.
func (s *Sharded) N() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.N()
	}
	return n
}

// Psi returns the convergence bound for the combined stream (identical to a
// single shard's: ψ depends on V and ε, not on how the stream is split).
func (s *Sharded) Psi() float64 { return s.shards[0].m.Psi() }

// Converged reports whether the combined N has passed ψ.
func (s *Sharded) Converged() bool { return float64(s.N()) >= s.Psi() }

// HeavyHitters answers the HHH query over the union stream. Safe to call
// while shards update concurrently: each shard is paused only for its own
// snapshot copy, and the merge and extraction run outside all shard locks
// on reused buffers. Concurrent HeavyHitters calls serialize with each
// other.
//
// The returned slice is the aggregator's reusable query buffer: treat it as
// read-only, valid until the next HeavyHitters call — copy it (e.g. with
// slices.Clone) to retain or reorder results. A warm query allocates
// nothing, and when no shard absorbed traffic since the previous query at
// the same θ the whole pipeline short-circuits to the retained result.
func (s *Sharded) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.refresh(s.shards)
	return s.agg.query(theta)
}

// Snapshot captures and merges all shards into one standalone Snapshot —
// queryable, mergeable with other snapshots, and serializable. Like
// HeavyHitters, it never pauses more than one shard at a time.
func (s *Sharded) Snapshot() *Snapshot {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.refresh(s.shards)
	return &Snapshot{
		impl: s.agg.freshSnapshot(),
		dims: s.cfg.Dims,
		gran: s.cfg.Granularity,
		ipv6: s.cfg.IPv6,
	}
}

// shardAgg is the carrier-typed aggregator behind the query path.
type shardAgg interface {
	refresh(shards []*Shard)
	query(theta float64) []HeavyHitter
	freshSnapshot() snapCore
	watchHub(s *Sharded) watchCtl
}

// aggState implements shardAgg over carrier type K with reusable per-shard
// snapshot buffers, a reusable merger, and a reusable extractor+converter —
// a warm query allocates nothing across capture, merge, extraction and
// rendering. When no shard absorbed traffic between queries the capture and
// merge are recognized as unchanged and the extraction short-circuits to
// the retained result.
type aggState[K comparable] struct {
	im      *impl[K]
	engines []*core.Engine[K]
	bufs    []core.EngineSnapshot[K]
	ptrs    []*core.EngineSnapshot[K]
	sm      core.SnapshotMerger[K]
	merged  core.EngineSnapshot[K]
	ex      *core.Extractor[K]
	conv    converter[K]

	// Watch-path merge scratch, separate from the query path's so the two
	// destinations keep their own unchanged-merge caches warm.
	wsm     core.SnapshotMerger[K]
	wmerged core.EngineSnapshot[K]
}

func newAggState[K comparable](first *impl[K], monitors []*Monitor) *aggState[K] {
	a := &aggState[K]{
		im:      first,
		engines: make([]*core.Engine[K], len(monitors)),
		bufs:    make([]core.EngineSnapshot[K], len(monitors)),
		ptrs:    make([]*core.EngineSnapshot[K], len(monitors)),
		ex:      core.NewExtractor(first.dom),
	}
	for i, m := range monitors {
		eng, ok := m.impl.(*impl[K]).alg.(*core.Engine[K])
		if !ok {
			panic("rhhh: sharding requires the RHHH engine")
		}
		a.engines[i] = eng
		a.ptrs[i] = &a.bufs[i]
	}
	return a
}

// refresh captures every shard into the snapshot buffers, holding each
// shard's lock only for its own copy.
func (a *aggState[K]) refresh(shards []*Shard) {
	for i, sh := range shards {
		sh.mu.Lock()
		a.engines[i].SnapshotInto(&a.bufs[i])
		sh.mu.Unlock()
	}
}

// query merges the captured snapshot set (reusing all merge scratch) and
// runs the Output procedure, entirely outside the shard locks.
func (a *aggState[K]) query(theta float64) []HeavyHitter {
	merged := a.sm.Merge(&a.merged, a.ptrs...)
	return a.conv.convert(a.im.dom, a.im.split, a.ex.ExtractSnapshot(merged, theta))
}

// freshSnapshot merges the captured set into a newly allocated snapshot
// state (it escapes to the caller, so no buffers are shared with the
// aggregator).
func (a *aggState[K]) freshSnapshot() snapCore {
	var sm core.SnapshotMerger[K]
	es := sm.Merge(nil, a.ptrs...)
	return &snapState[K]{es: *es, dom: a.im.dom, split: a.im.split}
}

// watchHub builds the sharded watch hub: each capture pauses one shard at a
// time for its snapshot copy (exactly like HeavyHitters) and merges outside
// all shard locks, under the aggregator lock so watches and queries
// serialize on the shared per-shard capture buffers.
func (a *aggState[K]) watchHub(s *Sharded) watchCtl {
	return newWatchHub(a.im.dom, a.im.split, a.im.v6, func() *core.EngineSnapshot[K] {
		s.aggMu.Lock()
		defer s.aggMu.Unlock()
		a.refresh(s.shards)
		return a.wsm.Merge(&a.wmerged, a.ptrs...)
	})
}

// Watch registers a standing query over the union stream: a driver goroutine
// (started by the first Watch) captures the shards on the tick interval —
// the smallest WatchOptions.Interval across live subscriptions, 100ms by
// default — and delivers HHH set deltas to the subscription. Producers are
// never paused for more than one shard's snapshot copy, identical to
// HeavyHitters. Close the subscription to unregister, or Close the Sharded
// to stop the driver and end every subscription.
func (s *Sharded) Watch(opts WatchOptions) (*Subscription, error) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchClosed {
		return nil, errors.New("rhhh: Watch on a closed Sharded")
	}
	if s.hub == nil {
		s.hub = s.agg.watchHub(s)
	}
	sub, err := s.hub.register(opts)
	if err != nil {
		return nil, err
	}
	if s.watchDone == nil {
		// First subscription: start the driver, which now sees the
		// registered interval from the start.
		s.watchStop = make(chan struct{})
		s.watchWake = make(chan struct{}, 1)
		s.watchDone = make(chan struct{})
		go s.watchLoop()
	} else {
		// Nudge the driver so a shorter interval takes effect immediately.
		select {
		case s.watchWake <- struct{}{}:
		default:
		}
	}
	return sub, nil
}

// watchLoop is the standing-query driver: it ticks the hub on the current
// minimum subscription interval until Close.
func (s *Sharded) watchLoop() {
	defer close(s.watchDone)
	timer := time.NewTimer(s.hub.minInterval())
	defer timer.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-s.watchWake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
			s.hub.tick()
		}
		timer.Reset(s.hub.minInterval())
	}
}

// Close stops the standing-query driver and closes every subscription's
// Events channel. Updates and queries keep working; further Watch calls
// fail. Idempotent.
func (s *Sharded) Close() error {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchClosed {
		return nil
	}
	s.watchClosed = true
	if s.watchDone != nil {
		close(s.watchStop)
		<-s.watchDone
	}
	if s.hub != nil {
		s.hub.closeHub()
	}
	return nil
}

// Update is a convenience for single-goroutine use: it routes the packet to
// a shard by address hash. Concurrent producers should call
// Shard(i).Update directly instead.
func (s *Sharded) Update(src, dst netip.Addr) {
	h := hashAddrPair(src, dst)
	s.shards[h%uint64(len(s.shards))].Update(src, dst)
}

// UpdateWeighted is a convenience for single-goroutine use: it routes the
// weighted packet to a shard by address hash. Concurrent producers should
// call Shard(i).UpdateWeighted directly instead.
func (s *Sharded) UpdateWeighted(src, dst netip.Addr, w uint64) {
	h := hashAddrPair(src, dst)
	s.shards[h%uint64(len(s.shards))].UpdateWeighted(src, dst, w)
}

// UpdateBatch routes a batch of packets to their shards and feeds each
// shard its sub-batch in one call, preserving per-shard arrival order. For
// one-dimensional monitors pass dsts == nil. Single-goroutine use, like
// Update; concurrent producers should call Shard(i).UpdateBatch directly.
func (s *Sharded) UpdateBatch(srcs, dsts []netip.Addr) {
	if dsts == nil {
		if s.cfg.Dims == 2 {
			panic("rhhh: UpdateBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateBatch srcs/dsts length mismatch")
	}
	if s.srcBuf == nil {
		s.srcBuf = make([][]netip.Addr, len(s.shards))
		s.dstBuf = make([][]netip.Addr, len(s.shards))
	}
	for i := range s.srcBuf {
		s.srcBuf[i] = s.srcBuf[i][:0]
		s.dstBuf[i] = s.dstBuf[i][:0]
	}
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		shard := hashAddrPair(src, dst) % uint64(len(s.shards))
		s.srcBuf[shard] = append(s.srcBuf[shard], src)
		s.dstBuf[shard] = append(s.dstBuf[shard], dst)
	}
	for i, sh := range s.shards {
		if len(s.srcBuf[i]) != 0 {
			sh.UpdateBatch(s.srcBuf[i], s.dstBuf[i])
		}
	}
}

// UpdateWeightedBatch routes a batch of weighted packets to their shards and
// feeds each shard its sub-batch in one call, preserving per-shard arrival
// order. For one-dimensional monitors pass dsts == nil; ws must be the same
// length as srcs. Single-goroutine use, like UpdateBatch; concurrent
// producers should call Shard(i).UpdateWeightedBatch directly.
func (s *Sharded) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	if dsts == nil {
		if s.cfg.Dims == 2 {
			panic("rhhh: UpdateWeightedBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/dsts length mismatch")
	}
	if len(ws) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/weights length mismatch")
	}
	if s.srcBuf == nil {
		s.srcBuf = make([][]netip.Addr, len(s.shards))
		s.dstBuf = make([][]netip.Addr, len(s.shards))
	}
	if s.wBuf == nil {
		s.wBuf = make([][]uint64, len(s.shards))
	}
	for i := range s.srcBuf {
		s.srcBuf[i] = s.srcBuf[i][:0]
		s.dstBuf[i] = s.dstBuf[i][:0]
		s.wBuf[i] = s.wBuf[i][:0]
	}
	for i, src := range srcs {
		var dst netip.Addr
		if dsts != nil {
			dst = dsts[i]
		}
		shard := hashAddrPair(src, dst) % uint64(len(s.shards))
		s.srcBuf[shard] = append(s.srcBuf[shard], src)
		s.dstBuf[shard] = append(s.dstBuf[shard], dst)
		s.wBuf[shard] = append(s.wBuf[shard], ws[i])
	}
	for i, sh := range s.shards {
		if len(s.srcBuf[i]) != 0 {
			sh.UpdateWeightedBatch(s.srcBuf[i], s.dstBuf[i], s.wBuf[i])
		}
	}
}

func hashAddrPair(src, dst netip.Addr) uint64 {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	a := src.As16()
	b := dst.As16()
	var h uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < 16; i += 8 {
		h = mix(h ^ beUint64(a[i:]) ^ mix(beUint64(b[i:])))
	}
	return h
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
