package rhhh

// TickWatch runs one standing-query tick synchronously — the test hook the
// differential tests use to interleave ticks deterministically with updates
// (the production Sharded driver ticks on its own interval).
func (s *Sharded) TickWatch() {
	s.watchMu.Lock()
	hub := s.hub
	s.watchMu.Unlock()
	if hub != nil {
		hub.tick()
	}
}
