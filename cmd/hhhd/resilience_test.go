package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhhh"
	"rhhh/internal/telemetry"
)

// overloadServer builds a daemon with a tiny admission gate and short
// request deadline, behind a real HTTP listener.
func overloadServer(t *testing.T, o serverOptions) (*server, *httptest.Server) {
	t.Helper()
	mon, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(mon, 0.05, o)
	heavy := netip.MustParseAddr("10.1.2.3")
	for range 64 {
		mon.Worker(0).Update(heavy, heavy)
	}
	mon.Worker(0).Sync()
	ts := httptest.NewServer(newMux(srv))
	t.Cleanup(func() {
		ts.Close()
		_ = mon.Close()
	})
	return srv, ts
}

// TestOverloadSheds pins the bounded-latency contract: with the query mutex
// wedged and the gate full, excess /query requests get an immediate 503 +
// Retry-After instead of queuing, the shed counter and healthz stay
// observable, and every request completes in bounded time.
func TestOverloadSheds(t *testing.T) {
	srv, ts := overloadServer(t, serverOptions{queryLimit: 2, reqTimeout: 300 * time.Millisecond})

	srv.qmu.Lock() // wedge the query surface
	unlocked := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		srv.qmu.Unlock()
		close(unlocked)
	}()

	const clients = 20
	var wg sync.WaitGroup
	var shed503, slow atomic.Uint64
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := ts.Client().Get(ts.URL + "/query")
			if time.Since(t0) > 5*time.Second {
				slow.Add(1)
			}
			if err != nil {
				return // admitted request whose deadline killed the write
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
				shed503.Add(1)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("overload burst took %v, want bounded", d)
	}
	if slow.Load() != 0 {
		t.Fatalf("%d requests exceeded the latency bound", slow.Load())
	}
	// At most queryLimit requests were admitted; the rest must carry the
	// shed signature.
	if got := shed503.Load(); got < clients-2 {
		t.Fatalf("shed 503s = %d, want >= %d", got, clients-2)
	}
	if srv.gate.Sheds() < clients-2 {
		t.Fatalf("gate shed counter = %d, want >= %d", srv.gate.Sheds(), clients-2)
	}

	// The observability surfaces are never gated: both respond while the
	// query path is wedged (the mutex is unlocked by now, but the gate
	// slots may still be held).
	for _, ep := range []string{"/healthz", "/metrics"} {
		resp, err := ts.Client().Get(ts.URL + ep)
		if err != nil {
			t.Fatalf("%s under overload: %v", ep, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	<-unlocked
	// Recovered: a fresh query succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/query")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("query path did not recover after overload")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchSlowClientDropped pins the SSE write-deadline path: a client that
// cannot absorb writes is disconnected (counted) instead of parking the
// handler in Write forever.
func TestWatchSlowClientDropped(t *testing.T) {
	srv, ts := overloadServer(t, serverOptions{watchWrite: time.Nanosecond})
	resp, err := ts.Client().Get(ts.URL + "/watch?theta=0.2&interval=5ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The first event write happens against an already-expired deadline, so
	// the handler must drop us: the body ends and the counter moves.
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end for a slow client")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.sseDrops.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow-client drop not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchEndsOnDrain pins that beginDrain terminates live SSE streams so
// server shutdown is never held open by a connected watcher.
func TestWatchEndsOnDrain(t *testing.T) {
	srv, ts := overloadServer(t, serverOptions{})
	resp, err := ts.Client().Get(ts.URL + "/watch?theta=0.2&interval=5ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil { // stream is live
		t.Fatalf("first read: %v", err)
	}
	srv.beginDrain()
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not end the SSE stream")
	}
}

// TestConcurrentLoadNoLeak hammers every endpoint — parallel queries,
// metrics scrapes, SSE churn — then drains and closes, asserting the
// goroutine count returns to baseline. CI runs this under -race.
func TestConcurrentLoadNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		mon, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 7}, 2)
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(mon, 0.05, serverOptions{queryLimit: 4, reqTimeout: 2 * time.Second})
		heavy := netip.MustParseAddr("10.1.2.3")
		for range 64 {
			mon.Worker(0).Update(heavy, heavy)
		}
		mon.Worker(0).Sync()
		ts := httptest.NewServer(newMux(srv))
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := ts.Client().Get(ts.URL + "/query?theta=0.2")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					resp, err = ts.Client().Get(ts.URL + "/metrics")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}()
		}
		// SSE churn: short-lived watch subscriptions opening and closing
		// while queries run.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := ts.Client().Get(ts.URL + "/watch?theta=0.2&interval=5ms")
					if err != nil {
						continue
					}
					buf := make([]byte, 256)
					_, _ = resp.Body.Read(buf)
					resp.Body.Close()
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		// Shutdown mid-request: drain while the load is still running.
		srv.beginDrain()
		close(stop)
		wg.Wait()
		ts.Close()
		if err := mon.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKeepBatchCadence pins the degrade-sampling phase: the keep decision
// advances exactly once per generated batch, keeping every k-th batch
// forever. The previous accounting derived the phase from packet totals
// that counted skipped packets twice, so at k=2 it kept exactly one batch
// and then dropped every batch after the first skip.
func TestKeepBatchCadence(t *testing.T) {
	for _, k := range []uint64{0, 1, 2, 3, 8} {
		kept := 0
		for i := uint64(0); i < 64; i++ {
			if keepBatch(i, k) {
				kept++
				if k > 1 && i%k != 0 {
					t.Fatalf("k=%d kept batch %d, want only window leaders", k, i)
				}
			}
		}
		want := 64
		if k > 1 {
			want = int((64 + k - 1) / k)
		}
		if kept != want {
			t.Fatalf("k=%d kept %d of 64 batches, want %d", k, kept, want)
		}
	}
}

// engineSeries scrapes one per-worker engine counter out of reg.
func engineSeries(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	var sb strings.Builder
	if _, err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseProm(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing from the exposition", name)
	}
	for _, s := range f.Samples {
		if s.Labels == `worker="0"` {
			return uint64(s.Value)
		}
	}
	t.Fatalf(`series %s{worker="0"} missing`, name)
	return 0
}

// TestFeedThinningUnbiased drives the real feeder with the degrade-sampling
// lever engaged and pins both halves of the contract through the engine
// counters: half the generated packets are actually ingested (the thinning)
// and the ingested weight equals the full generated stream (the weight
// compensation that keeps published estimates unbiased).
func TestFeedThinningUnbiased(t *testing.T) {
	mon, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	reg := telemetry.NewRegistry()
	mon.Instrument(reg)

	var fed atomic.Uint64
	var thin atomic.Uint32
	thin.Store(2)
	const n = 8 * feedBatch
	feed(context.Background(), mon.Worker(0), feederConfig{
		profile: "chicago16", seed: 1, n: n, fed: &fed, thin: &thin,
	})

	// The broken phase accounting published exactly one batch's weight here.
	if got := mon.N(); got != n {
		t.Fatalf("published weight = %d, want %d (thinning must stay weight-compensated)", got, n)
	}
	if got := fed.Load(); got != n/feedBatch {
		t.Fatalf("fed ticks = %d, want %d (one per generated batch, kept or dropped)", got, n/feedBatch)
	}
	if got := engineSeries(t, reg, "rhhh_engine_packets_total"); got != n/2 {
		t.Fatalf("raw packets ingested = %d, want %d (every other batch dropped)", got, n/2)
	}
	if got := engineSeries(t, reg, "rhhh_engine_weight_total"); got != n {
		t.Fatalf("ingested weight = %d, want %d (kept packets carry weight 2)", got, n)
	}
}
