// Command hhhd is the long-running hierarchical heavy hitters daemon: a
// sharded RHHH monitor fed by per-worker traffic sources, exposing the
// operational endpoints a deployment scrapes and queries:
//
//	GET /metrics   Prometheus text exposition of the full telemetry catalogue
//	GET /healthz   liveness plus the published N / convergence state
//	GET /query     heavy hitters as JSON (?theta= overrides the default)
//	GET /snapshot  the merged engine snapshot, binary (restorable, mergeable)
//	GET /watch     standing-query deltas as server-sent events
//
// The built-in feeder replays the synthetic CAIDA stand-in profiles, one
// independent source per worker — the self-contained mode CI smoke tests
// and load experiments use. With -n 0 the feeders run until shutdown.
//
// Profiling: -debug-addr serves net/http/pprof on a separate listener, kept
// off the operational port so scrapes never contend with profile captures.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"rhhh"
	"rhhh/internal/hierarchy"
	"rhhh/internal/resilience"
	"rhhh/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9120", "HTTP listen address for the operational endpoints")
		debugAddr = flag.String("debug-addr", "", "optional listen address for net/http/pprof (empty = disabled)")
		workers   = flag.Int("workers", max(2, runtime.GOMAXPROCS(0)/2), "sharded ingest workers (one feeder goroutine each)")
		profile   = flag.String("profile", "chicago16", "synthetic profile: "+fmt.Sprint(trace.ProfileNames()))
		n         = flag.Uint64("n", 0, "total packets to feed (0 = run until shutdown)")
		rate      = flag.Uint64("rate", 0, "total feed rate in packets/second (0 = unthrottled)")
		dims      = flag.Int("dims", 2, "hierarchy dimensions: 1 or 2")
		gran      = flag.String("gran", "bytes", "granularity: bytes|nibbles|bits")
		epsilon   = flag.Float64("epsilon", 0.001, "estimation error ε")
		delta     = flag.Float64("delta", 0.001, "failure probability δ")
		theta     = flag.Float64("theta", 0.01, "default HHH threshold θ for /query and /watch")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		vParam    = flag.Int("v", 0, "RHHH performance parameter V (0 = H, e.g. 10*H for 10-RHHH)")
		backend   = flag.String("backend", "ss", "counter backend: ss|chk|heap")

		queryLimit  = flag.Int("query-limit", 16, "max concurrent /query + /snapshot requests; excess shed with 503")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request deadline on /query and /snapshot")
		watchWrite  = flag.Duration("watch-write-timeout", 5*time.Second, "per-write deadline on /watch SSE streams; slow clients are dropped")
		degradeLag  = flag.Duration("degrade-lag", 2*time.Second, "publication-age watermark engaging the adaptive-degrade ladder (0 = disabled)")
		degradeSamp = flag.Bool("degrade-sampling", false, "let the degrade ladder also thin feeder intake (weight-compensated) on top of widening publication cadence")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for crash-safe incremental checkpoints (empty = disabled)")
		ckptEvery   = flag.Duration("checkpoint-every", 5*time.Second, "interval between incremental checkpoints")
		ckptFullEvr = flag.Int("checkpoint-full-every", 16, "journal segments between full checkpoints")
		drainTO     = flag.Duration("drain-timeout", 10*time.Second, "hard deadline for the graceful shutdown sequence")
	)
	flag.Parse()

	cfg := rhhh.Config{
		Dims:    *dims,
		Epsilon: *epsilon, Delta: *delta, Seed: *seed, V: *vParam,
		Algorithm: rhhh.RHHH,
	}
	switch *gran {
	case "bytes":
		cfg.Granularity = rhhh.Byte
	case "nibbles":
		cfg.Granularity = rhhh.Nibble
	case "bits":
		cfg.Granularity = rhhh.Bit
	default:
		fatalf("unknown granularity %q", *gran)
	}
	switch *backend {
	case "ss":
		cfg.Backend = rhhh.StreamSummary
	case "chk":
		cfg.Backend = rhhh.CuckooHeavyKeeper
	case "heap":
		cfg.Backend = rhhh.HeapSpaceSaving
	default:
		fatalf("unknown backend %q", *backend)
	}
	if *workers < 1 {
		fatalf("-workers must be positive")
	}

	mon, err := rhhh.NewSharded(cfg, *workers)
	if err != nil {
		fatalf("%v", err)
	}

	// Checkpointing: open the store and restore the last durable state
	// before any feeder runs (Restore requires the pre-producer window).
	var ckpt *rhhh.Checkpointer
	if *ckptDir != "" {
		store, err := resilience.OpenStore(*ckptDir, nil)
		if err != nil {
			fatalf("opening checkpoint store: %v", err)
		}
		ckpt = rhhh.NewCheckpointer(mon, store, *ckptFullEvr)
		restored, err := ckpt.Restore()
		if err != nil {
			fatalf("restoring checkpoint: %v", err)
		}
		if restored {
			gen, seq := store.Generation()
			fmt.Fprintf(os.Stderr, "hhhd: restored checkpoint generation %d (+%d segments), n=%d\n", gen, seq, mon.N())
		}
	}

	// Instrument before the feeders start: the per-worker hookup relies on
	// the goroutine-start happens-before edge (see Sharded.Instrument).
	srv := newServer(mon, *theta, serverOptions{
		queryLimit: *queryLimit,
		reqTimeout: *reqTimeout,
		watchWrite: *watchWrite,
		ckpt:       ckpt,
	})
	// Library-internal supervision (windowed merges, vswitch transports)
	// shares the daemon's counters and escalation hook.
	resilience.Default.Stats = srv.resPolicy.Stats
	resilience.Default.OnGiveUp = srv.resPolicy.OnGiveUp

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Feeders run supervised: a panic in the replay path is captured and
	// the feeder restarted with backoff instead of silently starving its
	// worker. fed ticks once per batch — the degrade controller's signal
	// that intake is active; thin > 1 makes feeders keep only every k-th
	// batch at weight k (unbiased, weight-compensated degrade sampling).
	var fed atomic.Uint64
	var thin atomic.Uint32
	feederDone := make([]<-chan struct{}, *workers)
	for i := 0; i < *workers; i++ {
		fc := feederConfig{
			profile: *profile,
			seed:    *seed + uint64(i)*0x9e3779b97f4a7c15,
			n:       perWorker(*n, *workers, i),
			rate:    *rate / uint64(*workers),
			fed:     &fed,
			thin:    &thin,
		}
		if *n != 0 && fc.n == 0 {
			// A bounded budget smaller than the worker count leaves this
			// feeder with nothing: don't start it — a zero share must not
			// read as "unlimited".
			done := make(chan struct{})
			close(done)
			feederDone[i] = done
			continue
		}
		w := mon.Worker(i)
		feederDone[i] = srv.resPolicy.Go(fmt.Sprintf("hhhd/feeder-%d", i), ctx.Done(), func() {
			feed(ctx, w, fc)
		})
	}

	// The degrade controller watches publication age while intake is
	// advancing and works the cadence levers when it crosses the watermark.
	degradeStop := make(chan struct{})
	degradeDone := startDegrade(srv, mon, degradeStop, *degradeLag, *degradeSamp, &fed, &thin)

	// The checkpoint loop writes an incremental checkpoint every interval;
	// failures are counted and retried next tick, never fatal.
	ckptStop := make(chan struct{})
	var ckptDone <-chan struct{}
	if ckpt != nil {
		ckptDone = srv.resPolicy.Go("hhhd/checkpoint", ckptStop, func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-tick.C:
					if _, err := ckpt.Checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "hhhd: checkpoint: %v\n", err)
					}
				}
			}
		})
	}

	httpSrv := &http.Server{Addr: *addr, Handler: newMux(srv)}
	go func() {
		fmt.Fprintf(os.Stderr, "hhhd: serving on http://%s (workers=%d profile=%s)\n", *addr, *workers, *profile)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatalf("%v", err)
		}
	}()
	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Fprintf(os.Stderr, "hhhd: pprof on http://%s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "hhhd: pprof server: %v\n", err)
			}
		}()
	}

	<-ctx.Done()
	// Graceful drain, under one hard deadline: stop intake and drain the
	// workers, write a final checkpoint of the quiesced state, then close
	// the HTTP surfaces (draining /healthz + ended /watch streams let the
	// load balancer and SSE clients move on immediately).
	fmt.Fprintln(os.Stderr, "hhhd: draining")
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTO)
	defer drainCancel()
	srv.beginDrain()
	drained := true
	for _, d := range feederDone {
		select {
		case <-d:
		case <-drainCtx.Done():
			drained = false
		}
		if !drained {
			fmt.Fprintln(os.Stderr, "hhhd: drain deadline hit; abandoning feeders")
			break
		}
	}
	close(degradeStop)
	<-degradeDone
	if ckpt != nil {
		close(ckptStop)
		// The final checkpoint needs the checkpoint loop to have actually
		// returned — Checkpointer is not concurrency-safe, and the loop may
		// still be inside a slow Checkpoint when the drain deadline fires —
		// so only proceed when <-ckptDone itself was observed.
		ckptIdle := false
		select {
		case <-ckptDone:
			ckptIdle = true
		case <-drainCtx.Done():
			fmt.Fprintln(os.Stderr, "hhhd: drain deadline hit waiting for checkpoint loop; skipping final checkpoint")
		}
		if drained && ckptIdle {
			// The workers are quiesced and synced: capture the final state.
			if _, err := ckpt.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "hhhd: final checkpoint: %v\n", err)
			}
		}
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(sdCtx)
	_ = mon.Close()
}

// startDegrade runs the adaptive-degrade control loop on a supervised
// goroutine. Lag is defined as the monitor's maximum publication age, but
// only while intake is advancing (fed ticking) — an idle daemon publishes
// nothing and must not read as overloaded. Each level widens the
// publication cadence 2×; with sampling degrade enabled it also thins
// feeder intake (weight-compensated) by the same factor.
func startDegrade(srv *server, mon *rhhh.Sharded, stop <-chan struct{}, watermark time.Duration, sampling bool, fed *atomic.Uint64, thin *atomic.Uint32) <-chan struct{} {
	if watermark <= 0 {
		done := make(chan struct{})
		close(done)
		return done
	}
	srv.degrader.Watermark = watermark
	srv.degrader.OnChange = func(old, new int) {
		mon.SetPublishScale(1 << uint(new))
		if sampling {
			thin.Store(1 << uint(new))
		}
		// Reflect the ladder on /healthz, without clobbering failing or
		// draining states the supervisor/shutdown own: SetIf holds the
		// health mutex across check and transition, so a concurrent
		// escalation to failing can never be overwritten by a stale
		// ok/degraded write from this loop.
		if new > 0 {
			srv.health.SetIf(resilience.HealthDegraded, fmt.Sprintf("ingest lag over watermark: degrade level %d", new),
				resilience.HealthOK, resilience.HealthDegraded)
		} else {
			srv.health.SetIf(resilience.HealthOK, "",
				resilience.HealthOK, resilience.HealthDegraded)
		}
		fmt.Fprintf(os.Stderr, "hhhd: degrade level %d -> %d\n", old, new)
	}
	period := watermark / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	return srv.resPolicy.Go("hhhd/degrade", stop, func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		lastFed := fed.Load()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				cur := fed.Load()
				var lag time.Duration
				if cur != lastFed {
					lag = mon.MaxPublishAge(now)
				}
				lastFed = cur
				srv.degrader.Observe(now, lag)
			}
		}
	})
}

// perWorker splits a total packet budget across workers (worker 0 absorbs
// the remainder); 0 stays 0 (unlimited).
func perWorker(n uint64, workers, i int) uint64 {
	if n == 0 {
		return 0
	}
	share := n / uint64(workers)
	if i == 0 {
		share += n % uint64(workers)
	}
	return share
}

type feederConfig struct {
	profile string
	seed    uint64
	n       uint64 // 0 = unlimited
	rate    uint64 // packets/second for this feeder, 0 = unthrottled
	// fed ticks once per fed batch — the degrade controller's evidence
	// that intake is active. thin > 1 keeps only every thin-th batch, at
	// weight thin, so degraded estimates stay unbiased. Both may be nil.
	fed  *atomic.Uint64
	thin *atomic.Uint32
}

// feedBatch is the feeder's batch size: large enough to amortize the routed
// batch path, small enough for sub-millisecond rate-control granularity.
const feedBatch = 256

// keepBatch reports whether the i-th generated batch (0-based) survives
// thinning factor k: the leader of every window of k consecutive batches is
// kept (fed at weight k, covering its k-1 dropped followers). The phase is
// a dedicated per-batch counter — deriving it from packet totals that mixed
// kept and skipped packets advanced it twice per skipped batch, wedging the
// k=2 ladder level into dropping every batch after the first skip.
func keepBatch(i, k uint64) bool { return k <= 1 || i%k == 0 }

// feed replays one synthetic source into one worker until the budget is
// spent or ctx is canceled, then publishes the worker's final state.
func feed(ctx context.Context, w *rhhh.Worker, fc feederConfig) {
	tc := trace.Profile(fc.profile)
	tc.Seed = fc.seed
	src := trace.NewSynthetic(tc)
	srcs := make([]netip.Addr, 0, feedBatch)
	dsts := make([]netip.Addr, 0, feedBatch)
	var weights []uint64
	var generated, batches uint64
	var interval time.Duration
	if fc.rate > 0 {
		interval = time.Duration(uint64(time.Second) * feedBatch / fc.rate)
	}
	next := time.Now()
	for ctx.Err() == nil && (fc.n == 0 || generated < fc.n) {
		batch := uint64(feedBatch)
		if fc.n != 0 && fc.n-generated < batch {
			batch = fc.n - generated
		}
		srcs, dsts = srcs[:0], dsts[:0]
		for range batch {
			p, ok := src.Next()
			if !ok {
				break
			}
			srcs = append(srcs, toNetip(p.SrcIP, p.V6))
			dsts = append(dsts, toNetip(p.DstIP, p.V6))
		}
		if len(srcs) == 0 {
			break
		}
		k := uint64(1)
		if fc.thin != nil {
			if t := fc.thin.Load(); t > 1 {
				k = uint64(t)
			}
		}
		switch {
		case !keepBatch(batches, k):
			// Degrade sampling: drop this batch; the kept batch leading its
			// window of k carries the dropped ones' weight so published
			// estimates stay unbiased.
		case k > 1:
			for len(weights) < len(srcs) {
				weights = append(weights, 0)
			}
			for i := range srcs {
				weights[i] = k
			}
			w.UpdateWeightedBatch(srcs, dsts, weights[:len(srcs)])
		default:
			w.UpdateBatch(srcs, dsts)
		}
		batches++
		generated += uint64(len(srcs))
		if fc.fed != nil {
			fc.fed.Add(1)
		}
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(d):
				}
			} else {
				next = time.Now() // fell behind; don't accumulate debt
			}
		}
	}
	w.Sync()
}

// toNetip converts the internal 128-bit address form to netip. IPv4
// addresses live in the top 32 bits (see hierarchy.AddrFromIPv4).
func toNetip(a hierarchy.Addr, v6 bool) netip.Addr {
	b := a.Bytes16()
	if v6 {
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hhhd: "+format+"\n", args...)
	os.Exit(2)
}
