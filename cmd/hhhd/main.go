// Command hhhd is the long-running hierarchical heavy hitters daemon: a
// sharded RHHH monitor fed by per-worker traffic sources, exposing the
// operational endpoints a deployment scrapes and queries:
//
//	GET /metrics   Prometheus text exposition of the full telemetry catalogue
//	GET /healthz   liveness plus the published N / convergence state
//	GET /query     heavy hitters as JSON (?theta= overrides the default)
//	GET /snapshot  the merged engine snapshot, binary (restorable, mergeable)
//	GET /watch     standing-query deltas as server-sent events
//
// The built-in feeder replays the synthetic CAIDA stand-in profiles, one
// independent source per worker — the self-contained mode CI smoke tests
// and load experiments use. With -n 0 the feeders run until shutdown.
//
// Profiling: -debug-addr serves net/http/pprof on a separate listener, kept
// off the operational port so scrapes never contend with profile captures.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"rhhh"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9120", "HTTP listen address for the operational endpoints")
		debugAddr = flag.String("debug-addr", "", "optional listen address for net/http/pprof (empty = disabled)")
		workers   = flag.Int("workers", max(2, runtime.GOMAXPROCS(0)/2), "sharded ingest workers (one feeder goroutine each)")
		profile   = flag.String("profile", "chicago16", "synthetic profile: "+fmt.Sprint(trace.ProfileNames()))
		n         = flag.Uint64("n", 0, "total packets to feed (0 = run until shutdown)")
		rate      = flag.Uint64("rate", 0, "total feed rate in packets/second (0 = unthrottled)")
		dims      = flag.Int("dims", 2, "hierarchy dimensions: 1 or 2")
		gran      = flag.String("gran", "bytes", "granularity: bytes|nibbles|bits")
		epsilon   = flag.Float64("epsilon", 0.001, "estimation error ε")
		delta     = flag.Float64("delta", 0.001, "failure probability δ")
		theta     = flag.Float64("theta", 0.01, "default HHH threshold θ for /query and /watch")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		vParam    = flag.Int("v", 0, "RHHH performance parameter V (0 = H, e.g. 10*H for 10-RHHH)")
		backend   = flag.String("backend", "ss", "counter backend: ss|chk|heap")
	)
	flag.Parse()

	cfg := rhhh.Config{
		Dims:    *dims,
		Epsilon: *epsilon, Delta: *delta, Seed: *seed, V: *vParam,
		Algorithm: rhhh.RHHH,
	}
	switch *gran {
	case "bytes":
		cfg.Granularity = rhhh.Byte
	case "nibbles":
		cfg.Granularity = rhhh.Nibble
	case "bits":
		cfg.Granularity = rhhh.Bit
	default:
		fatalf("unknown granularity %q", *gran)
	}
	switch *backend {
	case "ss":
		cfg.Backend = rhhh.StreamSummary
	case "chk":
		cfg.Backend = rhhh.CuckooHeavyKeeper
	case "heap":
		cfg.Backend = rhhh.HeapSpaceSaving
	default:
		fatalf("unknown backend %q", *backend)
	}
	if *workers < 1 {
		fatalf("-workers must be positive")
	}

	mon, err := rhhh.NewSharded(cfg, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	// Instrument before the feeders start: the per-worker hookup relies on
	// the goroutine-start happens-before edge (see Sharded.Instrument).
	srv := newServer(mon, *theta)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feed(ctx, mon.Worker(i), feederConfig{
				profile: *profile,
				seed:    *seed + uint64(i)*0x9e3779b97f4a7c15,
				n:       perWorker(*n, *workers, i),
				rate:    *rate / uint64(*workers),
			})
		}(i)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: newMux(srv)}
	go func() {
		fmt.Fprintf(os.Stderr, "hhhd: serving on http://%s (workers=%d profile=%s)\n", *addr, *workers, *profile)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatalf("%v", err)
		}
	}()
	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Fprintf(os.Stderr, "hhhd: pprof on http://%s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "hhhd: pprof server: %v\n", err)
			}
		}()
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "hhhd: shutting down")
	wg.Wait() // feeders observe ctx and stop; their workers quiesce
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(sdCtx)
	_ = mon.Close()
}

// perWorker splits a total packet budget across workers (worker 0 absorbs
// the remainder); 0 stays 0 (unlimited).
func perWorker(n uint64, workers, i int) uint64 {
	if n == 0 {
		return 0
	}
	share := n / uint64(workers)
	if i == 0 {
		share += n % uint64(workers)
	}
	return share
}

type feederConfig struct {
	profile string
	seed    uint64
	n       uint64 // 0 = unlimited
	rate    uint64 // packets/second for this feeder, 0 = unthrottled
}

// feedBatch is the feeder's batch size: large enough to amortize the routed
// batch path, small enough for sub-millisecond rate-control granularity.
const feedBatch = 256

// feed replays one synthetic source into one worker until the budget is
// spent or ctx is canceled, then publishes the worker's final state.
func feed(ctx context.Context, w *rhhh.Worker, fc feederConfig) {
	tc := trace.Profile(fc.profile)
	tc.Seed = fc.seed
	src := trace.NewSynthetic(tc)
	srcs := make([]netip.Addr, 0, feedBatch)
	dsts := make([]netip.Addr, 0, feedBatch)
	var sent uint64
	var interval time.Duration
	if fc.rate > 0 {
		interval = time.Duration(uint64(time.Second) * feedBatch / fc.rate)
	}
	next := time.Now()
	for ctx.Err() == nil && (fc.n == 0 || sent < fc.n) {
		batch := uint64(feedBatch)
		if fc.n != 0 && fc.n-sent < batch {
			batch = fc.n - sent
		}
		srcs, dsts = srcs[:0], dsts[:0]
		for range batch {
			p, ok := src.Next()
			if !ok {
				break
			}
			srcs = append(srcs, toNetip(p.SrcIP, p.V6))
			dsts = append(dsts, toNetip(p.DstIP, p.V6))
		}
		if len(srcs) == 0 {
			break
		}
		w.UpdateBatch(srcs, dsts)
		sent += uint64(len(srcs))
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(d):
				}
			} else {
				next = time.Now() // fell behind; don't accumulate debt
			}
		}
	}
	w.Sync()
}

// toNetip converts the internal 128-bit address form to netip. IPv4
// addresses live in the top 32 bits (see hierarchy.AddrFromIPv4).
func toNetip(a hierarchy.Addr, v6 bool) netip.Addr {
	b := a.Bytes16()
	if v6 {
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hhhd: "+format+"\n", args...)
	os.Exit(2)
}
