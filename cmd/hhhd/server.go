package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rhhh"
	"rhhh/internal/telemetry"
)

// server holds the daemon's query surfaces. The monitor's query methods
// return reused aggregator buffers, so qmu serializes every handler that
// reads one (queries render their JSON while holding it).
type server struct {
	reg   *telemetry.Registry
	mon   *rhhh.Sharded
	theta float64 // default query threshold
	start time.Time

	qmu     sync.Mutex
	snapBuf []byte // reused /snapshot encode target
}

// catalogueEntry documents one exposed metric family: the golden test
// asserts the live /metrics output matches this list, and the README's
// observability table is generated from the same data.
type catalogueEntry struct {
	Name  string
	Type  string // counter | gauge | histogram
	Layer string // which subsystem owns the publication
	Help  string
}

// metricCatalogue is every family a fully instrumented Sharded monitor plus
// the daemon itself exposes. Keep it in sync with the Register methods in
// internal/telemetry/stats.go and newServer below.
var metricCatalogue = []catalogueEntry{
	{"rhhh_engine_packets_total", "counter", "engine", "Packets ingested by the update path."},
	{"rhhh_engine_weight_total", "counter", "engine", "Total weight ingested by the update path."},
	{"rhhh_engine_samples_total", "counter", "engine", "Sampled updates forwarded to a lattice node."},
	{"rhhh_engine_batches_total", "counter", "engine", "Batch kernel invocations."},
	{"rhhh_counter_evictions_total", "counter", "backend", "Space Saving minimum-counter takeovers."},
	{"rhhh_counter_decays_total", "counter", "backend", "CHK probabilistic decay decrements."},
	{"rhhh_counter_takeovers_total", "counter", "backend", "CHK decayed-slot takeovers."},
	{"rhhh_counter_occupied", "gauge", "backend", "Monitored keys across all lattice nodes."},
	{"rhhh_counter_slots", "gauge", "backend", "Counter slots across all lattice nodes."},
	{"rhhh_counter_stash_depth", "gauge", "backend", "Cuckoo stash entries across all lattice nodes."},
	{"rhhh_worker_publications_total", "counter", "sharded", "Snapshots published by the worker."},
	{"rhhh_worker_syncs_total", "counter", "sharded", "Explicit worker Sync barriers."},
	{"rhhh_worker_epoch", "gauge", "sharded", "Epoch of the worker's last published snapshot."},
	{"rhhh_pubring_slots", "gauge", "sharded", "Publication-ring slots currently allocated."},
	{"rhhh_worker_publish_age_seconds", "gauge", "sharded", "Seconds since the worker's last snapshot publication."},
	{"rhhh_queries_total", "counter", "query", "Heavy-hitter query and snapshot evaluations."},
	{"rhhh_query_pin_retries_total", "counter", "query", "Publication-pin retries against racing publications."},
	{"rhhh_query_hits", "gauge", "query", "Result size of the last heavy-hitters query."},
	{"rhhh_watch_ticks_total", "counter", "watch", "Standing-query delta-computation ticks."},
	{"rhhh_watch_deliveries_total", "counter", "watch", "Watch deltas delivered to subscribers."},
	{"rhhh_watch_drops_total", "counter", "watch", "Watch deltas dropped on full subscriber buffers."},
	{"rhhh_watch_subscriptions", "gauge", "watch", "Live watch subscriptions."},
	{"rhhh_watch_differ_entries", "gauge", "watch", "Tracked entries across subscription differs."},
	{"rhhh_watch_tick_seconds", "histogram", "watch", "Wall time of a standing-query tick."},
	{"hhhd_uptime_seconds", "gauge", "daemon", "Seconds since the daemon started."},
	{"hhhd_published_packets", "gauge", "daemon", "Combined published stream weight (N)."},
	{"hhhd_converged", "gauge", "daemon", "Whether the published N passed the psi convergence bound."},
}

// newServer instruments mon with a fresh registry, adds the daemon-level
// gauges, and returns the server.
func newServer(mon *rhhh.Sharded, theta float64) *server {
	s := &server{
		reg:   telemetry.NewRegistry(),
		mon:   mon,
		theta: theta,
		start: time.Now(),
	}
	mon.Instrument(s.reg)
	s.reg.GaugeFunc("hhhd_uptime_seconds", "", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reg.GaugeFunc("hhhd_published_packets", "", "Combined published stream weight (N).", func() float64 {
		return float64(mon.N())
	})
	s.reg.GaugeFunc("hhhd_converged", "", "Whether the published N passed the psi convergence bound.", func() float64 {
		if mon.Converged() {
			return 1
		}
		return 0
	})
	return s
}

// newMux wires the operational endpoints.
func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /watch", s.handleWatch)
	return mux
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WritePrometheus(w)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok n=%d psi=%.0f converged=%v workers=%d uptime=%s\n",
		s.mon.N(), s.mon.Psi(), s.mon.Converged(), s.mon.Workers(),
		time.Since(s.start).Round(time.Second))
}

// queryResponse is the /query JSON shape.
type queryResponse struct {
	Theta     float64       `json:"theta"`
	N         uint64        `json:"n"`
	Threshold float64       `json:"threshold"`
	Converged bool          `json:"converged"`
	Count     int           `json:"count"`
	Hits      []queryResult `json:"hits"`
}

type queryResult struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst,omitempty"`
	Text  string  `json:"text"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
	Cond  float64 `json:"cond"`
	Level int     `json:"level"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	theta := s.theta
	if q := r.URL.Query().Get("theta"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || !(v > 0 && v <= 1) {
			http.Error(w, "theta must be a number in (0, 1]", http.StatusBadRequest)
			return
		}
		theta = v
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	hits := s.mon.HeavyHitters(theta)
	n := s.mon.N()
	resp := queryResponse{
		Theta:     theta,
		N:         n,
		Threshold: theta * float64(n),
		Converged: s.mon.Converged(),
		Count:     len(hits),
		Hits:      make([]queryResult, len(hits)),
	}
	for i, h := range hits {
		qr := queryResult{
			Src: h.Src.String(), Text: h.Text,
			Lower: h.Lower, Upper: h.Upper, Cond: h.Cond, Level: h.Level,
		}
		if h.Dst.IsValid() {
			qr.Dst = h.Dst.String()
		}
		resp.Hits[i] = qr
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.qmu.Lock()
	snap := s.mon.Snapshot()
	data, err := snap.MarshalBinary()
	if err == nil {
		s.snapBuf = append(s.snapBuf[:0], data...)
		data = s.snapBuf
	}
	s.qmu.Unlock()
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="hhh.snapshot"`)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// watchEvent is the /watch SSE data payload: one standing-query delta.
type watchEvent struct {
	Seq      uint64   `json:"seq"`
	N        uint64   `json:"n"`
	Theta    float64  `json:"theta"`
	Dropped  uint64   `json:"dropped,omitempty"`
	Admitted []string `json:"admitted,omitempty"`
	Retired  []string `json:"retired,omitempty"`
	Updated  []string `json:"updated,omitempty"`
}

// handleWatch streams standing-query deltas as server-sent events. Query
// parameters: theta (default: the daemon's -theta), k (auto-tune to top-k,
// overrides theta), min_delta (update hysteresis, stream units), interval
// (tick interval, Go duration). The stream ends when the client disconnects.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	opts := rhhh.WatchOptions{Theta: s.theta}
	q := r.URL.Query()
	if v := q.Get("theta"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || !(t > 0 && t <= 1) {
			http.Error(w, "theta must be a number in (0, 1]", http.StatusBadRequest)
			return
		}
		opts.Theta = t
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
		opts.Theta, opts.AutoThetaK = 0, k
	}
	if v := q.Get("min_delta"); v != "" {
		md, err := strconv.ParseFloat(v, 64)
		if err != nil || md < 0 {
			http.Error(w, "min_delta must be a non-negative number", http.StatusBadRequest)
			return
		}
		opts.MinDelta = md
	}
	if v := q.Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "interval must be a positive duration", http.StatusBadRequest)
			return
		}
		opts.Interval = d
	}
	sub, err := s.mon.Watch(opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case d, ok := <-sub.Events():
			if !ok {
				return
			}
			ev := watchEvent{Seq: d.Seq, N: d.N, Theta: d.Theta, Dropped: d.Dropped}
			for _, h := range d.Admitted {
				ev.Admitted = append(ev.Admitted, h.Text)
			}
			for _, h := range d.Retired {
				ev.Retired = append(ev.Retired, h.Text)
			}
			for _, h := range d.Updated {
				ev.Updated = append(ev.Updated, h.Text)
			}
			if _, err := fmt.Fprintf(w, "event: delta\ndata: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends the \n
				return
			}
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
