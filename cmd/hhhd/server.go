package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rhhh"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
)

// server holds the daemon's query surfaces. The monitor's query methods
// return reused aggregator buffers, so qmu serializes every handler that
// reads one (queries render their JSON while holding it).
type server struct {
	reg   *telemetry.Registry
	mon   *rhhh.Sharded
	theta float64 // default query threshold
	start time.Time

	qmu     sync.Mutex
	snapBuf []byte // reused /snapshot encode target

	// Resilience surfaces. The gate bounds concurrent /query + /snapshot
	// work (excess sheds with 503 + Retry-After), health backs /healthz,
	// the degrader is driven by main's control loop, and resPolicy
	// supervises every daemon-owned background goroutine (feeders, watch
	// driver, degrade controller, checkpoint loop).
	gate       *resilience.Gate
	health     *resilience.Health
	degrader   *resilience.Degrader
	resStats   resilience.Stats
	resPolicy  *resilience.Policy
	reqTimeout time.Duration
	watchWrite time.Duration
	retryAfter time.Duration
	shutdown   chan struct{}  // closed by beginDrain: ends every /watch stream
	sseDrops   telemetry.Cell // /watch clients dropped on a failed or timed-out write

	ckpt      *rhhh.Checkpointer   // nil when checkpointing is disabled
	ckptStats resilience.StoreStats // placeholder registered when ckpt == nil
}

// serverOptions tunes the resilience surfaces; zero values pick the
// defaults noted per field.
type serverOptions struct {
	queryLimit int                // concurrent /query + /snapshot admissions (16)
	reqTimeout time.Duration      // per-request deadline (10s)
	watchWrite time.Duration      // per-SSE-write deadline (5s)
	retryAfter time.Duration      // Retry-After hint on shed (1s)
	ckpt       *rhhh.Checkpointer // optional checkpoint store to instrument
}

// catalogueEntry documents one exposed metric family: the golden test
// asserts the live /metrics output matches this list, and the README's
// observability table is generated from the same data.
type catalogueEntry struct {
	Name  string
	Type  string // counter | gauge | histogram
	Layer string // which subsystem owns the publication
	Help  string
}

// metricCatalogue is every family a fully instrumented Sharded monitor plus
// the daemon itself exposes. Keep it in sync with the Register methods in
// internal/telemetry/stats.go and newServer below.
var metricCatalogue = []catalogueEntry{
	{"rhhh_engine_packets_total", "counter", "engine", "Packets ingested by the update path."},
	{"rhhh_engine_weight_total", "counter", "engine", "Total weight ingested by the update path."},
	{"rhhh_engine_samples_total", "counter", "engine", "Sampled updates forwarded to a lattice node."},
	{"rhhh_engine_batches_total", "counter", "engine", "Batch kernel invocations."},
	{"rhhh_counter_evictions_total", "counter", "backend", "Space Saving minimum-counter takeovers."},
	{"rhhh_counter_decays_total", "counter", "backend", "CHK probabilistic decay decrements."},
	{"rhhh_counter_takeovers_total", "counter", "backend", "CHK decayed-slot takeovers."},
	{"rhhh_counter_occupied", "gauge", "backend", "Monitored keys across all lattice nodes."},
	{"rhhh_counter_slots", "gauge", "backend", "Counter slots across all lattice nodes."},
	{"rhhh_counter_stash_depth", "gauge", "backend", "Cuckoo stash entries across all lattice nodes."},
	{"rhhh_worker_publications_total", "counter", "sharded", "Snapshots published by the worker."},
	{"rhhh_worker_syncs_total", "counter", "sharded", "Explicit worker Sync barriers."},
	{"rhhh_worker_epoch", "gauge", "sharded", "Epoch of the worker's last published snapshot."},
	{"rhhh_pubring_slots", "gauge", "sharded", "Publication-ring slots currently allocated."},
	{"rhhh_worker_publish_age_seconds", "gauge", "sharded", "Seconds since the worker's last snapshot publication."},
	{"rhhh_queries_total", "counter", "query", "Heavy-hitter query and snapshot evaluations."},
	{"rhhh_query_pin_retries_total", "counter", "query", "Publication-pin retries against racing publications."},
	{"rhhh_query_hits", "gauge", "query", "Result size of the last heavy-hitters query."},
	{"rhhh_watch_ticks_total", "counter", "watch", "Standing-query delta-computation ticks."},
	{"rhhh_watch_deliveries_total", "counter", "watch", "Watch deltas delivered to subscribers."},
	{"rhhh_watch_drops_total", "counter", "watch", "Watch deltas dropped on full subscriber buffers."},
	{"rhhh_watch_subscriptions", "gauge", "watch", "Live watch subscriptions."},
	{"rhhh_watch_differ_entries", "gauge", "watch", "Tracked entries across subscription differs."},
	{"rhhh_watch_tick_seconds", "histogram", "watch", "Wall time of a standing-query tick."},
	{"hhhd_uptime_seconds", "gauge", "daemon", "Seconds since the daemon started."},
	{"hhhd_published_packets", "gauge", "daemon", "Combined published stream weight (N)."},
	{"hhhd_converged", "gauge", "daemon", "Whether the published N passed the psi convergence bound."},
	{"hhhd_watch_client_drops_total", "counter", "daemon", "Slow or gone /watch clients dropped on a failed or timed-out write."},
	{"hhh_resilience_panics_total", "counter", "resilience", "Panics captured in supervised goroutines."},
	{"hhh_resilience_restarts_total", "counter", "resilience", "Supervised goroutine restarts after a captured panic."},
	{"hhh_resilience_giveups_total", "counter", "resilience", "Supervised goroutines abandoned after exhausting restarts."},
	{"hhh_resilience_supervised", "gauge", "resilience", "Supervised goroutines currently running."},
	{"hhh_resilience_admitted_total", "counter", "resilience", "Requests admitted by the gate."},
	{"hhh_resilience_shed_total", "counter", "resilience", "Requests shed by the admission gate (503)."},
	{"hhh_resilience_inflight", "gauge", "resilience", "Requests currently admitted by the gate."},
	{"hhh_resilience_health_state", "gauge", "resilience", "Health state: 0 ok, 1 degraded, 2 failing, 3 draining."},
	{"hhh_resilience_degrade_level", "gauge", "resilience", "Current adaptive-degrade level (0 = full fidelity)."},
	{"hhh_resilience_degrade_steps_total", "counter", "resilience", "Degrade-ladder step-ups."},
	{"hhh_resilience_checkpoint_fulls_total", "counter", "resilience", "Full checkpoints durably written."},
	{"hhh_resilience_checkpoint_segments_total", "counter", "resilience", "Incremental journal segments durably written."},
	{"hhh_resilience_checkpoint_failures_total", "counter", "resilience", "Checkpoint writes that failed without corrupting state."},
	{"hhh_resilience_checkpoint_bytes_total", "counter", "resilience", "Checkpoint payload bytes durably written."},
	{"hhh_resilience_checkpoint_generation", "gauge", "resilience", "Current checkpoint generation."},
}

// newServer instruments mon with a fresh registry, adds the daemon-level
// gauges and the resilience surfaces, and returns the server. The monitor's
// background goroutines are re-pointed at the server's supervision policy.
func newServer(mon *rhhh.Sharded, theta float64, o serverOptions) *server {
	if o.queryLimit <= 0 {
		o.queryLimit = 16
	}
	if o.reqTimeout <= 0 {
		o.reqTimeout = 10 * time.Second
	}
	if o.watchWrite <= 0 {
		o.watchWrite = 5 * time.Second
	}
	if o.retryAfter <= 0 {
		o.retryAfter = time.Second
	}
	s := &server{
		reg:        telemetry.NewRegistry(),
		mon:        mon,
		theta:      theta,
		start:      time.Now(),
		gate:       resilience.NewGate(o.queryLimit),
		health:     &resilience.Health{},
		degrader:   &resilience.Degrader{},
		reqTimeout: o.reqTimeout,
		watchWrite: o.watchWrite,
		retryAfter: o.retryAfter,
		shutdown:   make(chan struct{}),
		ckpt:       o.ckpt,
	}
	s.resPolicy = &resilience.Policy{
		Stats: &s.resStats,
		OnGiveUp: func(name string, v any) {
			// A goroutine the supervisor abandoned is an unrecoverable loss
			// of function: surface it on /healthz instead of limping silently.
			s.health.Set(resilience.HealthFailing, fmt.Sprintf("supervised goroutine %s gave up: %v", name, v))
		},
	}
	mon.SetResiliencePolicy(s.resPolicy)
	mon.Instrument(s.reg)
	s.resStats.Register(s.reg, "")
	s.gate.Register(s.reg, "")
	s.health.Register(s.reg, "")
	s.degrader.Register(s.reg, "")
	if s.ckpt != nil {
		s.ckpt.Instrument(s.reg)
	} else {
		// Register a zeroed block so the exposition (and its golden test)
		// is identical whether or not checkpointing is enabled.
		s.ckptStats.Register(s.reg, "")
	}
	s.reg.Counter("hhhd_watch_client_drops_total", "", "Slow or gone /watch clients dropped on a failed or timed-out write.", &s.sseDrops)
	s.reg.GaugeFunc("hhhd_uptime_seconds", "", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reg.GaugeFunc("hhhd_published_packets", "", "Combined published stream weight (N).", func() float64 {
		return float64(mon.N())
	})
	s.reg.GaugeFunc("hhhd_converged", "", "Whether the published N passed the psi convergence bound.", func() float64 {
		if mon.Converged() {
			return 1
		}
		return 0
	})
	return s
}

// newMux wires the operational endpoints. The query surfaces sit behind the
// shared admission gate and a per-request deadline; /metrics and /healthz
// stay ungated so overload never blinds the operator.
func newMux(s *server) *http.ServeMux {
	guard := func(h http.HandlerFunc) http.Handler {
		return s.gate.Limit(s.retryAfter, resilience.WithDeadline(s.reqTimeout, h))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /query", guard(s.handleQuery))
	mux.Handle("GET /snapshot", guard(s.handleSnapshot))
	mux.HandleFunc("GET /watch", s.handleWatch)
	return mux
}

// beginDrain flips /healthz to the terminal draining state and ends every
// live /watch stream so HTTP shutdown is not held open by SSE clients.
func (s *server) beginDrain() {
	s.health.Set(resilience.HealthDraining, "shutdown in progress")
	close(s.shutdown)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WritePrometheus(w)
}

// healthResponse is the /healthz JSON shape: the resilience state machine
// (ok → degraded → failing, draining once shutdown starts) plus the
// operational numbers the old plaintext form carried.
type healthResponse struct {
	State         string  `json:"state"`
	Reason        string  `json:"reason,omitempty"`
	N             uint64  `json:"n"`
	Psi           float64 `json:"psi"`
	Converged     bool    `json:"converged"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	DegradeLevel  int     `json:"degrade_level"`
	ShedTotal     uint64  `json:"shed_total"`
	PanicsTotal   uint64  `json:"panics_total"`
	CheckpointGen uint64  `json:"checkpoint_generation,omitempty"`
	CheckpointSeq uint32  `json:"checkpoint_segments,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state, reason := s.health.Get()
	resp := healthResponse{
		State:         state.String(),
		Reason:        reason,
		N:             s.mon.N(),
		Psi:           s.mon.Psi(),
		Converged:     s.mon.Converged(),
		Workers:       s.mon.Workers(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		DegradeLevel:  s.degrader.Level(),
		ShedTotal:     s.gate.Sheds(),
		PanicsTotal:   s.resStats.Panics.Load(),
	}
	if s.ckpt != nil {
		resp.CheckpointGen, resp.CheckpointSeq = s.ckpt.Store().Generation()
	}
	w.Header().Set("Content-Type", "application/json")
	// ok and degraded still serve traffic; failing and draining tell the
	// load balancer to stop sending it.
	if state == resilience.HealthFailing || state == resilience.HealthDraining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// queryResponse is the /query JSON shape.
type queryResponse struct {
	Theta     float64       `json:"theta"`
	N         uint64        `json:"n"`
	Threshold float64       `json:"threshold"`
	Converged bool          `json:"converged"`
	Count     int           `json:"count"`
	Hits      []queryResult `json:"hits"`
}

type queryResult struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst,omitempty"`
	Text  string  `json:"text"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
	Cond  float64 `json:"cond"`
	Level int     `json:"level"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	theta := s.theta
	if q := r.URL.Query().Get("theta"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || !(v > 0 && v <= 1) {
			http.Error(w, "theta must be a number in (0, 1]", http.StatusBadRequest)
			return
		}
		theta = v
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	// The gate bounds how many requests queue on qmu; the deadline bounds
	// how long one waits there. A request whose deadline expired while
	// queued is answered without doing the (already too late) query work.
	if r.Context().Err() != nil {
		http.Error(w, "request deadline exceeded while queued", http.StatusServiceUnavailable)
		return
	}
	hits := s.mon.HeavyHitters(theta)
	n := s.mon.N()
	resp := queryResponse{
		Theta:     theta,
		N:         n,
		Threshold: theta * float64(n),
		Converged: s.mon.Converged(),
		Count:     len(hits),
		Hits:      make([]queryResult, len(hits)),
	}
	for i, h := range hits {
		qr := queryResult{
			Src: h.Src.String(), Text: h.Text,
			Lower: h.Lower, Upper: h.Upper, Cond: h.Cond, Level: h.Level,
		}
		if h.Dst.IsValid() {
			qr.Dst = h.Dst.String()
		}
		resp.Hits[i] = qr
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	if r.Context().Err() != nil {
		s.qmu.Unlock()
		http.Error(w, "request deadline exceeded while queued", http.StatusServiceUnavailable)
		return
	}
	snap := s.mon.Snapshot()
	data, err := snap.MarshalBinary()
	if err == nil {
		s.snapBuf = append(s.snapBuf[:0], data...)
		data = s.snapBuf
	}
	s.qmu.Unlock()
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="hhh.snapshot"`)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// watchEvent is the /watch SSE data payload: one standing-query delta.
type watchEvent struct {
	Seq      uint64   `json:"seq"`
	N        uint64   `json:"n"`
	Theta    float64  `json:"theta"`
	Dropped  uint64   `json:"dropped,omitempty"`
	Admitted []string `json:"admitted,omitempty"`
	Retired  []string `json:"retired,omitempty"`
	Updated  []string `json:"updated,omitempty"`
}

// handleWatch streams standing-query deltas as server-sent events. Query
// parameters: theta (default: the daemon's -theta), k (auto-tune to top-k,
// overrides theta), min_delta (update hysteresis, stream units), interval
// (tick interval, Go duration). The stream ends when the client disconnects.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	opts := rhhh.WatchOptions{Theta: s.theta}
	q := r.URL.Query()
	if v := q.Get("theta"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || !(t > 0 && t <= 1) {
			http.Error(w, "theta must be a number in (0, 1]", http.StatusBadRequest)
			return
		}
		opts.Theta = t
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
		opts.Theta, opts.AutoThetaK = 0, k
	}
	if v := q.Get("min_delta"); v != "" {
		md, err := strconv.ParseFloat(v, 64)
		if err != nil || md < 0 {
			http.Error(w, "min_delta must be a non-negative number", http.StatusBadRequest)
			return
		}
		opts.MinDelta = md
	}
	if v := q.Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "interval must be a positive duration", http.StatusBadRequest)
			return
		}
		opts.Interval = d
	}
	sub, err := s.mon.Watch(opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sub.Close()
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	// drop disconnects a client that cannot keep up (or is gone): without
	// the per-write deadline a stalled TCP peer would park this handler in
	// Write forever, holding the subscription and its differ state alive.
	drop := func() {
		s.sseDrops.Add(1)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// Draining: end the stream so server shutdown can finish.
			return
		case d, ok := <-sub.Events():
			if !ok {
				return
			}
			ev := watchEvent{Seq: d.Seq, N: d.N, Theta: d.Theta, Dropped: d.Dropped}
			for _, h := range d.Admitted {
				ev.Admitted = append(ev.Admitted, h.Text)
			}
			for _, h := range d.Retired {
				ev.Retired = append(ev.Retired, h.Text)
			}
			for _, h := range d.Updated {
				ev.Updated = append(ev.Updated, h.Text)
			}
			_ = rc.SetWriteDeadline(time.Now().Add(s.watchWrite))
			if _, err := fmt.Fprintf(w, "event: delta\ndata: "); err != nil {
				drop()
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends the \n
				drop()
				return
			}
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				drop()
				return
			}
			if err := rc.Flush(); err != nil {
				drop()
				return
			}
			_ = rc.SetWriteDeadline(time.Time{})
		}
	}
}
