package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rhhh"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
)

// testServer builds an instrumented two-worker daemon fed with enough
// deterministic traffic to produce heavy hitters.
func testServer(t *testing.T) (*server, *rhhh.Sharded) {
	t.Helper()
	mon, err := rhhh.NewSharded(rhhh.Config{
		Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 7,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(mon, 0.05, serverOptions{})
	heavy := netip.MustParseAddr("10.1.2.3")
	srcs := make([]netip.Addr, 0, 4096)
	for i := range 4096 {
		if i%2 == 0 {
			srcs = append(srcs, heavy)
		} else {
			srcs = append(srcs, netip.AddrFrom4([4]byte{192, 168, byte(i >> 8), byte(i)}))
		}
	}
	for w := range 2 {
		mon.Worker(w).UpdateBatch(srcs, nil)
		mon.Worker(w).Sync()
	}
	t.Cleanup(func() { _ = mon.Close() })
	return srv, mon
}

// TestMetricsCatalogue is the golden test: the live exposition must contain
// exactly the documented families with the documented types and help, every
// histogram well-formed, and the load-bearing series nonzero.
func TestMetricsCatalogue(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	fams, err := telemetry.ParseProm(rec.Body.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, want := range metricCatalogue {
		f, ok := fams[want.Name]
		if !ok {
			t.Errorf("catalogue family %s missing from /metrics", want.Name)
			continue
		}
		if f.Type != want.Type {
			t.Errorf("%s: type %s, catalogue says %s", want.Name, f.Type, want.Type)
		}
		if f.Help != want.Help {
			t.Errorf("%s: help %q, catalogue says %q", want.Name, f.Help, want.Help)
		}
		if len(f.Samples) == 0 {
			t.Errorf("%s: no samples", want.Name)
		}
	}
	for name := range fams {
		found := false
		for _, want := range metricCatalogue {
			if want.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %s exposed but not in the catalogue", name)
		}
	}
	// The traffic above must be visible in the load-bearing series.
	for _, name := range []string{
		"rhhh_engine_packets_total", "rhhh_engine_samples_total",
		"rhhh_counter_occupied", "rhhh_worker_publications_total",
	} {
		var sum float64
		for _, s := range fams[name].Samples {
			sum += s.Value
		}
		if sum <= 0 {
			t.Errorf("%s: total %v, want > 0 after traffic", name, sum)
		}
	}
	// Per-worker labeling: both workers must expose their own series.
	for _, labels := range []string{`worker="0"`, `worker="1"`} {
		if _, ok := telemetry.Lookup(fams, "rhhh_engine_packets_total", "rhhh_engine_packets_total", labels); !ok {
			t.Errorf("rhhh_engine_packets_total%s missing", labels)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, mon := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	var hr healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz is not JSON: %v (%q)", err, rec.Body.String())
	}
	if hr.State != "ok" || hr.N != mon.N() || hr.Workers != 2 || hr.DegradeLevel != 0 {
		t.Fatalf("unexpected healthz: %+v", hr)
	}

	// The state machine drives the status code: failing and draining are
	// 503 so a load balancer stops routing, and draining is sticky.
	srv.health.Set(resilience.HealthFailing, "test")
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("failing healthz code = %d, want 503", rec.Code)
	}
	srv.beginDrain()
	srv.health.Set(resilience.HealthOK, "nope")
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 503 || hr.State != "draining" {
		t.Fatalf("draining healthz = %d %+v, want sticky 503 draining", rec.Code, hr)
	}
}

func TestQuery(t *testing.T) {
	srv, mon := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, httptest.NewRequest("GET", "/query?theta=0.2", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Theta != 0.2 || resp.N != mon.N() || resp.Count != len(resp.Hits) {
		t.Fatalf("inconsistent response: %+v", resp)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("no hits at theta=0.2 over a half-heavy stream")
	}
	found := false
	for _, h := range resp.Hits {
		if h.Src == "10.1.2.3/32" {
			found = true
			if h.Upper < h.Lower || h.Level != 0 {
				t.Fatalf("malformed hit: %+v", h)
			}
		}
	}
	if !found {
		t.Fatalf("10.1.2.3/32 not reported: %+v", resp.Hits)
	}

	rec = httptest.NewRecorder()
	srv.handleQuery(rec, httptest.NewRequest("GET", "/query?theta=2", nil))
	if rec.Code != 400 {
		t.Fatalf("theta=2 not rejected: %d", rec.Code)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	srv, mon := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleSnapshot(rec, httptest.NewRequest("GET", "/snapshot", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var snap rhhh.Snapshot
	if err := snap.UnmarshalBinary(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	if snap.N() != mon.N() {
		t.Fatalf("snapshot N=%d, monitor N=%d", snap.N(), mon.N())
	}
	if len(snap.HeavyHitters(0.2)) == 0 {
		t.Fatal("restored snapshot reports no heavy hitters")
	}
}

func TestWatchSSE(t *testing.T) {
	srv, mon := testServer(t)
	ts := httptest.NewServer(newMux(srv))
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/watch?theta=0.2&interval=10ms")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The first tick reports the standing set as admitted deltas.
	type lineRes struct {
		line string
		err  error
	}
	lines := make(chan lineRes, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineRes{line: sc.Text()}
		}
		lines <- lineRes{err: io.EOF}
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream ended without a delta: %v", l.err)
			}
			if !strings.HasPrefix(l.line, "data: ") {
				continue
			}
			var ev watchEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(l.line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event %q: %v", l.line, err)
			}
			if ev.N != mon.N() || len(ev.Admitted) == 0 {
				t.Fatalf("unexpected first delta: %+v", ev)
			}
			return
		case <-deadline:
			t.Fatal("no SSE delta within 10s")
		}
	}
}

// TestWatchInstrumented asserts the watch-layer series move once a
// subscription has ticked.
func TestWatchInstrumented(t *testing.T) {
	srv, mon := testServer(t)
	sub, err := mon.Watch(rhhh.WatchOptions{Theta: 0.2, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Close)
	select {
	case <-sub.Events():
	case <-time.After(10 * time.Second):
		t.Fatal("no delta within 10s")
	}
	rec := httptest.NewRecorder()
	srv.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams, err := telemetry.ParseProm(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rhhh_watch_ticks_total", "rhhh_watch_deliveries_total"} {
		s, ok := telemetry.Lookup(fams, name, name, "")
		if !ok || s.Value <= 0 {
			t.Errorf("%s not advancing: %+v ok=%v", name, s, ok)
		}
	}
	s, ok := telemetry.Lookup(fams, "rhhh_watch_tick_seconds", "rhhh_watch_tick_seconds_count", "")
	if !ok || s.Value <= 0 {
		t.Errorf("tick latency histogram empty: %+v ok=%v", s, ok)
	}
}
