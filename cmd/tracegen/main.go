// Command tracegen generates synthetic CAIDA-stand-in traces, optionally
// with planted aggregates, and writes them as classic pcap files that the
// hhh tool (or any pcap consumer) can replay.
//
// Example:
//
//	tracegen -profile sanjose14 -n 1000000 -ddos 198.51.100.0/24:0.2 -o trace.pcap
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

func main() {
	var (
		profile = flag.String("profile", "chicago16", "workload profile: "+fmt.Sprint(trace.ProfileNames()))
		n       = flag.Uint64("n", 1_000_000, "packets to generate")
		out     = flag.String("o", "", "output pcap path (default stdout)")
		seed    = flag.Uint64("seed", 0, "override the profile seed")
		v6      = flag.Bool("ipv6", false, "generate IPv6 traffic")
		ddos    = flag.String("ddos", "", "plant a DDoS aggregate: victimPrefix:fraction (e.g. 198.51.100.0/24:0.2)")
	)
	flag.Parse()

	cfg := trace.Profile(*profile)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.V6 = *v6
	if *ddos != "" {
		agg, err := parseDDoS(*ddos)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Aggregates = append(cfg.Aggregates, agg)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	pw, err := trace.NewPcapWriter(w, trace.LinkEthernet)
	if err != nil {
		fatalf("%v", err)
	}
	gen := trace.NewSynthetic(cfg)
	for i := uint64(0); i < *n; i++ {
		p, _ := gen.Next()
		if err := pw.WritePacket(p); err != nil {
			fatalf("writing packet %d: %v", i, err)
		}
	}
	if err := pw.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d packets (profile %s, seed %#x)\n", *n, *profile, cfg.Seed)
}

// parseDDoS parses "prefix:fraction" into a planted aggregate with a large
// source spread (the many-attackers shape of a DDoS).
func parseDDoS(s string) (trace.Aggregate, error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return trace.Aggregate{}, fmt.Errorf("tracegen: -ddos wants prefix:fraction, got %q", s)
	}
	pfx, err := netip.ParsePrefix(s[:i])
	if err != nil {
		return trace.Aggregate{}, fmt.Errorf("tracegen: bad victim prefix: %w", err)
	}
	frac, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil || frac <= 0 || frac >= 1 {
		return trace.Aggregate{}, fmt.Errorf("tracegen: bad fraction %q", s[i+1:])
	}
	bits := pfx.Bits()
	var dst hierarchy.Addr
	if pfx.Addr().Is4() {
		b := pfx.Addr().As4()
		dst = hierarchy.AddrFromIPv4(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	} else {
		dst = hierarchy.AddrFrom16(pfx.Addr().As16())
	}
	return trace.Aggregate{
		Fraction: frac,
		Dst:      dst,
		DstBits:  bits,
		Spread:   1 << 16,
	}, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(2)
}
