// Command hhh runs a hierarchical heavy hitters algorithm over a pcap file
// or a synthetic trace and prints the HHH set.
//
// Examples:
//
//	hhh -pcap capture.pcap -dims 2 -theta 0.01
//	hhh -profile chicago16 -n 5000000 -dims 1 -gran bits -algo mst
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"sort"
	"syscall"

	"rhhh"
	"rhhh/internal/hierarchy"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
	"rhhh/internal/trace"
)

func main() {
	var (
		pcapPath = flag.String("pcap", "", "pcap file to replay (classic format)")
		profile  = flag.String("profile", "chicago16", "synthetic profile when no pcap is given: "+fmt.Sprint(trace.ProfileNames()))
		n        = flag.Uint64("n", 1_000_000, "packets to process from the synthetic source")
		dims     = flag.Int("dims", 2, "hierarchy dimensions: 1 (source) or 2 (source x destination)")
		gran     = flag.String("gran", "bytes", "granularity: bytes|nibbles|bits")
		v6       = flag.Bool("ipv6", false, "use 128-bit hierarchies")
		algo     = flag.String("algo", "rhhh", "algorithm: rhhh|10-rhhh|mst|full|partial")
		epsilon  = flag.Float64("epsilon", 0.001, "estimation error ε")
		delta    = flag.Float64("delta", 0.001, "failure probability δ")
		theta    = flag.Float64("theta", 0.01, "HHH threshold θ")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		weighted = flag.Bool("bytes", false, "weight packets by byte count instead of counting packets")
		ckpt     = flag.String("checkpoint", "", "snapshot checkpoint file: restored on start if present, written periodically and at exit (RHHH only)")
		ckptEvry = flag.Uint64("checkpoint-every", 1_000_000, "packets between checkpoint writes (0 = only at exit)")
		watch    = flag.Bool("watch", false, "log standing-query events (admitted/retired/updated HHH prefixes) during replay (RHHH only)")
		watchEvy = flag.Uint64("watch-every", 100_000, "packets between standing-query ticks")
		watchK   = flag.Int("watch-k", 0, "auto-tune the watch threshold to track the top k keys instead of -theta")
		backend  = flag.String("backend", "ss", "RHHH counter backend: ss (Space Saving stream-summary), chk (Cuckoo Heavy Keeper), heap")
		metrics  = flag.String("metrics-addr", "", "optional listen address for Prometheus /metrics during the replay (RHHH only; empty = disabled)")
	)
	flag.Parse()

	cfg := rhhh.Config{
		Dims: *dims, IPv6: *v6,
		Epsilon: *epsilon, Delta: *delta, Seed: *seed,
	}
	switch *gran {
	case "bytes":
		cfg.Granularity = rhhh.Byte
	case "nibbles":
		cfg.Granularity = rhhh.Nibble
	case "bits":
		cfg.Granularity = rhhh.Bit
	default:
		fatalf("unknown granularity %q", *gran)
	}
	switch *algo {
	case "rhhh":
		cfg.Algorithm = rhhh.RHHH
	case "10-rhhh":
		cfg.Algorithm = rhhh.RHHH
		// V is set after we know H; mark with a sentinel multiplier.
	case "mst":
		cfg.Algorithm = rhhh.MST
	case "full":
		cfg.Algorithm = rhhh.FullAncestry
	case "partial":
		cfg.Algorithm = rhhh.PartialAncestry
	default:
		fatalf("unknown algorithm %q", *algo)
	}
	switch *backend {
	case "ss":
		cfg.Backend = rhhh.StreamSummary
	case "chk":
		cfg.Backend = rhhh.CuckooHeavyKeeper
	case "heap":
		cfg.Backend = rhhh.HeapSpaceSaving
	default:
		fatalf("unknown backend %q", *backend)
	}
	if *algo == "10-rhhh" {
		// Build a probe monitor to learn H, then rebuild with V=10H.
		probe, err := rhhh.New(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.V = 10 * probe.H()
	}
	mon, err := rhhh.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *ckpt != "" && cfg.Algorithm != rhhh.RHHH {
		fatalf("-checkpoint requires the RHHH algorithm")
	}
	if *ckpt != "" {
		if restored, err := restoreCheckpoint(mon, *ckpt); err != nil {
			fatalf("restoring checkpoint: %v", err)
		} else if restored {
			fmt.Fprintf(os.Stderr, "hhh: restored N=%d from %s\n", mon.N(), *ckpt)
		}
	}

	if *metrics != "" {
		reg := telemetry.NewRegistry()
		if err := mon.Instrument(reg); err != nil {
			fatalf("%v", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = reg.WritePrometheus(w)
		})
		go func() {
			fmt.Fprintf(os.Stderr, "hhh: metrics on http://%s/metrics\n", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintf(os.Stderr, "hhh: metrics server: %v\n", err)
			}
		}()
	}

	if *watch {
		if cfg.Algorithm != rhhh.RHHH {
			fatalf("-watch requires the RHHH algorithm")
		}
		if *watchEvy == 0 {
			fatalf("-watch-every must be positive")
		}
		opts := rhhh.WatchOptions{Theta: *theta, OnDelta: printWatchDelta}
		if *watchK > 0 {
			opts.Theta, opts.AutoThetaK = 0, *watchK
		}
		if _, err := mon.Watch(opts); err != nil {
			fatalf("%v", err)
		}
	}

	var src trace.Source
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r, err := trace.NewPcapReader(f)
		if err != nil {
			fatalf("%v", err)
		}
		src = r
	} else {
		src = &trace.Limit{Src: trace.NewSynthetic(trace.Profile(*profile)), N: *n}
	}

	// SIGINT/SIGTERM end the replay early but cleanly: the loop breaks at
	// the next signal check, then the normal exit path runs — final tick,
	// final checkpoint, results printout — so an interrupted replay still
	// leaves a durable checkpoint and a report.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigC)

	var count uint64
	var snapBuf *rhhh.Snapshot
replay:
	for {
		if count%4096 == 0 {
			select {
			case <-sigC:
				fmt.Fprintln(os.Stderr, "hhh: interrupted, draining")
				break replay
			default:
			}
		}
		p, ok := src.Next()
		if !ok {
			break
		}
		srcA, dstA := p.SrcIP, p.DstIP
		if p.V6 != *v6 {
			continue // family mismatch with the configured hierarchy
		}
		saddr := toNetip(srcA, *v6)
		daddr := toNetip(dstA, *v6)
		if *weighted {
			mon.UpdateWeighted(saddr, daddr, uint64(max(p.Length, 1)))
		} else {
			mon.Update(saddr, daddr)
		}
		count++
		if *watch && count%*watchEvy == 0 {
			mon.Tick()
		}
		if *ckpt != "" && *ckptEvry > 0 && count%*ckptEvry == 0 {
			snapBuf = mon.SnapshotInto(snapBuf)
			if err := writeCheckpoint(snapBuf, *ckpt); err != nil {
				fatalf("writing checkpoint: %v", err)
			}
		}
	}
	if *watch {
		mon.Tick() // deliver the stream's final deltas
	}
	if *ckpt != "" {
		snapBuf = mon.SnapshotInto(snapBuf)
		if err := writeCheckpoint(snapBuf, *ckpt); err != nil {
			fatalf("writing checkpoint: %v", err)
		}
	}

	fmt.Printf("algorithm=%s H=%d V=%d packets=%d N=%d psi=%.3g converged=%v\n",
		mon.Algorithm(), mon.H(), mon.V(), count, mon.N(), mon.Psi(), mon.Converged())
	// Copy before sorting: HeavyHitters returns the monitor's reusable
	// query buffer.
	hits := slices.Clone(mon.HeavyHitters(*theta))
	sort.Slice(hits, func(i, j int) bool { return hits[i].Upper > hits[j].Upper })
	fmt.Printf("hierarchical heavy hitters (theta=%g, threshold=%.0f):\n",
		*theta, *theta*float64(mon.N()))
	for _, h := range hits {
		share := h.Upper / float64(mon.N()) * 100
		fmt.Printf("  %-44s f in [%12.0f, %12.0f]  (<= %5.2f%%)  level %d\n",
			h.Text, h.Lower, h.Upper, share, h.Level)
	}
	if len(hits) == 0 {
		fmt.Println("  (none above threshold)")
	}
}

// printWatchDelta renders one standing-query event: only the changes, with
// + for admitted, - for retired and ~ for updated prefixes.
func printWatchDelta(d rhhh.Delta) {
	fmt.Printf("watch tick=%d N=%d theta=%.4g: +%d -%d ~%d\n",
		d.Seq, d.N, d.Theta, len(d.Admitted), len(d.Retired), len(d.Updated))
	for _, h := range d.Admitted {
		fmt.Printf("  + %s\n", h)
	}
	for _, h := range d.Retired {
		fmt.Printf("  - %s\n", h.Text)
	}
	for _, h := range d.Updated {
		fmt.Printf("  ~ %s\n", h)
	}
}

// toNetip converts the internal 128-bit address form back to netip. IPv4
// addresses live in the top 32 bits (see hierarchy.AddrFromIPv4).
func toNetip(a hierarchy.Addr, v6 bool) netip.Addr {
	b := a.Bytes16()
	if v6 {
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]})
}

// restoreCheckpoint loads a checkpoint file into the monitor; a missing file
// is a fresh start, not an error.
func restoreCheckpoint(mon *rhhh.Monitor, path string) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var snap rhhh.Snapshot
	if err := snap.UnmarshalBinary(data); err != nil {
		return false, err
	}
	if err := mon.LoadSnapshot(&snap); err != nil {
		return false, err
	}
	return true, nil
}

// writeCheckpoint atomically replaces the checkpoint file: fsynced temp
// write, rename, directory sync, so a crash or power loss mid-write never
// corrupts — or silently drops — the last good checkpoint.
func writeCheckpoint(snap *rhhh.Snapshot, path string) error {
	data, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	fsys := resilience.OSFS{}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hhh: "+format+"\n", args...)
	os.Exit(2)
}
