// Command vswitchd runs the simulated virtual switch with a chosen HHH
// integration and reports throughput and the measured heavy hitters — an
// interactive version of the Figure 6–8 experiments.
//
// Examples:
//
//	vswitchd -mode dataplane -v 10 -duration 3s
//	vswitchd -mode distributed -udp -theta 0.05
//	vswitchd -mode off          # unmodified-switch baseline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/netgen"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
	"rhhh/internal/trace"
	"rhhh/internal/vswitch"
)

func main() {
	var (
		mode     = flag.String("mode", "dataplane", "integration: off|dataplane|distributed")
		vMult    = flag.Int("v", 1, "V as a multiple of H (1 = RHHH, 10 = 10-RHHH)")
		epsilon  = flag.Float64("epsilon", 0.001, "estimation error ε")
		delta    = flag.Float64("delta", 0.001, "failure probability δ")
		theta    = flag.Float64("theta", 0.02, "HHH threshold for the final report")
		duration = flag.Duration("duration", 2*time.Second, "how long to drive traffic")
		profile  = flag.String("profile", "chicago16", "traffic profile")
		udp      = flag.Bool("udp", false, "distributed mode: use loopback UDP instead of in-process transport")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		ckpt     = flag.String("checkpoint", "", "dataplane mode: engine snapshot checkpoint file, restored on start if present, written periodically and at exit")
		ckptEvry = flag.Uint64("checkpoint-every", 1_000_000, "packets between checkpoint writes (0 = only at exit)")
		watch    = flag.Bool("watch", false, "log standing-query events (admitted/retired/updated HHH prefixes) while traffic runs")
		watchEvy = flag.Uint64("watch-every", 500_000, "dataplane mode: packets between standing-query ticks")
		watchIvl = flag.Duration("watch-interval", 200*time.Millisecond, "distributed mode: collector tick interval")
		byBytes  = flag.Bool("bytes", false, "dataplane mode: weight updates by packet length (byte-count heavy hitters)")
		syncMode = flag.String("sync", "samples", "distributed mode: samples (per-sample stream) or delta (acked generation-delta reports)")
		repEvery = flag.Uint64("report-every", 1<<16, "delta sync: packets between reports")
		repTmo   = flag.Duration("report-timeout", 200*time.Millisecond, "delta sync: per-report ack timeout before retransmission")
		resyncEv = flag.Int("resync-every", 0, "delta sync: force a full report after this many deltas (0 = only when requested)")
		standby  = flag.Bool("collector-standby", false, "delta sync: fail over to a standby collector restored from a checkpoint at half the run")
		backend  = flag.String("backend", "ss", "counter backend: ss (Space Saving stream-summary) or chk (Cuckoo Heavy Keeper)")
		workers  = flag.Int("workers", 1, "dataplane mode: shared-nothing ingest workers (multi-queue RSS simulation; each owns a datapath and an engine, queries merge published snapshots)")
		metrics  = flag.String("metrics-addr", "", "optional listen address for Prometheus /metrics (empty = disabled)")
	)
	flag.Parse()

	// SIGTERM/SIGINT drain the run gracefully: the drive loop stops at the
	// next pass boundary, then the normal exit path runs — final
	// checkpoint, report, transport teardown — instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// reg stays nil (telemetry.Disabled) without -metrics-addr: every
	// Instrument call below is then a no-op and the hot paths keep their
	// uninstrumented branches.
	reg := telemetry.Disabled
	if *metrics != "" {
		reg = telemetry.NewRegistry()
		serveMetrics(*metrics, reg)
	}

	var engBackend core.Backend
	switch *backend {
	case "ss":
		engBackend = core.SpaceSavingBackend
	case "chk":
		engBackend = core.CHKBackend
	default:
		fatalf("unknown backend %q (want ss or chk)", *backend)
	}

	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	v := *vMult * h

	// Workload: the chosen profile plus a DDoS aggregate so the final
	// report has something interesting to show.
	cfg := trace.Profile(*profile)
	cfg.Aggregates = []trace.Aggregate{{
		Fraction: 0.15,
		Dst:      hierarchy.AddrFromIPv4(0xCB007100), // 203.0.113.0/24
		DstBits:  24,
		Spread:   1 << 15,
	}}
	packets := netgen.Prebuild(trace.NewSynthetic(cfg), 1<<18)

	if *workers < 1 {
		fatalf("-workers must be at least 1")
	}
	if *workers > 1 {
		if *mode != "dataplane" {
			fatalf("-workers > 1 requires -mode dataplane")
		}
		if *ckpt != "" {
			fatalf("-checkpoint is not supported with -workers > 1 (per-worker engines have no single restore point)")
		}
		runMultiQueue(multiQueueConfig{
			dom: dom, packets: packets, workers: *workers,
			epsilon: *epsilon, delta: *delta, v: v, seed: *seed, backend: engBackend,
			byBytes: *byBytes, theta: *theta, duration: *duration,
			watch: *watch, watchIvl: *watchIvl, reg: reg, stop: ctx.Done(),
		})
		return
	}

	var hook vswitch.Hook = vswitch.NopHook{}
	var report func()
	switch *mode {
	case "off":
		report = func() { fmt.Println("no measurement configured (-mode off)") }
	case "dataplane":
		eng := core.New(dom, core.Config{Epsilon: *epsilon, Delta: *delta, V: v, Seed: *seed, Backend: engBackend})
		if *ckpt != "" {
			if restored, err := restoreEngine(eng, *ckpt); err != nil {
				fatalf("restoring checkpoint: %v", err)
			} else if restored {
				fmt.Fprintf(os.Stderr, "vswitchd: restored N=%d from %s\n", eng.N(), *ckpt)
			}
		}
		engHook := vswitch.NewEngineHook(eng)
		if *byBytes {
			engHook = vswitch.NewEngineHookBytes(eng)
		}
		if *ckpt != "" && *ckptEvry > 0 {
			hook = &checkpointHook{EngineHook: engHook, eng: eng, path: *ckpt, every: *ckptEvry, next: eng.N() + *ckptEvry}
		} else {
			hook = engHook
		}
		if *watch {
			if *watchEvy == 0 {
				fatalf("-watch-every must be positive")
			}
			hook = &watchLogHook{
				inner: hook, eng: eng, dom: dom, theta: *theta,
				every: *watchEvy, next: eng.N() + *watchEvy,
				differ: core.NewDiffer[uint64](),
			}
		}
		if reg != nil {
			st := &telemetry.EngineStats{}
			st.Register(reg, "")
			hook = &telemetryHook{
				inner: hook, eng: eng, st: st,
				every: mqPublishEvery, next: eng.N() + mqPublishEvery,
			}
		}
		report = func() {
			if *ckpt != "" {
				if err := writeEngineCheckpoint(eng, *ckpt); err != nil {
					fatalf("writing checkpoint: %v", err)
				}
			}
			printHHH(dom, eng.Output(*theta), eng.Weight(), *theta)
		}
	case "distributed":
		col := vswitch.NewCollector(dom, *epsilon, *delta, v)
		col.Instrument(reg)
		if *syncMode == "delta" {
			hook, report = setupDeltaSync(deltaSyncConfig{
				dom: dom, col: col, v: v,
				epsilon: *epsilon, delta: *delta, theta: *theta,
				udp: *udp, seed: *seed,
				every: *repEvery, timeout: *repTmo, resyncEvery: *resyncEv,
				standby: *standby, failAfter: *duration / 2,
				watch: *watch, watchIvl: *watchIvl,
				backend: engBackend, reg: reg,
			})
			break
		}
		if *syncMode != "samples" {
			fatalf("unknown -sync mode %q (want samples or delta)", *syncMode)
		}
		var tr vswitch.Transport
		if *udp {
			srv, err := vswitch.ListenUDP("127.0.0.1:0", col)
			if err != nil {
				fatalf("udp listen: %v", err)
			}
			defer srv.Close()
			utr, err := vswitch.DialUDP(srv.Addr())
			if err != nil {
				fatalf("udp dial: %v", err)
			}
			defer utr.Close()
			tr = utr
			fmt.Fprintf(os.Stderr, "collector listening on %s\n", srv.Addr())
		} else {
			itr := vswitch.NewInProcTransport(col, 1024)
			defer itr.Close()
			tr = itr
		}
		sh := vswitch.NewSamplerHook(dom, v, *seed, tr, 0)
		hook = sh
		if *watch {
			w := col.Watch(*theta, 0, *watchIvl, func(d vswitch.CollectorDelta) {
				printWatchEvents(dom, d.Seq, d.N, d.Admitted, d.Retired, d.Updated)
			})
			defer w.Close()
		}
		report = func() {
			if err := sh.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "vswitchd: transport error: %v\n", err)
			}
			// Give an async transport a moment to drain.
			time.Sleep(50 * time.Millisecond)
			fmt.Printf("collector: packets=%d samples=%d\n", col.Packets(), col.Updates())
			printHHH(dom, col.Output(*theta), col.Packets(), *theta)
		}
	default:
		fatalf("unknown mode %q", *mode)
	}

	var ft vswitch.FlowTable
	ft.Add(vswitch.Rule{Priority: 0, Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
	dp := vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, *seed), hook)

	res := netgen.RunForStop(packets, *duration, ctx.Done(), func(p trace.Packet) { dp.Process(p) })
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "vswitchd: interrupted, draining")
	}
	st := dp.Stats()
	fmt.Printf("mode=%s V=%d (H=%d) duration=%v\n", *mode, v, h, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.2f Mpps (%d packets; emc hits %.1f%%)\n",
		res.Mpps(), st.Received, 100*float64(st.EMCHits)/float64(st.Received))
	report()
}

// multiQueueConfig carries the -workers > 1 dataplane wiring.
type multiQueueConfig struct {
	dom            *hierarchy.Domain[uint64]
	packets        []trace.Packet
	workers        int
	epsilon, delta float64
	v              int
	seed           uint64
	backend        core.Backend
	byBytes        bool
	theta          float64
	duration       time.Duration
	watch          bool
	watchIvl       time.Duration
	reg            *telemetry.Registry
	stop           <-chan struct{} // graceful drain: ends the drive early
}

// mqPublishEvery is the per-worker publication cadence in packets — the same
// default the library's Sharded workers use: cheap enough to amortize to
// ~a nanosecond per packet, frequent enough that reports lag ingest by well
// under a millisecond at dataplane rates.
const mqPublishEvery = 16384

// mqWorker is one multi-queue ingest worker: a private datapath (own EMC
// over the shared flow table) feeding a private RHHH engine, publishing
// immutable epoch-versioned snapshots through an atomic cell. The report and
// watch sides only ever load published snapshots — no lock is ever taken
// against a worker.
type mqWorker struct {
	eng  *core.Engine[uint64]
	dp   *vswitch.Datapath
	pkts []trace.Packet
	cell atomic.Pointer[core.EngineSnapshot[uint64]]
	prev *core.EngineSnapshot[uint64] // producer-goroutine only
	tm   *telemetry.EngineStats       // nil without -metrics-addr
}

// publish captures the engine into a fresh immutable epoch (sharing
// unchanged node buffers with the previous one) and makes it the worker's
// published snapshot. Producer-goroutine only. Telemetry rides the same
// cadence: counters are owner-plain on the hot path and only stored to the
// scrape-visible cells here.
func (w *mqWorker) publish() {
	w.prev = w.eng.PublishSnapshot(w.prev)
	w.cell.Store(w.prev)
	if w.tm != nil {
		w.eng.TelemetryInto(w.tm)
	}
}

// mqPublishHook wraps the engine hook with the publication cadence.
type mqPublishHook struct {
	*vswitch.EngineHook
	w    *mqWorker
	next uint64
}

func (h *mqPublishHook) OnPacket(p trace.Packet) {
	h.EngineHook.OnPacket(p)
	h.maybePublish()
}

func (h *mqPublishHook) OnBatch(ps []trace.Packet) {
	h.EngineHook.OnBatch(ps)
	h.maybePublish()
}

func (h *mqPublishHook) maybePublish() {
	if h.w.eng.N() < h.next {
		return
	}
	for h.next <= h.w.eng.N() {
		h.next += mqPublishEvery
	}
	h.w.publish()
}

// rssPartition splits the prebuilt packets onto n queues by flow hash, the
// way NIC receive-side scaling pins a flow to one queue: every packet of a
// flow lands on the same worker, so per-worker streams are disjoint
// sub-streams and the merged result is exact.
func rssPartition(packets []trace.Packet, n int) [][]trace.Packet {
	parts := make([][]trace.Packet, n)
	per := len(packets)/n + 1
	for i := range parts {
		parts[i] = make([]trace.Packet, 0, per)
	}
	for _, p := range packets {
		q := (p.Key2() * 0x9e3779b97f4a7c15) >> 32 % uint64(n)
		parts[q] = append(parts[q], p)
	}
	return parts
}

// mqLoadSnaps loads every worker's latest published snapshot.
func mqLoadSnaps(ws []*mqWorker, dst []*core.EngineSnapshot[uint64]) []*core.EngineSnapshot[uint64] {
	dst = dst[:0]
	for _, w := range ws {
		dst = append(dst, w.cell.Load())
	}
	return dst
}

// runMultiQueue is the shared-nothing dataplane: one ingest goroutine per
// worker drives its RSS partition through a private datapath and engine for
// the configured duration, while the optional -watch ticker and the final
// report merge the workers' published snapshots with a core.SnapshotMerger —
// never pausing or locking a producer.
func runMultiQueue(cfg multiQueueConfig) {
	var ft vswitch.FlowTable
	ft.Add(vswitch.Rule{Priority: 0, Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})

	parts := rssPartition(cfg.packets, cfg.workers)
	ws := make([]*mqWorker, cfg.workers)
	for i := range ws {
		eng := core.New(cfg.dom, core.Config{
			Epsilon: cfg.epsilon, Delta: cfg.delta, V: cfg.v,
			Seed: cfg.seed + uint64(i)*0x9e3779b97f4a7c15, Backend: cfg.backend,
		})
		engHook := vswitch.NewEngineHook(eng)
		if cfg.byBytes {
			engHook = vswitch.NewEngineHookBytes(eng)
		}
		w := &mqWorker{eng: eng, pkts: parts[i]}
		if cfg.reg != nil {
			w.tm = &telemetry.EngineStats{}
			w.tm.Register(cfg.reg, fmt.Sprintf(`{worker="%d"}`, i))
		}
		w.dp = vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, cfg.seed+uint64(i)), &mqPublishHook{
			EngineHook: engHook, w: w, next: mqPublishEvery,
		})
		w.publish() // epoch 0: readers always find a snapshot
		ws[i] = w
	}

	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if cfg.watch {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			var (
				sm     core.SnapshotMerger[uint64]
				merged core.EngineSnapshot[uint64]
				snaps  []*core.EngineSnapshot[uint64]
				seq    uint64
			)
			differ := core.NewDiffer[uint64]()
			t := time.NewTicker(cfg.watchIvl)
			defer t.Stop()
			for {
				select {
				case <-watchDone:
					return
				case <-t.C:
					snaps = mqLoadSnaps(ws, snaps)
					m := sm.Merge(&merged, snaps...)
					seq++
					if d := differ.Diff(m.Output(cfg.dom, cfg.theta), 0); !d.Empty() {
						printWatchEvents(cfg.dom, seq, m.Weight, d.Admitted, d.Retired, d.Updated)
					}
				}
			}
		}()
	}

	results := make([]netgen.Result, cfg.workers)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *mqWorker) {
			defer wg.Done()
			results[i] = netgen.RunForStop(w.pkts, cfg.duration, cfg.stop, func(p trace.Packet) { w.dp.Process(p) })
			w.publish() // final sync: everything absorbed becomes visible
		}(i, w)
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()

	var total netgen.Result
	var received, emcHits uint64
	for i, w := range ws {
		total.Packets += results[i].Packets
		if results[i].Elapsed > total.Elapsed {
			total.Elapsed = results[i].Elapsed
		}
		st := w.dp.Stats()
		received += st.Received
		emcHits += st.EMCHits
	}
	fmt.Printf("mode=dataplane workers=%d V=%d (H=%d) duration=%v\n",
		cfg.workers, cfg.v, cfg.dom.Size(), total.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.2f Mpps aggregate (%d packets; emc hits %.1f%%)\n",
		total.Mpps(), received, 100*float64(emcHits)/float64(received))

	var sm core.SnapshotMerger[uint64]
	m := sm.Merge(nil, mqLoadSnaps(ws, nil)...)
	printHHH(cfg.dom, m.Output(cfg.dom, cfg.theta), m.Weight, cfg.theta)
}

// watchLogHook wraps the dataplane hook with a packet-count-driven standing
// query: every `every` packets it diffs the engine's HHH set against the
// previous tick and logs only the changes — the -watch event-log mode.
type watchLogHook struct {
	inner  vswitch.Hook
	eng    *core.Engine[uint64]
	dom    *hierarchy.Domain[uint64]
	theta  float64
	every  uint64
	next   uint64
	differ *core.Differ[uint64]
	seq    uint64
}

func (h *watchLogHook) OnPacket(p trace.Packet) {
	h.inner.OnPacket(p)
	h.maybeTick()
}

func (h *watchLogHook) OnBatch(ps []trace.Packet) {
	if bh, ok := h.inner.(vswitch.BatchHook); ok {
		bh.OnBatch(ps)
	} else {
		for _, p := range ps {
			h.inner.OnPacket(p)
		}
	}
	h.maybeTick()
}

func (h *watchLogHook) maybeTick() {
	if h.eng.N() < h.next {
		return
	}
	for h.next <= h.eng.N() {
		h.next += h.every
	}
	h.seq++
	d := h.differ.Diff(h.eng.Output(h.theta), 0)
	if d.Empty() {
		return
	}
	printWatchEvents(h.dom, h.seq, h.eng.Weight(), d.Admitted, d.Retired, d.Updated)
}

// printWatchEvents renders one standing-query delta: + admitted, - retired,
// ~ updated.
func printWatchEvents(dom *hierarchy.Domain[uint64], seq, n uint64, admitted, retired, updated []core.Result[uint64]) {
	fmt.Printf("watch tick=%d N=%d: +%d -%d ~%d\n", seq, n, len(admitted), len(retired), len(updated))
	for _, r := range admitted {
		fmt.Printf("  + %-44s f in [%12.0f, %12.0f]\n", dom.Format(r.Key, r.Node), r.Lower, r.Upper)
	}
	for _, r := range retired {
		fmt.Printf("  - %s\n", dom.Format(r.Key, r.Node))
	}
	for _, r := range updated {
		fmt.Printf("  ~ %-44s f in [%12.0f, %12.0f]\n", dom.Format(r.Key, r.Node), r.Lower, r.Upper)
	}
}

// telemetryHook wraps the dataplane hook chain with a packet-count-driven
// telemetry publication: every `every` packets it stores the engine's plain
// counters into the scrape-visible cells, keeping the per-packet cost to one
// branch on N.
type telemetryHook struct {
	inner vswitch.Hook
	eng   *core.Engine[uint64]
	st    *telemetry.EngineStats
	every uint64
	next  uint64
}

func (h *telemetryHook) OnPacket(p trace.Packet) {
	h.inner.OnPacket(p)
	h.maybePublish()
}

func (h *telemetryHook) OnBatch(ps []trace.Packet) {
	if bh, ok := h.inner.(vswitch.BatchHook); ok {
		bh.OnBatch(ps)
	} else {
		for _, p := range ps {
			h.inner.OnPacket(p)
		}
	}
	h.maybePublish()
}

func (h *telemetryHook) maybePublish() {
	if h.eng.N() < h.next {
		return
	}
	for h.next <= h.eng.N() {
		h.next += h.every
	}
	h.eng.TelemetryInto(h.st)
}

// serveMetrics starts the Prometheus exposition listener in the background:
// vswitchd's datapath loops are synchronous, so the scrape surface gets its
// own goroutine for the lifetime of the process.
func serveMetrics(addr string, reg *telemetry.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Header/write timeouts bound what a stuck or malicious scraper can
	// hold: the exposition is small, so generous limits are still tight.
	srv := &http.Server{
		Addr: addr, Handler: mux,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
	go func() {
		fmt.Fprintf(os.Stderr, "vswitchd: metrics on http://%s/metrics\n", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "vswitchd: metrics server: %v\n", err)
		}
	}()
}

// checkpointHook wraps the dataplane EngineHook with periodic snapshot
// checkpoints, so long measurements survive a restart (restore with the
// same -checkpoint flag).
type checkpointHook struct {
	*vswitch.EngineHook
	eng   *core.Engine[uint64]
	path  string
	every uint64
	next  uint64
}

func (h *checkpointHook) OnPacket(p trace.Packet) {
	h.EngineHook.OnPacket(p)
	h.maybeCheckpoint()
}

func (h *checkpointHook) OnBatch(ps []trace.Packet) {
	h.EngineHook.OnBatch(ps)
	h.maybeCheckpoint()
}

func (h *checkpointHook) maybeCheckpoint() {
	if h.eng.N() < h.next {
		return
	}
	if err := writeEngineCheckpoint(h.eng, h.path); err != nil {
		fatalf("writing checkpoint: %v", err)
	}
	for h.next <= h.eng.N() {
		h.next += h.every
	}
}

// restoreEngine loads an engine snapshot checkpoint; a missing file is a
// fresh start, not an error.
func restoreEngine(eng *core.Engine[uint64], path string) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	es, rest, err := core.DecodeEngineSnapshot[uint64](data)
	if err != nil {
		return false, err
	}
	if len(rest) != 0 {
		return false, fmt.Errorf("%d trailing bytes in checkpoint", len(rest))
	}
	if err := eng.LoadSnapshot(es); err != nil {
		return false, err
	}
	return true, nil
}

// writeEngineCheckpoint atomically replaces the checkpoint file: fsynced
// temp write, rename, directory sync — the same durability discipline as
// the resilience checkpoint store, so a crash (or power loss) mid-write
// never costs the last good checkpoint.
func writeEngineCheckpoint(eng *core.Engine[uint64], path string) error {
	var es core.EngineSnapshot[uint64]
	eng.SnapshotInto(&es)
	data, err := es.AppendBinary(nil)
	if err != nil {
		return err
	}
	fsys := resilience.OSFS{}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

func printHHH(dom *hierarchy.Domain[uint64], out []core.Result[uint64], n uint64, theta float64) {
	// Copy before sorting: Output returns a reusable query buffer.
	out = slices.Clone(out)
	sort.Slice(out, func(i, j int) bool { return out[i].Upper > out[j].Upper })
	fmt.Printf("hierarchical heavy hitters (theta=%g, N=%d):\n", theta, n)
	for _, p := range out {
		fmt.Printf("  %-44s f in [%12.0f, %12.0f]\n", dom.Format(p.Key, p.Node), p.Lower, p.Upper)
	}
	if len(out) == 0 {
		fmt.Println("  (none)")
	}
}

// deltaSyncConfig carries the -sync delta wiring options.
type deltaSyncConfig struct {
	dom            *hierarchy.Domain[uint64]
	col            *vswitch.Collector
	v              int
	epsilon, delta float64
	theta          float64
	udp            bool
	seed           uint64
	every          uint64
	timeout        time.Duration
	resyncEvery    int
	standby        bool
	failAfter      time.Duration
	watch          bool
	watchIvl       time.Duration
	backend        core.Backend
	reg            *telemetry.Registry
}

// setupDeltaSync wires the fault-tolerant acked report protocol: a local RHHH
// engine on the switch, generation-delta reports to the collector (UDP or an
// in-process link), and optionally a mid-run fail-over to a standby collector
// restored from a checkpoint (-collector-standby).
func setupDeltaSync(cfg deltaSyncConfig) (vswitch.Hook, func()) {
	eng := core.New(cfg.dom, core.Config{Epsilon: cfg.epsilon, Delta: cfg.delta, V: cfg.v, Seed: cfg.seed, Backend: cfg.backend})
	var (
		colMu sync.Mutex
		live  = cfg.col
	)
	var (
		tr      vswitch.ReportTransport
		redial  func(*vswitch.Collector) error
		cleanup func()
	)
	if cfg.udp {
		srv, err := vswitch.ListenUDP("127.0.0.1:0", cfg.col)
		if err != nil {
			fatalf("udp listen: %v", err)
		}
		utr, err := vswitch.DialUDPReport(srv.Addr())
		if err != nil {
			fatalf("udp dial: %v", err)
		}
		fmt.Fprintf(os.Stderr, "collector listening on %s\n", srv.Addr())
		tr = utr
		redial = func(sb *vswitch.Collector) error {
			srv2, err := vswitch.ListenUDP("127.0.0.1:0", sb)
			if err != nil {
				return err
			}
			srv.Close()
			srv = srv2
			fmt.Fprintf(os.Stderr, "standby collector listening on %s\n", srv2.Addr())
			return utr.Redial(srv2.Addr())
		}
		cleanup = func() {
			utr.Close()
			srv.Close()
		}
	} else {
		link := vswitch.NewCollectorLink(cfg.col, vswitch.FaultConfig{Seed: cfg.seed}, vswitch.FaultConfig{Seed: cfg.seed + 1})
		link.StartPump(time.Millisecond)
		tr = link
		redial = func(sb *vswitch.Collector) error {
			link.SetCollector(sb)
			return nil
		}
		cleanup = func() { link.Close() }
	}
	rep := vswitch.NewDeltaReporter(eng, tr, 1, vswitch.ReporterOptions{
		Every: cfg.every, ResyncEvery: cfg.resyncEvery, Timeout: cfg.timeout, Seed: cfg.seed,
	})
	rep.Instrument(cfg.reg)
	if cfg.watch {
		if cfg.standby {
			fatalf("-watch cannot follow the collector across -collector-standby fail-over")
		}
		w := cfg.col.Watch(cfg.theta, 0, cfg.watchIvl, func(d vswitch.CollectorDelta) {
			printWatchEvents(cfg.dom, d.Seq, d.N, d.Admitted, d.Retired, d.Updated)
		})
		prev := cleanup
		cleanup = func() {
			w.Close()
			prev()
		}
	}
	if cfg.standby {
		timer := time.AfterFunc(cfg.failAfter, func() {
			colMu.Lock()
			defer colMu.Unlock()
			ckpt, err := live.AppendCheckpoint(nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vswitchd: checkpoint: %v\n", err)
				return
			}
			sb := vswitch.NewCollector(cfg.dom, cfg.epsilon, cfg.delta, cfg.v)
			if err := sb.Restore(ckpt); err != nil {
				fmt.Fprintf(os.Stderr, "vswitchd: standby restore: %v\n", err)
				return
			}
			if err := redial(sb); err != nil {
				fmt.Fprintf(os.Stderr, "vswitchd: standby redial: %v\n", err)
				return
			}
			live = sb
			fmt.Fprintf(os.Stderr, "vswitchd: failed over to standby collector (%d byte checkpoint, epoch %d)\n",
				len(ckpt), sb.Epoch())
		})
		prev := cleanup
		cleanup = func() {
			timer.Stop()
			prev()
		}
	}
	report := func() {
		if err := rep.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "vswitchd: report error: %v\n", err)
		}
		if !rep.WaitSynced(2 * time.Second) {
			fmt.Fprintf(os.Stderr, "vswitchd: reporter did not reach sync before the deadline\n")
		}
		colMu.Lock()
		c := live
		colMu.Unlock()
		rst := rep.Stats()
		fmt.Printf("reporter: reports=%d (full=%d delta=%d) bytes full/delta=%d/%d retransmits=%d resyncs=%d superseded=%d\n",
			rst.Reports, rst.FullReports, rst.DeltaReports, rst.FullBytes, rst.DeltaBytes,
			rst.Retransmits, rst.Resyncs, rst.Superseded)
		cst := c.Stats()
		fmt.Printf("collector: epoch=%d packets=%d full=%d delta=%d stale=%d resyncReq=%d decodeErr=%d failovers=%d\n",
			c.Epoch(), c.Packets(), cst.FullReports, cst.DeltaReports, cst.StaleReports,
			cst.ResyncRequests, cst.DecodeErrors, cst.Failovers)
		for _, si := range c.Senders() {
			fmt.Printf("  sender %d: boot=%d seq=%d packets=%d staleness=%d dropped=%d\n",
				si.Sender, si.Boot, si.LastSeq, si.Packets, si.Staleness, si.Dropped)
		}
		printHHH(cfg.dom, c.Output(cfg.theta), c.Packets(), cfg.theta)
		cleanup()
	}
	return rep, report
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vswitchd: "+format+"\n", args...)
	os.Exit(2)
}
