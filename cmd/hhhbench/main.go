// Command hhhbench regenerates the paper's evaluation figures. Each -fig
// value prints the rows/series of the corresponding figure; see
// EXPERIMENTS.md for how the shapes compare to the paper.
//
// Usage:
//
//	hhhbench -fig 5                    # update-speed comparison (Figure 5)
//	hhhbench -fig all -quick           # everything, scaled down
//	hhhbench -fig 2 -epsilon 0.001 -packets 100000000   # paper-scale run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rhhh/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 2|3|4|5|6|7|8|r-updates|backends|worstcase|recall|space|weighted|converge|scale|all")
		quick    = flag.Bool("quick", false, "scale stream lengths down for a fast smoke run")
		epsilon  = flag.Float64("epsilon", 0, "override ε (default: per-figure)")
		delta    = flag.Float64("delta", 0, "override δ")
		theta    = flag.Float64("theta", 0, "override θ")
		packets  = flag.Int("packets", 0, "override packets per speed measurement")
		maxN     = flag.Uint64("n", 0, "override the largest sweep checkpoint")
		runs     = flag.Int("runs", 1, "repetitions per speed point (5 gives paper-style 95% CIs)")
		duration = flag.Duration("duration", 0, "time per vswitch configuration (default 1s)")
		udp      = flag.Bool("udp", false, "run Figure 8 over real loopback UDP")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed     = flag.Uint64("seed", 0, "override the experiment seed")
		workers  = flag.String("workers", "", "scale sweep: comma-separated producer counts (default 1,2,4,NumCPU)")
		busy     = flag.Bool("busy", false, "scale sweep: run a concurrent HeavyHitters query load during each measurement")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hhhbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hhhbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	sweep := experiments.SweepConfig{Epsilon: *epsilon, Delta: *delta, Theta: *theta, Seed: *seed}
	if *quick {
		sweep.Checkpoints = []uint64{25_000, 100_000, 400_000}
		sweep.Profiles = []string{"sanjose14"}
		if sweep.Epsilon == 0 {
			sweep.Epsilon = 0.02
		}
	}
	if *maxN != 0 {
		var cps []uint64
		for n := *maxN; n >= 50_000; n /= 4 {
			cps = append([]uint64{n}, cps...)
		}
		sweep.Checkpoints = cps
	}

	speed := experiments.SpeedConfig{Packets: *packets, Runs: *runs, Delta: *delta, Seed: *seed}
	if *quick {
		if speed.Packets == 0 {
			speed.Packets = 100_000
		}
		speed.Profiles = []string{"sanjose14"}
		speed.Epsilons = []float64{0.001, 0.01, 0.1}
	}

	ovs := experiments.OVSConfig{
		Epsilon: *epsilon, Delta: *delta, Duration: *duration, UseUDP: *udp, Seed: *seed,
	}
	if *quick {
		if ovs.Duration == 0 {
			ovs.Duration = 200 * time.Millisecond
		}
		ovs.VMultipliers = []int{1, 2, 5, 10}
	}

	scale := experiments.ScalingConfig{
		Packets: *packets, Epsilon: *epsilon, Delta: *delta, Theta: *theta,
		Busy: *busy, Seed: *seed,
	}
	if *workers != "" {
		for _, s := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "hhhbench: -workers: bad count %q\n", s)
				os.Exit(2)
			}
			scale.Workers = append(scale.Workers, w)
		}
	}
	if *quick && scale.Packets == 0 {
		scale.Packets = 100_000
	}

	run := func(name string, f func() []experiments.Table) {
		start := time.Now()
		tables := f()
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n", t.Title)
				t.CSV(os.Stdout)
			} else {
				t.Print(os.Stdout)
			}
		}
		fmt.Printf("\n[%s finished in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	figures := map[string]func(){
		"2":         func() { run("figure 2", func() []experiments.Table { return experiments.Fig2Accuracy(sweep) }) },
		"3":         func() { run("figure 3", func() []experiments.Table { return experiments.Fig3Coverage(sweep) }) },
		"4":         func() { run("figure 4", func() []experiments.Table { return experiments.Fig4FalsePositives(sweep) }) },
		"5":         func() { run("figure 5", func() []experiments.Table { return experiments.Fig5Speed(speed) }) },
		"6":         func() { run("figure 6", func() []experiments.Table { return experiments.Fig6Dataplane(ovs) }) },
		"7":         func() { run("figure 7", func() []experiments.Table { return experiments.Fig7DataplaneV(ovs) }) },
		"8":         func() { run("figure 8", func() []experiments.Table { return experiments.Fig8DistributedV(ovs) }) },
		"r-updates": func() { run("r-updates", func() []experiments.Table { return experiments.AblationMultiUpdate(sweep) }) },
		"backends":  func() { run("backends", func() []experiments.Table { return experiments.AblationBackends(speed) }) },
		"worstcase": func() { run("worstcase", func() []experiments.Table { return experiments.AblationWorstCase(speed) }) },
		"recall":    func() { run("recall", func() []experiments.Table { return experiments.AblationRecall(sweep) }) },
		"space":     func() { run("space", func() []experiments.Table { return experiments.AblationSpace(speed) }) },
		"weighted":  func() { run("weighted", func() []experiments.Table { return experiments.AblationWeighted(sweep) }) },
		"converge":  func() { run("converge", func() []experiments.Table { return experiments.AblationConvergence(sweep) }) },
		"scale":     func() { run("scale", func() []experiments.Table { return experiments.ScalingSweep(scale) }) },
	}

	order := []string{"2", "3", "4", "5", "6", "7", "8", "r-updates", "backends", "worstcase", "recall", "space", "weighted", "converge", "scale"}
	switch *fig {
	case "all":
		for _, k := range order {
			figures[k]()
		}
	default:
		for _, k := range strings.Split(*fig, ",") {
			f, ok := figures[k]
			if !ok {
				fmt.Fprintf(os.Stderr, "hhhbench: unknown figure %q (valid: %s, all)\n",
					k, strings.Join(order, ", "))
				os.Exit(2)
			}
			f()
		}
	}
}
