package rhhh

import (
	"errors"
	"net/netip"
	"slices"
	"sync"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/telemetry"
)

// This file implements standing queries: instead of polling HeavyHitters and
// re-reading mostly unchanged sets, a subscriber registers once and receives
// the *changes* — a prefix became a hierarchical heavy hitter, one retired,
// one's estimate moved. Every query surface serves them from the same
// machinery: each tick captures one snapshot, runs the retained Extractor per
// subscription (the unchanged-state shortcut makes idle ticks ~free), and
// diffs against the subscription's last reported set in internal/core.
//
//   - Monitor.Watch + Monitor.Tick: explicit ticks on the caller's schedule
//     (the monitor is single-threaded, so ticks share its goroutine);
//   - Sharded.Watch: a driver goroutine ticks on the capture interval,
//     pausing one shard at a time exactly like HeavyHitters;
//   - Windowed.Watch: ticks on each completed (sub-)window, so deltas compare
//     consecutive windows — the change-detection deployment;
//   - vswitch.Collector.Watch: the distributed collector ships the same
//     event stream (internal/vswitch).

// Delta is one standing-query event: the change in a subscription's HHH set
// between two consecutive ticks. Replaying the delta stream — insert
// Admitted, remove Retired, overwrite Updated — reconstructs the reported
// set at every tick (bit-identical to a full HeavyHitters query when
// MinDelta is 0).
type Delta struct {
	// Seq is the hub's tick counter at delivery. Ticks without changes
	// deliver nothing, so subscribers observe gaps.
	Seq uint64
	// N is the stream weight backing the tick's query.
	N uint64
	// Theta is the threshold the tick used (recomputed each tick when
	// AutoThetaK is set).
	Theta float64
	// Dropped counts deltas dropped so far on this subscription's channel
	// (see WatchOptions.Buffer). After a drop the replayed set is stale
	// until the subscriber re-syncs with a full query. Always 0 for
	// callback delivery.
	Dropped uint64
	// Admitted holds prefixes that entered the HHH set; Retired ones that
	// left it, carrying their last reported estimates; Updated surviving
	// prefixes whose estimates moved at least MinDelta (current values).
	//
	// For callback delivery the slices are reused buffers, valid only during
	// the call — copy them to retain. Channel delivery clones them, so
	// received slices are owned by the receiver.
	Admitted, Retired, Updated []HeavyHitter
}

// Empty reports whether the delta carries no events (never delivered).
func (d *Delta) Empty() bool {
	return len(d.Admitted) == 0 && len(d.Retired) == 0 && len(d.Updated) == 0
}

// WatchOptions parameterizes one standing-query subscription.
type WatchOptions struct {
	// Theta is the subscription's HHH threshold in (0, 1]. Exactly one of
	// Theta and AutoThetaK must be set.
	Theta float64
	// AutoThetaK, when positive, re-tunes the threshold every tick to the
	// k-th largest conditioned-estimate fraction of the captured state (see
	// Snapshot.SuggestTheta), so the subscription tracks roughly the top k
	// fully specified keys as the traffic mix shifts. The threshold in
	// effect is reported in each Delta.
	AutoThetaK int
	// MinDelta is the count-change hysteresis for Updated events: a
	// surviving prefix is re-reported only when either frequency bound moved
	// at least MinDelta (in stream units) from its last reported value.
	// Membership changes (Admitted/Retired) are never suppressed. 0 reports
	// every change, keeping the delta stream exactly replayable.
	MinDelta float64
	// SrcFilter and DstFilter, when valid, restrict the subscription to
	// prefixes contained in them (DstFilter requires a two-dimensional
	// hierarchy). Filters must match the monitor's address family.
	SrcFilter, DstFilter netip.Prefix
	// OnDelta selects callback delivery: it runs on the ticking goroutine
	// (the driver for Sharded, the caller of Tick for Monitor, the flush
	// path for Windowed), must not block, and must not call Watch, Close or
	// Tick on the same surface. When nil, deltas are delivered on the
	// subscription's Events channel instead.
	OnDelta func(Delta)
	// Buffer is the Events channel capacity (default 16, minimum 1). A slow
	// consumer never blocks measurement: when the channel is full the
	// oldest buffered delta is dropped to make room, and Delta.Dropped
	// counts the losses.
	Buffer int
	// Interval is the subscription's desired tick interval, honored by
	// interval-driven surfaces (Sharded): the driver ticks at the smallest
	// interval across live subscriptions (default 100ms). Monitor and
	// Windowed ignore it — their ticks are explicit or window-driven.
	Interval time.Duration
}

const (
	defaultWatchBuffer   = 16
	defaultWatchInterval = 100 * time.Millisecond
)

// Subscription is one registered standing query. Close unregisters it; for
// channel delivery the Events channel is closed when the subscription (or
// the surface's watch hub) closes.
type Subscription struct {
	hub interface{ remove(*Subscription) }
	ch  chan Delta
}

// Events returns the delivery channel (nil for callback subscriptions).
// Deltas arrive in tick order; when the subscriber lags past the channel
// buffer the oldest deltas are dropped (counted in Delta.Dropped).
func (s *Subscription) Events() <-chan Delta { return s.ch }

// Close unregisters the subscription and closes its Events channel.
// Idempotent.
func (s *Subscription) Close() { s.hub.remove(s) }

// watchCtl is the carrier-erased handle a surface keeps on its hub.
type watchCtl interface {
	register(opts WatchOptions) (*Subscription, error)
	tick()
	closeHub()
	minInterval() time.Duration
	instrument(tm *telemetry.WatchStats)
}

// watchHub drives the standing-query subscriptions of one query surface:
// per tick it captures the surface's state once and runs every
// subscription's extract → filter → diff → deliver pipeline against it.
type watchHub[K comparable] struct {
	mu      sync.Mutex
	dom     *hierarchy.Domain[K]
	split   func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix)
	ipv6    bool
	capture func() *core.EngineSnapshot[K]
	subs    []*subState[K]
	seq     uint64
	closed  bool

	// tm is the hub's telemetry block (nil when uninstrumented); all its
	// owner-side state — including the tick-latency histogram — is mutated
	// only under mu, which serializes every tick. delivered counts deltas
	// handed to subscribers across the hub's lifetime.
	tm        *telemetry.WatchStats
	delivered uint64
}

// instrument attaches the telemetry block. Hub counters surface at each
// tick; the subscription gauge refreshes on register/remove as well.
func (h *watchHub[K]) instrument(tm *telemetry.WatchStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tm = tm
	tm.Subs.Store(uint64(len(h.subs)))
}

// subState is the per-subscription workspace: its own Extractor (so the
// unchanged-state shortcut and the incremental seed apply per θ), its own
// Differ (the hysteresis baseline is per subscriber), and reused filter and
// conversion buffers — a tick that emits nothing allocates nothing.
type subState[K comparable] struct {
	sub                 *Subscription
	opts                WatchOptions
	ex                  *core.Extractor[K]
	differ              *core.Differ[K]
	fbuf                []core.Result[K]
	convA, convR, convU converter[K]
	dropped             uint64
}

func newWatchHub[K comparable](
	dom *hierarchy.Domain[K],
	split func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix),
	ipv6 bool,
	capture func() *core.EngineSnapshot[K],
) *watchHub[K] {
	return &watchHub[K]{dom: dom, split: split, ipv6: ipv6, capture: capture}
}

func (h *watchHub[K]) register(opts WatchOptions) (*Subscription, error) {
	if err := h.normalize(&opts); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, errors.New("rhhh: Watch on a closed surface")
	}
	st := &subState[K]{
		opts:   opts,
		ex:     core.NewExtractor(h.dom),
		differ: core.NewDiffer[K](),
	}
	st.sub = &Subscription{hub: h}
	if opts.OnDelta == nil {
		st.sub.ch = make(chan Delta, opts.Buffer)
	}
	h.subs = append(h.subs, st)
	if h.tm != nil {
		h.tm.Subs.Store(uint64(len(h.subs)))
	}
	return st.sub, nil
}

// normalize validates opts and fills defaults.
func (h *watchHub[K]) normalize(o *WatchOptions) error {
	switch {
	case o.AutoThetaK < 0:
		return errors.New("rhhh: WatchOptions.AutoThetaK must be positive")
	case o.AutoThetaK == 0 && !(o.Theta > 0 && o.Theta <= 1):
		return errors.New("rhhh: WatchOptions.Theta must be in (0, 1] (or set AutoThetaK)")
	case o.AutoThetaK > 0 && o.Theta != 0:
		return errors.New("rhhh: set either WatchOptions.Theta or AutoThetaK, not both")
	}
	if o.MinDelta < 0 {
		return errors.New("rhhh: WatchOptions.MinDelta must be non-negative")
	}
	if o.Interval < 0 {
		return errors.New("rhhh: WatchOptions.Interval must be non-negative")
	}
	if o.Buffer < 1 {
		o.Buffer = defaultWatchBuffer
	}
	if o.DstFilter.IsValid() && h.dom.Dims() != 2 {
		return errors.New("rhhh: DstFilter needs a two-dimensional hierarchy")
	}
	for _, f := range []netip.Prefix{o.SrcFilter, o.DstFilter} {
		if f.IsValid() && f.Addr().Is4() == h.ipv6 {
			return errors.New("rhhh: watch filter address family does not match the monitor")
		}
	}
	return nil
}

func (h *watchHub[K]) remove(sub *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, st := range h.subs {
		if st.sub == sub {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			if sub.ch != nil {
				close(sub.ch)
			}
			if h.tm != nil {
				h.tm.Subs.Store(uint64(len(h.subs)))
			}
			return
		}
	}
}

func (h *watchHub[K]) closeHub() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, st := range h.subs {
		if st.sub.ch != nil {
			close(st.sub.ch)
		}
	}
	h.subs = nil
	if h.tm != nil {
		h.tm.Subs.Store(0)
	}
}

// minInterval returns the smallest requested tick interval across live
// subscriptions; only when no subscription requests one does the default
// apply (a sole subscription asking for a long interval gets it).
func (h *watchHub[K]) minInterval() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var d time.Duration
	for _, st := range h.subs {
		if st.opts.Interval > 0 && (d == 0 || st.opts.Interval < d) {
			d = st.opts.Interval
		}
	}
	if d == 0 {
		d = defaultWatchInterval
	}
	return d
}

// tick runs one standing-query evaluation: one capture, then per
// subscription extraction, filtering, diffing and delivery. Ticks, Watch and
// Close serialize on the hub lock.
func (h *watchHub[K]) tick() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	var t0 time.Time
	if h.tm != nil {
		t0 = time.Now()
	}
	es := h.capture()
	h.seq++
	for _, st := range h.subs {
		theta := st.opts.Theta
		if st.opts.AutoThetaK > 0 {
			theta = es.SuggestTheta(h.dom, st.opts.AutoThetaK)
		}
		var rs []core.Result[K]
		if es.Weight > 0 {
			rs = st.ex.ExtractSnapshot(es, theta)
		}
		d := st.differ.Diff(st.filter(h, rs), st.opts.MinDelta)
		if d.Empty() {
			continue
		}
		h.delivered++
		st.deliver(Delta{
			Seq:      h.seq,
			N:        es.Weight,
			Theta:    theta,
			Dropped:  st.dropped,
			Admitted: st.convA.convert(h.dom, h.split, d.Admitted),
			Retired:  st.convR.convert(h.dom, h.split, d.Retired),
			Updated:  st.convU.convert(h.dom, h.split, d.Updated),
		})
	}
	if h.tm != nil {
		h.publishTelemetry(t0)
	}
}

// publishTelemetry surfaces the tick's counters and latency. Runs under
// h.mu (the histogram's owner serialization) on every instrumented tick.
func (h *watchHub[K]) publishTelemetry(t0 time.Time) {
	var differs, drops uint64
	for _, st := range h.subs {
		differs += uint64(st.differ.Len())
		drops += st.dropped
	}
	tm := h.tm
	tm.Ticks.Store(h.seq)
	tm.Deliveries.Store(h.delivered)
	tm.Drops.Store(drops)
	tm.Subs.Store(uint64(len(h.subs)))
	tm.DifferEntries.Store(differs)
	tm.TickLatency.ObserveSince(t0)
	tm.TickLatency.Publish()
}

// filter keeps only results inside the subscription's prefix filters,
// writing into the reused filter buffer. Without filters rs passes through
// untouched.
func (st *subState[K]) filter(h *watchHub[K], rs []core.Result[K]) []core.Result[K] {
	if !st.opts.SrcFilter.IsValid() && !st.opts.DstFilter.IsValid() {
		return rs
	}
	st.fbuf = st.fbuf[:0]
	for _, r := range rs {
		node := h.dom.Node(r.Node)
		srcP, dstP := h.split(r.Key, node.SrcBits, node.DstBits)
		if f := st.opts.SrcFilter; f.IsValid() && !prefixWithin(srcP, f) {
			continue
		}
		if f := st.opts.DstFilter; f.IsValid() && !prefixWithin(dstP, f) {
			continue
		}
		st.fbuf = append(st.fbuf, r)
	}
	return st.fbuf
}

// prefixWithin reports whether p is contained in f (p at least as specific,
// inside f's range).
func prefixWithin(p, f netip.Prefix) bool {
	return p.Bits() >= f.Bits() && f.Contains(p.Addr())
}

// deliver hands the delta to the subscriber. Callback subscriptions run
// synchronously on the ticking goroutine. Channel subscriptions get cloned
// slices; a full channel drops its oldest delta to make room (latest wins),
// counting the loss in Delta.Dropped — delivery never blocks the tick.
func (st *subState[K]) deliver(d Delta) {
	if st.opts.OnDelta != nil {
		st.opts.OnDelta(d)
		return
	}
	d.Admitted = slices.Clone(d.Admitted)
	d.Retired = slices.Clone(d.Retired)
	d.Updated = slices.Clone(d.Updated)
	for {
		select {
		case st.sub.ch <- d:
			return
		default:
		}
		// Full: delivery only happens under the hub lock (single producer),
		// so after evicting the oldest delta the retry slot is free.
		select {
		case <-st.sub.ch:
			st.dropped++
			d.Dropped = st.dropped
		default:
		}
	}
}

// Watch registers a standing query on the monitor: each Tick evaluates the
// HHH set at the subscription's threshold and delivers the delta against the
// previous tick. The monitor is single-threaded, so ticks are explicit —
// call Tick from the goroutine that updates the monitor, at whatever cadence
// the deployment wants events. Requires the RHHH algorithm.
func (m *Monitor) Watch(opts WatchOptions) (*Subscription, error) {
	return m.impl.watch(opts)
}

// Tick runs one standing-query evaluation, delivering deltas to every
// subscription registered with Watch. A tick with no subscriptions — or no
// state change since the previous tick — does no meaningful work and
// allocates nothing.
func (m *Monitor) Tick() { m.impl.tickWatch() }
