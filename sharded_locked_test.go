package rhhh

import (
	"fmt"
	"net/netip"
	"sync"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// This file preserves the PR 7 mutex-based sharded path test-only (the
// mergeMapSort/extractMapRef pattern): every producer batch serialized
// through a per-shard mutex, and queries pausing one shard at a time to
// capture its engine into a reused snapshot buffer. It is the differential
// reference the lock-free publication path is pinned against (see
// sharded_diff_test.go) and the "old" side of BenchmarkShardedScaling.
// Exported identifiers here are visible to the external rhhh_test package
// but not to importers of the library.

// LockedSharded is the old mutex-based sharded monitor.
type LockedSharded struct {
	cfg    Config
	shards []*LockedShard

	aggMu sync.Mutex
	agg   lockedAgg
}

// LockedShard is one producer's handle on the old path: a monitor plus the
// lock that coordinates its updates with snapshot capture.
type LockedShard struct {
	mu sync.Mutex
	m  *Monitor
}

// Update records one packet on this shard under its lock.
func (sh *LockedShard) Update(src, dst netip.Addr) {
	sh.mu.Lock()
	sh.m.Update(src, dst)
	sh.mu.Unlock()
}

// UpdateWeighted records one weighted packet on this shard under its lock.
func (sh *LockedShard) UpdateWeighted(src, dst netip.Addr, w uint64) {
	sh.mu.Lock()
	sh.m.UpdateWeighted(src, dst, w)
	sh.mu.Unlock()
}

// UpdateBatch records a batch on this shard, amortizing the lock over it.
func (sh *LockedShard) UpdateBatch(srcs, dsts []netip.Addr) {
	sh.mu.Lock()
	sh.m.UpdateBatch(srcs, dsts)
	sh.mu.Unlock()
}

// UpdateWeightedBatch records a weighted batch on this shard under its lock.
func (sh *LockedShard) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	sh.mu.Lock()
	sh.m.UpdateWeightedBatch(srcs, dsts, ws)
	sh.mu.Unlock()
}

// N returns this shard's stream weight under its lock.
func (sh *LockedShard) N() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.N()
}

// NewLockedShardedForTest builds the old mutex-based sharded monitor with the
// same per-shard seeding as NewSharded, so equal per-shard streams produce
// bit-identical engine states on both paths.
func NewLockedShardedForTest(cfg Config, n int) (*LockedSharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("rhhh: need at least one shard, got %d", n)
	}
	if cfg.Algorithm != RHHH {
		return nil, fmt.Errorf("rhhh: sharding requires the RHHH algorithm, got %v", cfg.Algorithm)
	}
	s := &LockedSharded{cfg: cfg, shards: make([]*LockedShard, n)}
	monitors := make([]*Monitor, n)
	for i := range s.shards {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		m, err := New(c)
		if err != nil {
			return nil, err
		}
		monitors[i] = m
		s.shards[i] = &LockedShard{m: m}
	}
	switch im := monitors[0].impl.(type) {
	case *impl[uint32]:
		s.agg = newLockedAggState(im, monitors)
	case *impl[uint64]:
		s.agg = newLockedAggState(im, monitors)
	case *impl[hierarchy.Addr]:
		s.agg = newLockedAggState(im, monitors)
	case *impl[hierarchy.AddrPair]:
		s.agg = newLockedAggState(im, monitors)
	default:
		return nil, fmt.Errorf("rhhh: unknown shard implementation %T", monitors[0].impl)
	}
	return s, nil
}

// Shard returns shard i's handle.
func (s *LockedSharded) Shard(i int) *LockedShard { return s.shards[i] }

// Shards returns the number of shards.
func (s *LockedSharded) Shards() int { return len(s.shards) }

// N returns the combined stream weight, taking each shard's lock in turn.
func (s *LockedSharded) N() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.N()
	}
	return n
}

// HeavyHitters answers the HHH query the old way: pause each shard for its
// snapshot copy, then merge and extract outside the shard locks on reused
// buffers. The returned slice is the reusable query buffer, as on Sharded.
func (s *LockedSharded) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.refresh(s.shards)
	return s.agg.query(theta)
}

// lockedAgg is the carrier-typed aggregator behind the old query path.
type lockedAgg interface {
	refresh(shards []*LockedShard)
	query(theta float64) []HeavyHitter
}

// lockedAggState is the PR 7 aggState: reusable per-shard capture buffers, a
// reusable merger and a reusable extractor+converter.
type lockedAggState[K comparable] struct {
	im      *impl[K]
	engines []*core.Engine[K]
	bufs    []core.EngineSnapshot[K]
	ptrs    []*core.EngineSnapshot[K]
	sm      core.SnapshotMerger[K]
	merged  core.EngineSnapshot[K]
	ex      *core.Extractor[K]
	conv    converter[K]
}

func newLockedAggState[K comparable](first *impl[K], monitors []*Monitor) *lockedAggState[K] {
	a := &lockedAggState[K]{
		im:      first,
		engines: make([]*core.Engine[K], len(monitors)),
		bufs:    make([]core.EngineSnapshot[K], len(monitors)),
		ptrs:    make([]*core.EngineSnapshot[K], len(monitors)),
		ex:      core.NewExtractor(first.dom),
	}
	for i, m := range monitors {
		eng, ok := m.impl.(*impl[K]).alg.(*core.Engine[K])
		if !ok {
			panic("rhhh: sharding requires the RHHH engine")
		}
		a.engines[i] = eng
		a.ptrs[i] = &a.bufs[i]
	}
	return a
}

func (a *lockedAggState[K]) refresh(shards []*LockedShard) {
	for i, sh := range shards {
		sh.mu.Lock()
		a.engines[i].SnapshotInto(&a.bufs[i])
		sh.mu.Unlock()
	}
}

func (a *lockedAggState[K]) query(theta float64) []HeavyHitter {
	merged := a.sm.Merge(&a.merged, a.ptrs...)
	return a.conv.convert(a.im.dom, a.im.split, a.ex.ExtractSnapshot(merged, theta))
}
