module rhhh

go 1.24
