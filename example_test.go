package rhhh_test

import (
	"fmt"
	"net/netip"

	"rhhh"
)

// ExampleMonitor demonstrates the core workflow: create a monitor, feed
// packets, query heavy hitters. The deterministic MST algorithm is used so
// the output is stable; swap Algorithm for rhhh.RHHH (the default) in
// production.
func ExampleMonitor() {
	m := rhhh.MustNew(rhhh.Config{
		Dims:      1,
		Epsilon:   0.01,
		Algorithm: rhhh.MST,
	})

	// 60 packets from one /24 (spread over hosts), 40 from random sources.
	for i := 0; i < 60; i++ {
		m.Update(netip.AddrFrom4([4]byte{203, 0, 113, byte(i)}), netip.Addr{})
	}
	for i := 0; i < 40; i++ {
		m.Update(netip.AddrFrom4([4]byte{byte(7 * i), byte(11 * i), byte(13 * i), byte(17 * i)}), netip.Addr{})
	}

	// Only the /24 passes θ = 50%: the remaining 40 packets are spread too
	// thin for any other prefix (including *) to add θ·N uncovered traffic.
	for _, hh := range m.HeavyHitters(0.5) {
		fmt.Printf("%s covers at least %.0f packets\n", hh.Text, hh.Lower)
	}
	// Output:
	// 203.0.113.* covers at least 60 packets
}

// ExamplePsi shows sizing a measurement interval: with the paper's
// parameters (ε = δ = 0.001) and the 2D byte hierarchy (H = 25), RHHH needs
// about 10⁸ packets to converge — §4.1's "about 100 million packets".
func ExamplePsi() {
	psi := rhhh.Psi(0.001, 0.001, 25)
	fmt.Printf("RHHH:    ψ ≈ %.0fM packets\n", psi/1e6)
	fmt.Printf("10-RHHH: ψ ≈ %.0fM packets\n", rhhh.Psi(0.001, 0.001, 250)/1e6)
	// Output:
	// RHHH:    ψ ≈ 90M packets
	// 10-RHHH: ψ ≈ 897M packets
}
