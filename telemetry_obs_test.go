package rhhh_test

// Allocation pins and the overhead benchmark for the production telemetry
// layer: instrumentation must keep the hot paths at zero allocations and
// within noise of the uninstrumented baseline (the watermark publish is the
// only added work, amortized over thousands of packets).

import (
	"net/netip"
	"testing"

	"rhhh"
	"rhhh/internal/telemetry"
	"rhhh/internal/trace"
)

func obsStreams(n int) (srcs, dsts []netip.Addr) {
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	srcs = make([]netip.Addr, n)
	dsts = make([]netip.Addr, n)
	for i := range srcs {
		p, _ := gen.Next()
		srcs[i] = v4addr(p.SrcIP.IPv4())
		dsts[i] = v4addr(p.DstIP.IPv4())
	}
	return srcs, dsts
}

// TestInstrumentedUpdateZeroAlloc pins the instrumented ingest paths at
// zero allocations per operation: the AllocsPerRun windows are long enough
// to cross the telemetry publish watermark repeatedly, so the amortized
// TelemetryInto is included in the pin.
func TestInstrumentedUpdateZeroAlloc(t *testing.T) {
	srcs, dsts := obsStreams(256)
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250, Seed: 4}

	m := rhhh.MustNew(cfg)
	if err := m.Instrument(telemetry.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // warm: summaries allocated, eviction path live
		m.UpdateBatch(srcs, dsts)
	}
	if n := testing.AllocsPerRun(100, func() { m.UpdateBatch(srcs, dsts) }); n != 0 {
		t.Errorf("instrumented Monitor.UpdateBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.Update(srcs[0], dsts[0]) }); n != 0 {
		t.Errorf("instrumented Monitor.Update allocates %v/op", n)
	}

	// A huge publication cadence pins the between-publication worker path,
	// exactly like the uninstrumented pin in batch_test.go: publication
	// itself allocates (a fresh pubState per changed epoch) with or without
	// telemetry and is amortized over the cadence.
	s, err := rhhh.NewShardedOptions(cfg, 2,
		rhhh.ShardedOptions{PublishPackets: 1 << 62, PublishBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Instrument(telemetry.NewRegistry())
	for i := 0; i < 40; i++ {
		s.Worker(0).UpdateBatch(srcs, dsts)
	}
	if n := testing.AllocsPerRun(100, func() { s.Worker(0).UpdateBatch(srcs, dsts) }); n != 0 {
		t.Errorf("instrumented Worker.UpdateBatch allocates %v/op", n)
	}
	// An idle Sync republishes nothing but still runs the full telemetry
	// publication (counter stores + the O(H) engine walk): must be alloc-free.
	s.Worker(0).Sync()
	if n := testing.AllocsPerRun(100, func() { s.Worker(0).Sync() }); n != 0 {
		t.Errorf("instrumented idle Worker.Sync allocates %v/op", n)
	}
}

// TestInstrumentedWatchTickZeroAlloc is TestWatchTickZeroAlloc with the
// telemetry layer live: the tick-latency observation and counter stores
// must not break the zero-allocation tick.
func TestInstrumentedWatchTickZeroAlloc(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 4,
	})
	if err := m.Instrument(telemetry.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	heavy := netip.MustParseAddr("10.1.2.3")
	sub, err := m.Watch(rhhh.WatchOptions{
		Theta:    0.5,
		MinDelta: 1e15,
		OnDelta:  func(rhhh.Delta) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 200_000; i++ {
		m.Update(heavy, netip.Addr{})
	}
	m.Tick()
	m.Tick()
	if n := testing.AllocsPerRun(100, func() { m.Tick() }); n != 0 {
		t.Errorf("instrumented idle watch tick allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		m.Update(heavy, netip.Addr{})
		m.Tick()
	}); n != 0 {
		t.Errorf("instrumented busy watch tick allocates %v per run", n)
	}
}

// TestInstrumentedScrapeZeroAlloc pins a steady-state scrape of a fully
// instrumented sharded monitor — every worker block, the query block and
// the watch block — at zero allocations per pass.
func TestInstrumentedScrapeZeroAlloc(t *testing.T) {
	srcs, dsts := obsStreams(256)
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250, Seed: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	for w := 0; w < 2; w++ {
		for i := 0; i < 10; i++ {
			s.Worker(w).UpdateBatch(srcs, dsts)
		}
		s.Worker(w).Sync()
	}
	s.HeavyHitters(0.05)   // exercise the query block too
	dst := reg.Gather(nil) // warm: buffer reaches steady-state size
	if len(dst) == 0 {
		t.Fatal("empty exposition")
	}
	allocs := testing.AllocsPerRun(100, func() { dst = reg.Gather(dst[:0]) })
	if allocs != 0 {
		t.Errorf("steady-state scrape allocates %v per pass, want 0", allocs)
	}
}

// BenchmarkTelemetryOverhead measures the full cost of the instrumentation
// on the batched 2D ingest path: the Disabled leg runs the uninstrumented
// branch (one nil check per batch), the Instrumented leg adds the watermark
// countdown and the amortized O(H) publish every 4096 packets. Recorded in
// BENCH_obs.json; the acceptance bound is 2%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	srcs, dsts := obsStreams(8192)
	for _, tc := range []struct {
		name string
		inst bool
	}{{"Disabled", false}, {"Instrumented", true}} {
		b.Run(tc.name, func(b *testing.B) {
			m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.001, Delta: 0.001, V: 250, Seed: 1})
			if tc.inst {
				if err := m.Instrument(telemetry.NewRegistry()); err != nil {
					b.Fatal(err)
				}
			}
			const burst = 256
			mask := len(srcs) - 1
			b.ResetTimer()
			for i := 0; i < b.N; i += burst {
				off := i & mask
				m.UpdateBatch(srcs[off:off+burst], dsts[off:off+burst])
			}
		})
	}
}
