package rhhh

import (
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
)

// Checkpointer drives crash-safe incremental checkpointing of a Sharded
// monitor into a resilience.Store: a periodic full checkpoint (the merged
// published engine snapshot) starts a generation, and the checkpoints in
// between are generation-delta journal segments — only the lattice nodes
// whose mutation generation moved since the last durable point, entry-
// delta-coded (the same core.DeltaCodec the vswitch wire protocol uses).
// Every file is CRC-framed and written fsynced tmp+rename; recovery
// replays full+journal, tolerating a truncated or corrupt tail.
//
// The delta base advances only after the store reports a write durable, so
// a failed write (disk full, crash) never desynchronizes the chain: the
// recoverable state always equals the last durable full+journal point.
//
// One goroutine owns the Checkpointer. Checkpoint may run concurrently
// with producers and queries (it takes the query lock only to capture and
// commit, not across the disk write); Restore must run before producers
// start.
type Checkpointer struct {
	s         *Sharded
	store     *resilience.Store
	fullEvery int
	deltas    int
	buf       []byte
}

// NewCheckpointer builds a checkpointer writing through store. fullEvery
// bounds the journal: after that many delta segments the next checkpoint
// is promoted to a full one, starting a fresh generation and pruning the
// old (0 means the default, 16).
func NewCheckpointer(s *Sharded, store *resilience.Store, fullEvery int) *Checkpointer {
	if fullEvery <= 0 {
		fullEvery = 16
	}
	return &Checkpointer{s: s, store: store, fullEvery: fullEvery}
}

// Checkpoint captures the merged published state and writes one durable
// checkpoint — a journal segment normally, a full checkpoint when the
// journal has reached fullEvery segments (or no base exists yet). It
// reports which kind was written. On error the store's recoverable state
// and the delta base are unchanged; the next call simply retries.
func (c *Checkpointer) Checkpoint() (full bool, err error) {
	_, seq := c.store.Generation()
	wantFull := int(seq) >= c.fullEvery
	c.s.aggMu.Lock()
	out, wroteFull, err := c.s.agg.appendCheckpoint(c.s.workers, c.buf[:0], wantFull)
	c.s.aggMu.Unlock()
	if err != nil {
		return false, err
	}
	c.buf = out[:0] // retain capacity across checkpoints
	if wroteFull {
		err = c.store.WriteFull(out)
	} else {
		err = c.store.AppendSegment(out)
	}
	if err != nil {
		return wroteFull, err
	}
	c.s.aggMu.Lock()
	c.s.agg.commitCheckpoint()
	c.s.aggMu.Unlock()
	return wroteFull, nil
}

// Restore recovers the newest durable full+journal state from the store
// and loads it into the monitor (worker 0's engine, published
// immediately), reporting whether anything was restored. Call it on a
// freshly constructed Sharded before any producer goroutine starts; the
// engines must use a snapshot-capable backend (Space Saving or CHK).
func (c *Checkpointer) Restore() (restored bool, err error) {
	fullBytes, segs, err := c.store.Recover()
	if err != nil {
		return false, err
	}
	if fullBytes == nil {
		return false, nil
	}
	c.s.aggMu.Lock()
	err = c.s.agg.applyCheckpoint(fullBytes, segs)
	c.s.aggMu.Unlock()
	if err != nil {
		return false, err
	}
	// Publish the restored state: Restore runs on the (sole) pre-producer
	// goroutine, which owns every worker at this point.
	c.s.workers[0].Sync()
	return true, nil
}

// Store returns the underlying checkpoint store (telemetry registration,
// generation inspection).
func (c *Checkpointer) Store() *resilience.Store { return c.store }

// Instrument registers the store's checkpoint counters with reg.
func (c *Checkpointer) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.store.Stats.Register(reg, "")
}
