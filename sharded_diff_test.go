package rhhh

import (
	"math/rand/v2"
	"net/netip"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"rhhh/internal/core"
)

// White-box differential and concurrency tests for the shared-nothing
// publication path: the lock-free Worker/epoch machinery is pinned against
// the preserved mutex reference (sharded_locked_test.go) over random
// update/publish/query interleavings, the bounded-staleness contract is
// tested exactly, and the routed-entry-point concurrency guard is exercised.

func diffAddr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

type diffPacket struct {
	src, dst netip.Addr
	w        uint64 // 0 means unweighted Update
}

func randDiffPacket(rng *rand.Rand) diffPacket {
	// Skewed: a quarter of traffic on one flow, a quarter on one /16, the
	// rest uniform — gives the extractor real HHH structure at every θ.
	switch rng.IntN(4) {
	case 0:
		return diffPacket{src: diffAddr4(10, 1, 1, 1), dst: diffAddr4(20, 2, 2, 2)}
	case 1:
		return diffPacket{
			src: diffAddr4(30, 3, byte(rng.IntN(4)), byte(rng.IntN(256))),
			dst: diffAddr4(20, 2, 2, 2),
		}
	default:
		return diffPacket{
			src: diffAddr4(byte(rng.IntN(256)), byte(rng.IntN(256)), 0, 1),
			dst: diffAddr4(byte(rng.IntN(256)), 0, 0, 2),
		}
	}
}

// publishedPackets reads worker w's latest published packet count (the
// per-worker stream prefix a query observes).
func publishedPackets[K comparable](w *Worker) uint64 {
	ps := w.cell.v.Load().(*pubState)
	return ps.snap.(*core.PubSlot[K]).Snapshot().Packets
}

// TestShardedDifferentialInterleaved drives random per-worker streams through
// the lock-free path with random publication points (explicit Syncs plus the
// automatic cadence), and after every query replays each worker's published
// stream prefix into the mutex reference: the two paths must answer
// bit-identically at every published epoch set — the "query results are
// bit-identical to a sequential merge of the per-worker streams" acceptance
// criterion.
func TestShardedDifferentialInterleaved(t *testing.T) {
	cfg := Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 71}
	const workers = 3
	s, err := NewShardedOptions(cfg, workers, ShardedOptions{PublishPackets: 512, PublishBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewLockedShardedForTest(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(7, 21))
	logs := make([][]diffPacket, workers) // per-worker stream history
	refFed := make([]uint64, workers)     // prefix already replayed into ref
	thetas := []float64{0.05, 0.1, 0.25}

	feed := func(wi int) {
		w := s.workers[wi]
		burst := make([]diffPacket, 1+rng.IntN(200))
		for i := range burst {
			burst[i] = randDiffPacket(rng)
			if rng.IntN(8) == 0 {
				burst[i].w = 1 + uint64(rng.IntN(9))
			}
		}
		logs[wi] = append(logs[wi], burst...)
		switch rng.IntN(3) {
		case 0: // per-packet
			for _, p := range burst {
				if p.w != 0 {
					w.UpdateWeighted(p.src, p.dst, p.w)
				} else {
					w.Update(p.src, p.dst)
				}
			}
		case 1: // one unweighted batch (weights folded to 1)
			srcs := make([]netip.Addr, len(burst))
			dsts := make([]netip.Addr, len(burst))
			ws := make([]uint64, len(burst))
			for i, p := range burst {
				srcs[i], dsts[i] = p.src, p.dst
				if p.w == 0 {
					ws[i] = 1
				} else {
					ws[i] = p.w
				}
			}
			w.UpdateWeightedBatch(srcs, dsts, ws)
		default: // split into small batches
			srcs := make([]netip.Addr, 0, 64)
			dsts := make([]netip.Addr, 0, 64)
			for i, p := range burst {
				if p.w != 0 {
					// flush pending, then the weighted packet
					if len(srcs) > 0 {
						w.UpdateBatch(srcs, dsts)
						srcs, dsts = srcs[:0], dsts[:0]
					}
					w.UpdateWeighted(p.src, p.dst, p.w)
					continue
				}
				srcs = append(srcs, p.src)
				dsts = append(dsts, p.dst)
				if len(srcs) == 64 || i == len(burst)-1 {
					w.UpdateBatch(srcs, dsts)
					srcs, dsts = srcs[:0], dsts[:0]
				}
			}
			if len(srcs) > 0 {
				w.UpdateBatch(srcs, dsts)
			}
		}
	}

	check := func(step int) {
		// Replay each worker's published prefix into the reference. The
		// published packet count always lands on a call boundary of the
		// per-packet log, so the prefix is well defined.
		for wi := 0; wi < workers; wi++ {
			pub := publishedPackets[uint64](s.workers[wi])
			if pub < refFed[wi] {
				t.Fatalf("step %d worker %d: published packets went backwards (%d < %d)", step, wi, pub, refFed[wi])
			}
			for _, p := range logs[wi][refFed[wi]:pub] {
				if p.w != 0 {
					ref.Shard(wi).UpdateWeighted(p.src, p.dst, p.w)
				} else {
					ref.Shard(wi).Update(p.src, p.dst)
				}
			}
			refFed[wi] = pub
		}
		theta := thetas[rng.IntN(len(thetas))]
		got := s.HeavyHitters(theta)
		want := slices.Clone(ref.HeavyHitters(theta))
		if len(got) != len(want) {
			t.Fatalf("step %d θ=%v: %d vs %d results", step, theta, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d θ=%v result %d:\n lock-free: %+v\n reference: %+v", step, theta, i, got[i], want[i])
			}
		}
	}

	for step := 0; step < 120; step++ {
		feed(rng.IntN(workers))
		if rng.IntN(3) == 0 {
			s.workers[rng.IntN(workers)].Sync()
		}
		if rng.IntN(2) == 0 {
			check(step)
		}
	}
	// Final fully synced comparison: everything published, everything fed.
	s.Sync()
	check(-1)
	var total uint64
	for wi := range logs {
		total += refFed[wi]
	}
	if got := s.N(); got != ref.N() {
		t.Fatalf("final N: lock-free %d vs reference %d", got, ref.N())
	}
	_ = total
}

// TestShardedBoundedStaleness pins the publication-cadence contract exactly:
// a query lags each producer by less than one publication interval, the
// batch-count cadence publishes trickling batches, and Sync publishes
// immediately.
func TestShardedBoundedStaleness(t *testing.T) {
	t.Run("PacketWatermark", func(t *testing.T) {
		s, err := NewShardedOptions(Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 81}, 2,
			ShardedOptions{PublishPackets: 1000, PublishBatches: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		w := s.Worker(0)
		rng := rand.New(rand.NewPCG(8, 1))
		for i := 0; i < 2500; i++ {
			p := randDiffPacket(rng)
			w.Update(p.src, p.dst)
			if lag := w.N() - s.N(); lag >= 1000 {
				t.Fatalf("after %d packets the query lags by %d ≥ PublishPackets", i+1, lag)
			}
		}
		if got := s.N(); got != 2000 {
			t.Fatalf("published N = %d, want exactly the 2×1000 watermark publications", got)
		}
		w.Sync()
		if got := s.N(); got != 2500 {
			t.Fatalf("after Sync published N = %d, want 2500", got)
		}
	})
	t.Run("BatchCadence", func(t *testing.T) {
		s, err := NewShardedOptions(Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 82}, 1,
			ShardedOptions{PublishPackets: 1 << 62, PublishBatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		w := s.Worker(0)
		rng := rand.New(rand.NewPCG(8, 2))
		srcs := make([]netip.Addr, 10)
		dsts := make([]netip.Addr, 10)
		for b := 0; b < 5; b++ {
			for i := range srcs {
				p := randDiffPacket(rng)
				srcs[i], dsts[i] = p.src, p.dst
			}
			w.UpdateBatch(srcs, dsts)
		}
		if got := s.N(); got != 40 {
			t.Fatalf("published N = %d, want 40 (the 4-batch cadence publication)", got)
		}
		w.Sync()
		if got := s.N(); got != 50 {
			t.Fatalf("after Sync published N = %d, want 50", got)
		}
	})
}

// TestShardedEpochVersioning: the epoch increments exactly on publications
// that changed state; idle Syncs keep both the epoch and the published
// snapshot pointer.
func TestShardedEpochVersioning(t *testing.T) {
	s, err := NewShardedOptions(Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 83}, 1,
		ShardedOptions{PublishPackets: 1 << 62, PublishBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	w := s.Worker(0)
	if w.Epoch() != 0 {
		t.Fatalf("fresh worker epoch = %d", w.Epoch())
	}
	before := w.cell.v.Load()
	w.Sync()
	if w.Epoch() != 0 || w.cell.v.Load() != before {
		t.Fatal("idle Sync republished")
	}
	rng := rand.New(rand.NewPCG(8, 3))
	for i := 1; i <= 5; i++ {
		p := randDiffPacket(rng)
		w.Update(p.src, p.dst)
		w.Sync()
		if got := w.Epoch(); got != uint64(i) {
			t.Fatalf("after publication %d epoch = %d", i, got)
		}
		if got := w.PublishedN(); got != uint64(i) {
			t.Fatalf("after publication %d PublishedN = %d", i, got)
		}
		w.Sync() // idle again
		if got := w.Epoch(); got != uint64(i) {
			t.Fatalf("idle Sync bumped epoch to %d", got)
		}
	}
}

// TestShardedRoutedConcurrencyGuard: the routed convenience entry points
// share routing scratch and worker cadence state, so a second concurrent
// router must be rejected loudly (satellite: srcBuf/dstBuf/wBuf were
// documented single-goroutine but unguarded).
func TestShardedRoutedConcurrencyGuard(t *testing.T) {
	s, err := NewSharded(Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 84}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []netip.Addr{diffAddr4(1, 2, 3, 4), diffAddr4(5, 6, 7, 8)}
	dsts := []netip.Addr{diffAddr4(9, 9, 9, 9), diffAddr4(8, 8, 8, 8)}

	// Deterministic: with the router claimed, every routed entry point must
	// panic rather than touch the scratch concurrently.
	s.routeEnter()
	for name, call := range map[string]func(){
		"Update":              func() { s.Update(srcs[0], dsts[0]) },
		"UpdateWeighted":      func() { s.UpdateWeighted(srcs[0], dsts[0], 2) },
		"UpdateBatch":         func() { s.UpdateBatch(srcs, dsts) },
		"UpdateWeightedBatch": func() { s.UpdateWeightedBatch(srcs, dsts, []uint64{1, 2}) },
		"Sync":                func() { s.Sync() },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s did not panic while another routed call was in flight", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "concurrent routed update") {
					t.Fatalf("%s panicked with %v", name, r)
				}
			}()
			call()
		}()
	}
	s.routeExit()

	// And the single-goroutine sequence keeps working after rejections.
	s.UpdateBatch(srcs, dsts)
	s.Sync()
	if s.N() != 2 {
		t.Fatalf("N = %d after guard exercise", s.N())
	}

	// Two racing routers: the CAS gate admits one at a time; the loser
	// panics before touching scratch, so no corruption — run under -race.
	var wg sync.WaitGroup
	panics := 0
	var mu sync.Mutex
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				func() {
					defer func() {
						if recover() != nil {
							mu.Lock()
							panics++
							mu.Unlock()
						}
					}()
					s.UpdateBatch(srcs, dsts)
				}()
			}
		}()
	}
	wg.Wait()
	t.Logf("concurrent routed batches rejected: %d", panics)
}

// TestShardedQuerySideZeroAllocAcrossEpochs is the strong form of the warm
// busy-query pin: with the published epoch flipping between two states before
// every query (so no unchanged shortcut can fire end-to-end and the merger
// re-merges the touched node each time), the query side still allocates
// nothing — collect is two atomic loads, merge and extraction reuse all
// scratch.
func TestShardedQuerySideZeroAllocAcrossEpochs(t *testing.T) {
	s, err := NewSharded(Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, Seed: 85}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 5))
	for wi := 0; wi < 2; wi++ {
		w := s.workers[wi]
		for i := 0; i < 100000; i++ {
			p := randDiffPacket(rng)
			w.Update(p.src, p.dst)
		}
		w.Sync()
	}
	w := s.workers[0]
	stateA := w.cell.v.Load()
	w.Update(diffAddr4(10, 1, 1, 1), diffAddr4(20, 2, 2, 2))
	w.Sync()
	stateB := w.cell.v.Load()
	if stateA == stateB {
		t.Fatal("publication did not produce a new epoch")
	}
	flip := false
	query := func() {
		if flip {
			w.cell.v.Store(stateA)
		} else {
			w.cell.v.Store(stateB)
		}
		flip = !flip
		if len(s.HeavyHitters(0.05)) == 0 {
			t.Fatal("no heavy hitters")
		}
	}
	for i := 0; i < 16; i++ {
		query()
	}
	if allocs := testing.AllocsPerRun(100, query); allocs != 0 {
		t.Fatalf("query side allocates %v per run with changing epochs, want 0", allocs)
	}
}

// TestShardedDifferentialRaceChurn is the -race differential: concurrent
// producers with a small publication cadence, a hammering query goroutine
// asserting well-formed monotone results, and watch subscription churn — then
// a final bit-identical comparison against the mutex reference fed the same
// per-worker streams.
func TestShardedDifferentialRaceChurn(t *testing.T) {
	cfg := Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 91}
	const workers = 4
	s, err := NewShardedOptions(cfg, workers, ShardedOptions{PublishPackets: 512, PublishBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewLockedShardedForTest(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	logs := make([][]diffPacket, workers)

	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := s.workers[wi]
			rng := rand.New(rand.NewPCG(uint64(wi), 13))
			srcs := make([]netip.Addr, 64)
			dsts := make([]netip.Addr, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range srcs {
					p := randDiffPacket(rng)
					srcs[i], dsts[i] = p.src, p.dst
					logs[wi] = append(logs[wi], p)
				}
				w.UpdateBatch(srcs, dsts)
				if rng.IntN(16) == 0 {
					w.Sync()
				}
			}
		}(wi)
	}

	// Query hammer: results well formed, published N monotone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastN uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, h := range s.HeavyHitters(0.2) {
				if h.Upper < h.Lower {
					panic("inverted bounds in live query")
				}
			}
			if n := s.N(); n < lastN {
				panic("published N went backwards")
			} else {
				lastN = n
			}
			_ = s.Snapshot().N()
		}
	}()

	// Subscription churn against the 1ms watch driver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			sub, err := s.Watch(WatchOptions{Theta: 0.1, Interval: time.Millisecond, OnDelta: func(Delta) {}})
			if err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
			sub.Close()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Producers are quiescent with a happens-before edge: publish the tails
	// and compare against the reference fed the identical streams.
	s.Sync()
	for wi := 0; wi < workers; wi++ {
		sh := ref.Shard(wi)
		for _, p := range logs[wi] {
			sh.Update(p.src, p.dst)
		}
	}
	if s.N() != ref.N() {
		t.Fatalf("final N: lock-free %d vs reference %d", s.N(), ref.N())
	}
	got := s.HeavyHitters(0.1)
	want := slices.Clone(ref.HeavyHitters(0.1))
	if len(got) != len(want) {
		t.Fatalf("final query: %d vs %d results", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final result %d:\n lock-free: %+v\n reference: %+v", i, got[i], want[i])
		}
	}
}
