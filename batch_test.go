package rhhh_test

import (
	"net/netip"
	"testing"

	"rhhh"
	"rhhh/internal/fastrand"
)

func randAddr4(r *fastrand.Source) netip.Addr {
	v := uint32(r.Uint64())
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// TestMonitorUpdateBatchMatchesSequential: the public batched update must be
// indistinguishable from per-packet updates for the same seed, at V = H and
// V > H.
func TestMonitorUpdateBatchMatchesSequential(t *testing.T) {
	for _, vMult := range []int{0, 10} {
		cfg := rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 9}
		probe := rhhh.MustNew(cfg)
		cfg.V = vMult * probe.H()

		const n = 60_000
		r := fastrand.New(10)
		srcs := make([]netip.Addr, n)
		dsts := make([]netip.Addr, n)
		for i := range srcs {
			srcs[i] = randAddr4(r)
			dsts[i] = randAddr4(r)
		}

		seq := rhhh.MustNew(cfg)
		for i := range srcs {
			seq.Update(srcs[i], dsts[i])
		}
		bat := rhhh.MustNew(cfg)
		for i := 0; i < n; {
			end := i + 1 + int(r.Uint64n(5000))
			if end > n {
				end = n
			}
			bat.UpdateBatch(srcs[i:end], dsts[i:end])
			i = end
		}

		if seq.N() != bat.N() {
			t.Fatalf("V=%d: N %d vs %d", cfg.V, seq.N(), bat.N())
		}
		a, b := seq.HeavyHitters(0.01), bat.HeavyHitters(0.01)
		if len(a) != len(b) {
			t.Fatalf("V=%d: result count %d vs %d", cfg.V, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("V=%d: result %d differs: %+v vs %+v", cfg.V, i, a[i], b[i])
			}
		}
	}
}

// TestMonitorUpdateBatchOneDim: dsts == nil drives the 1D hierarchy.
func TestMonitorUpdateBatchOneDim(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05, Seed: 3}
	m := rhhh.MustNew(cfg)
	heavy := netip.AddrFrom4([4]byte{10, 1, 2, 3})
	r := fastrand.New(4)
	srcs := make([]netip.Addr, 50_000)
	for i := range srcs {
		if r.Uint64n(2) == 0 {
			srcs[i] = heavy
		} else {
			srcs[i] = randAddr4(r)
		}
	}
	m.UpdateBatch(srcs, nil)
	if m.N() != uint64(len(srcs)) {
		t.Fatalf("N = %d", m.N())
	}
	for _, h := range m.HeavyHitters(0.2) {
		if h.Level == 0 && h.Src.Addr() == heavy {
			return
		}
	}
	t.Fatal("heavy source missing from batched 1D monitor")
}

// TestMonitorUpdateBatchLengthMismatchPanics guards the API contract.
func TestMonitorUpdateBatchLengthMismatchPanics(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.1, Delta: 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	m.UpdateBatch(make([]netip.Addr, 3), make([]netip.Addr, 2))
}

// TestMonitorUpdateWeightedBatchMatchesSequential: the public weighted batch
// must be indistinguishable from per-packet UpdateWeighted for the same
// seed, at V = H and V > H, including zero and heavy weights.
func TestMonitorUpdateWeightedBatchMatchesSequential(t *testing.T) {
	for _, vMult := range []int{0, 10} {
		cfg := rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 13}
		probe := rhhh.MustNew(cfg)
		cfg.V = vMult * probe.H()

		const n = 60_000
		r := fastrand.New(14)
		srcs := make([]netip.Addr, n)
		dsts := make([]netip.Addr, n)
		ws := make([]uint64, n)
		for i := range srcs {
			srcs[i] = randAddr4(r)
			dsts[i] = randAddr4(r)
			switch r.Uint64n(10) {
			case 0:
				ws[i] = 0
			case 1:
				ws[i] = 1 + r.Uint64n(100_000)
			default:
				ws[i] = 1 + r.Uint64n(8)
			}
		}

		seq := rhhh.MustNew(cfg)
		for i := range srcs {
			seq.UpdateWeighted(srcs[i], dsts[i], ws[i])
		}
		bat := rhhh.MustNew(cfg)
		for i := 0; i < n; {
			end := i + 1 + int(r.Uint64n(5000))
			if end > n {
				end = n
			}
			bat.UpdateWeightedBatch(srcs[i:end], dsts[i:end], ws[i:end])
			i = end
		}

		if seq.N() != bat.N() {
			t.Fatalf("V=%d: N %d vs %d", cfg.V, seq.N(), bat.N())
		}
		a, b := seq.HeavyHitters(0.01), bat.HeavyHitters(0.01)
		if len(a) != len(b) {
			t.Fatalf("V=%d: result count %d vs %d", cfg.V, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("V=%d: result %d differs: %+v vs %+v", cfg.V, i, a[i], b[i])
			}
		}
	}
}

// TestMonitorUpdateWeightedBatchValidation guards the API contract.
func TestMonitorUpdateWeightedBatchValidation(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.1, Delta: 0.1})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("srcs/ws mismatch", func() {
		m.UpdateWeightedBatch(make([]netip.Addr, 3), make([]netip.Addr, 3), make([]uint64, 2))
	})
	mustPanic("srcs/dsts mismatch", func() {
		m.UpdateWeightedBatch(make([]netip.Addr, 3), make([]netip.Addr, 2), make([]uint64, 3))
	})
	mustPanic("nil dsts on 2D", func() {
		m.UpdateWeightedBatch(make([]netip.Addr, 3), nil, make([]uint64, 3))
	})
}

// TestMonitorBatchSurfacesZeroAlloc pins the steady-state allocation
// contract of the public batch surfaces.
func TestMonitorBatchSurfacesZeroAlloc(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250, Seed: 3})
	r := fastrand.New(5)
	srcs := make([]netip.Addr, 256)
	dsts := make([]netip.Addr, 256)
	ws := make([]uint64, 256)
	for i := range srcs {
		srcs[i] = randAddr4(r)
		dsts[i] = randAddr4(r)
		ws[i] = 1 + r.Uint64n(9)
	}
	for i := 0; i < 500; i++ { // fill summaries, grow scratch
		m.UpdateBatch(srcs, dsts)
		m.UpdateWeightedBatch(srcs, dsts, ws)
	}
	if n := testing.AllocsPerRun(100, func() { m.UpdateBatch(srcs, dsts) }); n != 0 {
		t.Errorf("Monitor.UpdateBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.UpdateWeightedBatch(srcs, dsts, ws) }); n != 0 {
		t.Errorf("Monitor.UpdateWeightedBatch allocates %v/op", n)
	}

	// A huge publication cadence pins the between-publication hot path: a
	// worker batch must allocate nothing (publication costs are amortized
	// and measured separately in TestShardedWarmQueryZeroAlloc).
	s, err := rhhh.NewShardedOptions(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250, Seed: 4}, 4,
		rhhh.ShardedOptions{PublishPackets: 1 << 62, PublishBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.UpdateBatch(srcs, dsts)
		s.UpdateWeightedBatch(srcs, dsts, ws)
	}
	if n := testing.AllocsPerRun(100, func() { s.Worker(0).UpdateBatch(srcs, dsts) }); n != 0 {
		t.Errorf("Worker.UpdateBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { s.Worker(0).UpdateWeightedBatch(srcs, dsts, ws) }); n != 0 {
		t.Errorf("Worker.UpdateWeightedBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { s.UpdateBatch(srcs, dsts) }); n != 0 {
		t.Errorf("Sharded.UpdateBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { s.UpdateWeightedBatch(srcs, dsts, ws) }); n != 0 {
		t.Errorf("Sharded.UpdateWeightedBatch allocates %v/op", n)
	}
}

// TestShardedUpdateWeightedBatchMatchesUpdate: weighted batched sharded
// feeding must land every packet on the same shard with the same weight as
// per-packet feeding, with identical merged results.
func TestShardedUpdateWeightedBatchMatchesUpdate(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 15}
	const shards = 4
	a, err := rhhh.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rhhh.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}

	const n = 40_000
	r := fastrand.New(16)
	srcs := make([]netip.Addr, n)
	dsts := make([]netip.Addr, n)
	ws := make([]uint64, n)
	for i := range srcs {
		srcs[i] = randAddr4(r)
		dsts[i] = randAddr4(r)
		ws[i] = r.Uint64n(16)
	}
	for i := range srcs {
		a.UpdateWeighted(srcs[i], dsts[i], ws[i])
	}
	for i := 0; i < n; i += 1000 {
		b.UpdateWeightedBatch(srcs[i:i+1000], dsts[i:i+1000], ws[i:i+1000])
	}

	a.Sync()
	b.Sync()
	if a.N() != b.N() {
		t.Fatalf("N %d vs %d", a.N(), b.N())
	}
	for i := 0; i < shards; i++ {
		if an, bn := a.Worker(i).N(), b.Worker(i).N(); an != bn {
			t.Fatalf("shard %d: N %d vs %d — batch routing diverged", i, an, bn)
		}
	}
	ha, hb := a.HeavyHitters(0.01), b.HeavyHitters(0.01)
	if len(ha) != len(hb) {
		t.Fatalf("result count %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

// TestShardedUpdateBatchMatchesUpdate: batched sharded feeding must land
// every packet on the same shard as per-packet feeding, with identical
// merged results.
func TestShardedUpdateBatchMatchesUpdate(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 5}
	const shards = 4
	a, err := rhhh.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rhhh.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}

	const n = 40_000
	r := fastrand.New(6)
	srcs := make([]netip.Addr, n)
	dsts := make([]netip.Addr, n)
	for i := range srcs {
		srcs[i] = randAddr4(r)
		dsts[i] = randAddr4(r)
	}
	for i := range srcs {
		a.Update(srcs[i], dsts[i])
	}
	for i := 0; i < n; i += 1000 {
		b.UpdateBatch(srcs[i:i+1000], dsts[i:i+1000])
	}

	a.Sync()
	b.Sync()
	if a.N() != b.N() {
		t.Fatalf("N %d vs %d", a.N(), b.N())
	}
	for i := 0; i < shards; i++ {
		if an, bn := a.Worker(i).N(), b.Worker(i).N(); an != bn {
			t.Fatalf("shard %d: N %d vs %d — batch routing diverged", i, an, bn)
		}
	}
	ha, hb := a.HeavyHitters(0.01), b.HeavyHitters(0.01)
	if len(ha) != len(hb) {
		t.Fatalf("result count %d vs %d", len(ha), len(hb))
	}
}
