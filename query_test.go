package rhhh_test

import (
	"net/netip"
	"slices"
	"testing"

	"rhhh"
)

// fillSharded drives a deterministic skewed workload into every shard.
func fillSharded(s *rhhh.Sharded, packets int) {
	rng := uint64(0x12345)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	for i := 0; i < packets; i++ {
		var src, dst netip.Addr
		switch next() % 10 {
		case 0, 1, 2, 3:
			src, dst = addr4(10, 1, 1, 1), addr4(20, 2, 2, 2)
		case 4, 5:
			src, dst = addr4(30, 3, byte(next()%4), byte(next()%256)), addr4(20, 2, 2, 2)
		default:
			src, dst = addr4(byte(next()%256), byte(next()%256), 0, 1), addr4(byte(next()%256), 0, 0, 2)
		}
		s.Update(src, dst)
	}
	s.Sync() // publish every worker's tail so queries see the whole fill
}

// TestShardedWarmQueryZeroAlloc asserts the acceptance criterion on the
// public sharded query path: once warm, HeavyHitters allocates nothing —
// both when the shards are idle (the whole capture→merge→extract pipeline
// short-circuits) and when traffic flows between queries (the full flat
// extraction runs).
func TestShardedWarmQueryZeroAlloc(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(s, 200000)

	query := func() {
		if len(s.HeavyHitters(0.05)) == 0 {
			t.Fatal("no heavy hitters")
		}
	}
	for i := 0; i < 16; i++ {
		query()
	}
	if allocs := testing.AllocsPerRun(100, query); allocs != 0 {
		t.Fatalf("idle warm query allocates %v times per run, want 0", allocs)
	}

	// With a fresh publication before every query the unchanged shortcuts
	// cannot fire, so this measures the full collect + merge + extract +
	// convert pipeline. The publication itself allocates (each changed node
	// is freshly copied so published epochs stay immutable) — measure the
	// producer side alone and the producer+query side and require the query
	// to add nothing. The updated key is one the warm text cache has seen.
	w := s.Worker(0)
	produce := func() {
		w.Update(addr4(10, 1, 1, 1), addr4(20, 2, 2, 2))
		w.Sync()
	}
	busy := func() {
		produce()
		query()
	}
	for i := 0; i < 16; i++ {
		busy()
	}
	pubOnly := testing.AllocsPerRun(100, produce)
	if pubOnly > 8 {
		t.Fatalf("one-packet publication allocates %v times, want a small constant", pubOnly)
	}
	if allocs := testing.AllocsPerRun(100, busy); allocs != pubOnly {
		t.Fatalf("busy warm query allocates %v times per run beyond the %v publication allocs, want 0",
			allocs-pubOnly, pubOnly)
	}
}

// TestSnapshotWarmQueryZeroAlloc: repeated queries on a standalone snapshot
// reuse all extraction state; after the first query at each θ, later ones
// allocate nothing.
func TestSnapshotWarmQueryZeroAlloc(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(s, 150000)
	snap := s.Snapshot()
	query := func() {
		if len(snap.HeavyHitters(0.05)) == 0 || len(snap.HeavyHitters(0.1)) == 0 {
			t.Fatal("no heavy hitters")
		}
	}
	for i := 0; i < 8; i++ {
		query()
	}
	if allocs := testing.AllocsPerRun(100, query); allocs != 0 {
		t.Fatalf("warm snapshot query allocates %v times per run, want 0", allocs)
	}
}

// TestShardedQueryRepeatStable: re-querying an idle Sharded (the shortcut
// path) and a θ-alternating query sequence both reproduce the full
// extraction's answer exactly.
func TestShardedQueryRepeatStable(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(s, 100000)
	first := slices.Clone(s.HeavyHitters(0.1))
	snapEqualHH(t, "repeat query (shortcut)", first, s.HeavyHitters(0.1))
	if len(s.HeavyHitters(0.3)) > len(first) {
		t.Fatal("higher θ returned more results")
	}
	// Back to the original θ after the buffer was reused for another query.
	snapEqualHH(t, "θ round-trip", first, s.HeavyHitters(0.1))
}
