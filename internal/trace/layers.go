package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rhhh/internal/hierarchy"
)

// Link types (pcap "network" field) supported by the decoder.
const (
	LinkEthernet = 1
	LinkRawIP    = 101
)

// EtherTypes the decoder understands.
const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86dd
	etherTypeVLAN = 0x8100
	etherTypeQinQ = 0x88a8
)

// Decode errors. Truncated or non-IP frames are reported, not panicked on:
// real captures contain ARP, LLDP and snap-length-truncated frames, and a
// replay loop should be able to skip them.
var (
	ErrTruncated   = errors.New("trace: truncated packet")
	ErrNotIP       = errors.New("trace: not an IP packet")
	ErrUnknownLink = errors.New("trace: unknown link type")
)

// DecodeFrame parses a link-layer frame into a Packet. Transport ports are
// filled for TCP/UDP when the bytes are present; a frame cut short by the
// capture snap length still decodes if the IP header is complete.
func DecodeFrame(linkType int, b []byte, tsNanos int64, origLen int) (Packet, error) {
	switch linkType {
	case LinkEthernet:
		return decodeEthernet(b, tsNanos, origLen)
	case LinkRawIP:
		return decodeIP(b, tsNanos, origLen)
	default:
		return Packet{}, fmt.Errorf("%w: %d", ErrUnknownLink, linkType)
	}
}

func decodeEthernet(b []byte, tsNanos int64, origLen int) (Packet, error) {
	if len(b) < 14 {
		return Packet{}, ErrTruncated
	}
	etherType := binary.BigEndian.Uint16(b[12:14])
	payload := b[14:]
	// Unwrap up to two VLAN tags (802.1Q / QinQ).
	for i := 0; i < 2 && (etherType == etherTypeVLAN || etherType == etherTypeQinQ); i++ {
		if len(payload) < 4 {
			return Packet{}, ErrTruncated
		}
		etherType = binary.BigEndian.Uint16(payload[2:4])
		payload = payload[4:]
	}
	switch etherType {
	case etherTypeIPv4, etherTypeIPv6:
		return decodeIP(payload, tsNanos, origLen)
	default:
		return Packet{}, fmt.Errorf("%w: ethertype %#04x", ErrNotIP, etherType)
	}
}

func decodeIP(b []byte, tsNanos int64, origLen int) (Packet, error) {
	if len(b) < 1 {
		return Packet{}, ErrTruncated
	}
	switch b[0] >> 4 {
	case 4:
		return decodeIPv4(b, tsNanos, origLen)
	case 6:
		return decodeIPv6(b, tsNanos, origLen)
	default:
		return Packet{}, fmt.Errorf("%w: version %d", ErrNotIP, b[0]>>4)
	}
}

func decodeIPv4(b []byte, tsNanos int64, origLen int) (Packet, error) {
	if len(b) < 20 {
		return Packet{}, ErrTruncated
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return Packet{}, ErrTruncated
	}
	p := Packet{
		TsNanos: tsNanos,
		SrcIP:   hierarchy.AddrFromIPv4(binary.BigEndian.Uint32(b[12:16])),
		DstIP:   hierarchy.AddrFromIPv4(binary.BigEndian.Uint32(b[16:20])),
		Proto:   b[9],
		Length:  origLen,
	}
	fillPorts(&p, b[ihl:])
	return p, nil
}

func decodeIPv6(b []byte, tsNanos int64, origLen int) (Packet, error) {
	if len(b) < 40 {
		return Packet{}, ErrTruncated
	}
	var src, dst [16]byte
	copy(src[:], b[8:24])
	copy(dst[:], b[24:40])
	p := Packet{
		TsNanos: tsNanos,
		SrcIP:   hierarchy.AddrFrom16(src),
		DstIP:   hierarchy.AddrFrom16(dst),
		V6:      true,
		Proto:   b[6], // next header; extension headers are not chased
		Length:  origLen,
	}
	fillPorts(&p, b[40:])
	return p, nil
}

// fillPorts extracts transport ports when the first transport bytes are
// present; silently leaves zeros otherwise (snap-length truncation).
func fillPorts(p *Packet, transport []byte) {
	switch p.Proto {
	case ProtoTCP, ProtoUDP:
		if len(transport) >= 4 {
			p.SrcPort = binary.BigEndian.Uint16(transport[0:2])
			p.DstPort = binary.BigEndian.Uint16(transport[2:4])
		}
	}
}

// EncodeFrame serializes a Packet back into an Ethernet frame with a
// minimal, checksum-less IP and transport header — sufficient for the pcap
// writer, the traffic generator and decode round-trip tests. The payload is
// zero-padded to the packet's Length when Length exceeds the header sizes.
func EncodeFrame(p Packet) []byte {
	var ip []byte
	transport := encodeTransport(p)
	if p.V6 {
		ip = make([]byte, 40+len(transport))
		ip[0] = 6 << 4
		binary.BigEndian.PutUint16(ip[4:6], uint16(len(transport)))
		ip[6] = p.Proto
		ip[7] = 64 // hop limit
		src, dst := p.SrcIP.Bytes16(), p.DstIP.Bytes16()
		copy(ip[8:24], src[:])
		copy(ip[24:40], dst[:])
		copy(ip[40:], transport)
	} else {
		ip = make([]byte, 20+len(transport))
		ip[0] = 4<<4 | 5 // version 4, IHL 5
		binary.BigEndian.PutUint16(ip[2:4], uint16(20+len(transport)))
		ip[8] = 64 // TTL
		ip[9] = p.Proto
		binary.BigEndian.PutUint32(ip[12:16], p.SrcIP.IPv4())
		binary.BigEndian.PutUint32(ip[16:20], p.DstIP.IPv4())
		copy(ip[20:], transport)
	}
	frame := make([]byte, 14+len(ip))
	// Locally administered dummy MACs.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 1})
	if p.V6 {
		binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv6)
	} else {
		binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)
	}
	copy(frame[14:], ip)
	return frame
}

func encodeTransport(p Packet) []byte {
	switch p.Proto {
	case ProtoTCP:
		b := make([]byte, 20)
		binary.BigEndian.PutUint16(b[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(b[2:4], p.DstPort)
		b[12] = 5 << 4 // data offset
		return b
	case ProtoUDP:
		b := make([]byte, 8)
		binary.BigEndian.PutUint16(b[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(b[2:4], p.DstPort)
		binary.BigEndian.PutUint16(b[4:6], 8)
		return b
	case ProtoICMP, ProtoICMPv6:
		return make([]byte, 8)
	default:
		return nil
	}
}
