package trace

import "rhhh/internal/fastrand"

// newTestRand gives tests access to a seeded source without importing
// fastrand in every test file.
func newTestRand(seed uint64) *fastrand.Source { return fastrand.New(seed) }
