package trace

import (
	"bytes"
	"io"
	"testing"

	"rhhh/internal/hierarchy"
)

// FuzzDecodeFrame throws arbitrary bytes at the link-layer decoder: it must
// never panic and never return a packet with inconsistent fields.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: valid IPv4/TCP, IPv6/UDP, VLAN-tagged, and truncations.
	p4 := Packet{SrcIP: hierarchy.AddrFromIPv4(0x0a000001), DstIP: hierarchy.AddrFromIPv4(0xc0a80001), Proto: ProtoTCP, SrcPort: 80, DstPort: 443, Length: 64, TsNanos: 1}
	f.Add(EncodeFrame(p4))
	p6 := Packet{V6: true, Proto: ProtoUDP, SrcPort: 53, DstPort: 53, Length: 80, TsNanos: 1}
	f.Add(EncodeFrame(p6))
	f.Add(EncodeFrame(p4)[:20])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		pkt, err := DecodeFrame(LinkEthernet, b, 1, len(b))
		if err != nil {
			return
		}
		if pkt.Proto == ProtoTCP || pkt.Proto == ProtoUDP {
			return // ports may or may not be present; nothing to check
		}
		if pkt.SrcPort != 0 || pkt.DstPort != 0 {
			t.Fatalf("non-transport packet has ports: %+v", pkt)
		}
	})
}

// FuzzPcapReader feeds arbitrary bytes to the pcap reader: it must never
// panic, never allocate absurd buffers, and always terminate.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf, LinkEthernet)
	gen := NewSynthetic(Config{Seed: 1})
	for i := 0; i < 3; i++ {
		p, _ := gen.Next()
		_ = w.WritePacket(p)
	}
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewPcapReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, _, _, err := r.ReadRaw(); err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("nil error with failure")
				}
				return
			}
		}
	})
}
