package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"rhhh/internal/hierarchy"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func TestEncodeDecodeRoundTripIPv4(t *testing.T) {
	p := Packet{
		TsNanos: 123456789,
		SrcIP:   hierarchy.AddrFromIPv4(ip4(10, 1, 2, 3)),
		DstIP:   hierarchy.AddrFromIPv4(ip4(192, 168, 0, 1)),
		SrcPort: 51234, DstPort: 443,
		Proto:  ProtoTCP,
		Length: 64,
	}
	frame := EncodeFrame(p)
	got, err := DecodeFrame(LinkEthernet, frame, p.TsNanos, p.Length)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestEncodeDecodeRoundTripIPv6(t *testing.T) {
	p := Packet{
		TsNanos: 42,
		SrcIP:   hierarchy.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3}),
		DstIP:   hierarchy.AddrFrom16([16]byte{0xfd, 0, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2}),
		V6:      true,
		SrcPort: 1024, DstPort: 53,
		Proto:  ProtoUDP,
		Length: 90,
	}
	frame := EncodeFrame(p)
	got, err := DecodeFrame(LinkEthernet, frame, p.TsNanos, p.Length)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, tcp bool, v6 bool, hi1, lo1, hi2, lo2 uint64) bool {
		p := Packet{TsNanos: 1, Length: 64}
		if v6 {
			p.V6 = true
			p.SrcIP = hierarchy.Addr{Hi: hi1, Lo: lo1}
			p.DstIP = hierarchy.Addr{Hi: hi2, Lo: lo2}
		} else {
			p.SrcIP = hierarchy.AddrFromIPv4(src)
			p.DstIP = hierarchy.AddrFromIPv4(dst)
		}
		if tcp {
			p.Proto = ProtoTCP
		} else {
			p.Proto = ProtoUDP
		}
		p.SrcPort, p.DstPort = sp, dp
		got, err := DecodeFrame(LinkEthernet, EncodeFrame(p), 1, 64)
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVLAN(t *testing.T) {
	p := Packet{
		SrcIP: hierarchy.AddrFromIPv4(ip4(1, 2, 3, 4)),
		DstIP: hierarchy.AddrFromIPv4(ip4(5, 6, 7, 8)),
		Proto: ProtoUDP, SrcPort: 1, DstPort: 2, Length: 64, TsNanos: 7,
	}
	frame := EncodeFrame(p)
	// Splice in an 802.1Q tag.
	tagged := make([]byte, 0, len(frame)+4)
	tagged = append(tagged, frame[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x64) // TPID + VID 100
	tagged = append(tagged, frame[12:]...)
	got, err := DecodeFrame(LinkEthernet, tagged, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("VLAN decode mismatch: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 14),                     // ethertype 0 → not IP
		append(make([]byte, 12), 0x08, 0x06), // ARP
	}
	for i, b := range cases {
		if _, err := DecodeFrame(LinkEthernet, b, 0, 0); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := DecodeFrame(999, make([]byte, 64), 0, 0); err == nil {
		t.Error("unknown link type should error")
	}
}

func TestDecodeTruncatedTransportStillYieldsAddresses(t *testing.T) {
	p := Packet{
		SrcIP: hierarchy.AddrFromIPv4(ip4(9, 9, 9, 9)),
		DstIP: hierarchy.AddrFromIPv4(ip4(8, 8, 8, 8)),
		Proto: ProtoTCP, SrcPort: 80, DstPort: 81, Length: 1500, TsNanos: 1,
	}
	frame := EncodeFrame(p)
	cut := frame[:14+20] // snap right after the IPv4 header
	got, err := DecodeFrame(LinkEthernet, cut, 1, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != p.SrcIP || got.DstIP != p.DstIP || got.Proto != ProtoTCP {
		t.Fatalf("truncated decode lost addresses: %+v", got)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Fatal("ports should be zero when truncated away")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewSynthetic(Config{Seed: 1})
	var want []Packet
	for i := 0; i < 500; i++ {
		p, _ := gen.Next()
		want = append(want, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkEthernet {
		t.Fatalf("link type %d", r.LinkType())
	}
	for i, wp := range want {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		// Length is normalized up to the encoded frame size for tiny
		// packets; compare the measurement-relevant fields.
		if got.SrcIP != wp.SrcIP || got.DstIP != wp.DstIP ||
			got.SrcPort != wp.SrcPort || got.DstPort != wp.DstPort ||
			got.Proto != wp.Proto || got.TsNanos != wp.TsNanos {
			t.Fatalf("packet %d mismatch:\n got %+v\nwant %+v", i, got, wp)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("expected end of stream")
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := NewSynthetic(Config{Seed: 7})
	b := NewSynthetic(Config{Seed: 7})
	for i := 0; i < 1000; i++ {
		pa, _ := a.Next()
		pb, _ := b.Next()
		if pa != pb {
			t.Fatalf("packet %d differs", i)
		}
	}
	c := NewSynthetic(Config{Seed: 8})
	same := 0
	a = NewSynthetic(Config{Seed: 7})
	for i := 0; i < 1000; i++ {
		pa, _ := a.Next()
		pc, _ := c.Next()
		if pa.SrcIP == pc.SrcIP && pa.DstIP == pc.DstIP {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical address pairs", same)
	}
}

func TestSyntheticSkewAcrossLevels(t *testing.T) {
	// The hierarchical model must concentrate traffic at every level:
	// the busiest /8 should carry far more than 1/256 of packets, and the
	// busiest /16 more than the busiest /8 would under uniformity.
	gen := NewSynthetic(Config{Seed: 3})
	const n = 50000
	top8 := map[uint32]int{}
	top16 := map[uint32]int{}
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		s := p.Key1()
		top8[s>>24]++
		top16[s>>16]++
	}
	max8, max16 := 0, 0
	for _, c := range top8 {
		if c > max8 {
			max8 = c
		}
	}
	for _, c := range top16 {
		if c > max16 {
			max16 = c
		}
	}
	if max8 < n/20 {
		t.Errorf("busiest /8 carries %d/%d — model not skewed at level 1", max8, n)
	}
	if max16 < n/50 {
		t.Errorf("busiest /16 carries %d/%d — model not skewed at level 2", max16, n)
	}
}

func TestSyntheticFlowsRepeat(t *testing.T) {
	// Zipf flow sizes mean the top flow must recur many times.
	gen := NewSynthetic(Config{Seed: 4})
	counts := map[FiveTuple]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		counts[p.Flow()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Errorf("top flow seen %d times in %d packets — flow model broken", max, n)
	}
}

func TestPlantedAggregate(t *testing.T) {
	victim := hierarchy.AddrFromIPv4(ip4(198, 51, 100, 0))
	gen := NewSynthetic(Config{
		Seed: 5,
		Aggregates: []Aggregate{
			{Fraction: 0.25, Dst: victim, DstBits: 24, Spread: 4096},
		},
	})
	const n = 40000
	hit := 0
	distinctSrc := map[uint32]bool{}
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		if p.DstIP.Mask(24) == victim.Mask(24) {
			hit++
			distinctSrc[p.Key1()] = true
		}
	}
	if hit < n/5 || hit > 2*n/5 {
		t.Errorf("aggregate hit %d/%d packets, want ≈25%%", hit, n)
	}
	if len(distinctSrc) < 1000 {
		t.Errorf("DDoS aggregate has only %d distinct sources", len(distinctSrc))
	}
}

func TestAggregateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fractions > 1 accepted")
		}
	}()
	NewSynthetic(Config{Aggregates: []Aggregate{{Fraction: 0.7}, {Fraction: 0.6}}})
}

func TestProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		cfg := Profile(name)
		gen := NewSynthetic(cfg)
		p, ok := gen.Next()
		if !ok || (p.SrcIP == hierarchy.Addr{}) {
			t.Errorf("profile %s produced empty packet", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown profile accepted")
		}
	}()
	Profile("nonexistent")
}

func TestV6Generation(t *testing.T) {
	gen := NewSynthetic(Config{Seed: 6, V6: true})
	seen := map[hierarchy.Addr]bool{}
	for i := 0; i < 1000; i++ {
		p, _ := gen.Next()
		if !p.V6 {
			t.Fatal("expected IPv6 packets")
		}
		seen[p.SrcIP] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct v6 sources", len(seen))
	}
}

func TestLimitSource(t *testing.T) {
	gen := NewSynthetic(Config{Seed: 1})
	lim := &Limit{Src: gen, N: 10}
	count := 0
	for {
		_, ok := lim.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("limit yielded %d packets", count)
	}
}

func TestSliceSource(t *testing.T) {
	s := &Slice{Packets: []Packet{{TsNanos: 1}, {TsNanos: 2}}}
	p1, ok1 := s.Next()
	p2, ok2 := s.Next()
	_, ok3 := s.Next()
	if !ok1 || !ok2 || ok3 || p1.TsNanos != 1 || p2.TsNanos != 2 {
		t.Fatal("slice source misbehaved")
	}
	s.Reset()
	if p, ok := s.Next(); !ok || p.TsNanos != 1 {
		t.Fatal("reset failed")
	}
}

func TestZipfSamplerRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		z := newZipfSampler(n, 1.0)
		r := newTestRand(seed)
		for i := 0; i < 50; i++ {
			v := z.sample(r)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	z := newZipfSampler(1000, 1.0)
	r := newTestRand(9)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.sample(r)]++
	}
	if counts[0] < counts[500]*5 {
		t.Errorf("rank 0 (%d) not much heavier than rank 500 (%d)", counts[0], counts[500])
	}
}

func BenchmarkSyntheticNext(b *testing.B) {
	gen := NewSynthetic(Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}
