package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Classic libpcap magic numbers (microsecond and nanosecond timestamp
// variants), in file byte order.
const (
	pcapMagicUsec = 0xa1b2c3d4
	pcapMagicNsec = 0xa1b23c4d
)

// ErrBadMagic is returned when the stream is not a classic pcap file.
var ErrBadMagic = errors.New("trace: not a pcap file (bad magic)")

// PcapReader reads classic (non-ng) pcap files written in either byte order
// with microsecond or nanosecond timestamps — the format CAIDA anonymized
// traces are distributed in, so real paper inputs replay unmodified.
type PcapReader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType int
	snapLen  uint32
	hdr      [16]byte
	buf      []byte
}

// NewPcapReader parses the global header and returns a reader.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	le := binary.LittleEndian.Uint32(gh[0:4])
	be := binary.BigEndian.Uint32(gh[0:4])
	p := &PcapReader{r: br}
	switch {
	case le == pcapMagicUsec:
		p.order = binary.LittleEndian
	case le == pcapMagicNsec:
		p.order, p.nanos = binary.LittleEndian, true
	case be == pcapMagicUsec:
		p.order = binary.BigEndian
	case be == pcapMagicNsec:
		p.order, p.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	p.snapLen = p.order.Uint32(gh[16:20])
	p.linkType = int(p.order.Uint32(gh[20:24]))
	return p, nil
}

// LinkType returns the capture's link type (LinkEthernet, LinkRawIP, ...).
func (p *PcapReader) LinkType() int { return p.linkType }

// SnapLen returns the capture snap length.
func (p *PcapReader) SnapLen() uint32 { return p.snapLen }

// ReadRaw returns the next record's raw bytes (valid until the next call),
// its timestamp in nanoseconds and original wire length. io.EOF signals a
// clean end of file.
func (p *PcapReader) ReadRaw() (data []byte, tsNanos int64, origLen int, err error) {
	if _, err := io.ReadFull(p.r, p.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, 0, io.EOF
		}
		return nil, 0, 0, fmt.Errorf("trace: reading record header: %w", err)
	}
	sec := p.order.Uint32(p.hdr[0:4])
	sub := p.order.Uint32(p.hdr[4:8])
	incl := p.order.Uint32(p.hdr[8:12])
	orig := p.order.Uint32(p.hdr[12:16])
	if incl > 0x0400_0000 { // 64 MiB sanity cap: corrupt length field
		return nil, 0, 0, fmt.Errorf("trace: implausible record length %d", incl)
	}
	if cap(p.buf) < int(incl) {
		p.buf = make([]byte, incl)
	}
	p.buf = p.buf[:incl]
	if _, err := io.ReadFull(p.r, p.buf); err != nil {
		return nil, 0, 0, fmt.Errorf("trace: reading record body: %w", err)
	}
	ts := int64(sec) * 1e9
	if p.nanos {
		ts += int64(sub)
	} else {
		ts += int64(sub) * 1e3
	}
	return p.buf, ts, int(orig), nil
}

// Next implements Source: it decodes records until an IP packet is found,
// skipping non-IP frames, and returns ok=false at end of file or on a read
// error.
func (p *PcapReader) Next() (Packet, bool) {
	for {
		raw, ts, orig, err := p.ReadRaw()
		if err != nil {
			return Packet{}, false
		}
		pkt, err := DecodeFrame(p.linkType, raw, ts, orig)
		if err != nil {
			continue // ARP, truncated, unknown ethertype — skip
		}
		return pkt, true
	}
}

// PcapWriter writes classic little-endian pcap files with nanosecond
// timestamps.
type PcapWriter struct {
	w        *bufio.Writer
	linkType int
	snapLen  uint32
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer, linkType int) (*PcapWriter, error) {
	pw := &PcapWriter{w: bufio.NewWriterSize(w, 1<<16), linkType: linkType, snapLen: 65535}
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicNsec)
	binary.LittleEndian.PutUint16(gh[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], pw.snapLen)
	binary.LittleEndian.PutUint32(gh[20:24], uint32(linkType))
	if _, err := pw.w.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("trace: writing pcap header: %w", err)
	}
	return pw, nil
}

// WriteRaw appends one record.
func (p *PcapWriter) WriteRaw(data []byte, tsNanos int64, origLen int) error {
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[0:4], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(rh[4:8], uint32(tsNanos%1e9))
	binary.LittleEndian.PutUint32(rh[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rh[12:16], uint32(origLen))
	if _, err := p.w.Write(rh[:]); err != nil {
		return err
	}
	_, err := p.w.Write(data)
	return err
}

// WritePacket encodes and appends one packet.
func (p *PcapWriter) WritePacket(pkt Packet) error {
	frame := EncodeFrame(pkt)
	origLen := pkt.Length
	if origLen < len(frame) {
		origLen = len(frame)
	}
	return p.WriteRaw(frame, pkt.TsNanos, origLen)
}

// Flush writes buffered data to the underlying writer.
func (p *PcapWriter) Flush() error { return p.w.Flush() }
