package trace

import (
	"math"
	"sort"

	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// Config describes a synthetic workload. The model stands in for the paper's
// CAIDA backbone traces (DESIGN.md §4): addresses come from a hierarchical
// Pareto prefix tree, so traffic mass concentrates at every aggregation
// level the way popular ASes and subnets concentrate real backbone traffic;
// packets belong to Zipf-sized flows; and optional planted aggregates inject
// known hierarchical heavy hitters (e.g. a DDoS victim prefix).
type Config struct {
	// Seed makes the whole trace reproducible.
	Seed uint64
	// Flows is the flow universe size (default 1<<20).
	Flows int
	// FlowAlpha is the Zipf exponent of flow sizes (default 1.0).
	FlowAlpha float64
	// SrcAlpha and DstAlpha are the per-level Pareto exponents of the
	// source and destination prefix trees (default 0.8 and 0.9); larger
	// means more concentration in few subtrees.
	SrcAlpha, DstAlpha float64
	// V6 generates IPv6 addresses (16 hierarchical byte levels).
	V6 bool
	// Aggregates plant known hierarchical heavy hitters.
	Aggregates []Aggregate
	// GapNanos is the synthetic inter-arrival time (default 67ns ≈ the
	// 14.88 Mpps line rate of the paper's OVS testbed).
	GapNanos int64
}

// Aggregate plants a traffic aggregate: Fraction of all packets carry a
// source within (Src, SrcBits) and a destination within (Dst, DstBits);
// zero bits leave that dimension fully random. Spread controls how many
// distinct flows the aggregate contains (1 = a single heavy flow; large =
// a DDoS-style aggregate of many small flows).
type Aggregate struct {
	Fraction float64
	Src      hierarchy.Addr
	SrcBits  int
	Dst      hierarchy.Addr
	DstBits  int
	Spread   int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Flows == 0 {
		out.Flows = 1 << 20
	}
	if out.FlowAlpha == 0 {
		out.FlowAlpha = 1.0
	}
	if out.SrcAlpha == 0 {
		out.SrcAlpha = 0.8
	}
	if out.DstAlpha == 0 {
		out.DstAlpha = 0.9
	}
	if out.GapNanos == 0 {
		out.GapNanos = 67
	}
	return out
}

// Profile returns the named workload profile. The four profiles stand in
// for the paper's four CAIDA traces (Chicago 2015/2016, San Jose 2013/2014):
// same model, different seeds and skews, so experiments show the same
// qualitative behaviour across "traces" as the paper's Figures 2–5 do.
func Profile(name string) Config {
	switch name {
	case "chicago15":
		return Config{Seed: 0xC51C, SrcAlpha: 0.85, DstAlpha: 0.95, FlowAlpha: 1.05}
	case "chicago16":
		return Config{Seed: 0xC51D, SrcAlpha: 0.80, DstAlpha: 0.90, FlowAlpha: 1.00}
	case "sanjose13":
		return Config{Seed: 0x5A13, SrcAlpha: 0.75, DstAlpha: 1.00, FlowAlpha: 0.95}
	case "sanjose14":
		return Config{Seed: 0x5A14, SrcAlpha: 0.90, DstAlpha: 0.85, FlowAlpha: 1.10}
	default:
		panic("trace: unknown profile " + name)
	}
}

// ProfileNames lists the built-in CAIDA stand-in profiles.
func ProfileNames() []string {
	return []string{"chicago15", "chicago16", "sanjose13", "sanjose14"}
}

// Synthetic is a seeded, infinite packet source implementing Source.
type Synthetic struct {
	cfg      Config
	rng      *fastrand.Source
	srcModel addrModel
	dstModel addrModel
	flowZipf zipfSampler
	aggCum   []float64
	ts       int64
}

// NewSynthetic builds a generator from cfg.
func NewSynthetic(cfg Config) *Synthetic {
	c := cfg.withDefaults()
	levels := 4
	if c.V6 {
		levels = 16
	}
	s := &Synthetic{
		cfg:      c,
		rng:      fastrand.New(c.Seed),
		srcModel: newAddrModel(c.Seed^0x517c, c.SrcAlpha, levels),
		dstModel: newAddrModel(c.Seed^0xd57a, c.DstAlpha, levels),
		flowZipf: newZipfSampler(c.Flows, c.FlowAlpha),
	}
	total := 0.0
	for _, a := range c.Aggregates {
		if a.Fraction < 0 {
			panic("trace: negative aggregate fraction")
		}
		total += a.Fraction
		s.aggCum = append(s.aggCum, total)
	}
	if total > 1 {
		panic("trace: aggregate fractions exceed 1")
	}
	return s
}

// Next returns the next synthetic packet; ok is always true (wrap with
// Limit for finite streams).
func (s *Synthetic) Next() (Packet, bool) {
	s.ts += s.cfg.GapNanos
	u := s.rng.Float64()
	for i, cum := range s.aggCum {
		if u < cum {
			return s.aggregatePacket(i), true
		}
	}
	return s.backgroundPacket(), true
}

// backgroundPacket draws a Zipf flow id and derives the flow's attributes
// deterministically from it, so recurring flow ids repeat their 5-tuple.
func (s *Synthetic) backgroundPacket() Packet {
	flowID := s.flowZipf.sample(s.rng)
	fr := fastrand.New(mix64(s.cfg.Seed ^ uint64(flowID)*0x9e3779b97f4a7c15))
	p := Packet{
		TsNanos: s.ts,
		SrcIP:   s.srcModel.sample(fr),
		DstIP:   s.dstModel.sample(fr),
		V6:      s.cfg.V6,
	}
	fillFlowAttrs(&p, fr)
	return p
}

// aggregatePacket draws from planted aggregate i.
func (s *Synthetic) aggregatePacket(i int) Packet {
	a := s.cfg.Aggregates[i]
	spread := a.Spread
	if spread <= 0 {
		spread = 1
	}
	sub := s.rng.Uint64n(uint64(spread))
	fr := fastrand.New(mix64(s.cfg.Seed ^ 0xa99a ^ uint64(i)<<32 ^ sub))
	src := s.srcModel.sample(fr)
	dst := s.dstModel.sample(fr)
	p := Packet{
		TsNanos: s.ts,
		SrcIP:   overlayPrefix(a.Src, a.SrcBits, src),
		DstIP:   overlayPrefix(a.Dst, a.DstBits, dst),
		V6:      s.cfg.V6,
	}
	fillFlowAttrs(&p, fr)
	return p
}

// overlayPrefix keeps the top bits of prefix and the remaining bits of fill.
func overlayPrefix(prefix hierarchy.Addr, bits int, fill hierarchy.Addr) hierarchy.Addr {
	if bits <= 0 {
		return fill
	}
	if bits >= 128 {
		return prefix
	}
	hi := prefix.Mask(bits)
	masked := maskOut(fill, bits)
	return hierarchy.Addr{Hi: hi.Hi | masked.Hi, Lo: hi.Lo | masked.Lo}
}

// maskOut zeroes the top bits of a.
func maskOut(a hierarchy.Addr, bits int) hierarchy.Addr {
	m := hierarchy.Addr{Hi: ^uint64(0), Lo: ^uint64(0)}.Mask(bits)
	return hierarchy.Addr{Hi: a.Hi &^ m.Hi, Lo: a.Lo &^ m.Lo}
}

// fillFlowAttrs derives protocol, ports and length from the flow's RNG,
// with a realistic mix: mostly TCP, popular destination ports, bimodal
// packet sizes.
func fillFlowAttrs(p *Packet, fr *fastrand.Source) {
	switch fr.Uint64n(100) {
	case 0, 1: // 2% ICMP
		if p.V6 {
			p.Proto = ProtoICMPv6
		} else {
			p.Proto = ProtoICMP
		}
	case 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12: // 11% UDP
		p.Proto = ProtoUDP
	default:
		p.Proto = ProtoTCP
	}
	if p.Proto == ProtoTCP || p.Proto == ProtoUDP {
		wellKnown := [...]uint16{80, 443, 53, 123, 25, 22, 8080, 3389}
		p.DstPort = wellKnown[fr.Uint64n(uint64(len(wellKnown)))]
		p.SrcPort = uint16(32768 + fr.Uint64n(28232))
	}
	switch fr.Uint64n(10) {
	case 0, 1, 2, 3: // 40% minimum-size
		p.Length = 64
	case 4, 5, 6: // 30% full-size
		p.Length = 1500
	default: // 30% mid
		p.Length = 64 + int(fr.Uint64n(1400))
	}
}

// addrModel is a lazily evaluated hierarchical Pareto prefix tree: at each
// byte level the child octet is drawn from a Zipf-like rank distribution,
// and ranks map to octets through a per-node bijection, so different
// subtrees concentrate on different children. The same (seed, prefix) always
// yields the same distribution — no tree is materialized.
type addrModel struct {
	seed   uint64
	levels int
	cum    []float64 // shared 256-entry cumulative rank distribution
}

func newAddrModel(seed uint64, alpha float64, levels int) addrModel {
	cum := make([]float64, 256)
	total := 0.0
	for i := 0; i < 256; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return addrModel{seed: seed, levels: levels, cum: cum}
}

// sample draws one address using randomness from r.
func (m addrModel) sample(r *fastrand.Source) hierarchy.Addr {
	var a hierarchy.Addr
	var acc uint64 = 1 // prefix accumulator; 1 guards leading zero bytes
	for lvl := 0; lvl < m.levels; lvl++ {
		u := r.Float64()
		rank := sort.SearchFloat64s(m.cum, u)
		if rank > 255 {
			rank = 255
		}
		nodeH := mix64(m.seed ^ acc)
		child := permute8(uint8(rank), nodeH)
		acc = acc<<8 | uint64(child) | 1<<63 // keep levels distinguishable
		a = shiftInByte(a, child)
	}
	if m.levels == 4 {
		// IPv4: place the 4 sampled bytes in the top 32 bits.
		a = hierarchy.Addr{Hi: a.Lo << 32}
	}
	return a
}

// shiftInByte appends one byte at the low end of a 128-bit accumulator.
func shiftInByte(a hierarchy.Addr, b uint8) hierarchy.Addr {
	return hierarchy.Addr{
		Hi: a.Hi<<8 | a.Lo>>56,
		Lo: a.Lo<<8 | uint64(b),
	}
}

// permute8 maps a rank to an octet through a bijection derived from h
// (odd multiplier + xor), so each tree node prefers different children.
func permute8(rank uint8, h uint64) uint8 {
	return uint8(rank*uint8(h|1) + uint8(h>>8))
}

// zipfSampler draws ranks in [0, n) with approximately Zipf(alpha)
// probabilities using the continuous power-law inverse CDF — O(1) per draw,
// accurate enough for workload generation.
type zipfSampler struct {
	n     float64
	alpha float64
}

func newZipfSampler(n int, alpha float64) zipfSampler {
	if n < 1 {
		panic("trace: zipf universe must be positive")
	}
	return zipfSampler{n: float64(n), alpha: alpha}
}

func (z zipfSampler) sample(r *fastrand.Source) int {
	u := r.Float64()
	var x float64
	if math.Abs(z.alpha-1) < 1e-9 {
		// CDF ≈ ln(x)/ln(n): inverse is n^u.
		x = math.Exp(u * math.Log(z.n))
	} else {
		// CDF ≈ (x^(1−α) − 1)/(n^(1−α) − 1).
		b := 1 - z.alpha
		x = math.Pow(u*(math.Pow(z.n, b)-1)+1, 1/b)
	}
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= int(z.n) {
		i = int(z.n) - 1
	}
	return i
}

// mix64 is the splitmix64 finalizer (shared with fastrand's stepping).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
