// Package trace provides the packet substrate for the reproduction: a packet
// model, a minimal layered decoder/encoder for Ethernet/VLAN/IPv4/IPv6/
// TCP/UDP/ICMP (enough to replay real captures), a classic-pcap reader and
// writer, and seeded synthetic workload generators that stand in for the
// paper's proprietary CAIDA backbone traces (see DESIGN.md §4 for the
// substitution argument).
package trace

import (
	"rhhh/internal/hierarchy"
)

// IP protocol numbers used by the decoder and generators.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// Packet is one observed packet, already parsed to the fields the
// measurement algorithms and the virtual switch need. Addresses are stored
// in the uniform 128-bit form (IPv4 occupies the top 32 bits, matching
// hierarchy.AddrFromIPv4).
type Packet struct {
	// TsNanos is the capture timestamp in nanoseconds since the epoch (or
	// trace start for synthetic traces).
	TsNanos int64
	// SrcIP and DstIP are the network-layer endpoints.
	SrcIP, DstIP hierarchy.Addr
	// V6 reports whether the packet was IPv6.
	V6 bool
	// SrcPort and DstPort are transport ports (0 for ICMP).
	SrcPort, DstPort uint16
	// Proto is the IP protocol number (ProtoTCP, ProtoUDP, ...).
	Proto uint8
	// Length is the original wire length in bytes.
	Length int
}

// Key1 returns the one-dimensional IPv4 key (source address).
func (p Packet) Key1() uint32 { return p.SrcIP.IPv4() }

// Key2 returns the two-dimensional IPv4 key (source, destination).
func (p Packet) Key2() uint64 {
	return hierarchy.Pack2D(p.SrcIP.IPv4(), p.DstIP.IPv4())
}

// Key1v6 returns the one-dimensional 128-bit key.
func (p Packet) Key1v6() hierarchy.Addr { return p.SrcIP }

// Key2v6 returns the two-dimensional 128-bit key.
func (p Packet) Key2v6() hierarchy.AddrPair {
	return hierarchy.AddrPair{Src: p.SrcIP, Dst: p.DstIP}
}

// FiveTuple identifies a transport flow; the virtual switch's exact-match
// cache is keyed on it.
type FiveTuple struct {
	Src, Dst         hierarchy.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Flow returns the packet's five-tuple.
func (p Packet) Flow() FiveTuple {
	return FiveTuple{
		Src: p.SrcIP, Dst: p.DstIP,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: p.Proto,
	}
}

// Source yields packets one at a time; ok is false when the source is
// exhausted. Implementations: Synthetic (seeded generator), PcapReader,
// Slice.
type Source interface {
	Next() (Packet, bool)
}

// Slice is an in-memory Source.
type Slice struct {
	Packets []Packet
	i       int
}

// Next returns the next packet in the slice.
func (s *Slice) Next() (Packet, bool) {
	if s.i >= len(s.Packets) {
		return Packet{}, false
	}
	p := s.Packets[s.i]
	s.i++
	return p, true
}

// Reset rewinds the slice source.
func (s *Slice) Reset() { s.i = 0 }

// Limit wraps a Source, yielding at most n packets.
type Limit struct {
	Src  Source
	N    uint64
	seen uint64
}

// Next returns the next packet until the limit is hit.
func (l *Limit) Next() (Packet, bool) {
	if l.seen >= l.N {
		return Packet{}, false
	}
	p, ok := l.Src.Next()
	if ok {
		l.seen++
	}
	return p, ok
}
