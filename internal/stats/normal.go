// Package stats implements the statistical machinery the paper relies on:
// standard-normal quantiles Z(α) for the sampling-error correction
// (Algorithm 1 line 13 and ψ of Theorem 6.17), approximate Poisson confidence
// limits (Schwertman–Martinez [40]), and two-sided Student-t confidence
// intervals used by the evaluation section ("we ran each data point 5 times
// and used two-sided Student's t-test to determine 95% confidence
// intervals").
//
// Everything is plain float64 math on top of the standard library; no
// external numerics packages are used.
package stats

import "math"

// NormalCDF returns Φ(x), the cumulative distribution function of the
// standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1): the z value such that a
// standard normal variable is below it with probability p. It uses Peter
// Acklam's rational approximation refined with one Halley step against
// math.Erfc, which is accurate to close to full double precision.
//
// NormalQuantile panics if p is outside (0, 1); the callers in this module
// always derive p from a δ in (0, 1).
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}

	// Coefficients for Acklam's approximation.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow = 0.02425

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step: e = Φ(x) − p, u = e·√(2π)·exp(x²/2).
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Z returns Z(1−δ) = Φ⁻¹(1−δ), the z value used throughout the paper's
// analysis (e.g. the 2·Z(1−δ)·√(N·V) conditioned-frequency correction).
// δ must be in (0, 1).
func Z(delta float64) float64 {
	return NormalQuantile(1 - delta)
}

// PoissonCI returns approximate (1−δ) two-sided confidence limits for the
// mean of a Poisson variable observed as x events, following the
// Wilson–Hilferty style approximation recommended by Schwertman and Martinez
// [40], which the paper cites for its Poisson confidence intervals
// (Lemma 6.2's normal approximation is the large-mean limit of this).
func PoissonCI(x float64, delta float64) (lo, hi float64) {
	if x < 0 {
		panic("stats: PoissonCI requires x >= 0")
	}
	z := NormalQuantile(1 - delta/2)
	if x == 0 {
		lo = 0
	} else {
		t := 1 - 1/(9*x) - z/(3*math.Sqrt(x))
		lo = x * t * t * t
		if lo < 0 {
			lo = 0
		}
	}
	x1 := x + 1
	t := 1 - 1/(9*x1) + z/(3*math.Sqrt(x1))
	hi = x1 * t * t * t
	return lo, hi
}
