package stats

import "math"

// regIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Lentz's method), the
// standard approach from Numerical Recipes. Accurate to ~1e-12 for the
// arguments used here (a, b ≥ 0.5).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student-t variable with df degrees of
// freedom (df > 0).
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		panic("stats: StudentTCDF requires df > 0")
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the t value such that P(T ≤ t) = p for a
// Student-t distribution with df degrees of freedom, via monotone bisection
// on StudentTCDF (robust, and quantiles are only computed once per
// experiment, never per packet).
func StudentTQuantile(p float64, df float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: StudentTQuantile requires 0 < p < 1")
	}
	if df <= 0 {
		panic("stats: StudentTQuantile requires df > 0")
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -StudentTQuantile(1-p, df)
	}
	// Bracket: start from the normal quantile and expand upward.
	lo, hi := 0.0, math.Max(2, 2*NormalQuantile(p))
	for StudentTCDF(hi, df) < p {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// MeanCI returns the sample mean of xs and the half-width of its two-sided
// (1−alpha) Student-t confidence interval, the procedure the paper's
// evaluation uses across its 5 runs per data point. len(xs) must be ≥ 2.
func MeanCI(xs []float64, alpha float64) (mean, halfWidth float64) {
	n := len(xs)
	if n < 2 {
		panic("stats: MeanCI requires at least two samples")
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	t := StudentTQuantile(1-alpha/2, float64(n-1))
	return w.Mean(), t * math.Sqrt(w.Variance()/float64(n))
}
