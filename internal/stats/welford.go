package stats

// Welford accumulates a running mean and variance using Welford's online
// algorithm, which is numerically stable for long runs of measurements.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 when fewer than two
// observations have been added).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}
