package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.99, 2.3263478740408408},
		{0.999, 3.090232306167813},
		{0.9999, 3.719016485455709},
		{0.025, -1.959963984540054},
		{0.001, -3.090232306167813},
		{0.1586552539314571, -1.0}, // Φ(-1)
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.998) + 0.001 // (0.001, 0.999)
		x := NormalQuantile(p)
		return almostEqual(NormalCDF(x), p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestZ(t *testing.T) {
	// Z(δ) = Φ⁻¹(1−δ); for δ=0.001 this is the paper's typical setting.
	if got := Z(0.001); !almostEqual(got, 3.090232306167813, 1e-8) {
		t.Errorf("Z(0.001) = %v", got)
	}
	if got := Z(0.5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Z(0.5) = %v, want 0", got)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		return almostEqual(NormalCDF(x)+NormalCDF(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonCICoversObservation(t *testing.T) {
	for _, x := range []float64{0, 1, 5, 10, 100, 1e6} {
		lo, hi := PoissonCI(x, 0.05)
		if lo > x || hi < x {
			t.Errorf("PoissonCI(%v) = [%v, %v] does not cover x", x, lo, hi)
		}
		if lo < 0 {
			t.Errorf("PoissonCI(%v) lower limit negative: %v", x, lo)
		}
	}
}

func TestPoissonCIZero(t *testing.T) {
	lo, hi := PoissonCI(0, 0.05)
	if lo != 0 {
		t.Errorf("lower limit for x=0 should be 0, got %v", lo)
	}
	// Exact upper limit for x=0 at 97.5% is -ln(0.025) ≈ 3.689; the
	// approximation should be within ~5%.
	if !almostEqual(hi, 3.689, 0.2) {
		t.Errorf("upper limit for x=0: got %v, want ≈3.689", hi)
	}
}

func TestPoissonCILargeMeanMatchesNormal(t *testing.T) {
	// For large x the Poisson CI approaches x ± z·√x (Lemma 6.2).
	x := 1e6
	lo, hi := PoissonCI(x, 0.05)
	z := NormalQuantile(0.975)
	wantLo, wantHi := x-z*math.Sqrt(x), x+z*math.Sqrt(x)
	if !almostEqual(lo, wantLo, 5) || !almostEqual(hi, wantHi, 5) {
		t.Errorf("large-mean CI [%v,%v], want ≈[%v,%v]", lo, hi, wantLo, wantHi)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75},                  // Cauchy: arctan(1)/π + 0.5
		{2.776445105198054, 4, 0.975}, // classic t-table value
		{-2.776445105198054, 4, 0.025},
		{1.6448536269514722, 1e7, 0.95}, // huge df ≈ normal
	}
	for _, c := range cases {
		got := StudentTCDF(c.t, c.df)
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Values from standard t tables.
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 4, 2.776445105198054}, // the paper's 5-run 95% CI multiplier
		{0.975, 1, 12.706204736432095},
		{0.95, 9, 1.8331129326536335},
		{0.5, 7, 0},
		{0.025, 4, -2.776445105198054},
	}
	for _, c := range cases {
		got := StudentTQuantile(c.p, c.df)
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("StudentTQuantile(%v, %v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	f := func(rawP float64, rawDF uint8) bool {
		p := math.Mod(math.Abs(rawP), 0.98) + 0.01
		df := float64(rawDF%30) + 1
		x := StudentTQuantile(p, df)
		return almostEqual(StudentTCDF(x, df), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample (unbiased) variance of this classic dataset is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Error("single observation: mean 3, variance 0 expected")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return almostEqual(w.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(w.Variance(), naiveVar, 1e-6*(1+naiveVar))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5}
	mean, hw := MeanCI(xs, 0.05)
	if !almostEqual(mean, 10, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	if hw <= 0 {
		t.Errorf("half width = %v, want > 0", hw)
	}
	// Hand-computed: s² = 0.625, t(0.975, 4) = 2.7764 → hw ≈ 0.98150.
	if !almostEqual(hw, 0.9815, 1e-3) {
		t.Errorf("half width = %v, want ≈0.9815", hw)
	}
}

func TestMeanCIPanicsOnShortInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeanCI with one sample did not panic")
		}
	}()
	MeanCI([]float64{1}, 0.05)
}
