package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Kind is the Prometheus metric type of a family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one exposed time series (or, for collectors, a producer of
// several series with dynamic labels).
type series struct {
	labels  string // rendered label set, `{a="b"}` or ""
	cell    *Cell
	fnU     func() uint64
	fnF     func() float64
	isFloat bool
	hist    *Histogram
	collect func(*Appender)
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []series
}

// Registry holds registered metric families and renders them in the
// Prometheus text exposition format. Registration happens at setup time;
// WritePrometheus may be called concurrently with publications (it reads
// only atomic cells and scrape closures over synchronized state). All
// methods are nil-safe no-ops so telemetry.Disabled can be threaded
// through every Instrument call.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	buf    []byte
	app    Appender // reused across collect calls: a fresh &Appender{}
	// would escape into the collector closure and cost one allocation
	// per collector series per scrape
}

// Disabled is the no-op registry: instrumenting with it wires nothing and
// leaves every hot path on its uninstrumented branch.
var Disabled *Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// famFor returns the family for name, creating it with help/kind on first
// registration and validating consistency afterwards.
func (r *Registry) famFor(name, help string, kind Kind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (r *Registry) add(name, labels, help string, kind Kind, s series) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.famFor(name, help, kind)
	for _, prev := range f.series {
		if prev.labels == labels && prev.collect == nil && s.collect == nil {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, labels))
		}
	}
	s.labels = labels
	f.series = append(f.series, s)
}

// Counter registers a published-cell counter series.
func (r *Registry) Counter(name, labels, help string, c *Cell) {
	r.add(name, labels, help, KindCounter, series{cell: c})
}

// CounterFunc registers a counter whose value is computed at scrape time.
// fn must be safe to call from any goroutine and must not allocate if the
// zero-alloc scrape property matters for this registry.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.add(name, labels, help, KindCounter, series{fnU: fn})
}

// Gauge registers a published-cell gauge series.
func (r *Registry) Gauge(name, labels, help string, c *Cell) {
	r.add(name, labels, help, KindGauge, series{cell: c})
}

// GaugeFunc registers a gauge computed lazily at scrape time from existing
// state. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.add(name, labels, help, KindGauge, series{fnF: fn, isFloat: true})
}

// Histogram registers a histogram series.
func (r *Registry) Histogram(name, labels, help string, h *Histogram) {
	r.add(name, labels, help, KindHistogram, series{hist: h})
}

// CollectCounter registers a scrape-time collector emitting counter
// samples with dynamic label sets (e.g. one series per vswitch sender).
func (r *Registry) CollectCounter(name, help string, fn func(*Appender)) {
	r.add(name, "", help, KindCounter, series{collect: fn})
}

// CollectGauge is CollectCounter for gauges.
func (r *Registry) CollectGauge(name, help string, fn func(*Appender)) {
	r.add(name, "", help, KindGauge, series{collect: fn})
}

// Appender lets a collector emit samples during a scrape.
type Appender struct {
	r   *Registry
	fam *family
}

// U64 emits one integer sample with the given rendered label set.
func (a *Appender) U64(labels string, v uint64) {
	a.r.buf = appendSample(a.r.buf, a.fam.name, labels, v)
}

// F64 emits one float sample with the given rendered label set.
func (a *Appender) F64(labels string, v float64) {
	a.r.buf = append(a.r.buf, a.fam.name...)
	a.r.buf = append(a.r.buf, labels...)
	a.r.buf = append(a.r.buf, ' ')
	a.r.buf = strconv.AppendFloat(a.r.buf, v, 'g', -1, 64)
	a.r.buf = append(a.r.buf, '\n')
}

// bucketLE holds the prerendered le label values in seconds, one per
// finite bucket, shared by every histogram family.
var bucketLE = func() [HistBuckets]string {
	var out [HistBuckets]string
	for i := range out {
		out[i] = strconv.FormatFloat(float64(BucketBound(i))/1e9, 'g', -1, 64)
	}
	return out
}()

func appendSample(buf []byte, name, labels string, v uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, v, 10)
	return append(buf, '\n')
}

// appendLabeled renders name + labels with one extra le pair merged in.
func appendBucketLine(buf []byte, name, labels, le string, v uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	if labels == "" {
		buf = append(buf, `{le="`...)
	} else {
		buf = append(buf, labels[:len(labels)-1]...)
		buf = append(buf, `,le="`...)
	}
	buf = append(buf, le...)
	buf = append(buf, `"} `...)
	buf = strconv.AppendUint(buf, v, 10)
	return append(buf, '\n')
}

// render writes the full exposition into r.buf (reused across scrapes, so
// a steady-state scrape performs no allocation).
func (r *Registry) render() {
	r.buf = r.buf[:0]
	for _, f := range r.fams {
		r.buf = append(r.buf, "# HELP "...)
		r.buf = append(r.buf, f.name...)
		r.buf = append(r.buf, ' ')
		r.buf = append(r.buf, f.help...)
		r.buf = append(r.buf, "\n# TYPE "...)
		r.buf = append(r.buf, f.name...)
		r.buf = append(r.buf, ' ')
		r.buf = append(r.buf, f.kind.String()...)
		r.buf = append(r.buf, '\n')
		for i := range f.series {
			s := &f.series[i]
			switch {
			case s.collect != nil:
				r.app.r, r.app.fam = r, f
				s.collect(&r.app)
			case s.hist != nil:
				cum := uint64(0)
				for b := 0; b < HistBuckets; b++ {
					cum += s.hist.publishedBucket(b)
					r.buf = appendBucketLine(r.buf, f.name, s.labels, bucketLE[b], cum)
				}
				r.buf = appendBucketLine(r.buf, f.name, s.labels, "+Inf", s.hist.Count())
				r.buf = append(r.buf, f.name...)
				r.buf = append(r.buf, "_sum"...)
				r.buf = append(r.buf, s.labels...)
				r.buf = append(r.buf, ' ')
				r.buf = strconv.AppendFloat(r.buf, s.hist.SumSeconds(), 'g', -1, 64)
				r.buf = append(r.buf, '\n')
				r.buf = append(r.buf, f.name...)
				r.buf = append(r.buf, "_count"...)
				r.buf = append(r.buf, s.labels...)
				r.buf = append(r.buf, ' ')
				r.buf = strconv.AppendUint(r.buf, s.hist.Count(), 10)
				r.buf = append(r.buf, '\n')
			case s.isFloat:
				r.buf = append(r.buf, f.name...)
				r.buf = append(r.buf, s.labels...)
				r.buf = append(r.buf, ' ')
				r.buf = strconv.AppendFloat(r.buf, s.fnF(), 'g', -1, 64)
				r.buf = append(r.buf, '\n')
			case s.fnU != nil:
				r.buf = appendSample(r.buf, f.name, s.labels, s.fnU())
			default:
				r.buf = appendSample(r.buf, f.name, s.labels, s.cell.Load())
			}
		}
	}
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format and writes it to w.
func (r *Registry) WritePrometheus(w io.Writer) (int, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.render()
	return w.Write(r.buf)
}

// Gather renders the exposition and appends it to dst, returning the
// result. With a non-nil dst of sufficient capacity, a scrape pass
// performs zero allocations once the internal buffer has reached its
// steady-state size.
func (r *Registry) Gather(dst []byte) []byte {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.render()
	return append(dst, r.buf...)
}

// histogram sum precision note: _sum is exposed in seconds as Prometheus
// conventions require; the internal accumulation is integer nanoseconds,
// so no float drift accumulates across publications.

// Names returns the registered family names in registration order (for
// golden tests against the documented catalogue).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.fams))
	for i, f := range r.fams {
		out[i] = f.name
	}
	return out
}
