package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is a minimal parser for the Prometheus text exposition format,
// used by the golden tests (here and in cmd/hhhd) to validate what the
// registry renders: every registered series present, HELP/TYPE lines
// well-formed, histogram buckets cumulative. It is intentionally strict
// about the subset the registry emits rather than lenient about the full
// format.

// ParsedSample is one sample line: metric name (with _bucket/_sum/_count
// suffixes intact), sorted rendered labels, and the value.
type ParsedSample struct {
	Name   string
	Labels string // canonical form: sorted `a="b",c="d"` without braces
	Value  float64
}

// ParsedFamily is one # HELP/# TYPE block and its samples.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseProm parses a text exposition. It enforces the structure the
// registry guarantees: every sample preceded by its family's HELP and TYPE
// lines, TYPE one of counter/gauge/histogram, sample names matching the
// family (allowing histogram suffixes), and float-parsable values.
func ParseProm(text string) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	var cur *ParsedFamily
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			cur = &ParsedFamily{Name: name, Help: help}
			fams[name] = cur
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || name != cur.Name {
				return nil, fmt.Errorf("line %d: TYPE not immediately after its HELP: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: bad TYPE %q", lineNo, typ)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil || !sampleBelongs(s.Name, cur) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	for name, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s: missing TYPE", name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %s: no samples", name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func sampleBelongs(sample string, f *ParsedFamily) bool {
	if f.Type == "histogram" {
		return sample == f.Name+"_bucket" || sample == f.Name+"_sum" || sample == f.Name+"_count"
	}
	return sample == f.Name
}

// parseSample splits `name{a="b",c="d"} value` (labels optional).
func parseSample(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		s.Name = line[:i]
		raw := line[i+1 : j]
		canon, err := canonLabels(raw)
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = canon
		rest = strings.TrimSpace(line[j+1:])
	} else {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = name
		rest = val
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 { // value [timestamp]
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil && rest != "+Inf" {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

// canonLabels validates `a="b",c="d"` pairs and returns them sorted.
func canonLabels(raw string) (string, error) {
	if raw == "" {
		return "", nil
	}
	var pairs []string
	for _, pair := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", fmt.Errorf("malformed label pair %q", pair)
		}
		pairs = append(pairs, pair)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ","), nil
}

// checkHistogram validates cumulative bucket monotonicity, the +Inf
// terminal bucket, and _count == +Inf count for every label set.
func checkHistogram(f *ParsedFamily) error {
	type hist struct {
		last    float64
		lastLE  float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	byLabels := make(map[string]*hist)
	get := func(labels string) *hist {
		h := byLabels[labels]
		if h == nil {
			h = &hist{lastLE: -1}
			byLabels[labels] = h
		}
		return h
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, rest := "", s.Labels
			var kept []string
			for _, pair := range strings.Split(rest, ",") {
				if v, ok := strings.CutPrefix(pair, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				} else if pair != "" {
					kept = append(kept, pair)
				}
			}
			if le == "" {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			h := get(strings.Join(kept, ","))
			if le == "+Inf" {
				h.infSeen = true
				h.inf = s.Value
				if s.Value < h.last {
					return fmt.Errorf("%s: +Inf bucket %v below prior bucket %v", f.Name, s.Value, h.last)
				}
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			if bound <= h.lastLE {
				return fmt.Errorf("%s: le bounds not increasing (%v after %v)", f.Name, bound, h.lastLE)
			}
			if s.Value < h.last {
				return fmt.Errorf("%s: bucket counts not cumulative (%v after %v)", f.Name, s.Value, h.last)
			}
			if h.infSeen {
				return fmt.Errorf("%s: finite bucket after +Inf", f.Name)
			}
			h.lastLE = bound
			h.last = s.Value
		case f.Name + "_count":
			h := get(s.Labels)
			h.count = s.Value
			h.hasCnt = true
		}
	}
	for labels, h := range byLabels {
		if !h.infSeen {
			return fmt.Errorf("%s{%s}: missing +Inf bucket", f.Name, labels)
		}
		if !h.hasCnt {
			return fmt.Errorf("%s{%s}: missing _count", f.Name, labels)
		}
		if h.count != h.inf {
			return fmt.Errorf("%s{%s}: _count %v != +Inf bucket %v", f.Name, labels, h.count, h.inf)
		}
	}
	return nil
}

// Lookup returns the sample with the given name and canonical sorted
// labels, for test assertions.
func Lookup(fams map[string]*ParsedFamily, family, sample, labels string) (ParsedSample, bool) {
	f, ok := fams[family]
	if !ok {
		return ParsedSample{}, false
	}
	for _, s := range f.Samples {
		if s.Name == sample && s.Labels == labels {
			return s, true
		}
	}
	return ParsedSample{}, false
}
