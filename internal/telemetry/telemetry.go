// Package telemetry is the zero-allocation metrics layer for the RHHH
// service surfaces. It follows the shared-nothing ownership model of the
// ingest path (see sharded.go): hot-path counters are plain uint64 fields
// owned by a single goroutine, and only at an existing publication boundary
// (worker snapshot publish, watch tick, reporter tick, window flush) are
// they stored into atomic publication cells. Scrapes read exclusively from
// those cells — or from closures over already-synchronized state — so the
// exposition path never takes a lock the hot path can contend on, and the
// hot path never executes an atomic read-modify-write.
//
// Every entry point is nil-safe: a nil *Registry (telemetry.Disabled) makes
// instrumentation a no-op, so an uninstrumented path pays one predictable
// branch and nothing else.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Cell is a published metric value: one atomic word, written by the owning
// goroutine at publication boundaries and read by scrapers. Cells are not
// padded — they are written a few times per second at most, so false
// sharing is irrelevant, and stat blocks pack dozens of them.
type Cell struct{ v atomic.Uint64 }

// Store publishes v. Called by the owner (or under the owner's lock).
func (c *Cell) Store(v uint64) { c.v.Store(v) }

// Add atomically adds d. Intended for mutex-serialized slow paths (query
// bookkeeping, tick accounting) — never for the packet path.
func (c *Cell) Add(d uint64) { c.v.Add(d) }

// Load returns the last published value. Safe from any goroutine.
func (c *Cell) Load() uint64 { return c.v.Load() }

// Counter is a hot-path counter: a plain uint64 the owning goroutine
// increments without synchronization, plus the cell it publishes through.
// Inc/Add/Publish must only be called by the owner; Value may be called by
// anyone and sees the last published state.
type Counter struct {
	n   uint64
	pub Cell
}

// Inc adds 1 to the live count. Owner only.
func (c *Counter) Inc() { c.n++ }

// Add adds d to the live count. Owner only.
func (c *Counter) Add(d uint64) { c.n += d }

// Live returns the unpublished owner-side count. Owner only.
func (c *Counter) Live() uint64 { return c.n }

// Publish stores the live count into the publication cell. Owner only.
func (c *Counter) Publish() { c.pub.Store(c.n) }

// Value returns the last published count. Safe from any goroutine.
func (c *Counter) Value() uint64 { return c.pub.Load() }

// Cumulative log2 histogram geometry: finite bucket i holds samples with
// duration ≤ 1024<<i nanoseconds, i.e. boundaries run 1.024 µs .. ~2.15 s;
// anything slower lands in the implicit +Inf bucket. This spans a watch
// tick (~1 µs idle, ~123 µs busy) through a multi-second window merge.
const (
	// HistBuckets is the number of finite histogram buckets.
	HistBuckets = 22

	histRingBits = 8
	histRingLen  = 1 << histRingBits
	histRingMask = histRingLen - 1
)

// BucketBound returns the inclusive upper bound of finite bucket i, in
// nanoseconds.
func BucketBound(i int) uint64 { return 1024 << uint(i) }

// bucketOf maps a duration in nanoseconds to its finite bucket, or
// HistBuckets for the +Inf overflow.
func bucketOf(ns uint64) int {
	if ns <= 1024 {
		return 0
	}
	i := bits.Len64(ns-1) - 10
	if i >= HistBuckets {
		return HistBuckets
	}
	return i
}

// Histogram is a ring-buffered latency histogram. Observe is two plain
// stores by the owning goroutine (raw nanosecond sample into a power-of-two
// ring); the log2 bucketing happens when the ring fills or at Publish, and
// the bucketed totals are then stored into atomic cells for scrapers. As
// with Counter, all methods except the published readers are owner-only.
type Histogram struct {
	ring  [histRingLen]uint64
	wpos  uint64
	rpos  uint64
	count uint64
	sumNs uint64
	cnt   [HistBuckets]uint64
	inf   uint64

	pubCnt   [HistBuckets]Cell
	pubInf   Cell
	pubCount Cell
	pubSum   Cell
}

// Observe records one duration. Owner only.
func (h *Histogram) Observe(d time.Duration) {
	h.ring[h.wpos&histRingMask] = uint64(d)
	h.wpos++
	if h.wpos-h.rpos == histRingLen {
		h.drain()
	}
}

// ObserveSince records time elapsed since t0. Owner only.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// drain buckets every pending ring sample.
func (h *Histogram) drain() {
	for ; h.rpos != h.wpos; h.rpos++ {
		ns := h.ring[h.rpos&histRingMask]
		if b := bucketOf(ns); b < HistBuckets {
			h.cnt[b]++
		} else {
			h.inf++
		}
		h.sumNs += ns
		h.count++
	}
}

// Publish drains the ring and stores the bucketed totals into the
// publication cells. Owner only.
func (h *Histogram) Publish() {
	h.drain()
	for i := range h.cnt {
		h.pubCnt[i].Store(h.cnt[i])
	}
	h.pubInf.Store(h.inf)
	h.pubSum.Store(h.sumNs)
	h.pubCount.Store(h.count)
}

// Count returns the published sample count. Safe from any goroutine.
func (h *Histogram) Count() uint64 { return h.pubCount.Load() }

// SumSeconds returns the published sum of all samples in seconds. Safe
// from any goroutine.
func (h *Histogram) SumSeconds() float64 { return float64(h.pubSum.Load()) / 1e9 }

// publishedBucket returns the published count of finite bucket i.
func (h *Histogram) publishedBucket(i int) uint64 { return h.pubCnt[i].Load() }
