package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterOwnershipModel(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Live() != 42 {
		t.Fatalf("live = %d, want 42", c.Live())
	}
	if c.Value() != 0 {
		t.Fatalf("unpublished value = %d, want 0 (scrapers see only published state)", c.Value())
	}
	c.Publish()
	if c.Value() != 42 {
		t.Fatalf("published value = %d, want 42", c.Value())
	}
}

func TestCell(t *testing.T) {
	var c Cell
	c.Store(7)
	c.Add(3)
	if c.Load() != 10 {
		t.Fatalf("cell = %d, want 10", c.Load())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {1024, 0}, {1025, 1}, {2048, 1}, {2049, 2},
		{BucketBound(HistBuckets - 1), HistBuckets - 1},
		{BucketBound(HistBuckets-1) + 1, HistBuckets}, // +Inf overflow
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
	// Bounds must strictly increase (le monotonicity in the exposition).
	for i := 1; i < HistBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
}

func TestHistogramRingDrain(t *testing.T) {
	var h Histogram
	// Overfill the ring: the auto-drain at ring-full must not lose samples.
	n := histRingLen + histRingLen/2
	for i := 0; i < n; i++ {
		h.Observe(time.Microsecond) // 1000ns -> bucket 0
	}
	h.Observe(time.Hour) // way past the last finite bound -> +Inf
	h.Publish()
	if got := h.Count(); got != uint64(n+1) {
		t.Fatalf("count = %d, want %d", got, n+1)
	}
	if got := h.publishedBucket(0); got != uint64(n) {
		t.Fatalf("bucket 0 = %d, want %d", got, n)
	}
	wantSum := float64(n)*1e-6 + 3600
	if got := h.SumSeconds(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("sum = %v s, want ~%v s", got, wantSum)
	}
}

// buildRegistry registers one series of every shape with published values.
func buildRegistry() (*Registry, *Histogram) {
	r := NewRegistry()
	var ctr Counter
	ctr.Add(5)
	ctr.Publish()
	r.Counter("t_ops_total", "", "Operations.", &ctr.pub)

	var g Cell
	g.Store(3)
	r.Gauge("t_depth", `{shard="0"}`, "Depth.", &g)
	r.GaugeFunc("t_ratio", "", "Ratio.", func() float64 { return 0.5 })
	r.CounterFunc("t_lazy_total", "", "Lazy.", func() uint64 { return 9 })

	h := &Histogram{}
	h.Observe(2 * time.Microsecond)
	h.Observe(time.Millisecond)
	h.Publish()
	r.Histogram("t_latency_seconds", "", "Latency.", h)

	r.CollectGauge("t_members", "Members.", func(a *Appender) {
		a.U64(`{set="a"}`, 2)
		a.F64(`{set="b"}`, 1.5)
	})
	return r, h
}

// TestRenderGolden parses the registry's own exposition with the strict
// parser and checks every value round-trips.
func TestRenderGolden(t *testing.T) {
	r, _ := buildRegistry()
	var sb strings.Builder
	if _, err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(sb.String())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, sb.String())
	}
	checks := []struct {
		family, sample, labels string
		want                   float64
	}{
		{"t_ops_total", "t_ops_total", "", 5},
		{"t_depth", "t_depth", `shard="0"`, 3},
		{"t_ratio", "t_ratio", "", 0.5},
		{"t_lazy_total", "t_lazy_total", "", 9},
		{"t_latency_seconds", "t_latency_seconds_count", "", 2},
		{"t_members", "t_members", `set="a"`, 2},
		{"t_members", "t_members", `set="b"`, 1.5},
	}
	for _, c := range checks {
		s, ok := Lookup(fams, c.family, c.sample, c.labels)
		if !ok {
			t.Errorf("%s{%s}: missing", c.sample, c.labels)
			continue
		}
		if s.Value != c.want {
			t.Errorf("%s{%s} = %v, want %v", c.sample, c.labels, s.Value, c.want)
		}
	}
	// Histogram details: the 1ms sample sits above the 2µs one.
	if s, ok := Lookup(fams, "t_latency_seconds", "t_latency_seconds_bucket", `le="+Inf"`); !ok || s.Value != 2 {
		t.Errorf("+Inf bucket: %+v ok=%v", s, ok)
	}
	if got := fams["t_latency_seconds"].Type; got != "histogram" {
		t.Errorf("type = %s", got)
	}
	if got := r.Names(); len(got) != 6 {
		t.Errorf("Names() = %v, want 6 families", got)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	var c Cell
	r.Counter("dup_total", "", "x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("dup_total", "", "x", &c)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	var c Cell
	r.Counter("kind_total", "", "x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("kind_total", `{a="b"}`, "x", &c)
}

// TestDisabledRegistry pins the nil-safety contract telemetry.Disabled
// relies on: every method is a no-op on a nil receiver.
func TestDisabledRegistry(t *testing.T) {
	r := Disabled
	var c Cell
	var h Histogram
	r.Counter("x_total", "", "x", &c)
	r.CounterFunc("y_total", "", "y", func() uint64 { return 1 })
	r.Gauge("g", "", "g", &c)
	r.GaugeFunc("gf", "", "g", func() float64 { return 1 })
	r.Histogram("h", "", "h", &h)
	r.CollectCounter("cc", "c", func(*Appender) {})
	r.CollectGauge("cg", "c", func(*Appender) {})
	if n, err := r.WritePrometheus(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil WritePrometheus = %d, %v", n, err)
	}
	if got := r.Gather(nil); got != nil {
		t.Fatalf("nil Gather = %q", got)
	}
	if got := r.Names(); got != nil {
		t.Fatalf("nil Names = %v", got)
	}
}

// TestConcurrentScrape exercises the ownership model under the race
// detector: one owner goroutine publishing counters and histograms at full
// speed while scrapers render concurrently.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var ctr Counter
	var h Histogram
	r.Counter("race_ops_total", "", "ops", &ctr.pub)
	r.Histogram("race_lat_seconds", "", "lat", &h)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the owner
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				ctr.Publish()
				h.Publish()
				return
			default:
			}
			ctr.Inc()
			h.Observe(time.Duration(i%1000) * time.Microsecond)
			if i%64 == 0 {
				ctr.Publish()
				h.Publish()
			}
		}
	}()
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() { // scrapers
			defer wg.Done()
			var buf []byte
			for i := 0; i < 200; i++ {
				buf = r.Gather(buf[:0])
				if _, err := ParseProm(string(buf)); err != nil {
					t.Errorf("scrape %d: %v", i, err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if ctr.Value() == 0 || h.Count() == 0 {
		t.Fatal("owner made no visible progress")
	}
}

// TestScrapeZeroAlloc pins the steady-state scrape allocation count at
// zero: after a warm-up render sizes the internal buffer, Gather into a
// pre-sized destination must not allocate.
func TestScrapeZeroAlloc(t *testing.T) {
	r, h := buildRegistry()
	dst := r.Gather(nil) // warm: sizes r.buf and dst
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(time.Microsecond) // keep values moving
		h.Publish()
		dst = r.Gather(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state scrape allocates %v times per pass, want 0", allocs)
	}
}
