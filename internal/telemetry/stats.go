package telemetry

import "time"

// The stat blocks below are the publication targets each layer owns. The
// owning goroutine fills its block at an existing boundary (worker publish,
// watch tick, window flush, reporter tick); Register wires the block's
// cells into a registry under the canonical metric names, so every command
// (hhhd, hhh, vswitchd) exposes the same catalogue.

// EngineStats is the per-engine block: update-path counters plus the
// counter-backend occupancy gauges (Space Saving slab or CHK slots).
type EngineStats struct {
	Packets Cell // packets ingested
	Weight  Cell // total weight ingested
	Samples Cell // sampled updates forwarded to a lattice node
	Batches Cell // batch kernel invocations

	Evictions Cell // Space Saving takeovers of a minimum counter
	Decays    Cell // CHK probabilistic decay decrements
	Takeovers Cell // CHK decayed-to-zero slot takeovers

	Occupied Cell // monitored keys across all lattice nodes
	Slots    Cell // counter slots across all lattice nodes
	Stash    Cell // cuckoo stash entries across all lattice nodes
}

// Register wires the block under the rhhh_engine_* / rhhh_counter_* names.
// labels is a rendered label set (`{worker="0"}` or "").
func (s *EngineStats) Register(r *Registry, labels string) {
	r.Counter("rhhh_engine_packets_total", labels, "Packets ingested by the update path.", &s.Packets)
	r.Counter("rhhh_engine_weight_total", labels, "Total weight ingested by the update path.", &s.Weight)
	r.Counter("rhhh_engine_samples_total", labels, "Sampled updates forwarded to a lattice node.", &s.Samples)
	r.Counter("rhhh_engine_batches_total", labels, "Batch kernel invocations.", &s.Batches)
	r.Counter("rhhh_counter_evictions_total", labels, "Space Saving minimum-counter takeovers.", &s.Evictions)
	r.Counter("rhhh_counter_decays_total", labels, "CHK probabilistic decay decrements.", &s.Decays)
	r.Counter("rhhh_counter_takeovers_total", labels, "CHK decayed-slot takeovers.", &s.Takeovers)
	r.Gauge("rhhh_counter_occupied", labels, "Monitored keys across all lattice nodes.", &s.Occupied)
	r.Gauge("rhhh_counter_slots", labels, "Counter slots across all lattice nodes.", &s.Slots)
	r.Gauge("rhhh_counter_stash_depth", labels, "Cuckoo stash entries across all lattice nodes.", &s.Stash)
}

// WorkerStats is the per-worker block of a Sharded monitor: the engine
// block plus snapshot-publication state.
type WorkerStats struct {
	Engine       EngineStats
	Publications Cell // snapshots published through the pub cell
	Syncs        Cell // explicit Sync barriers
	Epoch        Cell // epoch of the last published snapshot
	RingSlots    Cell // PubRing slots currently allocated
	LastPublish  Cell // wall clock of the last publication, unix nanos
}

// Register wires the worker block; labels should carry a worker id.
func (s *WorkerStats) Register(r *Registry, labels string) {
	s.Engine.Register(r, labels)
	r.Counter("rhhh_worker_publications_total", labels, "Snapshots published by the worker.", &s.Publications)
	r.Counter("rhhh_worker_syncs_total", labels, "Explicit worker Sync barriers.", &s.Syncs)
	r.Gauge("rhhh_worker_epoch", labels, "Epoch of the worker's last published snapshot.", &s.Epoch)
	r.Gauge("rhhh_pubring_slots", labels, "Publication-ring slots currently allocated.", &s.RingSlots)
	r.GaugeFunc("rhhh_worker_publish_age_seconds", labels, "Seconds since the worker's last snapshot publication.", func() float64 {
		last := s.LastPublish.Load()
		if last == 0 {
			return 0
		}
		return float64(uint64(time.Now().UnixNano())-last) / 1e9
	})
}

// QueryStats is the query-side block of a Sharded monitor, owned by the
// aggregation mutex: published-epoch pinning and merge bookkeeping.
type QueryStats struct {
	Queries    Cell // HeavyHitters / Snapshot evaluations
	PinRetries Cell // pin-then-verify retries against racing publications
	Hits       Cell // result size of the last heavy-hitters query
}

// Register wires the query block.
func (s *QueryStats) Register(r *Registry, labels string) {
	r.Counter("rhhh_queries_total", labels, "Heavy-hitter query and snapshot evaluations.", &s.Queries)
	r.Counter("rhhh_query_pin_retries_total", labels, "Publication-pin retries against racing publications.", &s.PinRetries)
	r.Gauge("rhhh_query_hits", labels, "Result size of the last heavy-hitters query.", &s.Hits)
}

// WatchStats is the standing-query block, owned by the watch hub's mutex.
type WatchStats struct {
	Ticks         Cell      // delta-computation ticks
	Deliveries    Cell      // deltas delivered to subscribers
	Drops         Cell      // deltas dropped on full subscriber buffers
	Subs          Cell      // live subscriptions
	DifferEntries Cell      // tracked entries across all subscription differs
	TickLatency   Histogram // wall time of a full tick (capture + diff + deliver)
}

// Register wires the watch block.
func (s *WatchStats) Register(r *Registry, labels string) {
	r.Counter("rhhh_watch_ticks_total", labels, "Standing-query delta-computation ticks.", &s.Ticks)
	r.Counter("rhhh_watch_deliveries_total", labels, "Watch deltas delivered to subscribers.", &s.Deliveries)
	r.Counter("rhhh_watch_drops_total", labels, "Watch deltas dropped on full subscriber buffers.", &s.Drops)
	r.Gauge("rhhh_watch_subscriptions", labels, "Live watch subscriptions.", &s.Subs)
	r.Gauge("rhhh_watch_differ_entries", labels, "Tracked entries across subscription differs.", &s.DifferEntries)
	r.Histogram("rhhh_watch_tick_seconds", labels, "Wall time of a standing-query tick.", &s.TickLatency)
}

// WindowStats is the sliding/tumbling-window block. Flush latency is the
// producer-visible cost of rotating a sub-window; merge latency is the
// (background, for sliding windows) merge + extraction time.
type WindowStats struct {
	Flushes      Cell
	FlushLatency Histogram
	MergeLatency Histogram
}

// Register wires the window block.
func (s *WindowStats) Register(r *Registry, labels string) {
	r.Counter("rhhh_window_flushes_total", labels, "Sub-window flush rotations.", &s.Flushes)
	r.Histogram("rhhh_window_flush_seconds", labels, "Producer-visible sub-window flush time.", &s.FlushLatency)
	r.Histogram("rhhh_window_merge_seconds", labels, "Window merge and extraction time.", &s.MergeLatency)
}
