package hierarchy

import (
	"testing"

	"rhhh/internal/fastrand"
)

// TestMaskTableMatchesMask: the precomputed AND tables and the devirtualized
// Masker must agree with the generic Mask path on every node for random keys,
// across all carriers and granularities.
func TestMaskTableMatchesMask(t *testing.T) {
	r := fastrand.New(1)

	check := func(t *testing.T, name string, f func() bool) {
		t.Helper()
		for i := 0; i < 1000; i++ {
			if !f() {
				t.Fatalf("%s: masker/table disagrees with Mask", name)
			}
		}
	}

	for _, g := range []Granularity{Bits, Nibbles, Bytes} {
		d1 := NewIPv4OneDim(g)
		tbl1, ok := d1.MaskTable()
		if !ok || len(tbl1) != d1.Size() {
			t.Fatalf("%s: missing mask table", d1.Name())
		}
		m1 := d1.Masker()
		check(t, d1.Name(), func() bool {
			k := uint32(r.Uint64())
			node := int(r.Uint64n(uint64(d1.Size())))
			want := d1.Mask(k, node)
			return m1(k, node) == want && k&tbl1[node] == want
		})

		d2 := NewIPv4TwoDim(g)
		tbl2, ok := d2.MaskTable()
		if !ok || len(tbl2) != d2.Size() {
			t.Fatalf("%s: missing mask table", d2.Name())
		}
		m2 := d2.Masker()
		check(t, d2.Name(), func() bool {
			k := r.Uint64()
			node := int(r.Uint64n(uint64(d2.Size())))
			want := d2.Mask(k, node)
			return m2(k, node) == want && k&tbl2[node] == want
		})

		d6 := NewIPv6OneDim(g)
		if _, ok := d6.MaskTable(); ok {
			t.Fatalf("%s: Addr carrier should not report an integer mask table", d6.Name())
		}
		m6 := d6.Masker()
		check(t, d6.Name(), func() bool {
			k := Addr{Hi: r.Uint64(), Lo: r.Uint64()}
			node := int(r.Uint64n(uint64(d6.Size())))
			return m6(k, node) == d6.Mask(k, node)
		})

		d62 := NewIPv6TwoDim(g)
		if _, ok := d62.MaskTable(); ok {
			t.Fatalf("%s: AddrPair carrier should not report an integer mask table", d62.Name())
		}
		m62 := d62.Masker()
		check(t, d62.Name(), func() bool {
			k := AddrPair{
				Src: Addr{Hi: r.Uint64(), Lo: r.Uint64()},
				Dst: Addr{Hi: r.Uint64(), Lo: r.Uint64()},
			}
			node := int(r.Uint64n(uint64(d62.Size())))
			return m62(k, node) == d62.Mask(k, node)
		})
	}
}
