package hierarchy

import (
	"fmt"
	"sync"
)

// Domains are immutable, so constructors memoize them: repeated calls with
// the same shape return the same *Domain. This keeps the node tables shared
// and lets components compare domains by pointer (e.g. engine merging).
var domainCache sync.Map // cacheKey → *Domain[K] (as any)

type cacheKey struct {
	dims, width, step int
}

func cachedDomain[K comparable](dims, width, step int, build func() *Domain[K]) *Domain[K] {
	key := cacheKey{dims, width, step}
	if v, ok := domainCache.Load(key); ok {
		return v.(*Domain[K])
	}
	d := build()
	if v, loaded := domainCache.LoadOrStore(key, d); loaded {
		return v.(*Domain[K])
	}
	return d
}

// Granularity is the hierarchy step size in bits.
type Granularity int

// Supported granularities. Bytes gives the paper's H=5 (1D IPv4) and H=25
// (2D IPv4); Bits gives H=33 (1D IPv4); Nibbles is the middle ground often
// used for IPv6.
const (
	Bits    Granularity = 1
	Nibbles Granularity = 4
	Bytes   Granularity = 8
)

func (g Granularity) String() string {
	switch g {
	case Bits:
		return "bits"
	case Nibbles:
		return "nibbles"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("step-%d", int(g))
	}
}

// Pack2D packs a source and destination IPv4 address into the uint64 key
// used by two-dimensional IPv4 domains.
func Pack2D(src, dst uint32) uint64 {
	return uint64(src)<<32 | uint64(dst)
}

// Unpack2D splits a two-dimensional IPv4 key back into (src, dst).
func Unpack2D(k uint64) (src, dst uint32) {
	return uint32(k >> 32), uint32(k)
}

// NewIPv4OneDim builds the one-dimensional IPv4 source hierarchy at the given
// granularity. Keys are the 32-bit source address. H = 32/step + 1.
func NewIPv4OneDim(g Granularity) *Domain[uint32] {
	step := int(g)
	return cachedDomain(1, 32, step, func() *Domain[uint32] { return newIPv4OneDim(step) })
}

func newIPv4OneDim(step int) *Domain[uint32] {
	d := &Domain[uint32]{
		dims:  1,
		width: 32,
		step:  step,
		mask: func(k uint32, srcBits, _ int) uint32 {
			return k & mask32(srcBits)
		},
		merge: func(src, _ uint32) uint32 { return src },
		format: func(k uint32, srcBits, _ int) string {
			return formatPrefix32(k, srcBits)
		},
	}
	d.nodes, d.byLevel, d.index, d.fullNode, d.rootNode = buildNodes(1, 32, step)
	d.name = fmt.Sprintf("1D-IPv4-%s (H=%d)", Granularity(step), len(d.nodes))
	tbl := make([]uint32, len(d.nodes))
	for i, n := range d.nodes {
		tbl[i] = mask32(n.SrcBits)
	}
	d.maskTable = tbl
	d.fastMask = func(k uint32, node int) uint32 { return k & tbl[node] }
	return d
}

// NewIPv4TwoDim builds the two-dimensional IPv4 source×destination hierarchy
// at the given granularity. Keys pack source in the high 32 bits and
// destination in the low 32 (use Pack2D). H = (32/step + 1)².
func NewIPv4TwoDim(g Granularity) *Domain[uint64] {
	step := int(g)
	return cachedDomain(2, 32, step, func() *Domain[uint64] { return newIPv4TwoDim(step) })
}

func newIPv4TwoDim(step int) *Domain[uint64] {
	d := &Domain[uint64]{
		dims:  2,
		width: 32,
		step:  step,
		mask: func(k uint64, srcBits, dstBits int) uint64 {
			return k & (uint64(mask32(srcBits))<<32 | uint64(mask32(dstBits)))
		},
		merge: func(src, dst uint64) uint64 {
			const hi32 = uint64(0xffffffff00000000)
			return src&hi32 | dst&^hi32
		},
		format: func(k uint64, srcBits, dstBits int) string {
			s, t := Unpack2D(k)
			return fmt.Sprintf("(%s -> %s)", formatPrefix32(s, srcBits), formatPrefix32(t, dstBits))
		},
	}
	d.nodes, d.byLevel, d.index, d.fullNode, d.rootNode = buildNodes(2, 32, step)
	d.name = fmt.Sprintf("2D-IPv4-%s (H=%d)", Granularity(step), len(d.nodes))
	tbl := make([]uint64, len(d.nodes))
	for i, n := range d.nodes {
		tbl[i] = uint64(mask32(n.SrcBits))<<32 | uint64(mask32(n.DstBits))
	}
	d.maskTable = tbl
	d.fastMask = func(k uint64, node int) uint64 { return k & tbl[node] }
	return d
}

// NewIPv6OneDim builds the one-dimensional 128-bit source hierarchy at the
// given granularity. H = 128/step + 1 (17 for bytes, 33 for nibbles, 129 for
// bits) — the hierarchy sizes that motivate the paper's O(1) update time.
func NewIPv6OneDim(g Granularity) *Domain[Addr] {
	step := int(g)
	return cachedDomain(1, 128, step, func() *Domain[Addr] { return newIPv6OneDim(step) })
}

func newIPv6OneDim(step int) *Domain[Addr] {
	d := &Domain[Addr]{
		dims:  1,
		width: 128,
		step:  step,
		mask: func(k Addr, srcBits, _ int) Addr {
			return k.Mask(srcBits)
		},
		merge: func(src, _ Addr) Addr { return src },
		format: func(k Addr, srcBits, _ int) string {
			return formatPrefix128(k, srcBits)
		},
	}
	d.nodes, d.byLevel, d.index, d.fullNode, d.rootNode = buildNodes(1, 128, step)
	d.name = fmt.Sprintf("1D-IPv6-%s (H=%d)", Granularity(step), len(d.nodes))
	tbl := make([]Addr, len(d.nodes))
	for i, n := range d.nodes {
		tbl[i] = Addr{Hi: ^uint64(0), Lo: ^uint64(0)}.Mask(n.SrcBits)
	}
	d.maskTable = tbl
	d.fastMask = func(k Addr, node int) Addr {
		m := tbl[node]
		return Addr{Hi: k.Hi & m.Hi, Lo: k.Lo & m.Lo}
	}
	return d
}

// NewIPv6TwoDim builds the two-dimensional 128-bit source×destination
// hierarchy at the given granularity. H = (128/step + 1)².
func NewIPv6TwoDim(g Granularity) *Domain[AddrPair] {
	step := int(g)
	return cachedDomain(2, 128, step, func() *Domain[AddrPair] { return newIPv6TwoDim(step) })
}

func newIPv6TwoDim(step int) *Domain[AddrPair] {
	d := &Domain[AddrPair]{
		dims:  2,
		width: 128,
		step:  step,
		mask: func(k AddrPair, srcBits, dstBits int) AddrPair {
			return AddrPair{Src: k.Src.Mask(srcBits), Dst: k.Dst.Mask(dstBits)}
		},
		merge: func(src, dst AddrPair) AddrPair {
			return AddrPair{Src: src.Src, Dst: dst.Dst}
		},
		format: func(k AddrPair, srcBits, dstBits int) string {
			return fmt.Sprintf("(%s -> %s)", formatPrefix128(k.Src, srcBits), formatPrefix128(k.Dst, dstBits))
		},
	}
	d.nodes, d.byLevel, d.index, d.fullNode, d.rootNode = buildNodes(2, 128, step)
	d.name = fmt.Sprintf("2D-IPv6-%s (H=%d)", Granularity(step), len(d.nodes))
	ones := Addr{Hi: ^uint64(0), Lo: ^uint64(0)}
	tbl := make([]AddrPair, len(d.nodes))
	for i, n := range d.nodes {
		tbl[i] = AddrPair{Src: ones.Mask(n.SrcBits), Dst: ones.Mask(n.DstBits)}
	}
	d.maskTable = tbl
	d.fastMask = func(k AddrPair, node int) AddrPair {
		m := tbl[node]
		return AddrPair{
			Src: Addr{Hi: k.Src.Hi & m.Src.Hi, Lo: k.Src.Lo & m.Src.Lo},
			Dst: Addr{Hi: k.Dst.Hi & m.Dst.Hi, Lo: k.Dst.Lo & m.Dst.Lo},
		}
	}
	return d
}
