package hierarchy

import (
	"testing"
	"testing/quick"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func TestSizesMatchPaper(t *testing.T) {
	// §3.1: "in IPv4, byte level one dimensional hierarchies imply H = 5";
	// §4: 1D bits H=33, 2D bytes H=25.
	cases := []struct {
		name string
		h    int
		got  int
	}{
		{"1D bytes", 5, NewIPv4OneDim(Bytes).Size()},
		{"1D bits", 33, NewIPv4OneDim(Bits).Size()},
		{"2D bytes", 25, NewIPv4TwoDim(Bytes).Size()},
		{"2D bits", 33 * 33, NewIPv4TwoDim(Bits).Size()},
		{"1D v6 bytes", 17, NewIPv6OneDim(Bytes).Size()},
		{"1D v6 nibbles", 33, NewIPv6OneDim(Nibbles).Size()},
		{"2D v6 bytes", 17 * 17, NewIPv6TwoDim(Bytes).Size()},
	}
	for _, c := range cases {
		if c.got != c.h {
			t.Errorf("%s: H = %d, want %d", c.name, c.got, c.h)
		}
	}
}

func TestDepth(t *testing.T) {
	if d := NewIPv4OneDim(Bytes).Depth(); d != 4 {
		t.Errorf("1D bytes depth = %d, want 4", d)
	}
	if d := NewIPv4TwoDim(Bytes).Depth(); d != 8 {
		t.Errorf("2D bytes depth = %d, want 8", d)
	}
	if d := NewIPv4OneDim(Bits).Depth(); d != 32 {
		t.Errorf("1D bits depth = %d, want 32", d)
	}
}

func TestLevelGrouping(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	total := 0
	for lvl, nodes := range d.NodesByLevel() {
		total += len(nodes)
		for _, n := range nodes {
			if d.Node(n).Level != lvl {
				t.Fatalf("node %d in level bucket %d but has level %d", n, lvl, d.Node(n).Level)
			}
		}
	}
	if total != d.Size() {
		t.Fatalf("levels cover %d nodes, want %d", total, d.Size())
	}
	// Level sizes of a 5x5 lattice by anti-diagonal: 1,2,3,4,5,4,3,2,1.
	want := []int{1, 2, 3, 4, 5, 4, 3, 2, 1}
	for lvl, w := range want {
		if got := len(d.NodesByLevel()[lvl]); got != w {
			t.Errorf("level %d has %d nodes, want %d", lvl, got, w)
		}
	}
}

func TestFullAndRootNodes(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	full := d.Node(d.FullNode())
	if full.SrcBits != 32 || full.DstBits != 32 || full.Level != 0 {
		t.Errorf("full node = %+v", full)
	}
	root := d.Node(d.RootNode())
	if root.SrcBits != 0 || root.DstBits != 0 || root.Level != d.Depth() {
		t.Errorf("root node = %+v", root)
	}
}

func TestMask1D(t *testing.T) {
	d := NewIPv4OneDim(Bytes)
	k := ip4(181, 7, 20, 6)
	want := map[int]uint32{
		32: ip4(181, 7, 20, 6),
		24: ip4(181, 7, 20, 0),
		16: ip4(181, 7, 0, 0),
		8:  ip4(181, 0, 0, 0),
		0:  0,
	}
	for i := 0; i < d.Size(); i++ {
		n := d.Node(i)
		if got := d.Mask(k, i); got != want[n.SrcBits] {
			t.Errorf("mask to /%d = %x, want %x", n.SrcBits, got, want[n.SrcBits])
		}
	}
}

func TestMaskIdempotent(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	f := func(src, dst uint32, node uint8) bool {
		i := int(node) % d.Size()
		k := Pack2D(src, dst)
		m := d.Mask(k, i)
		return d.Mask(m, i) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralizesExamplesFromPaper(t *testing.T) {
	// §3.1: (181.7.20.*, 208.67.222.222) and (181.7.20.6, 208.67.222.*) are
	// both parents of (181.7.20.6, 208.67.222.222).
	d := NewIPv4TwoDim(Bytes)
	child := Pack2D(ip4(181, 7, 20, 6), ip4(208, 67, 222, 222))
	full := d.FullNode()

	n1, _ := d.NodeByBits(24, 32)
	p1 := d.Mask(child, n1)
	if !d.ProperlyGeneralizes(p1, n1, child, full) {
		t.Error("(181.7.20.*, 208.67.222.222) should generalize the full item")
	}
	n2, _ := d.NodeByBits(32, 24)
	p2 := d.Mask(child, n2)
	if !d.ProperlyGeneralizes(p2, n2, child, full) {
		t.Error("(181.7.20.6, 208.67.222.*) should generalize the full item")
	}
	// The two parents do not generalize each other.
	if d.Generalizes(p1, n1, p2, n2) || d.Generalizes(p2, n2, p1, n1) {
		t.Error("incomparable parents reported as comparable")
	}
}

func TestGeneralizesRequiresMatchingBits(t *testing.T) {
	d := NewIPv4OneDim(Bytes)
	n24, _ := d.NodeByBits(24, 0)
	full := d.FullNode()
	p := ip4(10, 0, 0, 0) // 10.0.0.*
	if d.Generalizes(p, n24, ip4(10, 0, 1, 7), full) {
		t.Error("10.0.0.* should not generalize 10.0.1.7")
	}
	if !d.Generalizes(p, n24, ip4(10, 0, 0, 7), full) {
		t.Error("10.0.0.* should generalize 10.0.0.7")
	}
}

// TestGeneralizationPartialOrder property-checks reflexivity, antisymmetry
// and transitivity of the prefix order on random prefixes.
func TestGeneralizationPartialOrder(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	type pfx struct {
		k    uint64
		node int
	}
	mk := func(src, dst uint32, node uint8) pfx {
		i := int(node) % d.Size()
		return pfx{k: d.Mask(Pack2D(src, dst), i), node: i}
	}
	reflexive := func(s, t uint32, n uint8) bool {
		p := mk(s, t, n)
		return d.Generalizes(p.k, p.node, p.k, p.node)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Fatal("reflexivity:", err)
	}
	antisym := func(s1, t1 uint32, n1 uint8, s2, t2 uint32, n2 uint8) bool {
		p, q := mk(s1, t1, n1), mk(s2, t2, n2)
		if d.Generalizes(p.k, p.node, q.k, q.node) && d.Generalizes(q.k, q.node, p.k, p.node) {
			return p == q
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Fatal("antisymmetry:", err)
	}
	// Transitivity on a correlated chain (independent random prefixes are
	// rarely comparable, so derive q, r from p's key).
	transitive := func(s, t uint32, n1, n2, n3 uint8) bool {
		base := Pack2D(s, t)
		p := pfx{node: int(n1) % d.Size()}
		q := pfx{node: int(n2) % d.Size()}
		r := pfx{node: int(n3) % d.Size()}
		p.k = d.Mask(base, p.node)
		q.k = d.Mask(base, q.node)
		r.k = d.Mask(base, r.node)
		if d.Generalizes(p.k, p.node, q.k, q.node) && d.Generalizes(q.k, q.node, r.k, r.node) {
			return d.Generalizes(p.k, p.node, r.k, r.node)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Fatal("transitivity:", err)
	}
}

func TestGLBExample(t *testing.T) {
	// glb((s1.*, *), (*, d1.*)) = (s1.*, d1.*).
	d := NewIPv4TwoDim(Bytes)
	nA, _ := d.NodeByBits(8, 0)
	nB, _ := d.NodeByBits(0, 8)
	a := Pack2D(ip4(10, 0, 0, 0), 0)
	b := Pack2D(0, ip4(20, 0, 0, 0))
	k, node, ok := d.GLB(a, nA, b, nB)
	if !ok {
		t.Fatal("glb should exist")
	}
	wantNode, _ := d.NodeByBits(8, 8)
	if node != wantNode || k != Pack2D(ip4(10, 0, 0, 0), ip4(20, 0, 0, 0)) {
		t.Fatalf("glb = %s", d.Format(k, node))
	}
}

func TestGLBNonexistent(t *testing.T) {
	// (10.*, *) and (20.*, *) share no descendant.
	d := NewIPv4TwoDim(Bytes)
	n, _ := d.NodeByBits(8, 0)
	a := Pack2D(ip4(10, 0, 0, 0), 0)
	b := Pack2D(ip4(20, 0, 0, 0), 0)
	if _, _, ok := d.GLB(a, n, b, n); ok {
		t.Fatal("glb of incompatible prefixes should not exist")
	}
}

// TestGLBProperties property-checks Definition 12: glb is a common
// descendant, it is the greatest one, and the operation is commutative.
func TestGLBProperties(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	f := func(src, dst uint32, n1, n2 uint8) bool {
		base := Pack2D(src, dst)
		a, b := int(n1)%d.Size(), int(n2)%d.Size()
		ka, kb := d.Mask(base, a), d.Mask(base, b)
		k, node, ok := d.GLB(ka, a, kb, b)
		if !ok {
			return true // prefixes from a shared base always have a glb, but allow masks to clash via node shapes
		}
		// Common descendant: both inputs generalize the glb.
		if !d.Generalizes(ka, a, k, node) || !d.Generalizes(kb, b, k, node) {
			return false
		}
		// Greatest: the glb generalizes the shared base (which is a common
		// descendant of both inputs).
		if !d.Generalizes(k, node, base, d.FullNode()) {
			return false
		}
		// Commutative.
		k2, node2, ok2 := d.GLB(kb, b, ka, a)
		return ok2 && k2 == k && node2 == node
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParentsChildren(t *testing.T) {
	d := NewIPv4TwoDim(Bytes)
	full := d.FullNode()
	if got := len(d.Parents(full)); got != 2 {
		t.Errorf("full node should have 2 parents, got %d", got)
	}
	if got := len(d.Children(full)); got != 0 {
		t.Errorf("full node should have 0 children, got %d", got)
	}
	root := d.RootNode()
	if got := len(d.Parents(root)); got != 0 {
		t.Errorf("root should have 0 parents, got %d", got)
	}
	if got := len(d.Children(root)); got != 2 {
		t.Errorf("root should have 2 children, got %d", got)
	}
	// Parent levels are exactly one above; children one below.
	for i := 0; i < d.Size(); i++ {
		for _, p := range d.Parents(i) {
			if d.Node(p).Level != d.Node(i).Level+1 {
				t.Fatalf("node %d parent %d level mismatch", i, p)
			}
			if !d.NodeGeneralizes(p, i) {
				t.Fatalf("parent %d does not generalize child %d", p, i)
			}
		}
		for _, c := range d.Children(i) {
			if d.Node(c).Level != d.Node(i).Level-1 {
				t.Fatalf("node %d child %d level mismatch", i, c)
			}
		}
	}
}

func TestParents1D(t *testing.T) {
	d := NewIPv4OneDim(Bits)
	for i := 0; i < d.Size(); i++ {
		want := 1
		if i == d.RootNode() {
			want = 0
		}
		if got := len(d.Parents(i)); got != want {
			t.Errorf("node %d: %d parents, want %d", i, got, want)
		}
	}
}

func TestFormat(t *testing.T) {
	d1 := NewIPv4OneDim(Bytes)
	k := ip4(181, 7, 20, 6)
	cases := map[int]string{32: "181.7.20.6", 24: "181.7.20.*", 16: "181.7.*", 8: "181.*", 0: "*"}
	for i := 0; i < d1.Size(); i++ {
		bits := d1.Node(i).SrcBits
		if got := d1.Format(d1.Mask(k, i), i); got != cases[bits] {
			t.Errorf("/%d → %q, want %q", bits, got, cases[bits])
		}
	}

	db := NewIPv4OneDim(Bits)
	n22, _ := db.NodeByBits(22, 0)
	if got := db.Format(db.Mask(k, n22), n22); got != "181.7.20.0/22" {
		t.Errorf("bit-granularity format = %q", got)
	}

	d2 := NewIPv4TwoDim(Bytes)
	n, _ := d2.NodeByBits(24, 8)
	got := d2.Format(d2.Mask(Pack2D(ip4(181, 7, 20, 6), ip4(208, 67, 222, 222)), n), n)
	if got != "(181.7.20.* -> 208.*)" {
		t.Errorf("2D format = %q", got)
	}
}

func TestAddrMask(t *testing.T) {
	a := AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0xff, 0xff, 0xff, 0xff, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x02})
	if m := a.Mask(32); m.Hi != 0x20010db800000000 || m.Lo != 0 {
		t.Errorf("mask(32) = %+v", m)
	}
	if m := a.Mask(64); m.Hi != a.Hi || m.Lo != 0 {
		t.Errorf("mask(64) = %+v", m)
	}
	if m := a.Mask(96); m.Hi != a.Hi || m.Lo != 0xaabbccdd00000000 {
		t.Errorf("mask(96) = %+v", m)
	}
	if m := a.Mask(128); m != a {
		t.Errorf("mask(128) = %+v", m)
	}
	if m := a.Mask(0); (m != Addr{}) {
		t.Errorf("mask(0) = %+v", m)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		return AddrFrom16(b).Bytes16() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromIPv4(v).IPv4() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPack2DRoundTrip(t *testing.T) {
	f := func(s, d uint32) bool {
		gs, gd := Unpack2D(Pack2D(s, d))
		return gs == s && gd == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6DomainMask(t *testing.T) {
	d := NewIPv6OneDim(Bytes)
	a := AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	n, _ := d.NodeByBits(16, 0)
	if got := d.Mask(a, n); got.Hi != 0x2001000000000000 || got.Lo != 0 {
		t.Errorf("v6 mask/16 = %+v", got)
	}
	if s := d.Format(d.Mask(a, n), n); s != "2001::/16" {
		t.Errorf("v6 format = %q", s)
	}
}

func TestIPv6TwoDimGLB(t *testing.T) {
	d := NewIPv6TwoDim(Bytes)
	src := AddrFrom16([16]byte{0x20, 0x01, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	dst := AddrFrom16([16]byte{0xfd, 0x00, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	base := AddrPair{Src: src, Dst: dst}
	nA, _ := d.NodeByBits(16, 0)
	nB, _ := d.NodeByBits(0, 16)
	k, node, ok := d.GLB(d.Mask(base, nA), nA, d.Mask(base, nB), nB)
	if !ok {
		t.Fatal("v6 glb should exist")
	}
	want, _ := d.NodeByBits(16, 16)
	if node != want || k != d.Mask(base, want) {
		t.Errorf("v6 glb = %s", d.Format(k, node))
	}
}

func BenchmarkMask2D(b *testing.B) {
	d := NewIPv4TwoDim(Bytes)
	k := Pack2D(0x0a000001, 0x14000002)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= d.Mask(k, i%d.Size())
	}
	_ = sink
}
