package hierarchy

import "fmt"

// Node is one lattice node: a prefix pattern given by how many leading bits
// are kept in each dimension. In one-dimensional domains DstBits is always 0
// and ignored.
type Node struct {
	// SrcBits and DstBits are the kept prefix lengths, in bits.
	SrcBits, DstBits int
	// Level is the generalization distance from the fully specified node,
	// in hierarchy steps (Definition 7 numbers levels from fully specified,
	// level 0, to fully general, level L).
	Level int
}

// Domain describes a hierarchical prefix lattice over key type K. A Domain is
// immutable after construction and safe for concurrent use.
//
// K is the concrete masked-key representation: uint32 for 1D IPv4, uint64 for
// 2D IPv4 (source in the high 32 bits), Addr for 1D 128-bit, AddrPair for 2D
// 128-bit. All lattice logic is shared; only masking, merging and formatting
// differ per carrier.
type Domain[K comparable] struct {
	name     string
	dims     int
	width    int // bits per dimension
	step     int // bits per hierarchy step (8=bytes, 4=nibbles, 1=bits)
	nodes    []Node
	byLevel  [][]int // node indices grouped by Level, ascending
	index    map[[2]int]int
	fullNode int
	rootNode int

	mask   func(k K, srcBits, dstBits int) K
	merge  func(src, dst K) K // take source dim of 1st arg, dest dim of 2nd
	format func(k K, srcBits, dstBits int) string

	// maskTable[i] is node i's projection mask applied to an all-ones key;
	// masking is then a carrier-level AND. fastMask is the devirtualized
	// equivalent of Mask: a single closure over the table with no Node
	// struct load and no inner func-field dispatch. Both are populated by
	// the concrete constructors (nil for carriers without them).
	maskTable []K
	fastMask  func(k K, node int) K
}

// Name returns a human-readable description such as "2D-IPv4-bytes (H=25)".
func (d *Domain[K]) Name() string { return d.name }

// Dims returns 1 or 2.
func (d *Domain[K]) Dims() int { return d.dims }

// Size returns H, the number of lattice nodes.
func (d *Domain[K]) Size() int { return len(d.nodes) }

// Depth returns L, the maximum level (the level of the fully general node).
func (d *Domain[K]) Depth() int { return len(d.byLevel) - 1 }

// Node returns the pattern of node i.
func (d *Domain[K]) Node(i int) Node { return d.nodes[i] }

// NodesByLevel returns node indices grouped by level, from fully specified
// (level 0) to fully general (level L). The caller must not modify the
// returned slices.
func (d *Domain[K]) NodesByLevel() [][]int { return d.byLevel }

// FullNode returns the index of the fully specified node.
func (d *Domain[K]) FullNode() int { return d.fullNode }

// RootNode returns the index of the fully general node (*, or (*,*)).
func (d *Domain[K]) RootNode() int { return d.rootNode }

// NodeByBits returns the node index for the given kept-bits pattern.
func (d *Domain[K]) NodeByBits(srcBits, dstBits int) (int, bool) {
	i, ok := d.index[[2]int{srcBits, dstBits}]
	return i, ok
}

// Mask projects a fully specified key onto node i's pattern.
func (d *Domain[K]) Mask(k K, i int) K {
	n := d.nodes[i]
	return d.mask(k, n.SrcBits, n.DstBits)
}

// MaskTable returns the per-node projection masks for carriers where
// masking is a plain bitwise AND of the key with table[node] — the uint32
// and uint64 IPv4 carriers. Callers holding the concrete key type can then
// mask inline (`k & table[node]`) with no function call at all. ok is false
// for carriers without an integer AND (Addr, AddrPair); use Mask or Masker
// there. The caller must not modify the returned slice.
func (d *Domain[K]) MaskTable() (table []K, ok bool) {
	switch any(d.maskTable).(type) {
	case []uint32, []uint64:
		return d.maskTable, d.maskTable != nil
	default:
		return nil, false
	}
}

// Masker returns a devirtualized masking function equivalent to Mask: one
// closure call over a precomputed per-node mask table, with no Node struct
// load and no func-field dispatch. Every built-in carrier gets a fast
// closure; an unknown carrier falls back to the generic Mask path.
func (d *Domain[K]) Masker() func(k K, node int) K {
	if d.fastMask != nil {
		return d.fastMask
	}
	return d.Mask
}

// NodeGeneralizes reports whether node a's pattern generalizes node b's:
// a keeps at most as many bits as b in every dimension (Definition 1 lifted
// to patterns). A node generalizes itself.
func (d *Domain[K]) NodeGeneralizes(a, b int) bool {
	na, nb := d.nodes[a], d.nodes[b]
	return na.SrcBits <= nb.SrcBits && na.DstBits <= nb.DstBits
}

// Generalizes reports whether prefix (aKey at node a) generalizes prefix
// (bKey at node b): the pattern generalizes and the kept bits agree
// (Definition 1). A prefix generalizes itself.
func (d *Domain[K]) Generalizes(aKey K, a int, bKey K, b int) bool {
	if !d.NodeGeneralizes(a, b) {
		return false
	}
	na := d.nodes[a]
	return d.mask(bKey, na.SrcBits, na.DstBits) == aKey
}

// ProperlyGeneralizes reports a ≺ b on prefixes: generalizes and not equal.
func (d *Domain[K]) ProperlyGeneralizes(aKey K, a int, bKey K, b int) bool {
	if a == b && aKey == bKey {
		return false
	}
	return d.Generalizes(aKey, a, bKey, b)
}

// GLB returns the greatest lower bound of two prefixes (Definition 12): their
// unique most-general common descendant. ok is false when the prefixes have
// no common descendant (the paper then treats glb as an item with count 0).
func (d *Domain[K]) GLB(aKey K, a int, bKey K, b int) (K, int, bool) {
	na, nb := d.nodes[a], d.nodes[b]
	srcBits := max(na.SrcBits, nb.SrcBits)
	dstBits := max(na.DstBits, nb.DstBits)
	node, ok := d.index[[2]int{srcBits, dstBits}]
	if !ok {
		var zero K
		return zero, 0, false
	}
	// Candidate key: source dimension from the deeper-source prefix,
	// destination dimension from the deeper-destination prefix.
	srcDonor := aKey
	if nb.SrcBits > na.SrcBits {
		srcDonor = bKey
	}
	dstDonor := aKey
	if nb.DstBits > na.DstBits {
		dstDonor = bKey
	}
	cand := d.merge(srcDonor, dstDonor)
	// The glb exists only if the candidate is consistent with both inputs
	// (i.e. the prefixes agree on their overlapping bits).
	if d.mask(cand, na.SrcBits, na.DstBits) != aKey ||
		d.mask(cand, nb.SrcBits, nb.DstBits) != bKey {
		var zero K
		return zero, 0, false
	}
	return cand, node, true
}

// Parents returns the immediate parents of node i: one hierarchy step more
// general in exactly one dimension. The fully general node has no parents.
func (d *Domain[K]) Parents(i int) []int {
	n := d.nodes[i]
	var out []int
	if n.SrcBits > 0 {
		if p, ok := d.index[[2]int{n.SrcBits - d.step, n.DstBits}]; ok {
			out = append(out, p)
		}
	}
	if d.dims == 2 && n.DstBits > 0 {
		if p, ok := d.index[[2]int{n.SrcBits, n.DstBits - d.step}]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Children returns the immediate children of node i: one hierarchy step more
// specific in exactly one dimension.
func (d *Domain[K]) Children(i int) []int {
	n := d.nodes[i]
	var out []int
	if n.SrcBits < d.width {
		if c, ok := d.index[[2]int{n.SrcBits + d.step, n.DstBits}]; ok {
			out = append(out, c)
		}
	}
	if d.dims == 2 && n.DstBits < d.width {
		if c, ok := d.index[[2]int{n.SrcBits, n.DstBits + d.step}]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Format renders a prefix at node i, e.g. "181.7.*" or "(181.7.* -> 10.0.0.1)".
func (d *Domain[K]) Format(k K, i int) string {
	n := d.nodes[i]
	return d.format(k, n.SrcBits, n.DstBits)
}

// buildNodes enumerates lattice nodes for the given shape. Nodes are ordered
// by level ascending (fully specified first) and, within a level, by source
// bits descending; the order is fixed but otherwise arbitrary — RHHH's update
// only needs a uniform draw over node indices.
func buildNodes(dims, width, step int) (nodes []Node, byLevel [][]int, index map[[2]int]int, full, root int) {
	if width%step != 0 {
		panic(fmt.Sprintf("hierarchy: width %d not divisible by step %d", width, step))
	}
	perDim := width/step + 1
	maxLevel := (perDim - 1) * dims
	index = make(map[[2]int]int)
	byLevel = make([][]int, maxLevel+1)
	for lvl := 0; lvl <= maxLevel; lvl++ {
		for sSteps := perDim - 1; sSteps >= 0; sSteps-- {
			srcGen := (perDim - 1) - sSteps // generalization steps in src
			dGen := lvl - srcGen
			if dGen < 0 || dGen > (perDim-1)*(dims-1) {
				continue
			}
			srcBits := sSteps * step
			dstBits := 0
			if dims == 2 {
				dstBits = width - dGen*step
			}
			i := len(nodes)
			nodes = append(nodes, Node{SrcBits: srcBits, DstBits: dstBits, Level: lvl})
			index[[2]int{srcBits, dstBits}] = i
			byLevel[lvl] = append(byLevel[lvl], i)
		}
	}
	full = index[[2]int{width, width * (dims - 1)}]
	root = index[[2]int{0, 0}]
	return nodes, byLevel, index, full, root
}
