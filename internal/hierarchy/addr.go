// Package hierarchy implements the hierarchical prefix domains of the paper:
// one- and two-dimensional IP prefix lattices at bit, nibble, or byte
// granularity, over 32-bit (IPv4) or 128-bit (IPv6) addresses.
//
// A lattice node is a prefix *pattern* — how many leading bits are kept in
// each dimension (e.g. "source /24, destination /16"). A prefix is a pattern
// plus concrete masked bits (e.g. 181.7.20.*). The paper's H is the number of
// lattice nodes: 5 for 1D IPv4 bytes, 33 for 1D IPv4 bits, 25 for 2D IPv4
// bytes (Table 1), 17 for 1D IPv6 bytes, and so on.
//
// The package provides the generalization partial order (Definition 1),
// G(p|P) support sets (Definition 2), hierarchy levels (Definition 7), and
// greatest lower bounds (Definition 12) that both RHHH and the deterministic
// baselines are built on.
package hierarchy

import (
	"fmt"
	"net/netip"
)

// Addr is a 128-bit address in big-endian order: Hi holds the first 8 bytes,
// Lo the last 8. IPv4 addresses occupy the top 32 bits of Hi so that prefix
// masking is uniform across families.
type Addr struct {
	Hi, Lo uint64
}

// AddrFromIPv4 places a 32-bit IPv4 address in the top bits of an Addr.
func AddrFromIPv4(v uint32) Addr {
	return Addr{Hi: uint64(v) << 32}
}

// IPv4 returns the top 32 bits of the address as an IPv4 address value.
func (a Addr) IPv4() uint32 { return uint32(a.Hi >> 32) }

// AddrFrom16 builds an Addr from 16 big-endian bytes.
func AddrFrom16(b [16]byte) Addr {
	var a Addr
	for i := 0; i < 8; i++ {
		a.Hi = a.Hi<<8 | uint64(b[i])
		a.Lo = a.Lo<<8 | uint64(b[i+8])
	}
	return a
}

// Bytes16 returns the address as 16 big-endian bytes.
func (a Addr) Bytes16() [16]byte {
	var b [16]byte
	hi, lo := a.Hi, a.Lo
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		b[i+8] = byte(lo)
		hi >>= 8
		lo >>= 8
	}
	return b
}

// Mask zeroes all but the leading bits of the address. bits must be in
// [0, 128]; values outside are clamped.
func (a Addr) Mask(bits int) Addr {
	switch {
	case bits <= 0:
		return Addr{}
	case bits >= 128:
		return a
	case bits <= 64:
		return Addr{Hi: a.Hi & (^uint64(0) << (64 - bits))}
	default:
		return Addr{Hi: a.Hi, Lo: a.Lo & (^uint64(0) << (128 - bits))}
	}
}

// String formats the address as an IPv6 address literal.
func (a Addr) String() string {
	return netip.AddrFrom16(a.Bytes16()).String()
}

// AddrPair is a (source, destination) address pair: the key type for
// two-dimensional 128-bit domains.
type AddrPair struct {
	Src, Dst Addr
}

// mask32 returns a 32-bit mask keeping the leading bits.
func mask32(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// formatPrefix32 renders a masked IPv4 prefix. Byte-aligned prefixes use the
// paper's star form (181.7.*); others use CIDR (181.7.20.0/22). A zero-length
// prefix renders as "*".
func formatPrefix32(v uint32, bits int) string {
	if bits <= 0 {
		return "*"
	}
	b := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	if bits%8 == 0 {
		n := bits / 8
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += "."
			}
			s += fmt.Sprintf("%d", b[i])
		}
		if n < 4 {
			s += ".*"
		}
		return s
	}
	return fmt.Sprintf("%s/%d", netip.AddrFrom4(b), bits)
}

// formatPrefix128 renders a masked 128-bit prefix in CIDR form, or "*" for a
// zero-length prefix.
func formatPrefix128(a Addr, bits int) string {
	if bits <= 0 {
		return "*"
	}
	return fmt.Sprintf("%s/%d", a, bits)
}
