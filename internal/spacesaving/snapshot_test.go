package spacesaving

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"sort"
	"testing"

	"rhhh/internal/fastrand"
)

// mergeMapSort is the reference merge implementation the Merger replaced: a
// per-query union map, two sorts, and a rebuilt summary. Kept test-only to
// cross-check Merger semantics and to benchmark the allocation win.
func mergeMapSort[K comparable](a, b *Summary[K], capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	type pair struct {
		key          K
		upper, lower uint64
	}
	union := make(map[K]pair, a.Len()+b.Len())
	collect := func(from, other *Summary[K]) {
		from.ForEach(func(k K, count, err uint64) {
			if _, seen := union[k]; seen {
				return
			}
			oUp, oLo := other.Bounds(k)
			union[k] = pair{key: k, upper: count + oUp, lower: count - err + oLo}
		})
	}
	collect(a, b)
	collect(b, a)

	pairs := make([]pair, 0, len(union))
	for _, p := range union {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].upper > pairs[j].upper })
	if len(pairs) > capacity {
		pairs = pairs[:capacity]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].upper < pairs[j].upper })
	out := New[K](capacity)
	out.n = a.n + b.n
	tail := nilIdx
	for _, p := range pairs {
		c := int32(out.used)
		out.used++
		out.hot[c].key = p.key
		out.cold[c].err = p.upper - p.lower
		out.indexInsert(c, out.hash(p.key))
		if tail == nilIdx || out.buckets[tail].count != p.upper {
			tail = out.newBucket(p.upper, tail, nilIdx)
		}
		out.pushCounter(tail, c)
	}
	return out
}

func putU64(b []byte, k uint64) []byte { return binary.BigEndian.AppendUint64(b, k) }

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("short key")
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func TestSnapshotMatchesForEach(t *testing.T) {
	s := New[uint64](32)
	r := fastrand.New(1)
	for i := 0; i < 5000; i++ {
		s.Increment(r.Uint64n(100))
	}
	sn := s.Snapshot()
	if sn.N != s.N() || sn.Min != s.MinCount() || sn.Cap != s.Capacity() {
		t.Fatalf("snapshot metadata %d/%d/%d vs %d/%d/%d",
			sn.N, sn.Min, sn.Cap, s.N(), s.MinCount(), s.Capacity())
	}
	i := 0
	s.ForEach(func(k uint64, count, err uint64) {
		if sn.Keys[i] != k || sn.Upper[i] != count || sn.Lower[i] != count-err {
			t.Fatalf("entry %d: snapshot (%d,%d,%d) vs live (%d,%d,%d)",
				i, sn.Keys[i], sn.Upper[i], sn.Lower[i], k, count, count-err)
		}
		i++
	})
	if i != sn.Len() {
		t.Fatalf("snapshot has %d entries, ForEach visited %d", sn.Len(), i)
	}
	// Bounds agree for monitored and unmonitored keys.
	for k := uint64(0); k < 120; k++ {
		su, sl := sn.Bounds(k)
		lu, ll := s.Bounds(k)
		if su != lu || sl != ll {
			t.Fatalf("Bounds(%d): snapshot (%d,%d) vs live (%d,%d)", k, su, sl, lu, ll)
		}
	}
}

func TestSnapshotIntoReusesBuffers(t *testing.T) {
	s := New[uint64](64)
	r := fastrand.New(2)
	for i := 0; i < 10000; i++ {
		s.Increment(r.Uint64n(200))
	}
	var sn Snapshot[uint64]
	s.SnapshotInto(&sn)
	allocs := testing.AllocsPerRun(100, func() {
		s.SnapshotInto(&sn)
	})
	if allocs != 0 {
		t.Fatalf("SnapshotInto allocated %.1f objects per run, want 0", allocs)
	}
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	s := New[uint64](32)
	r := fastrand.New(3)
	for i := 0; i < 20000; i++ {
		s.Increment(r.Uint64n(1 + r.Uint64n(300)))
	}
	sn := s.Snapshot()
	re := New[uint64](32)
	re.LoadSnapshot(sn)
	sn2 := re.Snapshot()
	if !slices.Equal(sn.Keys, sn2.Keys) || !slices.Equal(sn.Upper, sn2.Upper) ||
		!slices.Equal(sn.Lower, sn2.Lower) || sn.N != sn2.N {
		t.Fatal("LoadSnapshot did not reproduce the snapshot")
	}
	// The rebuilt summary stays a working Space Saving instance.
	for i := 0; i < 1000; i++ {
		re.Increment(7)
	}
	if up, lo := re.Bounds(7); up < 1000 || lo > up {
		t.Fatalf("rebuilt summary broken after increments: bounds (%d,%d)", up, lo)
	}
}

// TestMergerDefinition4Contract: on randomized streams split across
// summaries of different capacities, the merged bounds must bracket the
// exact combined counts, and the merged error must respect the Definition 4
// budget upper−lower ≤ Σ εᵢNᵢ with εᵢ = 1/capᵢ.
func TestMergerDefinition4Contract(t *testing.T) {
	r := fastrand.New(7)
	for trial := 0; trial < 30; trial++ {
		caps := []int{16 + int(r.Uint64n(48)), 16 + int(r.Uint64n(48)), 16 + int(r.Uint64n(48))}
		sums := make([]*Summary[uint64], len(caps))
		for i, c := range caps {
			sums[i] = New[uint64](c)
		}
		exact := map[uint64]uint64{}
		total := 10000 + int(r.Uint64n(20000))
		for i := 0; i < total; i++ {
			k := r.Uint64n(1 + r.Uint64n(400))
			exact[k]++
			sums[i%len(sums)].Increment(k)
		}
		var m Merger[uint64]
		m.Reset()
		budget := 0.0
		for _, s := range sums {
			m.Add(s.Snapshot())
			budget += float64(s.N()) / float64(s.Capacity())
		}
		var sn Snapshot[uint64]
		m.MergeInto(&sn, 64)
		if sn.N != uint64(total) {
			t.Fatalf("trial %d: merged N=%d want %d", trial, sn.N, total)
		}
		for i, k := range sn.Keys {
			f := exact[k]
			if f > sn.Upper[i] {
				t.Fatalf("trial %d key %d: upper %d < true %d", trial, k, sn.Upper[i], f)
			}
			if f < sn.Lower[i] {
				t.Fatalf("trial %d key %d: lower %d > true %d", trial, k, sn.Lower[i], f)
			}
			if spread := float64(sn.Upper[i] - sn.Lower[i]); spread > budget+1e-9 {
				t.Fatalf("trial %d key %d: spread %.0f exceeds Definition-4 budget %.2f",
					trial, k, spread, budget)
			}
		}
		// Keys the merge dropped or never saw are bounded by the merged Min.
		kept := make(map[uint64]bool, sn.Len())
		for _, k := range sn.Keys {
			kept[k] = true
		}
		for k, f := range exact {
			if !kept[k] && f > sn.Min {
				t.Fatalf("trial %d: unmonitored key %d has f=%d above merged Min %d",
					trial, k, f, sn.Min)
			}
		}
	}
}

// TestMergerMatchesMapSortReference: the accumulator and the reference
// map+sort merge agree on bounds for every key they both retain.
func TestMergerMatchesMapSortReference(t *testing.T) {
	r := fastrand.New(13)
	for trial := 0; trial < 20; trial++ {
		a := New[uint64](24)
		b := New[uint64](24)
		for i := 0; i < 15000; i++ {
			k := r.Uint64n(1 + r.Uint64n(200))
			if i%2 == 0 {
				a.Increment(k)
			} else {
				b.Increment(k)
			}
		}
		ref := mergeMapSort(a, b, 24)
		got := Merge(a, b, 24)
		if got.Len() != ref.Len() || got.N() != ref.N() {
			t.Fatalf("trial %d: Len/N %d/%d vs reference %d/%d",
				trial, got.Len(), got.N(), ref.Len(), ref.N())
		}
		got.ForEach(func(k uint64, count, err uint64) {
			rc, re, ok := ref.Query(k)
			if !ok {
				// Tie at the truncation boundary: both kept a key with the
				// same upper bound. Accept when the reference's smallest
				// retained upper equals this key's.
				if count != ref.MinCount() && ref.Len() == ref.Capacity() {
					t.Fatalf("trial %d: key %d (count %d) missing from reference", trial, k, count)
				}
				return
			}
			if rc != count || re != err {
				t.Fatalf("trial %d key %d: (%d,%d) vs reference (%d,%d)",
					trial, k, count, err, rc, re)
			}
		})
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	s := New[uint64](32)
	r := fastrand.New(21)
	for i := 0; i < 25000; i++ {
		s.Increment(r.Uint64n(1 + r.Uint64n(300)))
	}
	sn := s.Snapshot()
	enc := sn.AppendBinary(nil, putU64)

	var dec Snapshot[uint64]
	rest, err := dec.Decode(enc, getU64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !slices.Equal(sn.Keys, dec.Keys) || !slices.Equal(sn.Upper, dec.Upper) ||
		!slices.Equal(sn.Lower, dec.Lower) || sn.N != dec.N || sn.Min != dec.Min || sn.Cap != dec.Cap {
		t.Fatal("decoded snapshot differs from original")
	}
	// Re-encoding is bit-identical (deterministic format).
	if re := dec.AppendBinary(nil, putU64); !bytes.Equal(enc, re) {
		t.Fatal("re-encoding is not bit-identical")
	}
}

func TestSnapshotDecodeRejectsCorruptInput(t *testing.T) {
	s := New[uint64](8)
	for k := uint64(0); k < 10; k++ {
		for i := uint64(0); i <= k; i++ {
			s.Increment(k)
		}
	}
	enc := s.Snapshot().AppendBinary(nil, putU64)

	var dec Snapshot[uint64]
	// Every strict prefix must be rejected as truncated.
	for i := 0; i < len(enc); i++ {
		if _, err := dec.Decode(enc[:i], getU64); err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(enc))
		}
	}
	// Unknown version.
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := dec.Decode(bad, getU64); err == nil {
		t.Fatal("bad version accepted")
	}
	// More entries than capacity.
	craft := func(capacity, entries uint64, entry func(buf []byte, i uint64) []byte) []byte {
		b := []byte{snapshotVersion}
		b = binary.AppendUvarint(b, capacity)
		b = binary.AppendUvarint(b, 100) // n
		b = binary.AppendUvarint(b, 0)   // min
		b = binary.AppendUvarint(b, entries)
		for i := uint64(0); i < entries; i++ {
			b = entry(b, i)
		}
		return b
	}
	over := craft(2, 3, func(b []byte, i uint64) []byte {
		b = putU64(b, i)
		b = binary.AppendUvarint(b, 10-i) // upper
		return binary.AppendUvarint(b, 0) // err
	})
	if _, err := dec.Decode(over, getU64); err == nil {
		t.Fatal("entries > capacity accepted")
	}
	// Error larger than the upper bound.
	badErr := craft(4, 1, func(b []byte, _ uint64) []byte {
		b = putU64(b, 1)
		b = binary.AppendUvarint(b, 5)
		return binary.AppendUvarint(b, 6)
	})
	if _, err := dec.Decode(badErr, getU64); err == nil {
		t.Fatal("err > upper accepted")
	}
	// Ascending upper bounds.
	unsorted := craft(4, 2, func(b []byte, i uint64) []byte {
		b = putU64(b, i)
		b = binary.AppendUvarint(b, 5+i)
		return binary.AppendUvarint(b, 0)
	})
	if _, err := dec.Decode(unsorted, getU64); err == nil {
		t.Fatal("ascending upper bounds accepted")
	}
	// Duplicate keys.
	dup := craft(4, 2, func(b []byte, _ uint64) []byte {
		b = putU64(b, 7)
		b = binary.AppendUvarint(b, 5)
		return binary.AppendUvarint(b, 0)
	})
	if _, err := dec.Decode(dup, getU64); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	// Zero capacity.
	zeroCap := craft(0, 0, nil)
	if _, err := dec.Decode(zeroCap, getU64); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func buildMergeBenchPair() (a, b *Summary[uint64]) {
	a = New[uint64](1024)
	b = New[uint64](1024)
	r := fastrand.New(42)
	for i := 0; i < 400000; i++ {
		k := r.Uint64n(1 + r.Uint64n(4096))
		if i%2 == 0 {
			a.Increment(k)
		} else {
			b.Increment(k)
		}
	}
	return a, b
}

// BenchmarkMergeMapSort measures the reference map+sort merge the Merger
// replaced; compare allocs/op against BenchmarkMergerMergeInto.
func BenchmarkMergeMapSort(b *testing.B) {
	x, y := buildMergeBenchPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeMapSort(x, y, 1024)
	}
}

// BenchmarkMergerMergeInto measures the snapshot accumulator on the same
// workload with all scratch reused, as the sharded query path runs it.
func BenchmarkMergerMergeInto(b *testing.B) {
	x, y := buildMergeBenchPair()
	sx, sy := x.Snapshot(), y.Snapshot()
	var m Merger[uint64]
	var dst Snapshot[uint64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.Add(sx)
		m.Add(sy)
		m.MergeInto(&dst, 1024)
	}
}
