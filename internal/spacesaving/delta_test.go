package spacesaving

import (
	"testing"

	"rhhh/internal/fastrand"
)

// putU64/getU64 come from snapshot_test.go.

// snapshotsEqual compares every observable field.
func snapshotsEqual(a, b *Snapshot[uint64]) bool {
	if a.N != b.N || a.Min != b.Min || a.Cap != b.Cap || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.Upper[i] != b.Upper[i] || a.Lower[i] != b.Lower[i] {
			return false
		}
	}
	return true
}

// TestDeltaRoundTrip drives a live summary through skewed traffic, snapshots
// it at staggered points, and checks that every snapshot delta decodes back
// bit-for-bit from its base — including bases several reports old, keys that
// were evicted and re-admitted, and rank churn.
func TestDeltaRoundTrip(t *testing.T) {
	rng := fastrand.New(7)
	s := New[uint64](64)
	var dc DeltaCoder[uint64]
	base := s.Snapshot()
	for step := 0; step < 200; step++ {
		// Skewed updates with a rotating hot set so ranks churn and keys
		// evict/readmit across reports.
		for i := 0; i < 500; i++ {
			k := rng.Uint64n(40)
			if rng.Uint64n(10) == 0 {
				k = 1000 + rng.Uint64n(200) // tail spray forces evictions
			}
			if step > 100 {
				k += 3 // shift the hot set mid-stream
			}
			s.Increment(k)
		}
		cur := s.Snapshot()
		delta := dc.AppendDelta(nil, cur, base, putU64)
		var got Snapshot[uint64]
		rest, err := dc.DecodeDelta(&got, delta, base, getU64)
		if err != nil {
			t.Fatalf("step %d: decode: %v", step, err)
		}
		if len(rest) != 0 {
			t.Fatalf("step %d: %d trailing bytes", step, len(rest))
		}
		if !snapshotsEqual(cur, &got) {
			t.Fatalf("step %d: delta round trip diverged", step)
		}
		// Advance the base only every third report: deltas must also be
		// correct against stale bases (the unacked-report window).
		if step%3 == 0 {
			base = cur
		}
	}
}

// TestDeltaRoundTripEmptyAndIdentity covers the degenerate shapes: empty
// base, empty target, identical snapshots (all-reference encoding).
func TestDeltaRoundTripEmptyAndIdentity(t *testing.T) {
	var dc DeltaCoder[uint64]
	s := New[uint64](8)
	empty := s.Snapshot()
	for i := 0; i < 100; i++ {
		s.Increment(uint64(i % 5))
	}
	full := s.Snapshot()

	cases := []struct {
		name      string
		base, cur *Snapshot[uint64]
	}{
		{"empty-to-full", empty, full},
		{"full-to-full", full, full},
		{"full-to-empty", full, empty},
		{"empty-to-empty", empty, empty},
	}
	for _, tc := range cases {
		delta := dc.AppendDelta(nil, tc.cur, tc.base, putU64)
		var got Snapshot[uint64]
		if _, err := dc.DecodeDelta(&got, delta, tc.base, getU64); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !snapshotsEqual(tc.cur, &got) {
			t.Fatalf("%s: round trip diverged", tc.name)
		}
		if tc.name == "full-to-full" && len(delta) > 5+2*len(full.Keys) {
			t.Fatalf("identity delta is %d bytes for %d entries — references not compact", len(delta), len(full.Keys))
		}
	}
}

// TestDeltaDecodeRejectsCorruptInput: truncations always error, bit flips
// either error or decode into a structurally valid snapshot — never panic,
// never produce an inconsistent one.
func TestDeltaDecodeRejectsCorruptInput(t *testing.T) {
	s := New[uint64](32)
	rng := fastrand.New(3)
	for i := 0; i < 5000; i++ {
		s.Increment(rng.Uint64n(50))
	}
	base := s.Snapshot()
	for i := 0; i < 2000; i++ {
		s.Increment(rng.Uint64n(60))
	}
	cur := s.Snapshot()
	var dc DeltaCoder[uint64]
	delta := dc.AppendDelta(nil, cur, base, putU64)

	for cut := 0; cut < len(delta); cut++ {
		var got Snapshot[uint64]
		if rest, err := dc.DecodeDelta(&got, delta[:cut], base, getU64); err == nil && len(rest) == 0 {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), delta...)
		bad[rng.Uint64n(uint64(len(bad)))] ^= byte(1 << rng.Uint64n(8))
		var got Snapshot[uint64]
		rest, err := dc.DecodeDelta(&got, bad, base, getU64)
		if err != nil || len(rest) != 0 {
			continue
		}
		// A surviving decode must still be structurally valid.
		seen := make(map[uint64]bool)
		for i := range got.Keys {
			if seen[got.Keys[i]] {
				t.Fatal("corrupt delta decoded with duplicate keys")
			}
			seen[got.Keys[i]] = true
			if got.Lower[i] > got.Upper[i] {
				t.Fatal("corrupt delta decoded with lower > upper")
			}
			if i > 0 && got.Upper[i] > got.Upper[i-1] {
				t.Fatal("corrupt delta decoded unsorted")
			}
		}
	}
	// Destination must not alias the base.
	if _, err := dc.DecodeDelta(base, delta, base, getU64); err == nil {
		t.Fatal("aliased decode accepted")
	}
}

// TestDeltaCoderReuse pins that a reused coder (the steady-state path) gives
// the same bytes and results as a fresh one.
func TestDeltaCoderReuse(t *testing.T) {
	s := New[uint64](16)
	for i := 0; i < 1000; i++ {
		s.Increment(uint64(i % 20))
	}
	base := s.Snapshot()
	for i := 0; i < 300; i++ {
		s.Increment(uint64(i % 23))
	}
	cur := s.Snapshot()

	var reused DeltaCoder[uint64]
	var buf []byte
	for r := 0; r < 5; r++ {
		buf = reused.AppendDelta(buf[:0], cur, base, putU64)
		var fresh DeltaCoder[uint64]
		want := fresh.AppendDelta(nil, cur, base, putU64)
		if string(buf) != string(want) {
			t.Fatalf("round %d: reused coder encoded differently", r)
		}
		var got Snapshot[uint64]
		if _, err := reused.DecodeDelta(&got, buf, base, getU64); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !snapshotsEqual(cur, &got) {
			t.Fatalf("round %d: reused coder round trip diverged", r)
		}
	}
}

// TestSnapshotCopyFrom: the deep copy matches and does not share storage.
func TestSnapshotCopyFrom(t *testing.T) {
	s := New[uint64](8)
	for i := 0; i < 500; i++ {
		s.Increment(uint64(i % 6))
	}
	src := s.Snapshot()
	var dst Snapshot[uint64]
	dst.CopyFrom(src)
	if !snapshotsEqual(src, &dst) {
		t.Fatal("copy differs from source")
	}
	src.Upper[0]++
	if dst.Upper[0] == src.Upper[0] {
		t.Fatal("copy shares storage with source")
	}
}
