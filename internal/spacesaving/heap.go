package spacesaving

// Heap is a min-heap-backed Space Saving instance. Updates are O(log c)
// where c is the capacity, for unit and weighted increments alike. It
// provides the same estimation guarantees as Summary; the paper notes the
// O(H·log(1/ε)) update time of MST on weighted inputs comes from exactly
// this kind of structure. Summary is preferred on unitary streams (O(1));
// Heap is the backend for weighted streams and the ablation benchmarks.
type Heap[K comparable] struct {
	capacity int
	pos      map[K]int // key → index in heap
	entries  []heapEntry[K]
	n        uint64
}

type heapEntry[K comparable] struct {
	key   K
	count uint64
	err   uint64
}

// NewHeap returns a heap-backed Space Saving instance with the given number
// of counters. capacity must be at least 1.
func NewHeap[K comparable](capacity int) *Heap[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	return &Heap[K]{
		capacity: capacity,
		pos:      make(map[K]int, capacity),
		entries:  make([]heapEntry[K], 0, capacity),
	}
}

// Capacity returns the number of counters the instance was built with.
func (h *Heap[K]) Capacity() int { return h.capacity }

// N returns the total weight processed so far.
func (h *Heap[K]) N() uint64 { return h.n }

// Len returns the number of currently monitored keys.
func (h *Heap[K]) Len() int { return len(h.entries) }

// MinCount returns the smallest tracked count, or 0 while below capacity.
func (h *Heap[K]) MinCount() uint64 {
	if len(h.entries) < h.capacity || len(h.entries) == 0 {
		return 0
	}
	return h.entries[0].count
}

// Increment adds one occurrence of key k.
func (h *Heap[K]) Increment(k K) { h.IncrementBy(k, 1) }

// IncrementBy adds weight w of key k in O(log capacity).
func (h *Heap[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	h.n += w
	if i, ok := h.pos[k]; ok {
		h.entries[i].count += w
		h.siftDown(i)
		return
	}
	if len(h.entries) < h.capacity {
		h.entries = append(h.entries, heapEntry[K]{key: k, count: w})
		h.pos[k] = len(h.entries) - 1
		h.siftUp(len(h.entries) - 1)
		return
	}
	// Evict the minimum.
	minCount := h.entries[0].count
	delete(h.pos, h.entries[0].key)
	h.entries[0] = heapEntry[K]{key: k, count: minCount + w, err: minCount}
	h.pos[k] = 0
	h.siftDown(0)
}

// Query returns the counter value, its maximum overestimation error, and
// whether k is currently monitored.
func (h *Heap[K]) Query(k K) (count, err uint64, ok bool) {
	i, ok := h.pos[k]
	if !ok {
		return 0, 0, false
	}
	return h.entries[i].count, h.entries[i].err, true
}

// Bounds returns upper and lower frequency bounds for k, matching
// Summary.Bounds semantics.
func (h *Heap[K]) Bounds(k K) (upper, lower uint64) {
	if i, ok := h.pos[k]; ok {
		return h.entries[i].count, h.entries[i].count - h.entries[i].err
	}
	return h.MinCount(), 0
}

// ForEach calls fn for every monitored key (order unspecified).
func (h *Heap[K]) ForEach(fn func(k K, count, err uint64)) {
	for _, e := range h.entries {
		fn(e.key, e.count, e.err)
	}
}

// Reset clears all state.
func (h *Heap[K]) Reset() {
	h.pos = make(map[K]int, h.capacity)
	h.entries = h.entries[:0]
	h.n = 0
}

func (h *Heap[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].count <= h.entries[i].count {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap[K]) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.entries[l].count < h.entries[smallest].count {
			smallest = l
		}
		if r < n && h.entries[r].count < h.entries[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(smallest, i)
		i = smallest
	}
}

func (h *Heap[K]) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].key] = i
	h.pos[h.entries[j].key] = j
}
