package spacesaving

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot delta encoding, version 1: one snapshot expressed relative to a
// base snapshot both sides already share. The steady-state observation behind
// it: between two reports most monitored keys keep their counts and roughly
// their rank, so an entry is usually "the key at base position j, counts
// unchanged" — one small uvarint — instead of a full key plus two count
// varints (~15 bytes for a 2D key). Layout:
//
//	byte    version (1)
//	uvarint capacity
//	uvarint n
//	uvarint min
//	uvarint number of entries
//	entries × { uvarint code, ... } in the NEW snapshot order:
//	  code == 0            new key: key (caller codec), uvarint upper,
//	                       uvarint upper−lower
//	  code&1 == 1          base reference: base index = prevIndex +
//	                       zigzag⁻¹(code>>2) (prevIndex starts at −1);
//	                       code&2 set means the counts moved, followed by
//	                       zigzag Δupper, zigzag Δlower
//
// Because the new order is explicit and every entry is fully determined by
// the base plus the delta, decode(base, encode(base, sn)) reproduces sn
// bit-for-bit — the property the fault-tolerant report protocol is built on.
const snapshotDeltaVersion = 1

// zigzag maps a signed delta onto the unsigned varint space.
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// DeltaCoder encodes and decodes snapshot deltas, retaining all scratch (the
// base key index, reference stamps, the duplicate-key check set) across calls
// so steady-state coding allocates nothing beyond the output buffer. Not safe
// for concurrent use.
type DeltaCoder[K comparable] struct {
	idx   map[K]int32 // encode: base key → base index
	used  []int32     // decode: round stamp per referenced base index
	seen  map[K]int32 // decode: duplicate-key detection
	round int32
}

// AppendDelta appends the delta encoding of sn relative to base and returns
// the extended buffer. putKey appends one key's fixed-width encoding (the
// same codec AppendBinary uses).
func (dc *DeltaCoder[K]) AppendDelta(buf []byte, sn, base *Snapshot[K], putKey func([]byte, K) []byte) []byte {
	if dc.idx == nil {
		dc.idx = make(map[K]int32, len(base.Keys))
	} else {
		clear(dc.idx)
	}
	for i, k := range base.Keys {
		dc.idx[k] = int32(i)
	}
	buf = append(buf, snapshotDeltaVersion)
	buf = binary.AppendUvarint(buf, uint64(sn.Cap))
	buf = binary.AppendUvarint(buf, sn.N)
	buf = binary.AppendUvarint(buf, sn.Min)
	buf = binary.AppendUvarint(buf, uint64(len(sn.Keys)))
	prev := int32(-1)
	for i, k := range sn.Keys {
		j, ok := dc.idx[k]
		if !ok {
			buf = append(buf, 0)
			buf = putKey(buf, k)
			buf = binary.AppendUvarint(buf, sn.Upper[i])
			buf = binary.AppendUvarint(buf, sn.Upper[i]-sn.Lower[i])
			continue
		}
		code := zigzag(int64(j)-int64(prev))<<2 | 1
		changed := sn.Upper[i] != base.Upper[j] || sn.Lower[i] != base.Lower[j]
		if changed {
			code |= 2
		}
		buf = binary.AppendUvarint(buf, code)
		if changed {
			buf = binary.AppendUvarint(buf, zigzag(int64(sn.Upper[i])-int64(base.Upper[j])))
			buf = binary.AppendUvarint(buf, zigzag(int64(sn.Lower[i])-int64(base.Lower[j])))
		}
		prev = j
	}
	return buf
}

// DecodeDelta reconstructs the snapshot encoded by AppendDelta into dst and
// returns the remaining bytes. dst must not alias base. All structural
// invariants are validated — truncation, out-of-range or repeated base
// references, duplicate keys, unsorted upper bounds, count underflow — so a
// successful decode is exactly as trustworthy as a full Snapshot.Decode; on
// error dst's contents are unspecified (callers stage into scratch and swap).
func (dc *DeltaCoder[K]) DecodeDelta(dst *Snapshot[K], b []byte, base *Snapshot[K], getKey func([]byte) (K, []byte, error)) (rest []byte, err error) {
	if dst == base {
		return nil, errors.New("spacesaving: delta decode destination aliases base")
	}
	if len(b) < 1 {
		return nil, errors.New("spacesaving: short snapshot delta")
	}
	if b[0] != snapshotDeltaVersion {
		return nil, fmt.Errorf("spacesaving: unknown snapshot delta version %d", b[0])
	}
	b = b[1:]
	var capacity, n, min, entries uint64
	for _, p := range []*uint64{&capacity, &n, &min, &entries} {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("spacesaving: truncated snapshot delta header")
		}
		*p, b = v, b[w:]
	}
	if capacity < 1 || capacity > snapMaxCap {
		return nil, fmt.Errorf("spacesaving: snapshot delta capacity %d out of range", capacity)
	}
	if entries > capacity {
		return nil, fmt.Errorf("spacesaving: snapshot delta has %d entries for capacity %d", entries, capacity)
	}
	if cap(dc.used) < base.Len() {
		dc.used = make([]int32, base.Len())
	}
	dc.used = dc.used[:base.Len()]
	dc.round++
	if dc.round == 0 { // wrapped: clear stale stamps
		clear(dc.used)
		dc.round = 1
	}
	if dc.seen == nil {
		dc.seen = make(map[K]int32)
	} else {
		clear(dc.seen)
	}
	dst.reset()
	dst.Cap = int(capacity)
	dst.N = n
	dst.Min = min
	prevRef := int64(-1)
	prevUp := ^uint64(0)
	for i := uint64(0); i < entries; i++ {
		code, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("spacesaving: truncated snapshot delta entry")
		}
		b = b[w:]
		var k K
		var up, lo uint64
		switch {
		case code == 0: // new key
			var rest []byte
			k, rest, err = getKey(b)
			if err != nil {
				return nil, err
			}
			b = rest
			up, w = binary.Uvarint(b)
			if w <= 0 {
				return nil, errors.New("spacesaving: truncated snapshot delta entry")
			}
			b = b[w:]
			var e uint64
			e, w = binary.Uvarint(b)
			if w <= 0 {
				return nil, errors.New("spacesaving: truncated snapshot delta entry")
			}
			b = b[w:]
			if e > up {
				return nil, fmt.Errorf("spacesaving: snapshot delta error %d exceeds upper bound %d", e, up)
			}
			lo = up - e
		case code&1 == 1: // base reference
			ref := prevRef + unzigzag(code>>2)
			if ref < 0 || ref >= int64(base.Len()) {
				return nil, fmt.Errorf("spacesaving: snapshot delta base reference %d out of range", ref)
			}
			if dc.used[ref] == dc.round {
				return nil, fmt.Errorf("spacesaving: snapshot delta references base entry %d twice", ref)
			}
			dc.used[ref] = dc.round
			prevRef = ref
			k = base.Keys[ref]
			up, lo = base.Upper[ref], base.Lower[ref]
			if code&2 != 0 {
				du, w := binary.Uvarint(b)
				if w <= 0 {
					return nil, errors.New("spacesaving: truncated snapshot delta entry")
				}
				b = b[w:]
				dl, w := binary.Uvarint(b)
				if w <= 0 {
					return nil, errors.New("spacesaving: truncated snapshot delta entry")
				}
				b = b[w:]
				nu := int64(up) + unzigzag(du)
				nl := int64(lo) + unzigzag(dl)
				if nu < 0 || nl < 0 || nl > nu {
					return nil, errors.New("spacesaving: snapshot delta count underflow")
				}
				up, lo = uint64(nu), uint64(nl)
			}
		default:
			return nil, fmt.Errorf("spacesaving: invalid snapshot delta entry code %d", code)
		}
		if up > prevUp {
			return nil, errors.New("spacesaving: snapshot delta upper bounds not sorted")
		}
		prevUp = up
		if _, dup := dc.seen[k]; dup {
			return nil, errors.New("spacesaving: duplicate key in snapshot delta")
		}
		dc.seen[k] = int32(i)
		dst.Keys = append(dst.Keys, k)
		dst.Upper = append(dst.Upper, up)
		dst.Lower = append(dst.Lower, lo)
	}
	dst.gen = snapGenCounter.Add(1)
	return b, nil
}

// CopyFrom makes sn a deep copy of src, reusing sn's arrays. The copy is a
// rewrite, so sn gets a fresh mutation generation of its own.
func (sn *Snapshot[K]) CopyFrom(src *Snapshot[K]) {
	sn.Keys = append(sn.Keys[:0], src.Keys...)
	sn.Upper = append(sn.Upper[:0], src.Upper...)
	sn.Lower = append(sn.Lower[:0], src.Lower...)
	sn.N, sn.Min, sn.Cap = src.N, src.Min, src.Cap
	sn.gen = snapGenCounter.Add(1)
}
