package spacesaving

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// BenchmarkUpdateKernel isolates the phases of the two-phase batch kernel at
// the paper's ε=0.001 scale (1001 counters, steady state, mostly monitored
// keys — the RHHH per-node workload):
//
//   - Resolve: the read-only planning pass alone — hash + cuckoo probes +
//     slab confirm + bucket-line touch for a full chunk. This is the
//     memory-level-parallel part; its ns/op is the per-update cost when all
//     chunk misses overlap.
//   - ResolveApply: the full kernel (Resolve + Apply). The difference to
//     Resolve is the apply phase: bucket-list surgery against warm lines.
//   - Sequential: the per-key Increment loop over the same keys — the
//     dependent-chain baseline the kernel is trying to beat.
//
// ns/op is per update (b.N counts keys, not chunks).
func BenchmarkUpdateKernel(b *testing.B) {
	const capacity = 1001
	mkKeys := func(n int, spread uint64) []uint64 {
		rng := rand.New(rand.NewPCG(1, 2))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64N(spread)
		}
		return keys
	}
	fill := func(keys []uint64) *Summary[uint64] {
		s := New[uint64](capacity)
		for round := 0; round < 40; round++ {
			s.IncrementBatch(keys)
		}
		return s
	}
	// The steady-state mix: a key space a few times the capacity, so most
	// updates hit monitored keys with a steady trickle of evictions —
	// matching a converged RHHH node on a heavy-tailed trace.
	keys := mkKeys(1<<14, 4*capacity)
	mask := len(keys) - 1

	b.Run("Resolve", func(b *testing.B) {
		s := fill(keys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & mask
			end := off + BatchChunk
			if end > len(keys) {
				end = len(keys)
			}
			s.Resolve(keys[off:end])
		}
	})
	b.Run("ResolveApply", func(b *testing.B) {
		s := fill(keys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & mask
			end := off + BatchChunk
			if end > len(keys) {
				end = len(keys)
			}
			s.Resolve(keys[off:end])
			s.Apply(keys[off:end])
		}
	})
	b.Run("Sequential", func(b *testing.B) {
		s := fill(keys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Increment(keys[i&mask])
		}
	})

	// Eviction isolation: the same kernel split with the miss rate pinned at
	// the extremes, so the eviction path's cost is measured directly rather
	// than inferred from the steady-state mix.
	//
	//   - ApplyHitOnly: a key space under capacity — after warmup every
	//     update is a planned hit and the apply phase is pure bump work.
	//     ResolveApply minus Resolve is then the no-evict apply floor.
	//   - Evict: a key space 64× capacity — after warmup essentially every
	//     update misses and the apply phase is pure eviction, batched through
	//     evictRun. Minus Resolve, this is the eviction floor the batched
	//     detach pass is attacking.
	//   - EvictSequential: the same all-miss workload through per-key
	//     Increment — the serial bucket-surgery baseline the batch replaces.
	hitKeys := mkKeys(1<<14, capacity-1)
	missKeys := mkKeys(1<<16, 64*capacity)
	missMask := len(missKeys) - 1
	b.Run("ApplyHitOnly", func(b *testing.B) {
		s := fill(hitKeys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & mask
			end := off + BatchChunk
			if end > len(hitKeys) {
				end = len(hitKeys)
			}
			s.Resolve(hitKeys[off:end])
			s.Apply(hitKeys[off:end])
		}
	})
	b.Run("Evict", func(b *testing.B) {
		s := fill(missKeys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & missMask
			end := off + BatchChunk
			if end > len(missKeys) {
				end = len(missKeys)
			}
			s.Resolve(missKeys[off:end])
			s.Apply(missKeys[off:end])
		}
	})
	b.Run("EvictSequential", func(b *testing.B) {
		s := fill(missKeys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Increment(missKeys[i&missMask])
		}
	})

	// Cross-node variants at the RHHH engine's shape: 25 summaries (the 2D
	// byte lattice), each update hitting a random node — the access pattern
	// whose memory latency the windowed kernel overlaps. The spread between
	// SequentialNodes and ResolveAcrossNodes is the memory-level-parallelism
	// headroom; ResolveAcrossNodes alone is the resolve-phase floor.
	const nodes = 25
	mkNodes := func() ([]*Summary[uint64], []int32) {
		rng := rand.New(rand.NewPCG(3, 4))
		sums := make([]*Summary[uint64], nodes)
		for i := range sums {
			sums[i] = New[uint64](capacity)
		}
		nd := make([]int32, len(keys))
		for i := range nd {
			nd[i] = int32(rng.Uint64N(nodes))
		}
		// Group each BatchChunk window by node, as the engine's counting
		// sort does: ApplyPlanned requires a window's same-node samples to
		// be contiguous so plans never go stale across runs.
		for off := 0; off < len(nd); off += BatchChunk {
			end := off + BatchChunk
			if end > len(nd) {
				end = len(nd)
			}
			slices.Sort(nd[off:end])
		}
		for round := 0; round < 40; round++ {
			for i, k := range keys {
				sums[nd[i]].Increment(k)
			}
		}
		return sums, nd
	}
	b.Run("SequentialNodes", func(b *testing.B) {
		sums, nd := mkNodes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & mask
			sums[nd[j]].Increment(keys[j])
		}
	})
	b.Run("ResolveAcrossNodes", func(b *testing.B) {
		sums, nd := mkNodes()
		var slots [BatchChunk]int32
		var hashes [BatchChunk]uint32
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & mask
			end := off + BatchChunk
			if end > len(keys) {
				end = len(keys)
			}
			ResolveAcross(sums, nd[off:end], keys[off:end], slots[:end-off], hashes[:end-off])
		}
	})
	b.Run("ResolveApplyNodes", func(b *testing.B) {
		sums, nd := mkNodes()
		var slots [BatchChunk]int32
		var hashes [BatchChunk]uint32
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += BatchChunk {
			off := i & mask
			end := off + BatchChunk
			if end > len(keys) {
				end = len(keys)
			}
			mayDup := ResolveAcross(sums, nd[off:end], keys[off:end], slots[:end-off], hashes[:end-off])
			for j := off; j < end; {
				n := nd[j]
				k := j + 1
				for k < end && nd[k] == n {
					k++
				}
				sums[n].ApplyPlanned(keys[j:k], slots[j-off:k-off], hashes[j-off:k-off], mayDup)
				j = k
			}
		}
	})
}
