package spacesaving

// Merge combines two Space Saving summaries over disjoint sub-streams into
// one summary over their union, in the style of mergeable summaries
// (Agarwal et al., PODS 2012). For every key the merged upper bound is the
// sum of the two upper bounds (using MinCount for a summary that does not
// monitor the key) and the merged lower bound is the sum of the lower
// bounds, so the Definition 4 contract is preserved:
//
//	fa(k)+fb(k) ≤ upper(k),   lower(k) ≤ fa(k)+fb(k),
//	upper(k)−lower(k) ≤ εa·Na + εb·Nb.
//
// Only the `capacity` keys with the largest upper bounds are retained; a
// dropped key's frequency is bounded by the merged MinCount, exactly as in
// a freshly built summary.
//
// Merge materializes a standalone Summary and allocates accordingly; the
// query paths (core.MergeOutput, the sharded aggregator) instead reuse a
// Merger over Snapshots, which performs the same combination with no
// steady-state allocation.
func Merge[K comparable](a, b *Summary[K], capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	var m Merger[K]
	m.Reset()
	m.Add(a.Snapshot())
	m.Add(b.Snapshot())
	var sn Snapshot[K]
	m.MergeInto(&sn, capacity)
	out := New[K](capacity)
	out.LoadSnapshot(&sn)
	return out
}
