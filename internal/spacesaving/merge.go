package spacesaving

import "sort"

// Merge combines two Space Saving summaries over disjoint sub-streams into
// one summary over their union, in the style of mergeable summaries
// (Agarwal et al., PODS 2012). For every key the merged upper bound is the
// sum of the two upper bounds (using MinCount for a summary that does not
// monitor the key) and the merged lower bound is the sum of the lower
// bounds, so the Definition 4 contract is preserved:
//
//	fa(k)+fb(k) ≤ upper(k),   lower(k) ≤ fa(k)+fb(k),
//	upper(k)−lower(k) ≤ εa·Na + εb·Nb.
//
// Only the `capacity` keys with the largest upper bounds are retained; a
// dropped key's frequency is bounded by the merged MinCount, exactly as in
// a freshly built summary. Merging therefore supports the multi-queue
// deployment: shard a stream across cores, one summary each, and merge at
// query time.
func Merge[K comparable](a, b *Summary[K], capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	type pair struct {
		key          K
		upper, lower uint64
	}
	union := make(map[K]pair, a.Len()+b.Len())
	collect := func(from, other *Summary[K]) {
		from.ForEach(func(k K, count, err uint64) {
			if _, seen := union[k]; seen {
				return
			}
			oUp, oLo := other.Bounds(k)
			union[k] = pair{key: k, upper: count + oUp, lower: count - err + oLo}
		})
	}
	collect(a, b)
	collect(b, a)

	pairs := make([]pair, 0, len(union))
	for _, p := range union {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].upper > pairs[j].upper })
	if len(pairs) > capacity {
		pairs = pairs[:capacity]
	}
	// Rebuild a well-formed summary: insert counters in ascending count
	// order so the bucket list is constructed in one pass.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].upper < pairs[j].upper })
	out := New[K](capacity)
	out.n = a.n + b.n
	tail := nilIdx
	for _, p := range pairs {
		c := int32(out.used)
		out.used++
		out.slots[c].key = p.key
		out.slots[c].err = p.upper - p.lower
		out.indexInsert(c, out.hash(p.key))
		if tail == nilIdx || out.buckets[tail].count != p.upper {
			tail = out.newBucket(p.upper, tail, nilIdx)
		}
		out.pushCounter(tail, c)
	}
	return out
}
