package spacesaving

// Differential tests for the batched-eviction apply path (evictRun) and the
// lazy bucket-coalescing discipline. The existing kernel differentials in
// ref_test.go exercise these through random schedules; the tests here force
// the specific shapes the batch path special-cases: maximal runs of planned
// misses against one min bucket, cascades that drain several count levels in
// a single chunk, runs broken by hits and by weight changes, and chunks that
// repeat unmonitored keys (the mayDup fallback that must bypass evictRun).

import (
	"math/rand/v2"
	"testing"
)

// evictRegimes are the five capacity/skew regimes of the kernel
// differentials, re-used with adversarial eviction-heavy schedules.
var evictRegimes = []struct {
	name     string
	capacity int
	keyRange uint64
}{
	{"HeavyChurn", 64, 1 << 12},
	{"SteadyState", 256, 300},
	{"BelowCapacity", 1024, 200},
	{"CapacityOne", 1, 1 << 8},
	{"SkewedZipf", 128, 1 << 16},
}

// TestBatchedEvictionFreshRuns drives chunks made entirely of never-seen
// keys — every chunk entry is a planned miss, so at capacity the whole chunk
// retires through evictRun, draining the min bucket level by level — and
// compares full state against the sequential reference after every chunk.
func TestBatchedEvictionFreshRuns(t *testing.T) {
	for _, tc := range evictRegimes {
		t.Run(tc.name, func(t *testing.T) {
			s := New[uint64](tc.capacity)
			ref := newRefSummary[uint64](tc.capacity)
			next := uint64(1) << 32 // disjoint from every other draw
			for round := 0; round < 4; round++ {
				for _, n := range chunkSizes {
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = next
						next++
					}
					s.IncrementBatch(keys)
					incrementBatchRef(ref, keys)
					mustMatchRef(t, tc.name, s, ref)
				}
			}
		})
	}
}

// TestBatchedEvictionSameBucket pins the worst case the batch path exists
// for: a summary whose counters all share one min bucket (equal counts), hit
// with repeated all-miss chunks — each chunk empties and re-forms the min
// bucket several times over, exercising the level cascade and the eager
// min-bucket removal inside evictRun.
func TestBatchedEvictionSameBucket(t *testing.T) {
	const capacity = 48
	s := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	seed := make([]uint64, capacity)
	for i := range seed {
		seed[i] = uint64(i)
	}
	s.IncrementBatch(seed)
	incrementBatchRef(ref, seed)
	mustMatchRef(t, "seed", s, ref)

	next := uint64(1) << 40
	for round := 0; round < 32; round++ {
		// 3×capacity fresh keys per chunk: the min level (and each level it
		// cascades into) is evicted wholesale multiple times per chunk.
		keys := make([]uint64, 3*capacity)
		for i := range keys {
			keys[i] = next
			next++
		}
		s.IncrementBatch(keys)
		incrementBatchRef(ref, keys)
		mustMatchRef(t, "sameBucket", s, ref)
	}
}

// TestBatchedEvictionBrokenRuns interleaves planned hits into eviction-heavy
// chunks so miss runs start and stop mid-chunk, and the hits bump keys whose
// buckets the surrounding evictions are mutating (including keys the same
// chunk just admitted by eviction — stale planned hits).
func TestBatchedEvictionBrokenRuns(t *testing.T) {
	const capacity = 32
	rng := rand.New(rand.NewPCG(21, 43))
	s := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	hot := make([]uint64, capacity)
	for i := range hot {
		hot[i] = uint64(i)
	}
	s.IncrementBatch(hot)
	incrementBatchRef(ref, hot)

	next := uint64(1) << 48
	for round := 0; round < 64; round++ {
		n := 60 + rng.IntN(10)
		keys := make([]uint64, n)
		for i := range keys {
			switch rng.IntN(3) {
			case 0: // monitored hit, breaks the current miss run
				keys[i] = hot[rng.IntN(len(hot))]
			case 1: // hit on a key admitted earlier in this same chunk
				if i > 0 {
					keys[i] = keys[rng.IntN(i)]
				} else {
					keys[i] = hot[0]
				}
			default: // fresh miss, extends the run
				keys[i] = next
				next++
			}
		}
		s.IncrementBatch(keys)
		incrementBatchRef(ref, keys)
		mustMatchRef(t, "brokenRuns", s, ref)
	}
}

// TestBatchedEvictionWeighted drives the weighted batch path through
// equal-weight runs (batched), weight changes mid-run (run splits), zero
// weights inside runs, and large weights that cascade across count levels.
func TestBatchedEvictionWeighted(t *testing.T) {
	const capacity = 40
	rng := rand.New(rand.NewPCG(5, 17))
	s := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	next := uint64(1) << 52
	for round := 0; round < 48; round++ {
		n := 60 + rng.IntN(10)
		keys := make([]uint64, n)
		ws := make([]uint64, n)
		runW := uint64(1 + rng.IntN(5))
		for i := range keys {
			keys[i] = next
			next++
			switch rng.IntN(10) {
			case 0:
				ws[i] = 0
			case 1:
				ws[i] = 1 + rng.Uint64N(5_000)
			case 2:
				runW = uint64(1 + rng.IntN(5)) // new equal-weight run
				ws[i] = runW
			default:
				ws[i] = runW
			}
			if rng.IntN(4) == 0 { // some monitored / duplicate hits
				keys[i] = rng.Uint64N(uint64(capacity))
			}
		}
		s.IncrementBatchWeighted(keys, ws)
		incrementBatchWeightedRef(ref, keys, ws)
		mustMatchRef(t, "weighted", s, ref)
	}
}

// TestBatchedEvictionDuplicateMisses repeats unmonitored keys within one
// chunk: planDup forces the per-miss fallback (lookup before insert), which
// must coexist with the lazy coalescing discipline and stay bit-identical.
func TestBatchedEvictionDuplicateMisses(t *testing.T) {
	const capacity = 24
	rng := rand.New(rand.NewPCG(3, 99))
	s := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	next := uint64(1) << 56
	for round := 0; round < 64; round++ {
		n := 60 + rng.IntN(10)
		keys := make([]uint64, n)
		for i := range keys {
			if i > 0 && rng.IntN(3) == 0 {
				keys[i] = keys[rng.IntN(i)] // duplicate an earlier chunk key
			} else {
				keys[i] = next
				next++
			}
		}
		s.IncrementBatch(keys)
		incrementBatchRef(ref, keys)
		mustMatchRef(t, "dupMisses", s, ref)
	}
}

// TestApplyPlannedMayDupModes replays identical streams through ApplyPlanned
// with mayDup forced true (per-miss fallback path) and forced false (batched
// eviction path) on two summaries; both must match the sequential reference.
// Valid only for streams that genuinely repeat no unmonitored key in-chunk —
// guaranteed here by making every chunk's keys pairwise distinct.
func TestApplyPlannedMayDupModes(t *testing.T) {
	const capacity = 32
	sTrue := New[uint64](capacity)
	sFalse := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	var slots [BatchChunk]int32
	var hashes [BatchChunk]uint32
	next := uint64(1) << 36
	rng := rand.New(rand.NewPCG(8, 8))
	for round := 0; round < 64; round++ {
		keys := make([]uint64, BatchChunk)
		perm := rng.Perm(capacity) // low keys without replacement
		lo := 0
		for i := range keys {
			if rng.IntN(2) == 0 && lo < len(perm) {
				keys[i] = uint64(perm[lo]) // often monitored, never repeated
				lo++
			} else {
				keys[i] = next // fresh, never repeated
				next++
			}
		}
		for _, s := range []*Summary[uint64]{sTrue, sFalse} {
			s.Resolve(keys)
			copy(slots[:], s.planSlot[:len(keys)])
			copy(hashes[:], s.planHash[:len(keys)])
			s.ApplyPlanned(keys, slots[:len(keys)], hashes[:len(keys)], s == sTrue)
		}
		incrementBatchRef(ref, keys)
		mustMatchRef(t, "mayDup=true", sTrue, ref)
		mustMatchRef(t, "mayDup=false", sFalse, ref)
	}
}

// TestResolveAcrossMayDup checks the window duplicate detection: a repeated
// unmonitored (node, key) pair must report mayDup, and the same key on
// different nodes must not force it.
func TestResolveAcrossMayDup(t *testing.T) {
	mk := func() []*Summary[uint64] {
		sums := make([]*Summary[uint64], 2)
		for i := range sums {
			sums[i] = New[uint64](4)
			for k := uint64(0); k < 4; k++ {
				sums[i].Increment(k)
			}
		}
		return sums
	}
	var slots [BatchChunk]int32
	var hashes [BatchChunk]uint32

	sums := mk()
	nodes := []int32{0, 0, 1, 1}
	keys := []uint64{100, 100, 200, 201}
	if !ResolveAcross(sums, nodes, keys, slots[:4], hashes[:4]) {
		t.Fatal("repeated unmonitored (node, key) must report mayDup")
	}

	sums = mk()
	keys = []uint64{100, 101, 100, 102} // same key, different nodes
	if ResolveAcross(sums, nodes, keys, slots[:4], hashes[:4]) {
		t.Fatal("same key on different nodes must not report mayDup")
	}

	sums = mk()
	keys = []uint64{0, 1, 2, 3} // all monitored: no misses at all
	if ResolveAcross(sums, nodes, keys, slots[:4], hashes[:4]) {
		t.Fatal("all-hit window must not report mayDup")
	}
}

// TestLazyCoalesceSweep checks that no empty bucket survives an apply: after
// any batch, walking the bucket chain from min must find strictly ascending
// counts and a non-empty head at every bucket.
func TestLazyCoalesceSweep(t *testing.T) {
	const capacity = 32
	rng := rand.New(rand.NewPCG(13, 37))
	s := New[uint64](capacity)
	next := uint64(1) << 44
	for round := 0; round < 128; round++ {
		n := 1 + rng.IntN(2*BatchChunk)
		keys := make([]uint64, n)
		for i := range keys {
			if rng.IntN(2) == 0 {
				keys[i] = rng.Uint64N(capacity)
			} else {
				keys[i] = next
				next++
			}
		}
		s.IncrementBatch(keys)
		var lastCount uint64
		seen := 0
		for b := s.min; b != nilIdx; b = s.buckets[b].next {
			if s.buckets[b].head == nilIdx {
				t.Fatalf("round %d: empty bucket (count %d) survived the sweep", round, s.buckets[b].count)
			}
			if seen > 0 && s.buckets[b].count <= lastCount {
				t.Fatalf("round %d: bucket counts not ascending: %d after %d", round, s.buckets[b].count, lastCount)
			}
			lastCount = s.buckets[b].count
			seen++
		}
	}
}
