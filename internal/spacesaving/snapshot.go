package spacesaving

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync/atomic"
)

// Snapshot is a compact, immutable copy of a Summary's observable state:
// flat parallel key/upper/lower arrays in descending upper-bound order (the
// same order ForEach visits), plus the stream weight and the MinCount bound
// for unmonitored keys. Snapshots are the unit of the read path — queries,
// merges, serialization and window rings all operate on snapshots, never on
// live summaries — so the update path is never paused for more than one
// O(capacity) copy.
//
// A Snapshot preserves the Definition 4 contract of the summary it was taken
// from: for every key, Lower ≤ f ≤ Upper for monitored keys, and f ≤ Min for
// unmonitored ones.
type Snapshot[K comparable] struct {
	// Keys, Upper and Lower are parallel arrays in non-ascending Upper
	// order. Upper[i] and Lower[i] bound the true frequency of Keys[i].
	Keys  []K
	Upper []uint64
	Lower []uint64
	// N is the total stream weight the source summary had absorbed.
	N uint64
	// Min bounds the frequency of any key not present in Keys.
	Min uint64
	// Cap is the source summary's counter capacity (⌈1/ε⌉-ish); merged
	// snapshots record the capacity they were truncated to.
	Cap int

	// gen is the snapshot's mutation generation, drawn from a process-wide
	// counter whenever a mutator (SnapshotInto, Merger.MergeInto, Decode)
	// rewrites the contents. Downstream caches — the per-node merge skip,
	// the extractor's bounds indices — key on it; 0 means "unknown"
	// (hand-assembled) and disables them. Code that fills the exported
	// fields directly must leave gen at 0 or not reuse the snapshot where
	// caches watch it.
	gen uint64
}

// snapGenCounter issues mutation generations; see Snapshot.gen.
var snapGenCounter atomic.Uint64

// Gen returns the snapshot's mutation generation: two reads returning the
// same non-zero value guarantee the snapshot contents have not been
// rewritten in between. 0 means the snapshot was assembled by hand and has
// no tracked generation.
func (sn *Snapshot[K]) Gen() uint64 { return sn.gen }

// Invalidate clears the snapshot's generation to "unknown", so every cache
// keyed on it rebuilds. Call it after mutating the exported fields in
// place; the tracked mutators stamp a fresh generation on their own.
func (sn *Snapshot[K]) Invalidate() { sn.gen = 0 }

// Stamp issues the snapshot a fresh mutation generation, marking it as
// rewritten-and-current. It is for alternative backend implementations
// (internal/chk) that fill the exported fields directly but want downstream
// generation-keyed caches — the merge skips, the delta encoder — to track
// the snapshot exactly as if a tracked mutator had produced it. Plain
// in-place mutators should call Invalidate instead.
func (sn *Snapshot[K]) Stamp() { sn.gen = snapGenCounter.Add(1) }

// Len returns the number of monitored keys in the snapshot.
func (sn *Snapshot[K]) Len() int { return len(sn.Keys) }

// Bounds returns (upper, lower) frequency bounds for k: the stored entry for
// monitored keys, (Min, 0) otherwise. Linear scan — build an index for bulk
// lookups (the core package's query adapter does).
func (sn *Snapshot[K]) Bounds(k K) (upper, lower uint64) {
	for i, key := range sn.Keys {
		if key == k {
			return sn.Upper[i], sn.Lower[i]
		}
	}
	return sn.Min, 0
}

// reset empties the snapshot, keeping array capacity for reuse.
func (sn *Snapshot[K]) reset() {
	sn.Keys = sn.Keys[:0]
	sn.Upper = sn.Upper[:0]
	sn.Lower = sn.Lower[:0]
	sn.N, sn.Min, sn.Cap = 0, 0, 0
	sn.gen = 0
}

// SnapshotInto copies the summary's state into dst, reusing dst's arrays
// (zero allocations once the arrays have grown to capacity). A nil dst
// allocates a fresh snapshot. Returns dst.
func (s *Summary[K]) SnapshotInto(dst *Snapshot[K]) *Snapshot[K] {
	if dst == nil {
		dst = &Snapshot[K]{}
	}
	dst.reset()
	s.ForEach(func(k K, count, err uint64) {
		dst.Keys = append(dst.Keys, k)
		dst.Upper = append(dst.Upper, count)
		dst.Lower = append(dst.Lower, count-err)
	})
	dst.N = s.n
	dst.Min = s.MinCount()
	dst.Cap = s.capacity
	dst.gen = snapGenCounter.Add(1)
	return dst
}

// Snapshot returns a freshly allocated snapshot of the summary.
func (s *Summary[K]) Snapshot() *Snapshot[K] { return s.SnapshotInto(nil) }

// LoadSnapshot rebuilds the summary's state from a snapshot: counters are
// inserted in ascending count order so the bucket list is constructed in one
// pass. The snapshot must fit the summary's capacity and be well formed
// (non-ascending Upper, Lower ≤ Upper); snapshots produced by SnapshotInto,
// Merger.MergeInto or a validated Decode always are.
func (s *Summary[K]) LoadSnapshot(sn *Snapshot[K]) {
	if sn.Len() > s.capacity {
		panic("spacesaving: snapshot exceeds summary capacity")
	}
	s.Reset()
	s.n = sn.N
	tail := nilIdx
	for i := sn.Len() - 1; i >= 0; i-- {
		up := sn.Upper[i]
		if i+1 < sn.Len() && sn.Upper[i+1] > up {
			panic("spacesaving: snapshot upper bounds not sorted")
		}
		c := int32(s.used)
		s.used++
		s.hot[c].key = sn.Keys[i]
		s.cold[c].err = up - sn.Lower[i]
		s.indexInsert(c, s.hash(sn.Keys[i]))
		if tail == nilIdx || s.buckets[tail].count != up {
			tail = s.newBucket(up, tail, nilIdx)
		}
		s.pushCounter(tail, c)
	}
}

// Merger accumulates snapshots over disjoint sub-streams into merged
// frequency bounds, in the style of mergeable summaries (Agarwal et al.,
// PODS 2012). It replaces the per-query map+sort rebuild the old Merge
// performed: all scratch (union arrays, key index, sort permutation) is
// retained across queries, so a steady-state merge allocates nothing.
//
// For every key the merged upper bound is the sum of the per-snapshot upper
// bounds (using a snapshot's Min when it does not monitor the key) and the
// merged lower bound is the sum of the lower bounds, preserving Definition 4:
//
//	Σfᵢ(k) ≤ upper(k),   lower(k) ≤ Σfᵢ(k),   upper(k)−lower(k) ≤ Σ εᵢNᵢ.
//
// Usage: Reset, Add each snapshot, then MergeInto a destination snapshot.
type Merger[K comparable] struct {
	keys    []K
	upper   []uint64
	lower   []uint64
	touched []int32 // round stamp of the last snapshot containing the key
	idx     map[K]int32
	perm    []int32
	minSum  uint64 // Σ Min over added snapshots
	n       uint64 // Σ N over added snapshots
	round   int32
}

// Reset clears the accumulator for a new merge, keeping scratch storage.
func (m *Merger[K]) Reset() {
	m.keys = m.keys[:0]
	m.upper = m.upper[:0]
	m.lower = m.lower[:0]
	m.touched = m.touched[:0]
	if m.idx == nil {
		m.idx = make(map[K]int32)
	} else {
		clear(m.idx)
	}
	m.minSum, m.n, m.round = 0, 0, 0
}

// Add folds one snapshot into the accumulator. Keys new to the union start
// from the sum of the previous snapshots' Min bounds; accumulated keys the
// snapshot does not monitor gain its Min on their upper bound.
func (m *Merger[K]) Add(sn *Snapshot[K]) {
	if m.idx == nil {
		m.idx = make(map[K]int32)
	}
	m.n += sn.N
	round := m.round
	m.round++
	for i, k := range sn.Keys {
		j, ok := m.idx[k]
		if !ok {
			j = int32(len(m.keys))
			m.idx[k] = j
			m.keys = append(m.keys, k)
			m.upper = append(m.upper, m.minSum)
			m.lower = append(m.lower, 0)
			m.touched = append(m.touched, round)
		}
		m.upper[j] += sn.Upper[i]
		m.lower[j] += sn.Lower[i]
		m.touched[j] = round
	}
	for j := range m.keys {
		if m.touched[j] != round {
			m.upper[j] += sn.Min
		}
	}
	m.minSum += sn.Min
}

// N returns the total stream weight accumulated so far.
func (m *Merger[K]) N() uint64 { return m.n }

// MergeInto writes the merged result into dst, truncated to the `capacity`
// keys with the largest upper bounds (deterministically: ties keep the
// earlier-accumulated key). dst's arrays are reused; a nil dst allocates.
// A dropped key's frequency is bounded by dst.Min, exactly as in a freshly
// built summary. Returns dst.
func (m *Merger[K]) MergeInto(dst *Snapshot[K], capacity int) *Snapshot[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	if dst == nil {
		dst = &Snapshot[K]{}
	}
	dst.reset()
	if cap(m.perm) < len(m.keys) {
		m.perm = make([]int32, len(m.keys))
	}
	perm := m.perm[:len(m.keys)]
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(a, b int32) int {
		if m.upper[a] != m.upper[b] {
			if m.upper[a] > m.upper[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
	kept := perm
	dropMax := uint64(0)
	if len(kept) > capacity {
		dropMax = m.upper[kept[capacity]]
		kept = kept[:capacity]
	}
	for _, j := range kept {
		dst.Keys = append(dst.Keys, m.keys[j])
		dst.Upper = append(dst.Upper, m.upper[j])
		dst.Lower = append(dst.Lower, m.lower[j])
	}
	dst.N = m.n
	dst.Min = max(m.minSum, dropMax)
	dst.Cap = capacity
	dst.gen = snapGenCounter.Add(1)
	return dst
}

// Snapshot binary encoding, version 1. The format is deterministic: a
// snapshot always encodes to the same bytes, and decode∘encode is the
// identity. Layout (all varints are unsigned LEB128):
//
//	byte    version (1)
//	uvarint capacity
//	uvarint n
//	uvarint min
//	uvarint number of entries
//	entries × { key (caller codec, fixed width), uvarint upper, uvarint upper−lower }
//
// Key bytes are produced by a caller-supplied codec so this package stays
// agnostic of the carrier types (the core package provides codecs for the
// four lattice carriers).
const snapshotVersion = 1

// snapMaxCap guards decode against absurd allocations from corrupt input.
const snapMaxCap = 1 << 24

// AppendBinary appends the versioned binary encoding of the snapshot to buf
// and returns the extended slice. putKey appends one key's fixed-width
// encoding.
func (sn *Snapshot[K]) AppendBinary(buf []byte, putKey func([]byte, K) []byte) []byte {
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(sn.Cap))
	buf = binary.AppendUvarint(buf, sn.N)
	buf = binary.AppendUvarint(buf, sn.Min)
	buf = binary.AppendUvarint(buf, uint64(len(sn.Keys)))
	for i, k := range sn.Keys {
		buf = putKey(buf, k)
		buf = binary.AppendUvarint(buf, sn.Upper[i])
		buf = binary.AppendUvarint(buf, sn.Upper[i]-sn.Lower[i])
	}
	return buf
}

// Decode parses one encoded snapshot from b into sn (reusing sn's arrays)
// and returns the remaining bytes. It rejects version mismatches, truncated
// input, and structurally invalid state (more entries than capacity,
// ascending upper bounds, error exceeding the bound, duplicate keys), so a
// decoded snapshot is always safe to merge or load.
func (sn *Snapshot[K]) Decode(b []byte, getKey func([]byte) (K, []byte, error)) (rest []byte, err error) {
	if len(b) < 1 {
		return nil, errors.New("spacesaving: short snapshot")
	}
	if b[0] != snapshotVersion {
		return nil, fmt.Errorf("spacesaving: unknown snapshot version %d", b[0])
	}
	b = b[1:]
	var capacity, n, min, entries uint64
	for _, dst := range []*uint64{&capacity, &n, &min, &entries} {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("spacesaving: truncated snapshot header")
		}
		*dst, b = v, b[w:]
	}
	if capacity < 1 || capacity > snapMaxCap {
		return nil, fmt.Errorf("spacesaving: snapshot capacity %d out of range", capacity)
	}
	if entries > capacity {
		return nil, fmt.Errorf("spacesaving: snapshot has %d entries for capacity %d", entries, capacity)
	}
	sn.reset()
	sn.Cap = int(capacity)
	sn.N = n
	sn.Min = min
	// Size hints come from untrusted input: bound them by what the
	// remaining bytes could possibly hold (≥ 3 bytes per entry: one key
	// byte minimum via getKey plus two uvarints) so a tiny corrupt datagram
	// cannot trigger a huge eager allocation.
	hint := entries
	if most := uint64(len(b)) / 3; hint > most {
		hint = most
	}
	seen := make(map[K]struct{}, hint)
	prev := ^uint64(0)
	for i := uint64(0); i < entries; i++ {
		k, rest, err := getKey(b)
		if err != nil {
			return nil, err
		}
		b = rest
		up, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("spacesaving: truncated snapshot entry")
		}
		b = b[w:]
		e, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("spacesaving: truncated snapshot entry")
		}
		b = b[w:]
		if e > up {
			return nil, fmt.Errorf("spacesaving: snapshot error %d exceeds upper bound %d", e, up)
		}
		if up > prev {
			return nil, errors.New("spacesaving: snapshot upper bounds not sorted")
		}
		if _, dup := seen[k]; dup {
			return nil, errors.New("spacesaving: duplicate key in snapshot")
		}
		seen[k] = struct{}{}
		prev = up
		sn.Keys = append(sn.Keys, k)
		sn.Upper = append(sn.Upper, up)
		sn.Lower = append(sn.Lower, up-e)
	}
	sn.gen = snapGenCounter.Add(1)
	return b, nil
}
