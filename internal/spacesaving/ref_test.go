package spacesaving

// Test-only reference implementation: the pre-split AoS counter slab with a
// map index, frozen before the SoA/two-phase rewrite. refSummary replicates
// every observable-order-affecting mechanism of Summary — shared-count
// buckets, head eviction, the detach swap-with-head — so its ForEach order
// (and hence snapshots) must be bit-identical to the production slab for any
// update sequence. incrementBatchRef is the pre-split batch semantics: one
// sequential Increment per key. The differential tests drive both through
// random and adversarial schedules and compare full state.

import (
	"math/rand/v2"
	"testing"
)

// refCounter is the old AoS layout: every per-counter field on one struct.
type refCounter[K comparable] struct {
	key  K
	err  uint64
	bkt  int32
	next int32
}

type refSummary[K comparable] struct {
	capacity int
	slots    []refCounter[K]
	used     int
	buckets  []bucket
	min      int32
	freeBkt  int32
	n        uint64
	idx      map[K]int32
}

func newRefSummary[K comparable](capacity int) *refSummary[K] {
	return &refSummary[K]{
		capacity: capacity,
		slots:    make([]refCounter[K], capacity),
		min:      nilIdx,
		freeBkt:  nilIdx,
		idx:      make(map[K]int32, capacity),
	}
}

func (s *refSummary[K]) Increment(k K) { s.IncrementBy(k, 1) }

func (s *refSummary[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	if c, ok := s.idx[k]; ok {
		s.bump(c, s.buckets[s.slots[c].bkt].count+w)
		return
	}
	if s.used < s.capacity {
		c := int32(s.used)
		s.used++
		s.slots[c].key = k
		s.slots[c].err = 0
		s.idx[k] = c
		s.attach(c, w)
		return
	}
	c := s.buckets[s.min].head
	minCount := s.buckets[s.min].count
	delete(s.idx, s.slots[c].key)
	s.slots[c].key = k
	s.slots[c].err = minCount
	s.idx[k] = c
	s.bump(c, minCount+w)
}

// incrementBatchRef is the pre-split batched update: strictly sequential
// per-key increments, the semantics IncrementBatch must preserve.
func incrementBatchRef[K comparable](s *refSummary[K], keys []K) {
	for _, k := range keys {
		s.Increment(k)
	}
}

// incrementBatchWeightedRef mirrors IncrementBatchWeighted sequentially.
func incrementBatchWeightedRef[K comparable](s *refSummary[K], keys []K, ws []uint64) {
	for i, k := range keys {
		s.IncrementBy(k, ws[i])
	}
}

func (s *refSummary[K]) attach(c int32, count uint64) {
	b := s.min
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < count {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != count {
		b = s.newBucket(count, prev, b)
	}
	s.pushCounter(b, c)
}

func (s *refSummary[K]) bump(c int32, newCount uint64) {
	old := s.slots[c].bkt
	carrier := s.detach(c)
	b := old
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < newCount {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != newCount {
		b = s.newBucket(newCount, prev, b)
	}
	s.pushCounter(b, carrier)
	if s.buckets[old].head == nilIdx {
		s.removeBucket(old)
	}
}

func (s *refSummary[K]) pushCounter(b, c int32) {
	s.slots[c].bkt = b
	s.slots[c].next = s.buckets[b].head
	s.buckets[b].head = c
}

// detach replicates the production swap-with-head exactly: a mid-list
// counter exchanges contents with its bucket head, so the sibling order
// (and therefore ForEach order) evolves identically.
func (s *refSummary[K]) detach(c int32) int32 {
	b := s.slots[c].bkt
	h := s.buckets[b].head
	if h == c {
		s.buckets[b].head = s.slots[c].next
		return c
	}
	ck, cerr := s.slots[c].key, s.slots[c].err
	s.slots[c].key = s.slots[h].key
	s.slots[c].err = s.slots[h].err
	s.idx[s.slots[c].key] = c
	s.buckets[b].head = s.slots[h].next
	s.slots[h].key = ck
	s.slots[h].err = cerr
	s.idx[ck] = h
	return h
}

func (s *refSummary[K]) newBucket(count uint64, prev, next int32) int32 {
	b := s.freeBkt
	if b != nilIdx {
		s.freeBkt = s.buckets[b].next
	} else {
		s.buckets = append(s.buckets, bucket{})
		b = int32(len(s.buckets) - 1)
	}
	s.buckets[b] = bucket{count: count, head: nilIdx, prev: prev, next: next}
	if prev != nilIdx {
		s.buckets[prev].next = b
	} else {
		s.min = b
	}
	if next != nilIdx {
		s.buckets[next].prev = b
	}
	return b
}

func (s *refSummary[K]) removeBucket(b int32) {
	prev, next := s.buckets[b].prev, s.buckets[b].next
	if prev != nilIdx {
		s.buckets[prev].next = next
	} else {
		s.min = next
	}
	if next != nilIdx {
		s.buckets[next].prev = prev
	}
	s.buckets[b].prev = nilIdx
	s.buckets[b].next = s.freeBkt
	s.freeBkt = b
}

func (s *refSummary[K]) MinCount() uint64 {
	if s.used < s.capacity || s.min == nilIdx {
		return 0
	}
	return s.buckets[s.min].count
}

func (s *refSummary[K]) ForEach(fn func(k K, count, err uint64)) {
	if s.min == nilIdx {
		return
	}
	last := s.min
	for s.buckets[last].next != nilIdx {
		last = s.buckets[last].next
	}
	for b := last; b != nilIdx; b = s.buckets[b].prev {
		for c := s.buckets[b].head; c != nilIdx; c = s.slots[c].next {
			fn(s.slots[c].key, s.buckets[b].count, s.slots[c].err)
		}
	}
}

// entry is one observed (key, count, err) triple in ForEach order.
type entry struct {
	key        uint64
	count, err uint64
}

func stateOf(fe func(func(uint64, uint64, uint64))) []entry {
	var out []entry
	fe(func(k, c, e uint64) { out = append(out, entry{k, c, e}) })
	return out
}

// mustMatchRef compares the production summary against the reference in
// full: N, Len, MinCount and the exact ForEach sequence.
func mustMatchRef(t *testing.T, tag string, s *Summary[uint64], ref *refSummary[uint64]) {
	t.Helper()
	if s.N() != ref.n {
		t.Fatalf("%s: N %d vs ref %d", tag, s.N(), ref.n)
	}
	if s.Len() != ref.used {
		t.Fatalf("%s: Len %d vs ref %d", tag, s.Len(), ref.used)
	}
	if s.MinCount() != ref.MinCount() {
		t.Fatalf("%s: MinCount %d vs ref %d", tag, s.MinCount(), ref.MinCount())
	}
	got := stateOf(s.ForEach)
	want := stateOf(ref.ForEach)
	if len(got) != len(want) {
		t.Fatalf("%s: %d monitored keys vs ref %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d: %+v vs ref %+v", tag, i, got[i], want[i])
		}
	}
}

// chunkSizes are the batch lengths the kernel's chunking must survive:
// below, at, and just past BatchChunk, plus a multi-chunk sweep.
var chunkSizes = []int{1, 63, 64, 65, 4096}

// TestIncrementBatchMatchesAoSReference drives identical random streams
// through the two-phase SoA batch kernel and the pre-split AoS reference at
// several skews and capacities, comparing full state after every batch.
func TestIncrementBatchMatchesAoSReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		capacity int
		keyRange uint64
	}{
		{"HeavyChurn", 64, 1 << 12},  // constant eviction
		{"SteadyState", 256, 300},    // mostly monitored-key hits
		{"BelowCapacity", 1024, 200}, // never evicts
		{"CapacityOne", 1, 1 << 8},   // degenerate
		{"SkewedZipf", 128, 1 << 16}, // hit/miss mix with repeats in-chunk
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(7, uint64(tc.capacity)))
			s := New[uint64](tc.capacity)
			ref := newRefSummary[uint64](tc.capacity)
			draw := func() uint64 {
				if tc.name == "SkewedZipf" && rng.IntN(2) == 0 {
					return rng.Uint64N(8) // hot keys, frequent in-chunk repeats
				}
				return rng.Uint64N(tc.keyRange)
			}
			for round := 0; round < 6; round++ {
				for _, n := range chunkSizes {
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = draw()
					}
					s.IncrementBatch(keys)
					incrementBatchRef(ref, keys)
					mustMatchRef(t, tc.name, s, ref)
				}
				// Interleave sequential updates between batches.
				for i := 0; i < 50; i++ {
					k := draw()
					s.Increment(k)
					ref.Increment(k)
				}
				mustMatchRef(t, tc.name+"/seq", s, ref)
			}
		})
	}
}

// TestIncrementBatchWeightedMatchesReference: the weighted kernel must be
// bit-identical to sequential IncrementBy, including w == 0 no-ops and
// multi-bucket jumps.
func TestIncrementBatchWeightedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	s := New[uint64](128)
	ref := newRefSummary[uint64](128)
	for round := 0; round < 8; round++ {
		for _, n := range chunkSizes {
			keys := make([]uint64, n)
			ws := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64N(1 << 10)
				switch rng.IntN(8) {
				case 0:
					ws[i] = 0
				case 1:
					ws[i] = 1 + rng.Uint64N(10_000) // long bucket walks
				default:
					ws[i] = 1 + rng.Uint64N(16)
				}
			}
			s.IncrementBatchWeighted(keys, ws)
			incrementBatchWeightedRef(ref, keys, ws)
			mustMatchRef(t, "weighted", s, ref)
		}
	}
}

// TestResolveApplyStalePlans adversarially forces every plan-invalidation
// path inside one chunk: repeated misses of the same key (miss→hit), bumps
// that detach-swap planned slots, and evictions of planned hits.
func TestResolveApplyStalePlans(t *testing.T) {
	const capacity = 8
	s := New[uint64](capacity)
	ref := newRefSummary[uint64](capacity)
	// Fill to capacity with keys that share buckets (equal counts), so
	// bumps hit the detach swap path constantly.
	seedKeys := make([]uint64, 0, capacity)
	for i := uint64(0); i < capacity; i++ {
		seedKeys = append(seedKeys, i)
	}
	s.IncrementBatch(seedKeys)
	incrementBatchRef(ref, seedKeys)
	mustMatchRef(t, "seed", s, ref)

	// One chunk containing: a new key twice (second occurrence must see the
	// first's insertion), an existing key whose slot the eviction reuses,
	// and interleaved bumps that shuffle slots via detach swaps.
	chunk := []uint64{100, 100, 3, 101, 3, 101, 100, 5, 102, 102, 5, 0}
	s.IncrementBatch(chunk)
	incrementBatchRef(ref, chunk)
	mustMatchRef(t, "stale", s, ref)

	// Repeat under churn with every chunk length around the plan boundary.
	rng := rand.New(rand.NewPCG(11, 11))
	for round := 0; round < 40; round++ {
		n := 60 + rng.IntN(10) // straddles BatchChunk
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64N(24) // tiny space: constant evict/re-admit
		}
		s.IncrementBatch(keys)
		incrementBatchRef(ref, keys)
		mustMatchRef(t, "churn", s, ref)
	}
}

// TestResolveIsReadOnly: a Resolve not followed by its Apply must leave all
// measurement state untouched (the engine pipeline relies on resolving node
// i+1 before node i's apply).
func TestResolveIsReadOnly(t *testing.T) {
	s := New[uint64](32)
	for i := uint64(0); i < 200; i++ {
		s.Increment(i % 40)
	}
	before := stateOf(s.ForEach)
	n, used, min := s.N(), s.Len(), s.MinCount()
	s.Resolve([]uint64{1, 2, 3, 999, 1000, 5, 5, 5})
	if s.N() != n || s.Len() != used || s.MinCount() != min {
		t.Fatal("Resolve mutated scalar state")
	}
	after := stateOf(s.ForEach)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Resolve mutated entry %d: %+v vs %+v", i, before[i], after[i])
		}
	}
}
