package spacesaving

import (
	"testing"
	"testing/quick"

	"rhhh/internal/fastrand"
)

func TestMergeExactWhenUnderCapacity(t *testing.T) {
	a := New[uint64](16)
	b := New[uint64](16)
	for i := 0; i < 5; i++ {
		a.Increment(1)
		b.Increment(1)
		b.Increment(2)
	}
	m := Merge(a, b, 16)
	if m.N() != a.N()+b.N() {
		t.Fatalf("N = %d", m.N())
	}
	if c, err, ok := m.Query(1); !ok || c != 10 || err != 0 {
		t.Fatalf("Query(1) = (%d,%d,%v), want (10,0,true)", c, err, ok)
	}
	if c, err, ok := m.Query(2); !ok || c != 5 || err != 0 {
		t.Fatalf("Query(2) = (%d,%d,%v)", c, err, ok)
	}
}

func TestMergeKeepsTopByUpper(t *testing.T) {
	a := New[uint64](8)
	b := New[uint64](8)
	for k := uint64(0); k < 8; k++ {
		for i := uint64(0); i <= k; i++ {
			a.Increment(k)
			b.Increment(k)
		}
	}
	m := Merge(a, b, 3)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	for _, k := range []uint64{5, 6, 7} {
		if _, _, ok := m.Query(k); !ok {
			t.Fatalf("heavy key %d dropped by merge", k)
		}
	}
}

// TestMergeBoundsBracketTruth: on random skewed streams split in two, the
// merged bounds must bracket the combined exact counts for every monitored
// key, and the merged structure must stay internally consistent.
func TestMergeBoundsBracketTruth(t *testing.T) {
	r := fastrand.New(11)
	for trial := 0; trial < 20; trial++ {
		a := New[uint64](32)
		b := New[uint64](32)
		exact := map[uint64]uint64{}
		for i := 0; i < 20000; i++ {
			k := r.Uint64n(1 + r.Uint64n(300))
			exact[k]++
			if i%2 == 0 {
				a.Increment(k)
			} else {
				b.Increment(k)
			}
		}
		m := Merge(a, b, 32)
		if m.N() != 20000 {
			t.Fatalf("N = %d", m.N())
		}
		m.ForEach(func(k uint64, count, err uint64) {
			f := exact[k]
			if f > count {
				t.Fatalf("trial %d key %d: upper %d < true %d", trial, k, count, f)
			}
			if f < count-err {
				t.Fatalf("trial %d key %d: lower %d > true %d", trial, k, count-err, f)
			}
		})
		// Unmonitored keys are bounded by the merged MinCount.
		for k, f := range exact {
			if _, _, ok := m.Query(k); !ok && f > a.MinCount()+b.MinCount() {
				t.Fatalf("trial %d: dropped key %d with f=%d above merged min %d",
					trial, k, f, a.MinCount()+b.MinCount())
			}
		}
		// Merged summary remains usable: more increments keep invariants.
		m.Increment(99999)
		if c, _, ok := m.Query(99999); ok && c == 0 {
			t.Fatal("merged summary broken after further increments")
		}
	}
}

// TestMergeStructureOrdered: the rebuilt bucket list must be strictly
// ascending so ForEach's descending iteration stays correct.
func TestMergeStructureOrdered(t *testing.T) {
	f := func(keysA, keysB []uint8) bool {
		a := New[uint64](16)
		b := New[uint64](16)
		for _, k := range keysA {
			a.Increment(uint64(k % 32))
		}
		for _, k := range keysB {
			b.Increment(uint64(k % 32))
		}
		m := Merge(a, b, 16)
		prev := ^uint64(0)
		ok := true
		m.ForEach(func(_ uint64, count, err uint64) {
			if count > prev || err > count {
				ok = false
			}
			prev = count
		})
		var sum uint64
		m.ForEach(func(_ uint64, count, _ uint64) { sum += count })
		// Σ counts can exceed N only through merge-induced overcounts,
		// which are bounded by the two min counts per key.
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmpty(t *testing.T) {
	a := New[uint64](4)
	b := New[uint64](4)
	m := Merge(a, b, 4)
	if m.N() != 0 || m.Len() != 0 {
		t.Fatal("merge of empties not empty")
	}
	a.Increment(1)
	m = Merge(a, b, 4)
	if c, _, ok := m.Query(1); !ok || c != 1 {
		t.Fatal("merge with one empty side lost the key")
	}
}

func TestMergePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Merge(New[uint64](4), New[uint64](4), 0)
}
