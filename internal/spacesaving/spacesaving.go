// Package spacesaving implements the Space Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005), the per-lattice-node heavy-hitters
// building block the paper uses ("we use Space Saving because it is believed
// to have an empirical edge over other algorithms").
//
// Summary is the Stream-Summary variant with O(1) worst-case updates — the
// property Theorem 6.18 relies on for RHHH's O(1) update complexity. Heap is
// a min-heap variant with O(log n) updates that also supports weighted
// increments efficiently; it exists for the weighted-input extension and as
// an ablation baseline.
//
// Summary stores all counters in one flat slab indexed by an open-addressed
// hash table, and the Stream-Summary bucket list links counters and buckets
// by slab index rather than by pointer. The slab is split hot/cold: the hot
// array holds exactly the fields a monitored-key increment touches (key +
// bucket/sibling links), the cold array the fields only insertions, evictions
// and mid-list detaches need (error, index lane position). A steady-state
// update therefore touches a handful of contiguous arrays — and within the
// slab a single, denser cache line — instead of chasing map buckets and
// heap-allocated nodes, and the structure performs zero allocations after
// construction.
//
// Batched updates run a two-phase kernel (Resolve + Apply, see those methods)
// that issues every update's index and slab loads for a whole chunk before
// applying any of them, so the cache misses of up to BatchChunk independent
// updates overlap instead of serializing through the per-key path.
//
// Guarantees (for capacity c after N unit updates):
//
//   - every monitored key satisfies count−error ≤ f ≤ count;
//   - every key with f > N/c is monitored;
//   - an unmonitored key has f ≤ MinCount() ≤ N/c.
//
// These are exactly the (ε,0)-Frequency Estimation requirements of
// Definition 4 with c = ⌈1/ε⌉ counters.
package spacesaving

import (
	"hash/maphash"
	"math/bits"
	"math/rand/v2"
)

// nilIdx is the shared sentinel for "no counter / no bucket" slab links.
const nilIdx = int32(-1)

// hotCounter is the hot half of one monitored key's state: the fields every
// increment of a monitored key touches. Counters with equal counts hang off a
// shared bucket; the count itself lives on the bucket (the Stream-Summary
// trick that makes increments O(1)). Links are slab indices. Sibling lists
// are singly linked: head removal (the eviction case) touches no sibling,
// and mid-list removal swaps the head's key into the vacated position
// (detach), so no counter ever needs a back link.
type hotCounter[K comparable] struct {
	key  K
	bkt  int32
	next int32 // next sibling in the same bucket
}

// coldCounter is the cold half: fields only the insertion, eviction and
// mid-list detach paths touch, split off so the monitored-key fast path
// never loads their cache lines.
type coldCounter struct {
	err    uint64
	tabPos uint32 // lane position in the cuckoo index (stashPos if stashed)
}

// bucket groups counters with the same count. Buckets form a doubly linked
// list ordered by count ascending; links are indices into the bucket slab.
type bucket struct {
	count      uint64
	head       int32
	prev, next int32
}

// BatchChunk is the plan depth of the two-phase batch kernel: Resolve issues
// the loads for up to this many updates before Apply retires them. 64 keeps
// the whole plan (slots + hashes) in two cache lines while saturating the
// load buffers of current cores.
const BatchChunk = 64

// Summary is a Stream-Summary Space Saving instance. It is not safe for
// concurrent use; RHHH gives each lattice node its own instance.
type Summary[K comparable] struct {
	capacity int
	hot      []hotCounter[K] // hot counter slab; [0:used) are live
	cold     []coldCounter   // cold counter slab, parallel to hot
	used     int
	buckets  []bucket // bucket slab, recycled through freeBkt
	min      int32    // bucket with the smallest count, or nilIdx when empty
	freeBkt  int32    // free bucket list, avoids steady-state allocation
	n        uint64   // total weight of all increments

	// Bucketized cuckoo index: key → slab slot, two candidate buckets of
	// four lanes each (in the style of cuckoo filters and Cuckoo Heavy
	// Keeper's stores). fps holds one fingerprint byte per lane packed four
	// to a word — a lookup SWAR-compares four lanes at once and a deletion
	// is a single byte clear, with no probe chains to repair. refs holds
	// the slab slot per lane. The alternate bucket is derived from the
	// occupied bucket and the fingerprint alone, so displacements never
	// rehash keys. stash absorbs the astronomically rare displacement
	// overflow (the table runs at ~50% of a scheme that sustains >95%).
	fps     []uint32 // 4 fingerprint bytes per bucket; 0 = free lane
	refs    []int32  // 4 slot ids per bucket
	bktMask uint32   // number of buckets − 1 (power of two)
	stash   []int32  // overflowed slots, scanned only when non-empty
	hash    func(k K) uint32

	// Two-phase batch plan (see Resolve/Apply): resolved slab slot and key
	// hash per chunk position, reused across chunks. planDup records whether
	// the chunk may contain the same unmonitored key twice — only then can an
	// earlier admission invalidate a later planned miss, forcing Apply's
	// fallback lookup.
	planSlot []int32
	planHash []uint32
	planDup  bool

	// Lazy bucket coalescing (Apply only): while lazy is set, a bump that
	// empties a bucket defers the unlink instead of doing list surgery
	// inline. Emptied buckets keep their count and chain position — a later
	// bump to the same count reuses them exactly where a fresh bucket would
	// have been inserted — and applyEnd sweeps the still-empty ones.
	// deferred is the dirty set; defMark (parallel to buckets) dedups it and
	// is cleared by any eager removeBucket so the sweep never unlinks twice.
	lazy     bool
	deferred []int32
	defMark  []uint8

	// Duplicate-miss detection scratch: a small epoch-stamped open-addressed
	// table (miss hash → plan index) giving Resolve/ResolveAcross an exact
	// planDup answer in O(1) per miss — no quadratic scan, no conservative
	// bound that would shut the batched-eviction path off on the all-miss
	// chunks it exists for. ResolveAcross borrows the first window summary's
	// table for the whole window (single-threaded like every other use).
	dupIdx   []int32
	dupStamp []uint32
	dupEpoch uint32

	warmSink uint64 // defeats dead-load elimination of the resolve loads

	// evictions counts minimum-counter takeovers over the summary's
	// lifetime (it survives Reset so published telemetry stays monotone).
	// Owned by the updating goroutine like all other state; readers go
	// through the publication path, never this field.
	evictions uint64
}

// dupTabSize is the duplicate-detection table size: double BatchChunk, so
// the table never exceeds 50% load and linear probing stays short.
const dupTabSize = 2 * BatchChunk

// dupReset starts a new detection round, clearing stamps on epoch wrap.
func (s *Summary[K]) dupReset() {
	s.dupEpoch++
	if s.dupEpoch == 0 {
		clear(s.dupStamp)
		s.dupEpoch = 1
	}
}

// fpOf derives a non-zero fingerprint byte from a key hash.
func fpOf(h uint32) uint32 { return (h >> 24) | 1 }

// altBucket returns the other candidate bucket for a fingerprint: an
// xor-displacement keyed on the fingerprint byte (cuckoo-filter style), so
// it is an involution computable without the key.
func altBucket(b, fp, mask uint32) uint32 { return (b ^ (fp * 0x5bd1)) & mask }

// swarMatch returns a mask with bit 8i+7 set when byte i of w equals the
// (repeated) byte b.
func swarMatch(w, b uint32) uint32 {
	x := w ^ (b * 0x01010101)
	return (x - 0x01010101) &^ x & 0x80808080
}

// swarZero returns a mask with bit 8i+7 set when byte i of w is zero.
func swarZero(w uint32) uint32 {
	return (w - 0x01010101) &^ w & 0x80808080
}

// hashFuncFor picks the key-hash function at construction time: integer
// carriers (the IPv4 key types) get an inline splitmix64 finalizer, Addr and
// AddrPair mix their words directly, and any other comparable type falls
// back to hash/maphash. Each summary gets its own random seed.
func hashFuncFor[K comparable]() func(k K) uint32 {
	seed := rand.Uint64()
	mix := func(z uint64) uint32 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return uint32(z ^ (z >> 31))
	}
	var fn any
	switch any(*new(K)).(type) {
	case uint32:
		fn = func(k uint32) uint32 { return mix(seed ^ uint64(k)) }
	case uint64:
		fn = func(k uint64) uint32 { return mix(seed ^ k) }
	default:
		ms := maphash.MakeSeed()
		return func(k K) uint32 { return uint32(maphash.Comparable(ms, k)) }
	}
	return fn.(func(k K) uint32)
}

// New returns a Space Saving instance with the given number of counters.
// capacity must be at least 1.
func New[K comparable](capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	nBkt := uint32(2) // ≥ 2 buckets so the two candidates can differ
	for nBkt*4 < uint32(2*capacity) {
		nBkt <<= 1
	}
	s := &Summary[K]{
		capacity: capacity,
		hot:      make([]hotCounter[K], capacity),
		cold:     make([]coldCounter, capacity),
		buckets:  make([]bucket, 0, capacity+1),
		min:      nilIdx,
		freeBkt:  nilIdx,
		fps:      make([]uint32, nBkt),
		refs:     make([]int32, nBkt*4),
		bktMask:  nBkt - 1,
		stash:    make([]int32, 0, 8),
		hash:     hashFuncFor[K](),
		planSlot: make([]int32, BatchChunk),
		planHash: make([]uint32, BatchChunk),
		deferred: make([]int32, 0, BatchChunk),
		defMark:  make([]uint8, 0, capacity+1),
		dupIdx:   make([]int32, dupTabSize),
		dupStamp: make([]uint32, dupTabSize),
	}
	return s
}

// Capacity returns the number of counters the instance was built with.
func (s *Summary[K]) Capacity() int { return s.capacity }

// N returns the total weight processed so far.
func (s *Summary[K]) N() uint64 { return s.n }

// Len returns the number of currently monitored keys.
func (s *Summary[K]) Len() int { return s.used }

// Evictions returns the lifetime count of minimum-counter takeovers.
func (s *Summary[K]) Evictions() uint64 { return s.evictions }

// StashLen returns the number of slots parked in the cuckoo-index stash.
func (s *Summary[K]) StashLen() int { return len(s.stash) }

// MinCount returns the smallest tracked count, or 0 while the table has
// spare capacity (an unseen key then provably has frequency 0).
func (s *Summary[K]) MinCount() uint64 {
	if s.used < s.capacity || s.min == nilIdx {
		return 0
	}
	return s.buckets[s.min].count
}

// lookup returns the slab slot of k (whose hash is h), or nilIdx when
// unmonitored. The two candidate buckets are independent loads, and each is
// compared four lanes at a time; the hot slab is only loaded to confirm a
// fingerprint match.
func (s *Summary[K]) lookup(k K, h uint32) int32 {
	fp := fpOf(h)
	b := h & s.bktMask
	for m := swarMatch(s.fps[b], fp); m != 0; m &= m - 1 {
		lane := laneOf(m)
		if v := s.refs[b*4+lane]; s.hot[v].key == k {
			return v
		}
	}
	b2 := altBucket(b, fp, s.bktMask)
	for m := swarMatch(s.fps[b2], fp); m != 0; m &= m - 1 {
		lane := laneOf(m)
		if v := s.refs[b2*4+lane]; s.hot[v].key == k {
			return v
		}
	}
	if len(s.stash) != 0 {
		for _, v := range s.stash {
			if s.hot[v].key == k {
				return v
			}
		}
	}
	return nilIdx
}

// laneOf maps a SWAR match bit to its lane index (bits 7/15/23/31 → 0..3).
func laneOf(m uint32) uint32 {
	return (uint32(bits.TrailingZeros32(m)) - 7) >> 3
}

// indexInsert records slot under hash h, remembering the lane position in
// the slot so deletion is position-direct. The key must not be present.
func (s *Summary[K]) indexInsert(slot int32, h uint32) {
	fp := fpOf(h)
	b := h & s.bktMask
	if s.place(b, fp, slot) || s.place(altBucket(b, fp, s.bktMask), fp, slot) {
		return
	}
	// Both candidates full: displace residents along their alternate
	// buckets. Bounded walk; overflow lands in the stash (at ~50% load the
	// walk virtually never exceeds a couple of hops).
	curFP, cur := fp, slot
	b = altBucket(b, fp, s.bktMask)
	for kick := 0; kick < 64; kick++ {
		// Rotate out lane 0 of the full bucket (the choice only affects
		// index layout, never Space Saving semantics).
		lane := uint32(kick) & 3
		pos := b*4 + lane
		oldFP := (s.fps[b] >> (lane * 8)) & 0xff
		old := s.refs[pos]
		s.fps[b] = s.fps[b]&^(0xff<<(lane*8)) | curFP<<(lane*8)
		s.refs[pos] = cur
		s.cold[cur].tabPos = pos
		curFP, cur = oldFP, old
		b = altBucket(b, curFP, s.bktMask)
		if s.place(b, curFP, cur) {
			return
		}
	}
	s.cold[cur].tabPos = stashPos
	s.stash = append(s.stash, cur)
}

// place puts slot into a free lane of bucket b, if any.
func (s *Summary[K]) place(b, fp uint32, slot int32) bool {
	z := swarZero(s.fps[b])
	if z == 0 {
		return false
	}
	lane := laneOf(z)
	s.fps[b] |= fp << (lane * 8)
	pos := b*4 + lane
	s.refs[pos] = slot
	s.cold[slot].tabPos = pos
	return true
}

// stashPos marks a counter whose index entry lives in the stash.
const stashPos = ^uint32(0)

// indexDelete removes slot from the index: clear its fingerprint byte —
// cuckoo probing has no chains to repair.
func (s *Summary[K]) indexDelete(slot int32) {
	pos := s.cold[slot].tabPos
	if pos == stashPos {
		for i, v := range s.stash {
			if v == slot {
				s.stash[i] = s.stash[len(s.stash)-1]
				s.stash = s.stash[:len(s.stash)-1]
				return
			}
		}
		return
	}
	s.fps[pos/4] &^= 0xff << ((pos & 3) * 8)
}

// Increment adds one occurrence of key k. O(1) worst case.
func (s *Summary[K]) Increment(k K) {
	s.incrementH(k, s.hash(k))
}

// incrementH is Increment with the key hash already computed.
func (s *Summary[K]) incrementH(k K, h uint32) {
	s.n++
	if c := s.lookup(k, h); c != nilIdx {
		s.bump(c, s.buckets[s.hot[c].bkt].count+1)
		return
	}
	s.insertOrEvict(k, h, 1)
}

// insertOrEvict admits an unmonitored key carrying weight w: a fresh counter
// while below capacity, otherwise the classic Space Saving takeover of a
// minimum-bucket counter (any one; we take the head).
func (s *Summary[K]) insertOrEvict(k K, h uint32, w uint64) {
	if s.used < s.capacity {
		c := int32(s.used)
		s.used++
		s.hot[c].key = k
		s.cold[c].err = 0
		s.indexInsert(c, h)
		s.attach(c, w)
		return
	}
	if s.lazy {
		s.coalesceMin() // deferred empties may be parked at the front
	}
	c := s.buckets[s.min].head
	minCount := s.buckets[s.min].count
	s.evictions++
	s.indexDelete(c)
	s.hot[c].key = k
	s.cold[c].err = minCount
	s.indexInsert(c, h)
	s.bump(c, minCount+w)
}

// Resolve plans the next Apply for a chunk of up to BatchChunk keys: it runs
// the full cuckoo-index lookup for every key, recording hit/miss and the hit
// slab slot, and touches the hit counters' bucket lines — so by the time
// Apply replays the plan, every cache line a steady-state update needs is in
// flight or resident, and the misses of the whole chunk overlap instead of
// serializing through the dependent-load chain of the per-key path.
//
// Resolve reads but never mutates measurement state. Apply (or
// ApplyWeighted) must follow with the same keys before any other mutation of
// the summary; the plan does not survive interleaved updates.
func (s *Summary[K]) Resolve(keys []K) {
	if len(keys) > len(s.planSlot) {
		s.planSlot = make([]int32, len(keys))
		s.planHash = make([]uint32, len(keys))
	}
	var warm uint64
	misses := 0
	for i, k := range keys {
		h := s.hash(k)
		s.planHash[i] = h
		c := s.lookup(k, h)
		s.planSlot[i] = c
		if c != nilIdx {
			// Load the bucket line the bump will read; the count feeds the
			// warm sink so the load cannot be elided.
			warm += s.buckets[s.hot[c].bkt].count
		} else {
			misses++
		}
	}
	// Duplicate-miss detection: a planned miss only goes stale when the same
	// key was admitted earlier in the chunk, i.e. the chunk repeats an
	// unmonitored key. Each miss probes the epoch-stamped table once — exact
	// detection in O(misses), with no bound that would disable the batched
	// eviction path on all-miss chunks.
	s.planDup = false
	if misses > 1 {
		s.dupReset()
	dupScan:
		for i, k := range keys {
			if s.planSlot[i] != nilIdx {
				continue
			}
			pos := s.planHash[i] & (dupTabSize - 1)
			for s.dupStamp[pos] == s.dupEpoch {
				if keys[s.dupIdx[pos]] == k {
					s.planDup = true
					break dupScan
				}
				pos = (pos + 1) & (dupTabSize - 1)
			}
			s.dupStamp[pos] = s.dupEpoch
			s.dupIdx[pos] = int32(i)
		}
	}
	if misses > 0 && s.min != nilIdx {
		// The eviction path of any planned miss starts at the min bucket;
		// its victims are the leading siblings of the min-bucket list. Walk
		// them read-only, touching the three lines each eviction will write
		// — the victim's hot entry, its cold entry, and its index lane —
		// so the apply's evictions hit warm lines too.
		warm += s.buckets[s.min].count
		c := s.buckets[s.min].head
		for i := 0; i < misses && c != nilIdx; i++ {
			pos := s.cold[c].tabPos
			if pos != stashPos {
				warm += uint64(s.fps[pos/4])
			}
			c = s.hot[c].next
		}
	}
	s.warmSink += warm
}

// Apply replays a Resolve plan, adding one occurrence of each key in order —
// equivalent to calling Increment per key. Planned hits skip the index
// probes entirely; a plan entry invalidated by an earlier update in the same
// chunk (a detach swap moved the key, an eviction removed it, or an earlier
// miss admitted it) falls back to a fresh lookup, so the result is
// bit-identical to the sequential path.
func (s *Summary[K]) Apply(keys []K) {
	s.ApplyPlanned(keys, s.planSlot[:len(keys)], s.planHash[:len(keys)], s.planDup)
}

// ApplyWeighted replays a Resolve plan with per-key weights — equivalent to
// calling IncrementBy per (key, weight) pair, including the w == 0 no-op.
func (s *Summary[K]) ApplyWeighted(keys []K, ws []uint64) {
	s.ApplyWeightedPlanned(keys, ws, s.planSlot[:len(keys)], s.planHash[:len(keys)], s.planDup)
}

// ApplyPlanned is Apply with a caller-held plan (see ResolveAcross): slots
// and hashes are parallel to keys. mayDup tells Apply whether the chunk may
// repeat an unmonitored key; passing true is always safe and only costs a
// warm re-lookup per planned miss after the chunk's first admission.
//
// Apply runs with lazy bucket coalescing: buckets emptied by a bump stay in
// the chain (count intact, invisible to every observable) until the end of
// the chunk, so per-sample unlink/relink surgery stays out of the hot loop.
// When the chunk provably repeats no unmonitored key (mayDup false), runs of
// consecutive planned misses at capacity are retired by evictRun — one walk
// of the min-bucket chain per count level instead of per-victim surgery.
// Both disciplines are bit-identical to the sequential path on every
// observable (N, Len, MinCount, the ForEach sequence).
func (s *Summary[K]) ApplyPlanned(keys []K, slots []int32, hashes []uint32, mayDup bool) {
	s.lazy = true
	dirty := false // a planned-miss key was admitted during this chunk
	n := len(keys)
	for i := 0; i < n; {
		k := keys[i]
		c := slots[i]
		if c != nilIdx {
			s.n++
			if s.hot[c].key == k {
				s.bump(c, s.buckets[s.hot[c].bkt].count+1)
				i++
				continue
			}
			// Stale hit: a detach swap moved the key, or an eviction removed
			// it — a fresh lookup decides which.
			h := hashes[i]
			if c = s.lookup(k, h); c != nilIdx {
				s.bump(c, s.buckets[s.hot[c].bkt].count+1)
			} else {
				s.insertOrEvict(k, h, 1)
			}
			i++
			continue
		}
		if !mayDup && s.used == s.capacity {
			// Batched eviction: every following planned miss is a distinct,
			// still-unmonitored key (no duplicate can have admitted it), so
			// the whole run evicts in one pass.
			j := i + 1
			for j < n && slots[j] == nilIdx {
				j++
			}
			s.n += uint64(j - i)
			s.evictRun(keys[i:j], hashes[i:j], 1)
			i = j
			continue
		}
		// Planned miss: still a miss unless this chunk admitted the same key
		// earlier, which requires both an admission and a duplicated miss.
		s.n++
		h := hashes[i]
		if dirty && mayDup {
			if c = s.lookup(k, h); c != nilIdx {
				s.bump(c, s.buckets[s.hot[c].bkt].count+1)
				i++
				continue
			}
		}
		s.insertOrEvict(k, h, 1)
		dirty = true
		i++
	}
	s.applyEnd()
}

// ApplyWeightedPlanned is ApplyWeighted with a caller-held plan. Runs of
// consecutive equal-weight planned misses batch through evictRun like
// ApplyPlanned's unit runs.
func (s *Summary[K]) ApplyWeightedPlanned(keys []K, ws []uint64, slots []int32, hashes []uint32, mayDup bool) {
	s.lazy = true
	dirty := false
	n := len(keys)
	for i := 0; i < n; {
		w := ws[i]
		if w == 0 {
			i++
			continue
		}
		k := keys[i]
		c := slots[i]
		if c != nilIdx {
			s.n += w
			if s.hot[c].key == k {
				s.bump(c, s.buckets[s.hot[c].bkt].count+w)
				i++
				continue
			}
			h := hashes[i]
			if c = s.lookup(k, h); c != nilIdx {
				s.bump(c, s.buckets[s.hot[c].bkt].count+w)
			} else {
				s.insertOrEvict(k, h, w)
			}
			i++
			continue
		}
		if !mayDup && s.used == s.capacity {
			j := i + 1
			for j < n && slots[j] == nilIdx && ws[j] == w {
				j++
			}
			s.n += uint64(j-i) * w
			s.evictRun(keys[i:j], hashes[i:j], w)
			i = j
			continue
		}
		s.n += w
		h := hashes[i]
		if dirty && mayDup {
			if c = s.lookup(k, h); c != nilIdx {
				s.bump(c, s.buckets[s.hot[c].bkt].count+w)
				i++
				continue
			}
		}
		s.insertOrEvict(k, h, w)
		dirty = true
		i++
	}
	s.applyEnd()
}

// evictRun admits a run of distinct, currently-unmonitored keys, each
// carrying weight w, against a summary at capacity — the batched equivalent
// of calling insertOrEvict per key. Victims pop off the min-bucket chain in
// order (the exact victims the sequential path would pick), each takeover is
// one index delete + one index insert, and the chain splice into the
// count-m+w target bucket happens once per count level instead of once per
// victim. When a level drains the min bucket the next level restarts from
// the new minimum, reproducing the sequential cascade.
func (s *Summary[K]) evictRun(keys []K, hashes []uint32, w uint64) {
	for i := 0; i < len(keys); {
		s.coalesceMin()
		b0 := s.min
		m := s.buckets[b0].count
		newCount := m + w
		// Locate or create the target bucket, exactly where the sequential
		// bump's walk from the min bucket would land it.
		prev := b0
		b := s.buckets[b0].next
		for b != nilIdx && s.buckets[b].count < newCount {
			prev = b
			b = s.buckets[b].next
		}
		if b == nilIdx || s.buckets[b].count != newCount {
			b = s.newBucket(newCount, prev, b)
		}
		// Pop victims off the min chain, assigning run keys in stream order;
		// pushCounter is LIFO, so threading each victim in front of the
		// previous one reproduces the sequential chain exactly.
		head := s.buckets[b].head
		c := s.buckets[b0].head
		for c != nilIdx && i < len(keys) {
			next := s.hot[c].next
			s.evictions++
			s.indexDelete(c)
			s.hot[c].key = keys[i]
			s.cold[c].err = m
			s.indexInsert(c, hashes[i])
			s.hot[c].bkt = b
			s.hot[c].next = head
			head = c
			c = next
			i++
		}
		s.buckets[b].head = head
		s.buckets[b0].head = c
		if c == nilIdx {
			s.removeBucket(b0)
		}
	}
}

// coalesceMin eagerly unlinks lazily-deferred empty buckets sitting at the
// front of the chain, so the eviction path always sees the true minimum.
func (s *Summary[K]) coalesceMin() {
	for s.min != nilIdx && s.buckets[s.min].head == nilIdx {
		s.removeBucket(s.min)
	}
}

// deferCoalesce queues an emptied bucket for the end-of-chunk sweep.
func (s *Summary[K]) deferCoalesce(b int32) {
	if s.defMark[b] == 0 {
		s.defMark[b] = 1
		s.deferred = append(s.deferred, b)
	}
}

// applyEnd leaves lazy mode: deferred buckets that are still empty (and not
// already eagerly removed or refilled at their count) are unlinked now. The
// common nothing-deferred case must stay inline in the Apply loops, so the
// sweep itself is split out.
func (s *Summary[K]) applyEnd() {
	s.lazy = false
	if len(s.deferred) != 0 {
		s.sweepDeferred()
	}
}

// sweepDeferred unlinks the still-empty deferred buckets.
func (s *Summary[K]) sweepDeferred() {
	for _, b := range s.deferred {
		if s.defMark[b] != 0 {
			s.defMark[b] = 0
			if s.buckets[b].head == nilIdx {
				s.removeBucket(b)
			}
		}
	}
	s.deferred = s.deferred[:0]
}

// ResolveAcross plans one update per sample across many summaries at once —
// the cross-node half of the batch kernel. Sample i is keys[i] against
// sums[nodes[i]]; the resolved slab slot (or nilIdx) and key hash land in
// slots[i] / hashes[i], which a following ApplyPlanned replays run by run.
// len(keys) must be at most BatchChunk; summaries may repeat, but a window's
// same-summary samples must be contiguous (group by node first, as the
// engine's counting sort does) so that nothing mutates a summary between a
// sample's resolve and its apply.
//
// Unlike per-summary Resolve — whose dependent probe chain (index word →
// lane ref → slab confirm → bucket line) serializes per call — ResolveAcross
// walks the whole window level by level: first every sample's two index
// words, then every sample's candidate ref and slab confirm, then every
// sample's bucket or eviction-victim lines. Each level issues up to
// BatchChunk independent loads, so the window's cache misses overlap to the
// limit of the machine's memory-level parallelism instead of stacking into
// per-node round trips.
//
// Read-only, like Resolve. Samples that need the stash or see fingerprint
// collisions fall back to the full lookup inside the confirm level.
//
// The returned mayDup reports whether the window may repeat an unmonitored
// (node, key) pair — the per-window analogue of Resolve's planDup, computed
// with the same bounded scan. Passing it to ApplyPlanned lets a duplicate-
// free window (the overwhelmingly common case) take the batched-eviction
// path.
func ResolveAcross[K comparable](sums []*Summary[K], nodes []int32, keys []K, slots []int32, hashes []uint32) (mayDup bool) {
	n := len(keys)
	if n > BatchChunk {
		panic("spacesaving: ResolveAcross window exceeds BatchChunk")
	}
	const (
		candNone = int32(-1) // no fingerprint match: certain miss
		candSlow = int32(-2) // collisions or stash: full lookup
	)
	var b1, w1, w2 [BatchChunk]uint32
	var cand [BatchChunk]int32 // ref position of the single candidate lane
	// Level 1: hash every key and load both candidate index words.
	for i := 0; i < n; i++ {
		s := sums[nodes[i]]
		h := s.hash(keys[i])
		hashes[i] = h
		b := h & s.bktMask
		b1[i] = b
		w1[i] = s.fps[b]
		w2[i] = s.fps[altBucket(b, fpOf(h), s.bktMask)]
	}
	// Level 2: pick each sample's candidate lane from the loaded words.
	for i := 0; i < n; i++ {
		s := sums[nodes[i]]
		fp := fpOf(hashes[i])
		m1 := swarMatch(w1[i], fp)
		m2 := swarMatch(w2[i], fp)
		switch {
		case len(s.stash) != 0 || (m1 != 0 && m2 != 0) ||
			m1&(m1-1) != 0 || m2&(m2-1) != 0:
			cand[i] = candSlow
		case m1 != 0:
			cand[i] = int32(b1[i]*4 + laneOf(m1))
		case m2 != 0:
			b := altBucket(b1[i], fp, s.bktMask)
			cand[i] = int32(b*4 + laneOf(m2))
		default:
			cand[i] = candNone
		}
	}
	// Level 3: load the candidate refs and confirm against the hot slab.
	misses := 0
	for i := 0; i < n; i++ {
		switch cand[i] {
		case candSlow:
			s := sums[nodes[i]]
			slots[i] = s.lookup(keys[i], hashes[i])
		case candNone:
			slots[i] = nilIdx
		default:
			s := sums[nodes[i]]
			if v := s.refs[cand[i]]; s.hot[v].key == keys[i] {
				slots[i] = v
			} else {
				slots[i] = nilIdx // lone fingerprint collision: certain miss
			}
		}
		if slots[i] == nilIdx {
			misses++
		}
	}
	// Duplicate-miss detection, as in Resolve but keyed on (node, key): each
	// miss probes the borrowed epoch-stamped table once, so only misses pay
	// and the answer is exact. Per-summary hash seeds differ, so the node is
	// folded into the probe hash but equality still compares both fields.
	if misses > 1 {
		s0 := sums[0] // one fixed table across windows, so its lines stay hot
		s0.dupReset()
	dupScan:
		for i := 0; i < n; i++ {
			if slots[i] != nilIdx {
				continue
			}
			pos := (hashes[i] ^ uint32(nodes[i])*0x9e3779b1) & (dupTabSize - 1)
			for s0.dupStamp[pos] == s0.dupEpoch {
				j := s0.dupIdx[pos]
				if nodes[j] == nodes[i] && keys[j] == keys[i] {
					mayDup = true
					break dupScan
				}
				pos = (pos + 1) & (dupTabSize - 1)
			}
			s0.dupStamp[pos] = s0.dupEpoch
			s0.dupIdx[pos] = int32(i)
		}
	}
	// Level 4: warm the lines the apply phase will write — the hit buckets,
	// and for misses the eviction victim's cold entry and index lane.
	var warm uint64
	for i := 0; i < n; i++ {
		s := sums[nodes[i]]
		if c := slots[i]; c != nilIdx {
			warm += s.buckets[s.hot[c].bkt].count
		} else if s.used == s.capacity && s.min != nilIdx {
			v := s.buckets[s.min].head
			if v != nilIdx {
				if pos := s.cold[v].tabPos; pos != stashPos {
					warm += uint64(s.fps[pos/4])
				}
			}
		}
	}
	if n > 0 {
		sums[nodes[0]].warmSink += warm
	}
	return mayDup
}

// IncrementBatch adds one occurrence of each key, in order — equivalent to
// calling Increment per key. Keys are processed in BatchChunk-sized chunks
// through the two-phase kernel: Resolve issues every chunk update's index,
// slab and bucket loads up front so their cache misses overlap, then Apply
// retires the updates against warm lines.
func (s *Summary[K]) IncrementBatch(keys []K) {
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > BatchChunk {
			chunk = chunk[:BatchChunk]
		}
		keys = keys[len(chunk):]
		s.Resolve(chunk)
		s.Apply(chunk)
	}
}

// IncrementBatchWeighted adds weight ws[i] of keys[i], in order — equivalent
// to calling IncrementBy per pair. len(ws) must equal len(keys). Chunked
// through the same two-phase kernel as IncrementBatch.
func (s *Summary[K]) IncrementBatchWeighted(keys []K, ws []uint64) {
	if len(ws) != len(keys) {
		panic("spacesaving: keys/weights length mismatch")
	}
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > BatchChunk {
			chunk = chunk[:BatchChunk]
		}
		s.Resolve(chunk)
		s.ApplyWeighted(chunk, ws[:len(chunk)])
		keys = keys[len(chunk):]
		ws = ws[len(chunk):]
	}
}

// IncrementBy adds weight w of key k. For monitored keys the counter may
// skip past several buckets; the walk is bounded by the number of distinct
// counts, so this is O(min(capacity, w)) worst case — use Heap when weighted
// updates dominate.
func (s *Summary[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	h := s.hash(k)
	if c := s.lookup(k, h); c != nilIdx {
		s.bump(c, s.buckets[s.hot[c].bkt].count+w)
		return
	}
	s.insertOrEvict(k, h, w)
}

// Query returns the counter value, its maximum overestimation error, and
// whether k is currently monitored.
func (s *Summary[K]) Query(k K) (count, err uint64, ok bool) {
	c := s.lookup(k, s.hash(k))
	if c == nilIdx {
		return 0, 0, false
	}
	return s.buckets[s.hot[c].bkt].count, s.cold[c].err, true
}

// Bounds returns an upper and a lower bound on the true frequency of k:
// (count, count−error) for monitored keys, (MinCount, 0) otherwise.
func (s *Summary[K]) Bounds(k K) (upper, lower uint64) {
	if c := s.lookup(k, s.hash(k)); c != nilIdx {
		count := s.buckets[s.hot[c].bkt].count
		return count, count - s.cold[c].err
	}
	return s.MinCount(), 0
}

// ForEach calls fn for every monitored key with its count and error, in
// descending count order.
func (s *Summary[K]) ForEach(fn func(k K, count, err uint64)) {
	if s.min == nilIdx {
		return
	}
	last := s.min
	for s.buckets[last].next != nilIdx {
		last = s.buckets[last].next
	}
	for b := last; b != nilIdx; b = s.buckets[b].prev {
		for c := s.buckets[b].head; c != nilIdx; c = s.hot[c].next {
			fn(s.hot[c].key, s.buckets[b].count, s.cold[c].err)
		}
	}
}

// Reset clears all state.
func (s *Summary[K]) Reset() {
	s.used = 0
	s.buckets = s.buckets[:0]
	s.min = nilIdx
	s.freeBkt = nilIdx
	s.n = 0
	s.lazy = false
	s.deferred = s.deferred[:0]
	s.defMark = s.defMark[:0]
	for i := range s.fps {
		s.fps[i] = 0
	}
	s.stash = s.stash[:0]
}

// attach inserts a brand-new counter with the given count into the bucket
// list (used only while below capacity, so count is small; the target bucket
// is at or near the front).
func (s *Summary[K]) attach(c int32, count uint64) {
	b := s.min
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < count {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != count {
		b = s.newBucket(count, prev, b)
	}
	s.pushCounter(b, c)
}

// bump moves counter c's key (currently in some bucket) to count newCount,
// creating/removing buckets as needed. newCount must exceed c's count. The
// key may settle in a different slab slot (see detach).
func (s *Summary[K]) bump(c int32, newCount uint64) {
	old := s.hot[c].bkt
	// Fast path: c is its bucket's only counter and the next bucket (if
	// any) still exceeds newCount — the bucket's count moves in place, with
	// no list surgery at all. The common case for the skewed head of the
	// distribution, where counts are unique.
	if s.buckets[old].head == c && s.hot[c].next == nilIdx {
		next := s.buckets[old].next
		if next == nilIdx || s.buckets[next].count > newCount {
			s.buckets[old].count = newCount
			return
		}
	}
	carrier := s.detach(c)
	// Walk forward to the insertion point. For unit increments this is at
	// most one step, preserving O(1).
	b := old
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < newCount {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != newCount {
		b = s.newBucket(newCount, prev, b)
	}
	s.pushCounter(b, carrier)
	if s.buckets[old].head == nilIdx {
		if s.lazy {
			s.deferCoalesce(old)
		} else {
			s.removeBucket(old)
		}
	}
}

// pushCounter puts c at the head of bucket b. No sibling is touched.
func (s *Summary[K]) pushCounter(b, c int32) {
	s.hot[c].bkt = b
	s.hot[c].next = s.buckets[b].head
	s.buckets[b].head = c
}

// detach removes counter c's key from its bucket (without removing an
// emptied bucket; callers handle that so bump can reuse the position) and
// returns the slab slot now carrying that key. When c heads its bucket —
// always true for evictions — this is a pointer pop touching only c's hot
// entry. A mid-list c instead swaps contents with the bucket head: the
// head's key settles into c's list position and the freed head slot carries
// the detached key onward; the index entries of both keys are re-pointed
// (the one fast-path case that pays for the cold lines).
func (s *Summary[K]) detach(c int32) int32 {
	b := s.hot[c].bkt
	h := s.buckets[b].head
	if h == c {
		s.buckets[b].head = s.hot[c].next
		return c
	}
	ck, cerr, cpos := s.hot[c].key, s.cold[c].err, s.cold[c].tabPos
	s.hot[c].key = s.hot[h].key
	s.cold[c].err = s.cold[h].err
	s.cold[c].tabPos = s.cold[h].tabPos
	s.setRef(s.cold[c].tabPos, h, c)
	s.buckets[b].head = s.hot[h].next
	s.hot[h].key = ck
	s.cold[h].err = cerr
	s.cold[h].tabPos = cpos
	s.setRef(cpos, c, h)
	return h
}

// setRef re-points the index entry at pos from oldSlot to newSlot.
func (s *Summary[K]) setRef(pos uint32, oldSlot, newSlot int32) {
	if pos == stashPos {
		for i, v := range s.stash {
			if v == oldSlot {
				s.stash[i] = newSlot
				return
			}
		}
		return
	}
	s.refs[pos] = newSlot
}

// newBucket inserts a bucket with the given count between prev and next,
// recycling a freed slab entry when one exists.
func (s *Summary[K]) newBucket(count uint64, prev, next int32) int32 {
	b := s.freeBkt
	if b != nilIdx {
		s.freeBkt = s.buckets[b].next
	} else {
		s.buckets = append(s.buckets, bucket{})
		s.defMark = append(s.defMark, 0)
		b = int32(len(s.buckets) - 1)
	}
	s.buckets[b] = bucket{count: count, head: nilIdx, prev: prev, next: next}
	if prev != nilIdx {
		s.buckets[prev].next = b
	} else {
		s.min = b
	}
	if next != nilIdx {
		s.buckets[next].prev = b
	}
	return b
}

// removeBucket unlinks an empty bucket and recycles it. Clearing the defer
// mark keeps a pending lazy sweep from unlinking the same bucket twice.
func (s *Summary[K]) removeBucket(b int32) {
	s.defMark[b] = 0
	prev, next := s.buckets[b].prev, s.buckets[b].next
	if prev != nilIdx {
		s.buckets[prev].next = next
	} else {
		s.min = next
	}
	if next != nilIdx {
		s.buckets[next].prev = prev
	}
	s.buckets[b].prev = nilIdx
	s.buckets[b].next = s.freeBkt
	s.freeBkt = b
}
