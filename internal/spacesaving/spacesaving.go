// Package spacesaving implements the Space Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005), the per-lattice-node heavy-hitters
// building block the paper uses ("we use Space Saving because it is believed
// to have an empirical edge over other algorithms").
//
// Summary is the Stream-Summary variant with O(1) worst-case updates — the
// property Theorem 6.18 relies on for RHHH's O(1) update complexity. Heap is
// a min-heap variant with O(log n) updates that also supports weighted
// increments efficiently; it exists for the weighted-input extension and as
// an ablation baseline.
//
// Summary stores all counters in one flat slab indexed by an open-addressed
// hash table, and the Stream-Summary bucket list links counters and buckets
// by slab index rather than by pointer. A steady-state update therefore
// touches a handful of contiguous arrays instead of chasing map buckets and
// heap-allocated nodes, and the structure performs zero allocations after
// construction.
//
// Guarantees (for capacity c after N unit updates):
//
//   - every monitored key satisfies count−error ≤ f ≤ count;
//   - every key with f > N/c is monitored;
//   - an unmonitored key has f ≤ MinCount() ≤ N/c.
//
// These are exactly the (ε,0)-Frequency Estimation requirements of
// Definition 4 with c = ⌈1/ε⌉ counters.
package spacesaving

import (
	"hash/maphash"
	"math/bits"
	"math/rand/v2"
)

// nilIdx is the shared sentinel for "no counter / no bucket" slab links.
const nilIdx = int32(-1)

// counter tracks one monitored key. Counters with equal counts hang off a
// shared bucket; the count itself lives on the bucket (the Stream-Summary
// trick that makes increments O(1)). Links are slab indices. Sibling lists
// are singly linked: head removal (the eviction case) touches no sibling,
// and mid-list removal swaps the head's key into the vacated position
// (detach), so no counter ever needs a back link.
type counter[K comparable] struct {
	key    K
	err    uint64
	tabPos uint32 // lane position in the cuckoo index (stashPos if stashed)
	bkt    int32
	next   int32 // next sibling in the same bucket
}

// bucket groups counters with the same count. Buckets form a doubly linked
// list ordered by count ascending; links are indices into the bucket slab.
type bucket struct {
	count      uint64
	head       int32
	prev, next int32
}

// Summary is a Stream-Summary Space Saving instance. It is not safe for
// concurrent use; RHHH gives each lattice node its own instance.
type Summary[K comparable] struct {
	capacity int
	slots    []counter[K] // flat counter slab; [0:used) are live
	used     int
	buckets  []bucket // bucket slab, recycled through freeBkt
	min      int32    // bucket with the smallest count, or nilIdx when empty
	freeBkt  int32    // free bucket list, avoids steady-state allocation
	n        uint64   // total weight of all increments

	// Bucketized cuckoo index: key → slab slot, two candidate buckets of
	// four lanes each (in the style of cuckoo filters and Cuckoo Heavy
	// Keeper's stores). fps holds one fingerprint byte per lane packed four
	// to a word — a lookup SWAR-compares four lanes at once and a deletion
	// is a single byte clear, with no probe chains to repair. refs holds
	// the slab slot per lane. The alternate bucket is derived from the
	// occupied bucket and the fingerprint alone, so displacements never
	// rehash keys. stash absorbs the astronomically rare displacement
	// overflow (the table runs at ~50% of a scheme that sustains >95%).
	fps     []uint32 // 4 fingerprint bytes per bucket; 0 = free lane
	refs    []int32  // 4 slot ids per bucket
	bktMask uint32   // number of buckets − 1 (power of two)
	stash   []int32  // overflowed slots, scanned only when non-empty
	hash    func(k K) uint32

	warmSink uint32 // defeats dead-load elimination of the warming pass
}

// fpOf derives a non-zero fingerprint byte from a key hash.
func fpOf(h uint32) uint32 { return (h >> 24) | 1 }

// altBucket returns the other candidate bucket for a fingerprint: an
// xor-displacement keyed on the fingerprint byte (cuckoo-filter style), so
// it is an involution computable without the key.
func altBucket(b, fp, mask uint32) uint32 { return (b ^ (fp * 0x5bd1)) & mask }

// swarMatch returns a mask with bit 8i+7 set when byte i of w equals the
// (repeated) byte b.
func swarMatch(w, b uint32) uint32 {
	x := w ^ (b * 0x01010101)
	return (x - 0x01010101) &^ x & 0x80808080
}

// swarZero returns a mask with bit 8i+7 set when byte i of w is zero.
func swarZero(w uint32) uint32 {
	return (w - 0x01010101) &^ w & 0x80808080
}

// hashFuncFor picks the key-hash function at construction time: integer
// carriers (the IPv4 key types) get an inline splitmix64 finalizer, Addr and
// AddrPair mix their words directly, and any other comparable type falls
// back to hash/maphash. Each summary gets its own random seed.
func hashFuncFor[K comparable]() func(k K) uint32 {
	seed := rand.Uint64()
	mix := func(z uint64) uint32 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return uint32(z ^ (z >> 31))
	}
	var fn any
	switch any(*new(K)).(type) {
	case uint32:
		fn = func(k uint32) uint32 { return mix(seed ^ uint64(k)) }
	case uint64:
		fn = func(k uint64) uint32 { return mix(seed ^ k) }
	default:
		ms := maphash.MakeSeed()
		return func(k K) uint32 { return uint32(maphash.Comparable(ms, k)) }
	}
	return fn.(func(k K) uint32)
}

// New returns a Space Saving instance with the given number of counters.
// capacity must be at least 1.
func New[K comparable](capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	nBkt := uint32(2) // ≥ 2 buckets so the two candidates can differ
	for nBkt*4 < uint32(2*capacity) {
		nBkt <<= 1
	}
	s := &Summary[K]{
		capacity: capacity,
		slots:    make([]counter[K], capacity),
		buckets:  make([]bucket, 0, capacity+1),
		min:      nilIdx,
		freeBkt:  nilIdx,
		fps:      make([]uint32, nBkt),
		refs:     make([]int32, nBkt*4),
		bktMask:  nBkt - 1,
		stash:    make([]int32, 0, 8),
		hash:     hashFuncFor[K](),
	}
	return s
}

// Capacity returns the number of counters the instance was built with.
func (s *Summary[K]) Capacity() int { return s.capacity }

// N returns the total weight processed so far.
func (s *Summary[K]) N() uint64 { return s.n }

// Len returns the number of currently monitored keys.
func (s *Summary[K]) Len() int { return s.used }

// MinCount returns the smallest tracked count, or 0 while the table has
// spare capacity (an unseen key then provably has frequency 0).
func (s *Summary[K]) MinCount() uint64 {
	if s.used < s.capacity || s.min == nilIdx {
		return 0
	}
	return s.buckets[s.min].count
}

// lookup returns the slab slot of k (whose hash is h), or nilIdx when
// unmonitored. The two candidate buckets are independent loads, and each is
// compared four lanes at a time; the counter slab is only loaded to confirm
// a fingerprint match.
func (s *Summary[K]) lookup(k K, h uint32) int32 {
	fp := fpOf(h)
	b := h & s.bktMask
	for m := swarMatch(s.fps[b], fp); m != 0; m &= m - 1 {
		lane := laneOf(m)
		if v := s.refs[b*4+lane]; s.slots[v].key == k {
			return v
		}
	}
	b2 := altBucket(b, fp, s.bktMask)
	for m := swarMatch(s.fps[b2], fp); m != 0; m &= m - 1 {
		lane := laneOf(m)
		if v := s.refs[b2*4+lane]; s.slots[v].key == k {
			return v
		}
	}
	if len(s.stash) != 0 {
		for _, v := range s.stash {
			if s.slots[v].key == k {
				return v
			}
		}
	}
	return nilIdx
}

// laneOf maps a SWAR match bit to its lane index (bits 7/15/23/31 → 0..3).
func laneOf(m uint32) uint32 {
	return (uint32(bits.TrailingZeros32(m)) - 7) >> 3
}

// indexInsert records slot under hash h, remembering the lane position in
// the slot so deletion is position-direct. The key must not be present.
func (s *Summary[K]) indexInsert(slot int32, h uint32) {
	fp := fpOf(h)
	b := h & s.bktMask
	if s.place(b, fp, slot) || s.place(altBucket(b, fp, s.bktMask), fp, slot) {
		return
	}
	// Both candidates full: displace residents along their alternate
	// buckets. Bounded walk; overflow lands in the stash (at ~50% load the
	// walk virtually never exceeds a couple of hops).
	curFP, cur := fp, slot
	b = altBucket(b, fp, s.bktMask)
	for kick := 0; kick < 64; kick++ {
		// Rotate out lane 0 of the full bucket (the choice only affects
		// index layout, never Space Saving semantics).
		lane := uint32(kick) & 3
		pos := b*4 + lane
		oldFP := (s.fps[b] >> (lane * 8)) & 0xff
		old := s.refs[pos]
		s.fps[b] = s.fps[b]&^(0xff<<(lane*8)) | curFP<<(lane*8)
		s.refs[pos] = cur
		s.slots[cur].tabPos = pos
		curFP, cur = oldFP, old
		b = altBucket(b, curFP, s.bktMask)
		if s.place(b, curFP, cur) {
			return
		}
	}
	s.slots[cur].tabPos = stashPos
	s.stash = append(s.stash, cur)
}

// place puts slot into a free lane of bucket b, if any.
func (s *Summary[K]) place(b, fp uint32, slot int32) bool {
	z := swarZero(s.fps[b])
	if z == 0 {
		return false
	}
	lane := laneOf(z)
	s.fps[b] |= fp << (lane * 8)
	pos := b*4 + lane
	s.refs[pos] = slot
	s.slots[slot].tabPos = pos
	return true
}

// stashPos marks a counter whose index entry lives in the stash.
const stashPos = ^uint32(0)

// indexDelete removes slot from the index: clear its fingerprint byte —
// cuckoo probing has no chains to repair.
func (s *Summary[K]) indexDelete(slot int32) {
	pos := s.slots[slot].tabPos
	if pos == stashPos {
		for i, v := range s.stash {
			if v == slot {
				s.stash[i] = s.stash[len(s.stash)-1]
				s.stash = s.stash[:len(s.stash)-1]
				return
			}
		}
		return
	}
	s.fps[pos/4] &^= 0xff << ((pos & 3) * 8)
}

// Increment adds one occurrence of key k. O(1) worst case.
func (s *Summary[K]) Increment(k K) {
	s.incrementH(k, s.hash(k))
}

// incrementH is Increment with the key hash already computed.
func (s *Summary[K]) incrementH(k K, h uint32) {
	s.n++
	if c := s.lookup(k, h); c != nilIdx {
		s.bump(c, s.buckets[s.slots[c].bkt].count+1)
		return
	}
	if s.used < s.capacity {
		c := int32(s.used)
		s.used++
		s.slots[c].key = k
		s.slots[c].err = 0
		s.indexInsert(c, h)
		s.attach(c, 1)
		return
	}
	// Evict a counter from the minimum bucket (any one; we take the head).
	c := s.buckets[s.min].head
	minCount := s.buckets[s.min].count
	s.indexDelete(c)
	s.slots[c].key = k
	s.slots[c].err = minCount
	s.indexInsert(c, h)
	s.bump(c, minCount+1)
}

// IncrementBatch adds one occurrence of each key, in order — equivalent to
// calling Increment per key. Keys are processed in chunks: a first pass
// hashes the chunk and touches both candidate index buckets per key, so the
// cache misses of up to 64 probes overlap instead of serializing through
// the per-key update path; the second pass applies the updates with the
// precomputed hashes.
func (s *Summary[K]) IncrementBatch(keys []K) {
	var hs [64]uint32
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > len(hs) {
			chunk = chunk[:len(hs)]
		}
		keys = keys[len(chunk):]
		var warm uint32
		for i, k := range chunk {
			h := s.hash(k)
			hs[i] = h
			b := h & s.bktMask
			warm += s.fps[b] + s.fps[altBucket(b, fpOf(h), s.bktMask)] + uint32(s.refs[b*4])
		}
		s.warmSink += warm
		for i, k := range chunk {
			s.incrementH(k, hs[i])
		}
	}
}

// IncrementBy adds weight w of key k. For monitored keys the counter may
// skip past several buckets; the walk is bounded by the number of distinct
// counts, so this is O(min(capacity, w)) worst case — use Heap when weighted
// updates dominate.
func (s *Summary[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	h := s.hash(k)
	if c := s.lookup(k, h); c != nilIdx {
		s.bump(c, s.buckets[s.slots[c].bkt].count+w)
		return
	}
	if s.used < s.capacity {
		c := int32(s.used)
		s.used++
		s.slots[c].key = k
		s.slots[c].err = 0
		s.indexInsert(c, h)
		s.attach(c, w)
		return
	}
	c := s.buckets[s.min].head
	minCount := s.buckets[s.min].count
	s.indexDelete(c)
	s.slots[c].key = k
	s.slots[c].err = minCount
	s.indexInsert(c, h)
	s.bump(c, minCount+w)
}

// Query returns the counter value, its maximum overestimation error, and
// whether k is currently monitored.
func (s *Summary[K]) Query(k K) (count, err uint64, ok bool) {
	c := s.lookup(k, s.hash(k))
	if c == nilIdx {
		return 0, 0, false
	}
	return s.buckets[s.slots[c].bkt].count, s.slots[c].err, true
}

// Bounds returns an upper and a lower bound on the true frequency of k:
// (count, count−error) for monitored keys, (MinCount, 0) otherwise.
func (s *Summary[K]) Bounds(k K) (upper, lower uint64) {
	if c := s.lookup(k, s.hash(k)); c != nilIdx {
		count := s.buckets[s.slots[c].bkt].count
		return count, count - s.slots[c].err
	}
	return s.MinCount(), 0
}

// ForEach calls fn for every monitored key with its count and error, in
// descending count order.
func (s *Summary[K]) ForEach(fn func(k K, count, err uint64)) {
	if s.min == nilIdx {
		return
	}
	last := s.min
	for s.buckets[last].next != nilIdx {
		last = s.buckets[last].next
	}
	for b := last; b != nilIdx; b = s.buckets[b].prev {
		for c := s.buckets[b].head; c != nilIdx; c = s.slots[c].next {
			fn(s.slots[c].key, s.buckets[b].count, s.slots[c].err)
		}
	}
}

// Reset clears all state.
func (s *Summary[K]) Reset() {
	s.used = 0
	s.buckets = s.buckets[:0]
	s.min = nilIdx
	s.freeBkt = nilIdx
	s.n = 0
	for i := range s.fps {
		s.fps[i] = 0
	}
	s.stash = s.stash[:0]
}

// attach inserts a brand-new counter with the given count into the bucket
// list (used only while below capacity, so count is small; the target bucket
// is at or near the front).
func (s *Summary[K]) attach(c int32, count uint64) {
	b := s.min
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < count {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != count {
		b = s.newBucket(count, prev, b)
	}
	s.pushCounter(b, c)
}

// bump moves counter c's key (currently in some bucket) to count newCount,
// creating/removing buckets as needed. newCount must exceed c's count. The
// key may settle in a different slab slot (see detach).
func (s *Summary[K]) bump(c int32, newCount uint64) {
	old := s.slots[c].bkt
	carrier := s.detach(c)
	// Walk forward to the insertion point. For unit increments this is at
	// most one step, preserving O(1).
	b := old
	prev := nilIdx
	for b != nilIdx && s.buckets[b].count < newCount {
		prev = b
		b = s.buckets[b].next
	}
	if b == nilIdx || s.buckets[b].count != newCount {
		b = s.newBucket(newCount, prev, b)
	}
	s.pushCounter(b, carrier)
	if s.buckets[old].head == nilIdx {
		s.removeBucket(old)
	}
}

// pushCounter puts c at the head of bucket b. No sibling is touched.
func (s *Summary[K]) pushCounter(b, c int32) {
	s.slots[c].bkt = b
	s.slots[c].next = s.buckets[b].head
	s.buckets[b].head = c
}

// detach removes counter c's key from its bucket (without removing an
// emptied bucket; callers handle that so bump can reuse the position) and
// returns the slab slot now carrying that key. When c heads its bucket —
// always true for evictions — this is a pointer pop touching only c. A
// mid-list c instead swaps contents with the bucket head: the head's key
// settles into c's list position and the freed head slot carries the
// detached key onward; the index entries of both keys are re-pointed.
func (s *Summary[K]) detach(c int32) int32 {
	b := s.slots[c].bkt
	h := s.buckets[b].head
	if h == c {
		s.buckets[b].head = s.slots[c].next
		return c
	}
	ck, cerr, cpos := s.slots[c].key, s.slots[c].err, s.slots[c].tabPos
	s.slots[c].key = s.slots[h].key
	s.slots[c].err = s.slots[h].err
	s.slots[c].tabPos = s.slots[h].tabPos
	s.setRef(s.slots[c].tabPos, h, c)
	s.buckets[b].head = s.slots[h].next
	s.slots[h].key = ck
	s.slots[h].err = cerr
	s.slots[h].tabPos = cpos
	s.setRef(cpos, c, h)
	return h
}

// setRef re-points the index entry at pos from oldSlot to newSlot.
func (s *Summary[K]) setRef(pos uint32, oldSlot, newSlot int32) {
	if pos == stashPos {
		for i, v := range s.stash {
			if v == oldSlot {
				s.stash[i] = newSlot
				return
			}
		}
		return
	}
	s.refs[pos] = newSlot
}

// newBucket inserts a bucket with the given count between prev and next,
// recycling a freed slab entry when one exists.
func (s *Summary[K]) newBucket(count uint64, prev, next int32) int32 {
	b := s.freeBkt
	if b != nilIdx {
		s.freeBkt = s.buckets[b].next
	} else {
		s.buckets = append(s.buckets, bucket{})
		b = int32(len(s.buckets) - 1)
	}
	s.buckets[b] = bucket{count: count, head: nilIdx, prev: prev, next: next}
	if prev != nilIdx {
		s.buckets[prev].next = b
	} else {
		s.min = b
	}
	if next != nilIdx {
		s.buckets[next].prev = b
	}
	return b
}

// removeBucket unlinks an empty bucket and recycles it.
func (s *Summary[K]) removeBucket(b int32) {
	prev, next := s.buckets[b].prev, s.buckets[b].next
	if prev != nilIdx {
		s.buckets[prev].next = next
	} else {
		s.min = next
	}
	if next != nilIdx {
		s.buckets[next].prev = prev
	}
	s.buckets[b].prev = nilIdx
	s.buckets[b].next = s.freeBkt
	s.freeBkt = b
}
