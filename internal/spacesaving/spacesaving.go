// Package spacesaving implements the Space Saving algorithm of Metwally,
// Agrawal and El Abbadi (ICDT 2005), the per-lattice-node heavy-hitters
// building block the paper uses ("we use Space Saving because it is believed
// to have an empirical edge over other algorithms").
//
// Summary is the Stream-Summary variant with O(1) worst-case updates — the
// property Theorem 6.18 relies on for RHHH's O(1) update complexity. Heap is
// a min-heap variant with O(log n) updates that also supports weighted
// increments efficiently; it exists for the weighted-input extension and as
// an ablation baseline.
//
// Guarantees (for capacity c after N unit updates):
//
//   - every monitored key satisfies count−error ≤ f ≤ count;
//   - every key with f > N/c is monitored;
//   - an unmonitored key has f ≤ MinCount() ≤ N/c.
//
// These are exactly the (ε,0)-Frequency Estimation requirements of
// Definition 4 with c = ⌈1/ε⌉ counters.
package spacesaving

// counter tracks one monitored key. Counters with equal counts hang off a
// shared bucket; the count itself lives on the bucket (the Stream-Summary
// trick that makes increments O(1)).
type counter[K comparable] struct {
	key        K
	err        uint64
	bkt        *bucket[K]
	prev, next *counter[K] // siblings in the same bucket, doubly linked
}

// bucket groups counters with the same count. Buckets form a doubly linked
// list ordered by count ascending.
type bucket[K comparable] struct {
	count      uint64
	head       *counter[K]
	prev, next *bucket[K]
}

// Summary is a Stream-Summary Space Saving instance. It is not safe for
// concurrent use; RHHH gives each lattice node its own instance.
type Summary[K comparable] struct {
	capacity int
	items    map[K]*counter[K]
	min      *bucket[K] // bucket with the smallest count, or nil when empty
	n        uint64     // total weight of all increments
	freeBkt  *bucket[K] // free list, avoids steady-state allocation
}

// New returns a Space Saving instance with the given number of counters.
// capacity must be at least 1.
func New[K comparable](capacity int) *Summary[K] {
	if capacity < 1 {
		panic("spacesaving: capacity must be >= 1")
	}
	return &Summary[K]{
		capacity: capacity,
		items:    make(map[K]*counter[K], capacity),
	}
}

// Capacity returns the number of counters the instance was built with.
func (s *Summary[K]) Capacity() int { return s.capacity }

// N returns the total weight processed so far.
func (s *Summary[K]) N() uint64 { return s.n }

// Len returns the number of currently monitored keys.
func (s *Summary[K]) Len() int { return len(s.items) }

// MinCount returns the smallest tracked count, or 0 while the table has
// spare capacity (an unseen key then provably has frequency 0).
func (s *Summary[K]) MinCount() uint64 {
	if len(s.items) < s.capacity || s.min == nil {
		return 0
	}
	return s.min.count
}

// Increment adds one occurrence of key k. O(1) worst case.
func (s *Summary[K]) Increment(k K) {
	s.n++
	if c, ok := s.items[k]; ok {
		s.bump(c, c.bkt.count+1)
		return
	}
	if len(s.items) < s.capacity {
		c := &counter[K]{key: k}
		s.items[k] = c
		s.attach(c, 1)
		return
	}
	// Evict a counter from the minimum bucket (any one; we take the head).
	c := s.min.head
	delete(s.items, c.key)
	minCount := s.min.count
	c.key = k
	c.err = minCount
	s.items[k] = c
	s.bump(c, minCount+1)
}

// IncrementBy adds weight w of key k. For monitored keys the counter may
// skip past several buckets; the walk is bounded by the number of distinct
// counts, so this is O(min(capacity, w)) worst case — use Heap when weighted
// updates dominate.
func (s *Summary[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	s.n += w
	if c, ok := s.items[k]; ok {
		s.bump(c, c.bkt.count+w)
		return
	}
	if len(s.items) < s.capacity {
		c := &counter[K]{key: k}
		s.items[k] = c
		s.attach(c, w)
		return
	}
	c := s.min.head
	delete(s.items, c.key)
	minCount := s.min.count
	c.key = k
	c.err = minCount
	s.items[k] = c
	s.bump(c, minCount+w)
}

// Query returns the counter value, its maximum overestimation error, and
// whether k is currently monitored.
func (s *Summary[K]) Query(k K) (count, err uint64, ok bool) {
	c, ok := s.items[k]
	if !ok {
		return 0, 0, false
	}
	return c.bkt.count, c.err, true
}

// Bounds returns an upper and a lower bound on the true frequency of k:
// (count, count−error) for monitored keys, (MinCount, 0) otherwise.
func (s *Summary[K]) Bounds(k K) (upper, lower uint64) {
	if c, ok := s.items[k]; ok {
		return c.bkt.count, c.bkt.count - c.err
	}
	return s.MinCount(), 0
}

// ForEach calls fn for every monitored key with its count and error, in
// descending count order.
func (s *Summary[K]) ForEach(fn func(k K, count, err uint64)) {
	// Find the maximum bucket by walking from min; buckets are few compared
	// to counters only in skewed streams, so instead walk from min to end
	// collecting in reverse via recursion-free two-pass.
	if s.min == nil {
		return
	}
	last := s.min
	for last.next != nil {
		last = last.next
	}
	for b := last; b != nil; b = b.prev {
		for c := b.head; c != nil; c = c.next {
			fn(c.key, b.count, c.err)
		}
	}
}

// Reset clears all state.
func (s *Summary[K]) Reset() {
	s.items = make(map[K]*counter[K], s.capacity)
	s.min = nil
	s.n = 0
	s.freeBkt = nil
}

// attach inserts a brand-new counter with the given count into the bucket
// list (used only while below capacity, so count is small; the target bucket
// is at or near the front).
func (s *Summary[K]) attach(c *counter[K], count uint64) {
	b := s.min
	var prev *bucket[K]
	for b != nil && b.count < count {
		prev = b
		b = b.next
	}
	if b == nil || b.count != count {
		b = s.newBucket(count, prev, b)
	}
	s.pushCounter(b, c)
}

// bump moves counter c (currently in some bucket) to count newCount,
// creating/removing buckets as needed. newCount must exceed c's count.
func (s *Summary[K]) bump(c *counter[K], newCount uint64) {
	old := c.bkt
	s.removeCounter(c)
	// Walk forward to the insertion point. For unit increments this is at
	// most one step, preserving O(1).
	b := old
	var prev *bucket[K]
	for b != nil && b.count < newCount {
		prev = b
		b = b.next
	}
	if b == nil || b.count != newCount {
		b = s.newBucket(newCount, prev, b)
	}
	s.pushCounter(b, c)
	if old.head == nil {
		s.removeBucket(old)
	}
}

// pushCounter puts c at the head of bucket b.
func (s *Summary[K]) pushCounter(b *bucket[K], c *counter[K]) {
	c.bkt = b
	c.prev = nil
	c.next = b.head
	if b.head != nil {
		b.head.prev = c
	}
	b.head = c
}

// removeCounter unlinks c from its bucket (without removing an emptied
// bucket; callers handle that so bump can reuse the position).
func (s *Summary[K]) removeCounter(c *counter[K]) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		c.bkt.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	c.prev, c.next = nil, nil
}

// newBucket inserts a bucket with the given count between prev and next.
func (s *Summary[K]) newBucket(count uint64, prev, next *bucket[K]) *bucket[K] {
	b := s.freeBkt
	if b != nil {
		s.freeBkt = b.next
		*b = bucket[K]{count: count}
	} else {
		b = &bucket[K]{count: count}
	}
	b.prev = prev
	b.next = next
	if prev != nil {
		prev.next = b
	} else {
		s.min = b
	}
	if next != nil {
		next.prev = b
	}
	return b
}

// removeBucket unlinks an empty bucket and recycles it.
func (s *Summary[K]) removeBucket(b *bucket[K]) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	b.prev = nil
	b.next = s.freeBkt
	s.freeBkt = b
}
