package spacesaving

import (
	"testing"
	"testing/quick"

	"rhhh/internal/fastrand"
)

// Sketch is the interface both implementations satisfy; tests run against
// both to keep them behaviourally aligned.
type sketch interface {
	Increment(k uint64)
	IncrementBy(k uint64, w uint64)
	Query(k uint64) (uint64, uint64, bool)
	Bounds(k uint64) (uint64, uint64)
	ForEach(fn func(k uint64, count, err uint64))
	MinCount() uint64
	N() uint64
	Len() int
	Capacity() int
	Reset()
}

func implementations(capacity int) map[string]sketch {
	return map[string]sketch{
		"summary": New[uint64](capacity),
		"heap":    NewHeap[uint64](capacity),
	}
}

func TestBasicCounting(t *testing.T) {
	for name, s := range implementations(10) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				s.Increment(7)
			}
			s.Increment(9)
			count, err, ok := s.Query(7)
			if !ok || count != 5 || err != 0 {
				t.Fatalf("Query(7) = (%d,%d,%v)", count, err, ok)
			}
			count, err, ok = s.Query(9)
			if !ok || count != 1 || err != 0 {
				t.Fatalf("Query(9) = (%d,%d,%v)", count, err, ok)
			}
			if _, _, ok := s.Query(1234); ok {
				t.Fatal("unseen key reported as monitored")
			}
			if s.N() != 6 {
				t.Fatalf("N = %d", s.N())
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestEvictionSetsError(t *testing.T) {
	for name, s := range implementations(2) {
		t.Run(name, func(t *testing.T) {
			s.Increment(1) // {1:1}
			s.Increment(1) // {1:2}
			s.Increment(2) // {1:2, 2:1}
			s.Increment(3) // evicts 2 → {1:2, 3:2(err 1)}
			count, err, ok := s.Query(3)
			if !ok || count != 2 || err != 1 {
				t.Fatalf("Query(3) = (%d,%d,%v), want (2,1,true)", count, err, ok)
			}
			if _, _, ok := s.Query(2); ok {
				t.Fatal("evicted key still monitored")
			}
			// Min count never exceeds N/capacity.
			if mc := s.MinCount(); mc > s.N()/2 {
				t.Fatalf("MinCount %d > N/capacity %d", mc, s.N()/2)
			}
		})
	}
}

func TestMinCountBelowCapacityIsZero(t *testing.T) {
	for name, s := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			s.Increment(1)
			s.Increment(2)
			if s.MinCount() != 0 {
				t.Fatalf("MinCount = %d while below capacity", s.MinCount())
			}
			up, lo := s.Bounds(999)
			if up != 0 || lo != 0 {
				t.Fatalf("Bounds(unseen, below capacity) = (%d,%d)", up, lo)
			}
		})
	}
}

func TestSumOfCountsEqualsN(t *testing.T) {
	for name, s := range implementations(16) {
		t.Run(name, func(t *testing.T) {
			r := fastrand.New(1)
			for i := 0; i < 10000; i++ {
				s.Increment(r.Uint64n(100))
			}
			var sum uint64
			s.ForEach(func(_ uint64, count, _ uint64) { sum += count })
			if sum != s.N() {
				t.Fatalf("sum of counts %d != N %d", sum, s.N())
			}
		})
	}
}

func TestErrorNeverExceedsCount(t *testing.T) {
	for name, s := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			r := fastrand.New(2)
			for i := 0; i < 5000; i++ {
				s.Increment(r.Uint64n(200))
				if i%100 == 0 {
					s.ForEach(func(k uint64, count, err uint64) {
						if err > count {
							t.Fatalf("key %d: err %d > count %d", k, err, count)
						}
					})
				}
			}
		})
	}
}

// TestBoundsBracketTruth compares against exact counts on skewed random
// streams: count−err ≤ f ≤ count for monitored keys, f ≤ MinCount for
// unmonitored ones — the Definition 4 contract.
func TestBoundsBracketTruth(t *testing.T) {
	for name, s := range implementations(32) {
		t.Run(name, func(t *testing.T) {
			r := fastrand.New(3)
			exact := map[uint64]uint64{}
			for i := 0; i < 50000; i++ {
				// Zipf-ish: low keys frequent.
				k := r.Uint64n(1 + r.Uint64n(500))
				s.Increment(k)
				exact[k]++
			}
			for k, f := range exact {
				up, lo := s.Bounds(k)
				if _, _, monitored := s.Query(k); monitored {
					if f > up || f < lo {
						t.Fatalf("key %d: bounds [%d,%d] miss true %d", k, lo, up, f)
					}
				} else if f > s.MinCount() {
					t.Fatalf("unmonitored key %d has f=%d > MinCount=%d", k, f, s.MinCount())
				}
			}
		})
	}
}

// TestHeavyHittersMonitored: any key with f > N/capacity must be monitored
// (the classic Space Saving guarantee that powers Definition 5 queries).
func TestHeavyHittersMonitored(t *testing.T) {
	for name, s := range implementations(10) {
		t.Run(name, func(t *testing.T) {
			r := fastrand.New(4)
			exact := map[uint64]uint64{}
			for i := 0; i < 20000; i++ {
				var k uint64
				if r.Uint64n(10) < 4 {
					k = r.Uint64n(3) // three heavy keys share 40%
				} else {
					k = 100 + r.Uint64n(100000)
				}
				s.Increment(k)
				exact[k]++
			}
			for k, f := range exact {
				if f > s.N()/uint64(s.Capacity()) {
					if _, _, ok := s.Query(k); !ok {
						t.Fatalf("heavy key %d (f=%d) not monitored", k, f)
					}
				}
			}
		})
	}
}

func TestWeightedEquivalentToRepeated(t *testing.T) {
	for name := range implementations(8) {
		t.Run(name, func(t *testing.T) {
			mk := func() sketch { return implementations(8)[name] }
			a, b := mk(), mk()
			r := fastrand.New(5)
			for i := 0; i < 300; i++ {
				k := r.Uint64n(20)
				w := 1 + r.Uint64n(5)
				a.IncrementBy(k, w)
				for j := uint64(0); j < w; j++ {
					b.Increment(k)
				}
			}
			if a.N() != b.N() {
				t.Fatalf("N mismatch: %d vs %d", a.N(), b.N())
			}
			// The two are not bit-identical (eviction order may differ) but
			// both must satisfy the estimation contract; compare upper
			// bounds on the common monitored set within error slack.
			a.ForEach(func(k uint64, count, err uint64) {
				if bc, _, ok := b.Query(k); ok {
					if count > bc+b.MinCount() && bc > count+a.MinCount() {
						t.Fatalf("key %d counts diverge: %d vs %d", k, count, bc)
					}
				}
			})
		})
	}
}

func TestIncrementByZeroIsNoop(t *testing.T) {
	for name, s := range implementations(4) {
		t.Run(name, func(t *testing.T) {
			s.IncrementBy(5, 0)
			if s.N() != 0 || s.Len() != 0 {
				t.Fatal("IncrementBy(_, 0) mutated state")
			}
		})
	}
}

func TestReset(t *testing.T) {
	for name, s := range implementations(4) {
		t.Run(name, func(t *testing.T) {
			for i := uint64(0); i < 100; i++ {
				s.Increment(i)
			}
			s.Reset()
			if s.N() != 0 || s.Len() != 0 || s.MinCount() != 0 {
				t.Fatal("Reset left state behind")
			}
			s.Increment(7)
			if c, _, ok := s.Query(7); !ok || c != 1 {
				t.Fatal("instance unusable after Reset")
			}
		})
	}
}

func TestCapacityOne(t *testing.T) {
	for name, s := range implementations(1) {
		t.Run(name, func(t *testing.T) {
			s.Increment(1)
			s.Increment(2)
			s.Increment(2)
			count, err, ok := s.Query(2)
			if !ok || count != 3 || err != 1 {
				t.Fatalf("Query(2) = (%d,%d,%v), want (3,1,true)", count, err, ok)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0) },
		func() { NewHeap[int](-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad capacity did not panic")
				}
			}()
			f()
		}()
	}
}

// TestForEachDescendingSummary: Summary documents descending order, which
// Output relies on for cheap candidate iteration.
func TestForEachDescendingSummary(t *testing.T) {
	s := New[uint64](16)
	r := fastrand.New(6)
	for i := 0; i < 3000; i++ {
		s.Increment(r.Uint64n(16))
	}
	prev := ^uint64(0)
	s.ForEach(func(_ uint64, count, _ uint64) {
		if count > prev {
			t.Fatalf("ForEach not descending: %d after %d", count, prev)
		}
		prev = count
	})
}

// TestSummaryHeapAgreeProperty: on random small streams, both structures
// report identical counts for every key when the stream has at most
// `capacity` distinct keys (no evictions → exact counting).
func TestSummaryHeapAgreeProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		sum := New[uint64](256)
		hp := NewHeap[uint64](256)
		exact := map[uint64]uint64{}
		for _, k := range keys {
			sum.Increment(uint64(k))
			hp.Increment(uint64(k))
			exact[uint64(k)]++
		}
		for k, f0 := range exact {
			c1, e1, ok1 := sum.Query(k)
			c2, e2, ok2 := hp.Query(k)
			if !ok1 || !ok2 || c1 != f0 || c2 != f0 || e1 != 0 || e2 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryIncrement(b *testing.B) {
	s := New[uint64](1024)
	r := fastrand.New(1)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Increment(keys[i&4095])
	}
}

func BenchmarkHeapIncrement(b *testing.B) {
	s := NewHeap[uint64](1024)
	r := fastrand.New(1)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Increment(keys[i&4095])
	}
}
