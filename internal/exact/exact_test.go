package exact

import (
	"testing"

	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// paperStream builds the §3.1 worked example: with θN = 100, prefix 101.* has
// frequency 108 and 101.102.* has 102; the conditioned frequency of 101.* is
// only 6, so 101.102.* is an HHH and 101.* is not.
func paperStream(dom *hierarchy.Domain[uint32]) *Stream[uint32] {
	s := New(dom)
	// 102 packets under 101.102.*, spread so no /24 or item reaches 100.
	for i := 0; i < 51; i++ {
		s.Add(ip4(101, 102, 1, byte(i)))
		s.Add(ip4(101, 102, 2, byte(i)))
	}
	// 6 packets under 101.* outside 101.102.*.
	for i := 0; i < 6; i++ {
		s.Add(ip4(101, 50, 1, 1))
	}
	// 892 filler packets spread across nine /8s, none reaching 100.
	for i := 0; i < 892; i++ {
		s.Add(ip4(byte(200+i%9), byte(i%251), byte(i/251), 1))
	}
	return s
}

func TestPaperExample(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := paperStream(dom)
	if s.N() != 1000 {
		t.Fatalf("N = %d, want 1000", s.N())
	}

	n16, _ := dom.NodeByBits(16, 0)
	n8, _ := dom.NodeByBits(8, 0)
	if f := s.Frequency(ip4(101, 102, 0, 0), n16); f != 102 {
		t.Fatalf("f(101.102.*) = %d, want 102", f)
	}
	if f := s.Frequency(ip4(101, 0, 0, 0), n8); f != 108 {
		t.Fatalf("f(101.*) = %d, want 108", f)
	}

	hhh := s.HHH(0.1) // θN = 100
	if !Contains(hhh, ip4(101, 102, 0, 0), n16) {
		t.Error("101.102.* should be an exact HHH")
	}
	if Contains(hhh, ip4(101, 0, 0, 0), n8) {
		t.Error("101.* should NOT be an exact HHH (conditioned frequency 6)")
	}
	for _, r := range hhh {
		if r.Node == n16 && r.Key == ip4(101, 102, 0, 0) && r.Cond != 102 {
			t.Errorf("Cond(101.102.*) = %d, want 102", r.Cond)
		}
	}

	// Exact conditioned frequency from Definition 6, the paper's numbers.
	p2 := PrefixRef[uint32]{Key: ip4(101, 102, 0, 0), Node: n16}
	p1 := PrefixRef[uint32]{Key: ip4(101, 0, 0, 0), Node: n8}
	if c := s.CondFrequency(p1, []PrefixRef[uint32]{p2}); c != 6 {
		t.Errorf("C(101.*|{101.102.*}) = %d, want 6", c)
	}
	if c := s.CondFrequency(p2, nil); c != 102 {
		t.Errorf("C(101.102.*|∅) = %d, want 102", c)
	}
}

func TestHHHLevelZeroItems(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := New(dom)
	for i := 0; i < 500; i++ {
		s.Add(ip4(9, 9, 9, 9))
	}
	for i := 0; i < 500; i++ {
		s.Add(ip4(byte(i%250), byte(i%13), 1, 1))
	}
	hhh := s.HHH(0.3)
	if !Contains(hhh, ip4(9, 9, 9, 9), dom.FullNode()) {
		t.Fatal("heavy fully specified item missing from exact HHH")
	}
	// Its ancestors' conditioned frequencies exclude it: none should pass.
	n24, _ := dom.NodeByBits(24, 0)
	if Contains(hhh, ip4(9, 9, 9, 0), n24) {
		t.Error("9.9.9.* admitted although its traffic is covered by 9.9.9.9")
	}
}

func TestExactHHHSatisfiesCoverage(t *testing.T) {
	// The exact HHH set must have zero coverage violations: for q ∉ P,
	// Cq|P ≤ Cq|HHH(level-1) < θN.
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	s := New(dom)
	r := fastrand.New(7)
	for i := 0; i < 20000; i++ {
		src := ip4(byte(r.Uint64n(4)), byte(r.Uint64n(4)), byte(r.Uint64n(2)), byte(r.Uint64n(50)))
		dst := ip4(byte(10+r.Uint64n(3)), byte(r.Uint64n(3)), 1, byte(r.Uint64n(20)))
		s.Add(hierarchy.Pack2D(src, dst))
	}
	P := s.HHH(0.05)
	refs := make([]PrefixRef[uint64], len(P))
	for i, p := range P {
		refs[i] = PrefixRef[uint64]{Key: p.Key, Node: p.Node}
	}
	v, evaluated := s.CoverageViolations(refs, 0.05)
	if v != 0 {
		t.Fatalf("exact HHH set has %d coverage violations (evaluated %d)", v, evaluated)
	}
	if evaluated == 0 {
		t.Fatal("no prefixes evaluated")
	}
}

func TestFrequenciesSumToN(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := New(dom)
	r := fastrand.New(8)
	for i := 0; i < 5000; i++ {
		s.Add(uint32(r.Uint64n(1 << 20)))
	}
	for node := 0; node < dom.Size(); node++ {
		var sum uint64
		for _, f := range s.Frequencies(node) {
			sum += f
		}
		if sum != s.N() {
			t.Fatalf("node %d frequencies sum to %d, want %d", node, sum, s.N())
		}
	}
}

func TestAddWeighted(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := New(dom)
	s.AddWeighted(ip4(1, 2, 3, 4), 10)
	s.Add(ip4(1, 2, 3, 4))
	if s.N() != 11 {
		t.Fatalf("N = %d", s.N())
	}
	if f := s.Frequency(ip4(1, 2, 3, 4), dom.FullNode()); f != 11 {
		t.Fatalf("f = %d", f)
	}
	if s.Distinct() != 1 {
		t.Fatalf("distinct = %d", s.Distinct())
	}
}

func TestRootAlwaysHHHWhenUncovered(t *testing.T) {
	// If nothing else covers traffic, the fully general prefix aggregates
	// all of it and must appear in the exact set.
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := New(dom)
	r := fastrand.New(9)
	for i := 0; i < 10000; i++ {
		s.Add(uint32(r.Uint64())) // uniform: nothing concentrated
	}
	hhh := s.HHH(0.2)
	var zero uint32
	if !Contains(hhh, zero, dom.RootNode()) {
		t.Fatal("* should be an HHH of uniform traffic")
	}
	if len(hhh) != 1 {
		t.Fatalf("uniform traffic should yield only *, got %d prefixes", len(hhh))
	}
}

func TestCondFrequencyCoveredByDescendants(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	s := New(dom)
	for i := 0; i < 100; i++ {
		s.Add(ip4(5, 5, 5, byte(i)))
	}
	n24, _ := dom.NodeByBits(24, 0)
	n16, _ := dom.NodeByBits(16, 0)
	P := []PrefixRef[uint32]{{Key: ip4(5, 5, 5, 0), Node: n24}}
	// All of 5.5.* traffic is covered by 5.5.5.* ∈ P.
	if c := s.CondFrequency(PrefixRef[uint32]{Key: ip4(5, 5, 0, 0), Node: n16}, P); c != 0 {
		t.Fatalf("covered conditioned frequency = %d, want 0", c)
	}
}
