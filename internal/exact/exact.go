// Package exact computes ground truth for evaluation: exact prefix
// frequencies (Definition 3), the exact hierarchical heavy hitter set built
// level by level from conditioned frequencies (Definition 8), and exact
// conditioned frequencies Cq|P with respect to an arbitrary prefix set
// (Definition 6) for coverage checking.
//
// It is an offline oracle over a recorded stream — linear space in the
// number of distinct fully specified items — and exists so the harness can
// measure the accuracy, coverage and false-positive ratios of Figures 2–4.
package exact

import "rhhh/internal/hierarchy"

// PrefixRef identifies a prefix: a masked key at a lattice node.
type PrefixRef[K comparable] struct {
	Key  K
	Node int
}

// Result is one exact HHH prefix with its frequency and the conditioned
// frequency that admitted it.
type Result[K comparable] struct {
	Key  K
	Node int
	// Freq is the exact prefix frequency fp.
	Freq uint64
	// Cond is the exact conditioned frequency Cp|HHH(level-1) at admission.
	Cond uint64
}

// Stream records exact counts of fully specified items.
type Stream[K comparable] struct {
	dom    *hierarchy.Domain[K]
	counts map[K]uint64
	n      uint64
	freqs  []map[K]uint64 // per-node prefix frequencies, built lazily
}

// New returns an empty exact-counting oracle over dom.
func New[K comparable](dom *hierarchy.Domain[K]) *Stream[K] {
	return &Stream[K]{dom: dom, counts: make(map[K]uint64)}
}

// Add records one occurrence of fully specified item k.
func (s *Stream[K]) Add(k K) { s.AddWeighted(k, 1) }

// AddWeighted records weight w of item k.
func (s *Stream[K]) AddWeighted(k K, w uint64) {
	s.counts[s.dom.Mask(k, s.dom.FullNode())] += w
	s.n += w
	s.freqs = nil // invalidate cache
}

// N returns the total recorded weight.
func (s *Stream[K]) N() uint64 { return s.n }

// Distinct returns the number of distinct fully specified items.
func (s *Stream[K]) Distinct() int { return len(s.counts) }

// Frequencies returns the exact frequency map of every prefix at lattice
// node i (Definition 3: fp = Σ over generalized items). The result is cached
// until the next Add; the caller must not modify it.
func (s *Stream[K]) Frequencies(node int) map[K]uint64 {
	if s.freqs == nil {
		s.freqs = make([]map[K]uint64, s.dom.Size())
	}
	if s.freqs[node] == nil {
		m := make(map[K]uint64)
		for k, c := range s.counts {
			m[s.dom.Mask(k, node)] += c
		}
		s.freqs[node] = m
	}
	return s.freqs[node]
}

// Frequency returns the exact frequency of one prefix.
func (s *Stream[K]) Frequency(key K, node int) uint64 {
	return s.Frequencies(node)[key]
}

// HHH computes the exact hierarchical heavy hitter set for threshold θ,
// following Definition 8: start from fully specified items with fe ≥ θN,
// then ascend level by level admitting prefixes whose conditioned frequency
// with respect to the previous levels' set reaches θN.
func (s *Stream[K]) HHH(theta float64) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("exact: theta must be in (0, 1]")
	}
	threshold := theta * float64(s.n)
	var out []Result[K]
	pByNode := make([]map[K]bool, s.dom.Size())
	for i := range pByNode {
		pByNode[i] = make(map[K]bool)
	}
	covered := make(map[K]bool, len(s.counts))

	for _, level := range s.dom.NodesByLevel() {
		// Conditioned frequencies at this level, against HHH(level-1):
		// sum the uncovered items under each prefix. Acceptance is tracked
		// per (node, key) — distinct nodes at one level can mask different
		// items to equal key values.
		accepted := make(map[int]map[K]bool)
		for _, node := range level {
			acc := make(map[K]uint64)
			for k, c := range s.counts {
				if !covered[k] {
					acc[s.dom.Mask(k, node)] += c
				}
			}
			for key, cond := range acc {
				if float64(cond) >= threshold {
					if accepted[node] == nil {
						accepted[node] = make(map[K]bool)
					}
					accepted[node][key] = true
					out = append(out, Result[K]{
						Key: key, Node: node,
						Freq: s.Frequency(key, node),
						Cond: cond,
					})
					pByNode[node][key] = true
				}
			}
		}
		// Definition 8 conditions each level on the previous level's set,
		// so coverage updates only after the whole level is processed.
		if len(accepted) > 0 {
			for k := range s.counts {
				if covered[k] {
					continue
				}
				for node, keys := range accepted {
					if keys[s.dom.Mask(k, node)] {
						covered[k] = true
						break
					}
				}
			}
		}
	}
	return out
}

// coveredSet marks every fully specified item generalized by some member of
// P (the H_P of Definition 6).
func (s *Stream[K]) coveredSet(P []PrefixRef[K]) map[K]bool {
	pByNode := make([]map[K]bool, s.dom.Size())
	var activeNodes []int
	for _, p := range P {
		if pByNode[p.Node] == nil {
			pByNode[p.Node] = make(map[K]bool)
			activeNodes = append(activeNodes, p.Node)
		}
		pByNode[p.Node][p.Key] = true
	}
	covered := make(map[K]bool, len(s.counts))
	for k := range s.counts {
		for _, node := range activeNodes {
			if pByNode[node][s.dom.Mask(k, node)] {
				covered[k] = true
				break
			}
		}
	}
	return covered
}

// CondFrequency returns the exact conditioned frequency Cq|P
// (Definition 6): the traffic q would add on top of the set P.
func (s *Stream[K]) CondFrequency(q PrefixRef[K], P []PrefixRef[K]) uint64 {
	covered := s.coveredSet(P)
	var sum uint64
	for k, c := range s.counts {
		if !covered[k] && s.dom.Mask(k, q.Node) == q.Key {
			sum += c
		}
	}
	return sum
}

// CoverageViolations evaluates the coverage property of Definition 9 for an
// algorithm's output P: it scans every prefix q with traffic, and counts
// those with q ∉ P yet Cq|P ≥ θN (the Figure 3 metric). It returns the
// number of violations and the number of prefixes evaluated.
func (s *Stream[K]) CoverageViolations(P []PrefixRef[K], theta float64) (violations, evaluated int) {
	threshold := theta * float64(s.n)
	pByNode := make([]map[K]bool, s.dom.Size())
	for i := range pByNode {
		pByNode[i] = make(map[K]bool)
	}
	for _, p := range P {
		pByNode[p.Node][p.Key] = true
	}
	covered := s.coveredSet(P)
	for node := 0; node < s.dom.Size(); node++ {
		acc := make(map[K]uint64)
		for k, c := range s.counts {
			if !covered[k] {
				acc[s.dom.Mask(k, node)] += c
			}
		}
		// Every prefix with any traffic at this node is evaluated; the
		// uncovered sum is its conditioned frequency.
		freqs := s.Frequencies(node)
		for key := range freqs {
			if pByNode[node][key] {
				continue
			}
			evaluated++
			if float64(acc[key]) >= threshold {
				violations++
			}
		}
	}
	return violations, evaluated
}

// Contains reports whether the given prefix is in the result set rs.
func Contains[K comparable](rs []Result[K], key K, node int) bool {
	for _, r := range rs {
		if r.Node == node && r.Key == key {
			return true
		}
	}
	return false
}
