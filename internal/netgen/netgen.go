// Package netgen is the traffic-source substrate standing in for the
// paper's MoonGen hardware generator (§5.2.1): it pre-builds packets from a
// trace source and drives a sink at maximum rate, reporting achieved
// throughput in Mpps. Pre-building keeps generation cost out of the
// measured path, the same reason the paper uses a dedicated generator
// server.
package netgen

import (
	"time"

	"rhhh/internal/trace"
)

// Result reports an offered-load run.
type Result struct {
	Packets uint64
	Elapsed time.Duration
}

// Mpps returns achieved millions of packets per second.
func (r Result) Mpps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds() / 1e6
}

// Prebuild materializes n packets from src.
func Prebuild(src trace.Source, n int) []trace.Packet {
	out := make([]trace.Packet, 0, n)
	for len(out) < n {
		p, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// PrebuildBatches materializes n packets split into DPDK-style batches of
// batchSize (OVS-DPDK uses 32).
func PrebuildBatches(src trace.Source, n, batchSize int) [][]trace.Packet {
	if batchSize <= 0 {
		batchSize = 32
	}
	pkts := Prebuild(src, n)
	var out [][]trace.Packet
	for i := 0; i < len(pkts); i += batchSize {
		j := i + batchSize
		if j > len(pkts) {
			j = len(pkts)
		}
		out = append(out, pkts[i:j])
	}
	return out
}

// Run drives sink with the prepared packets `rounds` times at maximum rate
// and returns the measured throughput.
func Run(packets []trace.Packet, rounds int, sink func(trace.Packet)) Result {
	if rounds <= 0 {
		rounds = 1
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, p := range packets {
			sink(p)
		}
	}
	return Result{
		Packets: uint64(rounds) * uint64(len(packets)),
		Elapsed: time.Since(start),
	}
}

// RunBatched drives a batch-oriented sink (the datapath's natural unit).
func RunBatched(batches [][]trace.Packet, rounds int, sink func([]trace.Packet)) Result {
	if rounds <= 0 {
		rounds = 1
	}
	var n uint64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, b := range batches {
			sink(b)
			n += uint64(len(b))
		}
	}
	return Result{Packets: n, Elapsed: time.Since(start)}
}

// RunFor drives the sink with the prepared packets repeatedly until at
// least d has elapsed, checking the clock once per pass to keep timer
// overhead out of the loop.
func RunFor(packets []trace.Packet, d time.Duration, sink func(trace.Packet)) Result {
	return RunForStop(packets, d, nil, sink)
}

// RunForStop is RunFor with a cooperative stop channel: closing stop ends
// the drive at the next pass boundary — the graceful-drain hook for a
// daemon's signal handler. The check costs one non-blocking select per pass
// over the prebuilt packets, nothing on the per-packet path. stop may be
// nil.
func RunForStop(packets []trace.Packet, d time.Duration, stop <-chan struct{}, sink func(trace.Packet)) Result {
	start := time.Now()
	var n uint64
	for time.Since(start) < d {
		select {
		case <-stop:
			return Result{Packets: n, Elapsed: time.Since(start)}
		default:
		}
		for _, p := range packets {
			sink(p)
		}
		n += uint64(len(packets))
	}
	return Result{Packets: n, Elapsed: time.Since(start)}
}
