package netgen

import (
	"testing"
	"time"

	"rhhh/internal/trace"
)

func TestPrebuild(t *testing.T) {
	gen := trace.NewSynthetic(trace.Config{Seed: 1})
	pkts := Prebuild(gen, 1000)
	if len(pkts) != 1000 {
		t.Fatalf("%d packets", len(pkts))
	}
	// Deterministic: same seed, same packets.
	again := Prebuild(trace.NewSynthetic(trace.Config{Seed: 1}), 1000)
	for i := range pkts {
		if pkts[i] != again[i] {
			t.Fatalf("packet %d differs across builds", i)
		}
	}
}

func TestPrebuildStopsAtSourceEnd(t *testing.T) {
	src := &trace.Slice{Packets: make([]trace.Packet, 7)}
	if got := Prebuild(src, 100); len(got) != 7 {
		t.Fatalf("%d packets, want 7", len(got))
	}
}

func TestPrebuildBatches(t *testing.T) {
	gen := trace.NewSynthetic(trace.Config{Seed: 2})
	batches := PrebuildBatches(gen, 100, 32)
	if len(batches) != 4 {
		t.Fatalf("%d batches", len(batches))
	}
	total := 0
	for i, b := range batches {
		total += len(b)
		if i < 3 && len(b) != 32 {
			t.Fatalf("batch %d has %d packets", i, len(b))
		}
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
}

func TestRunCountsAndTimes(t *testing.T) {
	pkts := make([]trace.Packet, 500)
	seen := 0
	res := Run(pkts, 3, func(trace.Packet) { seen++ })
	if res.Packets != 1500 || seen != 1500 {
		t.Fatalf("packets %d seen %d", res.Packets, seen)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.Mpps() <= 0 {
		t.Fatal("Mpps not positive")
	}
}

func TestRunBatched(t *testing.T) {
	batches := [][]trace.Packet{make([]trace.Packet, 3), make([]trace.Packet, 2)}
	var calls, pkts int
	res := RunBatched(batches, 2, func(b []trace.Packet) { calls++; pkts += len(b) })
	if calls != 4 || pkts != 10 || res.Packets != 10 {
		t.Fatalf("calls=%d pkts=%d res=%d", calls, pkts, res.Packets)
	}
}

func TestRunFor(t *testing.T) {
	pkts := make([]trace.Packet, 1000)
	res := RunFor(pkts, 30*time.Millisecond, func(trace.Packet) {})
	if res.Packets == 0 {
		t.Fatal("no packets driven")
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Fatalf("stopped early: %v", res.Elapsed)
	}
}

func TestMppsZeroElapsed(t *testing.T) {
	r := Result{Packets: 100, Elapsed: 0}
	if r.Mpps() != 0 {
		t.Fatal("zero elapsed should give zero Mpps")
	}
}
