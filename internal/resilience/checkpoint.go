package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rhhh/internal/telemetry"
)

// The checkpoint store is a crash-safe generation log: each full
// checkpoint starts a generation (full-<gen>.ckpt), incremental journal
// segments extend it (seg-<gen>-<seq>.jrnl), and recovery replays the
// newest generation whose full file validates, stopping at the first
// missing or invalid segment — a truncated tail (crash mid-write, power
// loss after rename but before the data hit the platter) loses at most
// the segments past the last durable one, never the generation.
//
// Every file is written tmp+fsync+rename(+dir fsync), so a failed or
// interrupted write leaves only a *.tmp orphan that recovery ignores and
// the next open sweeps. Each file is framed self-validatingly:
//
//	magic[4] version[1] gen[8] seq[4] len[4] payload[len] crc32c[4]
//
// with the CRC (Castagnoli) covering header+payload.

// FS is the filesystem surface the store writes through — injectable so
// the chaos harness can interpose disk-full, short-write and rename
// failures without touching the store logic.
type FS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// WriteFile creates (truncating) path, writes data and fsyncs it. On
	// error the file may exist with a prefix of data.
	WriteFile(path string, data []byte) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir fsyncs the directory so a preceding rename is durable.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (OSFS) Remove(path string) error             { return os.Remove(path) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// StoreStats is the checkpoint telemetry block.
type StoreStats struct {
	Fulls    telemetry.Cell // full checkpoints durably written
	Segments telemetry.Cell // journal segments durably written
	Failures telemetry.Cell // checkpoint writes that failed (state unchanged)
	Bytes    telemetry.Cell // payload bytes durably written
	Gen      telemetry.Cell // current checkpoint generation
}

// Register wires the block under the hhh_resilience_checkpoint_* names.
func (s *StoreStats) Register(r *telemetry.Registry, labels string) {
	r.Counter("hhh_resilience_checkpoint_fulls_total", labels, "Full checkpoints durably written.", &s.Fulls)
	r.Counter("hhh_resilience_checkpoint_segments_total", labels, "Incremental journal segments durably written.", &s.Segments)
	r.Counter("hhh_resilience_checkpoint_failures_total", labels, "Checkpoint writes that failed without corrupting state.", &s.Failures)
	r.Counter("hhh_resilience_checkpoint_bytes_total", labels, "Checkpoint payload bytes durably written.", &s.Bytes)
	r.Gauge("hhh_resilience_checkpoint_generation", labels, "Current checkpoint generation.", &s.Gen)
}

const (
	frameVersion  = 1
	frameHeadLen  = 4 + 1 + 8 + 4 + 4
	frameTrailLen = 4
)

var (
	magicFull = [4]byte{'R', 'C', 'K', 'P'}
	magicSeg  = [4]byte{'R', 'C', 'K', 'J'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Store is the on-disk checkpoint log. Methods are not concurrency-safe;
// the checkpointing goroutine owns the store.
type Store struct {
	dir    string
	fs     FS
	gen    uint64 // current generation (0 = none yet)
	seq    uint32 // last segment seq written in gen
	maxGen uint64 // highest generation named by any file, valid or not —
	// a new full must skip past damaged generations so their leftover
	// segments can never be replayed onto it
	buf   []byte // frame scratch, reused
	Stats StoreStats
}

// OpenStore opens (creating if needed) a checkpoint directory. fsys nil
// means the real filesystem. Orphaned *.tmp files from interrupted writes
// are swept; the store resumes the newest recoverable generation, so
// segments appended after a restart extend the same journal Recover will
// replay.
func OpenStore(dir string, fsys FS) (*Store, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	s := &Store{dir: dir, fs: fsys}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			_ = fsys.Remove(filepath.Join(dir, n))
		}
	}
	gen, seq, _, _, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.gen, s.seq = gen, seq
	s.Stats.Gen.Store(gen)
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the current generation and the last segment sequence
// within it.
func (s *Store) Generation() (gen uint64, seq uint32) { return s.gen, s.seq }

func fullName(gen uint64) string         { return fmt.Sprintf("full-%016x.ckpt", gen) }
func segName(gen uint64, seq uint32) string { return fmt.Sprintf("seg-%016x-%08x.jrnl", gen, seq) }

// frame renders one self-validating file image into s.buf.
func (s *Store) frame(magic [4]byte, gen uint64, seq uint32, payload []byte) []byte {
	need := frameHeadLen + len(payload) + frameTrailLen
	if cap(s.buf) < need {
		s.buf = make([]byte, 0, need)
	}
	b := s.buf[:0]
	b = append(b, magic[:]...)
	b = append(b, frameVersion)
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint32(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	s.buf = b
	return b
}

// parseFrame validates one file image, returning its payload (aliasing b).
func parseFrame(magic [4]byte, wantGen uint64, wantSeq uint32, b []byte) ([]byte, error) {
	if len(b) < frameHeadLen+frameTrailLen {
		return nil, errors.New("truncated header")
	}
	if [4]byte(b[:4]) != magic {
		return nil, errors.New("bad magic")
	}
	if b[4] != frameVersion {
		return nil, fmt.Errorf("unknown version %d", b[4])
	}
	gen := binary.LittleEndian.Uint64(b[5:])
	seq := binary.LittleEndian.Uint32(b[13:])
	n := int(binary.LittleEndian.Uint32(b[17:]))
	if gen != wantGen || seq != wantSeq {
		return nil, fmt.Errorf("frame is gen %d seq %d, file name says gen %d seq %d", gen, seq, wantGen, wantSeq)
	}
	if len(b) != frameHeadLen+n+frameTrailLen {
		return nil, fmt.Errorf("truncated: %d bytes, frame says %d", len(b), frameHeadLen+n+frameTrailLen)
	}
	body := b[:frameHeadLen+n]
	want := binary.LittleEndian.Uint32(b[frameHeadLen+n:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, errors.New("CRC mismatch")
	}
	return b[frameHeadLen : frameHeadLen+n], nil
}

// writeDurable writes one framed file via tmp+fsync+rename+dirsync. On any
// error the target name is untouched (a tmp orphan may remain; it is
// ignored by recovery and swept on the next open).
func (s *Store) writeDurable(name string, frame []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	final := filepath.Join(s.dir, name)
	if err := s.fs.WriteFile(tmp, frame); err != nil {
		s.Stats.Failures.Add(1)
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.Stats.Failures.Add(1)
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The rename happened but may not be durable. Roll the visible
		// name back (best-effort) so a reported failure always means
		// "recoverable state unchanged" — the caller keeps its delta base
		// and will retry. If the remove itself fails or we crash first,
		// recovery still accepts the file: it is complete and valid.
		_ = s.fs.Remove(final)
		s.Stats.Failures.Add(1)
		return err
	}
	return nil
}

// WriteFull durably writes a full checkpoint, starting a new generation,
// then prunes every older generation. On error the previous generation
// remains the recoverable one.
func (s *Store) WriteFull(payload []byte) error {
	gen := max(s.gen, s.maxGen) + 1
	if err := s.writeDurable(fullName(gen), s.frame(magicFull, gen, 0, payload)); err != nil {
		return err
	}
	s.gen, s.seq, s.maxGen = gen, 0, gen
	s.Stats.Fulls.Add(1)
	s.Stats.Bytes.Add(uint64(len(payload)))
	s.Stats.Gen.Store(gen)
	s.prune(gen)
	return nil
}

// AppendSegment durably appends one incremental journal segment to the
// current generation. A full checkpoint must exist first.
func (s *Store) AppendSegment(payload []byte) error {
	if s.gen == 0 {
		return errors.New("resilience: AppendSegment before any full checkpoint")
	}
	seq := s.seq + 1
	if err := s.writeDurable(segName(s.gen, seq), s.frame(magicSeg, s.gen, seq, payload)); err != nil {
		return err
	}
	s.seq = seq
	s.Stats.Segments.Add(1)
	s.Stats.Bytes.Add(uint64(len(payload)))
	return nil
}

// prune removes files of generations older than keep. Best-effort: errors
// are ignored (stray old files are harmless, recovery picks the newest
// valid generation).
func (s *Store) prune(keep uint64) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		var gen uint64
		var seq uint32
		if _, err := fmt.Sscanf(n, "full-%016x.ckpt", &gen); err == nil && gen < keep {
			_ = s.fs.Remove(filepath.Join(s.dir, n))
			continue
		}
		if _, err := fmt.Sscanf(n, "seg-%016x-%08x.jrnl", &gen, &seq); err == nil && gen < keep {
			_ = s.fs.Remove(filepath.Join(s.dir, n))
		}
	}
}

// scan finds the newest generation with a valid full checkpoint and its
// contiguous prefix of valid segments. Returns gen 0 when the directory
// holds no recoverable state.
func (s *Store) scan() (gen uint64, seq uint32, full []byte, segs [][]byte, err error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("resilience: checkpoint dir: %w", err)
	}
	var fullGens []uint64
	segsByGen := make(map[uint64][]uint32)
	for _, n := range names {
		var g uint64
		var q uint32
		if _, err := fmt.Sscanf(n, "full-%016x.ckpt", &g); err == nil && n == fullName(g) {
			fullGens = append(fullGens, g)
			s.maxGen = max(s.maxGen, g)
			continue
		}
		if _, err := fmt.Sscanf(n, "seg-%016x-%08x.jrnl", &g, &q); err == nil && n == segName(g, q) {
			segsByGen[g] = append(segsByGen[g], q)
			s.maxGen = max(s.maxGen, g)
		}
	}
	sort.Slice(fullGens, func(i, j int) bool { return fullGens[i] > fullGens[j] })
	for _, g := range fullGens {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, fullName(g)))
		if err != nil {
			continue
		}
		payload, err := parseFrame(magicFull, g, 0, data)
		if err != nil {
			continue // corrupt full: fall back to the previous generation
		}
		full = append([]byte(nil), payload...)
		seqs := segsByGen[g]
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		last := uint32(0)
		for _, q := range seqs {
			if q != last+1 {
				break // gap: everything past it is unreachable
			}
			data, err := s.fs.ReadFile(filepath.Join(s.dir, segName(g, q)))
			if err != nil {
				break
			}
			payload, err := parseFrame(magicSeg, g, q, data)
			if err != nil {
				break // truncated/corrupt tail: stop here, keep the prefix
			}
			segs = append(segs, append([]byte(nil), payload...))
			last = q
		}
		return g, last, full, segs, nil
	}
	return 0, 0, nil, nil, nil
}

// Recover returns the newest durable state: the full-checkpoint payload
// and the contiguous valid journal segments after it, in order. A missing
// or wholly unrecoverable directory returns (nil, nil, nil) — a fresh
// start. Recovery tolerates a truncated or corrupt tail (the last durable
// prefix wins) and falls back to the previous generation if a full
// checkpoint itself is damaged.
func (s *Store) Recover() (full []byte, segs [][]byte, err error) {
	gen, seq, full, segs, err := s.scan()
	if err != nil {
		return nil, nil, err
	}
	if gen != 0 {
		s.gen, s.seq = gen, seq
		s.Stats.Gen.Store(gen)
	}
	return full, segs, nil
}
