package resilience

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWithDeadlineClearedForNextRequest pins that the per-request write
// deadline does not outlive its request: a later request on the same
// keep-alive connection served by a handler OUTSIDE the deadline wrapper
// (in hhhd, the deliberately ungated /metrics scrape) must not inherit an
// already-expired deadline and fail its first write.
func TestWithDeadlineClearedForNextRequest(t *testing.T) {
	const d = 100 * time.Millisecond
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	mux := http.NewServeMux()
	mux.Handle("/gated", WithDeadline(d, ok))
	mux.Handle("/plain", ok) // no wrapper: nothing re-arms the deadline
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// A raw connection, not ts.Client(): the http.Transport would mask the
	// failure by retrying the idempotent GET on a fresh connection.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	do := func(path string) error {
		if _, err := io.WriteString(conn, "GET "+path+" HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
			return err
		}
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "ok" {
			return fmt.Errorf("body = %q, err %v", body, err)
		}
		return nil
	}
	if err := do("/gated"); err != nil {
		t.Fatalf("gated request: %v", err)
	}
	// Let the gated request's deadline expire, then reuse the connection
	// against the unwrapped handler.
	time.Sleep(d + 50*time.Millisecond)
	if err := do("/plain"); err != nil {
		t.Fatalf("plain request on the keep-alive conn: %v (inherited expired write deadline)", err)
	}
}
