package resilience

import "testing"

// TestHealthSetIf pins the conditional transition the degrade ladder relies
// on: restricted to ok/degraded it can flap freely, but a concurrent
// escalation to failing (a supervisor give-up) can never be clobbered back
// the way a Get-then-Set check-then-act could.
func TestHealthSetIf(t *testing.T) {
	var h Health
	if !h.SetIf(HealthDegraded, "lag", HealthOK, HealthDegraded) {
		t.Fatal("ok -> degraded refused")
	}
	if st, _ := h.Get(); st != HealthDegraded {
		t.Fatalf("state = %v, want degraded", st)
	}
	if !h.SetIf(HealthOK, "", HealthOK, HealthDegraded) {
		t.Fatal("degraded -> ok refused")
	}

	h.Set(HealthFailing, "supervised goroutine gave up")
	if h.SetIf(HealthOK, "", HealthOK, HealthDegraded) {
		t.Fatal("SetIf applied from failing: the ladder would hide a permanent goroutine loss")
	}
	if h.SetIf(HealthDegraded, "lag", HealthOK, HealthDegraded) {
		t.Fatal("SetIf applied from failing")
	}
	if st, reason := h.Get(); st != HealthFailing || reason != "supervised goroutine gave up" {
		t.Fatalf("state = %v %q, want failing with its reason intact", st, reason)
	}

	// Draining stays sticky for SetIf exactly as for Set, even when listed
	// as an allowed source state.
	var h2 Health
	h2.Set(HealthDraining, "shutdown")
	if h2.SetIf(HealthDegraded, "lag", HealthOK, HealthDegraded, HealthDraining) {
		t.Fatal("SetIf escaped the terminal draining state")
	}
}
