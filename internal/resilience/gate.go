package resilience

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"rhhh/internal/telemetry"
)

// Gate is a concurrency-limited admission gate for request handling: at
// most limit requests run at once, excess requests are shed immediately.
// Shedding instead of queuing is what keeps the admitted requests' latency
// bounded under overload — the queue lives at the client, visible through
// 503 + Retry-After.
type Gate struct {
	slots    chan struct{}
	admitted telemetry.Cell
	sheds    telemetry.Cell
}

// NewGate returns a gate admitting up to limit concurrent requests
// (limit < 1 is clamped to 1).
func NewGate(limit int) *Gate {
	if limit < 1 {
		limit = 1
	}
	return &Gate{slots: make(chan struct{}, limit)}
}

// Acquire claims a slot without blocking, reporting whether admission
// succeeded. Every Acquire()==true must be paired with Release.
func (g *Gate) Acquire() bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		g.sheds.Add(1)
		return false
	}
}

// Release returns a slot claimed by Acquire.
func (g *Gate) Release() { <-g.slots }

// Sheds returns the number of requests shed so far.
func (g *Gate) Sheds() uint64 { return g.sheds.Load() }

// InFlight returns the number of currently admitted requests.
func (g *Gate) InFlight() int { return len(g.slots) }

// Register wires the gate's counters under the hhh_resilience_* names;
// labels should identify the protected surface (`{endpoint="query"}`).
func (g *Gate) Register(r *telemetry.Registry, labels string) {
	r.Counter("hhh_resilience_admitted_total", labels, "Requests admitted by the gate.", &g.admitted)
	r.Counter("hhh_resilience_shed_total", labels, "Requests shed by the admission gate (503).", &g.sheds)
	r.GaugeFunc("hhh_resilience_inflight", labels, "Requests currently admitted by the gate.", func() float64 {
		return float64(g.InFlight())
	})
}

// Limit wraps h with the gate: shed requests get 503 with a Retry-After
// hint instead of queuing behind the admitted ones.
func (g *Gate) Limit(retryAfter time.Duration, h http.Handler) http.Handler {
	retry := strconv.Itoa(int(max(1, int64(retryAfter/time.Second))))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !g.Acquire() {
			w.Header().Set("Retry-After", retry)
			http.Error(w, "overloaded, request shed", http.StatusServiceUnavailable)
			return
		}
		defer g.Release()
		h.ServeHTTP(w, r)
	})
}

// WithDeadline wraps h with a per-request deadline: the request context is
// canceled and the connection's write deadline set so a stuck handler or a
// stalled client cannot hold the request slot past d.
func WithDeadline(d time.Duration, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(d))
		// Clear the deadline once the handler returns so a later request on
		// the same keep-alive connection (possibly a deliberately ungated
		// /metrics scrape or a /watch stream) can never inherit an expired
		// deadline and fail its first write. net/http has cleared the write
		// deadline between requests itself since Go 1.21, but that is the
		// server loop's internal discipline — the wrapper keeps its
		// set/clear pairing self-contained instead of leaning on it.
		defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
