// Package resilience is the operational-robustness layer: goroutine
// supervision with bounded-backoff restart, admission gates and request
// deadlines for the HTTP surfaces, a health state machine, an adaptive
// degradation ladder, and a crash-safe incremental checkpoint store.
//
// The package follows the same ownership discipline as the rest of the
// tree: supervision wraps goroutine bodies without adding synchronization
// to them, gates are a single buffered channel, and every counter is a
// telemetry.Cell published with atomic stores — nothing here touches the
// packet path.
package resilience

import (
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"rhhh/internal/telemetry"
)

// Stats is the supervision telemetry block, shared by every Policy that
// points at it. Cells are written with atomic Add from supervised
// goroutines (restart frequency is bounded by backoff, so contention is
// irrelevant).
type Stats struct {
	Panics     telemetry.Cell // panics captured in supervised goroutines
	Restarts   telemetry.Cell // supervised restarts after a panic
	GiveUps    telemetry.Cell // supervised goroutines abandoned after MaxRestarts
	Supervised telemetry.Cell // supervised goroutines currently running
}

// Register wires the block under the hhh_resilience_* names.
func (s *Stats) Register(r *telemetry.Registry, labels string) {
	r.Counter("hhh_resilience_panics_total", labels, "Panics captured in supervised goroutines.", &s.Panics)
	r.Counter("hhh_resilience_restarts_total", labels, "Supervised goroutine restarts after a captured panic.", &s.Restarts)
	r.Counter("hhh_resilience_giveups_total", labels, "Supervised goroutines abandoned after exhausting restarts.", &s.GiveUps)
	r.Gauge("hhh_resilience_supervised", labels, "Supervised goroutines currently running.", &s.Supervised)
}

// Policy configures the supervisor. The zero value (and a nil *Policy) is
// usable: 10ms initial backoff doubling to 2s, give-up after 8 consecutive
// panics, stacks logged to stderr. Fields must be set before the first
// Go/Protect call and not mutated afterwards.
type Policy struct {
	// Backoff is the delay before the first restart; it doubles per
	// consecutive panic up to MaxBackoff. Default 10ms / 2s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxRestarts bounds consecutive panics before the supervisor gives
	// up on the goroutine (0 = default 8, negative = unlimited). A body
	// that stays up for ResetAfter (default 10s) resets the count.
	MaxRestarts int
	ResetAfter  time.Duration
	// OnPanic runs after every captured panic with the recovered value
	// and stack; OnGiveUp runs when the supervisor abandons a goroutine —
	// the escalation hook (mark the process failing, alert, exit).
	OnPanic  func(name string, v any, stack []byte)
	OnGiveUp func(name string, v any)
	// Logf replaces the default stderr logger. Set to a no-op to silence
	// expected panics in tests.
	Logf  func(format string, args ...any)
	Stats *Stats
}

// Default is the process-wide fallback policy used by library code that
// was not handed an explicit one (Windowed merges, vswitch transports).
var Default = &Policy{}

const (
	defaultBackoff     = 10 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
	defaultMaxRestarts = 8
	defaultResetAfter  = 10 * time.Second
)

func (p *Policy) orDefault() *Policy {
	if p == nil {
		return Default
	}
	return p
}

func (p *Policy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "resilience: "+format+"\n", args...)
}

// run executes body once, capturing a panic with its stack.
func (p *Policy) run(body func()) (v any, stack []byte, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			v, stack, panicked = r, debug.Stack(), true
		}
	}()
	body()
	return nil, nil, false
}

// notePanic records one captured panic.
func (p *Policy) notePanic(name string, v any, stack []byte) {
	if p.Stats != nil {
		p.Stats.Panics.Add(1)
	}
	p.logf("%s: panic: %v\n%s", name, v, stack)
	if p.OnPanic != nil {
		p.OnPanic(name, v, stack)
	}
}

// Protect runs body once on the calling goroutine, converting a panic into
// a captured, logged event. It reports whether body panicked. Use it for
// one-shot goroutines whose restart semantics live with the caller.
func (p *Policy) Protect(name string, body func()) (panicked bool) {
	p = p.orDefault()
	v, stack, panicked := p.run(body)
	if panicked {
		p.notePanic(name, v, stack)
	}
	return panicked
}

// Go starts body on a supervised goroutine. A normal return ends
// supervision; a panic is captured, logged, and followed by a restart
// after an exponential backoff, until MaxRestarts consecutive panics
// exhaust the policy (OnGiveUp fires) or stop closes. The returned channel
// closes when the goroutine has permanently exited, whatever the reason.
//
// stop may be nil (the body then runs until it returns or gives up).
// Closing stop does not interrupt a running body — bodies observe their
// own shutdown signal; stop only prevents further restarts.
func (p *Policy) Go(name string, stop <-chan struct{}, body func()) <-chan struct{} {
	p = p.orDefault()
	done := make(chan struct{})
	if p.Stats != nil {
		p.Stats.Supervised.Add(1)
	}
	go func() {
		defer close(done)
		if p.Stats != nil {
			defer func() { p.Stats.Supervised.Add(^uint64(0)) }()
		}
		backoff := p.Backoff
		if backoff <= 0 {
			backoff = defaultBackoff
		}
		maxBackoff := p.MaxBackoff
		if maxBackoff <= 0 {
			maxBackoff = defaultMaxBackoff
		}
		maxRestarts := p.MaxRestarts
		if maxRestarts == 0 {
			maxRestarts = defaultMaxRestarts
		}
		resetAfter := p.ResetAfter
		if resetAfter <= 0 {
			resetAfter = defaultResetAfter
		}
		delay := backoff
		consecutive := 0
		for {
			start := time.Now()
			v, stack, panicked := p.run(body)
			if !panicked {
				return // intentional exit
			}
			p.notePanic(name, v, stack)
			if time.Since(start) >= resetAfter {
				consecutive, delay = 0, backoff
			}
			consecutive++
			if maxRestarts > 0 && consecutive > maxRestarts {
				if p.Stats != nil {
					p.Stats.GiveUps.Add(1)
				}
				p.logf("%s: giving up after %d consecutive panics", name, consecutive)
				if p.OnGiveUp != nil {
					p.OnGiveUp(name, v)
				}
				return
			}
			t := time.NewTimer(delay)
			select {
			case <-stop:
				t.Stop()
				return
			case <-t.C:
			}
			if delay *= 2; delay > maxBackoff {
				delay = maxBackoff
			}
			select {
			case <-stop:
				return
			default:
			}
			if p.Stats != nil {
				p.Stats.Restarts.Add(1)
			}
			p.logf("%s: restarting (attempt %d)", name, consecutive)
		}
	}()
	return done
}
