package resilience

import (
	"sync/atomic"
	"testing"
	"time"
)

func quiet(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf("resilience: "+format, args...) }
}

func TestGoRestartsAfterPanic(t *testing.T) {
	var stats Stats
	var runs atomic.Int32
	p := &Policy{Backoff: time.Millisecond, Logf: quiet(t), Stats: &stats}
	done := p.Go("test", nil, func() {
		if runs.Add(1) < 3 {
			panic("boom")
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("supervised goroutine did not finish")
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("body ran %d times, want 3", got)
	}
	if got := stats.Panics.Load(); got != 2 {
		t.Fatalf("Panics = %d, want 2", got)
	}
	if got := stats.Restarts.Load(); got != 2 {
		t.Fatalf("Restarts = %d, want 2", got)
	}
	if got := stats.GiveUps.Load(); got != 0 {
		t.Fatalf("GiveUps = %d, want 0", got)
	}
	if got := stats.Supervised.Load(); got != 0 {
		t.Fatalf("Supervised = %d, want 0 after exit", got)
	}
}

func TestGoGivesUpAfterMaxRestarts(t *testing.T) {
	var stats Stats
	var gaveUp atomic.Bool
	p := &Policy{
		Backoff:     time.Microsecond,
		MaxRestarts: 3,
		Logf:        quiet(t),
		Stats:       &stats,
		OnGiveUp:    func(name string, v any) { gaveUp.Store(true) },
	}
	done := p.Go("test", nil, func() { panic("always") })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not give up")
	}
	if !gaveUp.Load() {
		t.Fatal("OnGiveUp did not fire")
	}
	if got := stats.GiveUps.Load(); got != 1 {
		t.Fatalf("GiveUps = %d, want 1", got)
	}
	// MaxRestarts=3 allows 3 restarts: 4 runs, 4 panics.
	if got := stats.Panics.Load(); got != 4 {
		t.Fatalf("Panics = %d, want 4", got)
	}
}

func TestGoBackoffGrows(t *testing.T) {
	var times []time.Time
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	p := &Policy{Backoff: 20 * time.Millisecond, MaxRestarts: 2, Logf: quiet(t)}
	done := p.Go("test", nil, func() {
		<-mu
		times = append(times, time.Now())
		mu <- struct{}{}
		panic("boom")
	})
	<-done
	<-mu
	if len(times) != 3 {
		t.Fatalf("body ran %d times, want 3", len(times))
	}
	gap1, gap2 := times[1].Sub(times[0]), times[2].Sub(times[1])
	if gap1 < 20*time.Millisecond {
		t.Fatalf("first restart after %v, want >= 20ms", gap1)
	}
	if gap2 < 40*time.Millisecond {
		t.Fatalf("second restart after %v, want >= 40ms (doubled)", gap2)
	}
}

func TestGoStopPreventsRestart(t *testing.T) {
	var runs atomic.Int32
	stop := make(chan struct{})
	p := &Policy{Backoff: time.Hour, Logf: quiet(t)} // restart would take an hour
	done := p.Go("test", stop, func() {
		runs.Add(1)
		panic("boom")
	})
	time.Sleep(10 * time.Millisecond) // let the body panic and enter backoff
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not end the backoff wait")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("body ran %d times, want 1", got)
	}
}

func TestProtectCapturesPanic(t *testing.T) {
	var stats Stats
	var captured atomic.Bool
	p := &Policy{
		Logf:    quiet(t),
		Stats:   &stats,
		OnPanic: func(name string, v any, stack []byte) { captured.Store(true) },
	}
	if !p.Protect("test", func() { panic("boom") }) {
		t.Fatal("Protect did not report the panic")
	}
	if !captured.Load() {
		t.Fatal("OnPanic did not fire")
	}
	if p.Protect("test", func() {}) {
		t.Fatal("Protect reported a panic for a clean body")
	}
	if got := stats.Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}

func TestNilPolicyUsesDefault(t *testing.T) {
	var p *Policy
	old := Default.Logf
	Default.Logf = func(string, ...any) {}
	defer func() { Default.Logf = old }()
	if !p.Protect("test", func() { panic("boom") }) {
		t.Fatal("nil policy Protect did not capture")
	}
	done := p.Go("test", nil, func() {})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("nil policy Go did not run")
	}
}

func TestDegraderLadder(t *testing.T) {
	d := &Degrader{Watermark: time.Second, MaxLevel: 3, Hold: 10 * time.Second}
	now := time.Unix(0, 0)
	if got := d.Observe(now, 0); got != 0 {
		t.Fatalf("level = %d at no lag, want 0", got)
	}
	if got := d.Observe(now, 1500*time.Millisecond); got != 1 {
		t.Fatalf("level = %d at 1.5x watermark, want 1", got)
	}
	if got := d.Observe(now, 5*time.Second); got != 3 {
		t.Fatalf("level = %d at 5x watermark, want 3", got)
	}
	// Relief must hold before stepping down, then steps one at a time.
	if got := d.Observe(now.Add(time.Second), 0); got != 3 {
		t.Fatalf("level = %d immediately after relief, want 3 (hold)", got)
	}
	if got := d.Observe(now.Add(12*time.Second), 0); got != 2 {
		t.Fatalf("level = %d after hold, want 2", got)
	}
	if got := d.Observe(now.Add(13*time.Second), 0); got != 2 {
		t.Fatalf("level = %d one second into the next hold, want 2", got)
	}
	if got := d.Observe(now.Add(23*time.Second), 0); got != 1 {
		t.Fatalf("level = %d after the second hold, want 1", got)
	}
	// A lag spike mid-recovery jumps straight back up.
	if got := d.Observe(now.Add(24*time.Second), 3*time.Second); got != 2 {
		t.Fatalf("level = %d on renewed 3x lag, want 2", got)
	}
	if d.Level() != 2 {
		t.Fatalf("Level() = %d, want 2", d.Level())
	}
}

func TestHealthDrainingIsSticky(t *testing.T) {
	var h Health
	if st, _ := h.Get(); st != HealthOK {
		t.Fatalf("zero state = %v, want ok", st)
	}
	h.Set(HealthDegraded, "lag")
	if st, why := h.Get(); st != HealthDegraded || why != "lag" {
		t.Fatalf("state = %v %q, want degraded lag", st, why)
	}
	h.Set(HealthDraining, "shutdown")
	if h.Set(HealthOK, "recovered") {
		t.Fatal("Set(ok) after draining was accepted")
	}
	if st, _ := h.Get(); st != HealthDraining {
		t.Fatalf("state = %v, want draining", st)
	}
}

func TestGateShedsOverLimit(t *testing.T) {
	g := NewGate(2)
	if !g.Acquire() || !g.Acquire() {
		t.Fatal("gate refused admission under the limit")
	}
	if g.Acquire() {
		t.Fatal("gate admitted over the limit")
	}
	if got := g.Sheds(); got != 1 {
		t.Fatalf("Sheds = %d, want 1", got)
	}
	g.Release()
	if !g.Acquire() {
		t.Fatal("gate refused admission after a release")
	}
	g.Release()
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
}
