package resilience

import (
	"errors"
	"math/rand/v2"
	"sync"
)

// ErrInjected is the error returned by FaultFS-injected failures.
var ErrInjected = errors.New("resilience: injected fault")

// FaultFS wraps an FS and injects write-path faults with a seeded
// probability — the checkpoint half of the chaos harness. Injected
// failures model the real crash surface:
//
//   - WriteFile: fail after persisting only a random prefix (short write /
//     disk full), leaving a partial file behind like a real ENOSPC would.
//   - Rename: fail, leaving the durable name untouched.
//   - SyncDir: fail after the rename, modeling "renamed but maybe not
//     durable".
//
// Read-side operations are never failed: recovery must always be able to
// examine whatever the faults left behind. Safe for concurrent use.
type FaultFS struct {
	Inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	rate     float64
	injected uint64
}

// NewFaultFS wraps inner (nil = the real filesystem) with seeded fault
// injection at the given per-operation probability.
func NewFaultFS(inner FS, seed uint64, rate float64) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{
		Inner: inner,
		rng:   rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		rate:  rate,
	}
}

// SetRate changes the injection probability (0 disables).
func (f *FaultFS) SetRate(rate float64) {
	f.mu.Lock()
	f.rate = rate
	f.mu.Unlock()
}

// Injected returns how many faults have been injected.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// trip decides one injection; frac is the random prefix fraction for short
// writes.
func (f *FaultFS) trip() (fail bool, frac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rate > 0 && f.rng.Float64() < f.rate {
		f.injected++
		return true, f.rng.Float64()
	}
	return false, 0
}

func (f *FaultFS) MkdirAll(dir string) error            { return f.Inner.MkdirAll(dir) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.Inner.ReadFile(path) }
func (f *FaultFS) Remove(path string) error             { return f.Inner.Remove(path) }

func (f *FaultFS) WriteFile(path string, data []byte) error {
	if fail, frac := f.trip(); fail {
		// Persist a prefix, then report failure — the partial file stays.
		_ = f.Inner.WriteFile(path, data[:int(frac*float64(len(data)))])
		return ErrInjected
	}
	return f.Inner.WriteFile(path, data)
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	if fail, _ := f.trip(); fail {
		return ErrInjected
	}
	return f.Inner.Rename(oldPath, newPath)
}

func (f *FaultFS) SyncDir(dir string) error {
	if fail, _ := f.trip(); fail {
		// The rename already happened; modeling a lost dir entry would
		// require deleting the file, which a later crash-free run would
		// observe anyway — keep the file and just report the failure.
		return ErrInjected
	}
	return f.Inner.SyncDir(dir)
}
