package resilience

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustStore(t *testing.T, fsys FS) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func recoverAll(t *testing.T, dir string, fsys FS) (full []byte, segs [][]byte) {
	t.Helper()
	s, err := OpenStore(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	full, segs, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return full, segs
}

func TestStoreRoundTrip(t *testing.T) {
	s := mustStore(t, nil)
	if full, segs, err := s.Recover(); err != nil || full != nil || segs != nil {
		t.Fatalf("empty store Recover = %v %v %v, want nil nil nil", full, segs, err)
	}
	if err := s.WriteFull([]byte("full-1")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.AppendSegment([]byte(fmt.Sprintf("seg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	full, segs := recoverAll(t, s.Dir(), nil)
	if string(full) != "full-1" {
		t.Fatalf("full = %q", full)
	}
	if len(segs) != 3 || string(segs[0]) != "seg-1" || string(segs[2]) != "seg-3" {
		t.Fatalf("segs = %q", segs)
	}
}

func TestStoreNewFullPrunesOldGeneration(t *testing.T) {
	s := mustStore(t, nil)
	if err := s.WriteFull([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSegment([]byte("old-seg")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFull([]byte("new")); err != nil {
		t.Fatal(err)
	}
	full, segs := recoverAll(t, s.Dir(), nil)
	if string(full) != "new" || len(segs) != 0 {
		t.Fatalf("recovered %q + %d segs, want new + 0", full, len(segs))
	}
	names, _ := OSFS{}.ReadDir(s.Dir())
	if len(names) != 1 {
		t.Fatalf("old generation not pruned: %v", names)
	}
}

func TestStoreSegmentBeforeFullRejected(t *testing.T) {
	s := mustStore(t, nil)
	if err := s.AppendSegment([]byte("x")); err == nil {
		t.Fatal("AppendSegment before WriteFull succeeded")
	}
}

func TestStoreResumesGenerationAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFull([]byte("full")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSegment([]byte("a")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendSegment([]byte("b")); err != nil {
		t.Fatal(err)
	}
	_, segs := recoverAll(t, dir, nil)
	if len(segs) != 2 || string(segs[1]) != "b" {
		t.Fatalf("segs after reopen = %q, want [a b]", segs)
	}
}

func corruptTail(t *testing.T, path string, mode string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case "truncate":
		data = data[:len(data)/2]
	case "flip":
		data[len(data)/2] ^= 0xff
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreToleratesTruncatedAndCorruptTail(t *testing.T) {
	for _, mode := range []string{"truncate", "flip"} {
		t.Run(mode, func(t *testing.T) {
			s := mustStore(t, nil)
			if err := s.WriteFull([]byte("full")); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 3; i++ {
				if err := s.AppendSegment([]byte(fmt.Sprintf("seg-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			corruptTail(t, filepath.Join(s.Dir(), segName(1, 3)), mode)
			full, segs := recoverAll(t, s.Dir(), nil)
			if string(full) != "full" || len(segs) != 2 {
				t.Fatalf("recovered %q + %d segs, want full + 2 (damaged tail dropped)", full, len(segs))
			}
			// A damaged middle segment cuts replay there: seg-3 after it
			// is unreachable even if intact.
			s2 := mustStore(t, nil)
			_ = s2.WriteFull([]byte("full"))
			for i := 1; i <= 3; i++ {
				_ = s2.AppendSegment([]byte(fmt.Sprintf("seg-%d", i)))
			}
			corruptTail(t, filepath.Join(s2.Dir(), segName(1, 2)), mode)
			_, segs = recoverAll(t, s2.Dir(), nil)
			if len(segs) != 1 || string(segs[0]) != "seg-1" {
				t.Fatalf("segs = %q, want [seg-1]", segs)
			}
		})
	}
}

func TestStoreFallsBackPastDamagedFull(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.WriteFull([]byte("gen1"))
	_ = s.AppendSegment([]byte("gen1-seg"))
	// Write generation 2 without pruning generation 1 (simulate by
	// copying gen 1 files aside and restoring them).
	g1full, _ := os.ReadFile(filepath.Join(dir, fullName(1)))
	g1seg, _ := os.ReadFile(filepath.Join(dir, segName(1, 1)))
	_ = s.WriteFull([]byte("gen2"))
	_ = os.WriteFile(filepath.Join(dir, fullName(1)), g1full, 0o644)
	_ = os.WriteFile(filepath.Join(dir, segName(1, 1)), g1seg, 0o644)
	corruptTail(t, filepath.Join(dir, fullName(2)), "flip")

	full, segs := recoverAll(t, dir, nil)
	if string(full) != "gen1" || len(segs) != 1 || string(segs[0]) != "gen1-seg" {
		t.Fatalf("recovered %q + %q, want gen1 + [gen1-seg]", full, segs)
	}

	// A full written after the fallback must skip every generation named
	// by any file — the damaged generation's stray segments must never
	// replay onto a new full reusing its number.
	_ = os.WriteFile(filepath.Join(dir, segName(3, 1)), nil, 0o644) // stray future-gen garbage
	s3, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s3.WriteFull([]byte("gen4")); err != nil {
		t.Fatal(err)
	}
	if gen, _ := s3.Generation(); gen != 4 {
		t.Fatalf("generation after fallback full = %d, want 4", gen)
	}
	full, segs = recoverAll(t, dir, nil)
	if string(full) != "gen4" || len(segs) != 0 {
		t.Fatalf("recovered %q + %d segs, want gen4 + 0", full, len(segs))
	}
}

// TestStoreFaultsNeverCorruptRecoverableState is the checkpoint half of
// the chaos soak: under seeded write/rename/sync fault injection, the
// recoverable state must always equal the last write the store reported
// as durable.
func TestStoreFaultsNeverCorruptRecoverableState(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("seed %d (reproduce with this seed on failure)", seed)
			dir := t.TempDir()
			ffs := NewFaultFS(nil, seed, 0.3)
			s, err := OpenStore(dir, ffs)
			if err != nil {
				t.Fatal(err)
			}
			// The durable reference: last acked full + acked segments.
			var wantFull []byte
			var wantSegs [][]byte
			for i := 0; i < 60; i++ {
				payload := []byte(fmt.Sprintf("payload-%d", i))
				if i%10 == 0 || wantFull == nil {
					if err := s.WriteFull(payload); err == nil {
						wantFull = payload
						wantSegs = wantSegs[:0]
					}
				} else {
					if err := s.AppendSegment(payload); err == nil {
						wantSegs = append(wantSegs, payload)
					}
				}
				// Recover through a fresh store (clean FS — recovery
				// itself is not under test here) and compare.
				full, segs := recoverAll(t, dir, nil)
				if !bytes.Equal(full, wantFull) {
					t.Fatalf("step %d: recovered full %q, want %q", i, full, wantFull)
				}
				if len(segs) < len(wantSegs) {
					t.Fatalf("step %d: recovered %d segs, want >= %d acked", i, len(segs), len(wantSegs))
				}
				for j := range wantSegs {
					if !bytes.Equal(segs[j], wantSegs[j]) {
						t.Fatalf("step %d: seg %d = %q, want %q", i, j, segs[j], wantSegs[j])
					}
				}
			}
			if ffs.Injected() == 0 {
				t.Fatal("no faults injected; raise the rate")
			}
		})
	}
}
