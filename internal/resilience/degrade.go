package resilience

import (
	"time"

	"rhhh/internal/telemetry"
)

// Degrader is the adaptive degradation ladder: a periodic Observe call
// feeds it the current ingest lag and the shed count, and it answers with
// a degrade level 0..MaxLevel. Levels step up immediately when lag crosses
// the watermark (one watermark per level: lag ≥ 2^(L-1) × watermark →
// level L) and step down one level at a time after Hold of sustained
// relief — asymmetric on purpose, so a flapping input cannot oscillate the
// cadence levers.
//
// The caller owns the mapping from level to levers (publication-cadence
// scale, intake thinning); Degrader owns only the decision. Observe must
// be called from one goroutine; Level may be read from any.
type Degrader struct {
	// Watermark is the lag at which level 1 engages. Required.
	Watermark time.Duration
	// MaxLevel caps the ladder (0 = default 3).
	MaxLevel int
	// Hold is how long relief must persist before stepping down one
	// level (0 = default 5s).
	Hold time.Duration
	// OnChange runs on every level transition, on the Observe goroutine.
	OnChange func(old, new int)

	level     int
	calmSince time.Time
	levelCell telemetry.Cell
	stepsCell telemetry.Cell
}

// Level returns the last published degrade level. Safe from any goroutine.
func (d *Degrader) Level() int { return int(d.levelCell.Load()) }

// Observe feeds one control-loop sample: the current ingest lag (however
// the caller defines it — publication age while intake is active, feeder
// schedule shortfall). It returns the new level. Note shed counts are
// deliberately not an input: shedding is the bounded-latency mechanism
// working, not a reason to trade ingest accuracy.
func (d *Degrader) Observe(now time.Time, lag time.Duration) int {
	maxLevel := d.MaxLevel
	if maxLevel <= 0 {
		maxLevel = 3
	}
	hold := d.Hold
	if hold <= 0 {
		hold = 5 * time.Second
	}

	// Target level from the lag: watermark → 1, 2× → 2, 4× → 3.
	target := 0
	if d.Watermark > 0 && lag >= d.Watermark {
		target = 1
		for th := 2 * d.Watermark; lag >= th && target < maxLevel; th *= 2 {
			target++
		}
	}

	switch {
	case target > d.level:
		d.stepsCell.Add(uint64(target - d.level))
		d.setLevel(target)
		d.calmSince = time.Time{}
	case target < d.level:
		if d.calmSince.IsZero() {
			d.calmSince = now
		} else if now.Sub(d.calmSince) >= hold {
			d.setLevel(d.level - 1)
			d.calmSince = now
		}
	default:
		d.calmSince = time.Time{}
	}
	return d.level
}

func (d *Degrader) setLevel(l int) {
	old := d.level
	d.level = l
	d.levelCell.Store(uint64(l))
	if d.OnChange != nil {
		d.OnChange(old, l)
	}
}

// Register exposes the ladder under the hhh_resilience_* names.
func (d *Degrader) Register(r *telemetry.Registry, labels string) {
	r.Gauge("hhh_resilience_degrade_level", labels, "Current adaptive-degrade level (0 = full fidelity).", &d.levelCell)
	r.Counter("hhh_resilience_degrade_steps_total", labels, "Degrade-ladder step-ups.", &d.stepsCell)
}
