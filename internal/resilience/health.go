package resilience

import (
	"sync"

	"rhhh/internal/telemetry"
)

// HealthState is the daemon's coarse operational state, exposed by
// /healthz and as a gauge. Transitions: ok ↔ degraded (the degrade ladder
// stepping up and down), ok/degraded → failing (a supervised goroutine
// gave up, or overload beyond the ladder), any → draining (shutdown began;
// terminal).
type HealthState int32

const (
	HealthOK HealthState = iota
	HealthDegraded
	HealthFailing
	HealthDraining
)

func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthFailing:
		return "failing"
	default:
		return "draining"
	}
}

// Health is the state machine behind /healthz: a state plus the reason it
// was entered. Draining is sticky — once shutdown starts, degrade/recover
// transitions no longer apply.
type Health struct {
	mu     sync.Mutex
	state  HealthState
	reason string
	cell   telemetry.Cell
}

// Set moves to state (recording why). Returns false if the transition was
// refused because the health is already draining.
func (h *Health) Set(state HealthState, reason string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == HealthDraining && state != HealthDraining {
		return false
	}
	h.state, h.reason = state, reason
	h.cell.Store(uint64(state))
	return true
}

// SetIf moves to state (recording why) only when the current state is one
// of from. Check and transition happen under a single mutex hold, so a
// caller restricted to ok/degraded (the degrade ladder) can never clobber
// a concurrent escalation to failing the way a Get-then-Set would.
// Returns whether the transition was applied.
func (h *Health) SetIf(state HealthState, reason string, from ...HealthState) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == HealthDraining && state != HealthDraining {
		return false
	}
	ok := false
	for _, f := range from {
		if h.state == f {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	h.state, h.reason = state, reason
	h.cell.Store(uint64(state))
	return true
}

// Get returns the current state and the reason it was entered.
func (h *Health) Get() (HealthState, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.reason
}

// Register exposes the state as the hhh_resilience_health_state gauge
// (0 ok, 1 degraded, 2 failing, 3 draining).
func (h *Health) Register(r *telemetry.Registry, labels string) {
	r.Gauge("hhh_resilience_health_state", labels, "Health state: 0 ok, 1 degraded, 2 failing, 3 draining.", &h.cell)
}
