package vswitch

import (
	"strconv"

	"rhhh/internal/telemetry"
)

// Telemetry for the distributed deployment. The two sides follow different
// halves of the internal/telemetry ownership model:
//
//   - DeltaReporter is single-threaded (one reporter per datapath), so its
//     ReporterStats stay plain owner-side counters; Instrument installs a
//     block of atomic cells the reporter publishes at its existing tick
//     boundary. The packet path itself is untouched.
//   - Collector is mutex-protected and scraped rarely, so its series are
//     scrape-time closures taking c.mu — including per-sender dynamic
//     series whose rendered label strings are cached per sender id.

// ReporterTelemetry is the DeltaReporter's publication block.
type ReporterTelemetry struct {
	Reports      telemetry.Cell
	FullReports  telemetry.Cell
	DeltaReports telemetry.Cell
	DeltaNodes   telemetry.Cell
	FullBytes    telemetry.Cell
	DeltaBytes   telemetry.Cell
	Retransmits  telemetry.Cell
	Timeouts     telemetry.Cell
	Resyncs      telemetry.Cell
	Superseded   telemetry.Cell
	AcksOK       telemetry.Cell
	AcksStale    telemetry.Cell
	Nacks        telemetry.Cell
	AckErrors    telemetry.Cell
	SendErrors   telemetry.Cell
	InFlight     telemetry.Cell
	Epoch        telemetry.Cell
}

// Register wires the block under the rhhh_reporter_* names; labels should
// carry the sender id (e.g. `{sender="3"}`).
func (t *ReporterTelemetry) Register(r *telemetry.Registry, labels string) {
	r.Counter("rhhh_reporter_reports_total", labels, "Reports built by the switch-side delta reporter.", &t.Reports)
	r.Counter("rhhh_reporter_full_reports_total", labels, "Full state reports built.", &t.FullReports)
	r.Counter("rhhh_reporter_delta_reports_total", labels, "Delta reports built.", &t.DeltaReports)
	r.Counter("rhhh_reporter_delta_nodes_total", labels, "Lattice nodes carried by all delta reports.", &t.DeltaNodes)
	r.Counter("rhhh_reporter_full_bytes_total", labels, "Encoded bytes of full reports.", &t.FullBytes)
	r.Counter("rhhh_reporter_delta_bytes_total", labels, "Encoded bytes of delta reports.", &t.DeltaBytes)
	r.Counter("rhhh_reporter_retransmits_total", labels, "Report frames re-sent after a timeout.", &t.Retransmits)
	r.Counter("rhhh_reporter_timeouts_total", labels, "Ack timeouts fired.", &t.Timeouts)
	r.Counter("rhhh_reporter_resyncs_total", labels, "Full reports forced by a nack or exhausted delta retries.", &t.Resyncs)
	r.Counter("rhhh_reporter_superseded_total", labels, "Pending reports replaced by a newer boundary before an ack.", &t.Superseded)
	r.Counter("rhhh_reporter_acks_ok_total", labels, "Acks accepting the pending report.", &t.AcksOK)
	r.Counter("rhhh_reporter_acks_stale_total", labels, "Acks for superseded or long-gone reports.", &t.AcksStale)
	r.Counter("rhhh_reporter_nacks_total", labels, "Resync requests received from the collector.", &t.Nacks)
	r.Counter("rhhh_reporter_ack_errors_total", labels, "Undecodable or misdirected ack frames.", &t.AckErrors)
	r.Counter("rhhh_reporter_send_errors_total", labels, "Transport send failures.", &t.SendErrors)
	r.Gauge("rhhh_reporter_in_flight", labels, "Whether a report is awaiting its ack (0 or 1).", &t.InFlight)
	r.Gauge("rhhh_reporter_epoch", labels, "Collector epoch last learned from an ack.", &t.Epoch)
}

// Instrument registers the reporter's protocol telemetry with reg under the
// sender-id label; the block is republished at every protocol tick. Call it
// before feeding traffic (same goroutine as the datapath). A nil reg is a
// no-op.
func (r *DeltaReporter) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.tm = &ReporterTelemetry{}
	r.tm.Register(reg, senderLabels(r.sender))
	r.publishTelemetry()
}

// publishTelemetry copies the owner-side protocol counters into the block.
func (r *DeltaReporter) publishTelemetry() {
	t, s := r.tm, &r.stats
	t.Reports.Store(s.Reports)
	t.FullReports.Store(s.FullReports)
	t.DeltaReports.Store(s.DeltaReports)
	t.DeltaNodes.Store(s.DeltaNodes)
	t.FullBytes.Store(s.FullBytes)
	t.DeltaBytes.Store(s.DeltaBytes)
	t.Retransmits.Store(s.Retransmits)
	t.Timeouts.Store(s.Timeouts)
	t.Resyncs.Store(s.Resyncs)
	t.Superseded.Store(s.Superseded)
	t.AcksOK.Store(s.AcksOK)
	t.AcksStale.Store(s.AcksStale)
	t.Nacks.Store(s.Nacks)
	t.AckErrors.Store(s.AckErrors)
	t.SendErrors.Store(s.SendErrors)
	var inFlight uint64
	if r.inFlight {
		inFlight = 1
	}
	t.InFlight.Store(inFlight)
	t.Epoch.Store(uint64(r.epoch))
}

// senderLabels renders the per-sender label set (allocates; setup/scrape
// paths only).
func senderLabels(id uint16) string {
	return `{sender="` + strconv.FormatUint(uint64(id), 10) + `"}`
}

// Instrument registers the collector's protocol telemetry with reg: the
// global counters as scrape-time closures over c.mu, plus per-sender dynamic
// series (replica weight, sender-reported drops, stale reports, refused
// deltas, staleness) labeled by sender id. A nil reg is a no-op.
func (c *Collector) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	stat := func(pick func(*CollectorStats) uint64) func() uint64 {
		return func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return pick(&c.stats)
		}
	}
	reg.CounterFunc("rhhh_collector_messages_total", "", "Datagrams handed to the collector.",
		stat(func(s *CollectorStats) uint64 { return s.Messages }))
	reg.CounterFunc("rhhh_collector_sample_batches_total", "", "Applied sample batches.",
		stat(func(s *CollectorStats) uint64 { return s.SampleBatches }))
	reg.CounterFunc("rhhh_collector_full_reports_total", "", "Applied full state reports.",
		stat(func(s *CollectorStats) uint64 { return s.FullReports }))
	reg.CounterFunc("rhhh_collector_delta_reports_total", "", "Applied delta reports.",
		stat(func(s *CollectorStats) uint64 { return s.DeltaReports }))
	reg.CounterFunc("rhhh_collector_stale_reports_total", "", "Already-applied reports acked without reapplying.",
		stat(func(s *CollectorStats) uint64 { return s.StaleReports }))
	reg.CounterFunc("rhhh_collector_resync_requests_total", "", "Nacks asking a sender for a full report.",
		stat(func(s *CollectorStats) uint64 { return s.ResyncRequests }))
	reg.CounterFunc("rhhh_collector_decode_errors_total", "", "Malformed datagrams rejected.",
		stat(func(s *CollectorStats) uint64 { return s.DecodeErrors }))
	reg.CounterFunc("rhhh_collector_failovers_total", "", "Checkpoint restores into this collector.",
		stat(func(s *CollectorStats) uint64 { return s.Failovers }))
	reg.GaugeFunc("rhhh_collector_epoch", "", "Collector incarnation number.", func() float64 {
		return float64(c.Epoch())
	})
	reg.GaugeFunc("rhhh_collector_senders", "", "Reporting switches with a replica.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.senders))
	})
	reg.GaugeFunc("rhhh_collector_packets_total", "", "Stream packets behind the collector's state.", func() float64 {
		return float64(c.Packets())
	})
	sender := func(pick func(*senderState) uint64) func(*telemetry.Appender) {
		return func(a *telemetry.Appender) {
			c.mu.Lock()
			defer c.mu.Unlock()
			for _, id := range c.senderOrderLocked() {
				a.U64(c.senderLabelsLocked(id), pick(c.senders[id]))
			}
		}
	}
	reg.CollectGauge("rhhh_collector_sender_packets", "Stream packets behind the sender's replica.",
		sender(func(st *senderState) uint64 { return st.snap.Packets }))
	reg.CollectCounter("rhhh_collector_sender_dropped_total", "Sender-reported dropped or superseded reports.",
		sender(func(st *senderState) uint64 { return st.dropped }))
	reg.CollectCounter("rhhh_collector_sender_stale_total", "Stale reports from this sender.",
		sender(func(st *senderState) uint64 { return st.stale }))
	reg.CollectCounter("rhhh_collector_sender_gaps_total", "Deltas refused pending resync.",
		sender(func(st *senderState) uint64 { return st.gaps }))
	reg.CollectGauge("rhhh_collector_sender_staleness_messages", "Messages processed since the sender's replica last advanced.",
		sender(func(st *senderState) uint64 { return c.stats.Messages - st.lastMsg }))
}

// senderOrderLocked returns the sender ids in ascending order, reusing the
// scrape scratch; c.mu must be held.
func (c *Collector) senderOrderLocked() []uint16 {
	c.tmOrder = c.tmOrder[:0]
	for id := range c.senders {
		c.tmOrder = append(c.tmOrder, id)
	}
	for i := 1; i < len(c.tmOrder); i++ { // tiny n: insertion sort, no closure alloc
		for j := i; j > 0 && c.tmOrder[j] < c.tmOrder[j-1]; j-- {
			c.tmOrder[j], c.tmOrder[j-1] = c.tmOrder[j-1], c.tmOrder[j]
		}
	}
	return c.tmOrder
}

// senderLabelsLocked returns the cached rendered label set for a sender id,
// building it on first use; c.mu must be held.
func (c *Collector) senderLabelsLocked(id uint16) string {
	if c.tmLabels == nil {
		c.tmLabels = make(map[uint16]string)
	}
	l, ok := c.tmLabels[id]
	if !ok {
		l = senderLabels(id)
		c.tmLabels[id] = l
	}
	return l
}
