package vswitch

import (
	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/trace"
)

// EMC is the exact-match cache in front of the classifier, mirroring the
// OVS-DPDK EMC: a bounded map from five-tuple to action with random
// replacement.
type EMC struct {
	m   map[trace.FiveTuple]Action
	cap int
	rng *fastrand.Source
	// keys mirrors the map for O(1) random eviction.
	keys []trace.FiveTuple
	pos  map[trace.FiveTuple]int
}

// NewEMC returns a cache holding up to capacity flows (OVS defaults to 8192).
func NewEMC(capacity int, seed uint64) *EMC {
	if capacity < 1 {
		panic("vswitch: EMC capacity must be >= 1")
	}
	return &EMC{
		m:   make(map[trace.FiveTuple]Action, capacity),
		cap: capacity,
		rng: fastrand.New(seed),
		pos: make(map[trace.FiveTuple]int, capacity),
	}
}

// Lookup returns the cached action for the flow.
func (c *EMC) Lookup(ft trace.FiveTuple) (Action, bool) {
	a, ok := c.m[ft]
	return a, ok
}

// Insert caches the action, evicting a random entry at capacity.
func (c *EMC) Insert(ft trace.FiveTuple, a Action) {
	if _, ok := c.m[ft]; ok {
		c.m[ft] = a
		return
	}
	if len(c.keys) >= c.cap {
		i := int(c.rng.Uint64n(uint64(len(c.keys))))
		victim := c.keys[i]
		last := len(c.keys) - 1
		c.keys[i] = c.keys[last]
		c.pos[c.keys[i]] = i
		c.keys = c.keys[:last]
		delete(c.m, victim)
		delete(c.pos, victim)
	}
	c.m[ft] = a
	c.pos[ft] = len(c.keys)
	c.keys = append(c.keys, ft)
}

// Len returns the number of cached flows.
func (c *EMC) Len() int { return len(c.m) }

// Hook is the measurement integration point: it sees every packet the
// datapath processes (the paper's dataplane integration).
type Hook interface {
	OnPacket(p trace.Packet)
}

// HookFunc adapts a function to the Hook interface.
type HookFunc func(p trace.Packet)

// OnPacket calls f(p).
func (f HookFunc) OnPacket(p trace.Packet) { f(p) }

// BatchHook is an optional Hook extension: a hook that consumes a whole
// batch at once. Datapath.ProcessBatch delivers one OnBatch call instead of
// per-packet OnPacket calls, letting measurement amortize its work (RHHH's
// batched update skips non-sampled packets in bulk).
type BatchHook interface {
	Hook
	OnBatch(ps []trace.Packet)
}

// NopHook is the unmodified-switch baseline (Figure 6's "OVS" bar).
type NopHook struct{}

// OnPacket does nothing.
func (NopHook) OnPacket(trace.Packet) {}

// Stats counts datapath events.
type Stats struct {
	Received  uint64
	Forwarded uint64
	Dropped   uint64
	EMCHits   uint64
	TableHits uint64
	NoMatch   uint64
}

// Datapath is the packet pipeline: hook → EMC → flow table → action. It is
// single-threaded by design, like one OVS PMD thread; run one Datapath per
// core and shard ports across them for parallelism.
type Datapath struct {
	Table *FlowTable
	Cache *EMC
	hook  Hook
	batch BatchHook // non-nil when hook also implements BatchHook
	stats Stats
	// DefaultAction applies when no rule matches (OVS would punt to the
	// controller; we drop by default).
	DefaultAction Action
}

// NewDatapath assembles a pipeline. hook may be nil for an unmodified
// switch.
func NewDatapath(table *FlowTable, cache *EMC, hook Hook) *Datapath {
	d := &Datapath{
		Table:         table,
		Cache:         cache,
		DefaultAction: Action{Drop: true},
	}
	d.SetHook(hook)
	return d
}

// SetHook swaps the measurement hook (e.g. between experiment runs).
func (d *Datapath) SetHook(h Hook) {
	if h == nil {
		h = NopHook{}
	}
	d.hook = h
	d.batch, _ = h.(BatchHook)
}

// Stats returns a copy of the counters.
func (d *Datapath) Stats() Stats { return d.stats }

// Process runs one packet through the pipeline and returns the action taken.
func (d *Datapath) Process(p trace.Packet) Action {
	d.stats.Received++
	d.hook.OnPacket(p)
	return d.forward(p)
}

// forward runs the pipeline stages after the measurement hook.
func (d *Datapath) forward(p trace.Packet) Action {
	ft := p.Flow()
	a, ok := d.Cache.Lookup(ft)
	if ok {
		d.stats.EMCHits++
	} else {
		a, ok = d.Table.Lookup(p)
		if ok {
			d.stats.TableHits++
		} else {
			d.stats.NoMatch++
			a = d.DefaultAction
		}
		d.Cache.Insert(ft, a)
	}
	if a.Drop {
		d.stats.Dropped++
	} else {
		d.stats.Forwarded++
	}
	return a
}

// ProcessBatch runs a batch through the pipeline (the DPDK-style unit of
// work) and returns how many packets were forwarded. A hook implementing
// BatchHook sees the whole batch in one call before forwarding.
func (d *Datapath) ProcessBatch(batch []trace.Packet) int {
	fwd := 0
	if d.batch != nil {
		d.batch.OnBatch(batch)
		for _, p := range batch {
			d.stats.Received++
			if a := d.forward(p); !a.Drop {
				fwd++
			}
		}
		return fwd
	}
	for _, p := range batch {
		if a := d.Process(p); !a.Drop {
			fwd++
		}
	}
	return fwd
}

// EngineHook feeds the datapath's packets to a co-located RHHH engine over
// the two-dimensional IPv4 domain — the paper's dataplane integration.
// Under ProcessBatch it uses the engine's batched update, which skips runs
// of non-sampled packets in bulk when V > H and applies the batch's samples
// through the engine's pipelined node-grouped kernel. In byte-count mode
// (NewEngineHookBytes) every update carries the packet's wire length, so the
// reported heavy hitters rank prefixes by traffic volume instead of packet
// count.
type EngineHook struct {
	eng   *core.Engine[uint64]
	buf   []uint64
	wbuf  []uint64
	bytes bool
}

// NewEngineHook wraps an engine in a (batch-capable) datapath hook counting
// packets.
func NewEngineHook(eng *core.Engine[uint64]) *EngineHook {
	return &EngineHook{eng: eng, buf: make([]uint64, 0, 256)}
}

// NewEngineHookBytes wraps an engine in a (batch-capable) datapath hook
// counting bytes: each packet contributes its wire length as update weight,
// through the engine's weighted batch path under ProcessBatch.
func NewEngineHookBytes(eng *core.Engine[uint64]) *EngineHook {
	return &EngineHook{eng: eng, buf: make([]uint64, 0, 256), wbuf: make([]uint64, 0, 256), bytes: true}
}

// OnPacket feeds one packet's 2D key (and, in byte-count mode, its length)
// to the engine.
func (h *EngineHook) OnPacket(p trace.Packet) {
	if h.bytes {
		h.eng.UpdateWeighted(p.Key2(), uint64(p.Length))
		return
	}
	h.eng.Update(p.Key2())
}

// OnBatch feeds a whole batch through the engine's batched update path.
func (h *EngineHook) OnBatch(ps []trace.Packet) {
	buf := h.buf[:0]
	for _, p := range ps {
		buf = append(buf, p.Key2())
	}
	h.buf = buf
	if h.bytes {
		wbuf := h.wbuf[:0]
		for _, p := range ps {
			wbuf = append(wbuf, uint64(p.Length))
		}
		h.wbuf = wbuf
		h.eng.UpdateWeightedBatch(buf, wbuf)
		return
	}
	h.eng.UpdateBatch(buf)
}
