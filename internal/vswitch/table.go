// Package vswitch simulates the software switch of the paper's §5: a
// userspace datapath with the same structure as Open vSwitch's DPDK
// datapath — parse, exact-match cache, masked (megaflow-style) flow table,
// actions — and the two HHH integration points the paper evaluates:
//
//   - dataplane mode: a measurement hook invoked per packet inside the
//     pipeline (Figure 6/7);
//   - distributed mode: the switch only samples (the d < H draw) and
//     forwards sampled prefixes to a separate collector over a transport
//     (in-process or UDP), which maintains the HH instances (Figure 8).
//
// It is a simulation substrate, not a switch you should route production
// traffic through; see DESIGN.md §4 for what it preserves of the original
// experiment.
package vswitch

import (
	"fmt"
	"sort"

	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// Action is what the datapath does with a packet.
type Action struct {
	// Drop discards the packet; otherwise it is forwarded to OutPort.
	Drop    bool
	OutPort int
}

// Match is a masked flow pattern, OpenFlow style: IP prefixes plus optional
// exact protocol and destination port matches.
type Match struct {
	SrcPrefix hierarchy.Addr
	SrcBits   int
	DstPrefix hierarchy.Addr
	DstBits   int
	Proto     uint8
	// MatchProto and MatchDstPort enable the respective exact fields.
	MatchProto   bool
	DstPort      uint16
	MatchDstPort bool
}

// Covers reports whether the pattern matches the packet.
func (m Match) Covers(p trace.Packet) bool {
	if m.SrcBits > 0 && p.SrcIP.Mask(m.SrcBits) != m.SrcPrefix.Mask(m.SrcBits) {
		return false
	}
	if m.DstBits > 0 && p.DstIP.Mask(m.DstBits) != m.DstPrefix.Mask(m.DstBits) {
		return false
	}
	if m.MatchProto && p.Proto != m.Proto {
		return false
	}
	if m.MatchDstPort && p.DstPort != m.DstPort {
		return false
	}
	return true
}

// Rule is a prioritized match-action entry.
type Rule struct {
	Priority int
	Match    Match
	Action   Action
}

// FlowTable is the slow-path classifier: a priority-ordered list of masked
// rules (the role OVS's megaflow classifier plays). Lookup is linear in the
// number of rules, which is why the datapath puts the EMC in front of it.
type FlowTable struct {
	rules []Rule
}

// Add inserts a rule, keeping priority order (highest first, stable).
func (t *FlowTable) Add(r Rule) {
	i := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < r.Priority
	})
	t.rules = append(t.rules, Rule{})
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
}

// Len returns the number of installed rules.
func (t *FlowTable) Len() int { return len(t.rules) }

// Lookup returns the highest-priority matching rule's action.
func (t *FlowTable) Lookup(p trace.Packet) (Action, bool) {
	for _, r := range t.rules {
		if r.Match.Covers(p) {
			return r.Action, true
		}
	}
	return Action{}, false
}

// String summarizes the table for diagnostics.
func (t *FlowTable) String() string {
	return fmt.Sprintf("FlowTable(%d rules)", len(t.rules))
}
