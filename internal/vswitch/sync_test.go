package vswitch

import (
	"bytes"
	"slices"
	"testing"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// fakeClock is an injectable clock for the reporter's retransmit timers, so
// the fault-injection tests control time explicitly and stay deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newSyncEngine(dom *hierarchy.Domain[uint64], eps, del float64, v int, seed uint64) *core.Engine[uint64] {
	return core.New(dom, core.Config{Epsilon: eps, Delta: del, V: v, Seed: seed})
}

func snapshotBytes(t *testing.T, es *core.EngineSnapshot[uint64]) []byte {
	t.Helper()
	b, err := es.AppendBinary(nil)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	return b
}

// replicaBytes returns the collector's replica for sender, serialized.
func replicaBytes(t *testing.T, c *Collector, sender uint16) []byte {
	t.Helper()
	c.mu.Lock()
	st := c.senders[sender]
	c.mu.Unlock()
	if st == nil {
		t.Fatalf("collector has no replica for sender %d", sender)
	}
	return snapshotBytes(t, st.snap)
}

// TestDeltaReporterLossFreeMatchesEngine runs the acked report protocol over
// a fault-free link and checks the strongest form of correctness: the
// collector's replica is bit-identical to the reporting engine's own
// snapshot, and the collector answers queries exactly as the co-located
// engine would.
func TestDeltaReporterLossFreeMatchesEngine(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.01, 0.01
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	link := NewCollectorLink(col, FaultConfig{Seed: 1}, FaultConfig{Seed: 2})
	clk := &fakeClock{t: time.Unix(1e9, 0)}
	eng := newSyncEngine(dom, eps, del, v, 42)
	rep := NewDeltaReporter(eng, link, 7, ReporterOptions{
		Every: 5000, Timeout: 50 * time.Millisecond, Seed: 3, Boot: 99, Now: clk.Now,
	})

	victim := hierarchy.AddrFromIPv4(ip4(203, 0, 113, 0))
	gen := trace.NewSynthetic(trace.Config{Seed: 10, Aggregates: []trace.Aggregate{
		{Fraction: 0.4, Dst: victim, DstBits: 24, Spread: 10000},
	}})
	const n = 120000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		rep.OnPacket(p)
		if i%1000 == 999 {
			link.Pump()
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < 100 && !rep.Synced(); i++ {
		link.Pump()
		clk.Advance(10 * time.Millisecond)
		rep.Poll()
	}
	if !rep.Synced() {
		t.Fatalf("reporter never reached sync: stats %+v", rep.Stats())
	}

	want := snapshotBytes(t, eng.Snapshot())
	got := replicaBytes(t, col, 7)
	if !bytes.Equal(want, got) {
		t.Fatalf("collector replica differs from engine snapshot: %d vs %d bytes", len(got), len(want))
	}
	wantOut := eng.Output(0.05)
	gotOut := col.Output(0.05)
	if !slices.Equal(wantOut, gotOut) {
		t.Fatalf("collector output differs from engine output: %d vs %d results", len(gotOut), len(wantOut))
	}
	if col.Packets() != eng.N() {
		t.Fatalf("collector Packets=%d, engine N=%d", col.Packets(), eng.N())
	}
	st := rep.Stats()
	if st.DeltaReports == 0 {
		t.Fatalf("expected delta reports on a loss-free link, stats %+v", st)
	}
	if st.Nacks != 0 || st.Retransmits != 0 {
		t.Fatalf("loss-free link saw recovery traffic: %+v", st)
	}
	cs := col.Stats()
	if cs.DecodeErrors != 0 {
		t.Fatalf("loss-free link produced %d decode errors", cs.DecodeErrors)
	}
}

// TestDeltaReporterDeltaSavings measures the acceptance criterion: in steady
// state on the 2D synthetic trace, delta reports are at least 5x smaller than
// the full state reports they replace. The counterfactual full report is
// encoded at every boundary from the same engine state the delta was built
// from, so the comparison is honest.
func TestDeltaReporterDeltaSavings(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.001, 0.001
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	link := NewCollectorLink(col, FaultConfig{Seed: 5}, FaultConfig{Seed: 6})
	clk := &fakeClock{t: time.Unix(1e9, 0)}
	eng := newSyncEngine(dom, eps, del, v, 17)
	const every = 10000
	rep := NewDeltaReporter(eng, link, 1, ReporterOptions{
		Every: every, Timeout: 50 * time.Millisecond, Seed: 8, Boot: 5, Now: clk.Now,
	})

	victim := hierarchy.AddrFromIPv4(ip4(203, 0, 113, 0))
	gen := trace.NewSynthetic(trace.Config{Seed: 16, Aggregates: []trace.Aggregate{
		{Fraction: 0.4, Dst: victim, DstBits: 24, Spread: 10000},
	}})
	const (
		n      = 500000
		warmup = 100000
	)
	var (
		fullScratch                        core.EngineSnapshot[uint64]
		fullBuf                            []byte
		steadyFullBytes, steadyFullReports uint64
		base                               ReporterStats
	)
	for i := uint64(1); i <= n; i++ {
		p, _ := gen.Next()
		rep.OnPacket(p)
		if i%every == 0 {
			if i > warmup {
				eng.SnapshotInto(&fullScratch)
				h := ReportHeader{Sender: 1, Boot: 5, Seq: uint32(i / every), Full: true}
				var err error
				fullBuf, err = EncodeStateMsg(fullBuf, &h, &fullScratch)
				if err != nil {
					t.Fatalf("EncodeStateMsg: %v", err)
				}
				steadyFullBytes += uint64(len(fullBuf))
				steadyFullReports++
			}
			link.Pump()
			rep.Poll()
			if i == warmup {
				base = rep.Stats()
			}
		}
	}
	st := rep.Stats()
	deltaBytes := st.DeltaBytes - base.DeltaBytes
	deltaReports := st.DeltaReports - base.DeltaReports
	if deltaReports != steadyFullReports {
		t.Fatalf("steady window sent %d delta reports, expected %d (stats %+v)",
			deltaReports, steadyFullReports, st)
	}
	avgFull := float64(steadyFullBytes) / float64(steadyFullReports)
	avgDelta := float64(deltaBytes) / float64(deltaReports)
	ratio := avgFull / avgDelta
	t.Logf("steady state over %d boundaries of %d packets: full %.0f B/report, delta %.0f B/report, ratio %.1fx (delta nodes total %d)",
		steadyFullReports, uint64(every), avgFull, avgDelta, ratio, st.DeltaNodes-base.DeltaNodes)
	if ratio < 5 {
		t.Fatalf("delta reports only %.1fx smaller than full reports, want >= 5x", ratio)
	}
}

// faultScenario is one fault-injection configuration for the property test.
type faultScenario struct {
	name     string
	up, down FaultConfig
}

func faultScenarios() []faultScenario {
	return []faultScenario{
		{"drop20", FaultConfig{Seed: 11, Drop: 0.2}, FaultConfig{Seed: 12, Drop: 0.2}},
		{"dup-reorder", FaultConfig{Seed: 21, Duplicate: 0.2, Reorder: 0.2}, FaultConfig{Seed: 22, Duplicate: 0.2, Reorder: 0.2}},
		{"corrupt20", FaultConfig{Seed: 31, Corrupt: 0.2}, FaultConfig{Seed: 32, Corrupt: 0.2}},
		{"everything", FaultConfig{Seed: 41, Drop: 0.1, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1},
			FaultConfig{Seed: 42, Drop: 0.1, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1}},
	}
}

// runFaultScenario drives three reporting switches through a faulty network
// into one collector, with a mid-stream partition of one sender, a sender
// restart (fresh boot id over the same engine), and a forced primary→standby
// fail-over from a checkpoint. After quiescence it asserts the surviving
// collector's per-sender replicas are bit-identical to the engines' final
// snapshots and its query output matches a loss-free reference collector.
func runFaultScenario(t *testing.T, sc faultScenario, packets int) {
	t.Helper()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.02, 0.02
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	clk := &fakeClock{t: time.Unix(1e9, 0)}

	const nSenders = 3
	type sender struct {
		id   uint16
		eng  *core.Engine[uint64]
		link *CollectorLink
		rep  *DeltaReporter
		gen  interface{ Next() (trace.Packet, bool) }
	}
	senders := make([]*sender, nSenders)
	for i := range senders {
		id := uint16(i + 1)
		eng := newSyncEngine(dom, eps, del, v, uint64(100+i))
		up, down := sc.up, sc.down
		up.Seed += uint64(i) * 101
		down.Seed += uint64(i) * 211
		link := NewCollectorLink(col, up, down)
		rep := NewDeltaReporter(eng, link, id, ReporterOptions{
			Every: 2000, ResyncEvery: 25, Timeout: 40 * time.Millisecond,
			MaxRetries: 4, Seed: uint64(i) + 7, Boot: uint32(1000 + i), Now: clk.Now,
		})
		victim := hierarchy.AddrFromIPv4(ip4(203, 0, byte(100+i), 0))
		gen := trace.NewSynthetic(trace.Config{Seed: uint64(i)*31 + 5, Aggregates: []trace.Aggregate{
			{Fraction: 0.3, Dst: victim, DstBits: 24, Spread: 5000},
		}})
		senders[i] = &sender{id: id, eng: eng, link: link, rep: rep, gen: gen}
	}

	const perRound = 500
	rounds := packets / perRound
	partitionAt, healAt := rounds/3, rounds/3+rounds/8
	failoverAt := rounds / 2
	churnAt := 2 * rounds / 3
	for round := 0; round < rounds; round++ {
		for _, s := range senders {
			for j := 0; j < perRound; j++ {
				p, _ := s.gen.Next()
				s.rep.OnPacket(p)
			}
		}
		clk.Advance(10 * time.Millisecond)
		for _, s := range senders {
			s.link.Pump()
			s.rep.Poll()
		}
		switch round {
		case partitionAt:
			senders[0].link.Up.SetPartitioned(true)
			senders[0].link.Down.SetPartitioned(true)
		case healAt:
			senders[0].link.Up.SetPartitioned(false)
			senders[0].link.Down.SetPartitioned(false)
		case failoverAt:
			// Primary dies; a standby restores the latest checkpoint and the
			// links re-point at it (the switches keep reporting blindly).
			ckpt, err := col.AppendCheckpoint(nil)
			if err != nil {
				t.Fatalf("AppendCheckpoint: %v", err)
			}
			standby := NewCollector(dom, eps, del, v)
			if err := standby.Restore(ckpt); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if standby.Epoch() != col.Epoch()+1 {
				t.Fatalf("standby epoch %d, want %d", standby.Epoch(), col.Epoch()+1)
			}
			col = standby
			for _, s := range senders {
				s.link.SetCollector(col)
			}
		case churnAt:
			// Sender 1's reporting process restarts: same engine state, fresh
			// boot id, sequence numbers from scratch.
			s := senders[1]
			s.rep = NewDeltaReporter(s.eng, s.link, s.id, ReporterOptions{
				Every: 2000, ResyncEvery: 25, Timeout: 40 * time.Millisecond,
				MaxRetries: 4, Seed: 97, Boot: 7777, Now: clk.Now,
			})
		}
	}

	// Quiescence: flush everything and drive clock + pumps until every
	// reporter has its final state acked.
	for _, s := range senders {
		if err := s.rep.Flush(); err != nil {
			t.Fatalf("sender %d Flush: %v", s.id, err)
		}
	}
	synced := false
	for iter := 0; iter < 20000 && !synced; iter++ {
		clk.Advance(30 * time.Millisecond)
		synced = true
		for _, s := range senders {
			s.rep.Poll()
			s.link.Pump()
			if !s.rep.Synced() {
				synced = false
			}
		}
	}
	if !synced {
		for _, s := range senders {
			t.Logf("sender %d: synced=%v stats %+v", s.id, s.rep.Synced(), s.rep.Stats())
		}
		t.Fatalf("quiescence not reached")
	}

	// Property: every replica on the surviving collector is bit-identical to
	// the engine snapshot it mirrors, and the collector as a whole answers
	// exactly like a loss-free reference fed the same final states.
	ref := NewCollector(dom, eps, del, v)
	for _, s := range senders {
		want := snapshotBytes(t, s.eng.Snapshot())
		got := replicaBytes(t, col, s.id)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: sender %d replica differs from engine snapshot (%d vs %d bytes)",
				sc.name, s.id, len(got), len(want))
		}
		if err := ref.ApplySnapshot(s.id, s.eng.Snapshot()); err != nil {
			t.Fatalf("reference ApplySnapshot: %v", err)
		}
	}
	wantOut, wantN := ref.OutputInto(nil, 0.1)
	gotOut, gotN := col.OutputInto(nil, 0.1)
	if wantN != gotN {
		t.Fatalf("%s: collector weight %d, reference %d", sc.name, gotN, wantN)
	}
	if !slices.Equal(wantOut, gotOut) {
		t.Fatalf("%s: collector output differs from loss-free reference (%d vs %d results)",
			sc.name, len(gotOut), len(wantOut))
	}
	if col.Packets() != ref.Packets() {
		t.Fatalf("%s: collector Packets=%d, reference %d", sc.name, col.Packets(), ref.Packets())
	}
	if got := col.Stats().Failovers; got != 1 {
		t.Fatalf("%s: surviving collector records %d failovers, want 1", sc.name, got)
	}

	// The network must actually have misbehaved for the scenario to mean
	// anything.
	var faults uint64
	for _, s := range senders {
		for _, fs := range []FaultStats{s.link.Up.Stats(), s.link.Down.Stats()} {
			faults += fs.Dropped + fs.Duplicated + fs.Reordered + fs.Corrupted + fs.QueueDropped
		}
	}
	if faults == 0 {
		t.Fatalf("%s: fault links injected nothing", sc.name)
	}
	t.Logf("%s: %d injected faults, collector stats %+v", sc.name, faults, col.Stats())
}

// TestFaultInjectionProperty is the tentpole property test: seeded fault
// schedules at rates up to 20 percent, three senders, a mid-stream partition,
// a sender restart and a forced collector fail-over — and the post-quiescence
// collector state is still bit-identical to a loss-free reference.
func TestFaultInjectionProperty(t *testing.T) {
	packets := 60000
	if testing.Short() {
		packets = 24000
	}
	for _, sc := range faultScenarios() {
		t.Run(sc.name, func(t *testing.T) { runFaultScenario(t, sc, packets) })
	}
}

// TestFaultInjectionSoak re-runs the fault property with freshly randomized
// seeds for a few wall-clock seconds — the CI soak step. Failures log the
// seed so a reproduction is one edit away.
func TestFaultInjectionSoak(t *testing.T) {
	budget := 4 * time.Second
	if testing.Short() {
		budget = 1 * time.Second
	}
	deadline := time.Now().Add(budget)
	seed := uint64(time.Now().UnixNano())
	for iter := 0; time.Now().Before(deadline); iter++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		sc := faultScenario{
			name: "soak",
			up:   FaultConfig{Seed: seed, Drop: 0.15, Duplicate: 0.1, Reorder: 0.15, Corrupt: 0.1},
			down: FaultConfig{Seed: seed ^ 0x9e3779b97f4a7c15, Drop: 0.15, Duplicate: 0.1, Reorder: 0.15, Corrupt: 0.1},
		}
		t.Logf("soak iteration %d, seed %#x", iter, seed)
		runFaultScenario(t, sc, 24000)
	}
}

// TestCheckpointRestoreRoundTrip checks the fail-over serialization: sample
// totals, the sample-fed summaries, and per-sender replicas with their
// protocol positions all survive a checkpoint → restore, and the standby
// resumes one epoch later so deltas from the old incarnation are refused.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.02, 0.02
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)

	// Sample-mode state from one sender.
	col.Apply(3, 1000, []Sample{{Node: 0, Key: 0}, {Node: 2, Key: 0x0a000000}})
	// Protocol-mode state from another: a full report through HandleMessage so
	// boot/lastSeq are populated.
	eng := newSyncEngine(dom, eps, del, v, 3)
	gen := trace.NewSynthetic(trace.Config{Seed: 4})
	for i := 0; i < 20000; i++ {
		p, _ := gen.Next()
		eng.Update(p.Key2())
	}
	var scratch core.EngineSnapshot[uint64]
	eng.SnapshotInto(&scratch)
	h := ReportHeader{Sender: 9, Epoch: 1, Boot: 77, Seq: 5, Full: true, Dropped: 2}
	frame, err := EncodeStateMsg(nil, &h, &scratch)
	if err != nil {
		t.Fatalf("EncodeStateMsg: %v", err)
	}
	if ack, err := col.HandleMessage(frame); err != nil || ack == nil {
		t.Fatalf("HandleMessage(full) = ack %v, err %v", ack, err)
	}

	ckpt, err := col.AppendCheckpoint(nil)
	if err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}
	standby := NewCollector(dom, eps, del, v)
	if err := standby.Restore(ckpt); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := standby.Epoch(), col.Epoch()+1; got != want {
		t.Fatalf("standby epoch %d, want %d", got, want)
	}
	if standby.Stats().Failovers != 1 {
		t.Fatalf("standby Failovers = %d, want 1", standby.Stats().Failovers)
	}
	if standby.Packets() != col.Packets() {
		t.Fatalf("standby Packets=%d, primary %d", standby.Packets(), col.Packets())
	}
	infos := standby.Senders()
	if len(infos) != 1 || infos[0].Sender != 9 || infos[0].Boot != 77 || infos[0].LastSeq != 5 || infos[0].Dropped != 2 {
		t.Fatalf("restored sender state %+v", infos)
	}
	wantOut, wantN := col.OutputInto(nil, 0.05)
	gotOut, gotN := standby.OutputInto(nil, 0.05)
	if wantN != gotN || !slices.Equal(wantOut, gotOut) {
		t.Fatalf("standby output differs from primary: %d/%d results, weight %d/%d",
			len(gotOut), len(wantOut), gotN, wantN)
	}

	// A delta targeting the old epoch must be refused with a resync request.
	dh := ReportHeader{Sender: 9, Epoch: 1, Boot: 77, Seq: 6, BaseSeq: 5}
	var codec core.DeltaCodec[uint64]
	var empty core.EngineSnapshot[uint64]
	empty.CopyFrom(&scratch)
	dframe, _, err := EncodeDeltaMsg(nil, &dh, &codec, &scratch, &empty, empty.NodeGens(nil))
	if err != nil {
		t.Fatalf("EncodeDeltaMsg: %v", err)
	}
	ack, err := standby.HandleMessage(dframe)
	if err != nil {
		t.Fatalf("HandleMessage(stale-epoch delta): %v", err)
	}
	a, err := DecodeAckMsg(ack)
	if err != nil {
		t.Fatalf("DecodeAckMsg: %v", err)
	}
	if !a.Resync || a.Epoch != standby.Epoch() {
		t.Fatalf("stale-epoch delta acked %+v, want resync at epoch %d", a, standby.Epoch())
	}
}

// TestRestoreRejectsCorruptCheckpoint flips and truncates checkpoint bytes;
// Restore must reject every mutation and leave the collector untouched.
func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.05, 0.05
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	col.Apply(1, 500, []Sample{{Node: 1, Key: 0x0a000000}})
	ckpt, err := col.AppendCheckpoint(nil)
	if err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}

	pristine := NewCollector(dom, eps, del, v)
	pristineOut, pristineN := pristine.OutputInto(nil, 0.1)
	check := func(b []byte, what string) {
		t.Helper()
		target := NewCollector(dom, eps, del, v)
		if err := target.Restore(b); err == nil {
			t.Fatalf("Restore accepted %s", what)
		}
		if target.Epoch() != 1 || target.Stats().Failovers != 0 {
			t.Fatalf("failed Restore of %s mutated the collector", what)
		}
		out, n := target.OutputInto(nil, 0.1)
		if n != pristineN || !slices.Equal(out, pristineOut) {
			t.Fatalf("failed Restore of %s changed query state", what)
		}
	}
	for _, cut := range []int{0, 1, 5, len(ckpt) / 2, len(ckpt) - 1} {
		check(ckpt[:cut], "a truncation")
	}
	rng := uint64(12345)
	for i := 0; i < 200; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		mut := append([]byte(nil), ckpt...)
		mut[rng%uint64(len(mut))] ^= byte(1 << (rng >> 32 % 8))
		check(mut, "a bit flip")
	}
}

// TestApplySnapshotSupersedePerSender pins the out-of-order rule for
// fire-and-forget snapshot reports: a stale snapshot (fewer absorbed packets
// than the recorded replica) must not regress newer state — on the direct
// ApplySnapshot API and on the legacy 'S' v1 datagram path alike.
func TestApplySnapshotSupersedePerSender(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.02, 0.02
	v := 10 * dom.Size()
	eng := newSyncEngine(dom, eps, del, v, 11)
	gen := trace.NewSynthetic(trace.Config{Seed: 12})
	for i := 0; i < 10000; i++ {
		p, _ := gen.Next()
		eng.Update(p.Key2())
	}
	older := eng.Snapshot()
	for i := 0; i < 10000; i++ {
		p, _ := gen.Next()
		eng.Update(p.Key2())
	}
	newer := eng.Snapshot()

	col := NewCollector(dom, eps, del, v)
	if err := col.ApplySnapshot(4, newer); err != nil {
		t.Fatalf("ApplySnapshot(newer): %v", err)
	}
	if err := col.ApplySnapshot(4, older); err != nil {
		t.Fatalf("ApplySnapshot(older) should drop silently, got %v", err)
	}
	if got := replicaBytes(t, col, 4); !bytes.Equal(got, snapshotBytes(t, newer)) {
		t.Fatalf("stale snapshot regressed the replica")
	}
	if col.Stats().StaleReports != 1 {
		t.Fatalf("StaleReports = %d, want 1", col.Stats().StaleReports)
	}
	if col.Packets() != newer.Packets {
		t.Fatalf("Packets = %d, want %d", col.Packets(), newer.Packets)
	}

	// Same via the wire: legacy v1 snapshot datagrams arriving out of order.
	col2 := NewCollector(dom, eps, del, v)
	newMsg, err := EncodeSnapshotMsg(nil, 4, newer)
	if err != nil {
		t.Fatalf("EncodeSnapshotMsg: %v", err)
	}
	oldMsg, err := EncodeSnapshotMsg(nil, 4, older)
	if err != nil {
		t.Fatalf("EncodeSnapshotMsg: %v", err)
	}
	if _, err := col2.HandleMessage(newMsg); err != nil {
		t.Fatalf("HandleMessage(newer): %v", err)
	}
	if _, err := col2.HandleMessage(oldMsg); err != nil {
		t.Fatalf("HandleMessage(older): %v", err)
	}
	if got := replicaBytes(t, col2, 4); !bytes.Equal(got, snapshotBytes(t, newer)) {
		t.Fatalf("stale v1 snapshot datagram regressed the replica")
	}
	if col2.Stats().StaleReports != 1 {
		t.Fatalf("StaleReports = %d, want 1", col2.Stats().StaleReports)
	}
}
