package vswitch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"

	"rhhh/internal/core"
)

// Collector fail-over: a primary periodically serializes its whole state —
// per-sender replicas with their protocol positions, per-sender sample
// totals, and the sample-fed summaries — and a standby restores from the
// latest checkpoint when the primary dies. The restored collector bumps the
// epoch, so every switch's next delta report is answered with a resync
// request (see applyDeltaLocked) and re-seeds the standby with a full report;
// state the primary absorbed after the checkpoint is re-covered by those
// fulls, because switch reports are cumulative.
//
// Checkpoint format, version 1 (big endian, uvarint where noted):
//
//	byte    magic 'C', byte version
//	u32     epoch
//	uvarint sample-sender count, then count × { u16 sender, uvarint total }
//	        in ascending sender order
//	        local sample-fed state as an engine snapshot
//	uvarint protocol-sender count, then count × { u16 sender, u32 boot,
//	        u32 lastSeq, uvarint dropped, engine snapshot } ascending
//	u32     CRC-32C of everything before it
const (
	checkpointMagic   = 'C'
	checkpointVersion = 1
)

// AppendCheckpoint appends the collector's serialized state to buf. The
// checkpoint is self-validating (versioned, checksummed) and restores with
// Restore on a standby built with the same configuration.
func (c *Collector) AppendCheckpoint(buf []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var nTotal uint64
	for _, t := range c.totals {
		nTotal += t
	}
	c.refreshLocalLocked(nTotal)

	start := len(buf)
	buf = append(buf, checkpointMagic, checkpointVersion)
	buf = binary.BigEndian.AppendUint32(buf, c.epoch)

	ids := make([]uint16, 0, len(c.totals))
	for id := range c.totals {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint16(buf, id)
		buf = binary.AppendUvarint(buf, c.totals[id])
	}
	var err error
	if buf, err = c.local.AppendBinary(buf); err != nil {
		return nil, fmt.Errorf("vswitch: checkpointing local state: %w", err)
	}

	ids = ids[:0]
	for id := range c.senders {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		st := c.senders[id]
		buf = binary.BigEndian.AppendUint16(buf, id)
		buf = binary.BigEndian.AppendUint32(buf, st.boot)
		buf = binary.BigEndian.AppendUint32(buf, st.lastSeq)
		buf = binary.AppendUvarint(buf, st.dropped)
		if buf, err = st.snap.AppendBinary(buf); err != nil {
			return nil, fmt.Errorf("vswitch: checkpointing sender %d: %w", id, err)
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli)), nil
}

// Restore loads a checkpoint produced by AppendCheckpoint into this
// collector (typically a freshly built standby with the primary's
// configuration), replacing any state it held. The collector resumes at the
// checkpoint's epoch plus one, which makes every switch full-resync into it.
// On error the collector is unchanged.
func (c *Collector) Restore(b []byte) error {
	body, err := verifyFrameCRC(b)
	if err != nil {
		return fmt.Errorf("vswitch: checkpoint: %w", err)
	}
	if len(body) < 2 || body[0] != checkpointMagic || body[1] != checkpointVersion {
		return errors.New("vswitch: bad checkpoint magic/version")
	}
	body = body[2:]
	if len(body) < 4 {
		return errors.New("vswitch: truncated checkpoint")
	}
	epoch := binary.BigEndian.Uint32(body)
	body = body[4:]

	count, w := binary.Uvarint(body)
	if w <= 0 {
		return errors.New("vswitch: truncated checkpoint totals")
	}
	body = body[w:]
	totals := make(map[uint16]uint64, count)
	for i := uint64(0); i < count; i++ {
		if len(body) < 2 {
			return errors.New("vswitch: truncated checkpoint totals")
		}
		id := binary.BigEndian.Uint16(body)
		body = body[2:]
		t, w := binary.Uvarint(body)
		if w <= 0 {
			return errors.New("vswitch: truncated checkpoint totals")
		}
		body = body[w:]
		totals[id] = t
	}

	local, body, err := core.DecodeEngineSnapshot[uint64](body)
	if err != nil {
		return fmt.Errorf("vswitch: checkpoint local state: %w", err)
	}
	if err := c.checkSnapshotConfig(local); err != nil {
		return fmt.Errorf("vswitch: checkpoint local state: %w", err)
	}

	count, w = binary.Uvarint(body)
	if w <= 0 {
		return errors.New("vswitch: truncated checkpoint senders")
	}
	body = body[w:]
	senders := make(map[uint16]*senderState, count)
	for i := uint64(0); i < count; i++ {
		if len(body) < 2+4+4 {
			return errors.New("vswitch: truncated checkpoint sender")
		}
		id := binary.BigEndian.Uint16(body)
		boot := binary.BigEndian.Uint32(body[2:])
		lastSeq := binary.BigEndian.Uint32(body[6:])
		body = body[10:]
		dropped, w := binary.Uvarint(body)
		if w <= 0 {
			return errors.New("vswitch: truncated checkpoint sender")
		}
		body = body[w:]
		var es *core.EngineSnapshot[uint64]
		if es, body, err = core.DecodeEngineSnapshot[uint64](body); err != nil {
			return fmt.Errorf("vswitch: checkpoint sender %d: %w", id, err)
		}
		if err := c.checkSnapshotConfig(es); err != nil {
			return fmt.Errorf("vswitch: checkpoint sender %d: %w", id, err)
		}
		if _, dup := senders[id]; dup {
			return fmt.Errorf("vswitch: checkpoint repeats sender %d", id)
		}
		senders[id] = &senderState{snap: es, boot: boot, lastSeq: lastSeq, dropped: dropped}
	}
	if len(body) != 0 {
		return fmt.Errorf("vswitch: %d trailing bytes after checkpoint", len(body))
	}
	for i, sn := range local.Nodes {
		if sn.Len() > c.sums[i].Capacity() {
			return fmt.Errorf("vswitch: checkpoint node %d has %d entries, capacity %d",
				i, sn.Len(), c.sums[i].Capacity())
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.totals = totals
	for i := range c.sums {
		c.sums[i].LoadSnapshot(&local.Nodes[i])
	}
	c.senders = senders
	c.epoch = epoch + 1
	c.localDirty, c.localBuilt = true, false
	c.stats.Failovers++
	return nil
}
