package vswitch

import (
	"testing"
	"testing/quick"
	"time"

	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func pkt(src, dst uint32, sp, dp uint16, proto uint8) trace.Packet {
	return trace.Packet{
		SrcIP: hierarchy.AddrFromIPv4(src), DstIP: hierarchy.AddrFromIPv4(dst),
		SrcPort: sp, DstPort: dp, Proto: proto, Length: 64,
	}
}

func TestMatchCovers(t *testing.T) {
	m := Match{
		SrcPrefix: hierarchy.AddrFromIPv4(ip4(10, 0, 0, 0)), SrcBits: 8,
		Proto: trace.ProtoTCP, MatchProto: true,
		DstPort: 443, MatchDstPort: true,
	}
	if !m.Covers(pkt(ip4(10, 9, 8, 7), ip4(1, 1, 1, 1), 1000, 443, trace.ProtoTCP)) {
		t.Error("should match")
	}
	if m.Covers(pkt(ip4(11, 9, 8, 7), ip4(1, 1, 1, 1), 1000, 443, trace.ProtoTCP)) {
		t.Error("wrong source prefix matched")
	}
	if m.Covers(pkt(ip4(10, 9, 8, 7), ip4(1, 1, 1, 1), 1000, 80, trace.ProtoTCP)) {
		t.Error("wrong port matched")
	}
	if m.Covers(pkt(ip4(10, 9, 8, 7), ip4(1, 1, 1, 1), 1000, 443, trace.ProtoUDP)) {
		t.Error("wrong proto matched")
	}
	if !(Match{}).Covers(pkt(1, 2, 3, 4, trace.ProtoUDP)) {
		t.Error("empty match should cover everything")
	}
}

func TestFlowTablePriority(t *testing.T) {
	var ft FlowTable
	ft.Add(Rule{Priority: 1, Match: Match{}, Action: Action{OutPort: 1}})
	ft.Add(Rule{
		Priority: 10,
		Match:    Match{SrcPrefix: hierarchy.AddrFromIPv4(ip4(10, 0, 0, 0)), SrcBits: 8},
		Action:   Action{Drop: true},
	})
	a, ok := ft.Lookup(pkt(ip4(10, 1, 1, 1), 0, 0, 0, trace.ProtoTCP))
	if !ok || !a.Drop {
		t.Fatal("high-priority drop rule should win")
	}
	a, ok = ft.Lookup(pkt(ip4(20, 1, 1, 1), 0, 0, 0, trace.ProtoTCP))
	if !ok || a.Drop || a.OutPort != 1 {
		t.Fatal("default rule should forward to port 1")
	}
}

// TestFlowTableMatchesBruteForce property-checks that Lookup picks the same
// action as a brute-force highest-priority scan.
func TestFlowTableMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, srcs []uint32) bool {
		var ft FlowTable
		var rules []Rule
		// Build a handful of deterministic rules from the seed.
		for i := 0; i < 8; i++ {
			r := Rule{
				Priority: int(seed>>(i*4)) % 16,
				Match: Match{
					SrcPrefix: hierarchy.AddrFromIPv4(uint32(seed) + uint32(i)<<24),
					SrcBits:   (i * 8) % 33,
				},
				Action: Action{OutPort: i},
			}
			ft.Add(r)
			rules = append(rules, r)
		}
		for _, s := range srcs {
			p := pkt(s, 0, 0, 0, trace.ProtoTCP)
			got, gotOK := ft.Lookup(p)
			var want Action
			wantOK := false
			bestPri := -1 << 30
			for _, r := range rules {
				if r.Match.Covers(p) && r.Priority > bestPri {
					bestPri = r.Priority
					want = r.Action
					wantOK = true
				}
			}
			if gotOK != wantOK {
				return false
			}
			if gotOK && got.OutPort != want.OutPort {
				// Equal-priority overlapping rules are allowed to tie in
				// any stable order; accept if priorities tie.
				samePri := 0
				for _, r := range rules {
					if r.Match.Covers(p) && r.Priority == bestPri {
						samePri++
					}
				}
				if samePri <= 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEMCEvictsAtCapacity(t *testing.T) {
	c := NewEMC(4, 1)
	for i := 0; i < 100; i++ {
		ft := trace.FiveTuple{SrcPort: uint16(i)}
		c.Insert(ft, Action{OutPort: i})
	}
	if c.Len() != 4 {
		t.Fatalf("EMC len %d, want 4", c.Len())
	}
	// Every cached entry must still be retrievable with its action.
	hits := 0
	for i := 0; i < 100; i++ {
		ft := trace.FiveTuple{SrcPort: uint16(i)}
		if a, ok := c.Lookup(ft); ok {
			hits++
			if a.OutPort != i {
				t.Fatalf("stale action for %d: %d", i, a.OutPort)
			}
		}
	}
	if hits != 4 {
		t.Fatalf("%d hits, want 4", hits)
	}
}

func TestDatapathPipeline(t *testing.T) {
	var ft FlowTable
	ft.Add(Rule{Priority: 0, Match: Match{}, Action: Action{OutPort: 2}})
	dp := NewDatapath(&ft, NewEMC(1024, 1), nil)
	p := pkt(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2), 1234, 80, trace.ProtoTCP)
	a := dp.Process(p)
	if a.Drop || a.OutPort != 2 {
		t.Fatalf("action %+v", a)
	}
	// Second packet of the same flow must hit the EMC.
	dp.Process(p)
	st := dp.Stats()
	if st.Received != 2 || st.EMCHits != 1 || st.TableHits != 1 || st.Forwarded != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDatapathDefaultDrop(t *testing.T) {
	var ft FlowTable // empty: no rules
	dp := NewDatapath(&ft, NewEMC(16, 1), nil)
	a := dp.Process(pkt(1, 2, 0, 0, trace.ProtoUDP))
	if !a.Drop {
		t.Fatal("no-match should drop by default")
	}
	if dp.Stats().NoMatch != 1 || dp.Stats().Dropped != 1 {
		t.Fatalf("stats %+v", dp.Stats())
	}
}

func TestDatapathHookSeesEveryPacket(t *testing.T) {
	var ft FlowTable
	ft.Add(Rule{Match: Match{}, Action: Action{OutPort: 1}})
	seen := 0
	dp := NewDatapath(&ft, NewEMC(16, 1), HookFunc(func(trace.Packet) { seen++ }))
	gen := trace.NewSynthetic(trace.Config{Seed: 2})
	const n = 1000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		dp.Process(p)
	}
	if seen != n {
		t.Fatalf("hook saw %d/%d packets", seen, n)
	}
}

func TestSwitchForwardsToSink(t *testing.T) {
	var ft FlowTable
	ft.Add(Rule{Match: Match{}, Action: Action{OutPort: 7}})
	dp := NewDatapath(&ft, NewEMC(1024, 1), nil)
	sw := NewSwitch(dp, 16)
	var got []trace.Packet
	done := make(chan struct{})
	var count int
	sw.SetSink(7, func(b []trace.Packet) {
		got = append(got, b...)
		count += len(b)
		if count >= 96 {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	})
	sw.Start()
	gen := trace.NewSynthetic(trace.Config{Seed: 3})
	for i := 0; i < 3; i++ {
		batch := make([]trace.Packet, 32)
		for j := range batch {
			batch[j], _ = gen.Next()
		}
		if err := sw.Inject(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	sw.Stop()
	if len(got) != 96 {
		t.Fatalf("sink received %d/96 packets", len(got))
	}
	if sw.Stats().Forwarded != 96 {
		t.Fatalf("stats %+v", sw.Stats())
	}
}

func TestInjectBeforeStartErrors(t *testing.T) {
	var ft FlowTable
	sw := NewSwitch(NewDatapath(&ft, NewEMC(4, 1), nil), 4)
	if err := sw.Inject(0, nil); err == nil {
		t.Fatal("expected error before Start")
	}
	sw.Start()
	sw.Stop()
	sw.Stop() // idempotent
}

func TestBatchWireRoundTrip(t *testing.T) {
	f := func(total uint64, nodes []uint8, keys []uint64) bool {
		n := len(nodes)
		if len(keys) < n {
			n = len(keys)
		}
		if n > MaxBatch {
			n = MaxBatch
		}
		batch := make([]Sample, n)
		for i := 0; i < n; i++ {
			batch[i] = Sample{Node: nodes[i], Key: keys[i]}
		}
		enc := EncodeBatch(nil, 7, total, batch)
		gotSender, gotTotal, gotBatch, err := DecodeBatch(enc)
		if err != nil || gotSender != 7 || gotTotal != total || len(gotBatch) != n {
			return false
		}
		for i := range gotBatch {
			if gotBatch[i] != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	if _, _, _, err := DecodeBatch(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, _, err := DecodeBatch([]byte{'X', 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad magic accepted")
	}
	good := EncodeBatch(nil, 0, 5, []Sample{{Node: 1, Key: 2}})
	if _, _, _, err := DecodeBatch(good[:len(good)-2]); err == nil {
		t.Error("truncated batch accepted")
	}
}

func TestDistributedInProcEndToEnd(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, dom.Size())
	tr := NewInProcTransport(col, 64)
	hook := NewSamplerHook(dom, dom.Size(), 9, tr, 0)

	var ft FlowTable
	ft.Add(Rule{Match: Match{}, Action: Action{OutPort: 1}})
	dp := NewDatapath(&ft, NewEMC(8192, 1), hook)

	// 40% of traffic to one victim /24, rest uniform.
	victim := hierarchy.AddrFromIPv4(ip4(203, 0, 113, 0))
	gen := trace.NewSynthetic(trace.Config{
		Seed:       10,
		Aggregates: []trace.Aggregate{{Fraction: 0.4, Dst: victim, DstBits: 24, Spread: 10000}},
	})
	const n = 600000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		dp.Process(p)
	}
	if err := hook.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Packets() != n {
		t.Fatalf("collector saw N=%d, want %d", col.Packets(), n)
	}
	out := col.Output(0.2)
	node, _ := dom.NodeByBits(0, 24)
	want := hierarchy.Pack2D(0, ip4(203, 0, 113, 0))
	found := false
	for _, p := range out {
		if p.Node == node && p.Key == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim /24 missing from distributed output (%d results)", len(out))
	}
}

func TestDistributedUDPEndToEnd(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, dom.Size())
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Skipf("UDP loopback unavailable: %v", err)
	}
	defer srv.Close()
	tr, err := DialUDP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	hook := NewSamplerHook(dom, dom.Size(), 11, tr, 64)
	gen := trace.NewSynthetic(trace.Config{Seed: 12})
	const n = 50000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		hook.OnPacket(p)
	}
	if err := hook.Flush(); err != nil {
		t.Fatal(err)
	}
	// UDP delivery is asynchronous; poll briefly for the count to land.
	deadline := time.Now().Add(2 * time.Second)
	for col.Packets() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if col.Packets() == 0 {
		t.Fatal("collector never received samples over UDP")
	}
}

func TestSamplerSubsampling(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, 10*dom.Size())
	tr := NewInProcTransport(col, 64)
	hook := NewSamplerHook(dom, 10*dom.Size(), 13, tr, 0)
	gen := trace.NewSynthetic(trace.Config{Seed: 14})
	const n = 100000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		hook.OnPacket(p)
	}
	hook.Flush()
	tr.Close()
	if hook.Packets() != n {
		t.Fatalf("sampler packets = %d", hook.Packets())
	}
	// With V = 10H only ~10% of packets produce samples.
	updates := col.Updates()
	if updates < n/20 || updates > n/5 {
		t.Fatalf("collector received %d samples for %d packets under V=10H", updates, n)
	}
}

// TestMultiSwitchAggregation: two switches report to one collector, which
// sums their per-sender packet counts — the paper's "data from multiple
// network devices" deployment.
func TestMultiSwitchAggregation(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, dom.Size())
	tr := NewInProcTransport(col, 64)

	hookA := NewSamplerHook(dom, dom.Size(), 21, tr, 0)
	hookA.SetSender(1)
	hookB := NewSamplerHook(dom, dom.Size(), 22, tr, 0)
	hookB.SetSender(2)

	genA := trace.NewSynthetic(trace.Config{Seed: 31})
	genB := trace.NewSynthetic(trace.Config{Seed: 32})
	const nA, nB = 30000, 50000
	for i := 0; i < nA; i++ {
		p, _ := genA.Next()
		hookA.OnPacket(p)
	}
	for i := 0; i < nB; i++ {
		p, _ := genB.Next()
		hookB.OnPacket(p)
	}
	if err := hookA.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hookB.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := col.Packets(); got != nA+nB {
		t.Fatalf("collector total = %d, want %d", got, nA+nB)
	}
}
