package vswitch

import (
	"sync"
	"testing"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// TestCollectorWatch checks the collector's standing query: an admitted
// event arrives once samples make a prefix heavy, no events arrive while the
// collector is idle, and replaying the delta stream tracks Output exactly.
func TestCollectorWatch(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, dom.Size())

	type ident struct {
		node int
		key  uint64
	}
	var mu sync.Mutex
	replay := map[ident]core.Result[uint64]{}
	var deltas int
	w := col.Watch(0.2, 0, 2*time.Millisecond, func(d CollectorDelta) {
		mu.Lock()
		defer mu.Unlock()
		deltas++
		for _, r := range d.Retired {
			delete(replay, ident{r.Node, r.Key})
		}
		for _, r := range d.Admitted {
			replay[ident{r.Node, r.Key}] = r
		}
		for _, r := range d.Updated {
			replay[ident{r.Node, r.Key}] = r
		}
	})
	defer w.Close()

	// One dominant key sampled across every node.
	key := uint64(ip4(181, 7, 3, 1))<<32 | uint64(ip4(10, 0, 0, 9))
	masks, ok := dom.MaskTable()
	if !ok {
		t.Fatal("2D IPv4 domain should have a mask table")
	}
	var batch []Sample
	for node := 0; node < dom.Size(); node++ {
		for i := 0; i < 40; i++ {
			batch = append(batch, Sample{Node: uint8(node), Key: key & masks[node]})
		}
	}
	col.Apply(3, 1000, batch)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(replay)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no admitted events within the deadline")
		}
		time.Sleep(time.Millisecond)
	}

	// Idle: no more samples → no more deltas (allow in-flight ticks a beat).
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	before := deltas
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	after := deltas
	mu.Unlock()
	if after != before {
		t.Fatalf("idle collector delivered %d extra deltas", after-before)
	}

	// The replayed set must match a full query exactly.
	out, _ := col.OutputInto(nil, 0.2)
	mu.Lock()
	defer mu.Unlock()
	if len(out) != len(replay) {
		t.Fatalf("replayed set has %d results, Output %d", len(replay), len(out))
	}
	for _, r := range out {
		if got, ok := replay[ident{r.Node, r.Key}]; !ok || got != r {
			t.Fatalf("replay mismatch at node %d: %+v vs %+v", r.Node, got, r)
		}
	}
}
