package vswitch

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// TestEngineHookBytesMatchesSequential: the byte-count hook must leave the
// engine bit-identical to feeding UpdateWeighted(key, length) per packet,
// under both the per-packet and the batched datapath delivery.
func TestEngineHookBytesMatchesSequential(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	cfg := core.Config{Epsilon: 0.02, Delta: 0.05, V: 10 * h, Seed: 31}

	r := fastrand.New(32)
	const n = 60_000
	packets := make([]trace.Packet, n)
	for i := range packets {
		packets[i] = pkt(uint32(r.Uint64()), uint32(r.Uint64()), 80, 443, trace.ProtoTCP)
		packets[i].Length = 64 + int(r.Uint64n(1400))
	}

	ref := core.New(dom, cfg)
	for _, p := range packets {
		ref.UpdateWeighted(p.Key2(), uint64(p.Length))
	}

	var refSnap, gotSnap core.EngineSnapshot[uint64]
	ref.SnapshotInto(&refSnap)

	for _, batched := range []bool{false, true} {
		eng := core.New(dom, cfg)
		hook := NewEngineHookBytes(eng)
		if batched {
			for off := 0; off < n; {
				sz := 1 + int(r.Uint64n(500))
				if off+sz > n {
					sz = n - off
				}
				hook.OnBatch(packets[off : off+sz])
				off += sz
			}
		} else {
			for _, p := range packets {
				hook.OnPacket(p)
			}
		}
		if eng.Weight() != ref.Weight() || eng.N() != ref.N() {
			t.Fatalf("batched=%v: N/Weight (%d,%d) vs ref (%d,%d)",
				batched, eng.N(), eng.Weight(), ref.N(), ref.Weight())
		}
		eng.SnapshotInto(&gotSnap)
		if len(gotSnap.Nodes) != len(refSnap.Nodes) {
			t.Fatalf("batched=%v: node counts differ", batched)
		}
		for nd := range refSnap.Nodes {
			a, b := &refSnap.Nodes[nd], &gotSnap.Nodes[nd]
			if a.N != b.N || len(a.Keys) != len(b.Keys) {
				t.Fatalf("batched=%v node %d: (N=%d,len=%d) vs ref (N=%d,len=%d)",
					batched, nd, b.N, len(b.Keys), a.N, len(a.Keys))
			}
			for i := range a.Keys {
				if a.Keys[i] != b.Keys[i] || a.Upper[i] != b.Upper[i] || a.Lower[i] != b.Lower[i] {
					t.Fatalf("batched=%v node %d entry %d differs", batched, nd, i)
				}
			}
		}
	}
}

// TestEngineHookCHKBackend: the datapath hook drives a CHK-backed engine
// identically to sequential weighted updates — the vswitch surface runs on
// the alternative counter backend unchanged.
func TestEngineHookCHKBackend(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	cfg := core.Config{
		Epsilon: 0.02, Delta: 0.05, V: 10 * dom.Size(), Seed: 33,
		Backend: core.CHKBackend,
	}

	r := fastrand.New(34)
	const n = 60_000
	packets := make([]trace.Packet, n)
	for i := range packets {
		packets[i] = pkt(uint32(r.Uint64n(1<<12)), uint32(r.Uint64n(1<<12)), 80, 443, trace.ProtoTCP)
		packets[i].Length = 64 + int(r.Uint64n(1400))
	}

	ref := core.New(dom, cfg)
	for _, p := range packets {
		ref.UpdateWeighted(p.Key2(), uint64(p.Length))
	}
	var refSnap, gotSnap core.EngineSnapshot[uint64]
	ref.SnapshotInto(&refSnap)

	for _, batched := range []bool{false, true} {
		eng := core.New(dom, cfg)
		hook := NewEngineHookBytes(eng)
		if batched {
			for off := 0; off < n; {
				sz := 1 + int(r.Uint64n(500))
				if off+sz > n {
					sz = n - off
				}
				hook.OnBatch(packets[off : off+sz])
				off += sz
			}
		} else {
			for _, p := range packets {
				hook.OnPacket(p)
			}
		}
		if eng.Weight() != ref.Weight() || eng.N() != ref.N() {
			t.Fatalf("chk batched=%v: N/Weight (%d,%d) vs ref (%d,%d)",
				batched, eng.N(), eng.Weight(), ref.N(), ref.Weight())
		}
		eng.SnapshotInto(&gotSnap)
		for nd := range refSnap.Nodes {
			a, b := &refSnap.Nodes[nd], &gotSnap.Nodes[nd]
			if a.N != b.N || len(a.Keys) != len(b.Keys) {
				t.Fatalf("chk batched=%v node %d: (N=%d,len=%d) vs ref (N=%d,len=%d)",
					batched, nd, b.N, len(b.Keys), a.N, len(a.Keys))
			}
			for i := range a.Keys {
				if a.Keys[i] != b.Keys[i] || a.Upper[i] != b.Upper[i] || a.Lower[i] != b.Lower[i] {
					t.Fatalf("chk batched=%v node %d entry %d differs", batched, nd, i)
				}
			}
		}
	}
}
