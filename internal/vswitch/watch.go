package vswitch

import (
	"time"

	"rhhh/internal/core"
)

// CollectorDelta is one standing-query event from Collector.Watch: the
// change in the collector's HHH set between two consecutive ticks. The
// slices are the watch goroutine's reused buffers — valid only during the
// callback; copy them to retain.
type CollectorDelta struct {
	// Seq counts ticks since the watch started; ticks without changes
	// deliver nothing, so subscribers observe gaps.
	Seq uint64
	// N is the stream weight (across every reporting switch) behind the
	// tick's query.
	N uint64
	// Admitted holds prefixes that entered the HHH set; Retired ones that
	// left it, with their last reported estimates; Updated surviving
	// prefixes whose bounds moved at least the configured hysteresis.
	Admitted, Retired, Updated []core.Result[uint64]
}

// CollectorWatch is one standing query on a Collector; Close stops its
// driver goroutine.
type CollectorWatch struct {
	stop chan struct{}
	done chan struct{}
}

// Close stops the watch and waits for its driver goroutine to exit. Call it
// exactly once.
func (w *CollectorWatch) Close() {
	close(w.stop)
	<-w.done
}

// Watch registers a standing HHH query on the collector: every interval a
// driver goroutine evaluates Output(theta) — sample-fed and snapshot-mode
// senders alike — and delivers the delta against the previous tick to fn.
// Updated events are gated by the minDelta count-change hysteresis (stream
// units; membership changes always fire). fn runs on the driver goroutine
// and must not block; an idle interval (no new samples or snapshot reports)
// costs one short-circuited query and delivers nothing. interval defaults to
// 100ms when non-positive.
//
// The distributed deployments get the same event stream as the co-located
// surfaces this way: switches keep streaming samples or snapshots, and the
// measurement VM pushes HHH deltas instead of being polled.
func (c *Collector) Watch(theta, minDelta float64, interval time.Duration, fn func(CollectorDelta)) *CollectorWatch {
	if !(theta > 0 && theta <= 1) {
		panic("vswitch: theta must be in (0, 1]")
	}
	if minDelta < 0 {
		panic("vswitch: minDelta must be non-negative")
	}
	if fn == nil {
		panic("vswitch: Watch needs a callback")
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w := &CollectorWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		differ := core.NewDiffer[uint64]()
		var buf []core.Result[uint64]
		var seq uint64
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			seq++
			var n uint64
			buf, n = c.OutputInto(buf, theta)
			d := differ.Diff(buf, minDelta)
			if d.Empty() {
				continue
			}
			fn(CollectorDelta{
				Seq:      seq,
				N:        n,
				Admitted: d.Admitted,
				Retired:  d.Retired,
				Updated:  d.Updated,
			})
		}
	}()
	return w
}
