package vswitch

import (
	"testing"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// TestSnapshotReporterInProcMatchesEngine: shipping whole-state snapshots
// must reproduce the co-located engine's query exactly — the snapshot is
// the engine's state, and the collector's merge of {empty local state, one
// snapshot} is the identity.
func TestSnapshotReporterInProcMatchesEngine(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	v := 10 * dom.Size()
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, V: v, Seed: 3})
	col := NewCollector(dom, 0.05, 0.05, v)
	tr := NewInProcTransport(col, 64)
	rep := NewSnapshotReporter(eng, tr, 7, 50000)

	victim := hierarchy.AddrFromIPv4(ip4(203, 0, 113, 0))
	gen := trace.NewSynthetic(trace.Config{
		Seed:       10,
		Aggregates: []trace.Aggregate{{Fraction: 0.4, Dst: victim, DstBits: 24, Spread: 10000}},
	})
	const n = 400000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		rep.OnPacket(p)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Packets() != n {
		t.Fatalf("collector saw N=%d, want %d", col.Packets(), n)
	}
	want := eng.Output(0.2)
	got := col.Output(0.2)
	if len(got) != len(want) {
		t.Fatalf("%d results via snapshots, %d locally", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotReporterSupersedes: a later report replaces the earlier one —
// the collector never double counts a snapshot sender.
func TestSnapshotReporterSupersedes(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	col := NewCollector(dom, 0.1, 0.1, dom.Size())
	tr := NewInProcTransport(col, 64)
	rep := NewSnapshotReporter(eng, tr, 1, 1000)

	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	for i := 0; i < 10000; i++ { // 10 reports along the way
		p, _ := gen.Next()
		rep.OnPacket(p)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Packets() != 10000 {
		t.Fatalf("collector N=%d after 11 cumulative reports, want 10000", col.Packets())
	}
}

// TestCollectorMergesSnapshotAndSampleSenders: one switch streams samples,
// another ships snapshots; the union query must see both contributions.
func TestCollectorMergesSnapshotAndSampleSenders(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.02, 0.05, dom.Size())
	tr := NewInProcTransport(col, 64)

	sampler := NewSamplerHook(dom, dom.Size(), 21, tr, 0)
	sampler.SetSender(1)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 22})
	rep := NewSnapshotReporter(eng, tr, 2, 100000)

	// Switch 1 sees the victim-A aggregate, switch 2 the victim-B one.
	genA := trace.NewSynthetic(trace.Config{
		Seed: 31,
		Aggregates: []trace.Aggregate{{
			Fraction: 0.5, Dst: hierarchy.AddrFromIPv4(ip4(203, 0, 113, 0)), DstBits: 24, Spread: 10000,
		}},
	})
	genB := trace.NewSynthetic(trace.Config{
		Seed: 32,
		Aggregates: []trace.Aggregate{{
			Fraction: 0.5, Dst: hierarchy.AddrFromIPv4(ip4(198, 51, 100, 0)), DstBits: 24, Spread: 10000,
		}},
	})
	const n = 300000
	for i := 0; i < n; i++ {
		pa, _ := genA.Next()
		sampler.OnPacket(pa)
		pb, _ := genB.Next()
		rep.OnPacket(pb)
	}
	if err := sampler.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Packets() != 2*n {
		t.Fatalf("collector N=%d, want %d", col.Packets(), 2*n)
	}
	out := col.Output(0.15)
	find := func(dst uint32) bool {
		node, _ := dom.NodeByBits(0, 24)
		want := hierarchy.Pack2D(0, dst)
		for _, p := range out {
			if p.Node == node && p.Key == want {
				return true
			}
		}
		return false
	}
	if !find(ip4(203, 0, 113, 0)) {
		t.Error("sample-mode switch's victim /24 missing from merged output")
	}
	if !find(ip4(198, 51, 100, 0)) {
		t.Error("snapshot-mode switch's victim /24 missing from merged output")
	}
}

// TestSnapshotMsgRejectsCorruptInput: the decode path must reject bad
// magic, truncation and mismatched configuration rather than fold garbage
// into the estimator.
func TestSnapshotMsgRejectsCorruptInput(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	for i := 0; i < 1000; i++ {
		eng.Update(uint64(i))
	}
	msg, err := EncodeSnapshotMsg(nil, 3, eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if sender, es, err := DecodeSnapshotMsg(msg); err != nil || sender != 3 || es.Packets != 1000 {
		t.Fatalf("roundtrip failed: sender=%d err=%v", sender, err)
	}
	for _, cut := range []int{0, 1, 3, len(msg) / 2, len(msg) - 1} {
		if _, _, err := DecodeSnapshotMsg(msg[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte{}, msg...)
	bad[0] = 'X'
	if _, _, err := DecodeSnapshotMsg(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Mismatched V is rejected at apply time.
	col := NewCollector(dom, 0.1, 0.1, 10*dom.Size())
	if err := col.ApplySnapshotMsg(msg); err == nil {
		t.Fatal("snapshot with mismatched V accepted")
	}
}

// TestSnapshotReporterOverUDP: the snapshot datagram path works over a real
// socket, dispatched by magic byte alongside sample batches.
func TestSnapshotReporterOverUDP(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.05, 0.05, dom.Size())
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Skipf("UDP loopback unavailable: %v", err)
	}
	defer srv.Close()
	tr, err := DialUDP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 5})
	rep := NewSnapshotReporter(eng, tr, 9, 100000)
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	const n = 200000
	for i := 0; i < n; i++ {
		p, _ := gen.Next()
		rep.OnPacket(p)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	// UDP delivery is asynchronous; wait for the final cumulative report.
	deadline := time.Now().Add(5 * time.Second)
	for col.Packets() != n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if col.Packets() != n {
		t.Fatalf("collector N=%d, want %d", col.Packets(), n)
	}
	if len(col.Output(0.3)) == 0 {
		t.Fatal("no output from snapshot-fed collector")
	}
}
