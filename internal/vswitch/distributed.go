package vswitch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
	"rhhh/internal/trace"
)

// This file implements the paper's distributed deployment (§5.2, Figure 8):
// "HHH measurement can be performed in a separate virtual machine. OVS
// forwards the relevant traffic to the virtual machine. When RHHH operates
// with V > H, we only forward the sampled packets and thus reduce
// overheads."
//
// The switch side (SamplerHook) performs only the d < V draw and ships
// (node, masked key) samples plus a running packet count; the collector side
// owns the HH instances and answers Output queries. Two transports are
// provided: an in-process channel (default for experiments) and real UDP
// datagrams over the loopback, exercising the same wire format.

// Sample is one sampled prefix update: the lattice node index and the masked
// two-dimensional IPv4 key.
type Sample struct {
	Node uint8
	Key  uint64
}

// Transport ships sample batches from the switch to the collector.
type Transport interface {
	// Send delivers a batch along with the sending switch's id and its
	// cumulative packet count (the collector needs N for thresholds). The
	// slice is only valid during the call.
	Send(sender uint16, totalPackets uint64, batch []Sample) error
	// Close flushes and releases the transport.
	Close() error
}

// Wire format: magic 'R', version 2, uint16 sender id, uint64 total, uint16
// count, then count × (uint8 node, uint64 key), big endian. One batch per
// datagram. The sender id lets one collector aggregate several switches
// (§5.2: "our distributed implementation is capable of analyzing data from
// multiple network devices"): totals are tracked per sender and summed.
const (
	wireMagic   = 'R'
	wireVersion = 2
	wireHeader  = 2 + 2 + 8 + 2
	wireSample  = 1 + 8
	// MaxBatch keeps a batch within a standard-MTU UDP datagram.
	MaxBatch = 128
)

// EncodeBatch serializes a batch into buf (reusing its storage when large
// enough) and returns the encoded bytes.
func EncodeBatch(buf []byte, sender uint16, total uint64, batch []Sample) []byte {
	n := wireHeader + wireSample*len(batch)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = wireMagic
	buf[1] = wireVersion
	binary.BigEndian.PutUint16(buf[2:4], sender)
	binary.BigEndian.PutUint64(buf[4:12], total)
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(batch)))
	off := wireHeader
	for _, s := range batch {
		buf[off] = s.Node
		binary.BigEndian.PutUint64(buf[off+1:off+9], s.Key)
		off += wireSample
	}
	return buf
}

// DecodeBatch parses a datagram produced by EncodeBatch.
func DecodeBatch(b []byte) (sender uint16, total uint64, batch []Sample, err error) {
	if len(b) < wireHeader {
		return 0, 0, nil, errors.New("vswitch: short batch")
	}
	if b[0] != wireMagic || b[1] != wireVersion {
		return 0, 0, nil, errors.New("vswitch: bad batch magic/version")
	}
	sender = binary.BigEndian.Uint16(b[2:4])
	total = binary.BigEndian.Uint64(b[4:12])
	count := int(binary.BigEndian.Uint16(b[12:14]))
	if len(b) < wireHeader+count*wireSample {
		return 0, 0, nil, errors.New("vswitch: truncated batch")
	}
	batch = make([]Sample, count)
	off := wireHeader
	for i := range batch {
		batch[i] = Sample{
			Node: b[off],
			Key:  binary.BigEndian.Uint64(b[off+1 : off+9]),
		}
		off += wireSample
	}
	return sender, total, batch, nil
}

// SamplerHook is the switch-side half of the distributed deployment: per
// packet it performs only the sampling decision; sampled prefixes are
// batched to the transport. With V > H the decision runs on the geometric
// skip sampler (the non-sampled path is one compare), and masking uses the
// domain's precomputed AND table directly.
type SamplerHook struct {
	dom       *hierarchy.Domain[uint64]
	maskTbl   []uint64
	rng       *fastrand.Source
	tr        Transport
	v, h      uint64
	batch     []Sample
	batchSize int
	packets   uint64
	sendErr   error
	sender    uint16

	// Geometric skip sampling (V > H): next sampling watermark on packets.
	useSkip    bool
	nextSample uint64
	geo        *fastrand.GeometricSampler
}

// SetSender tags this hook's batches with a switch id, letting one collector
// aggregate several switches. Defaults to 0.
func (s *SamplerHook) SetSender(id uint16) { s.sender = id }

// NewSamplerHook builds the switch-side sampler. v must be ≥ H; batchSize
// ≤ MaxBatch (0 means MaxBatch).
func NewSamplerHook(dom *hierarchy.Domain[uint64], v int, seed uint64, tr Transport, batchSize int) *SamplerHook {
	h := dom.Size()
	if v == 0 {
		v = h
	}
	if v < h {
		panic("vswitch: V must be at least H")
	}
	if batchSize <= 0 || batchSize > MaxBatch {
		batchSize = MaxBatch
	}
	tbl, ok := dom.MaskTable()
	if !ok {
		panic("vswitch: domain lacks an integer mask table")
	}
	s := &SamplerHook{
		dom:       dom,
		maskTbl:   tbl,
		rng:       fastrand.New(seed),
		tr:        tr,
		v:         uint64(v),
		h:         uint64(h),
		batch:     make([]Sample, 0, batchSize),
		batchSize: batchSize,
	}
	if v > h {
		s.useSkip = true
		s.geo = fastrand.NewGeometricSampler(float64(h) / float64(v))
		s.nextSample = 1 + s.geo.Next(s.rng)
	}
	return s
}

// OnPacket performs the RHHH sampling decision and enqueues a sample when
// it hits.
func (s *SamplerHook) OnPacket(p trace.Packet) {
	s.packets++
	if s.useSkip {
		if s.packets < s.nextSample {
			return
		}
		s.enqueue(p.Key2())
		s.nextSample = s.packets + 1 + s.geo.Next(s.rng)
		return
	}
	if d := s.rng.Uint64n(s.v); d < s.h {
		node := uint8(d)
		s.batch = append(s.batch, Sample{Node: node, Key: p.Key2() & s.maskTbl[node]})
		if len(s.batch) >= s.batchSize {
			s.flush()
		}
	}
}

// OnBatch processes a batch of packets, fast-forwarding over non-sampled
// runs when the skip sampler is active.
func (s *SamplerHook) OnBatch(ps []trace.Packet) {
	if !s.useSkip {
		for _, p := range ps {
			s.OnPacket(p)
		}
		return
	}
	base := s.packets
	s.packets += uint64(len(ps))
	for s.nextSample <= s.packets {
		s.enqueue(ps[s.nextSample-base-1].Key2())
		s.nextSample += 1 + s.geo.Next(s.rng)
	}
}

// enqueue draws the node for a sampled packet key and buffers the masked
// sample, flushing a full batch.
func (s *SamplerHook) enqueue(key uint64) {
	node := uint8(s.rng.Uint64n(s.h))
	s.batch = append(s.batch, Sample{Node: node, Key: key & s.maskTbl[node]})
	if len(s.batch) >= s.batchSize {
		s.flush()
	}
}

func (s *SamplerHook) flush() {
	if err := s.tr.Send(s.sender, s.packets, s.batch); err != nil && s.sendErr == nil {
		s.sendErr = err
	}
	s.batch = s.batch[:0]
}

// Flush sends any buffered samples (and the final packet count) downstream.
// It reports the first transport error encountered, if any.
func (s *SamplerHook) Flush() error {
	s.flush()
	return s.sendErr
}

// Packets returns how many packets the hook has seen.
func (s *SamplerHook) Packets() uint64 { return s.packets }

// Collector is the measurement-VM side: it owns the per-node HH instances
// and reconstructs the RHHH estimator from received samples. Safe for
// concurrent Apply/Output.
type Collector struct {
	mu     sync.Mutex
	dom    *hierarchy.Domain[uint64]
	inst   []core.Instance[uint64]
	v      int
	z      float64
	totals map[uint16]uint64 // per-sender latest packet counts
}

// NewCollector builds a collector matching the sampler's configuration
// (same V; ε and δ as in the RHHH engine).
func NewCollector(dom *hierarchy.Domain[uint64], epsilon, delta float64, v int) *Collector {
	if v == 0 {
		v = dom.Size()
	}
	if v < dom.Size() {
		panic("vswitch: V must be at least H")
	}
	counters := int(math.Ceil((1 + epsilon) / epsilon))
	return &Collector{
		dom:    dom,
		inst:   core.SpaceSavingInstances(dom, counters),
		v:      v,
		z:      stats.Z(delta),
		totals: make(map[uint16]uint64),
	}
}

// Apply folds one batch into the instances. Packet counts are cumulative
// per sender; the collector keeps the latest per sender and sums them.
func (c *Collector) Apply(sender uint16, total uint64, batch []Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if total > c.totals[sender] {
		c.totals[sender] = total
	}
	for _, s := range batch {
		if int(s.Node) < len(c.inst) {
			c.inst[s.Node].Increment(s.Key)
		}
	}
}

// Packets returns the total packet count across all reporting switches.
func (c *Collector) Packets() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, t := range c.totals {
		n += t
	}
	return n
}

// Updates returns the total number of samples folded into the instances.
func (c *Collector) Updates() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, in := range c.inst {
		n += in.Updates()
	}
	return n
}

// Output answers the HHH query exactly as the co-located engine would.
func (c *Collector) Output(theta float64) []core.Result[uint64] {
	if !(theta > 0 && theta <= 1) {
		panic("vswitch: theta must be in (0, 1]")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var nTotal uint64
	for _, t := range c.totals {
		nTotal += t
	}
	n := float64(nTotal)
	if n == 0 {
		return nil
	}
	corr := 2 * c.z * math.Sqrt(n*float64(c.v))
	return core.Extract(c.dom, c.inst, n, float64(c.v), corr, theta)
}

// InProcTransport delivers batches to a Collector over a buffered channel
// drained by a dedicated goroutine — the in-process stand-in for the
// measurement VM.
type InProcTransport struct {
	ch   chan inProcMsg
	done chan struct{}
}

type inProcMsg struct {
	sender uint16
	total  uint64
	batch  []Sample
}

// NewInProcTransport starts the collector goroutine; depth is the channel
// buffer (backpressure beyond it, like a full vhost queue).
func NewInProcTransport(c *Collector, depth int) *InProcTransport {
	if depth <= 0 {
		depth = 256
	}
	t := &InProcTransport{
		ch:   make(chan inProcMsg, depth),
		done: make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		for m := range t.ch {
			c.Apply(m.sender, m.total, m.batch)
		}
	}()
	return t
}

// Send copies the batch and enqueues it.
func (t *InProcTransport) Send(sender uint16, total uint64, batch []Sample) error {
	cp := make([]Sample, len(batch))
	copy(cp, batch)
	t.ch <- inProcMsg{sender: sender, total: total, batch: cp}
	return nil
}

// Close drains outstanding batches and stops the goroutine.
func (t *InProcTransport) Close() error {
	close(t.ch)
	<-t.done
	return nil
}

// UDPCollectorServer receives sample datagrams on a UDP socket and applies
// them to a Collector.
type UDPCollectorServer struct {
	conn *net.UDPConn
	done chan struct{}
}

// ListenUDP starts a collector server on addr (e.g. "127.0.0.1:0").
func ListenUDP(addr string, c *Collector) (*UDPCollectorServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("vswitch: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("vswitch: listening on %q: %w", addr, err)
	}
	s := &UDPCollectorServer{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		buf := make([]byte, 64<<10)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			if sender, total, batch, err := DecodeBatch(buf[:n]); err == nil {
				c.Apply(sender, total, batch)
			}
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *UDPCollectorServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the server.
func (s *UDPCollectorServer) Close() error {
	err := s.conn.Close()
	<-s.done
	return err
}

// UDPTransport sends batches as UDP datagrams.
type UDPTransport struct {
	conn net.Conn
	buf  []byte
}

// DialUDP connects a transport to a collector server address.
func DialUDP(addr string) (*UDPTransport, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("vswitch: dialing %q: %w", addr, err)
	}
	return &UDPTransport{conn: conn}, nil
}

// Send encodes and transmits one batch (batches must respect MaxBatch).
func (t *UDPTransport) Send(sender uint16, total uint64, batch []Sample) error {
	if len(batch) > MaxBatch {
		return fmt.Errorf("vswitch: batch of %d exceeds MaxBatch", len(batch))
	}
	t.buf = EncodeBatch(t.buf, sender, total, batch)
	_, err := t.conn.Write(t.buf)
	return err
}

// Close closes the socket.
func (t *UDPTransport) Close() error { return t.conn.Close() }
