package vswitch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/resilience"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
	"rhhh/internal/trace"
)

// This file implements the paper's distributed deployment (§5.2, Figure 8):
// "HHH measurement can be performed in a separate virtual machine. OVS
// forwards the relevant traffic to the virtual machine. When RHHH operates
// with V > H, we only forward the sampled packets and thus reduce
// overheads."
//
// The switch side (SamplerHook) performs only the d < V draw and ships
// (node, masked key) samples plus a running packet count; the collector side
// owns the HH instances and answers Output queries. Two transports are
// provided: an in-process channel (default for experiments) and real UDP
// datagrams over the loopback, exercising the same wire format.

// Sample is one sampled prefix update: the lattice node index and the masked
// two-dimensional IPv4 key.
type Sample struct {
	Node uint8
	Key  uint64
}

// Transport ships sample batches from the switch to the collector.
type Transport interface {
	// Send delivers a batch along with the sending switch's id and its
	// cumulative packet count (the collector needs N for thresholds). The
	// slice is only valid during the call.
	Send(sender uint16, totalPackets uint64, batch []Sample) error
	// Close flushes and releases the transport.
	Close() error
}

// Wire format: magic 'R', version 2, uint16 sender id, uint64 total, uint16
// count, then count × (uint8 node, uint64 key), big endian. One batch per
// datagram. The sender id lets one collector aggregate several switches
// (§5.2: "our distributed implementation is capable of analyzing data from
// multiple network devices"): totals are tracked per sender and summed.
const (
	wireMagic   = 'R'
	wireVersion = 2
	wireHeader  = 2 + 2 + 8 + 2
	wireSample  = 1 + 8
	// MaxBatch keeps a batch within a standard-MTU UDP datagram.
	MaxBatch = 128
)

// EncodeBatch serializes a batch into buf (reusing its storage when large
// enough) and returns the encoded bytes.
func EncodeBatch(buf []byte, sender uint16, total uint64, batch []Sample) []byte {
	n := wireHeader + wireSample*len(batch)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = wireMagic
	buf[1] = wireVersion
	binary.BigEndian.PutUint16(buf[2:4], sender)
	binary.BigEndian.PutUint64(buf[4:12], total)
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(batch)))
	off := wireHeader
	for _, s := range batch {
		buf[off] = s.Node
		binary.BigEndian.PutUint64(buf[off+1:off+9], s.Key)
		off += wireSample
	}
	return buf
}

// DecodeBatch parses a datagram produced by EncodeBatch.
func DecodeBatch(b []byte) (sender uint16, total uint64, batch []Sample, err error) {
	if len(b) < wireHeader {
		return 0, 0, nil, errors.New("vswitch: short batch")
	}
	if b[0] != wireMagic || b[1] != wireVersion {
		return 0, 0, nil, errors.New("vswitch: bad batch magic/version")
	}
	sender = binary.BigEndian.Uint16(b[2:4])
	total = binary.BigEndian.Uint64(b[4:12])
	count := int(binary.BigEndian.Uint16(b[12:14]))
	if len(b) < wireHeader+count*wireSample {
		return 0, 0, nil, errors.New("vswitch: truncated batch")
	}
	batch = make([]Sample, count)
	off := wireHeader
	for i := range batch {
		batch[i] = Sample{
			Node: b[off],
			Key:  binary.BigEndian.Uint64(b[off+1 : off+9]),
		}
		off += wireSample
	}
	return sender, total, batch, nil
}

// SamplerHook is the switch-side half of the distributed deployment: per
// packet it performs only the sampling decision; sampled prefixes are
// batched to the transport. With V > H the decision runs on the geometric
// skip sampler (the non-sampled path is one compare), and masking uses the
// domain's precomputed AND table directly.
type SamplerHook struct {
	dom       *hierarchy.Domain[uint64]
	maskTbl   []uint64
	rng       *fastrand.Source
	tr        Transport
	v, h      uint64
	batch     []Sample
	batchSize int
	packets   uint64
	sendErr   error
	sender    uint16

	// Geometric skip sampling (V > H): next sampling watermark on packets.
	useSkip    bool
	nextSample uint64
	geo        *fastrand.GeometricSampler
}

// SetSender tags this hook's batches with a switch id, letting one collector
// aggregate several switches. Defaults to 0.
func (s *SamplerHook) SetSender(id uint16) { s.sender = id }

// NewSamplerHook builds the switch-side sampler. v must be ≥ H; batchSize
// ≤ MaxBatch (0 means MaxBatch).
func NewSamplerHook(dom *hierarchy.Domain[uint64], v int, seed uint64, tr Transport, batchSize int) *SamplerHook {
	h := dom.Size()
	if v == 0 {
		v = h
	}
	if v < h {
		panic("vswitch: V must be at least H")
	}
	if batchSize <= 0 || batchSize > MaxBatch {
		batchSize = MaxBatch
	}
	tbl, ok := dom.MaskTable()
	if !ok {
		panic("vswitch: domain lacks an integer mask table")
	}
	s := &SamplerHook{
		dom:       dom,
		maskTbl:   tbl,
		rng:       fastrand.New(seed),
		tr:        tr,
		v:         uint64(v),
		h:         uint64(h),
		batch:     make([]Sample, 0, batchSize),
		batchSize: batchSize,
	}
	if v > h {
		s.useSkip = true
		s.geo = fastrand.NewGeometricSampler(float64(h) / float64(v))
		s.nextSample = 1 + s.geo.Next(s.rng)
	}
	return s
}

// OnPacket performs the RHHH sampling decision and enqueues a sample when
// it hits.
func (s *SamplerHook) OnPacket(p trace.Packet) {
	s.packets++
	if s.useSkip {
		if s.packets < s.nextSample {
			return
		}
		s.enqueue(p.Key2())
		s.nextSample = s.packets + 1 + s.geo.Next(s.rng)
		return
	}
	if d := s.rng.Uint64n(s.v); d < s.h {
		node := uint8(d)
		s.batch = append(s.batch, Sample{Node: node, Key: p.Key2() & s.maskTbl[node]})
		if len(s.batch) >= s.batchSize {
			s.flush()
		}
	}
}

// OnBatch processes a batch of packets, fast-forwarding over non-sampled
// runs when the skip sampler is active.
func (s *SamplerHook) OnBatch(ps []trace.Packet) {
	if !s.useSkip {
		for _, p := range ps {
			s.OnPacket(p)
		}
		return
	}
	base := s.packets
	s.packets += uint64(len(ps))
	for s.nextSample <= s.packets {
		s.enqueue(ps[s.nextSample-base-1].Key2())
		s.nextSample += 1 + s.geo.Next(s.rng)
	}
}

// enqueue draws the node for a sampled packet key and buffers the masked
// sample, flushing a full batch.
func (s *SamplerHook) enqueue(key uint64) {
	node := uint8(s.rng.Uint64n(s.h))
	s.batch = append(s.batch, Sample{Node: node, Key: key & s.maskTbl[node]})
	if len(s.batch) >= s.batchSize {
		s.flush()
	}
}

func (s *SamplerHook) flush() {
	if err := s.tr.Send(s.sender, s.packets, s.batch); err != nil && s.sendErr == nil {
		s.sendErr = err
	}
	s.batch = s.batch[:0]
}

// Flush sends any buffered samples (and the final packet count) downstream.
// It reports the first transport error encountered, if any.
func (s *SamplerHook) Flush() error {
	s.flush()
	return s.sendErr
}

// Packets returns how many packets the hook has seen.
func (s *SamplerHook) Packets() uint64 { return s.packets }

// Collector is the measurement-VM side: it owns the per-node HH instances
// and reconstructs the RHHH estimator from received samples and/or whole
// engine snapshots (see ApplySnapshot). Safe for concurrent Apply/Output.
type Collector struct {
	mu     sync.Mutex
	dom    *hierarchy.Domain[uint64]
	sums   []*spacesaving.Summary[uint64]
	inst   []core.Instance[uint64]
	v      int
	eps    float64
	delta  float64
	totals map[uint16]uint64 // per-sender latest packet counts (sample mode)

	// Snapshot mode: per-sender whole-state replicas (each accepted report
	// supersedes the previous — a lost datagram delays state, it never
	// loses samples), plus the acked-report protocol state that keeps a
	// replica consistent under loss, reorder and sender restarts. Merged
	// with the sample-fed instances at query time; all merge scratch is
	// reused across queries.
	senders  map[uint16]*senderState
	frags    map[uint16]*fragAssembly // lazily built 'F' reassembly buffers
	epoch    uint32                   // collector incarnation; bumped by Restore (fail-over)
	stats    CollectorStats
	dcodec   core.DeltaCodec[uint64]
	order    []uint16 // scratch: sender ids in deterministic merge order
	local    core.EngineSnapshot[uint64]
	merged   core.EngineSnapshot[uint64]
	mergeBuf []*core.EngineSnapshot[uint64]
	sm       core.SnapshotMerger[uint64]

	// Reusable extraction workspace shared by both query modes, plus a
	// dirty flag so the local sample-fed state is only re-captured (and the
	// merge and extraction only re-run) when new samples actually arrived.
	ex         *core.Extractor[uint64]
	localDirty bool
	localBuilt bool

	// Scrape scratch for the per-sender telemetry collectors (telemetry.go):
	// the sorted id slice and the cached rendered label sets.
	tmOrder  []uint16
	tmLabels map[uint16]string
}

// NewCollector builds a collector matching the sampler's configuration
// (same V; ε and δ as in the RHHH engine).
func NewCollector(dom *hierarchy.Domain[uint64], epsilon, delta float64, v int) *Collector {
	if v == 0 {
		v = dom.Size()
	}
	if v < dom.Size() {
		panic("vswitch: V must be at least H")
	}
	counters := int(math.Ceil((1 + epsilon) / epsilon))
	sums := make([]*spacesaving.Summary[uint64], dom.Size())
	for i := range sums {
		sums[i] = spacesaving.New[uint64](counters)
	}
	return &Collector{
		dom:     dom,
		sums:    sums,
		inst:    core.WrapSummaries(sums),
		v:       v,
		eps:     epsilon,
		delta:   delta,
		totals:  make(map[uint16]uint64),
		senders: make(map[uint16]*senderState),
		epoch:   1,
		ex:      core.NewExtractor[uint64](dom),
	}
}

// Apply folds one batch into the instances. Packet counts are cumulative
// per sender; the collector keeps the latest per sender and sums them.
func (c *Collector) Apply(sender uint16, total uint64, batch []Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.applySamplesLocked(sender, total, batch)
}

func (c *Collector) applySamplesLocked(sender uint16, total uint64, batch []Sample) {
	if total > c.totals[sender] {
		c.totals[sender] = total
	}
	for _, s := range batch {
		if int(s.Node) < len(c.inst) {
			c.inst[s.Node].Increment(s.Key)
		}
	}
	c.localDirty = true
}

// Packets returns the total packet count across all reporting switches,
// sample-mode and snapshot-mode alike.
func (c *Collector) Packets() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, t := range c.totals {
		n += t
	}
	for _, st := range c.senders {
		n += st.snap.Packets
	}
	return n
}

// Updates returns the total number of samples folded into the instances.
func (c *Collector) Updates() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, in := range c.inst {
		n += in.Updates()
	}
	return n
}

// Output answers the HHH query exactly as the co-located engine would.
// Snapshot-mode senders are merged with the sample-fed state at query time.
//
// The returned slice is the collector's reusable query workspace: treat it
// as read-only, valid until the next Output call — copy it to retain or
// reorder results. Warm queries allocate nothing, and a query with no new
// samples or snapshot reports since the previous one short-circuits to the
// retained result.
func (c *Collector) Output(theta float64) []core.Result[uint64] {
	if !(theta > 0 && theta <= 1) {
		panic("vswitch: theta must be in (0, 1]")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, _ := c.outputLocked(theta)
	return out
}

// OutputInto appends the HHH set for θ (and returns the stream weight behind
// it) to dst under the collector's lock — the form concurrent consumers use,
// since Output's returned slice is the collector's shared workspace and a
// later query from another goroutine would rewrite it.
func (c *Collector) OutputInto(dst []core.Result[uint64], theta float64) ([]core.Result[uint64], uint64) {
	if !(theta > 0 && theta <= 1) {
		panic("vswitch: theta must be in (0, 1]")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, n := c.outputLocked(theta)
	return append(dst[:0], out...), n
}

// refreshLocalLocked re-captures the sample-fed local state into c.local when
// samples arrived since the last capture; c.mu must be held.
func (c *Collector) refreshLocalLocked(nTotal uint64) {
	if !c.localDirty && c.localBuilt {
		return
	}
	if len(c.local.Nodes) != len(c.sums) {
		c.local.Nodes = make([]spacesaving.Snapshot[uint64], len(c.sums))
	}
	for i, s := range c.sums {
		// The collector's summaries only ever absorb increments, so a
		// node whose N matches the previous capture is unchanged — keep
		// its copy and generation, and the merge re-merges only the
		// nodes this batch of samples touched.
		if c.localBuilt && c.local.Nodes[i].N == s.N() && c.local.Nodes[i].Gen() != 0 {
			continue
		}
		s.SnapshotInto(&c.local.Nodes[i])
	}
	c.local.Packets, c.local.Weight = nTotal, nTotal
	c.local.V, c.local.R = c.v, 1
	c.local.Epsilon, c.local.Delta = c.eps, c.delta
	c.local.Invalidate()
	c.localDirty, c.localBuilt = false, true
}

// outputLocked is the query body; c.mu must be held.
func (c *Collector) outputLocked(theta float64) ([]core.Result[uint64], uint64) {
	var nTotal uint64
	for _, t := range c.totals {
		nTotal += t
	}
	if len(c.senders) == 0 {
		n := float64(nTotal)
		if n == 0 {
			return nil, 0
		}
		corr := core.SamplingCorrection(n, c.v, 1, c.delta)
		return c.ex.Extract(c.inst, n, float64(c.v), corr, theta), nTotal
	}
	// Fold the sample-fed state and every sender's latest snapshot into one
	// merged snapshot (deterministically: local state first, then senders in
	// ascending id order), then run the standard snapshot query. The local
	// capture is refreshed only when samples arrived since the last query;
	// the merge and extraction recognize unchanged inputs on their own.
	c.refreshLocalLocked(nTotal)
	c.order = c.order[:0]
	for id := range c.senders {
		c.order = append(c.order, id)
	}
	slices.Sort(c.order)
	c.mergeBuf = append(c.mergeBuf[:0], &c.local)
	for _, id := range c.order {
		c.mergeBuf = append(c.mergeBuf, c.senders[id].snap)
	}
	merged := c.sm.Merge(&c.merged, c.mergeBuf...)
	if merged.Weight == 0 {
		return nil, 0
	}
	return c.ex.ExtractSnapshot(merged, theta), merged.Weight
}

// checkSnapshotConfig validates that a reported snapshot matches the
// collector's configuration.
func (c *Collector) checkSnapshotConfig(es *core.EngineSnapshot[uint64]) error {
	if len(es.Nodes) != c.dom.Size() {
		return fmt.Errorf("vswitch: snapshot has %d nodes, lattice has %d", len(es.Nodes), c.dom.Size())
	}
	if es.V != c.v {
		return fmt.Errorf("vswitch: snapshot V=%d, collector V=%d", es.V, c.v)
	}
	if es.R != 1 {
		return fmt.Errorf("vswitch: snapshot R=%d unsupported by the collector", es.R)
	}
	if es.Epsilon != c.eps || es.Delta != c.delta {
		return fmt.Errorf("vswitch: snapshot ε=%g δ=%g, collector ε=%g δ=%g",
			es.Epsilon, es.Delta, c.eps, c.delta)
	}
	return nil
}

// ApplySnapshot records sender's whole-state snapshot, superseding any
// previous one from the same sender (snapshots are cumulative). A stale
// snapshot — one carrying fewer absorbed packets than the sender's recorded
// state, as happens when datagrams arrive out of order — is dropped rather
// than allowed to regress newer state. The snapshot must match the
// collector's configuration. A sender should use either the sample stream or
// snapshot reports, not both — mixing would double count its traffic.
func (c *Collector) ApplySnapshot(sender uint16, es *core.EngineSnapshot[uint64]) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applySnapshotLocked(sender, es)
}

func (c *Collector) applySnapshotLocked(sender uint16, es *core.EngineSnapshot[uint64]) error {
	if err := c.checkSnapshotConfig(es); err != nil {
		return err
	}
	st := c.senders[sender]
	if st == nil {
		st = &senderState{}
		c.senders[sender] = st
	} else if st.snap.Packets > es.Packets {
		st.stale++
		c.stats.StaleReports++
		return nil
	}
	st.snap = es
	st.fulls++
	st.lastMsg = c.stats.Messages
	return nil
}

// ApplySnapshotMsg decodes one snapshot datagram and applies it.
func (c *Collector) ApplySnapshotMsg(b []byte) error {
	sender, es, err := DecodeSnapshotMsg(b)
	if err != nil {
		return err
	}
	return c.ApplySnapshot(sender, es)
}

// InProcTransport delivers batches to a Collector over a buffered channel
// drained by a dedicated goroutine — the in-process stand-in for the
// measurement VM.
type InProcTransport struct {
	ch       chan inProcMsg
	done     chan struct{}
	applyErr error // first snapshot-apply failure; reported by Close
}

type inProcMsg struct {
	sender uint16
	total  uint64
	batch  []Sample
	snap   []byte // encoded snapshot datagram; nil for sample batches
}

// NewInProcTransport starts the collector goroutine; depth is the channel
// buffer (backpressure beyond it, like a full vhost queue).
func NewInProcTransport(c *Collector, depth int) *InProcTransport {
	if depth <= 0 {
		depth = 256
	}
	t := &InProcTransport{
		ch:   make(chan inProcMsg, depth),
		done: make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		for m := range t.ch {
			if m.snap != nil {
				if err := c.ApplySnapshotMsg(m.snap); err != nil && t.applyErr == nil {
					t.applyErr = err
				}
				continue
			}
			c.Apply(m.sender, m.total, m.batch)
		}
	}()
	return t
}

// Send copies the batch and enqueues it.
func (t *InProcTransport) Send(sender uint16, total uint64, batch []Sample) error {
	cp := make([]Sample, len(batch))
	copy(cp, batch)
	t.ch <- inProcMsg{sender: sender, total: total, batch: cp}
	return nil
}

// SendSnapshot checks the datagram header, then copies and enqueues it in
// order with any outstanding sample batches. Payload decoding happens once,
// on the collector goroutine; apply-time failures (a malformed payload or a
// configuration mismatch with the collector) are reported by Close.
func (t *InProcTransport) SendSnapshot(msg []byte) error {
	if len(msg) < snapMsgHeader {
		return errors.New("vswitch: short snapshot message")
	}
	if msg[0] != snapMsgMagic || msg[1] != snapMsgVersion {
		return errors.New("vswitch: bad snapshot magic/version")
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	t.ch <- inProcMsg{snap: cp}
	return nil
}

// Close drains outstanding batches and stops the goroutine. It reports the
// first snapshot-apply failure encountered, if any.
func (t *InProcTransport) Close() error {
	close(t.ch)
	<-t.done
	return t.applyErr
}

// UDPCollectorServer receives datagrams — sample batches, snapshot reports,
// and the acked delta/full report protocol — on a UDP socket, applies them to
// a Collector, and sends protocol acks back to the reporting switch's source
// address.
type UDPCollectorServer struct {
	conn       *net.UDPConn
	done       <-chan struct{}
	readErrors atomic.Uint64
	// closeTimeout bounds how long Close waits for the read loop (and the
	// in-flight handler it may be running) to join.
	closeTimeout time.Duration
}

// ListenUDP starts a collector server on addr (e.g. "127.0.0.1:0"). The read
// loop survives transient socket errors (counted in ReadErrors) and malformed
// datagrams (counted in the collector's DecodeErrors); it exits only when the
// socket is closed.
func ListenUDP(addr string, c *Collector) (*UDPCollectorServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("vswitch: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("vswitch: listening on %q: %w", addr, err)
	}
	// Best effort (the kernel clamps to rmem_max): a fragmented full resync
	// arrives as a burst of maximum-size datagrams, and the default socket
	// buffer holds only ~3 of them.
	_ = conn.SetReadBuffer(4 << 20)
	s := &UDPCollectorServer{conn: conn, closeTimeout: 5 * time.Second}
	// The read loop runs supervised: a panic in message handling is
	// captured and the loop restarted on the same socket (the sender's
	// retransmit covers the lost datagram). The supervisor's done channel
	// is the join handle Close waits on — it closes only when the loop,
	// including any in-flight handler call, has returned for good.
	s.done = resilience.Default.Go("vswitch/udp-collector", nil, func() {
		buf := make([]byte, 64<<10)
		for {
			n, raddr, err := conn.ReadFromUDP(buf)
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				s.readErrors.Add(1)
				continue
			}
			ack, _ := c.HandleMessage(buf[:n])
			if ack != nil && raddr != nil {
				// Ack loss is the protocol's problem (the sender
				// retransmits), so a failed write is not fatal here.
				_, _ = conn.WriteToUDP(ack, raddr)
			}
		}
	})
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *UDPCollectorServer) Addr() string { return s.conn.LocalAddr().String() }

// ReadErrors returns how many transient socket read errors the server has
// survived.
func (s *UDPCollectorServer) ReadErrors() uint64 { return s.readErrors.Load() }

// SetCloseTimeout bounds how long Close waits for in-flight handling to
// join (default 5s). Call before Close.
func (s *UDPCollectorServer) SetCloseTimeout(d time.Duration) { s.closeTimeout = d }

// Close stops the server and joins the read goroutine — including any
// in-flight HandleMessage call — so the caller may tear down the collector
// the instant Close returns. The wait is bounded by the close timeout; a
// handler stuck past it is reported instead of hanging shutdown forever.
func (s *UDPCollectorServer) Close() error {
	err := s.conn.Close()
	t := time.NewTimer(s.closeTimeout)
	defer t.Stop()
	select {
	case <-s.done:
	case <-t.C:
		return fmt.Errorf("vswitch: collector read loop did not exit within %v", s.closeTimeout)
	}
	return err
}

// UDPTransport sends batches as UDP datagrams.
type UDPTransport struct {
	conn net.Conn
	buf  []byte
}

// DialUDP connects a transport to a collector server address.
func DialUDP(addr string) (*UDPTransport, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("vswitch: dialing %q: %w", addr, err)
	}
	return &UDPTransport{conn: conn}, nil
}

// Send encodes and transmits one batch (batches must respect MaxBatch).
func (t *UDPTransport) Send(sender uint16, total uint64, batch []Sample) error {
	if len(batch) > MaxBatch {
		return fmt.Errorf("vswitch: batch of %d exceeds MaxBatch", len(batch))
	}
	t.buf = EncodeBatch(t.buf, sender, total, batch)
	_, err := t.conn.Write(t.buf)
	return err
}

// maxUDPPayload is the largest UDP payload: 65535 minus the 8-byte UDP and
// 20-byte IP headers.
const maxUDPPayload = 65535 - 8 - 20

// SendSnapshot transmits one encoded snapshot datagram. Snapshots must fit
// a UDP datagram (~64 KiB): use a coarser ε or the sample stream otherwise.
func (t *UDPTransport) SendSnapshot(msg []byte) error {
	if len(msg) > maxUDPPayload {
		return fmt.Errorf("vswitch: snapshot of %d bytes exceeds the UDP datagram limit", len(msg))
	}
	_, err := t.conn.Write(msg)
	return err
}

// Close closes the socket.
func (t *UDPTransport) Close() error { return t.conn.Close() }

// Snapshot datagram format: magic 'S', version 1, uint16 sender id (big
// endian), then the engine snapshot in its own versioned encoding. A
// snapshot report carries the switch's whole cumulative state, so it is the
// transport mode for lossy or high-latency links: each report supersedes
// the previous one and a lost datagram only delays state, unlike the sample
// stream where a lost batch is lost measurement.
const (
	snapMsgMagic   = 'S'
	snapMsgVersion = 1
	snapMsgHeader  = 2 + 2
)

// SnapshotTransport is an optional Transport extension for shipping whole
// encoded snapshot datagrams (see EncodeSnapshotMsg). Both built-in
// transports implement it.
type SnapshotTransport interface {
	SendSnapshot(msg []byte) error
}

// EncodeSnapshotMsg serializes a snapshot datagram into buf (reusing its
// storage when large enough) and returns the encoded bytes.
func EncodeSnapshotMsg(buf []byte, sender uint16, es *core.EngineSnapshot[uint64]) ([]byte, error) {
	buf = buf[:0]
	buf = append(buf, snapMsgMagic, snapMsgVersion)
	buf = binary.BigEndian.AppendUint16(buf, sender)
	return es.AppendBinary(buf)
}

// DecodeSnapshotMsg parses a datagram produced by EncodeSnapshotMsg,
// validating the snapshot's structural invariants.
func DecodeSnapshotMsg(b []byte) (sender uint16, es *core.EngineSnapshot[uint64], err error) {
	if len(b) < snapMsgHeader {
		return 0, nil, errors.New("vswitch: short snapshot message")
	}
	if b[0] != snapMsgMagic || b[1] != snapMsgVersion {
		return 0, nil, errors.New("vswitch: bad snapshot magic/version")
	}
	sender = binary.BigEndian.Uint16(b[2:4])
	es, rest, err := core.DecodeEngineSnapshot[uint64](b[snapMsgHeader:])
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("vswitch: %d trailing bytes after snapshot", len(rest))
	}
	return sender, es, nil
}

// SnapshotReporter is the switch-side half of the snapshot transport mode:
// it runs a full local RHHH engine (like EngineHook) and periodically ships
// the engine's whole state downstream instead of streaming per-sample
// batches — the alternative §5.2 integration for links where datagram loss
// or latency makes the sample stream unreliable.
type SnapshotReporter struct {
	*EngineHook
	eng     *core.Engine[uint64]
	tr      SnapshotTransport
	sender  uint16
	every   uint64 // packets between reports
	next    uint64
	buf     []byte
	scratch core.EngineSnapshot[uint64]
	sendErr error
}

// NewSnapshotReporter wraps an engine in a datapath hook that reports the
// engine's snapshot to tr every `every` packets (and on Flush). every must
// be positive.
func NewSnapshotReporter(eng *core.Engine[uint64], tr SnapshotTransport, sender uint16, every uint64) *SnapshotReporter {
	if every == 0 {
		panic("vswitch: snapshot report interval must be positive")
	}
	return &SnapshotReporter{
		EngineHook: NewEngineHook(eng),
		eng:        eng,
		tr:         tr,
		sender:     sender,
		every:      every,
		next:       every,
	}
}

// OnPacket feeds the engine and reports when the interval elapses.
func (r *SnapshotReporter) OnPacket(p trace.Packet) {
	r.EngineHook.OnPacket(p)
	if r.eng.N() >= r.next {
		r.report()
	}
}

// OnBatch feeds the engine's batched update path and reports when the
// interval elapses (at batch granularity).
func (r *SnapshotReporter) OnBatch(ps []trace.Packet) {
	r.EngineHook.OnBatch(ps)
	if r.eng.N() >= r.next {
		r.report()
	}
}

func (r *SnapshotReporter) report() {
	r.eng.SnapshotInto(&r.scratch)
	msg, err := EncodeSnapshotMsg(r.buf, r.sender, &r.scratch)
	if err != nil {
		if r.sendErr == nil {
			r.sendErr = err
		}
		return
	}
	r.buf = msg
	if err := r.tr.SendSnapshot(msg); err != nil && r.sendErr == nil {
		r.sendErr = err
	}
	for r.next <= r.eng.N() {
		r.next += r.every
	}
}

// Flush ships a final snapshot and reports the first transport error
// encountered, if any.
func (r *SnapshotReporter) Flush() error {
	r.report()
	return r.sendErr
}
