package vswitch

import "testing"

// FuzzDecodeBatch throws arbitrary datagrams at the collector's wire
// decoder: it must never panic and must reject anything EncodeBatch did not
// produce or that was truncated mid-sample.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil, 3, 12345, []Sample{{Node: 4, Key: 0xdeadbeef}}))
	f.Add([]byte{})
	f.Add([]byte{'R', 2, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		sender, total, batch, err := DecodeBatch(b)
		if err != nil {
			return
		}
		// A successful decode must round-trip byte-identically through the
		// encoder (the format has no redundancy to lose).
		enc := EncodeBatch(nil, sender, total, batch)
		if len(enc) > len(b) {
			t.Fatalf("decoded batch re-encodes longer than input: %d > %d", len(enc), len(b))
		}
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("byte %d differs after round trip", i)
			}
		}
	})
}
