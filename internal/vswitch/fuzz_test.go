package vswitch

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// FuzzDecodeBatch throws arbitrary datagrams at the collector's wire
// decoder: it must never panic and must reject anything EncodeBatch did not
// produce or that was truncated mid-sample.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil, 3, 12345, []Sample{{Node: 4, Key: 0xdeadbeef}}))
	f.Add([]byte{})
	f.Add([]byte{'R', 2, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		sender, total, batch, err := DecodeBatch(b)
		if err != nil {
			return
		}
		// A successful decode must round-trip byte-identically through the
		// encoder (the format has no redundancy to lose).
		enc := EncodeBatch(nil, sender, total, batch)
		if len(enc) > len(b) {
			t.Fatalf("decoded batch re-encodes longer than input: %d > %d", len(enc), len(b))
		}
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("byte %d differs after round trip", i)
			}
		}
	})
}

// fuzzFrames builds one valid frame of every protocol kind, for corpus seeds.
func fuzzFrames() (full, delta, ack []byte) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.3, Delta: 0.3, V: dom.Size(), Seed: 9})
	for i := uint64(0); i < 500; i++ {
		eng.Update(i<<32 | i*2654435761)
	}
	var scratch core.EngineSnapshot[uint64]
	eng.SnapshotInto(&scratch)
	h := ReportHeader{Sender: 3, Epoch: 1, Boot: 42, Seq: 7, Full: true}
	full, err := EncodeStateMsg(nil, &h, &scratch)
	if err != nil {
		panic(err)
	}
	var base core.EngineSnapshot[uint64]
	base.CopyFrom(&scratch)
	for i := uint64(0); i < 100; i++ {
		eng.Update(i << 16)
	}
	eng.SnapshotInto(&scratch)
	dh := ReportHeader{Sender: 3, Epoch: 1, Boot: 42, Seq: 8, BaseSeq: 7}
	var codec core.DeltaCodec[uint64]
	delta, _, err = EncodeDeltaMsg(nil, &dh, &codec, &scratch, &base, base.NodeGens(nil))
	if err != nil {
		panic(err)
	}
	ack = EncodeAckMsg(nil, Ack{Sender: 3, Epoch: 1, Seq: 8, Resync: true})
	return full, delta, ack
}

// FuzzDecodeReportMsg throws arbitrary bytes at the 'D'/'S' v2 frame parser:
// it must never panic, and anything it accepts must carry a valid CRC (so a
// truncated frame can never decode).
func FuzzDecodeReportMsg(f *testing.F) {
	full, delta, ack := fuzzFrames()
	f.Add(full)
	f.Add(delta)
	f.Add(ack)
	f.Add(full[:len(full)-5])
	f.Add(delta[:reportHeaderLen])
	f.Add(delta[:len(delta)/2])
	f.Add([]byte{})
	f.Add([]byte{'D', 1, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := DecodeReportMsg(b)
		if err != nil {
			return
		}
		if len(payload) > len(b) {
			t.Fatalf("payload longer than frame")
		}
		if h.Full {
			// The payload is a self-contained snapshot encoding; decoding it
			// may fail but must not panic.
			_, _, _ = core.DecodeEngineSnapshot[uint64](payload)
		}
	})
}

// FuzzDecodeAckMsg checks the ack parser never panics and is canonical: any
// accepted frame re-encodes to exactly the input bytes.
func FuzzDecodeAckMsg(f *testing.F) {
	_, _, ack := fuzzFrames()
	f.Add(ack)
	f.Add(ack[:len(ack)-1])
	f.Add(ack[:2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeAckMsg(b)
		if err != nil {
			return
		}
		enc := EncodeAckMsg(nil, a)
		if string(enc) != string(b) {
			t.Fatalf("accepted ack is not canonical: % x vs % x", enc, b)
		}
	})
}

// FuzzCollectorHandleMessage drives the full collector dispatch with
// arbitrary datagrams: never panic, and every rejected datagram is counted
// in DecodeErrors.
func FuzzCollectorHandleMessage(f *testing.F) {
	full, delta, ack := fuzzFrames()
	f.Add(full)
	f.Add(delta)
	f.Add(ack)
	f.Add(full[:len(full)-3])
	f.Add(delta[:len(delta)-3])
	f.Add(EncodeBatch(nil, 1, 99, []Sample{{Node: 2, Key: 7}}))
	f.Add([]byte{})
	f.Add([]byte{'S', 1})
	f.Add([]byte{'S', 2})
	frags, err := appendFragments(nil, full, 128)
	if err != nil {
		f.Fatalf("appendFragments: %v", err)
	}
	f.Add(frags[0])
	f.Add(frags[len(frags)-1])
	f.Add(frags[0][:len(frags[0])-3])
	f.Add([]byte{'F', 1, 0, 0})

	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	f.Fuzz(func(t *testing.T, b []byte) {
		col := NewCollector(dom, 0.3, 0.3, dom.Size())
		before := col.DecodeErrors()
		_, err := col.HandleMessage(b)
		if err != nil && col.DecodeErrors() == before {
			t.Fatalf("HandleMessage error %v not counted in DecodeErrors", err)
		}
	})
}
