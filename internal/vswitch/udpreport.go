package vswitch

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rhhh/internal/resilience"
)

// UDPReportTransport carries the acked report protocol over UDP: reports go
// to the collector server's address, acks come back on the same socket and
// are buffered in a bounded drop-oldest inbox by a background reader
// goroutine (a blocking read on the reporter's thread would stall the
// datapath). Reports larger than one datagram are fragmented into 'F'
// frames the collector reassembles. Redial repoints the transport at a
// standby collector; a send failure also triggers an automatic reconnect to
// the current address.
type UDPReportTransport struct {
	// mu guards the connection lifecycle (conn, addr, reader handoff,
	// closed). The reader goroutine never takes it — it only touches the
	// inbox under inMu — so Close and Redial can wait for the reader to exit
	// while holding mu without deadlocking against an in-flight ack.
	mu       sync.Mutex
	addr     string
	conn     *net.UDPConn
	readDone <-chan struct{}
	closed   bool

	inMu     sync.Mutex
	inbox    [][]byte
	maxInbox int
	dropped  uint64

	frags [][]byte // scratch for fragmenting oversized reports
}

// DialUDPReport connects a report transport to a collector server address.
func DialUDPReport(addr string) (*UDPReportTransport, error) {
	t := &UDPReportTransport{maxInbox: 16}
	if err := t.redialLocked(addr); err != nil {
		return nil, err
	}
	return t, nil
}

// redialLocked (re)connects to addr and restarts the ack reader; callers
// hold t.mu or have exclusive access.
func (t *UDPReportTransport) redialLocked(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("vswitch: resolving %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return fmt.Errorf("vswitch: dialing %q: %w", addr, err)
	}
	_ = conn.SetWriteBuffer(4 << 20) // best effort, mirrors the server side
	if t.conn != nil {
		t.conn.Close()
		<-t.readDone
	}
	t.addr = addr
	t.conn = conn
	// The ack reader runs supervised: a panic is captured and the reader
	// restarted on the same socket instead of silently wedging the ack
	// path (the reporter would retransmit forever). The returned channel
	// closes when the reader exits for good — the join handle Close and
	// Redial wait on.
	t.readDone = resilience.Default.Go("vswitch/udp-ack-reader", nil, func() { t.readAcks(conn) })
	return nil
}

// readAcks drains ack datagrams into the bounded inbox until conn closes.
func (t *UDPReportTransport) readAcks(conn *net.UDPConn) {
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		frame := append([]byte(nil), buf[:n]...)
		t.inMu.Lock()
		if len(t.inbox) >= t.maxInbox {
			copy(t.inbox, t.inbox[1:])
			t.inbox = t.inbox[:len(t.inbox)-1]
			t.dropped++
		}
		t.inbox = append(t.inbox, frame)
		t.inMu.Unlock()
	}
}

// SendReport implements ReportTransport. A report larger than one UDP
// datagram is split into 'F' fragment datagrams the collector reassembles;
// a send error reconnects once and retries (the report protocol retransmits
// on top of this, so a still-failing send is just reported).
func (t *UDPReportTransport) SendReport(frame []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return net.ErrClosed
	}
	if len(frame) <= maxUDPPayload {
		return t.writeLocked(frame)
	}
	frags, err := appendFragments(t.frags[:0], frame, maxUDPPayload)
	if err != nil {
		return err
	}
	t.frags = frags
	for i, fr := range frags {
		if i > 0 {
			// Pace the burst: on hosts with the stock ~208 KB socket buffer a
			// back-to-back run of maximum-size fragments tail-drops the same
			// fragments on every retransmit, wedging the resync forever. A
			// sub-millisecond gap lets the receiver drain; it only costs the
			// rare oversized report.
			time.Sleep(200 * time.Microsecond)
		}
		if err := t.writeLocked(fr); err != nil {
			return err
		}
	}
	return nil
}

// writeLocked sends one datagram, reconnecting once on a send error.
func (t *UDPReportTransport) writeLocked(frame []byte) error {
	if _, err := t.conn.Write(frame); err != nil {
		if rerr := t.redialLocked(t.addr); rerr != nil {
			return err
		}
		if _, err = t.conn.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// RecvAck implements ReportTransport: it pops the oldest buffered ack.
func (t *UDPReportTransport) RecvAck(buf []byte) (int, bool) {
	t.inMu.Lock()
	defer t.inMu.Unlock()
	if len(t.inbox) == 0 {
		return 0, false
	}
	n := copy(buf, t.inbox[0])
	copy(t.inbox, t.inbox[1:])
	t.inbox = t.inbox[:len(t.inbox)-1]
	return n, true
}

// Redial repoints the transport at a (new) collector address — the switch
// side of a fail-over — and flushes acks buffered from the old one.
func (t *UDPReportTransport) Redial(addr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return net.ErrClosed
	}
	if err := t.redialLocked(addr); err != nil {
		return err
	}
	t.inMu.Lock()
	t.inbox = t.inbox[:0]
	t.inMu.Unlock()
	return nil
}

// Dropped reports acks discarded by the bounded inbox.
func (t *UDPReportTransport) Dropped() uint64 {
	t.inMu.Lock()
	defer t.inMu.Unlock()
	return t.dropped
}

// Close shuts the socket down and waits for the ack reader to exit.
func (t *UDPReportTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.conn.Close()
	<-t.readDone
	return err
}
