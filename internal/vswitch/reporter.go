package vswitch

import (
	"math/rand/v2"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/trace"
)

// ReportTransport moves protocol frames between one reporting switch and the
// collector: reports up, acks down. Implementations are point-to-point (one
// per switch) and may drop, delay, duplicate or reorder in both directions —
// the reporter's retransmit/resync machinery owns correctness.
type ReportTransport interface {
	// SendReport transmits one encoded report frame. The slice is only
	// valid during the call.
	SendReport(frame []byte) error
	// RecvAck copies the next pending ack frame into buf without blocking,
	// reporting whether one was available. buf must hold ackMsgLen bytes.
	RecvAck(buf []byte) (int, bool)
	// Close releases the transport.
	Close() error
}

// droppedCounter is an optional ReportTransport extension: transports with
// bounded internal queues report how many frames they dropped, and the
// reporter folds that into the Dropped field of its report headers.
type droppedCounter interface {
	Dropped() uint64
}

// ReporterOptions tunes a DeltaReporter. The zero value is usable.
type ReporterOptions struct {
	// Every is the packet interval between reports (default 1<<16).
	Every uint64
	// ResyncEvery forces a full report after this many consecutive delta
	// reports, bounding how long a collector that silently lost state can
	// stay wrong. 0 disables periodic resync (deltas until nacked).
	ResyncEvery int
	// Timeout is how long an unacked report waits before retransmission
	// (default 200ms). Retries back off exponentially (×2 with ±25% jitter)
	// up to MaxBackoff (default 10×Timeout).
	Timeout    time.Duration
	MaxBackoff time.Duration
	// MaxRetries is how many retransmits a delta report gets before the
	// reporter escalates to a full report (default 5). Full reports retry
	// indefinitely — they are the recovery of last resort.
	MaxRetries int
	// Seed seeds the retransmit jitter (deterministic tests).
	Seed uint64
	// Boot overrides the sender incarnation id (default: random non-zero).
	// Two runs of the same process must not share a boot id, or the
	// collector will mistake the restart's reports for stale duplicates.
	Boot uint32
	// Now overrides the clock (deterministic tests).
	Now func() time.Time
}

// ReporterStats counts protocol activity on the switch side.
type ReporterStats struct {
	// Reports counts distinct reports built (FullReports + DeltaReports);
	// DeltaNodes the lattice nodes carried by all delta reports together.
	Reports      uint64
	FullReports  uint64
	DeltaReports uint64
	DeltaNodes   uint64
	// FullBytes and DeltaBytes are the encoded frame bytes by kind, the
	// inputs to the delta-savings measurement.
	FullBytes  uint64
	DeltaBytes uint64
	// Retransmits counts frames re-sent after Timeouts; Resyncs full
	// reports forced by a nack or by delta retries running out; Superseded
	// pending reports replaced by a newer boundary before being acked
	// (drop-oldest: the newer report subsumes the older).
	Retransmits uint64
	Timeouts    uint64
	Resyncs     uint64
	Superseded  uint64
	// AcksOK/AcksStale/Nacks classify received acks (stale: for a report no
	// longer pending); AckErrors counts undecodable ack frames.
	AcksOK    uint64
	AcksStale uint64
	Nacks     uint64
	AckErrors uint64
	// SendErrors counts transport send failures (the frame stays pending
	// and retries on the usual schedule).
	SendErrors uint64
}

// DeltaReporter is the fault-tolerant switch-side reporter: it runs a full
// local RHHH engine (like SnapshotReporter) but ships generation-deltas —
// only the lattice nodes whose mutation generation moved since the last
// *acked* report, entry-coded against that acked base — falling back to full
// state reports on startup, on collector request (nack), after too many
// unacked retransmits, and every ResyncEvery reports. Reports carry sequence
// numbers and survive loss, duplication, reorder, corruption, sender
// restarts and collector fail-over; see protocol.go for the acceptance
// rules.
//
// Not safe for concurrent use (one reporter per datapath, like every hook).
type DeltaReporter struct {
	*EngineHook
	eng    *core.Engine[uint64]
	tr     ReportTransport
	trDrop droppedCounter // tr's optional dropped-frame counter
	sender uint16
	opts   ReporterOptions
	rng    *fastrand.Source
	now    func() time.Time

	// Protocol state. scratch is the pending report's capture (stable while
	// in flight: a new boundary supersedes the pending report first);
	// acked/ackedGens are the last acked capture and its per-node
	// generations, the base the next delta is encoded against.
	seq       uint32
	epoch     uint32 // collector epoch learned from acks; 0 = unknown
	boot      uint32
	ackedSeq  uint32
	haveAcked bool
	scratch   core.EngineSnapshot[uint64]
	acked     core.EngineSnapshot[uint64]
	ackedGens []uint64
	codec     core.DeltaCodec[uint64]

	pending     []byte // encoded frame awaiting ack (retransmit buffer)
	pendingSeq  uint32
	pendingFull bool
	inFlight    bool
	deadline    time.Time
	backoff     time.Duration
	retries     int
	forceFull   bool
	sinceFull   int

	next    uint64 // next report boundary (engine packet count)
	pollCtr uint32
	ackBuf  [ackMsgLen]byte
	stats   ReporterStats
	tm      *ReporterTelemetry // nil when uninstrumented; published per tick
	sendErr error
}

// NewDeltaReporter wraps an engine in a datapath hook reporting to tr as
// sender. See ReporterOptions for tuning; the zero options work.
func NewDeltaReporter(eng *core.Engine[uint64], tr ReportTransport, sender uint16, opts ReporterOptions) *DeltaReporter {
	if opts.Every == 0 {
		opts.Every = 1 << 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 200 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 10 * opts.Timeout
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 5
	}
	for opts.Boot == 0 {
		opts.Boot = rand.Uint32()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	dc, _ := tr.(droppedCounter)
	return &DeltaReporter{
		EngineHook: NewEngineHook(eng),
		eng:        eng,
		tr:         tr,
		trDrop:     dc,
		sender:     sender,
		opts:       opts,
		rng:        fastrand.New(opts.Seed ^ uint64(opts.Boot)),
		now:        now,
		boot:       opts.Boot,
		next:       opts.Every,
	}
}

// OnPacket feeds the engine, reports at boundaries, and polls the ack/retry
// machinery while a report is in flight.
func (r *DeltaReporter) OnPacket(p trace.Packet) {
	r.EngineHook.OnPacket(p)
	r.maybeTick()
}

// OnBatch is OnPacket over the engine's batched update path.
func (r *DeltaReporter) OnBatch(ps []trace.Packet) {
	r.EngineHook.OnBatch(ps)
	r.maybeTick()
}

func (r *DeltaReporter) maybeTick() {
	if r.eng.N() >= r.next {
		r.tick(false)
		return
	}
	if r.inFlight {
		// Between boundaries, poll the clock only every few hundred packets
		// — the retransmit path needs timeliness, not per-packet precision.
		if r.pollCtr++; r.pollCtr >= 256 {
			r.pollCtr = 0
			r.tick(false)
		}
	}
}

// Poll drives the ack/timeout/retransmit machinery without feeding packets —
// the idle-stream complement to OnPacket, used while waiting for quiescence.
func (r *DeltaReporter) Poll() { r.tick(false) }

// tick advances the state machine: drain acks, fire the retransmit timer,
// and build a report if a boundary was crossed (or force is set).
func (r *DeltaReporter) tick(force bool) {
	r.drainAcks()
	if r.inFlight {
		if now := r.now(); !now.Before(r.deadline) {
			r.onTimeout(now)
		}
	}
	if r.eng.N() >= r.next || force {
		r.buildReport(force)
		for r.next <= r.eng.N() {
			r.next += r.opts.Every
		}
	}
	if r.tm != nil {
		r.publishTelemetry()
	}
}

// drainAcks consumes every pending ack from the transport.
func (r *DeltaReporter) drainAcks() {
	for {
		n, ok := r.tr.RecvAck(r.ackBuf[:])
		if !ok {
			return
		}
		a, err := DecodeAckMsg(r.ackBuf[:n])
		if err != nil || a.Sender != r.sender {
			r.stats.AckErrors++
			continue
		}
		// Epochs only grow (each fail-over bumps them), so max() ignores
		// reordered acks from before a fail-over.
		r.epoch = max(r.epoch, a.Epoch)
		if !r.inFlight || a.Seq != r.pendingSeq {
			// An ack for a superseded or long-gone report. If it reports
			// OK, the collector advanced past our acked base and pending
			// deltas will be nacked — get ahead of it with a full report.
			r.stats.AcksStale++
			if !a.Resync && a.Seq > r.ackedSeq {
				r.forceFull = true
			}
			continue
		}
		if a.Resync {
			// The collector cannot apply our deltas (fresh start, gap,
			// fail-over, restart): escalate to a full report immediately.
			r.stats.Nacks++
			r.stats.Resyncs++
			r.inFlight = false
			r.forceFull = true
			r.buildReport(true)
			continue
		}
		r.stats.AcksOK++
		r.inFlight = false
		r.retries = 0
		if r.pendingFull {
			r.sinceFull = 0
		}
		// Acking the newest report means the collector holds exactly our
		// pending capture — any resync hint from older acks is moot.
		r.forceFull = false
		// The pending capture is now the shared base: keep its bytes and
		// the generations that identify its nodes in the live engine.
		r.acked.CopyFrom(&r.scratch)
		r.ackedGens = r.scratch.NodeGens(r.ackedGens)
		r.ackedSeq = r.pendingSeq
		r.haveAcked = true
	}
}

// onTimeout retransmits the pending frame with exponential backoff; a delta
// that exhausts MaxRetries escalates to a full report.
func (r *DeltaReporter) onTimeout(now time.Time) {
	r.stats.Timeouts++
	if !r.pendingFull && r.retries >= r.opts.MaxRetries {
		r.stats.Resyncs++
		r.inFlight = false
		r.forceFull = true
		r.buildReport(true)
		return
	}
	r.retries++
	r.stats.Retransmits++
	if err := r.tr.SendReport(r.pending); err != nil {
		r.stats.SendErrors++
		r.noteErr(err)
	}
	r.backoff = min(2*r.backoff, r.opts.MaxBackoff)
	r.deadline = now.Add(r.jitter(r.backoff))
}

// jitter spreads a backoff over ±25% so retransmits from many switches do
// not synchronize.
func (r *DeltaReporter) jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*r.rng.Float64()))
}

// buildReport captures the engine and sends a report: a delta against the
// acked base when one exists (and nothing forces a resync), a full state
// report otherwise. A boundary that finds an unacked report still within its
// timeout is skipped (the next report covers it — captures are cumulative);
// a forced build supersedes the pending report instead, the new capture
// subsuming it (generations only move forward, so the new delta's node set
// is a superset encoded against the same acked base).
func (r *DeltaReporter) buildReport(force bool) {
	if r.haveAcked && !r.forceFull &&
		r.eng.N() == r.acked.Packets && r.eng.Weight() == r.acked.Weight {
		// Everything the engine absorbed is already acked (a Flush on a
		// quiet stream): nothing to report, and any pending report covers
		// an identical capture.
		return
	}
	if r.inFlight {
		if !force && r.now().Before(r.deadline) {
			// A report is in flight and has not timed out: skip this boundary
			// instead of superseding it. Reports are cumulative captures, so
			// the next report after the ack covers this interval too — and a
			// boundary period shorter than the ack round trip degrades into
			// fewer, larger deltas instead of a supersede-and-resync storm.
			return
		}
		r.stats.Superseded++
		r.inFlight = false
	}
	r.eng.SnapshotInto(&r.scratch)
	full := r.forceFull || !r.haveAcked || r.epoch == 0 ||
		(r.opts.ResyncEvery > 0 && r.sinceFull >= r.opts.ResyncEvery)
	r.seq++
	h := ReportHeader{
		Sender: r.sender,
		Epoch:  r.epoch,
		Boot:   r.boot,
		Seq:    r.seq,
		Full:   full,
	}
	h.Dropped = r.stats.Superseded
	if r.trDrop != nil {
		h.Dropped += r.trDrop.Dropped()
	}
	var err error
	if full {
		r.pending, err = EncodeStateMsg(r.pending, &h, &r.scratch)
		if err == nil {
			r.stats.FullReports++
			r.stats.FullBytes += uint64(len(r.pending))
		}
	} else {
		h.BaseSeq = r.ackedSeq
		var nodes int
		r.pending, nodes, err = EncodeDeltaMsg(r.pending, &h, &r.codec, &r.scratch, &r.acked, r.ackedGens)
		if err == nil {
			r.stats.DeltaReports++
			r.stats.DeltaBytes += uint64(len(r.pending))
			r.stats.DeltaNodes += uint64(nodes)
		}
	}
	if err != nil {
		// Encoding failures are programming errors (shape mismatch, missing
		// codec); surface them without wedging the datapath.
		r.noteErr(err)
		r.seq--
		return
	}
	r.stats.Reports++
	r.pendingSeq = r.seq
	r.pendingFull = full
	r.inFlight = true
	r.retries = 0
	r.backoff = r.opts.Timeout
	r.deadline = r.now().Add(r.opts.Timeout)
	if full {
		r.forceFull = false
	} else {
		r.sinceFull++
	}
	if err := r.tr.SendReport(r.pending); err != nil {
		r.stats.SendErrors++
		r.noteErr(err)
	}
}

// Flush sends a report covering all absorbed traffic (unless the acked state
// already does) and reports the first error encountered. It does not wait
// for the ack; pair it with WaitSynced for a quiescence barrier.
func (r *DeltaReporter) Flush() error {
	r.tick(true)
	return r.sendErr
}

// Synced reports whether every packet the engine absorbed is covered by an
// acked report — the quiescent all-delivered state.
func (r *DeltaReporter) Synced() bool {
	return r.haveAcked && !r.inFlight &&
		r.eng.N() == r.acked.Packets && r.eng.Weight() == r.acked.Weight
}

// WaitSynced polls the protocol until Synced or the deadline; it reports
// whether sync was reached. Use with real transports (the fault-injection
// harness drives Poll and its own clock instead).
func (r *DeltaReporter) WaitSynced(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for !r.Synced() {
		if time.Now().After(deadline) {
			return false
		}
		r.tick(r.eng.N() > r.acked.Packets && !r.inFlight)
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stats returns a copy of the reporter's protocol counters.
func (r *DeltaReporter) Stats() ReporterStats { return r.stats }

// Err returns the first transport or encoding error encountered.
func (r *DeltaReporter) Err() error { return r.sendErr }

func (r *DeltaReporter) noteErr(err error) {
	if r.sendErr == nil {
		r.sendErr = err
	}
}
