package vswitch

import (
	"bytes"
	"testing"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// fragTestFrame builds a full 'S' v2 report frame from a freshly fed engine.
func fragTestFrame(t *testing.T, seed uint64, n int, h ReportHeader) ([]byte, *core.EngineSnapshot[uint64]) {
	t.Helper()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := newSyncEngine(dom, 0.05, 0.05, dom.Size(), seed)
	key := seed
	for i := 0; i < n; i++ {
		key = key*6364136223846793005 + 1442695040888963407
		eng.Update(key)
	}
	es := eng.Snapshot()
	frame, err := EncodeStateMsg(nil, &h, es)
	if err != nil {
		t.Fatalf("EncodeStateMsg: %v", err)
	}
	return frame, es
}

// TestFragmentReassembly drives 'F' fragments through the collector shuffled
// and duplicated: no ack until the report completes, then the reassembled
// full report applies bit-identically; corrupted fragments are rejected and
// counted without poisoning the eventual reassembly.
func TestFragmentReassembly(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	frame, es := fragTestFrame(t, 3, 4000, ReportHeader{Sender: 9, Boot: 5, Seq: 3, Full: true})
	frags, err := appendFragments(nil, frame, 256)
	if err != nil {
		t.Fatalf("appendFragments: %v", err)
	}
	if len(frags) < 8 {
		t.Fatalf("want a many-fragment split, got %d fragments of a %d byte frame", len(frags), len(frame))
	}
	for _, fr := range frags {
		if len(fr) > 256 {
			t.Fatalf("fragment of %d bytes exceeds the %d limit", len(fr), 256)
		}
	}

	// Deterministic shuffle, then duplicate every third fragment.
	order := make([][]byte, len(frags))
	copy(order, frags)
	rng := uint64(99)
	for i := len(order) - 1; i > 0; i-- {
		rng = rng*6364136223846793005 + 1442695040888963407
		j := int(rng % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	col := NewCollector(dom, 0.05, 0.05, dom.Size())
	var acked bool
	for i, fr := range order {
		ack, err := col.HandleMessage(fr)
		if err != nil {
			t.Fatalf("fragment %d rejected: %v", i, err)
		}
		if ack != nil {
			if i != len(order)-1 {
				t.Fatalf("ack before the last unique fragment (%d of %d)", i, len(order))
			}
			a, err := DecodeAckMsg(ack)
			if err != nil || a.Resync || a.Seq != 3 {
				t.Fatalf("bad completion ack %+v, err %v", a, err)
			}
			acked = true
		}
		if i%3 == 0 {
			// Duplicate: must neither complete early nor corrupt the buffer.
			if ack, err := col.HandleMessage(fr); err != nil || (ack != nil && !acked) {
				t.Fatalf("duplicate fragment %d: ack %v err %v", i, ack != nil, err)
			}
		}
	}
	if !acked {
		t.Fatalf("reassembly never completed")
	}
	if got, want := replicaBytes(t, col, 9), snapshotBytes(t, es); !bytes.Equal(got, want) {
		t.Fatalf("reassembled replica differs from the source snapshot")
	}

	// A corrupted fragment is rejected at the door and the report still
	// completes from clean retransmits.
	frame2, es2 := fragTestFrame(t, 4, 4000, ReportHeader{Sender: 9, Boot: 5, Seq: 4, BaseSeq: 3, Full: true})
	frags2, err := appendFragments(nil, frame2, 256)
	if err != nil {
		t.Fatalf("appendFragments: %v", err)
	}
	bad := append([]byte(nil), frags2[1]...)
	bad[len(bad)/2] ^= 0x40
	before := col.DecodeErrors()
	if _, err := col.HandleMessage(bad); err == nil {
		t.Fatalf("corrupted fragment accepted")
	}
	if col.DecodeErrors() != before+1 {
		t.Fatalf("corrupted fragment not counted: %d -> %d", before, col.DecodeErrors())
	}
	for _, fr := range frags2 {
		if _, err := col.HandleMessage(fr); err != nil {
			t.Fatalf("clean fragment rejected after corruption: %v", err)
		}
	}
	if got, want := replicaBytes(t, col, 9), snapshotBytes(t, es2); !bytes.Equal(got, want) {
		t.Fatalf("replica differs after corrupt-then-clean reassembly")
	}
}

// TestFragmentSupersede interleaves two fragmented reports from one sender:
// the newer report's fragments reset the pending assembly, and the stale
// report — even delivered in full afterwards — is acked without regressing
// the replica.
func TestFragmentSupersede(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	frameA, _ := fragTestFrame(t, 5, 4000, ReportHeader{Sender: 2, Boot: 8, Seq: 10, Full: true})
	frameB, esB := fragTestFrame(t, 6, 4000, ReportHeader{Sender: 2, Boot: 8, Seq: 11, Full: true})
	fragsA, err := appendFragments(nil, frameA, 512)
	if err != nil {
		t.Fatalf("appendFragments(A): %v", err)
	}
	fragsB, err := appendFragments(nil, frameB, 512)
	if err != nil {
		t.Fatalf("appendFragments(B): %v", err)
	}
	col := NewCollector(dom, 0.05, 0.05, dom.Size())
	for _, fr := range fragsA[:len(fragsA)/2] {
		if ack, err := col.HandleMessage(fr); err != nil || ack != nil {
			t.Fatalf("partial A fragment: ack %v err %v", ack != nil, err)
		}
	}
	for i, fr := range fragsB {
		ack, err := col.HandleMessage(fr)
		if err != nil {
			t.Fatalf("B fragment %d rejected: %v", i, err)
		}
		if (ack != nil) != (i == len(fragsB)-1) {
			t.Fatalf("B fragment %d: unexpected ack state", i)
		}
	}
	if got, want := replicaBytes(t, col, 2), snapshotBytes(t, esB); !bytes.Equal(got, want) {
		t.Fatalf("replica is not B after supersede")
	}
	// The stale report assembles fine but is acked as a duplicate.
	stale := col.Stats().StaleReports
	var lastAck []byte
	for _, fr := range fragsA {
		ack, err := col.HandleMessage(fr)
		if err != nil {
			t.Fatalf("late A fragment rejected: %v", err)
		}
		if ack != nil {
			lastAck = ack
		}
	}
	if lastAck == nil {
		t.Fatalf("stale report never acked")
	}
	if a, err := DecodeAckMsg(lastAck); err != nil || a.Resync {
		t.Fatalf("stale report ack %+v, err %v (want plain ack)", a, err)
	}
	if col.Stats().StaleReports != stale+1 {
		t.Fatalf("stale fragmented report not counted")
	}
	if got, want := replicaBytes(t, col, 2), snapshotBytes(t, esB); !bytes.Equal(got, want) {
		t.Fatalf("stale report regressed the replica")
	}
}

// TestAppendFragmentsRejects pins the splitter's guard rails.
func TestAppendFragmentsRejects(t *testing.T) {
	frame, _ := fragTestFrame(t, 7, 200, ReportHeader{Sender: 1, Boot: 1, Seq: 1, Full: true})
	if _, err := appendFragments(nil, frame, fragMsgOverhead); err == nil {
		t.Fatalf("zero-capacity fragment size accepted")
	}
	if _, err := appendFragments(nil, frame[:10], 256); err == nil {
		t.Fatalf("short frame accepted")
	}
	ackFrame := EncodeAckMsg(nil, Ack{Sender: 1, Epoch: 1, Seq: 1})
	if _, err := appendFragments(nil, append(ackFrame, make([]byte, reportHeaderLen)...), 256); err == nil {
		t.Fatalf("non-report frame accepted")
	}
	huge := make([]byte, maxFragTotal+1)
	copy(huge, frame[:reportHeaderLen])
	if _, err := appendFragments(nil, huge, 65507); err == nil {
		t.Fatalf("over-limit frame accepted")
	}
}

// TestDeltaReporterOverUDPOversized runs the protocol over real loopback UDP
// with an engine whose full state exceeds a UDP datagram, so the resync path
// only works through fragmentation.
func TestDeltaReporterOverUDPOversized(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.001, 0.01
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer srv.Close()
	tr, err := DialUDPReport(srv.Addr())
	if err != nil {
		t.Fatalf("DialUDPReport: %v", err)
	}
	defer tr.Close()

	eng := newSyncEngine(dom, eps, del, v, 31)
	rep := NewDeltaReporter(eng, tr, 4, ReporterOptions{
		Every: 25000, Timeout: 150 * time.Millisecond, Seed: 8, Boot: 77,
	})
	gen := trace.NewSynthetic(trace.Config{Seed: 32})
	for i := 0; i < 200000; i++ {
		p, _ := gen.Next()
		rep.OnPacket(p)
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !rep.WaitSynced(10 * time.Second) {
		t.Fatalf("no sync with an oversized state: %+v", rep.Stats())
	}
	want := snapshotBytes(t, eng.Snapshot())
	if len(want) <= maxUDPPayload {
		t.Fatalf("engine state of %d bytes fits a datagram; the test is not exercising fragmentation", len(want))
	}
	if got := replicaBytes(t, col, 4); !bytes.Equal(got, want) {
		t.Fatalf("replica differs from the %d byte engine snapshot", len(want))
	}
}
