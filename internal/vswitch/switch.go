package vswitch

import (
	"fmt"
	"sync"

	"rhhh/internal/trace"
)

// Switch wires a Datapath to ports: packets injected on an input port run
// through the pipeline and forwarded packets are handed to the sink
// registered on the action's output port. A single pump goroutine services
// all ports, mirroring one OVS PMD thread.
type Switch struct {
	dp    *Datapath
	rx    chan rxBatch
	sinks map[int]func([]trace.Packet)
	wg    sync.WaitGroup
	mu    sync.Mutex
	open  bool
}

type rxBatch struct {
	port    int
	packets []trace.Packet
}

// NewSwitch wraps a datapath. queueDepth is the rx ring size in batches.
func NewSwitch(dp *Datapath, queueDepth int) *Switch {
	if queueDepth <= 0 {
		queueDepth = 512
	}
	return &Switch{
		dp:    dp,
		rx:    make(chan rxBatch, queueDepth),
		sinks: make(map[int]func([]trace.Packet)),
	}
}

// SetSink registers the consumer of packets forwarded to port. Must be
// called before Start.
func (s *Switch) SetSink(port int, sink func([]trace.Packet)) {
	s.sinks[port] = sink
}

// Start launches the pump goroutine.
func (s *Switch) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open {
		return
	}
	s.open = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Reused per-port output buffers, keyed by output port.
		out := make(map[int][]trace.Packet)
		for b := range s.rx {
			for _, p := range b.packets {
				if a := s.dp.Process(p); !a.Drop {
					out[a.OutPort] = append(out[a.OutPort], p)
				}
			}
			for port, pkts := range out {
				if len(pkts) == 0 {
					continue
				}
				if sink, ok := s.sinks[port]; ok {
					sink(pkts)
				}
				out[port] = pkts[:0]
			}
		}
	}()
}

// Inject offers a batch on an input port; it blocks when the rx ring is
// full (ingress backpressure). The batch must not be reused until the
// switch is stopped or the sink has observed it.
func (s *Switch) Inject(port int, batch []trace.Packet) error {
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	if !open {
		return fmt.Errorf("vswitch: switch not started")
	}
	s.rx <- rxBatch{port: port, packets: batch}
	return nil
}

// Stop drains the rx ring and stops the pump.
func (s *Switch) Stop() {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return
	}
	s.open = false
	s.mu.Unlock()
	close(s.rx)
	s.wg.Wait()
}

// Stats proxies the datapath counters (call after Stop for a stable view).
func (s *Switch) Stats() Stats { return s.dp.Stats() }
