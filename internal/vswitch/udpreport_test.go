package vswitch

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// TestDeltaReporterOverUDP runs the acked report protocol over real loopback
// UDP — including a collector fail-over where the switch redials a standby
// restored from the primary's checkpoint — and checks the replica stays
// bit-identical to the reporting engine.
func TestDeltaReporterOverUDP(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	const eps, del = 0.05, 0.05
	v := 10 * dom.Size()
	col := NewCollector(dom, eps, del, v)
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer srv.Close()
	tr, err := DialUDPReport(srv.Addr())
	if err != nil {
		t.Fatalf("DialUDPReport: %v", err)
	}
	defer tr.Close()

	eng := newSyncEngine(dom, eps, del, v, 23)
	rep := NewDeltaReporter(eng, tr, 6, ReporterOptions{
		Every: 2000, Timeout: 30 * time.Millisecond, Seed: 4, Boot: 321,
	})
	gen := trace.NewSynthetic(trace.Config{Seed: 24, Aggregates: []trace.Aggregate{
		{Fraction: 0.3, Dst: hierarchy.AddrFromIPv4(ip4(198, 51, 100, 0)), DstBits: 24, Spread: 4000},
	}})
	feed := func(n int) {
		for i := 0; i < n; i++ {
			p, _ := gen.Next()
			rep.OnPacket(p)
		}
	}
	feed(30000)
	if err := rep.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !rep.WaitSynced(5 * time.Second) {
		t.Fatalf("no sync over loopback UDP: %+v", rep.Stats())
	}
	if got, want := replicaBytes(t, col, 6), snapshotBytes(t, eng.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("UDP replica differs from engine snapshot")
	}

	// Fail-over: checkpoint the primary, restore a standby behind a fresh
	// server, and redial the transport at it mid-stream.
	ckpt, err := col.AppendCheckpoint(nil)
	if err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}
	standby := NewCollector(dom, eps, del, v)
	if err := standby.Restore(ckpt); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	srv2, err := ListenUDP("127.0.0.1:0", standby)
	if err != nil {
		t.Fatalf("ListenUDP(standby): %v", err)
	}
	defer srv2.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("closing primary server: %v", err)
	}
	if err := tr.Redial(srv2.Addr()); err != nil {
		t.Fatalf("Redial: %v", err)
	}
	feed(30000)
	if err := rep.Flush(); err != nil {
		t.Fatalf("Flush after failover: %v", err)
	}
	if !rep.WaitSynced(5 * time.Second) {
		t.Fatalf("no sync with the standby: %+v", rep.Stats())
	}
	if got, want := replicaBytes(t, standby, 6), snapshotBytes(t, eng.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("standby replica differs from engine snapshot after failover")
	}
	if standby.Stats().Failovers != 1 {
		t.Fatalf("standby Failovers = %d, want 1", standby.Stats().Failovers)
	}
	if st := rep.Stats(); st.Resyncs == 0 {
		t.Fatalf("failover should have forced a resync, stats %+v", st)
	}
}

// TestUDPCollectorServerRobust feeds the server garbage datagrams between
// valid ones: the read loop must survive (counting decode errors on the
// collector), keep applying valid traffic, and shut down cleanly without
// leaking its goroutine (the test runs under -race in CI).
func TestUDPCollectorServerRobust(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.05, 0.05, 10*dom.Size())
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	garbage := [][]byte{
		{},
		{0xff},
		{'R', 99, 0, 0},
		{'S', 7, 1, 2, 3},
		{'D', 1, 0, 0, 0, 0},
		bytes.Repeat([]byte{0xaa}, 2000),
	}
	for _, g := range garbage {
		if _, err := conn.Write(g); err != nil {
			t.Fatalf("writing garbage: %v", err)
		}
	}
	valid := EncodeBatch(nil, 2, 1234, []Sample{{Node: 1, Key: 0x0a000000}})
	if _, err := conn.Write(valid); err != nil {
		t.Fatalf("writing valid batch: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Packets() != 1234 {
		if time.Now().After(deadline) {
			t.Fatalf("valid batch never applied; decode errors %d", col.DecodeErrors())
		}
		time.Sleep(time.Millisecond)
	}
	if errs := col.DecodeErrors(); errs < uint64(len(garbage))-1 {
		// The empty datagram may coalesce with socket behavior; every other
		// garbage frame must have been rejected and counted.
		t.Fatalf("DecodeErrors = %d after %d garbage datagrams", errs, len(garbage))
	}
	_ = srv.ReadErrors() // transient-read-error counter is wired up
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent-safe for the goroutine: a second server on the
	// same pattern starts and stops cleanly too.
	srv2, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("ListenUDP again: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("Close again: %v", err)
	}
}

// TestUDPCollectorCloseJoinsHandlers pins the bounded-join contract of
// UDPCollectorServer.Close: once Close returns, the read loop — including
// any in-flight HandleMessage call — has exited, so the caller may tear the
// collector down immediately. The test blasts datagrams at the server while
// closing it, then mutates collector state without synchronization; under
// -race (CI runs this leg) a handler surviving Close shows up as a data
// race against that write.
func TestUDPCollectorCloseJoinsHandlers(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	for round := 0; round < 8; round++ {
		col := NewCollector(dom, 0.05, 0.05, 10*dom.Size())
		srv, err := ListenUDP("127.0.0.1:0", col)
		if err != nil {
			t.Fatalf("round %d: ListenUDP: %v", round, err)
		}
		conn, err := net.Dial("udp", srv.Addr())
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A mix of garbage (exercises the decode-error path) and valid
			// batches (exercises the full handle+ack path) keeps handlers
			// in flight right up to the close.
			valid := EncodeBatch(nil, 3, 1, []Sample{{Node: 1, Key: 0x0a000001}})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					_, _ = conn.Write([]byte("not a vswitch frame, just noise"))
				} else {
					_, _ = conn.Write(valid)
				}
			}
		}()
		time.Sleep(time.Millisecond) // let some handlers actually run
		start := time.Now()
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		if d := time.Since(start); d > 3*time.Second {
			t.Fatalf("round %d: Close took %v, want a bounded prompt join", round, d)
		}
		// Unsynchronized write: only legal if no handler can still be
		// running. The happens-before edge is the supervisor's done channel
		// Close waits on.
		col.stats.Messages = 0
		close(stop)
		wg.Wait()
		conn.Close()
	}
}

// TestUDPCollectorCloseTimeoutBounded pins that a wedged read loop cannot
// hang shutdown forever: with the join handle never closing, Close reports
// an error after the configured timeout instead of blocking.
func TestUDPCollectorCloseTimeoutBounded(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	col := NewCollector(dom, 0.05, 0.05, 10*dom.Size())
	srv, err := ListenUDP("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	srv.SetCloseTimeout(30 * time.Millisecond)
	srv.done = make(chan struct{}) // simulate a handler stuck past the deadline
	start := time.Now()
	if err := srv.Close(); err == nil {
		t.Fatalf("Close with a stuck read loop returned nil, want timeout error")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v, want ~30ms bound", d)
	}
}
