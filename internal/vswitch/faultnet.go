package vswitch

import (
	"sync"
	"time"

	"rhhh/internal/fastrand"
)

// Deterministic fault injection for the report protocol: FaultLink is a
// unidirectional lossy datagram queue, CollectorLink wires two of them (one
// per direction) between a DeltaReporter and a Collector. Faults are drawn
// from a seeded generator and delivery happens only when a pump runs, so a
// test's entire loss/duplication/reorder/corruption schedule is a pure
// function of its seeds — the property tests replay the same network
// misbehavior on every run.

// FaultConfig sets one link direction's fault rates (each in [0,1],
// evaluated independently per datagram).
type FaultConfig struct {
	// Seed drives every fault decision on the link.
	Seed uint64
	// Drop discards the datagram; Duplicate enqueues it twice; Reorder
	// inserts it at a random queue position instead of the tail; Corrupt
	// flips one random bit (the CRC check must catch it downstream).
	Drop, Duplicate, Reorder, Corrupt float64
	// MaxQueue bounds the in-flight queue; the oldest datagram is dropped
	// on overflow (default 64).
	MaxQueue int
}

// FaultStats counts what a link did to its traffic.
type FaultStats struct {
	Sent, Delivered                           uint64
	Dropped, Duplicated, Reordered, Corrupted uint64
	// QueueDropped counts oldest-first overflow drops (the bounded-queue
	// policy) and datagrams discarded while partitioned.
	QueueDropped uint64
}

// FaultLink is one direction of a faulty datagram path. Send enqueues (with
// faults applied); Pump delivers to the sink. Safe for concurrent use.
type FaultLink struct {
	mu          sync.Mutex
	cfg         FaultConfig
	rng         *fastrand.Source
	queue       [][]byte
	partitioned bool
	stats       FaultStats
	sink        func([]byte)
}

// NewFaultLink builds a link delivering into sink.
func NewFaultLink(cfg FaultConfig, sink func([]byte)) *FaultLink {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	return &FaultLink{cfg: cfg, rng: fastrand.New(cfg.Seed), sink: sink}
}

// SetSink redirects delivery (collector fail-over swaps the handler).
func (l *FaultLink) SetSink(sink func([]byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// SetPartitioned toggles a full partition: while set, sends are discarded.
func (l *FaultLink) SetPartitioned(p bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.partitioned = p
}

// Send applies the fault schedule to one datagram and enqueues the
// survivors. It never blocks and never fails — loss is the failure mode.
func (l *FaultLink) Send(frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Sent++
	if l.partitioned {
		l.stats.QueueDropped++
		return
	}
	if l.cfg.Drop > 0 && l.rng.Float64() < l.cfg.Drop {
		l.stats.Dropped++
		return
	}
	cp := append([]byte(nil), frame...)
	if l.cfg.Corrupt > 0 && l.rng.Float64() < l.cfg.Corrupt && len(cp) > 0 {
		i := l.rng.Uint64n(uint64(len(cp)))
		cp[i] ^= byte(1 << l.rng.Uint64n(8))
		l.stats.Corrupted++
	}
	n := 1
	if l.cfg.Duplicate > 0 && l.rng.Float64() < l.cfg.Duplicate {
		l.stats.Duplicated++
		n = 2
	}
	for ; n > 0; n-- {
		if l.cfg.Reorder > 0 && len(l.queue) > 0 && l.rng.Float64() < l.cfg.Reorder {
			at := int(l.rng.Uint64n(uint64(len(l.queue))))
			l.queue = append(l.queue, nil)
			copy(l.queue[at+1:], l.queue[at:])
			l.queue[at] = cp
			l.stats.Reordered++
		} else {
			l.queue = append(l.queue, cp)
		}
		if len(l.queue) > l.cfg.MaxQueue {
			copy(l.queue, l.queue[1:])
			l.queue = l.queue[:len(l.queue)-1]
			l.stats.QueueDropped++
		}
	}
}

// Pump delivers the head-of-queue datagram to the sink (outside the lock),
// reporting whether one was delivered.
func (l *FaultLink) Pump() bool {
	l.mu.Lock()
	if len(l.queue) == 0 {
		l.mu.Unlock()
		return false
	}
	frame := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	sink := l.sink
	l.stats.Delivered++
	l.mu.Unlock()
	if sink != nil {
		sink(frame)
	}
	return true
}

// PumpAll drains the queue, returning how many datagrams were delivered.
func (l *FaultLink) PumpAll() int {
	n := 0
	for l.Pump() {
		n++
	}
	return n
}

// Pending returns the queue depth.
func (l *FaultLink) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// Stats returns a copy of the link's counters.
func (l *FaultLink) Stats() FaultStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// CollectorLink is a ReportTransport delivering through two FaultLinks: Up
// carries reports into the collector's HandleMessage, Down carries acks back
// into a bounded inbox drained by RecvAck. SetCollector swaps the receiving
// collector mid-stream — the fail-over path in tests and the in-process
// vswitchd mode.
type CollectorLink struct {
	Up, Down *FaultLink

	mu       sync.Mutex
	col      *Collector
	inbox    [][]byte
	maxInbox int
	ackDrops uint64

	pumpStop chan struct{}
	pumpDone chan struct{}
}

// NewCollectorLink wires a link pair around col. up and down configure the
// two directions (their Seed/fault rates may differ).
func NewCollectorLink(col *Collector, up, down FaultConfig) *CollectorLink {
	cl := &CollectorLink{col: col, maxInbox: 16}
	cl.Up = NewFaultLink(up, func(frame []byte) {
		cl.mu.Lock()
		c := cl.col
		cl.mu.Unlock()
		// Malformed datagrams are the link's faults arriving as designed;
		// the collector counts them in DecodeErrors.
		if ack, _ := c.HandleMessage(frame); ack != nil {
			cl.Down.Send(ack)
		}
	})
	cl.Down = NewFaultLink(down, func(frame []byte) {
		cl.mu.Lock()
		defer cl.mu.Unlock()
		if len(cl.inbox) >= cl.maxInbox {
			copy(cl.inbox, cl.inbox[1:])
			cl.inbox = cl.inbox[:len(cl.inbox)-1]
			cl.ackDrops++
		}
		cl.inbox = append(cl.inbox, frame)
	})
	return cl
}

// SetCollector redirects reports to a new collector (fail-over).
func (cl *CollectorLink) SetCollector(c *Collector) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.col = c
}

// SendReport implements ReportTransport.
func (cl *CollectorLink) SendReport(frame []byte) error {
	cl.Up.Send(frame)
	return nil
}

// RecvAck implements ReportTransport: it pops the oldest pumped ack.
func (cl *CollectorLink) RecvAck(buf []byte) (int, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if len(cl.inbox) == 0 {
		return 0, false
	}
	n := copy(buf, cl.inbox[0])
	copy(cl.inbox, cl.inbox[1:])
	cl.inbox = cl.inbox[:len(cl.inbox)-1]
	return n, true
}

// Dropped reports frames lost to the link's own bounded queues (reports
// overflowing Up, acks overflowing the inbox) — the reporter folds it into
// its report headers.
func (cl *CollectorLink) Dropped() uint64 {
	up := cl.Up.Stats().QueueDropped
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return up + cl.ackDrops
}

// Pump drives both directions until neither has pending datagrams (an
// upward delivery can enqueue an ack downward). Returns total deliveries.
func (cl *CollectorLink) Pump() int {
	n := 0
	for {
		moved := cl.Up.PumpAll() + cl.Down.PumpAll()
		n += moved
		if moved == 0 {
			return n
		}
	}
}

// StartPump pumps continuously on a background goroutine until Close — the
// mode vswitchd's in-process deployment uses. interval is the poll period
// when idle (default 1ms).
func (cl *CollectorLink) StartPump(interval time.Duration) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	cl.pumpStop = make(chan struct{})
	cl.pumpDone = make(chan struct{})
	go func() {
		defer close(cl.pumpDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-cl.pumpStop:
				return
			case <-t.C:
				cl.Pump()
			}
		}
	}()
}

// Close stops the background pump (if any) after a final drain.
func (cl *CollectorLink) Close() error {
	if cl.pumpStop != nil {
		close(cl.pumpStop)
		<-cl.pumpDone
		cl.pumpStop = nil
	}
	cl.Pump()
	return nil
}
