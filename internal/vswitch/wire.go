package vswitch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"rhhh/internal/core"
)

// Acked report protocol wire formats. Three frames share one fixed header so
// the collector can dispatch on the first byte:
//
//	'D' v1  delta report: only the lattice nodes whose mutation generation
//	        moved since the last acked report, entry-delta-coded against it.
//	'S' v2  full state report (resync): the whole engine snapshot. Unlike the
//	        fire-and-forget 'S' v1 it carries the protocol header and a CRC.
//	'A' v1  ack, collector → switch.
//
// Report header ('D' and 'S' v2), big endian:
//
//	offset  field
//	0       magic
//	1       version
//	2       sender  u16   switch id
//	4       epoch   u32   collector incarnation the report targets (0 = unknown)
//	8       boot    u32   sender incarnation (fresh random per process)
//	12      seq     u32   report sequence number, strictly increasing per boot
//	16      baseSeq u32   seq of the acked report the delta was encoded against
//	20      dropped u64   reports the sender dropped/superseded so far
//	28      payload       engine snapshot ('S') or engine delta ('D')
//	...     crc     u32   CRC-32C over everything before it
//
// The CRC matters: UDP's 16-bit checksum is too weak for the "collector state
// bit-identical to loss-free" guarantee under deliberately corrupted frames,
// and the fault-injection harness flips bits at up to 20% per report.
const (
	deltaMsgMagic   = 'D'
	deltaMsgVersion = 1
	stateMsgVersion = 2 // 'S' frames: snapMsgVersion is the legacy v1
	ackMsgMagic     = 'A'
	ackMsgVersion   = 1

	reportHeaderLen = 2 + 2 + 4 + 4 + 4 + 4 + 8
	frameCRCLen     = 4

	// Ack frame: magic, version, sender u16, epoch u32, seq u32, flags u8
	// (bit 0: resync requested), crc u32.
	ackMsgLen = 2 + 2 + 4 + 4 + 1 + frameCRCLen
)

// castagnoli is the CRC-32C table shared by all protocol frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrameCRC seals a frame with the CRC-32C of its contents.
func appendFrameCRC(buf []byte) []byte {
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// verifyFrameCRC checks and strips a frame's trailing CRC.
func verifyFrameCRC(b []byte) ([]byte, error) {
	if len(b) < frameCRCLen {
		return nil, errors.New("vswitch: frame too short for checksum")
	}
	body := b[:len(b)-frameCRCLen]
	want := binary.BigEndian.Uint32(b[len(b)-frameCRCLen:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, errors.New("vswitch: frame checksum mismatch")
	}
	return body, nil
}

// ReportHeader is the protocol header shared by delta ('D') and full-state
// ('S' v2) reports.
type ReportHeader struct {
	Sender  uint16
	Epoch   uint32 // collector incarnation the report targets; 0 = unknown yet
	Boot    uint32 // sender incarnation
	Seq     uint32 // per-boot, strictly increasing
	BaseSeq uint32 // deltas: seq of the acked report they are encoded against
	Dropped uint64 // reports dropped/superseded by the sender so far
	Full    bool   // true for 'S' v2 frames
}

func appendReportHeader(buf []byte, magic, version byte, h *ReportHeader) []byte {
	buf = append(buf, magic, version)
	buf = binary.BigEndian.AppendUint16(buf, h.Sender)
	buf = binary.BigEndian.AppendUint32(buf, h.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, h.Boot)
	buf = binary.BigEndian.AppendUint32(buf, h.Seq)
	buf = binary.BigEndian.AppendUint32(buf, h.BaseSeq)
	buf = binary.BigEndian.AppendUint64(buf, h.Dropped)
	return buf
}

// EncodeStateMsg serializes a full-state ('S' v2) report into buf (reusing
// its storage) and returns the encoded frame.
func EncodeStateMsg(buf []byte, h *ReportHeader, es *core.EngineSnapshot[uint64]) ([]byte, error) {
	buf = appendReportHeader(buf[:0], snapMsgMagic, stateMsgVersion, h)
	buf, err := es.AppendBinary(buf)
	if err != nil {
		return nil, err
	}
	return appendFrameCRC(buf), nil
}

// EncodeDeltaMsg serializes a delta ('D') report into buf (reusing its
// storage): the nodes of es whose generation moved relative to baseGens,
// entry-delta-coded against base. Returns the frame and the number of nodes
// it carries.
func EncodeDeltaMsg(buf []byte, h *ReportHeader, codec *core.DeltaCodec[uint64], es, base *core.EngineSnapshot[uint64], baseGens []uint64) ([]byte, int, error) {
	buf = appendReportHeader(buf[:0], deltaMsgMagic, deltaMsgVersion, h)
	buf, nodes, err := codec.AppendDelta(buf, es, base, baseGens)
	if err != nil {
		return nil, 0, err
	}
	return appendFrameCRC(buf), nodes, nil
}

// DecodeReportMsg verifies a 'D' or 'S' v2 frame's checksum and parses its
// header, returning the payload (engine delta or engine snapshot encoding)
// still to be decoded against the receiver's per-sender state.
func DecodeReportMsg(b []byte) (h ReportHeader, payload []byte, err error) {
	body, err := verifyFrameCRC(b)
	if err != nil {
		return h, nil, err
	}
	if len(body) < reportHeaderLen {
		return h, nil, errors.New("vswitch: short report frame")
	}
	switch {
	case body[0] == deltaMsgMagic && body[1] == deltaMsgVersion:
		h.Full = false
	case body[0] == snapMsgMagic && body[1] == stateMsgVersion:
		h.Full = true
	default:
		return h, nil, fmt.Errorf("vswitch: bad report magic/version %q/%d", body[0], body[1])
	}
	h.Sender = binary.BigEndian.Uint16(body[2:4])
	h.Epoch = binary.BigEndian.Uint32(body[4:8])
	h.Boot = binary.BigEndian.Uint32(body[8:12])
	h.Seq = binary.BigEndian.Uint32(body[12:16])
	h.BaseSeq = binary.BigEndian.Uint32(body[16:20])
	h.Dropped = binary.BigEndian.Uint64(body[20:28])
	return h, body[reportHeaderLen:], nil
}

// Oversized reports travel as 'F' fragment datagrams: a 'D'/'S' v2 frame
// longer than a transport's datagram limit is split into balanced chunks,
// each wrapped in a fragment header with its own CRC, and reassembled by the
// collector before normal dispatch. The inner frame's CRC still seals the
// report end to end; the fragment CRC exists so a corrupted fragment is
// rejected at the door (counted in DecodeErrors) instead of poisoning
// per-sender reassembly state. Loss of any fragment just means the report
// never completes — the protocol's retransmit resends every fragment, and
// retransmits reuse the id so they refill the same buffer.
//
// Fragment frame, big endian:
//
//	offset  field
//	0       magic   'F'
//	1       version
//	2       sender  u16   copied from the inner report header
//	4       id      u32   the inner report's seq
//	8       total   u32   inner frame length
//	12      idx     u16   fragment index
//	14      count   u16   fragment count; chunk stride is ceil(total/count)
//	16      chunk
//	...     crc     u32   CRC-32C over everything before it
const (
	fragMsgMagic    = 'F'
	fragMsgVersion  = 1
	fragMsgHeader   = 2 + 2 + 4 + 4 + 2 + 2
	fragMsgOverhead = fragMsgHeader + frameCRCLen

	// maxFragTotal bounds a reassembled report, and with it the reassembly
	// buffer a sender can pin on the collector: far above any real engine
	// state, far below a memory bomb.
	maxFragTotal = 1 << 24
)

// appendFragments splits an encoded 'D'/'S' v2 report frame into fragment
// datagrams of at most maxSize bytes each, appending them to frames. Chunks
// are balanced (stride = ceil(len/count)) so the receiver can derive every
// fragment's offset and expected length from the header alone.
func appendFragments(frames [][]byte, frame []byte, maxSize int) ([][]byte, error) {
	chunkCap := maxSize - fragMsgOverhead
	if chunkCap < 1 {
		return nil, fmt.Errorf("vswitch: fragment size %d cannot carry a payload", maxSize)
	}
	if len(frame) < reportHeaderLen+frameCRCLen {
		return nil, errors.New("vswitch: fragmenting a short report frame")
	}
	switch {
	case frame[0] == deltaMsgMagic && frame[1] == deltaMsgVersion:
	case frame[0] == snapMsgMagic && frame[1] == stateMsgVersion:
	default:
		return nil, fmt.Errorf("vswitch: fragmenting a non-report frame %q/%d", frame[0], frame[1])
	}
	if len(frame) > maxFragTotal {
		return nil, fmt.Errorf("vswitch: report of %d bytes exceeds the %d byte reassembly limit", len(frame), maxFragTotal)
	}
	sender := binary.BigEndian.Uint16(frame[2:4])
	id := binary.BigEndian.Uint32(frame[12:16]) // the report's seq
	count := (len(frame) + chunkCap - 1) / chunkCap
	if count > 0xffff {
		return nil, fmt.Errorf("vswitch: report needs %d fragments, limit 65535", count)
	}
	stride := (len(frame) + count - 1) / count
	for idx := 0; idx < count; idx++ {
		off := idx * stride
		end := min(off+stride, len(frame))
		buf := make([]byte, 0, fragMsgOverhead+end-off)
		buf = append(buf, fragMsgMagic, fragMsgVersion)
		buf = binary.BigEndian.AppendUint16(buf, sender)
		buf = binary.BigEndian.AppendUint32(buf, id)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(frame)))
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
		buf = binary.BigEndian.AppendUint16(buf, uint16(count))
		buf = append(buf, frame[off:end]...)
		frames = append(frames, appendFrameCRC(buf))
	}
	return frames, nil
}

// fragMsg is one decoded fragment datagram.
type fragMsg struct {
	sender     uint16
	id         uint32
	total      int
	idx, count int
	chunk      []byte
}

// decodeFragMsg parses and checksum-verifies a fragment datagram. The chunk
// length must be exactly what the balanced split implies, so a truncated or
// padded fragment can never assemble.
func decodeFragMsg(b []byte) (fragMsg, error) {
	var f fragMsg
	body, err := verifyFrameCRC(b)
	if err != nil {
		return f, err
	}
	if len(body) < fragMsgHeader {
		return f, errors.New("vswitch: short fragment frame")
	}
	if body[0] != fragMsgMagic || body[1] != fragMsgVersion {
		return f, errors.New("vswitch: bad fragment magic/version")
	}
	f.sender = binary.BigEndian.Uint16(body[2:4])
	f.id = binary.BigEndian.Uint32(body[4:8])
	f.total = int(binary.BigEndian.Uint32(body[8:12]))
	f.idx = int(binary.BigEndian.Uint16(body[12:14]))
	f.count = int(binary.BigEndian.Uint16(body[14:16]))
	f.chunk = body[fragMsgHeader:]
	if f.total < reportHeaderLen+frameCRCLen || f.total > maxFragTotal {
		return f, fmt.Errorf("vswitch: fragment total %d out of range", f.total)
	}
	if f.count < 1 || f.idx >= f.count {
		return f, fmt.Errorf("vswitch: fragment %d of %d out of range", f.idx, f.count)
	}
	stride := (f.total + f.count - 1) / f.count
	want := min(stride, f.total-f.idx*stride)
	if want < 1 || len(f.chunk) != want {
		return f, fmt.Errorf("vswitch: fragment %d of %d carries %d bytes, want %d", f.idx, f.count, len(f.chunk), want)
	}
	return f, nil
}

// Ack is the collector's response to one report. Resync asks the sender to
// fall back to a full 'S' v2 report: the collector could not apply the delta
// (unknown sender, sequence gap, stale epoch, or a just-failed-over standby).
// Epoch always carries the collector's current incarnation so senders learn
// it from any ack.
type Ack struct {
	Sender uint16
	Epoch  uint32
	Seq    uint32 // the acknowledged report
	Resync bool
}

// EncodeAckMsg serializes an ack into buf (reusing its storage).
func EncodeAckMsg(buf []byte, a Ack) []byte {
	buf = append(buf[:0], ackMsgMagic, ackMsgVersion)
	buf = binary.BigEndian.AppendUint16(buf, a.Sender)
	buf = binary.BigEndian.AppendUint32(buf, a.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, a.Seq)
	var flags byte
	if a.Resync {
		flags = 1
	}
	buf = append(buf, flags)
	return appendFrameCRC(buf)
}

// DecodeAckMsg parses and checksum-verifies an ack frame.
func DecodeAckMsg(b []byte) (Ack, error) {
	var a Ack
	if len(b) != ackMsgLen {
		return a, fmt.Errorf("vswitch: ack frame of %d bytes, want %d", len(b), ackMsgLen)
	}
	body, err := verifyFrameCRC(b)
	if err != nil {
		return a, err
	}
	if body[0] != ackMsgMagic || body[1] != ackMsgVersion {
		return a, errors.New("vswitch: bad ack magic/version")
	}
	a.Sender = binary.BigEndian.Uint16(body[2:4])
	a.Epoch = binary.BigEndian.Uint32(body[4:8])
	a.Seq = binary.BigEndian.Uint32(body[8:12])
	if body[12]&^byte(1) != 0 {
		return a, fmt.Errorf("vswitch: unknown ack flags %#x", body[12])
	}
	a.Resync = body[12]&1 != 0
	return a, nil
}
