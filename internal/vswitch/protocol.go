package vswitch

import (
	"errors"
	"fmt"
	"slices"

	"rhhh/internal/core"
)

// The collector side of the acked report protocol. Per sender the collector
// keeps a whole-state replica plus the sequencing state that keeps it
// consistent under loss, duplication, reorder, corruption and restarts:
//
//   - A delta report is applied iff it targets this collector incarnation
//     (epoch), comes from the sender incarnation we know (boot), advances the
//     sequence (seq > lastSeq), and was encoded against exactly the state we
//     hold (baseSeq == lastSeq). Anything already applied is acked again
//     without reapplying (retransmits are idempotent); anything unappliable
//     is answered with a resync request.
//   - A full report is self-contained, so it is accepted whenever it is not
//     stale (seq ≤ lastSeq from the same boot), including from unknown
//     senders, after sender restarts (boot change), and across collector
//     fail-overs. Its ack teaches the sender the collector's current epoch.
//
// The invariant the delta rules preserve: an applied sender replica is
// bit-identical to the snapshot the sender captured for the acked seq —
// nodes absent from a delta are bit-identical to the acked base by the
// generation check, nodes present decode to the capture exactly.

// senderState is one reporting switch's replica and protocol state.
type senderState struct {
	snap    *core.EngineSnapshot[uint64]
	boot    uint32 // sender incarnation the replica belongs to
	lastSeq uint32 // newest applied report in that incarnation
	lastMsg uint64 // stats.Messages when the replica last advanced
	fulls   uint64
	deltas  uint64
	stale   uint64
	gaps    uint64 // deltas refused pending resync
	dropped uint64 // sender-reported dropped/superseded reports
}

// CollectorStats counts protocol activity on the collector.
type CollectorStats struct {
	// Messages is every datagram handed to HandleMessage.
	Messages uint64
	// SampleBatches, FullReports and DeltaReports count applied messages by
	// kind ('R' batches, 'S' full state, 'D' deltas).
	SampleBatches uint64
	FullReports   uint64
	DeltaReports  uint64
	// StaleReports were already-applied reports (duplicates, retransmits
	// after a lost ack, reordered arrivals) acked without reapplying.
	StaleReports uint64
	// ResyncRequests counts nacks asking a sender for a full report.
	ResyncRequests uint64
	// DecodeErrors counts datagrams rejected as malformed (truncated,
	// checksum mismatch, bad magic, invalid payload).
	DecodeErrors uint64
	// Failovers counts checkpoint restores into this collector.
	Failovers uint64
}

// SenderInfo is one sender's protocol state, for operator surfaces.
type SenderInfo struct {
	Sender        uint16
	Boot, LastSeq uint32
	// Packets is the stream weight behind the sender's replica.
	Packets uint64
	// FullReports/DeltaReports/StaleReports/Gaps mirror senderState.
	FullReports, DeltaReports, StaleReports, Gaps uint64
	// Dropped is the sender-reported count of reports it dropped or
	// superseded before transmission succeeded.
	Dropped uint64
	// Staleness is how many messages the collector has processed since this
	// sender's replica last advanced — a growing value flags a silent or
	// partitioned switch.
	Staleness uint64
}

// Stats returns a copy of the collector's protocol counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DecodeErrors returns how many malformed datagrams the collector rejected.
func (c *Collector) DecodeErrors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.DecodeErrors
}

// Epoch returns the collector's incarnation number (1 for a fresh collector;
// a checkpoint restore resumes at the checkpointed epoch plus one).
func (c *Collector) Epoch() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Senders returns per-sender protocol state in ascending sender order.
func (c *Collector) Senders() []SenderInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SenderInfo, 0, len(c.senders))
	for id, st := range c.senders {
		out = append(out, SenderInfo{
			Sender:       id,
			Boot:         st.boot,
			LastSeq:      st.lastSeq,
			Packets:      st.snap.Packets,
			FullReports:  st.fulls,
			DeltaReports: st.deltas,
			StaleReports: st.stale,
			Gaps:         st.gaps,
			Dropped:      st.dropped,
			Staleness:    c.stats.Messages - st.lastMsg,
		})
	}
	slices.SortFunc(out, func(a, b SenderInfo) int { return int(a.Sender) - int(b.Sender) })
	return out
}

// HandleMessage applies one datagram of any wire kind — 'R' sample batches,
// legacy 'S' v1 snapshots, protocol 'S' v2 full reports, 'D' deltas — and
// returns the ack frame to send back to the sender (nil for ack-less kinds).
// Malformed input is returned as an error, never a panic, and counted in
// DecodeErrors; a valid protocol report the collector cannot apply yields a
// resync-requesting ack and no error.
func (c *Collector) HandleMessage(b []byte) (ack []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Messages++
	return c.dispatchLocked(b, false)
}

// dispatchLocked routes one frame by magic byte. reassembled marks a frame
// that came out of fragment reassembly, which must not nest.
func (c *Collector) dispatchLocked(b []byte, reassembled bool) (ack []byte, err error) {
	if len(b) < 2 {
		c.stats.DecodeErrors++
		return nil, errors.New("vswitch: short datagram")
	}
	switch {
	case b[0] == wireMagic:
		sender, total, batch, err := DecodeBatch(b)
		if err != nil {
			c.stats.DecodeErrors++
			return nil, err
		}
		c.applySamplesLocked(sender, total, batch)
		c.stats.SampleBatches++
		return nil, nil
	case b[0] == snapMsgMagic && b[1] == snapMsgVersion:
		// Legacy fire-and-forget snapshot: no header, no ack.
		sender, es, err := DecodeSnapshotMsg(b)
		if err != nil {
			c.stats.DecodeErrors++
			return nil, err
		}
		if err := c.applySnapshotLocked(sender, es); err != nil {
			c.stats.DecodeErrors++
			return nil, err
		}
		return nil, nil
	case b[0] == snapMsgMagic && b[1] == stateMsgVersion, b[0] == deltaMsgMagic:
		h, payload, err := DecodeReportMsg(b)
		if err != nil {
			c.stats.DecodeErrors++
			return nil, err
		}
		if h.Full {
			return c.applyFullLocked(h, payload)
		}
		return c.applyDeltaLocked(h, payload)
	case b[0] == fragMsgMagic:
		if reassembled {
			c.stats.DecodeErrors++
			return nil, errors.New("vswitch: fragment nested inside a reassembled report")
		}
		return c.handleFragLocked(b)
	default:
		c.stats.DecodeErrors++
		return nil, fmt.Errorf("vswitch: unknown datagram magic %q", b[0])
	}
}

// ackLocked builds an ack frame for sender.
func (c *Collector) ackLocked(sender uint16, seq uint32, resync bool) []byte {
	if resync {
		c.stats.ResyncRequests++
	}
	return EncodeAckMsg(nil, Ack{Sender: sender, Epoch: c.epoch, Seq: seq, Resync: resync})
}

// applyFullLocked applies an 'S' v2 full-state report.
func (c *Collector) applyFullLocked(h ReportHeader, payload []byte) ([]byte, error) {
	st := c.senders[h.Sender]
	if st != nil && st.boot == h.Boot && h.Seq <= st.lastSeq {
		// Already have this report (or a newer one): a full resend after a
		// lost ack, or reordered duplicates. Ack without regressing.
		st.stale++
		st.dropped = max(st.dropped, h.Dropped)
		c.stats.StaleReports++
		return c.ackLocked(h.Sender, h.Seq, false), nil
	}
	es, rest, err := core.DecodeEngineSnapshot[uint64](payload)
	if err != nil {
		c.stats.DecodeErrors++
		return c.ackLocked(h.Sender, h.Seq, true), err
	}
	if len(rest) != 0 {
		c.stats.DecodeErrors++
		return c.ackLocked(h.Sender, h.Seq, true),
			fmt.Errorf("vswitch: %d trailing bytes after full report", len(rest))
	}
	if err := c.checkSnapshotConfig(es); err != nil {
		c.stats.DecodeErrors++
		return c.ackLocked(h.Sender, h.Seq, true), err
	}
	if st == nil {
		st = &senderState{}
		c.senders[h.Sender] = st
	}
	st.snap = es
	st.boot = h.Boot
	st.lastSeq = h.Seq
	st.lastMsg = c.stats.Messages
	st.fulls++
	st.dropped = max(st.dropped, h.Dropped)
	c.stats.FullReports++
	return c.ackLocked(h.Sender, h.Seq, false), nil
}

// applyDeltaLocked applies a 'D' delta report.
func (c *Collector) applyDeltaLocked(h ReportHeader, payload []byte) ([]byte, error) {
	st := c.senders[h.Sender]
	switch {
	case st == nil:
		// Unknown sender: nothing to patch. Ask for a full report.
		return c.ackLocked(h.Sender, h.Seq, true), nil
	case h.Epoch != c.epoch:
		// The delta targets another collector incarnation; after a fail-over
		// the replica here may lag the sender's acked base, so only a full
		// report is safe. The ack carries the current epoch.
		return c.ackLocked(h.Sender, h.Seq, true), nil
	case h.Boot != st.boot:
		// The sender restarted since our replica was built.
		st.gaps++
		return c.ackLocked(h.Sender, h.Seq, true), nil
	case h.Seq <= st.lastSeq:
		// Already applied (retransmit after a lost ack, or a duplicate).
		st.stale++
		st.dropped = max(st.dropped, h.Dropped)
		c.stats.StaleReports++
		return c.ackLocked(h.Sender, h.Seq, false), nil
	case h.BaseSeq != st.lastSeq:
		// Encoded against a base we do not hold (an unacked report was lost,
		// or ours is newer via a path we cannot see). Resync.
		st.gaps++
		return c.ackLocked(h.Sender, h.Seq, true), nil
	}
	rest, err := c.dcodec.ApplyDelta(st.snap, payload)
	if err != nil {
		c.stats.DecodeErrors++
		return c.ackLocked(h.Sender, h.Seq, true), err
	}
	if len(rest) != 0 {
		c.stats.DecodeErrors++
		return c.ackLocked(h.Sender, h.Seq, true),
			fmt.Errorf("vswitch: %d trailing bytes after delta report", len(rest))
	}
	st.lastSeq = h.Seq
	st.lastMsg = c.stats.Messages
	st.deltas++
	st.dropped = max(st.dropped, h.Dropped)
	c.stats.DeltaReports++
	return c.ackLocked(h.Sender, h.Seq, false), nil
}

// fragAssembly is one sender's in-progress report reassembly. One report per
// sender is pending at a time: a fragment announcing a different (id, total,
// count) resets the buffer — the sender retransmits whole reports, so the
// newest report wins and an abandoned one costs nothing.
type fragAssembly struct {
	id    uint32
	buf   []byte
	got   []uint64 // bitmap of received fragment indexes
	have  int
	count int
}

// handleFragLocked buffers one fragment and, when its report completes,
// dispatches the reassembled frame as if it had arrived whole. An incomplete
// report produces no ack — the sender's retransmit resends every fragment.
func (c *Collector) handleFragLocked(b []byte) ([]byte, error) {
	f, err := decodeFragMsg(b)
	if err != nil {
		c.stats.DecodeErrors++
		return nil, err
	}
	if c.frags == nil {
		c.frags = make(map[uint16]*fragAssembly)
	}
	fa := c.frags[f.sender]
	if fa == nil {
		fa = &fragAssembly{}
		c.frags[f.sender] = fa
	}
	if fa.id != f.id || len(fa.buf) != f.total || fa.count != f.count {
		fa.id = f.id
		fa.buf = make([]byte, f.total)
		fa.got = make([]uint64, (f.count+63)/64)
		fa.have = 0
		fa.count = f.count
	}
	if fa.got[f.idx/64]&(1<<(f.idx%64)) == 0 {
		fa.got[f.idx/64] |= 1 << (f.idx % 64)
		fa.have++
	}
	stride := (f.total + f.count - 1) / f.count
	copy(fa.buf[f.idx*stride:], f.chunk)
	if fa.have < fa.count {
		return nil, nil
	}
	// Complete: drop the assembly before dispatch so a report whose inner
	// checksum fails (a fragment bitflip the fragment CRC happened to miss,
	// or chunks mixed across sender restarts reusing a seq) is rebuilt from
	// scratch by the retransmit instead of retried against the same bytes.
	frame := fa.buf
	delete(c.frags, f.sender)
	return c.dispatchLocked(frame, true)
}
