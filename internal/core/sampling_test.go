package core_test

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// TestSkipSamplingMatchesPerDraw compares the node-hit distributions of the
// geometric skip sampler and the historical per-packet-draw sampler with a
// two-sample chi-squared test over the H lattice nodes plus the not-sampled
// mass. The two realize the same Bernoulli(H/V) × uniform-node process, so
// the statistic must stay near its degrees of freedom.
func TestSkipSamplingMatchesPerDraw(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	const n = 2_000_000

	hits := func(seed uint64, perDraw bool) []float64 {
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, V: 10 * h, Seed: seed})
		if perDraw {
			eng.ForcePerDrawSampling()
		} else if !eng.UsesSkipSampling() {
			t.Fatal("V=10H engine should use skip sampling")
		}
		r := fastrand.New(seed + 1000)
		for i := 0; i < n; i++ {
			eng.Update(r.Uint64())
		}
		out := make([]float64, h+1)
		var sampled uint64
		for node := 0; node < h; node++ {
			u := eng.NodeUpdates(node)
			out[node] = float64(u)
			sampled += u
		}
		out[h] = float64(n - sampled) // not-sampled cell
		return out
	}

	a := hits(1, false) // geometric skip
	b := hits(2, true)  // per-packet draw

	chi2 := 0.0
	for i := range a {
		if a[i]+b[i] == 0 {
			continue
		}
		d := a[i] - b[i]
		chi2 += d * d / (a[i] + b[i])
	}
	// 25 node cells + 1 miss cell → 25 degrees of freedom; the 99.9th
	// percentile of chi-squared(25) is ≈ 52.6.
	if chi2 > 52.6 {
		t.Fatalf("chi-squared %.1f: skip and per-draw node-hit distributions diverge\nskip:     %v\nper-draw: %v", chi2, a, b)
	}
}

// TestUpdateBatchMatchesSequential: batched updates must consume the RNG and
// mutate state exactly as the equivalent sequence of single updates — same
// per-node hit counts and identical Output, for V = H and V > H alike.
func TestUpdateBatchMatchesSequential(t *testing.T) {
	for _, vMult := range []int{1, 10} {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		h := dom.Size()
		cfg := core.Config{Epsilon: 0.02, Delta: 0.05, V: vMult * h, Seed: 77}

		const n = 120_000
		keys := make([]uint64, n)
		r := fastrand.New(78)
		for i := range keys {
			keys[i] = gen2D(r)
		}

		seq := core.New(dom, cfg)
		for _, k := range keys {
			seq.Update(k)
		}

		bat := core.New(dom, cfg)
		// Uneven batch sizes, including empty and size-1 batches.
		sizes := []int{1, 0, 7, 64, 1, 1000, 3, 8192, 0, striding(n)}
		i := 0
		for i < n {
			for _, sz := range sizes {
				if i >= n {
					break
				}
				end := i + sz
				if end > n {
					end = n
				}
				bat.UpdateBatch(keys[i:end])
				i = end
			}
		}

		if seq.N() != bat.N() || seq.Weight() != bat.Weight() {
			t.Fatalf("V=%dH: N/Weight diverge: (%d,%d) vs (%d,%d)",
				vMult, seq.N(), seq.Weight(), bat.N(), bat.Weight())
		}
		for node := 0; node < h; node++ {
			if a, b := seq.NodeUpdates(node), bat.NodeUpdates(node); a != b {
				t.Fatalf("V=%dH node %d: %d sequential updates vs %d batched", vMult, node, a, b)
			}
		}
		a, b := seq.Output(0.05), bat.Output(0.05)
		if len(a) != len(b) {
			t.Fatalf("V=%dH: output lengths differ: %d vs %d", vMult, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("V=%dH: output %d differs: %+v vs %+v", vMult, i, a[i], b[i])
			}
		}
	}
}

// striding returns a batch size that drains whatever remains.
func striding(n int) int { return n }

// TestSkipSamplingWeighted: the skip path must keep weighted estimates
// unbiased — a 50%-weight flow at V = 4H lands within the sampling noise.
func TestSkipSamplingWeighted(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	h := dom.Size()
	eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, V: 4 * h, Seed: 21})
	if !eng.UsesSkipSampling() {
		t.Fatal("V=4H engine should use skip sampling")
	}
	r := fastrand.New(22)
	var total uint64
	k := ip4(9, 9, 9, 9)
	for i := 0; i < 400_000; i++ {
		w := 1 + r.Uint64n(3)
		total += w
		if r.Uint64n(2) == 0 {
			eng.UpdateWeighted(k, w)
		} else {
			eng.UpdateWeighted(uint32(r.Uint64()), w)
		}
	}
	if eng.Weight() != total {
		t.Fatalf("Weight = %d, want %d", eng.Weight(), total)
	}
	_, up := eng.EstimateFrequency(k, dom.FullNode())
	if up < 0.35*float64(total) || up > 0.65*float64(total) {
		t.Fatalf("skip-path weighted estimate %v for a 50%%-weight flow (total %d)", up, total)
	}
}

// TestBackendSpecialization: the default configuration must run devirtualized
// (concrete Space Saving), the Heap backend must not.
func TestBackendSpecialization(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	ssEng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 1})
	if !ssEng.UsesConcreteBackend() {
		t.Error("Space Saving backend should bypass interface dispatch")
	}
	heapEng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 1, Backend: core.HeapBackend})
	if heapEng.UsesConcreteBackend() {
		t.Error("Heap backend must keep interface dispatch")
	}
}
