package core_test

import (
	"fmt"
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/sketch"
)

// chkCfg builds an engine config selecting the CHK backend.
func chkCfg(dom interface{ Size() int }, vMult int, seed uint64) core.Config {
	return core.Config{
		Epsilon: 0.05, Delta: 0.05, V: vMult * dom.Size(), Seed: seed,
		Backend: core.CHKBackend,
	}
}

// TestCHKBackendSelected: the CHK config devirtualizes into the concrete
// sketch mirror and stays snapshottable.
func TestCHKBackendSelected(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, chkCfg(dom, 1, 1))
	if !eng.UsesCHKBackend() {
		t.Fatal("CHKBackend config did not select the concrete CHK path")
	}
	if eng.UsesConcreteBackend() {
		t.Fatal("CHK engine also claims the Space Saving concrete path")
	}
	if !eng.Snapshottable() {
		t.Fatal("CHK engine must be snapshottable")
	}
}

// TestCHKBatchMatchesSequential: the node-grouped batch path over CHK
// sketches is bit-identical to per-packet updates — grouping permutes order
// across nodes but preserves it within each node, and each node owns its own
// decay RNG, so state transitions replay exactly.
func TestCHKBatchMatchesSequential(t *testing.T) {
	gen1 := func(r *fastrand.Source) uint32 { return uint32(r.Uint64n(1 << 14)) }
	gen2 := func(r *fastrand.Source) uint64 {
		return hierarchy.Pack2D(uint32(r.Uint64n(1<<10)), uint32(r.Uint64n(1<<10)))
	}
	run := func(t *testing.T, dom *hierarchy.Domain[uint32], vMult int, weighted bool) {
		runCHKBatchDifferential(t, dom, gen1, vMult, weighted)
	}
	for _, vMult := range []int{1, 10} {
		for _, weighted := range []bool{false, true} {
			t.Run(fmt.Sprintf("1D-Bytes/V=%dH/weighted=%v", vMult, weighted), func(t *testing.T) {
				run(t, hierarchy.NewIPv4OneDim(hierarchy.Bytes), vMult, weighted)
			})
			t.Run(fmt.Sprintf("2D-Bytes/V=%dH/weighted=%v", vMult, weighted), func(t *testing.T) {
				runCHKBatchDifferential(t, hierarchy.NewIPv4TwoDim(hierarchy.Bytes), gen2, vMult, weighted)
			})
		}
	}
}

func runCHKBatchDifferential[K comparable](t *testing.T, dom *hierarchy.Domain[K], gen func(*fastrand.Source) K, vMult int, weighted bool) {
	cfg := chkCfg(dom, vMult, 1234)
	seq := core.New(dom, cfg)
	bat := core.New(dom, cfg)
	if !bat.UsesCHKBackend() {
		t.Fatal("differential needs the concrete CHK backend")
	}
	r := fastrand.New(4321)
	var seqSnap, batSnap core.EngineSnapshot[K]
	for round := 0; round < 3; round++ {
		for _, n := range []int{1, 63, 64, 65, 4096} {
			keys := make([]K, n)
			ws := make([]uint64, n)
			for i := range keys {
				keys[i] = gen(r)
				switch r.Uint64n(8) {
				case 0:
					ws[i] = 0
				case 1:
					ws[i] = 1 + r.Uint64n(1000)
				default:
					ws[i] = 1 + r.Uint64n(4)
				}
			}
			if weighted {
				for i, k := range keys {
					seq.UpdateWeighted(k, ws[i])
				}
				bat.UpdateWeightedBatch(keys, ws)
			} else {
				for _, k := range keys {
					seq.Update(k)
				}
				bat.UpdateBatch(keys)
			}
			tag := fmt.Sprintf("chk V=%dH weighted=%v n=%d round=%d", vMult, weighted, n, round)
			mustEqualSnapshots(t, tag, seq.SnapshotInto(&seqSnap), bat.SnapshotInto(&batSnap))
		}
	}
}

// TestCHKEngineOutputFindsHeavies: an end-to-end accuracy check against the
// exact oracle — a CHK-backed engine's HHH output at θ must recall the
// planted heavy prefixes. CHK under-estimates, so anything reported is a
// true heavy (no false positives vs the exact conditioned set is not
// guaranteed — RHHH itself admits ε slack — but recall of clear heavies is).
func TestCHKEngineOutputFindsHeavies(t *testing.T) {
	const theta = 0.05
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, chkCfg(dom, 1, 7))
	oracle := exact.New(dom)
	r := fastrand.New(99)
	heavy := uint32(0x0a0b0c0d)
	for i := 0; i < 400_000; i++ {
		var k uint32
		if r.Uint64n(10) < 3 { // 30% of the stream on one /32
			k = heavy
		} else {
			k = uint32(r.Uint64n(1 << 28))
		}
		eng.Update(k)
		oracle.Add(k)
	}
	out := eng.Output(theta)
	found := false
	for _, res := range out {
		if res.Key == heavy && res.Node == dom.FullNode() {
			found = true
			f := float64(oracle.Frequency(heavy, dom.FullNode()))
			if res.Upper > f*1.25 {
				t.Errorf("heavy upper bound %.0f far above true %.0f", res.Upper, f)
			}
			if res.Lower <= 0 {
				t.Errorf("heavy lower bound %.0f, want > 0", res.Lower)
			}
		}
	}
	if !found {
		t.Fatalf("planted heavy /32 missing from CHK engine output (%d results)", len(out))
	}
}

// TestCHKEngineSnapshotRoundtrip: snapshot → binary codec → fresh CHK engine
// restore. Reload may re-home equal-count keys into different slots, so
// per-node comparison is as key→count sets, not entry order.
func TestCHKEngineSnapshotRoundtrip(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, chkCfg(dom, 1, 11))
	r := fastrand.New(12)
	for i := 0; i < 300_000; i++ {
		eng.Update(hierarchy.Pack2D(uint32(r.Uint64n(1<<12)), uint32(r.Uint64n(1<<12))))
	}
	snap := eng.Snapshot()
	enc, err := snap.AppendBinary(nil)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	dec, rest, err := core.DecodeEngineSnapshot[uint64](enc)
	if err != nil {
		t.Fatalf("DecodeEngineSnapshot: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	fresh := core.New(dom, chkCfg(dom, 1, 999)) // different seed on purpose
	if err := fresh.LoadSnapshot(dec); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if fresh.N() != eng.N() || fresh.Weight() != eng.Weight() {
		t.Fatalf("restored N/Weight (%d,%d), want (%d,%d)",
			fresh.N(), fresh.Weight(), eng.N(), eng.Weight())
	}
	re := fresh.Snapshot()
	if len(re.Nodes) != len(snap.Nodes) {
		t.Fatalf("restored %d nodes, want %d", len(re.Nodes), len(snap.Nodes))
	}
	for n := range snap.Nodes {
		a, b := &snap.Nodes[n], &re.Nodes[n]
		if a.N != b.N || len(a.Keys) != len(b.Keys) {
			t.Fatalf("node %d: N=%d len=%d vs N=%d len=%d", n, a.N, len(a.Keys), b.N, len(b.Keys))
		}
		want := make(map[uint64]uint64, len(a.Keys))
		for i, k := range a.Keys {
			want[k] = a.Upper[i]
		}
		for i, k := range b.Keys {
			if want[k] != b.Upper[i] {
				t.Fatalf("node %d key %d: restored count %d, want %d", n, k, b.Upper[i], want[k])
			}
		}
	}
	// The restored engine keeps taking updates and answering queries.
	fresh.Update(hierarchy.Pack2D(1, 1))
	_ = fresh.Output(0.01)
}

// TestCHKEngineMerge: CHK snapshots flow through the engine-level merger —
// the snapshot is the backend-agnostic currency, so sharded deployments work
// unchanged on CHK.
func TestCHKEngineMerge(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	a := core.New(dom, chkCfg(dom, 1, 21))
	b := core.New(dom, chkCfg(dom, 1, 22))
	r := fastrand.New(23)
	for i := 0; i < 100_000; i++ {
		k := uint32(r.Uint64n(1 << 10))
		a.Update(k)
		b.Update(uint32(r.Uint64n(1 << 10)))
		_ = k
	}
	var sm core.SnapshotMerger[uint32]
	merged := sm.Merge(nil, a.Snapshot(), b.Snapshot())
	if merged.Packets != a.N()+b.N() {
		t.Fatalf("merged packets %d, want %d", merged.Packets, a.N()+b.N())
	}
	if out := merged.Output(dom, 0.01); len(out) == 0 {
		t.Fatal("merged CHK snapshot produced no HHH output")
	}
}

// TestCHKEngineResetReseed: Reset + Reseed with the construction seed
// replays a CHK engine bit-identically — the per-node decay RNGs restart
// from the same derivation New used.
func TestCHKEngineResetReseed(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	const seed = 31
	eng := core.New(dom, chkCfg(dom, 1, seed))
	feed := func() {
		r := fastrand.New(32)
		for i := 0; i < 150_000; i++ {
			eng.Update(uint32(r.Uint64n(1 << 11)))
		}
	}
	feed()
	var first, second core.EngineSnapshot[uint32]
	eng.SnapshotInto(&first)
	// SnapshotInto reuses dst arrays; take a deep copy via the codec.
	enc, err := first.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	firstCopy, _, err := core.DecodeEngineSnapshot[uint32](enc)
	if err != nil {
		t.Fatal(err)
	}
	eng.Reset()
	eng.Reseed(seed)
	feed()
	mustEqualSnapshots(t, "reset+reseed", firstCopy, eng.SnapshotInto(&second))
}

// TestUpdateBatchInterfaceBackends: the Heap and Count-Min backends have no
// concrete batch kernel — applyGrouped degrades to per-sample interface
// dispatch — but the batched entry points must still produce exactly the
// state the sequential path does, for unit and weighted batches alike.
func TestUpdateBatchInterfaceBackends(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cfg := core.Config{Epsilon: 0.05, Delta: 0.05, V: dom.Size(), Seed: 41}
	build := map[string]func() *core.Engine[uint32]{
		"heap": func() *core.Engine[uint32] {
			c := cfg
			c.Backend = core.HeapBackend
			return core.New(dom, c)
		},
		"countmin": func() *core.Engine[uint32] {
			return core.NewWithInstances(dom, cfg,
				core.CountMinInstances(dom, 0.01, 0.01, func(k uint32) uint64 {
					return sketch.Hash64(uint64(k))
				}))
		},
	}
	for name, mk := range build {
		for _, weighted := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/weighted=%v", name, weighted), func(t *testing.T) {
				seq, bat := mk(), mk()
				if bat.UsesConcreteBackend() || bat.UsesCHKBackend() {
					t.Fatalf("%s backend unexpectedly devirtualized", name)
				}
				r := fastrand.New(42)
				n := 40_000
				keys := make([]uint32, n)
				ws := make([]uint64, n)
				for i := range keys {
					keys[i] = uint32(r.Uint64n(1 << 12))
					ws[i] = r.Uint64n(5) // includes zero weights
				}
				if weighted {
					for i, k := range keys {
						seq.UpdateWeighted(k, ws[i])
					}
				} else {
					for _, k := range keys {
						seq.Update(k)
					}
				}
				for off := 0; off < n; off += 777 {
					end := min(off+777, n)
					if weighted {
						bat.UpdateWeightedBatch(keys[off:end], ws[off:end])
					} else {
						bat.UpdateBatch(keys[off:end])
					}
				}
				if seq.N() != bat.N() || seq.Weight() != bat.Weight() {
					t.Fatalf("N/Weight diverge: (%d,%d) vs (%d,%d)",
						seq.N(), seq.Weight(), bat.N(), bat.Weight())
				}
				for node := 0; node < dom.Size(); node++ {
					if a, b := seq.NodeUpdates(node), bat.NodeUpdates(node); a != b {
						t.Fatalf("node %d: %d vs %d updates", node, a, b)
					}
				}
				a, b := seq.Output(0.05), bat.Output(0.05)
				if len(a) != len(b) {
					t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("output %d differs: %+v vs %+v", i, a[i], b[i])
					}
				}
			})
		}
	}
}
