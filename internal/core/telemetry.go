package core

import "rhhh/internal/telemetry"

// TelemetryInto publishes the engine's update-path counters and counter-
// backend occupancy into st. It must be called by the engine's owning
// goroutine (the ownership model of internal/telemetry): it reads the
// owner-side counters and walks the per-node backends, then stores the
// aggregates into st's atomic cells for scrapers. Cost is O(H) loads —
// call it at publication boundaries (worker publish, window flush, reporter
// tick), never per packet.
func (e *Engine[K]) TelemetryInto(st *telemetry.EngineStats) {
	if st == nil {
		return
	}
	st.Packets.Store(e.packets)
	st.Weight.Store(e.Weight())
	st.Samples.Store(e.samples)
	st.Batches.Store(e.batches)
	var occ, slots, stash, evict, decays, takeovers uint64
	switch {
	case e.ss != nil:
		for _, s := range e.ss {
			occ += uint64(s.Len())
			slots += uint64(s.Capacity())
			stash += uint64(s.StashLen())
			evict += s.Evictions()
		}
	case e.chk != nil:
		for _, c := range e.chk {
			occ += uint64(c.Len())
			slots += uint64(c.Capacity())
			stash += uint64(c.StashLen())
			decays += c.Decays()
			takeovers += c.Takeovers()
		}
	default:
		// Interface backends expose no occupancy; the update counters above
		// still publish.
	}
	st.Occupied.Store(occ)
	st.Slots.Store(slots)
	st.Stash.Store(stash)
	st.Evictions.Store(evict)
	st.Decays.Store(decays)
	st.Takeovers.Store(takeovers)
}

// Samples returns the number of sampled updates forwarded to a lattice
// node (the ~N·H/V·r updates the RHHH estimator actually applied).
func (e *Engine[K]) Samples() uint64 { return e.samples }
