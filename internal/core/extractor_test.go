package core_test

import (
	"fmt"
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
)

// equalResults requires bit-identical result slices (same order, same float
// bits).
func equalResults[K comparable](t *testing.T, label string, got, want []core.Result[K]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, reference has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs:\n  got  %+v\n  want %+v", label, i, got[i], want[i])
		}
	}
}

// snapshotInstances rebuilds Instance adapters over a snapshot's per-node
// state, so the map reference can answer the exact query the snapshot path
// answers: LoadSnapshot restores candidate order and bounds bit-for-bit.
func snapshotInstances[K comparable](es *core.EngineSnapshot[K]) []core.Instance[K] {
	sums := make([]*spacesaving.Summary[K], len(es.Nodes))
	for i := range es.Nodes {
		capacity := es.Nodes[i].Cap
		if capacity < 1 {
			capacity = 1
		}
		sums[i] = spacesaving.New[K](capacity)
		sums[i].LoadSnapshot(&es.Nodes[i])
	}
	return core.WrapSummaries(sums)
}

// TestExtractorMatchesMapReference is the differential property test pinning
// the flat Extractor bit-identical to the retired map-based implementation:
// live instances and snapshot-backed extraction, 1D and 2D domains, a θ
// sweep, a reused Extractor across every query (so stale scratch would
// surface), and both the incremental and full paths.
func TestExtractorMatchesMapReference(t *testing.T) {
	thetas := []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.3}

	t.Run("2D-Bytes", func(t *testing.T) {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		diffTestDomain(t, dom, func(r *fastrand.Source) uint64 { return gen2D(r) }, thetas)
	})
	t.Run("1D-Bytes", func(t *testing.T) {
		dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
		diffTestDomain(t, dom, func(r *fastrand.Source) uint32 {
			return uint32(gen2D(r) >> 32) // the skewed source dimension
		}, thetas)
	})
	t.Run("2D-Nibbles", func(t *testing.T) {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Nibbles)
		diffTestDomain(t, dom, func(r *fastrand.Source) uint64 { return gen2D(r) }, thetas)
	})
}

func diffTestDomain[K comparable](t *testing.T, dom *hierarchy.Domain[K], gen func(*fastrand.Source) K, thetas []float64) {
	for seed := uint64(1); seed <= 3; seed++ {
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: seed})
		r := fastrand.New(seed * 13)
		ex := core.NewExtractor(dom) // reused across all queries below
		for i := 0; i < 30000; i++ {
			eng.Update(gen(r))
		}
		es := eng.Snapshot()
		inst := snapshotInstances(es)
		n := float64(es.Weight)

		for _, theta := range thetas {
			label := fmt.Sprintf("seed=%d θ=%g", seed, theta)
			want := extractMapRef(dom, inst, n, float64(es.V), corrOf(es), theta)
			equalResults(t, label+" live", eng.Output(theta), want)
			equalResults(t, label+" snapshot", ex.ExtractSnapshot(es, theta), want)
			equalResults(t, label+" one-shot", es.Output(dom, theta), want)
		}

		// Grow the stream a little and re-query the same extractor: its N
		// moved by under the growth bound, so this exercises the seeded
		// incremental path against a fresh full extraction.
		for i := 0; i < 3000; i++ {
			eng.Update(gen(r))
		}
		es2 := eng.Snapshot()
		inst2 := snapshotInstances(es2)
		n2 := float64(es2.Weight)
		for _, theta := range thetas {
			label := fmt.Sprintf("seed=%d θ=%g incr", seed, theta)
			want := extractMapRef(dom, inst2, n2, float64(es2.V), corrOf(es2), theta)
			equalResults(t, label, ex.ExtractSnapshot(es2, theta), want)

			full := core.NewExtractor(dom)
			full.SetMaxGrowth(-1)
			equalResults(t, label+" full-path", full.ExtractSnapshot(es2, theta), want)
		}
	}
}

// corrOf reproduces the snapshot query's sampling correction term.
func corrOf[K comparable](es *core.EngineSnapshot[K]) float64 {
	return core.SamplingCorrection(float64(es.Weight), es.V, es.R, es.Delta)
}

// TestExtractorMergedSnapshots runs the differential test over merged
// snapshots — the sharded/distributed query shape — including a repeated
// merge into the same destination (the unchanged-input skip) and a merge
// after one source advanced.
func TestExtractorMergedSnapshots(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	engs := make([]*core.Engine[uint64], 3)
	rngs := make([]*fastrand.Source, 3)
	for i := range engs {
		engs[i] = core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: uint64(i + 1)})
		rngs[i] = fastrand.New(uint64(i+1) * 101)
		for j := 0; j < 20000; j++ {
			engs[i].Update(gen2D(rngs[i]))
		}
	}
	snaps := make([]*core.EngineSnapshot[uint64], 3)
	bufs := make([]core.EngineSnapshot[uint64], 3)
	for i, e := range engs {
		snaps[i] = e.SnapshotInto(&bufs[i])
	}
	var sm core.SnapshotMerger[uint64]
	var merged core.EngineSnapshot[uint64]
	ex := core.NewExtractor[uint64](dom)

	check := func(label string) {
		t.Helper()
		sm.Merge(&merged, snaps...)
		inst := snapshotInstances(&merged)
		n := float64(merged.Weight)
		for _, theta := range []float64{0.01, 0.05, 0.2} {
			want := extractMapRef(dom, inst, n, float64(merged.V), corrOf(&merged), theta)
			equalResults(t, fmt.Sprintf("%s θ=%g", label, theta), ex.ExtractSnapshot(&merged, theta), want)
		}
	}
	check("merged")
	check("merged unchanged") // repeat: merge skip + extraction shortcut
	for j := 0; j < 2000; j++ {
		engs[1].Update(gen2D(rngs[1]))
	}
	engs[1].SnapshotInto(&bufs[1])
	check("merged grown") // one input advanced: incremental path over a merge
}

// TestExtractorUnchangedSnapshotShortcut pins the warm shortcut: re-querying
// an unchanged snapshot at the same θ returns the identical retained slice,
// and a mutation (new capture) breaks the shortcut.
func TestExtractorUnchangedSnapshotShortcut(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 7})
	r := fastrand.New(99)
	for i := 0; i < 30000; i++ {
		eng.Update(gen2D(r))
	}
	var buf core.EngineSnapshot[uint64]
	es := eng.SnapshotInto(&buf)
	ex := core.NewExtractor[uint64](dom)

	first := ex.ExtractSnapshot(es, 0.05)
	again := ex.ExtractSnapshot(es, 0.05)
	if len(first) == 0 || &first[0] != &again[0] || len(first) != len(again) {
		t.Fatal("unchanged snapshot did not short-circuit to the retained result")
	}
	// An unchanged engine re-captured into the same buffer keeps the
	// generation, so the shortcut still holds.
	es = eng.SnapshotInto(&buf)
	again = ex.ExtractSnapshot(es, 0.05)
	if &first[0] != &again[0] {
		t.Fatal("no-op recapture invalidated the shortcut")
	}
	// New traffic invalidates it and changes the answer's backing state.
	for i := 0; i < 5000; i++ {
		eng.Update(gen2D(r))
	}
	es = eng.SnapshotInto(&buf)
	fresh := core.NewExtractor[uint64](dom).ExtractSnapshot(es, 0.05)
	got := ex.ExtractSnapshot(es, 0.05)
	equalResults(t, "after growth", got, fresh)
}

// TestExtractorWarmZeroAlloc asserts the acceptance criterion at the core
// layer: a warm Extractor performs zero allocations per snapshot query, with
// the snapshot re-captured (changed generation) every iteration so the full
// extraction — not just the unchanged shortcut — is measured.
func TestExtractorWarmZeroAlloc(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 3})
	r := fastrand.New(17)
	for i := 0; i < 200000; i++ {
		eng.Update(gen2D(r))
	}
	ex := core.NewExtractor[uint64](dom)
	var buf core.EngineSnapshot[uint64]
	key := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	warm := func() {
		eng.Update(key)
		es := eng.SnapshotInto(&buf)
		if out := ex.ExtractSnapshot(es, 0.05); len(out) == 0 {
			t.Fatal("no heavy hitters in the warm query")
		}
	}
	for i := 0; i < 16; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("warm snapshot query allocates %v times per run, want 0", allocs)
	}
}
