package core

import (
	"testing"

	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// TestEngineDeltaChainBitIdentical drives a live engine, captures snapshots at
// report boundaries, and maintains a remote replica fed only deltas (each
// encoded against the replica's current state, as the acked-report protocol
// does). After every apply the replica must serialize bit-identically to the
// direct snapshot.
func TestEngineDeltaChainBitIdentical(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := New(dom, Config{Epsilon: 0.02, Delta: 0.1, V: 2 * dom.Size(), Seed: 11})
	rng := fastrand.New(5)

	var cur, base EngineSnapshot[uint64]
	var replica *EngineSnapshot[uint64]
	var codec DeltaCodec[uint64]
	var gens []uint64

	eng.SnapshotInto(&base)
	gens = base.NodeGens(gens)

	for step := 0; step < 60; step++ {
		// Vary batch sizes so some reports move few lattice nodes.
		n := 1 + int(rng.Uint64n(uint64(50+step*20)))
		for i := 0; i < n; i++ {
			eng.Update(rng.Uint64n(1 << 16))
		}
		eng.SnapshotInto(&cur)

		delta, _, err := codec.AppendDelta(nil, &cur, &base, gens)
		if err != nil {
			t.Fatalf("step %d: encode: %v", step, err)
		}
		if replica == nil {
			// Protocol bootstrap: the first report is a full snapshot.
			replica = &EngineSnapshot[uint64]{}
			replica.CopyFrom(&cur)
		} else {
			rest, err := codec.ApplyDelta(replica, delta)
			if err != nil {
				t.Fatalf("step %d: apply: %v", step, err)
			}
			if len(rest) != 0 {
				t.Fatalf("step %d: %d trailing bytes", step, len(rest))
			}
		}

		want, err := cur.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replica.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("step %d: replica diverged from direct snapshot", step)
		}

		// Ack: the sender's base advances to what the replica now holds.
		base.CopyFrom(&cur)
		gens = cur.NodeGens(gens)
	}
}

// TestEngineDeltaStaleBase pins the unacked-window case: several reports are
// built against the same base (acks lost), and any single one of them applied
// to a replica holding that base reproduces its snapshot exactly.
func TestEngineDeltaStaleBase(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := New[uint32](dom, Config{Epsilon: 0.05, Delta: 0.2, Seed: 3})
	rng := fastrand.New(9)
	for i := 0; i < 2000; i++ {
		eng.Update(uint32(rng.Uint64n(1 << 12)))
	}
	var base EngineSnapshot[uint32]
	eng.SnapshotInto(&base)
	gens := base.NodeGens(nil)

	var codec DeltaCodec[uint32]
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			eng.Update(uint32(rng.Uint64n(1 << 12)))
		}
		var cur EngineSnapshot[uint32]
		eng.SnapshotInto(&cur)
		delta, _, err := codec.AppendDelta(nil, &cur, &base, gens)
		if err != nil {
			t.Fatal(err)
		}
		var replica EngineSnapshot[uint32]
		replica.CopyFrom(&base)
		if _, err := codec.ApplyDelta(&replica, delta); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, _ := cur.AppendBinary(nil)
		got, _ := replica.AppendBinary(nil)
		if string(want) != string(got) {
			t.Fatalf("round %d: stale-base delta diverged", round)
		}
	}
}

// TestEngineDeltaZeroChange: an unchanged engine produces an empty-node delta
// that still applies cleanly and leaves the replica identical.
func TestEngineDeltaZeroChange(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := New[uint32](dom, Config{Epsilon: 0.1, Delta: 0.3, Seed: 1})
	for i := 0; i < 300; i++ {
		eng.Update(uint32(i % 40))
	}
	var cur EngineSnapshot[uint32]
	eng.SnapshotInto(&cur)
	gens := cur.NodeGens(nil)

	var codec DeltaCodec[uint32]
	delta, n, err := codec.AppendDelta(nil, &cur, &cur, gens)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unchanged snapshot encoded %d nodes", n)
	}
	if len(delta) > 16 {
		t.Fatalf("zero-change delta is %d bytes", len(delta))
	}
	var replica EngineSnapshot[uint32]
	replica.CopyFrom(&cur)
	if _, err := codec.ApplyDelta(&replica, delta); err != nil {
		t.Fatal(err)
	}
	want, _ := cur.AppendBinary(nil)
	got, _ := replica.AppendBinary(nil)
	if string(want) != string(got) {
		t.Fatal("zero-change apply diverged")
	}
}

// TestEngineDeltaRejectsCorruptInput: truncations and header corruption error
// out without panicking, and a failed apply leaves the replica untouched.
func TestEngineDeltaRejectsCorruptInput(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := New(dom, Config{Epsilon: 0.05, Delta: 0.2, Seed: 2})
	rng := fastrand.New(4)
	for i := 0; i < 3000; i++ {
		eng.Update(rng.Uint64n(1 << 10))
	}
	var base EngineSnapshot[uint64]
	eng.SnapshotInto(&base)
	gens := base.NodeGens(nil)
	for i := 0; i < 1000; i++ {
		eng.Update(rng.Uint64n(1 << 10))
	}
	var cur EngineSnapshot[uint64]
	eng.SnapshotInto(&cur)

	var codec DeltaCodec[uint64]
	delta, _, err := codec.AppendDelta(nil, &cur, &base, gens)
	if err != nil {
		t.Fatal(err)
	}

	var replica EngineSnapshot[uint64]
	replica.CopyFrom(&base)
	before, _ := replica.AppendBinary(nil)
	for cut := 0; cut < len(delta); cut++ {
		if rest, err := codec.ApplyDelta(&replica, delta[:cut]); err == nil && len(rest) == 0 {
			t.Fatalf("truncation at %d applied cleanly", cut)
		}
	}
	after, _ := replica.AppendBinary(nil)
	if string(before) != string(after) {
		t.Fatal("failed applies mutated the replica")
	}

	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), delta...)
		bad[rng.Uint64n(uint64(len(bad)))] ^= byte(1 << rng.Uint64n(8))
		var r EngineSnapshot[uint64]
		r.CopyFrom(&base)
		codec.ApplyDelta(&r, bad) // must not panic
	}

	// Shape mismatch: delta against a different lattice.
	small := hierarchy.NewIPv4TwoDim(hierarchy.Nibbles)
	eng2 := New(small, Config{Epsilon: 0.05, Delta: 0.2, Seed: 2})
	var wrong EngineSnapshot[uint64]
	eng2.SnapshotInto(&wrong)
	if _, err := codec.ApplyDelta(&wrong, delta); err == nil {
		t.Fatal("delta applied across mismatched lattices")
	}
}

// TestEngineSnapshotCopyFrom: deep copy, fresh generations, no sharing.
func TestEngineSnapshotCopyFrom(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := New[uint32](dom, Config{Epsilon: 0.1, Delta: 0.3, Seed: 8})
	for i := 0; i < 500; i++ {
		eng.Update(uint32(i % 30))
	}
	src := eng.Snapshot()
	var dst EngineSnapshot[uint32]
	dst.CopyFrom(src)

	want, _ := src.AppendBinary(nil)
	got, _ := dst.AppendBinary(nil)
	if string(want) != string(got) {
		t.Fatal("copy differs from source")
	}
	for i := range dst.Nodes {
		if dst.Nodes[i].Gen() == 0 || dst.Nodes[i].Gen() == src.Nodes[i].Gen() {
			t.Fatalf("node %d: copy did not get a fresh generation", i)
		}
		if len(src.Nodes[i].Keys) > 0 {
			src.Nodes[i].Upper[0]++
			if dst.Nodes[i].Upper[0] == src.Nodes[i].Upper[0] {
				t.Fatalf("node %d: copy shares storage", i)
			}
			src.Nodes[i].Upper[0]--
		}
	}
}
