package core_test

import (
	"fmt"
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
)

// mustEqualSnapshots compares two engine snapshots bit for bit: every node's
// key/bound arrays in order, plus the stream counters.
func mustEqualSnapshots[K comparable](t *testing.T, tag string, a, b *core.EngineSnapshot[K]) {
	t.Helper()
	if a.Packets != b.Packets || a.Weight != b.Weight {
		t.Fatalf("%s: packets/weight (%d,%d) vs (%d,%d)", tag, a.Packets, a.Weight, b.Packets, b.Weight)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: %d vs %d nodes", tag, len(a.Nodes), len(b.Nodes))
	}
	for n := range a.Nodes {
		na, nb := &a.Nodes[n], &b.Nodes[n]
		if na.N != nb.N || na.Min != nb.Min || na.Cap != nb.Cap || len(na.Keys) != len(nb.Keys) {
			t.Fatalf("%s node %d: header (N=%d Min=%d Cap=%d len=%d) vs (N=%d Min=%d Cap=%d len=%d)",
				tag, n, na.N, na.Min, na.Cap, len(na.Keys), nb.N, nb.Min, nb.Cap, len(nb.Keys))
		}
		for i := range na.Keys {
			if na.Keys[i] != nb.Keys[i] || na.Upper[i] != nb.Upper[i] || na.Lower[i] != nb.Lower[i] {
				t.Fatalf("%s node %d entry %d: (%v,%d,%d) vs (%v,%d,%d)", tag, n, i,
					na.Keys[i], na.Upper[i], na.Lower[i], nb.Keys[i], nb.Upper[i], nb.Lower[i])
			}
		}
	}
}

// kernelChunkSizes straddle the spacesaving.BatchChunk plan boundary and
// include a multi-chunk burst.
var kernelChunkSizes = []int{1, 63, 64, 65, 4096}

// runBatchKernelDifferential drives one engine per-packet and one through
// the batch surfaces over the same stream and RNG seed, comparing engine
// snapshots after every batch. Covers unit and weighted batches.
func runBatchKernelDifferential[K comparable](t *testing.T, dom *hierarchy.Domain[K], gen func(*fastrand.Source) K, vMult int, weighted bool) {
	h := dom.Size()
	cfg := core.Config{Epsilon: 0.05, Delta: 0.05, V: vMult * h, Seed: 1234}
	seq := core.New(dom, cfg)
	// Two batched engines: one on whatever path the engine picks for this
	// state size (the direct apply, at this ε), one forced through the
	// windowed resolve/apply kernel — both must match the sequential path.
	bat := core.New(dom, cfg)
	ker := core.New(dom, cfg)
	ker.ForceKernelApply()
	if _ = spacesaving.BatchChunk; !bat.UsesConcreteBackend() {
		t.Fatal("differential needs the concrete Space Saving backend")
	}
	r := fastrand.New(4321)
	var seqSnap, batSnap, kerSnap core.EngineSnapshot[K]
	for round := 0; round < 3; round++ {
		for _, n := range kernelChunkSizes {
			keys := make([]K, n)
			ws := make([]uint64, n)
			for i := range keys {
				keys[i] = gen(r)
				switch r.Uint64n(8) {
				case 0:
					ws[i] = 0
				case 1:
					ws[i] = 1 + r.Uint64n(1000)
				default:
					ws[i] = 1 + r.Uint64n(4)
				}
			}
			if weighted {
				for i, k := range keys {
					seq.UpdateWeighted(k, ws[i])
				}
				bat.UpdateWeightedBatch(keys, ws)
				ker.UpdateWeightedBatch(keys, ws)
			} else {
				for _, k := range keys {
					seq.Update(k)
				}
				bat.UpdateBatch(keys)
				ker.UpdateBatch(keys)
			}
			tag := fmt.Sprintf("V=%dH weighted=%v n=%d round=%d", vMult, weighted, n, round)
			mustEqualSnapshots(t, tag, seq.SnapshotInto(&seqSnap), bat.SnapshotInto(&batSnap))
			mustEqualSnapshots(t, tag+"/kernel", seq.SnapshotInto(&seqSnap), ker.SnapshotInto(&kerSnap))
		}
	}
}

// TestBatchKernelDifferential is the kernel's acceptance property: for every
// domain shape, V = H and V > H, unit and weighted batches, and chunk sizes
// at and around the plan boundary, engine state after the pipelined batch
// path is bit-identical to the sequential per-packet path.
func TestBatchKernelDifferential(t *testing.T) {
	gen1 := func(r *fastrand.Source) uint32 { return uint32(r.Uint64n(1 << 14)) }
	gen2 := func(r *fastrand.Source) uint64 {
		return hierarchy.Pack2D(uint32(r.Uint64n(1<<10)), uint32(r.Uint64n(1<<10)))
	}
	for _, vMult := range []int{1, 10} {
		for _, weighted := range []bool{false, true} {
			t.Run(fmt.Sprintf("1D-Bytes/V=%dH/weighted=%v", vMult, weighted), func(t *testing.T) {
				runBatchKernelDifferential(t, hierarchy.NewIPv4OneDim(hierarchy.Bytes), gen1, vMult, weighted)
			})
			t.Run(fmt.Sprintf("2D-Bytes/V=%dH/weighted=%v", vMult, weighted), func(t *testing.T) {
				runBatchKernelDifferential(t, hierarchy.NewIPv4TwoDim(hierarchy.Bytes), gen2, vMult, weighted)
			})
			t.Run(fmt.Sprintf("1D-Nibbles/V=%dH/weighted=%v", vMult, weighted), func(t *testing.T) {
				runBatchKernelDifferential(t, hierarchy.NewIPv4OneDim(hierarchy.Nibbles), gen1, vMult, weighted)
			})
		}
	}
}

// TestBatchKernelDifferentialMultiDraw covers the r > 1 per-draw path, which
// UpdateBatch now also node-groups.
func TestBatchKernelDifferentialMultiDraw(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cfg := core.Config{Epsilon: 0.05, Delta: 0.05, V: 4 * dom.Size(), R: 3, Seed: 5}
	seq := core.New(dom, cfg)
	bat := core.New(dom, cfg)
	r := fastrand.New(6)
	var seqSnap, batSnap core.EngineSnapshot[uint32]
	for round := 0; round < 4; round++ {
		n := 1 + int(r.Uint64n(3000))
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(r.Uint64n(1 << 12))
		}
		for _, k := range keys {
			seq.Update(k)
		}
		bat.UpdateBatch(keys)
		mustEqualSnapshots(t, fmt.Sprintf("r=3 round %d", round), seq.SnapshotInto(&seqSnap), bat.SnapshotInto(&batSnap))
	}
}

// TestUpdateWeightedBatchHeapBackend: the interface-dispatch fallback (no
// concrete Space Saving summaries) must stay order-identical too.
func TestUpdateWeightedBatchHeapBackend(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cfg := core.Config{Epsilon: 0.05, Delta: 0.05, V: dom.Size(), Seed: 7, Backend: core.HeapBackend}
	seq := core.New(dom, cfg)
	bat := core.New(dom, cfg)
	r := fastrand.New(8)
	n := 50_000
	keys := make([]uint32, n)
	ws := make([]uint64, n)
	for i := range keys {
		keys[i] = uint32(r.Uint64n(1 << 12))
		ws[i] = r.Uint64n(5)
	}
	for i, k := range keys {
		seq.UpdateWeighted(k, ws[i])
	}
	for off := 0; off < n; off += 777 {
		end := off + 777
		if end > n {
			end = n
		}
		bat.UpdateWeightedBatch(keys[off:end], ws[off:end])
	}
	if seq.Weight() != bat.Weight() || seq.N() != bat.N() {
		t.Fatalf("N/Weight diverge: (%d,%d) vs (%d,%d)", seq.N(), seq.Weight(), bat.N(), bat.Weight())
	}
	for node := 0; node < dom.Size(); node++ {
		if a, b := seq.NodeUpdates(node), bat.NodeUpdates(node); a != b {
			t.Fatalf("node %d: %d vs %d updates", node, a, b)
		}
	}
	a, b := seq.Output(0.05), bat.Output(0.05)
	if len(a) != len(b) {
		t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestBatchSurfacesZeroAlloc pins the steady-state allocation contract of
// the batch kernel: once scratch has grown, unit and weighted batches
// allocate nothing on any path (skip sampling and per-draw alike).
func TestBatchSurfacesZeroAlloc(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	r := fastrand.New(9)
	keys := make([]uint64, 512)
	ws := make([]uint64, 512)
	for i := range keys {
		keys[i] = hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64()))
		ws[i] = 1 + r.Uint64n(9)
	}
	for _, vMult := range []int{1, 10} {
		for _, kernel := range []bool{false, true} {
			eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, V: vMult * dom.Size(), Seed: 2})
			if kernel {
				eng.ForceKernelApply()
			}
			// Warm: fill the summaries and grow all batch scratch.
			for i := 0; i < 400; i++ {
				eng.UpdateBatch(keys)
				eng.UpdateWeightedBatch(keys, ws)
			}
			if n := testing.AllocsPerRun(100, func() { eng.UpdateBatch(keys) }); n != 0 {
				t.Errorf("V=%dH kernel=%v UpdateBatch allocates %v/op", vMult, kernel, n)
			}
			if n := testing.AllocsPerRun(100, func() { eng.UpdateWeightedBatch(keys, ws) }); n != 0 {
				t.Errorf("V=%dH kernel=%v UpdateWeightedBatch allocates %v/op", vMult, kernel, n)
			}
		}
	}
}
