package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rhhh/internal/spacesaving"
)

// Engine snapshot delta encoding, version 1: an engine snapshot expressed
// relative to a base snapshot both sides share (the sender's last *acked*
// report in the vswitch protocol). Per-node mutation generations pick which
// nodes appear at all — a node whose generation still matches the base was
// never rewritten since, so it is omitted and the receiver keeps its copy —
// and each included node is entry-delta-coded against the base's node (see
// spacesaving.DeltaCoder). Layout:
//
//	byte    version (1)
//	uvarint H (must match the base)
//	uvarint packets, uvarint weight
//	uvarint number of encoded nodes
//	nodes × { uvarint node index (strictly ascending), node delta }
//
// decode(base, encode(base, es)) reproduces es bit-for-bit, which is what
// lets a collector fed only deltas stay bit-identical to one fed full state.
const engineDeltaVersion = 1

// NodeGens records each node's mutation generation into dst (reused when
// large enough) — the baseline a later AppendDelta call compares against.
func (es *EngineSnapshot[K]) NodeGens(dst []uint64) []uint64 {
	if cap(dst) < len(es.Nodes) {
		dst = make([]uint64, len(es.Nodes))
	}
	dst = dst[:len(es.Nodes)]
	for i := range es.Nodes {
		dst[i] = es.Nodes[i].Gen()
	}
	return dst
}

// CopyFrom makes es a deep copy of src (reusing buffers). The copy is a
// rewrite: es and each of its nodes get fresh mutation generations.
func (es *EngineSnapshot[K]) CopyFrom(src *EngineSnapshot[K]) {
	if cap(es.Nodes) < len(src.Nodes) {
		nodes := make([]spacesaving.Snapshot[K], len(src.Nodes))
		copy(nodes, es.Nodes)
		es.Nodes = nodes
	}
	es.Nodes = es.Nodes[:len(src.Nodes)]
	for i := range src.Nodes {
		es.Nodes[i].CopyFrom(&src.Nodes[i])
	}
	es.Packets, es.Weight = src.Packets, src.Weight
	es.V, es.R = src.V, src.R
	es.Epsilon, es.Delta = src.Epsilon, src.Delta
	es.gen = nextSnapGen()
	es.src = nil
}

// DeltaCodec encodes and applies engine snapshot deltas, retaining all
// scratch (the per-key coder and the decode staging nodes) across calls. Not
// safe for concurrent use.
type DeltaCodec[K comparable] struct {
	dc      spacesaving.DeltaCoder[K]
	staged  []spacesaving.Snapshot[K]
	nodeIdx []int
}

// AppendDelta appends the delta encoding of es relative to base, using
// baseGens (the base's per-node generations as recorded by NodeGens at
// capture time) to pick the changed nodes: node i is encoded iff its
// generation differs from baseGens[i] or is unknown (0). Returns the extended
// buffer and the number of nodes encoded. es and base must share the lattice
// and the carrier must have a key codec.
func (c *DeltaCodec[K]) AppendDelta(buf []byte, es, base *EngineSnapshot[K], baseGens []uint64) ([]byte, int, error) {
	putKey, _, ok := keyCodecFor[K]()
	if !ok {
		return nil, 0, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	if len(es.Nodes) != len(base.Nodes) || len(es.Nodes) != len(baseGens) {
		return nil, 0, fmt.Errorf("core: delta base shape mismatch: %d nodes vs %d (gens %d)",
			len(es.Nodes), len(base.Nodes), len(baseGens))
	}
	changed := 0
	for i := range es.Nodes {
		if g := es.Nodes[i].Gen(); g == 0 || g != baseGens[i] {
			changed++
		}
	}
	buf = append(buf, engineDeltaVersion)
	buf = binary.AppendUvarint(buf, uint64(len(es.Nodes)))
	buf = binary.AppendUvarint(buf, es.Packets)
	buf = binary.AppendUvarint(buf, es.Weight)
	buf = binary.AppendUvarint(buf, uint64(changed))
	for i := range es.Nodes {
		if g := es.Nodes[i].Gen(); g != 0 && g == baseGens[i] {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = c.dc.AppendDelta(buf, &es.Nodes[i], &base.Nodes[i], putKey)
	}
	return buf, changed, nil
}

// ApplyDelta patches es in place with a delta that was encoded against es's
// current contents, returning the remaining bytes. The apply is atomic: every
// node is decoded and validated into staging first, so on error es is
// untouched. Nodes absent from the delta keep their contents (and their
// generations — downstream per-node merge/index caches stay warm); patched
// nodes and the snapshot itself get fresh generations.
func (c *DeltaCodec[K]) ApplyDelta(es *EngineSnapshot[K], b []byte) ([]byte, error) {
	_, getKey, ok := keyCodecFor[K]()
	if !ok {
		return nil, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	if len(b) < 1 {
		return nil, errors.New("core: short engine delta")
	}
	if b[0] != engineDeltaVersion {
		return nil, fmt.Errorf("core: unknown engine delta version %d", b[0])
	}
	b = b[1:]
	var h, packets, weight, count uint64
	for _, p := range []*uint64{&h, &packets, &weight, &count} {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("core: truncated engine delta header")
		}
		*p, b = v, b[w:]
	}
	if h != uint64(len(es.Nodes)) {
		return nil, fmt.Errorf("core: engine delta has %d nodes, snapshot has %d", h, len(es.Nodes))
	}
	if count > h {
		return nil, fmt.Errorf("core: engine delta encodes %d of %d nodes", count, h)
	}
	if cap(c.staged) < int(count) {
		c.staged = append(c.staged, make([]spacesaving.Snapshot[K], int(count)-len(c.staged))...)
	}
	c.staged = c.staged[:count]
	c.nodeIdx = c.nodeIdx[:0]
	prev := -1
	for j := uint64(0); j < count; j++ {
		idx, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, errors.New("core: truncated engine delta node header")
		}
		b = b[w:]
		if idx >= h || int(idx) <= prev {
			return nil, fmt.Errorf("core: engine delta node index %d out of order", idx)
		}
		prev = int(idx)
		rest, err := c.dc.DecodeDelta(&c.staged[j], b, &es.Nodes[idx], getKey)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", idx, err)
		}
		b = rest
		c.nodeIdx = append(c.nodeIdx, int(idx))
	}
	// All nodes validated: swap the staged copies in (the displaced arrays
	// become the next call's staging storage).
	for j, idx := range c.nodeIdx {
		es.Nodes[idx], c.staged[j] = c.staged[j], es.Nodes[idx]
	}
	es.Packets, es.Weight = packets, weight
	es.gen = nextSnapGen()
	es.src = nil
	return b, nil
}
