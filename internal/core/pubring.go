package core

import (
	"sync/atomic"

	"rhhh/internal/spacesaving"
)

// PubSlot is one publication buffer owned by a PubRing: an engine snapshot
// plus the pin count concurrent readers use to keep its buffers alive across
// recycling. A slot's snapshot is immutable from the moment the producer
// publishes it (stores a pointer leading to it in an atomic cell) until the
// ring recycles the slot — which the ring only does once the slot is at
// least two publications stale and unpinned, so no reader that got past the
// pin-verify handshake can still be looking at it.
type PubSlot[K comparable] struct {
	snap EngineSnapshot[K]
	pins atomic.Int64
	// ownerEpoch is the ring publication count when this slot was last
	// filled. Producer-goroutine only; readers never touch it.
	ownerEpoch uint64
}

// Snapshot returns the slot's published engine snapshot. Valid while the
// slot is current, one publication behind, or pinned.
func (s *PubSlot[K]) Snapshot() *EngineSnapshot[K] { return &s.snap }

// Pin marks the slot as in use by a reader, excluding its buffers from
// recycling. The reader handshake is pin-then-verify: load the publication
// cell, Pin the slot it leads to, then re-load the cell — if the published
// epoch has advanced by 2 or more since the first load, Unpin and retry
// without touching the snapshot (the ring may already be rewriting it). A
// reader that observes a lag below 2 after pinning is safe: the ring only
// recycles slots at lag ≥ 2, and the pin of any reader that passed the
// verify is visible to the producer by then (both sides use sequentially
// consistent atomics), so the recycle check sees it.
func (s *PubSlot[K]) Pin() { s.pins.Add(1) }

// Unpin releases a Pin. Call it as soon as the reader is done with the
// snapshot (merged, copied, or verify failed) — a held pin forces the ring
// to allocate fresh buffers instead of recycling.
func (s *PubSlot[K]) Unpin() { s.pins.Add(-1) }

// PubRing publishes engine snapshots for a single producer goroutine while
// recycling the snapshot buffers of publications no reader can still
// observe, so steady-state re-publication allocates nothing. It is the
// allocation-free counterpart of Engine.PublishSnapshot: same immutability
// contract toward readers, same per-node buffer sharing with the previous
// publication, but reclamation is explicit (pin counts + staleness) instead
// of left to the garbage collector.
//
// All PubRing methods are producer-goroutine only; readers interact with
// slots exclusively through Pin/Unpin/Snapshot.
type PubRing[K comparable] struct {
	eng   *Engine[K]
	slots []*PubSlot[K]
	epoch uint64
	prot  []*EngineSnapshot[K] // scratch for the per-publication protected set
}

// NewPubRing builds a publication ring over the engine. Only the snapshot
// backends (Space Saving, CHK) are supported, as with SnapshotInto.
func NewPubRing[K comparable](eng *Engine[K]) *PubRing[K] {
	if eng.ss == nil && eng.chk == nil {
		panic("core: snapshots require the Space Saving or CHK backend")
	}
	return &PubRing[K]{eng: eng}
}

// Slots returns the number of slot buffers the ring has allocated — it
// stabilizes at three once recycling kicks in (current, one behind, and the
// recycle target) plus one per concurrently held pin.
func (r *PubRing[K]) Slots() int { return len(r.slots) }

// Publish captures the engine's state into a slot and returns it. prev must
// be the slot returned by the previous Publish (nil only on the first call).
// When the engine is unchanged since prev, prev itself is returned and
// nothing is written — the caller keeps its published pointer and epoch.
// Otherwise the returned slot is a different one than prev: unchanged nodes
// alias prev's node buffers (keeping their mutation generations, so
// downstream gen-keyed merge and index caches stay warm), and changed nodes
// are rewritten into buffers no observable snapshot references — the slot's
// own arrays when nothing aliases them, fresh allocations otherwise.
//
// The caller must make the returned slot reachable from its atomic
// publication cell before the next Publish, and bump its published epoch by
// exactly one per publication — the reader pin-verify handshake and the
// ring's lag-≥2 recycle rule both count in those epochs.
func (r *PubRing[K]) Publish(prev *PubSlot[K]) *PubSlot[K] {
	e := r.eng
	var prevSnap *EngineSnapshot[K]
	if prev != nil {
		prevSnap = &prev.snap
	}
	if prevSnap != nil && prevSnap.src == e && prevSnap.srcEpoch == e.epoch &&
		prevSnap.Packets == e.packets && prevSnap.Weight == e.Weight() {
		return prev
	}
	slot := r.take(prev)
	r.epoch++
	prot := r.protected(prev, slot)
	samePrev := prevSnap != nil && prevSnap.src == e && prevSnap.srcEpoch == e.epoch &&
		len(prevSnap.Nodes) == len(e.inst)
	dst := &slot.snap
	if cap(dst.Nodes) < len(e.inst) {
		dst.Nodes = make([]spacesaving.Snapshot[K], len(e.inst))
	}
	dst.Nodes = dst.Nodes[:len(e.inst)]
	for i := range e.inst {
		var n uint64
		var nodeCap int
		if e.ss != nil {
			n, nodeCap = e.ss[i].N(), e.ss[i].Capacity()
		} else {
			n, nodeCap = e.chk[i].N(), e.chk[i].Capacity()
		}
		if samePrev && prevSnap.Nodes[i].N == n && prevSnap.Nodes[i].Gen() != 0 {
			// Unchanged node: alias prev's buffers and keep its generation.
			dst.Nodes[i] = prevSnap.Nodes[i]
			continue
		}
		// Changed node: rewrite in place. The slot's arrays are reusable
		// unless a snapshot a reader may be holding aliases them — sharing
		// moves buffers across slots, so ownership is established at write
		// time by backing-identity against the protected set.
		if cap(dst.Nodes[i].Keys) < nodeCap || nodeAliased(dst, i, prot) {
			dst.Nodes[i].Keys = make([]K, 0, nodeCap)
			dst.Nodes[i].Upper = make([]uint64, 0, nodeCap)
			dst.Nodes[i].Lower = make([]uint64, 0, nodeCap)
		}
		if e.ss != nil {
			e.ss[i].SnapshotInto(&dst.Nodes[i])
		} else {
			e.chk[i].SnapshotInto(&dst.Nodes[i])
		}
	}
	dst.Packets = e.packets
	dst.Weight = e.Weight()
	dst.V, dst.R = int(e.v), e.r
	dst.Epsilon, dst.Delta = e.epsilon, e.delta
	dst.gen = nextSnapGen()
	dst.src, dst.srcEpoch = e, e.epoch
	slot.ownerEpoch = r.epoch
	return slot
}

// take picks the slot to publish into: a slot at least two publications
// stale with no pins, or a fresh one. Never prev — readers may be using it
// at lag 0 or 1 without a pin being visible yet.
func (r *PubRing[K]) take(prev *PubSlot[K]) *PubSlot[K] {
	for _, s := range r.slots {
		if s != prev && s.ownerEpoch+2 <= r.epoch && s.pins.Load() == 0 {
			return s
		}
	}
	s := &PubSlot[K]{}
	r.slots = append(r.slots, s)
	return s
}

// protected collects the snapshots a concurrent reader may legitimately
// still be reading: the previous publication (observable at lag 0 and 1
// without a visible pin) and every pinned slot. Buffers these snapshots
// alias must not be rewritten this publication. A pin that lands after this
// scan belongs to a reader whose verify will see lag ≥ 2 and retry without
// reading, so missing it is harmless.
func (r *PubRing[K]) protected(prev, target *PubSlot[K]) []*EngineSnapshot[K] {
	r.prot = r.prot[:0]
	for _, s := range r.slots {
		if s == target {
			continue
		}
		if s == prev || s.pins.Load() != 0 {
			r.prot = append(r.prot, &s.snap)
		}
	}
	return r.prot
}

// nodeAliased reports whether node i of dst shares array backing with node i
// of any protected snapshot. Arrays are allocated whole and aliased whole,
// so comparing the first element of the full-capacity extension is exact.
func nodeAliased[K comparable](dst *EngineSnapshot[K], i int, prot []*EngineSnapshot[K]) bool {
	for _, p := range prot {
		if p == dst || len(p.Nodes) <= i {
			continue
		}
		if sameBacking(dst.Nodes[i].Keys, p.Nodes[i].Keys) ||
			sameBacking(dst.Nodes[i].Upper, p.Nodes[i].Upper) ||
			sameBacking(dst.Nodes[i].Lower, p.Nodes[i].Lower) {
			return true
		}
	}
	return false
}

func sameBacking[T any](a, b []T) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:cap(a)][0] == &b[:cap(b)][0]
}
