package core_test

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// fakeInst is a scripted Instance for precise Output/calcPred unit tests:
// it reports exactly the candidates and bounds it was given. queryOnly
// entries answer Bounds but are not candidates — like an unmonitored key in
// a real Space Saving instance, whose upper bound is still queryable.
type fakeInst struct {
	items     map[uint64][2]uint64 // key → {upper, lower}
	queryOnly map[uint64][2]uint64
}

func (f *fakeInst) Increment(uint64)           {}
func (f *fakeInst) IncrementBy(uint64, uint64) {}
func (f *fakeInst) Updates() uint64            { return 0 }
func (f *fakeInst) Reset()                     { f.items = nil }
func (f *fakeInst) Bounds(k uint64) (uint64, uint64) {
	if b, ok := f.items[k]; ok {
		return b[0], b[1]
	}
	b := f.queryOnly[k] // zero value → (0, 0) for unknown keys
	return b[0], b[1]
}
func (f *fakeInst) Candidates(fn func(uint64, uint64, uint64)) {
	for k, b := range f.items {
		fn(k, b[0], b[1])
	}
}

// scriptedInstances builds an empty instance per node and two setters: one
// for candidates, one for query-only bounds.
func scriptedInstances(dom *hierarchy.Domain[uint64]) ([]core.Instance[uint64], func(srcBits, dstBits int, key uint64, upper, lower uint64), func(srcBits, dstBits int, key uint64, upper, lower uint64)) {
	insts := make([]core.Instance[uint64], dom.Size())
	fakes := make([]*fakeInst, dom.Size())
	for i := range insts {
		fakes[i] = &fakeInst{items: map[uint64][2]uint64{}, queryOnly: map[uint64][2]uint64{}}
		insts[i] = fakes[i]
	}
	at := func(srcBits, dstBits int) int {
		node, ok := dom.NodeByBits(srcBits, dstBits)
		if !ok {
			panic("bad node")
		}
		return node
	}
	set := func(srcBits, dstBits int, key uint64, upper, lower uint64) {
		node := at(srcBits, dstBits)
		fakes[node].items[dom.Mask(key, node)] = [2]uint64{upper, lower}
	}
	setQuery := func(srcBits, dstBits int, key uint64, upper, lower uint64) {
		node := at(srcBits, dstBits)
		fakes[node].queryOnly[dom.Mask(key, node)] = [2]uint64{upper, lower}
	}
	return insts, set, setQuery
}

func findResult(rs []core.Result[uint64], dom *hierarchy.Domain[uint64], srcBits, dstBits int, key uint64) (core.Result[uint64], bool) {
	node, _ := dom.NodeByBits(srcBits, dstBits)
	for _, r := range rs {
		if r.Node == node && r.Key == dom.Mask(key, node) {
			return r, true
		}
	}
	return core.Result[uint64]{}, false
}

// TestCalcPredSubtractsDescendant checks the paper's 1D logic in the 2D
// lattice: a parent whose traffic is fully covered by an admitted child is
// excluded.
func TestCalcPredSubtractsDescendant(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, _ := scriptedInstances(dom)
	flow := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	set(32, 32, flow, 300, 300) // the flow itself
	set(24, 32, flow, 300, 300) // its source /24 parent: same traffic

	out := core.Extract(dom, insts, 1000, 1, 0, 0.1)
	if _, ok := findResult(out, dom, 32, 32, flow); !ok {
		t.Fatal("child missing")
	}
	if r, ok := findResult(out, dom, 24, 32, flow); ok {
		t.Fatalf("covered parent admitted with Cond=%v", r.Cond)
	}
}

// TestCalcPredKeepsParentWithOwnTraffic: a parent with traffic beyond its
// admitted child stays.
func TestCalcPredKeepsParentWithOwnTraffic(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, _ := scriptedInstances(dom)
	flow := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	set(32, 32, flow, 300, 300)
	set(24, 32, flow, 450, 450) // 150 of its own

	out := core.Extract(dom, insts, 1000, 1, 0, 0.1)
	r, ok := findResult(out, dom, 24, 32, flow)
	if !ok {
		t.Fatal("parent with 150 extra traffic missing (threshold 100)")
	}
	if r.Cond != 150 {
		t.Fatalf("parent Cond = %v, want 450-300 = 150", r.Cond)
	}
}

// TestCalcPredTripleOverlapGuard stages the Algorithm 3 line 8 case: the glb
// of two G members lies inside a third member and must NOT be added back.
//
//	h1 = (10.1.*, *)      300
//	h2 = (*, 20.1.*)      300
//	h3 = (10.*, 20.*)     300
//	glb(h1,h2) = (10.1.*, 20.1.*)  — inside h3 → suppressed
//	glb(h1,h3) = (10.1.*, 20.*)    — add back 120
//	glb(h2,h3) = (10.*, 20.1.*)    — add back 110
//	root upper = 1000 → Cond(root) = 1000 − 900 + 120 + 110 = 330
func TestCalcPredTripleOverlapGuard(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, setQuery := scriptedInstances(dom)
	src := ip4(10, 1, 0, 0)
	dst := ip4(20, 1, 0, 0)
	base := hierarchy.Pack2D(src, dst)

	set(16, 0, base, 300, 300) // h1
	set(0, 16, base, 300, 300) // h2
	set(8, 8, base, 300, 300)  // h3
	// glb bounds are query-only: the overlaps are not heavy enough to be
	// candidates themselves. The suppressed glb gets a poisoned value: if
	// the guard fails, the root's Cond jumps by 500.
	setQuery(16, 16, base, 500, 500)
	setQuery(16, 8, base, 120, 100) // glb(h1,h3): upper 120 used
	setQuery(8, 16, base, 110, 90)  // glb(h2,h3): upper 110 used
	set(0, 0, base, 1000, 1000)

	out := core.Extract(dom, insts, 1000, 1, 0, 0.1)
	root, ok := findResult(out, dom, 0, 0, base)
	if !ok {
		t.Fatal("root missing")
	}
	if root.Cond != 330 {
		t.Fatalf("root Cond = %v, want 330 (triple-overlap guard + pairwise add-back)", root.Cond)
	}
}

// TestCalcPredNoCommonDescendant: incompatible G members contribute no
// add-back (Definition 12: glb of disjoint prefixes counts as zero).
func TestCalcPredNoCommonDescendant(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, _ := scriptedInstances(dom)
	a := hierarchy.Pack2D(ip4(10, 0, 0, 0), 0)
	b := hierarchy.Pack2D(ip4(20, 0, 0, 0), 0)
	set(8, 0, a, 300, 300)
	set(8, 0, b, 300, 300)
	set(0, 0, 0, 1000, 1000)

	out := core.Extract(dom, insts, 1000, 1, 0, 0.1)
	root, ok := findResult(out, dom, 0, 0, 0)
	if !ok {
		t.Fatal("root missing")
	}
	if root.Cond != 400 {
		t.Fatalf("root Cond = %v, want 1000-600 = 400 (no glb add-back)", root.Cond)
	}
}

// TestCalcPredMaximalityFilter: G(p|P) keeps only the closest descendants —
// a grandchild already covered by an admitted child must not be subtracted
// twice.
func TestCalcPredMaximalityFilter(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, _ := scriptedInstances(dom)
	flow := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	set(32, 32, flow, 200, 200) // grandchild
	set(24, 32, flow, 300, 300) // child (covers grandchild + 100 own)
	set(16, 32, flow, 450, 450) // parent: 150 own traffic

	out := core.Extract(dom, insts, 1000, 1, 0, 0.1)
	r, ok := findResult(out, dom, 16, 32, flow)
	if !ok {
		t.Fatal("parent missing")
	}
	// G(parent|P) = {child} only; Cond = 450 − 300 = 150. If the
	// grandchild were wrongly included, Cond would be −50 and the parent
	// dropped.
	if r.Cond != 150 {
		t.Fatalf("parent Cond = %v, want 150 (maximality filter)", r.Cond)
	}
}

// TestExtractCorrectionAdmitsMarginal: the sampling correction term is added
// to every candidate's conditioned estimate (Algorithm 1 line 13).
func TestExtractCorrectionAdmitsMarginal(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	insts, set, _ := scriptedInstances(dom)
	flow := hierarchy.Pack2D(ip4(1, 1, 1, 1), ip4(2, 2, 2, 2))
	set(32, 32, flow, 80, 80) // below the 100 threshold on its own

	if out := core.Extract(dom, insts, 1000, 1, 0, 0.1); len(out) != 0 {
		t.Fatalf("admitted without correction: %v", out)
	}
	out := core.Extract(dom, insts, 1000, 1, 30, 0.1) // 80+30 ≥ 100
	if _, ok := findResult(out, dom, 32, 32, flow); !ok {
		t.Fatal("correction not applied to the conditioned estimate")
	}
}

// TestExtractOutputInvariants property-checks structural invariants of the
// output on random streams: unique prefixes, Cond ≥ θN, Lower ≤ Upper.
func TestExtractOutputInvariants(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	for seed := uint64(1); seed <= 5; seed++ {
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: seed})
		r := fastrand.New(seed * 7)
		const n = 100000
		for i := 0; i < n; i++ {
			eng.Update(gen2D(r))
		}
		out := eng.Output(0.1)
		seen := map[[2]uint64]bool{}
		for _, p := range out {
			id := [2]uint64{uint64(p.Node), p.Key}
			if seen[id] {
				t.Fatalf("duplicate output prefix %s", dom.Format(p.Key, p.Node))
			}
			seen[id] = true
			if p.Cond < 0.1*n {
				t.Fatalf("admitted below threshold: Cond=%v", p.Cond)
			}
			if p.Lower > p.Upper {
				t.Fatalf("bounds inverted: [%v, %v]", p.Lower, p.Upper)
			}
		}
	}
}

// TestCountersForWorkedExample pins the §6.1 worked example: ε = 0.001
// needs 1001 counters per node, and Theorem 6.19's H/εa scaling follows.
func TestCountersForWorkedExample(t *testing.T) {
	if got := core.CountersFor(0.001); got != 1001 {
		t.Fatalf("CountersFor(0.001) = %d, want 1001", got)
	}
	if got := core.CountersFor(0.01); got != 101 {
		t.Fatalf("CountersFor(0.01) = %d, want 101", got)
	}
}

// TestExtractInstanceCountMismatchPanics guards the wiring invariant.
func TestExtractInstanceCountMismatchPanics(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched instance slice accepted")
		}
	}()
	core.Extract(dom, make([]core.Instance[uint64], 3), 100, 1, 0, 0.5)
}
