package core

import (
	"math"

	"rhhh/internal/spacesaving"
)

// MergeOutput answers an HHH query over the union of several
// equally-configured engines — the multi-queue deployment: modern NICs
// spread flows across receive queues, one engine per queue/core updates
// lock-free, and queries merge at read time. Engines must share the domain,
// V, R and the Space Saving (stream-summary) backend; the merged per-node
// summaries preserve the Definition 4 bounds (see spacesaving.Merge), so
// Theorem 6.17 applies to the union stream with N = ΣNi.
func MergeOutput[K comparable](theta float64, engines ...*Engine[K]) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("core: theta must be in (0, 1]")
	}
	if len(engines) == 0 {
		return nil
	}
	first := engines[0]
	for _, e := range engines[1:] {
		if e.dom != first.dom {
			panic("core: MergeOutput requires a shared domain")
		}
		if e.v != first.v || e.r != first.r {
			panic("core: MergeOutput requires equal V and R")
		}
	}
	if len(engines) == 1 {
		return first.Output(theta)
	}

	var n float64
	merged := make([]Instance[K], first.dom.Size())
	for node := range merged {
		acc, ok := first.inst[node].(ssInstance[K])
		if !ok {
			panic("core: MergeOutput supports the Space Saving backend only")
		}
		sum := acc.s
		for _, e := range engines[1:] {
			other, ok := e.inst[node].(ssInstance[K])
			if !ok {
				panic("core: MergeOutput supports the Space Saving backend only")
			}
			sum = spacesaving.Merge(sum, other.s, sum.Capacity())
		}
		merged[node] = ssInstance[K]{sum}
	}
	for _, e := range engines {
		n += float64(e.Weight())
	}
	if n == 0 {
		return nil
	}
	scale := float64(first.v) / float64(first.r)
	corr := 2 * first.z * math.Sqrt(n*float64(first.v)/float64(first.r))
	return Extract(first.dom, merged, n, scale, corr, theta)
}
