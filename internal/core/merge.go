package core

// MergeOutput answers an HHH query over the union of several
// equally-configured engines — the multi-queue deployment: modern NICs
// spread flows across receive queues, one engine per queue/core updates
// lock-free, and queries merge at read time. Engines must share the domain,
// V, R and the Space Saving (stream-summary) backend; the merged per-node
// summaries preserve the Definition 4 bounds (see spacesaving.Merger), so
// Theorem 6.17 applies to the union stream with N = ΣNi.
//
// MergeOutput snapshots every engine and merges the snapshots; callers that
// query repeatedly should hold their own EngineSnapshot buffers and a
// SnapshotMerger instead (as the sharded aggregator does) to avoid the
// per-call snapshot allocation.
//
// Like the other query entry points, treat the returned slice as read-only
// and valid only until the next query involving the same engines (with a
// single engine it is that engine's reusable Output buffer); copy it to
// retain results.
func MergeOutput[K comparable](theta float64, engines ...*Engine[K]) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("core: theta must be in (0, 1]")
	}
	if len(engines) == 0 {
		return nil
	}
	first := engines[0]
	for _, e := range engines[1:] {
		if e.dom != first.dom {
			panic("core: MergeOutput requires a shared domain")
		}
		if e.v != first.v || e.r != first.r {
			panic("core: MergeOutput requires equal V and R")
		}
	}
	if len(engines) == 1 {
		return first.Output(theta)
	}
	snaps := make([]*EngineSnapshot[K], len(engines))
	for i, e := range engines {
		snaps[i] = e.Snapshot()
	}
	var sm SnapshotMerger[K]
	return sm.Merge(nil, snaps...).Output(first.dom, theta)
}
