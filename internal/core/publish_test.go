package core_test

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// TestPublishSnapshotMatchesSnapshot: a published snapshot must answer
// queries bit-identically to a plain SnapshotInto capture of the same engine
// state, across a chain of publications with traffic in between.
func TestPublishSnapshotMatchesSnapshot(t *testing.T) {
	for _, backend := range []core.Backend{core.SpaceSavingBackend, core.CHKBackend} {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 11, Backend: backend})
		r := fastrand.New(12)
		var pub *core.EngineSnapshot[uint64]
		for round := 0; round < 6; round++ {
			for i := 0; i < 20000; i++ {
				eng.Update(gen2D(r))
			}
			pub = eng.PublishSnapshot(pub)
			ref := eng.Snapshot()
			for _, theta := range []float64{0.02, 0.1} {
				a := pub.Output(dom, theta)
				b := ref.Output(dom, theta)
				if len(a) != len(b) {
					t.Fatalf("backend=%d round=%d theta=%v: %d vs %d results", backend, round, theta, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("backend=%d round=%d theta=%v result %d: %+v vs %+v",
							backend, round, theta, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestPubRingMatchesSnapshot: ring publications must answer queries
// bit-identically to a plain SnapshotInto capture of the same engine state,
// across enough publications that slot recycling is exercised, and the ring
// must stabilize at a handful of slots instead of allocating per epoch.
func TestPubRingMatchesSnapshot(t *testing.T) {
	for _, backend := range []core.Backend{core.SpaceSavingBackend, core.CHKBackend} {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 11, Backend: backend})
		ring := core.NewPubRing(eng)
		r := fastrand.New(12)
		var slot *core.PubSlot[uint64]
		for round := 0; round < 12; round++ {
			for i := 0; i < 5000; i++ {
				eng.Update(gen2D(r))
			}
			slot = ring.Publish(slot)
			ref := eng.Snapshot()
			for _, theta := range []float64{0.02, 0.1} {
				a := slot.Snapshot().Output(dom, theta)
				b := ref.Output(dom, theta)
				if len(a) != len(b) {
					t.Fatalf("backend=%d round=%d theta=%v: %d vs %d results", backend, round, theta, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("backend=%d round=%d theta=%v result %d: %+v vs %+v",
							backend, round, theta, i, a[i], b[i])
					}
				}
			}
		}
		if ring.Slots() > 4 {
			t.Fatalf("backend=%d: ring grew to %d slots over 12 publications, want recycling to cap it at <= 4", backend, ring.Slots())
		}
	}
}

// TestPubRingPinnedSlotStable: a pinned slot's snapshot must keep its exact
// content while the producer keeps publishing and recycling around it, and
// the ring must absorb the held pin by allocating at most one extra slot.
func TestPubRingPinnedSlotStable(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 41})
	ring := core.NewPubRing(eng)
	r := fastrand.New(42)
	var slot *core.PubSlot[uint64]
	for round := 0; round < 5; round++ {
		for i := 0; i < 10000; i++ {
			eng.Update(gen2D(r))
		}
		slot = ring.Publish(slot)
	}
	held := slot
	held.Pin()
	before := held.Snapshot().Output(dom, 0.05)
	beforeN := held.Snapshot().Weight
	for round := 0; round < 8; round++ {
		for i := 0; i < 10000; i++ {
			eng.Update(gen2D(r))
		}
		slot = ring.Publish(slot)
	}
	after := held.Snapshot().Output(dom, 0.05)
	if held.Snapshot().Weight != beforeN {
		t.Fatalf("pinned slot weight changed: %d -> %d", beforeN, held.Snapshot().Weight)
	}
	if len(before) != len(after) {
		t.Fatalf("pinned slot changed under publication: %d vs %d results", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned slot result %d changed under publication", i)
		}
	}
	if ring.Slots() > 5 {
		t.Fatalf("ring grew to %d slots with one pin held, want <= 5", ring.Slots())
	}
	held.Unpin()
	for round := 0; round < 4; round++ {
		for i := 0; i < 10000; i++ {
			eng.Update(gen2D(r))
		}
		slot = ring.Publish(slot)
	}
	if ring.Slots() > 5 {
		t.Fatalf("ring kept growing after the pin was released: %d slots", ring.Slots())
	}
}

// TestPubRingSteadyState: an idle republish returns the same slot, and a warm
// one-packet publish cycle allocates nothing — the whole point of the ring
// over PublishSnapshot's allocate-per-epoch scheme.
func TestPubRingSteadyState(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 51})
	ring := core.NewPubRing(eng)
	r := fastrand.New(52)
	var slot *core.PubSlot[uint64]
	for round := 0; round < 8; round++ {
		for i := 0; i < 10000; i++ {
			eng.Update(gen2D(r))
		}
		slot = ring.Publish(slot)
	}
	if again := ring.Publish(slot); again != slot {
		t.Fatal("idle republish returned a different slot")
	}
	// At a realistic cadence every node changes between publications, so no
	// node buffer is shared across epochs and the whole cycle reuses the
	// recycled slot's arrays: zero allocations.
	if allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 2048; i++ {
			eng.Update(gen2D(r))
		}
		slot = ring.Publish(slot)
	}); allocs != 0 {
		t.Fatalf("warm burst publish cycle allocates %v per run, want 0", allocs)
	}
	// A one-packet publish can still hit the alias guard (the recycled
	// slot's array for the one changed node may be shared with prev via an
	// unchanged chain), costing at most the three fresh arrays for that node.
	if allocs := testing.AllocsPerRun(200, func() {
		eng.Update(gen2D(r))
		slot = ring.Publish(slot)
	}); allocs > 3 {
		t.Fatalf("one-packet publish cycle allocates %v per run, want <= 3", allocs)
	}
}

// TestPublishSnapshotImmutable: earlier publication epochs must not change
// when the engine keeps updating and publishing newer epochs — even though
// newer epochs alias unchanged node buffers of older ones.
func TestPublishSnapshotImmutable(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 21})
	r := fastrand.New(22)
	for i := 0; i < 60000; i++ {
		eng.Update(gen2D(r))
	}
	old := eng.PublishSnapshot(nil)
	before := old.Output(dom, 0.05)
	cur := old
	for round := 0; round < 4; round++ {
		for i := 0; i < 30000; i++ {
			eng.Update(gen2D(r))
		}
		cur = eng.PublishSnapshot(cur)
	}
	after := old.Output(dom, 0.05)
	if len(before) != len(after) {
		t.Fatalf("old epoch changed under later publications: %d vs %d results", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("old epoch result %d changed under later publications", i)
		}
	}
}

// TestPublishSnapshotIdleAndSharing: an idle republish returns prev itself;
// a small traffic delta shares the untouched nodes' buffers and generations
// with the previous epoch and recopies only the touched nodes.
func TestPublishSnapshotIdleAndSharing(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, V: 10 * dom.Size(), Seed: 31})
	r := fastrand.New(32)
	for i := 0; i < 100000; i++ {
		eng.Update(gen2D(r))
	}
	a := eng.PublishSnapshot(nil)
	if got := eng.PublishSnapshot(a); got != a {
		t.Fatalf("idle republish allocated a new snapshot")
	}
	// One packet updates at most R lattice nodes (here R=1), so the next
	// epoch must share almost every node with the previous one.
	eng.Update(gen2D(r))
	b := eng.PublishSnapshot(a)
	if b == a {
		t.Fatalf("republish after traffic returned the stale epoch")
	}
	if b.Gen() == a.Gen() {
		t.Fatalf("changed epoch kept the snapshot generation")
	}
	shared, changed := 0, 0
	for i := range b.Nodes {
		if b.Nodes[i].Gen() == a.Nodes[i].Gen() {
			if b.Nodes[i].N != a.Nodes[i].N {
				t.Fatalf("node %d shares a generation with different N", i)
			}
			shared++
		} else {
			changed++
		}
	}
	if shared < dom.Size()-1 {
		t.Fatalf("one packet changed %d of %d nodes; want at most 1", changed, dom.Size())
	}
	if changed == 0 && b.Packets == a.Packets {
		t.Fatalf("publication recorded no change at all")
	}
}

// TestMergerGenSkipAcrossPublications: the merger's unchanged-input skips key
// on generations, not pointers, so republished snapshots (fresh pointers,
// shared node buffers) keep the whole-merge skip when idle and re-merge only
// touched nodes after a delta — while staying bit-identical to a cold merge.
func TestMergerGenSkipAcrossPublications(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	engines := make([]*core.Engine[uint64], 3)
	for i := range engines {
		engines[i] = core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: uint64(41 + i)})
	}
	r := fastrand.New(44)
	pubs := make([]*core.EngineSnapshot[uint64], len(engines))
	feed := func(n int) {
		for i := 0; i < n; i++ {
			engines[i%len(engines)].Update(gen2D(r))
		}
	}
	feed(150000)
	for i, e := range engines {
		pubs[i] = e.PublishSnapshot(pubs[i])
	}

	var sm core.SnapshotMerger[uint64]
	var merged core.EngineSnapshot[uint64]
	sm.Merge(&merged, pubs...)
	gen0 := merged.Gen()

	// Idle republish: fresh pointers are irrelevant, generations match, the
	// whole merge is skipped and the destination generation survives.
	for i, e := range engines {
		pubs[i] = e.PublishSnapshot(pubs[i])
	}
	sm.Merge(&merged, pubs...)
	if merged.Gen() != gen0 {
		t.Fatalf("idle republish defeated the whole-merge skip")
	}

	// Small delta: the merge must pick up the change and stay bit-identical
	// to a cold merge of the same inputs.
	feed(50)
	for i, e := range engines {
		pubs[i] = e.PublishSnapshot(pubs[i])
	}
	sm.Merge(&merged, pubs...)
	if merged.Gen() == gen0 {
		t.Fatalf("changed inputs did not refresh the merged snapshot")
	}
	var cold core.SnapshotMerger[uint64]
	want := cold.Merge(nil, pubs...)
	a := merged.Output(dom, 0.05)
	b := want.Output(dom, 0.05)
	if len(a) != len(b) {
		t.Fatalf("incremental merge diverged: %d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("incremental merge result %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
