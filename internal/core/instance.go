// Package core implements Randomized Hierarchical Heavy Hitters (RHHH),
// the paper's contribution: Algorithm 1 (constant-time Update and the
// Output procedure), the calcPred conditioned-frequency estimators for one
// and two dimensions (Algorithms 2 and 3), the 2·Z(1−δ)·√(N·V) sampling
// correction, the r-independent-updates extension (Corollary 6.8), and the
// convergence bound ψ = Z(1−δs/2)·V·εs⁻² (Theorem 6.17).
//
// The engine is generic over the lattice key type K and uses one heavy
// hitters Instance per lattice node, exactly as the paper structures it
// ("we use a matrix of H independent HH algorithms"). The deterministic MST
// baseline reuses this package's Extract output machinery with no sampling.
package core

import (
	"rhhh/internal/chk"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/sketch"
	"rhhh/internal/spacesaving"
)

// Instance is the per-lattice-node heavy hitters algorithm. Any algorithm
// satisfying the paper's Definition 4 ((ε,δ)-Frequency Estimation) together
// with candidate enumeration (Definition 5) fits; adapters for Space Saving
// (stream-summary and heap) and Count-Min are provided.
type Instance[K comparable] interface {
	// Increment records one update of key k.
	Increment(k K)
	// IncrementBy records a weighted update.
	IncrementBy(k K, w uint64)
	// Bounds returns upper and lower bounds on the number of updates of k,
	// in raw update units (the engine applies the V/r scaling).
	Bounds(k K) (upper, lower uint64)
	// Candidates visits every monitored key with its bounds.
	Candidates(fn func(k K, upper, lower uint64))
	// Updates returns the number of updates this instance has absorbed.
	Updates() uint64
	// Reset clears the instance.
	Reset()
}

// ssInstance adapts spacesaving.Summary to Instance.
type ssInstance[K comparable] struct{ s *spacesaving.Summary[K] }

func (a ssInstance[K]) Increment(k K)               { a.s.Increment(k) }
func (a ssInstance[K]) IncrementBy(k K, w uint64)   { a.s.IncrementBy(k, w) }
func (a ssInstance[K]) Bounds(k K) (uint64, uint64) { return a.s.Bounds(k) }
func (a ssInstance[K]) Updates() uint64             { return a.s.N() }
func (a ssInstance[K]) Reset()                      { a.s.Reset() }
func (a ssInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	a.s.ForEach(func(k K, count, err uint64) { fn(k, count, count-err) })
}

// heapInstance adapts spacesaving.Heap to Instance.
type heapInstance[K comparable] struct{ h *spacesaving.Heap[K] }

func (a heapInstance[K]) Increment(k K)               { a.h.Increment(k) }
func (a heapInstance[K]) IncrementBy(k K, w uint64)   { a.h.IncrementBy(k, w) }
func (a heapInstance[K]) Bounds(k K) (uint64, uint64) { return a.h.Bounds(k) }
func (a heapInstance[K]) Updates() uint64             { return a.h.N() }
func (a heapInstance[K]) Reset()                      { a.h.Reset() }
func (a heapInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	a.h.ForEach(func(k K, count, err uint64) { fn(k, count, count-err) })
}

// chkInstance adapts chk.Sketch to Instance. CHK keeps point estimates, so
// both bounds are the slot count (err = 0); accuracy is probabilistic
// rather than Definition-4 guaranteed (see internal/chk).
type chkInstance[K comparable] struct{ c *chk.Sketch[K] }

func (a chkInstance[K]) Increment(k K)               { a.c.Increment(k) }
func (a chkInstance[K]) IncrementBy(k K, w uint64)   { a.c.IncrementBy(k, w) }
func (a chkInstance[K]) Bounds(k K) (uint64, uint64) { return a.c.Bounds(k) }
func (a chkInstance[K]) Updates() uint64             { return a.c.N() }
func (a chkInstance[K]) Reset()                      { a.c.Reset() }
func (a chkInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	a.c.ForEach(func(k K, count uint64) { fn(k, count, count) })
}

// cmInstance adapts sketch.CountMin to Instance.
type cmInstance[K comparable] struct{ c *sketch.CountMin[K] }

func (a cmInstance[K]) Increment(k K)               { a.c.Increment(k) }
func (a cmInstance[K]) IncrementBy(k K, w uint64)   { a.c.IncrementBy(k, w) }
func (a cmInstance[K]) Bounds(k K) (uint64, uint64) { return a.c.Bounds(k) }
func (a cmInstance[K]) Updates() uint64             { return a.c.N() }
func (a cmInstance[K]) Reset()                      { a.c.Reset() }
func (a cmInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	a.c.ForEach(func(k K, count, err uint64) { fn(k, count, count-err) })
}

// SpaceSavingInstances builds one stream-summary Space Saving instance per
// lattice node, each with the given number of counters.
func SpaceSavingInstances[K comparable](dom *hierarchy.Domain[K], counters int) []Instance[K] {
	sums := make([]*spacesaving.Summary[K], dom.Size())
	for i := range sums {
		sums[i] = spacesaving.New[K](counters)
	}
	return WrapSummaries(sums)
}

// WrapSummaries adapts caller-owned Space Saving summaries to Instances —
// for components (like the distributed collector) that need both the
// Instance view and direct snapshot access to the same state.
func WrapSummaries[K comparable](sums []*spacesaving.Summary[K]) []Instance[K] {
	out := make([]Instance[K], len(sums))
	for i, s := range sums {
		out[i] = ssInstance[K]{s}
	}
	return out
}

// HeapInstances builds one heap-backed Space Saving instance per lattice
// node (O(log c) updates, efficient weighted increments).
func HeapInstances[K comparable](dom *hierarchy.Domain[K], counters int) []Instance[K] {
	out := make([]Instance[K], dom.Size())
	for i := range out {
		out[i] = heapInstance[K]{spacesaving.NewHeap[K](counters)}
	}
	return out
}

// chkNodeSeed derives node i's sketch seed from the engine seed: a seeded
// splitmix walk, so New and Reseed agree and distinct nodes get independent
// decay streams.
func chkNodeSeed(seed uint64, i int) uint64 {
	src := fastrand.New(seed ^ 0x6368_6b5f_6e6f_6465) // "chk_node"
	var s uint64
	for j := 0; j <= i; j++ {
		s = src.Uint64()
	}
	return s
}

// CHKInstances builds one Cuckoo Heavy Keeper sketch per lattice node, each
// with at least the given number of counters (rounded up to the table
// geometry) and a decay RNG derived from seed.
func CHKInstances[K comparable](dom *hierarchy.Domain[K], counters int, seed uint64) []Instance[K] {
	out := make([]Instance[K], dom.Size())
	for i := range out {
		out[i] = chkInstance[K]{chk.New[K](counters, chkNodeSeed(seed, i))}
	}
	return out
}

// CountMinInstances builds one Count-Min + heavy-hitter-list instance per
// lattice node, sized for an (ε, δ) frequency-estimation guarantee. hash
// fingerprints keys (see sketch.Hash64 for integer keys).
func CountMinInstances[K comparable](dom *hierarchy.Domain[K], epsilon, delta float64, hash func(K) uint64) []Instance[K] {
	out := make([]Instance[K], dom.Size())
	for i := range out {
		out[i] = cmInstance[K]{sketch.NewForEpsilon[K](epsilon, delta, hash)}
	}
	return out
}
