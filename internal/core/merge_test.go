package core_test

import (
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

func TestMergeOutputFindsUnionHeavyHitters(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	cfg := core.Config{Epsilon: 0.02, Delta: 0.05}
	const shards = 4
	engines := make([]*core.Engine[uint64], shards)
	for i := range engines {
		c := cfg
		c.Seed = uint64(i + 1)
		engines[i] = core.New(dom, c)
	}
	// Feed the union stream round-robin (flow-hash sharding in practice).
	r := fastrand.New(9)
	n := int(engines[0].Psi()) + 200000
	for i := 0; i < n; i++ {
		engines[i%shards].Update(gen2D(r))
	}
	out := core.MergeOutput(0.1, engines...)
	find := func(srcBits, dstBits int, key uint64) bool {
		node, _ := dom.NodeByBits(srcBits, dstBits)
		for _, p := range out {
			if p.Node == node && p.Key == dom.Mask(key, node) {
				return true
			}
		}
		return false
	}
	if !find(32, 32, hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))) {
		t.Error("merged output missed the heavy flow")
	}
	if !find(24, 0, hierarchy.Pack2D(ip4(30, 3, 3, 0), 0)) {
		t.Error("merged output missed the source /24")
	}
	if !find(0, 16, hierarchy.Pack2D(0, ip4(40, 4, 0, 0))) {
		t.Error("merged output missed the destination /16")
	}
	// The merged estimate of the heavy flow is near the true 30% share.
	node, _ := dom.NodeByBits(32, 32)
	for _, p := range out {
		if p.Node == node && p.Key == hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2)) {
			if p.Upper < 0.2*float64(n) || p.Upper > 0.42*float64(n) {
				t.Errorf("merged estimate %v for a 30%% flow of %d", p.Upper, n)
			}
		}
	}
}

func TestMergeOutputSingleEngineEqualsOutput(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 2})
	r := fastrand.New(3)
	for i := 0; i < 100000; i++ {
		eng.Update(uint32(r.Uint64n(1 << 12)))
	}
	a := eng.Output(0.1)
	b := core.MergeOutput(0.1, eng)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestMergeOutputValidation(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	e1 := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1})
	e2 := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, V: 50})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched V accepted")
		}
	}()
	core.MergeOutput(0.5, e1, e2)
}

func TestMergeOutputEmpty(t *testing.T) {
	if out := core.MergeOutput[uint32](0.5); out != nil {
		t.Fatal("no engines should give nil")
	}
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	e1 := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	e2 := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 2})
	if out := core.MergeOutput(0.5, e1, e2); out != nil {
		t.Fatal("empty engines should give nil")
	}
}
