package core

import (
	"fmt"
	"math"

	"rhhh/internal/chk"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
	"rhhh/internal/stats"
)

// Backend selects the per-lattice-node heavy hitters algorithm.
type Backend int

// Available backends. SpaceSavingBackend is the paper's choice and the
// default; HeapBackend trades O(1) for O(log c) but handles weighted streams
// without bucket walks; CHKBackend stores counters directly in a cuckoo
// table with exponential-decay eviction (probabilistic accuracy, no bucket
// list — see internal/chk); CountMinBackend requires a key hash and exists
// for the sketch ablation (use NewWithInstances + CountMinInstances).
const (
	SpaceSavingBackend Backend = iota
	HeapBackend
	CHKBackend
)

// Config parameterizes an RHHH engine.
//
// Following the authors' configuration (§6.1's worked example and their
// released implementation), the per-instance error and the sampling error
// are both set to Epsilon (εa = εs = ε), and the Space Saving instances are
// provisioned with ⌈(1+εs)/εa⌉ counters to absorb over-sampling. The formal
// guarantee of Theorem 6.17 then holds for total error εa+εs and total
// confidence δa+2δs with δa = δs = Delta/3.
type Config struct {
	// Epsilon is the target estimation error ε (e.g. 0.001). Must be in
	// (0, 1).
	Epsilon float64
	// Delta is the target failure probability δ (e.g. 0.001). Must be in
	// (0, 1).
	Delta float64
	// V is the paper's performance parameter: each packet draws a uniform
	// number in [0, V) and updates a lattice node only when the draw is
	// below H. V=H updates one node per packet; V=10H ("10-RHHH") updates
	// one node for 10% of packets. 0 means V=H. Must be ≥ H otherwise.
	V int
	// R is the number of independent update draws per packet
	// (Corollary 6.8); the engine then converges R times faster. 0 means 1.
	R int
	// Seed seeds the update-path RNG; runs with equal seeds and inputs are
	// bit-identical.
	Seed uint64
	// Backend selects the HH algorithm (default SpaceSavingBackend).
	Backend Backend
}

// Engine is an RHHH instance over lattice domain K. Not safe for concurrent
// use; shard by flow and merge results, or lock externally.
type Engine[K comparable] struct {
	dom  *hierarchy.Domain[K]
	inst []Instance[K]
	// ss mirrors inst with the concrete Space Saving summaries when every
	// instance uses the stream-summary backend; the update path then calls
	// Increment directly instead of through the Instance interface. chk is
	// the same mirror for the Cuckoo Heavy Keeper backend. Heap and
	// Count-Min backends keep interface dispatch (both mirrors nil).
	ss   []*spacesaving.Summary[K]
	chk  []*chk.Sketch[K]
	mask func(k K, node int) K // devirtualized dom.Masker()
	rng  *fastrand.Source

	v, h    uint64
	r       int
	packets uint64 // number of Update/UpdateWeighted calls
	samples uint64 // sampled updates forwarded to a lattice node
	batches uint64 // UpdateBatch/UpdateWeightedBatch calls
	// extraW tracks stream weight beyond one unit per packet, so the unit
	// Update path maintains a single counter; total weight is
	// packets + extraW (extraW is negative when zero-weight packets occur).
	extraW int64

	// Geometric skip sampling (V > H, r == 1): each packet is sampled with
	// probability H/V, so instead of drawing per packet we draw the gap to
	// the next sampled packet once and compare against a watermark — the
	// non-sampled path is a single compare, with no stores beyond the
	// packet counter. nextSample is the value of packets at which the next
	// sample fires; geo draws the gaps.
	useSkip    bool
	nextSample uint64
	geo        *fastrand.GeometricSampler

	// UpdateBatch scratch: a batch's sampled (node, masked key[, weight])
	// tuples are collected and applied node-grouped at the end of the call,
	// touching each node's counter store once per batch instead of once per
	// sample. Update itself applies samples immediately — every single call
	// stays O(1) worst case, the paper's headline property.
	batchNode []int32  // node draw per sampled packet, in sample order
	batchKey  []K      // masked key per sampled packet
	batchW    []uint64 // weight per sampled packet (weighted batches only)
	grpKey    []K      // scratch: masked keys regrouped by node
	grpNode   []int32  // scratch: node per grouped sample
	grpW      []uint64 // scratch: weights regrouped by node
	grpOff    []int32  // scratch: per-node group boundaries
	// planSlot/planHash hold one resolve window's plan (see applyGrouped).
	planSlot [spacesaving.BatchChunk]int32
	planHash [spacesaving.BatchChunk]uint32
	// directApply short-circuits the resolve/apply kernel when the whole
	// counter state is small enough to live in cache (see applyGrouped):
	// with nothing stalling, the planning pass is pure overhead.
	directApply bool

	epsilon, delta float64
	z              float64 // Z(1−δ), for the output correction
	psi            float64

	// ex is the engine's reusable query workspace, built on first Output.
	ex *Extractor[K]
	// epoch counts the discontinuities (Reset, Reseed, LoadSnapshot) that
	// invalidate the "unchanged since capture" check SnapshotInto relies on;
	// between discontinuities the packet counter alone is monotone.
	epoch uint64
}

// New builds an RHHH engine over dom with cfg. It panics on invalid
// configuration (this is a constructor-time programming error, not a runtime
// condition).
func New[K comparable](dom *hierarchy.Domain[K], cfg Config) *Engine[K] {
	counters := ssCounters(cfg.Epsilon)
	var inst []Instance[K]
	switch cfg.Backend {
	case SpaceSavingBackend:
		inst = SpaceSavingInstances(dom, counters)
	case HeapBackend:
		inst = HeapInstances(dom, counters)
	case CHKBackend:
		inst = CHKInstances(dom, counters, cfg.Seed)
	default:
		panic(fmt.Sprintf("core: unknown backend %d", cfg.Backend))
	}
	return NewWithInstances(dom, cfg, inst)
}

// NewWithInstances builds an engine using caller-provided per-node
// instances (len must equal dom.Size()); use this for the Count-Min backend
// or custom HH algorithms.
func NewWithInstances[K comparable](dom *hierarchy.Domain[K], cfg Config, inst []Instance[K]) *Engine[K] {
	if !(cfg.Epsilon > 0 && cfg.Epsilon < 1) {
		panic("core: Epsilon must be in (0, 1)")
	}
	if !(cfg.Delta > 0 && cfg.Delta < 1) {
		panic("core: Delta must be in (0, 1)")
	}
	h := dom.Size()
	v := cfg.V
	if v == 0 {
		v = h
	}
	if v < h {
		panic(fmt.Sprintf("core: V=%d must be at least H=%d", v, h))
	}
	r := cfg.R
	if r == 0 {
		r = 1
	}
	if r < 0 {
		panic("core: R must be positive")
	}
	if len(inst) != dom.Size() {
		panic("core: need one instance per lattice node")
	}
	deltaS := cfg.Delta / 3
	e := &Engine[K]{
		dom:     dom,
		inst:    inst,
		mask:    dom.Masker(),
		rng:     fastrand.New(cfg.Seed),
		v:       uint64(v),
		h:       uint64(h),
		r:       r,
		epsilon: cfg.Epsilon,
		delta:   cfg.Delta,
		z:       stats.Z(cfg.Delta),
		psi:     stats.Z(deltaS/2) * float64(v) / (cfg.Epsilon * cfg.Epsilon) / float64(r),
	}
	// Devirtualize the backend when every node runs the stream-summary
	// Space Saving instance (the default and the paper's configuration), or
	// the Cuckoo Heavy Keeper sketch.
	ss := make([]*spacesaving.Summary[K], len(inst))
	for i, in := range inst {
		a, ok := in.(ssInstance[K])
		if !ok {
			ss = nil
			break
		}
		ss[i] = a.s
	}
	e.ss = ss
	if ss == nil {
		ck := make([]*chk.Sketch[K], len(inst))
		for i, in := range inst {
			a, ok := in.(chkInstance[K])
			if !ok {
				ck = nil
				break
			}
			ck[i] = a.c
		}
		e.chk = ck
	}
	if ss != nil {
		total := 0
		for _, s := range ss {
			total += s.Capacity()
		}
		// ~64 B of slab+index+bucket state per counter; below ~512 KiB the
		// lattice fits alongside the working set in L2 on anything current,
		// and the batch path applies samples directly instead of going
		// through the two-phase kernel (identical results either way).
		e.directApply = total < 8192
	}
	if v > h && r == 1 {
		e.useSkip = true
		e.geo = fastrand.NewGeometricSampler(float64(h) / float64(v))
		e.nextSample = 1 + e.geo.Next(e.rng)
	}
	e.grpOff = make([]int32, h+1)
	return e
}

// CountersFor is the Space Saving provisioning rule from §6.1: ⌈(1+εs)/εa⌉
// counters per lattice node with εa = εs = ε ("Space Saving requires 1,000
// counters for εa = 0.001; if we set εs = 0.001, we now require 1001
// counters"). Total space is H·CountersFor(ε) entries (Theorem 6.19).
func CountersFor(epsilon float64) int {
	if !(epsilon > 0 && epsilon < 1) {
		panic("core: Epsilon must be in (0, 1)")
	}
	return int(math.Ceil((1 + epsilon) / epsilon))
}

// ssCounters keeps the old internal name for the constructor.
func ssCounters(epsilon float64) int { return CountersFor(epsilon) }

// Domain returns the engine's lattice domain.
func (e *Engine[K]) Domain() *hierarchy.Domain[K] { return e.dom }

// Snapshottable reports whether the engine's backend supports SnapshotInto
// and LoadSnapshot (the Space Saving and CHK backends do; interface-only
// backends such as the heap and Count-Min do not).
func (e *Engine[K]) Snapshottable() bool { return e.ss != nil || e.chk != nil }

// N returns the number of packets processed.
func (e *Engine[K]) N() uint64 { return e.packets }

// Weight returns the total stream weight processed (equals N on unitary
// streams).
func (e *Engine[K]) Weight() uint64 { return e.packets + uint64(e.extraW) }

// V returns the performance parameter in effect.
func (e *Engine[K]) V() int { return int(e.v) }

// H returns the hierarchy size.
func (e *Engine[K]) H() int { return int(e.h) }

// Psi returns ψ, the minimum stream length after which the probabilistic
// guarantees of Theorem 6.17 hold (divided by r per Corollary 6.8).
func (e *Engine[K]) Psi() float64 { return e.psi }

// Converged reports whether N has passed ψ.
func (e *Engine[K]) Converged() bool { return float64(e.packets) >= e.psi }

// Update processes one packet: with probability H/V, update one uniformly
// drawn lattice node's instance with the packet's masked key (Algorithm 1
// lines 1–7). O(1) worst case — at most r constant-time instance updates.
//
// When V > H (and r == 1) the Bernoulli decision is realized by geometric
// skip sampling: the common non-sampled case is a compare-and-decrement
// with no RNG draw at all. At V = H every packet updates a node and the
// historical one-draw-per-packet path is kept, preserving bit-identical
// results for a given seed.
func (e *Engine[K]) Update(k K) {
	e.packets++
	if e.useSkip {
		if e.packets < e.nextSample {
			return
		}
		e.samples++
		node := int(e.rng.Uint64n(e.h))
		if e.ss != nil {
			e.ss[node].Increment(e.mask(k, node))
		} else if e.chk != nil {
			e.chk[node].Increment(e.mask(k, node))
		} else {
			e.inst[node].Increment(e.mask(k, node))
		}
		e.nextSample = e.packets + 1 + e.geo.Next(e.rng)
		return
	}
	if e.r == 1 {
		if d := e.rng.Uint64n(e.v); d < e.h {
			e.samples++
			node := int(d)
			if e.ss != nil {
				e.ss[node].Increment(e.mask(k, node))
			} else if e.chk != nil {
				e.chk[node].Increment(e.mask(k, node))
			} else {
				e.inst[node].Increment(e.mask(k, node))
			}
		}
		return
	}
	for i := 0; i < e.r; i++ {
		if d := e.rng.Uint64n(e.v); d < e.h {
			e.samples++
			node := int(d)
			if e.ss != nil {
				e.ss[node].Increment(e.mask(k, node))
			} else if e.chk != nil {
				e.chk[node].Increment(e.mask(k, node))
			} else {
				e.inst[node].Increment(e.mask(k, node))
			}
		}
	}
}

// UpdateWeighted processes one packet carrying weight w (e.g. byte counts).
// The sampled node receives the full weight, keeping the estimator
// unbiased; this is the natural weighted extension of Algorithm 1 (the
// paper analyzes unitary streams only — variance grows with the weight
// spread, so ψ is a lower bound on convergence here). Sampling decisions
// are per packet, so the skip sampler applies unchanged.
func (e *Engine[K]) UpdateWeighted(k K, w uint64) {
	e.packets++
	e.extraW += int64(w) - 1
	if e.useSkip {
		if e.packets < e.nextSample {
			return
		}
		e.samples++
		node := int(e.rng.Uint64n(e.h))
		if e.ss != nil {
			e.ss[node].IncrementBy(e.mask(k, node), w)
		} else if e.chk != nil {
			e.chk[node].IncrementBy(e.mask(k, node), w)
		} else {
			e.inst[node].IncrementBy(e.mask(k, node), w)
		}
		e.nextSample = e.packets + 1 + e.geo.Next(e.rng)
		return
	}
	for i := 0; i < e.r; i++ {
		if d := e.rng.Uint64n(e.v); d < e.h {
			e.samples++
			node := int(d)
			if e.ss != nil {
				e.ss[node].IncrementBy(e.mask(k, node), w)
			} else if e.chk != nil {
				e.chk[node].IncrementBy(e.mask(k, node), w)
			} else {
				e.inst[node].IncrementBy(e.mask(k, node), w)
			}
		}
	}
}

// UpdateBatch processes a slice of packets in one call — semantically
// identical to calling Update on each key in order (same RNG consumption,
// same state). With V > H the skip sampler fast-forwards over runs of
// non-sampled packets; at V = H (and for r > 1) the per-packet draws are
// taken in order up front. Either way the batch's samples are applied
// node-grouped through the pipelined two-phase kernel (see applyGrouped) so
// each node's counter store is touched in one cache-friendly burst and
// independent loads stay in flight across node boundaries. Per-batch work is
// O(len(keys)) counter arithmetic plus O(samples) instance updates.
func (e *Engine[K]) UpdateBatch(keys []K) {
	e.batchNode = e.batchNode[:0]
	e.batchKey = e.batchKey[:0]
	if !e.useSkip {
		// Per-draw sampling, exactly as the sequential path consumes it.
		e.packets += uint64(len(keys))
		for _, k := range keys {
			for j := 0; j < e.r; j++ {
				if d := e.rng.Uint64n(e.v); d < e.h {
					node := int32(d)
					e.batchNode = append(e.batchNode, node)
					e.batchKey = append(e.batchKey, e.mask(k, int(node)))
				}
			}
		}
		e.applyGrouped(false)
		return
	}
	base := e.packets
	e.packets += uint64(len(keys))
	for e.nextSample <= e.packets {
		k := keys[e.nextSample-base-1]
		// Draw node then gap, exactly as the per-packet path would.
		node := int32(e.rng.Uint64n(e.h))
		e.batchNode = append(e.batchNode, node)
		e.batchKey = append(e.batchKey, e.mask(k, int(node)))
		e.nextSample += 1 + e.geo.Next(e.rng)
	}
	e.applyGrouped(false)
}

// UpdateWeightedBatch processes a slice of packets carrying weights in one
// call — semantically identical to calling UpdateWeighted on each pair in
// order (same RNG consumption, same state). len(ws) must equal len(keys).
// Samples are applied node-grouped through the same pipelined kernel as
// UpdateBatch, with each sampled node receiving its packet's full weight.
func (e *Engine[K]) UpdateWeightedBatch(keys []K, ws []uint64) {
	if len(ws) != len(keys) {
		panic("core: UpdateWeightedBatch keys/weights length mismatch")
	}
	e.batchNode = e.batchNode[:0]
	e.batchKey = e.batchKey[:0]
	e.batchW = e.batchW[:0]
	if !e.useSkip {
		for i, k := range keys {
			e.packets++
			e.extraW += int64(ws[i]) - 1
			for j := 0; j < e.r; j++ {
				if d := e.rng.Uint64n(e.v); d < e.h {
					node := int32(d)
					e.batchNode = append(e.batchNode, node)
					e.batchKey = append(e.batchKey, e.mask(k, int(node)))
					e.batchW = append(e.batchW, ws[i])
				}
			}
		}
		e.applyGrouped(true)
		return
	}
	base := e.packets
	e.packets += uint64(len(keys))
	for _, w := range ws {
		e.extraW += int64(w) - 1
	}
	for e.nextSample <= e.packets {
		i := e.nextSample - base - 1
		node := int32(e.rng.Uint64n(e.h))
		e.batchNode = append(e.batchNode, node)
		e.batchKey = append(e.batchKey, e.mask(keys[i], int(node)))
		e.batchW = append(e.batchW, ws[i])
		e.nextSample += 1 + e.geo.Next(e.rng)
	}
	e.applyGrouped(true)
}

// applyGrouped applies the batch's sampled updates grouped by node with a
// stable counting sort, preserving each node's update order, then drives the
// two-phase spacesaving kernel in BatchChunk-sized windows that span node
// boundaries: spacesaving.ResolveAcross walks a whole window level by level
// — every sample's index words, then every candidate ref and slab confirm,
// then every bucket/victim line — so up to 64 samples' cache misses overlap
// across nodes, and the per-run applies then replay the window's plan
// against warm lines.
func (e *Engine[K]) applyGrouped(weighted bool) {
	e.batches++
	n := len(e.batchNode)
	e.samples += uint64(n)
	if n == 0 {
		return
	}
	if cap(e.grpKey) < n {
		e.grpKey = make([]K, n)
		e.grpNode = make([]int32, n)
	}
	e.grpKey = e.grpKey[:n]
	e.grpNode = e.grpNode[:n]
	if weighted {
		if cap(e.grpW) < n {
			e.grpW = make([]uint64, n)
		}
		e.grpW = e.grpW[:n]
	}
	off := e.grpOff
	for i := range off {
		off[i] = 0
	}
	for _, nd := range e.batchNode {
		off[nd+1]++
	}
	for nd := 0; nd < int(e.h); nd++ {
		off[nd+1] += off[nd]
	}
	pos := off // off[nd] advances to off[nd+1] while scattering
	for i, nd := range e.batchNode {
		e.grpKey[pos[nd]] = e.batchKey[i]
		e.grpNode[pos[nd]] = nd
		if weighted {
			e.grpW[pos[nd]] = e.batchW[i]
		}
		pos[nd]++
	}
	// After the scatter pass each node's group is contiguous in grpKey, in
	// arrival order.
	if e.ss == nil {
		if e.chk != nil {
			// CHK has no resolve/apply split to drive: its update is already
			// two bucket probes with no list surgery, so the node-grouped
			// order alone delivers the cache locality the kernel buys the
			// stream summary.
			for j := 0; j < n; j++ {
				if weighted {
					e.chk[e.grpNode[j]].IncrementBy(e.grpKey[j], e.grpW[j])
				} else {
					e.chk[e.grpNode[j]].Increment(e.grpKey[j])
				}
			}
			return
		}
		// Interface fallback: Heap and Count-Min backends take the batched
		// entry points too, degrading to per-sample dispatch with the same
		// node grouping and identical state transitions as the sequential
		// path (TestUpdateBatchInterfaceBackends pins this).
		for j := 0; j < n; j++ {
			in := e.inst[e.grpNode[j]]
			if weighted {
				in.IncrementBy(e.grpKey[j], e.grpW[j])
			} else {
				in.Increment(e.grpKey[j])
			}
		}
		return
	}
	if e.directApply {
		// The whole lattice state is cache-resident: apply the grouped
		// samples without the planning pass (same state transitions, no
		// stalls for the kernel to overlap).
		for j := 0; j < n; j++ {
			if weighted {
				e.ss[e.grpNode[j]].IncrementBy(e.grpKey[j], e.grpW[j])
			} else {
				e.ss[e.grpNode[j]].Increment(e.grpKey[j])
			}
		}
		return
	}
	// Resolve a window across nodes, then apply it run by run. A node run
	// that straddles a window boundary is resolved in two pieces, each
	// planned after every earlier apply on that summary — plans never go
	// stale across windows.
	for win := 0; win < n; win += spacesaving.BatchChunk {
		end := win + spacesaving.BatchChunk
		if end > n {
			end = n
		}
		slots := e.planSlot[:end-win]
		hashes := e.planHash[:end-win]
		mayDup := spacesaving.ResolveAcross(e.ss, e.grpNode[win:end], e.grpKey[win:end], slots, hashes)
		for i := win; i < end; {
			nd := e.grpNode[i]
			j := i + 1
			for j < end && e.grpNode[j] == nd {
				j++
			}
			if weighted {
				e.ss[nd].ApplyWeightedPlanned(e.grpKey[i:j], e.grpW[i:j], slots[i-win:j-win], hashes[i-win:j-win], mayDup)
			} else {
				e.ss[nd].ApplyPlanned(e.grpKey[i:j], slots[i-win:j-win], hashes[i-win:j-win], mayDup)
			}
			i = j
		}
	}
}

// Output returns the HHH set for threshold θ (Algorithm 1 lines 8–21): every
// prefix whose conservative conditioned-frequency estimate reaches θ·N.
// Frequencies in the results are scaled to stream units.
//
// The returned slice is the engine's reusable query workspace: treat it as
// read-only, valid until the engine's next Output call — copy it to retain
// results across queries.
func (e *Engine[K]) Output(theta float64) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("core: theta must be in (0, 1]")
	}
	n := float64(e.Weight())
	if n == 0 {
		return nil
	}
	if e.ex == nil {
		e.ex = NewExtractor(e.dom)
	}
	scale := float64(e.v) / float64(e.r)
	corr := 2 * e.z * math.Sqrt(n*float64(e.v)/float64(e.r))
	return e.ex.Extract(e.inst, n, scale, corr, theta)
}

// EstimateFrequency returns (f̂p−, f̂p+) for an arbitrary prefix given by
// its node and masked key, in stream units.
func (e *Engine[K]) EstimateFrequency(key K, node int) (lower, upper float64) {
	up, lo := e.inst[node].Bounds(key)
	scale := float64(e.v) / float64(e.r)
	return float64(lo) * scale, float64(up) * scale
}

// Reseed resets the update-path RNG to seed and redraws any in-flight skip
// gap. After Reset followed by Reseed(s), the engine's outputs are
// bit-identical to a freshly constructed engine with Seed s — the epoch
// deployments (Windowed) use this to keep windows statistically independent
// and reproducible without reallocating the engine.
func (e *Engine[K]) Reseed(seed uint64) {
	e.rng.Seed(seed)
	// CHK sketches hold per-node decay RNGs; restart them from the same
	// derivation New used so the whole engine replays bit-identically.
	for i, c := range e.chk {
		c.Reseed(chkNodeSeed(seed, i))
	}
	e.epoch++
	if e.useSkip {
		e.nextSample = e.packets + 1 + e.geo.Next(e.rng)
	}
}

// Reset clears all state, keeping the configuration. The RNG is not
// reseeded; use a fresh engine for bit-identical reruns.
func (e *Engine[K]) Reset() {
	for _, in := range e.inst {
		in.Reset()
	}
	if e.useSkip {
		e.nextSample -= e.packets // keep the in-flight gap across the reset
	}
	e.packets = 0
	e.extraW = 0
	e.epoch++
}
