package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
)

// EngineSnapshot is an immutable, mergeable copy of an engine's measurement
// state: one Space Saving snapshot per lattice node plus the sampling
// metadata (N, V, R, ε, δ) a query needs. Snapshots are the read-path
// currency — Output, merging, serialization and windowing all consume
// snapshots, so live engines are only ever paused for the O(H·capacity)
// copy in SnapshotInto, never for a query.
type EngineSnapshot[K comparable] struct {
	// Nodes holds one summary snapshot per lattice node, indexed like the
	// engine's instances.
	Nodes []spacesaving.Snapshot[K]
	// Packets is the number of Update calls absorbed; Weight the total
	// stream weight (equal on unitary streams).
	Packets uint64
	Weight  uint64
	// V and R are the sampling parameters in effect (counts scale by V/R).
	V, R int
	// Epsilon and Delta are the configured error and failure probability;
	// Delta determines the sampling correction applied by Output.
	Epsilon, Delta float64

	// gen is the snapshot's mutation generation, drawn from a process-wide
	// counter each time the in-repo mutators (SnapshotInto, SnapshotMerger,
	// Decode, Invalidate) rewrite the contents. Query caches (the
	// Extractor's bounds indices and unchanged-query shortcut) key on it, so
	// code that fills the exported fields by hand must call Invalidate.
	gen uint64
	// src identifies the engine (and its reset epoch) a SnapshotInto capture
	// came from, letting a repeat capture of an unchanged engine into the
	// same buffer skip the copy and keep gen.
	src      *Engine[K]
	srcEpoch uint64
}

// snapGenCounter issues mutation generations; 0 is reserved for "unknown"
// (hand-assembled snapshots), which disables the unchanged-query caches.
var snapGenCounter atomic.Uint64

func nextSnapGen() uint64 { return snapGenCounter.Add(1) }

// Invalidate marks a hand-assembled (or externally mutated) snapshot as
// changed so snapshot-level query caches — the unchanged-snapshot query
// shortcut and the merger's whole-merge skip — are refreshed. Per-node
// caches (the Extractor's bounds indices, the merger's per-node re-merge
// skip) are keyed on each node's own generation: rewriting a node through
// spacesaving.SnapshotInto/MergeInto/Decode stamps it automatically, and
// code that mutates a node's arrays in place must call that node's
// Invalidate as well. Snapshots produced by SnapshotInto,
// SnapshotMerger.Merge and DecodeEngineSnapshot are marked automatically at
// both levels.
func (es *EngineSnapshot[K]) Invalidate() {
	es.gen = nextSnapGen()
	es.src = nil
}

// SnapshotInto copies the engine's state into dst, reusing dst's buffers
// (zero allocations once they have grown). A nil dst allocates. Only the
// Space Saving (stream-summary) backend supports snapshots, matching the
// merge path. Returns dst.
//
// A repeat capture of an engine that has not absorbed any update (and has
// not been Reset, Reseeded or restored) into the same dst skips the copy
// and leaves dst's mutation generation unchanged, so downstream query
// caches recognize the state as identical.
func (e *Engine[K]) SnapshotInto(dst *EngineSnapshot[K]) *EngineSnapshot[K] {
	if e.ss == nil && e.chk == nil {
		panic("core: snapshots require the Space Saving or CHK backend")
	}
	if dst == nil {
		dst = &EngineSnapshot[K]{}
	}
	if dst.src == e && dst.srcEpoch == e.epoch && dst.Packets == e.packets && dst.Weight == e.Weight() {
		return dst
	}
	// Same source, same epoch: per-node summary weights are monotone, so a
	// node whose N matches the previous capture is unchanged and its copy
	// (and mutation generation) can be kept — a query after a small traffic
	// delta then re-merges and re-indexes only the touched nodes.
	sameSrc := dst.src == e && dst.srcEpoch == e.epoch && len(dst.Nodes) == len(e.inst)
	if cap(dst.Nodes) < len(e.inst) {
		nodes := make([]spacesaving.Snapshot[K], len(e.inst))
		copy(nodes, dst.Nodes)
		dst.Nodes = nodes
	}
	dst.Nodes = dst.Nodes[:len(e.inst)]
	for i := range e.inst {
		if e.ss != nil {
			s := e.ss[i]
			if sameSrc && dst.Nodes[i].N == s.N() && dst.Nodes[i].Gen() != 0 {
				continue
			}
			s.SnapshotInto(&dst.Nodes[i])
		} else {
			c := e.chk[i]
			if sameSrc && dst.Nodes[i].N == c.N() && dst.Nodes[i].Gen() != 0 {
				continue
			}
			c.SnapshotInto(&dst.Nodes[i])
		}
	}
	dst.Packets = e.packets
	dst.Weight = e.Weight()
	dst.V, dst.R = int(e.v), e.r
	dst.Epsilon, dst.Delta = e.epsilon, e.delta
	dst.gen = nextSnapGen()
	dst.src, dst.srcEpoch = e, e.epoch
	return dst
}

// Snapshot returns a freshly allocated snapshot of the engine.
func (e *Engine[K]) Snapshot() *EngineSnapshot[K] { return e.SnapshotInto(nil) }

// PublishSnapshot captures the engine's state as an immutable snapshot
// suitable for lock-free publication through an atomic pointer: the returned
// snapshot (and everything it references) is never mutated by a later call,
// so readers may hold it indefinitely while the single producer goroutine
// keeps updating the engine and publishing newer epochs. Reclamation is the
// garbage collector's job — no reference counting, no buffer reuse.
//
// prev is the previously published snapshot (nil for the first publication).
// When the engine is unchanged since prev was captured, prev itself is
// returned, so idle publications allocate nothing and keep every downstream
// generation-keyed query cache warm. Otherwise a new snapshot is allocated
// whose unchanged nodes alias prev's node buffers (per-node summary weights
// are monotone, so an equal N at the same engine epoch means identical
// contents — the same invariant SnapshotInto relies on), and only changed
// nodes are freshly copied. Sharing keeps the per-node mutation generations,
// which is what lets SnapshotMerger and the Extractor re-merge and re-index
// only the touched nodes even though every publication is a fresh pointer.
//
// prev must itself have come from PublishSnapshot (or be nil): passing a
// snapshot that is later rewritten in place (e.g. a SnapshotInto buffer)
// would mutate state aliased by the returned snapshot.
func (e *Engine[K]) PublishSnapshot(prev *EngineSnapshot[K]) *EngineSnapshot[K] {
	if e.ss == nil && e.chk == nil {
		panic("core: snapshots require the Space Saving or CHK backend")
	}
	if prev != nil && prev.src == e && prev.srcEpoch == e.epoch &&
		prev.Packets == e.packets && prev.Weight == e.Weight() {
		return prev
	}
	samePrev := prev != nil && prev.src == e && prev.srcEpoch == e.epoch &&
		len(prev.Nodes) == len(e.inst)
	dst := &EngineSnapshot[K]{Nodes: make([]spacesaving.Snapshot[K], len(e.inst))}
	for i := range e.inst {
		var n uint64
		if e.ss != nil {
			n = e.ss[i].N()
		} else {
			n = e.chk[i].N()
		}
		if samePrev && prev.Nodes[i].N == n && prev.Nodes[i].Gen() != 0 {
			// Unchanged node: alias prev's buffers and keep its generation.
			dst.Nodes[i] = prev.Nodes[i]
			continue
		}
		// Presize the fresh arrays to the node's counter capacity so the
		// copy is three allocations, not O(log n) append growth steps.
		if e.ss != nil {
			nodeCap := e.ss[i].Capacity()
			dst.Nodes[i].Keys = make([]K, 0, nodeCap)
			dst.Nodes[i].Upper = make([]uint64, 0, nodeCap)
			dst.Nodes[i].Lower = make([]uint64, 0, nodeCap)
			e.ss[i].SnapshotInto(&dst.Nodes[i])
		} else {
			nodeCap := e.chk[i].Capacity()
			dst.Nodes[i].Keys = make([]K, 0, nodeCap)
			dst.Nodes[i].Upper = make([]uint64, 0, nodeCap)
			dst.Nodes[i].Lower = make([]uint64, 0, nodeCap)
			e.chk[i].SnapshotInto(&dst.Nodes[i])
		}
	}
	dst.Packets = e.packets
	dst.Weight = e.Weight()
	dst.V, dst.R = int(e.v), e.r
	dst.Epsilon, dst.Delta = e.epsilon, e.delta
	dst.gen = nextSnapGen()
	dst.src, dst.srcEpoch = e, e.epoch
	return dst
}

// Output answers the HHH query from the snapshot, exactly as the engine it
// was taken from would have at capture time: same candidate order, same
// bounds, same V/r scaling and sampling correction, hence bit-identical
// results. It runs on a freshly allocated workspace; hot query paths hold a
// reusable Extractor and call ExtractSnapshot instead.
func (es *EngineSnapshot[K]) Output(dom *hierarchy.Domain[K], theta float64) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("core: theta must be in (0, 1]")
	}
	return NewExtractor(dom).ExtractSnapshot(es, theta)
}

// SuggestTheta returns a reporting threshold tuned from the observed skew:
// the k-th largest conditioned-estimate fraction among the fully specified
// candidates. Fully specified keys are evaluated first by the Output
// procedure, before any HHH exists below them, so their conditioned estimate
// is exactly f̂p+ + correction — the k-th largest of those (the node's Upper
// array is stored in non-ascending order, so this is one array read) divided
// by N is the threshold at which the k heaviest monitored keys still pass.
// When fewer than k keys are monitored the smallest monitored upper bound is
// used (more permissive), and an empty snapshot returns 1. The result is
// clamped to (0, 1], so it is always a valid query threshold.
func (es *EngineSnapshot[K]) SuggestTheta(dom *hierarchy.Domain[K], k int) float64 {
	if k < 1 {
		panic("core: SuggestTheta needs k >= 1")
	}
	if len(es.Nodes) != dom.Size() {
		panic("core: snapshot does not match lattice size")
	}
	n := float64(es.Weight)
	if n == 0 {
		return 1
	}
	sn := &es.Nodes[dom.FullNode()]
	var up uint64
	switch {
	case len(sn.Keys) == 0:
		up = sn.Min
	case k <= len(sn.Upper):
		up = sn.Upper[k-1]
	default:
		up = sn.Upper[len(sn.Upper)-1]
	}
	scale := float64(es.V) / float64(es.R)
	theta := (float64(up)*scale + SamplingCorrection(n, es.V, es.R, es.Delta)) / n
	// Clamp both ends: the correction is non-positive when δ ≥ 0.5 and the
	// fully specified node can be empty, so the raw value may reach 0 or
	// below — floor at one stream unit (θ·N = 1) to keep the promise that
	// the result is always a valid query threshold.
	switch {
	case theta > 1:
		return 1
	case theta*n < 1:
		return 1 / n
	}
	return theta
}

// LoadSnapshot replaces the engine's measurement state with the snapshot's —
// the restore half of snapshot-driven persistence. The engine must use the
// Space Saving backend with the same lattice size, V, R, ε and δ, and each
// node must fit its counter capacity (always true for snapshots of an
// equally configured engine). The update-path RNG is not part of a
// snapshot: a restored engine continues on its own stream, so the paper's
// guarantees carry over but bit-for-bit reproducibility across a restart is
// not preserved.
func (e *Engine[K]) LoadSnapshot(es *EngineSnapshot[K]) error {
	if e.ss == nil && e.chk == nil {
		return errors.New("core: snapshots require the Space Saving or CHK backend")
	}
	if len(es.Nodes) != len(e.inst) {
		return fmt.Errorf("core: snapshot has %d lattice nodes, engine has %d", len(es.Nodes), len(e.inst))
	}
	if es.V != int(e.v) || es.R != e.r {
		return fmt.Errorf("core: snapshot V=%d R=%d, engine V=%d R=%d", es.V, es.R, e.v, e.r)
	}
	if es.Epsilon != e.epsilon || es.Delta != e.delta {
		return fmt.Errorf("core: snapshot ε=%g δ=%g, engine ε=%g δ=%g", es.Epsilon, es.Delta, e.epsilon, e.delta)
	}
	for i := range es.Nodes {
		var nodeCap int
		if e.ss != nil {
			nodeCap = e.ss[i].Capacity()
		} else {
			nodeCap = e.chk[i].Capacity()
		}
		if es.Nodes[i].Len() > nodeCap {
			return fmt.Errorf("core: node %d snapshot has %d keys, engine capacity %d",
				i, es.Nodes[i].Len(), nodeCap)
		}
	}
	for i := range es.Nodes {
		if e.ss != nil {
			e.ss[i].LoadSnapshot(&es.Nodes[i])
		} else if err := e.chk[i].LoadSnapshot(&es.Nodes[i]); err != nil {
			return fmt.Errorf("core: node %d: %w", i, err)
		}
	}
	e.packets = es.Packets
	e.extraW = int64(es.Weight) - int64(es.Packets)
	e.epoch++
	if e.useSkip {
		e.nextSample = e.packets + 1 + e.geo.Next(e.rng)
	}
	return nil
}

// SnapshotMerger folds engine snapshots over disjoint sub-streams into one
// snapshot over their union, retaining all scratch (one spacesaving.Merger
// per node) across calls so a steady-state merge allocates nothing. The
// merged snapshot preserves the Definition 4 bounds per node (see
// spacesaving.Merger), so Theorem 6.17 applies to the union stream with
// N = ΣNᵢ.
type SnapshotMerger[K comparable] struct {
	mergers []spacesaving.Merger[K]

	// Unchanged-input skip: the previous call's destination identity and
	// input generations. A repeat merge of unchanged inputs into the same
	// (untouched) destination is a no-op that keeps the destination's
	// generation, so downstream query caches stay warm. Inputs are matched
	// by generation alone, not pointer identity: a nonzero generation is
	// drawn once and stamped on exactly one capture, so equal generations
	// mean identical contents even across distinct snapshot pointers — this
	// is what lets PublishSnapshot's fresh-pointer-per-epoch publications
	// (which alias unchanged node buffers and keep their generations) reuse
	// the merge. The destination keeps its pointer check because it is
	// written in place. The per-node generations refine the skip: when only
	// some nodes' inputs changed (a small traffic delta between queries),
	// only those nodes are re-merged.
	lastDst        *EngineSnapshot[K]
	lastDstGen     uint64
	lastGen        []uint64
	lastNodeGen    []uint64 // input node generations, input-major: [i*h+node]
	lastDstNodeGen []uint64
}

// Merge folds snaps (in order, which fixes deterministic tie-breaking) into
// dst, reusing dst's buffers; a nil dst allocates. All snapshots must share
// the lattice size and the V and R parameters — the merged counts share one
// V/r scaling. Node capacities may differ; each merged node keeps the
// largest. Panics on mismatched snapshots (a programming error — public
// wrappers validate first).
func (sm *SnapshotMerger[K]) Merge(dst *EngineSnapshot[K], snaps ...*EngineSnapshot[K]) *EngineSnapshot[K] {
	if len(snaps) == 0 {
		panic("core: merge of zero snapshots")
	}
	first := snaps[0]
	h := len(first.Nodes)
	for _, s := range snaps[1:] {
		if len(s.Nodes) != h {
			panic("core: snapshot merge requires a shared lattice")
		}
		if s.V != first.V || s.R != first.R {
			panic("core: snapshot merge requires equal V and R")
		}
	}
	if dst == nil {
		dst = &EngineSnapshot[K]{}
	}
	if sm.unchanged(dst, snaps) {
		return dst
	}
	if cap(dst.Nodes) < h {
		nodes := make([]spacesaving.Snapshot[K], h)
		copy(nodes, dst.Nodes)
		dst.Nodes = nodes
	}
	dst.Nodes = dst.Nodes[:h]
	if cap(sm.mergers) < h {
		sm.mergers = make([]spacesaving.Merger[K], h)
	}
	sm.mergers = sm.mergers[:h]
	// Per-node skip: when this merge repeats the previous call's shape (same
	// destination, untouched since, same input count), a node whose input
	// generations all match the previous call still holds the right merged
	// result — keep it (and its generation) and re-merge only changed nodes.
	// Input pointers are deliberately not compared: generations alone
	// identify content (see the field comment), so republished snapshots
	// sharing unchanged node buffers still hit the skip.
	partial := dst == sm.lastDst && dst.gen == sm.lastDstGen && dst.gen != 0 &&
		len(snaps) == len(sm.lastGen) &&
		len(sm.lastNodeGen) == len(snaps)*h && len(sm.lastDstNodeGen) == h
	if cap(sm.lastNodeGen) < len(snaps)*h {
		sm.lastNodeGen = make([]uint64, len(snaps)*h)
	}
	sm.lastNodeGen = sm.lastNodeGen[:len(snaps)*h]
	if cap(sm.lastDstNodeGen) < h {
		sm.lastDstNodeGen = make([]uint64, h)
	}
	sm.lastDstNodeGen = sm.lastDstNodeGen[:h]
	for node := 0; node < h; node++ {
		if partial && sm.nodeUnchanged(node, h, snaps, dst) {
			continue
		}
		m := &sm.mergers[node]
		m.Reset()
		capacity := 1
		for _, s := range snaps {
			m.Add(&s.Nodes[node])
			capacity = max(capacity, s.Nodes[node].Cap)
		}
		m.MergeInto(&dst.Nodes[node], capacity)
	}
	for i, s := range snaps {
		for node := 0; node < h; node++ {
			sm.lastNodeGen[i*h+node] = s.Nodes[node].Gen()
		}
	}
	for node := 0; node < h; node++ {
		sm.lastDstNodeGen[node] = dst.Nodes[node].Gen()
	}
	dst.Packets, dst.Weight = 0, 0
	for _, s := range snaps {
		dst.Packets += s.Packets
		dst.Weight += s.Weight
	}
	dst.V, dst.R = first.V, first.R
	dst.Epsilon, dst.Delta = first.Epsilon, first.Delta
	dst.gen = nextSnapGen()
	dst.src = nil
	sm.lastDst, sm.lastDstGen = dst, dst.gen
	sm.lastGen = sm.lastGen[:0]
	for _, s := range snaps {
		sm.lastGen = append(sm.lastGen, s.gen)
	}
	return dst
}

// nodeUnchanged reports whether one node's merge inputs (and its slot in the
// destination) are untouched since the merger's previous call.
func (sm *SnapshotMerger[K]) nodeUnchanged(node, h int, snaps []*EngineSnapshot[K], dst *EngineSnapshot[K]) bool {
	if g := dst.Nodes[node].Gen(); g == 0 || g != sm.lastDstNodeGen[node] {
		return false
	}
	for i, s := range snaps {
		if g := s.Nodes[node].Gen(); g == 0 || g != sm.lastNodeGen[i*h+node] {
			return false
		}
	}
	return true
}

// unchanged reports whether this merge would reproduce the merger's previous
// result: same destination (not rewritten by anyone since), every input
// generation unchanged and known. Inputs are matched by generation, not
// pointer — see the field comment.
func (sm *SnapshotMerger[K]) unchanged(dst *EngineSnapshot[K], snaps []*EngineSnapshot[K]) bool {
	if dst != sm.lastDst || dst.gen != sm.lastDstGen || dst.gen == 0 || len(snaps) != len(sm.lastGen) {
		return false
	}
	for i, s := range snaps {
		if s.gen != sm.lastGen[i] || s.gen == 0 {
			return false
		}
	}
	return true
}

// Engine snapshot binary encoding, version 1. Deterministic: equal
// snapshots encode to equal bytes. Layout:
//
//	byte    version (1)
//	uvarint H (number of lattice nodes)
//	uvarint V, uvarint R
//	8 bytes ε (IEEE 754 bits, big endian), 8 bytes δ
//	uvarint packets, uvarint weight
//	H × node snapshot (spacesaving encoding, fixed-width big-endian keys)
const engineSnapVersion = 1

// engineSnapMaxH guards decode against absurd allocations.
const engineSnapMaxH = 1 << 16

// AppendBinary appends the versioned binary encoding of the snapshot to buf.
// It errors when the carrier type K has no registered key codec (the four
// lattice carriers — uint32, uint64, Addr, AddrPair — all do).
func (es *EngineSnapshot[K]) AppendBinary(buf []byte) ([]byte, error) {
	putKey, _, ok := keyCodecFor[K]()
	if !ok {
		return nil, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	buf = append(buf, engineSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(es.Nodes)))
	buf = binary.AppendUvarint(buf, uint64(es.V))
	buf = binary.AppendUvarint(buf, uint64(es.R))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(es.Epsilon))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(es.Delta))
	buf = binary.AppendUvarint(buf, es.Packets)
	buf = binary.AppendUvarint(buf, es.Weight)
	for i := range es.Nodes {
		buf = es.Nodes[i].AppendBinary(buf, putKey)
	}
	return buf, nil
}

// DecodeEngineSnapshot parses one encoded engine snapshot from b and returns
// it with the remaining bytes. All structural invariants are validated (see
// spacesaving snapshot decoding), so the result is safe to merge and query.
func DecodeEngineSnapshot[K comparable](b []byte) (*EngineSnapshot[K], []byte, error) {
	_, getKey, ok := keyCodecFor[K]()
	if !ok {
		return nil, nil, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	if len(b) < 1 {
		return nil, nil, errors.New("core: short engine snapshot")
	}
	if b[0] != engineSnapVersion {
		return nil, nil, fmt.Errorf("core: unknown engine snapshot version %d", b[0])
	}
	b = b[1:]
	var h, v, r uint64
	for _, dst := range []*uint64{&h, &v, &r} {
		val, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errors.New("core: truncated engine snapshot header")
		}
		*dst, b = val, b[w:]
	}
	if h < 1 || h > engineSnapMaxH {
		return nil, nil, fmt.Errorf("core: engine snapshot H=%d out of range", h)
	}
	if v < h || r < 1 {
		return nil, nil, fmt.Errorf("core: engine snapshot has invalid V=%d R=%d for H=%d", v, r, h)
	}
	if len(b) < 16 {
		return nil, nil, errors.New("core: truncated engine snapshot header")
	}
	epsilon := math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	delta := math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	b = b[16:]
	if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) {
		return nil, nil, errors.New("core: engine snapshot ε/δ out of (0, 1)")
	}
	var packets, weight uint64
	for _, dst := range []*uint64{&packets, &weight} {
		val, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errors.New("core: truncated engine snapshot header")
		}
		*dst, b = val, b[w:]
	}
	es := &EngineSnapshot[K]{
		Nodes:   make([]spacesaving.Snapshot[K], h),
		Packets: packets,
		Weight:  weight,
		V:       int(v),
		R:       int(r),
		Epsilon: epsilon,
		Delta:   delta,
		gen:     nextSnapGen(),
	}
	for i := range es.Nodes {
		rest, err := es.Nodes[i].Decode(b, getKey)
		if err != nil {
			return nil, nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		b = rest
	}
	return es, b, nil
}

// keyCodecFor resolves the fixed-width big-endian key codec for the built-in
// lattice carriers at instantiation time (the same trick the Space Saving
// hash resolver uses). ok is false for carriers without a codec.
func keyCodecFor[K comparable]() (putKey func([]byte, K) []byte, getKey func([]byte) (K, []byte, error), ok bool) {
	var put, get any
	switch any(*new(K)).(type) {
	case uint32:
		put = func(b []byte, k uint32) []byte { return binary.BigEndian.AppendUint32(b, k) }
		get = func(b []byte) (uint32, []byte, error) {
			if len(b) < 4 {
				return 0, nil, errors.New("core: truncated key")
			}
			return binary.BigEndian.Uint32(b), b[4:], nil
		}
	case uint64:
		put = func(b []byte, k uint64) []byte { return binary.BigEndian.AppendUint64(b, k) }
		get = func(b []byte) (uint64, []byte, error) {
			if len(b) < 8 {
				return 0, nil, errors.New("core: truncated key")
			}
			return binary.BigEndian.Uint64(b), b[8:], nil
		}
	case hierarchy.Addr:
		put = func(b []byte, k hierarchy.Addr) []byte {
			b = binary.BigEndian.AppendUint64(b, k.Hi)
			return binary.BigEndian.AppendUint64(b, k.Lo)
		}
		get = func(b []byte) (hierarchy.Addr, []byte, error) {
			if len(b) < 16 {
				return hierarchy.Addr{}, nil, errors.New("core: truncated key")
			}
			return hierarchy.Addr{
				Hi: binary.BigEndian.Uint64(b[0:8]),
				Lo: binary.BigEndian.Uint64(b[8:16]),
			}, b[16:], nil
		}
	case hierarchy.AddrPair:
		put = func(b []byte, k hierarchy.AddrPair) []byte {
			b = binary.BigEndian.AppendUint64(b, k.Src.Hi)
			b = binary.BigEndian.AppendUint64(b, k.Src.Lo)
			b = binary.BigEndian.AppendUint64(b, k.Dst.Hi)
			return binary.BigEndian.AppendUint64(b, k.Dst.Lo)
		}
		get = func(b []byte) (hierarchy.AddrPair, []byte, error) {
			if len(b) < 32 {
				return hierarchy.AddrPair{}, nil, errors.New("core: truncated key")
			}
			return hierarchy.AddrPair{
				Src: hierarchy.Addr{Hi: binary.BigEndian.Uint64(b[0:8]), Lo: binary.BigEndian.Uint64(b[8:16])},
				Dst: hierarchy.Addr{Hi: binary.BigEndian.Uint64(b[16:24]), Lo: binary.BigEndian.Uint64(b[24:32])},
			}, b[32:], nil
		}
	default:
		return nil, nil, false
	}
	return put.(func([]byte, K) []byte), get.(func([]byte) (K, []byte, error)), true
}
