package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rhhh/internal/hierarchy"
	"rhhh/internal/spacesaving"
	"rhhh/internal/stats"
)

// EngineSnapshot is an immutable, mergeable copy of an engine's measurement
// state: one Space Saving snapshot per lattice node plus the sampling
// metadata (N, V, R, ε, δ) a query needs. Snapshots are the read-path
// currency — Output, merging, serialization and windowing all consume
// snapshots, so live engines are only ever paused for the O(H·capacity)
// copy in SnapshotInto, never for a query.
type EngineSnapshot[K comparable] struct {
	// Nodes holds one summary snapshot per lattice node, indexed like the
	// engine's instances.
	Nodes []spacesaving.Snapshot[K]
	// Packets is the number of Update calls absorbed; Weight the total
	// stream weight (equal on unitary streams).
	Packets uint64
	Weight  uint64
	// V and R are the sampling parameters in effect (counts scale by V/R).
	V, R int
	// Epsilon and Delta are the configured error and failure probability;
	// Delta determines the sampling correction applied by Output.
	Epsilon, Delta float64
}

// SnapshotInto copies the engine's state into dst, reusing dst's buffers
// (zero allocations once they have grown). A nil dst allocates. Only the
// Space Saving (stream-summary) backend supports snapshots, matching the
// merge path. Returns dst.
func (e *Engine[K]) SnapshotInto(dst *EngineSnapshot[K]) *EngineSnapshot[K] {
	if e.ss == nil {
		panic("core: snapshots require the Space Saving backend")
	}
	if dst == nil {
		dst = &EngineSnapshot[K]{}
	}
	if cap(dst.Nodes) < len(e.ss) {
		nodes := make([]spacesaving.Snapshot[K], len(e.ss))
		copy(nodes, dst.Nodes)
		dst.Nodes = nodes
	}
	dst.Nodes = dst.Nodes[:len(e.ss)]
	for i, s := range e.ss {
		s.SnapshotInto(&dst.Nodes[i])
	}
	dst.Packets = e.packets
	dst.Weight = e.Weight()
	dst.V, dst.R = int(e.v), e.r
	dst.Epsilon, dst.Delta = e.epsilon, e.delta
	return dst
}

// Snapshot returns a freshly allocated snapshot of the engine.
func (e *Engine[K]) Snapshot() *EngineSnapshot[K] { return e.SnapshotInto(nil) }

// snapInstance adapts one node's snapshot to the Instance interface for the
// Extract machinery. Only the read methods are implemented; a key index for
// Bounds is built lazily on first use (most nodes never receive a Bounds
// query — only GLB nodes in two dimensions do).
type snapInstance[K comparable] struct {
	sn  *spacesaving.Snapshot[K]
	idx map[K]int32
}

func (a *snapInstance[K]) Bounds(k K) (uint64, uint64) {
	if a.idx == nil {
		a.idx = make(map[K]int32, len(a.sn.Keys))
		for i, key := range a.sn.Keys {
			a.idx[key] = int32(i)
		}
	}
	if i, ok := a.idx[k]; ok {
		return a.sn.Upper[i], a.sn.Lower[i]
	}
	return a.sn.Min, 0
}

func (a *snapInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	for i, k := range a.sn.Keys {
		fn(k, a.sn.Upper[i], a.sn.Lower[i])
	}
}

func (a *snapInstance[K]) Updates() uint64       { return a.sn.N }
func (a *snapInstance[K]) Increment(K)           { panic("core: snapshot instances are immutable") }
func (a *snapInstance[K]) IncrementBy(K, uint64) { panic("core: snapshot instances are immutable") }
func (a *snapInstance[K]) Reset()                { panic("core: snapshot instances are immutable") }

// Output answers the HHH query from the snapshot, exactly as the engine it
// was taken from would have at capture time: same candidate order, same
// bounds, same V/r scaling and sampling correction, hence bit-identical
// results.
func (es *EngineSnapshot[K]) Output(dom *hierarchy.Domain[K], theta float64) []Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("core: theta must be in (0, 1]")
	}
	if len(es.Nodes) != dom.Size() {
		panic("core: snapshot does not match lattice size")
	}
	n := float64(es.Weight)
	if n == 0 {
		return nil
	}
	adapters := make([]snapInstance[K], len(es.Nodes))
	inst := make([]Instance[K], len(es.Nodes))
	for i := range es.Nodes {
		adapters[i].sn = &es.Nodes[i]
		inst[i] = &adapters[i]
	}
	scale := float64(es.V) / float64(es.R)
	corr := 2 * stats.Z(es.Delta) * math.Sqrt(n*float64(es.V)/float64(es.R))
	return Extract(dom, inst, n, scale, corr, theta)
}

// SnapshotMerger folds engine snapshots over disjoint sub-streams into one
// snapshot over their union, retaining all scratch (one spacesaving.Merger
// per node) across calls so a steady-state merge allocates nothing. The
// merged snapshot preserves the Definition 4 bounds per node (see
// spacesaving.Merger), so Theorem 6.17 applies to the union stream with
// N = ΣNᵢ.
type SnapshotMerger[K comparable] struct {
	mergers []spacesaving.Merger[K]
}

// Merge folds snaps (in order, which fixes deterministic tie-breaking) into
// dst, reusing dst's buffers; a nil dst allocates. All snapshots must share
// the lattice size and the V and R parameters — the merged counts share one
// V/r scaling. Node capacities may differ; each merged node keeps the
// largest. Panics on mismatched snapshots (a programming error — public
// wrappers validate first).
func (sm *SnapshotMerger[K]) Merge(dst *EngineSnapshot[K], snaps ...*EngineSnapshot[K]) *EngineSnapshot[K] {
	if len(snaps) == 0 {
		panic("core: merge of zero snapshots")
	}
	first := snaps[0]
	h := len(first.Nodes)
	for _, s := range snaps[1:] {
		if len(s.Nodes) != h {
			panic("core: snapshot merge requires a shared lattice")
		}
		if s.V != first.V || s.R != first.R {
			panic("core: snapshot merge requires equal V and R")
		}
	}
	if dst == nil {
		dst = &EngineSnapshot[K]{}
	}
	if cap(dst.Nodes) < h {
		nodes := make([]spacesaving.Snapshot[K], h)
		copy(nodes, dst.Nodes)
		dst.Nodes = nodes
	}
	dst.Nodes = dst.Nodes[:h]
	if cap(sm.mergers) < h {
		sm.mergers = make([]spacesaving.Merger[K], h)
	}
	sm.mergers = sm.mergers[:h]
	for node := 0; node < h; node++ {
		m := &sm.mergers[node]
		m.Reset()
		capacity := 1
		for _, s := range snaps {
			m.Add(&s.Nodes[node])
			capacity = max(capacity, s.Nodes[node].Cap)
		}
		m.MergeInto(&dst.Nodes[node], capacity)
	}
	dst.Packets, dst.Weight = 0, 0
	for _, s := range snaps {
		dst.Packets += s.Packets
		dst.Weight += s.Weight
	}
	dst.V, dst.R = first.V, first.R
	dst.Epsilon, dst.Delta = first.Epsilon, first.Delta
	return dst
}

// Engine snapshot binary encoding, version 1. Deterministic: equal
// snapshots encode to equal bytes. Layout:
//
//	byte    version (1)
//	uvarint H (number of lattice nodes)
//	uvarint V, uvarint R
//	8 bytes ε (IEEE 754 bits, big endian), 8 bytes δ
//	uvarint packets, uvarint weight
//	H × node snapshot (spacesaving encoding, fixed-width big-endian keys)
const engineSnapVersion = 1

// engineSnapMaxH guards decode against absurd allocations.
const engineSnapMaxH = 1 << 16

// AppendBinary appends the versioned binary encoding of the snapshot to buf.
// It errors when the carrier type K has no registered key codec (the four
// lattice carriers — uint32, uint64, Addr, AddrPair — all do).
func (es *EngineSnapshot[K]) AppendBinary(buf []byte) ([]byte, error) {
	putKey, _, ok := keyCodecFor[K]()
	if !ok {
		return nil, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	buf = append(buf, engineSnapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(es.Nodes)))
	buf = binary.AppendUvarint(buf, uint64(es.V))
	buf = binary.AppendUvarint(buf, uint64(es.R))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(es.Epsilon))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(es.Delta))
	buf = binary.AppendUvarint(buf, es.Packets)
	buf = binary.AppendUvarint(buf, es.Weight)
	for i := range es.Nodes {
		buf = es.Nodes[i].AppendBinary(buf, putKey)
	}
	return buf, nil
}

// DecodeEngineSnapshot parses one encoded engine snapshot from b and returns
// it with the remaining bytes. All structural invariants are validated (see
// spacesaving snapshot decoding), so the result is safe to merge and query.
func DecodeEngineSnapshot[K comparable](b []byte) (*EngineSnapshot[K], []byte, error) {
	_, getKey, ok := keyCodecFor[K]()
	if !ok {
		return nil, nil, fmt.Errorf("core: no key codec for %T", *new(K))
	}
	if len(b) < 1 {
		return nil, nil, errors.New("core: short engine snapshot")
	}
	if b[0] != engineSnapVersion {
		return nil, nil, fmt.Errorf("core: unknown engine snapshot version %d", b[0])
	}
	b = b[1:]
	var h, v, r uint64
	for _, dst := range []*uint64{&h, &v, &r} {
		val, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errors.New("core: truncated engine snapshot header")
		}
		*dst, b = val, b[w:]
	}
	if h < 1 || h > engineSnapMaxH {
		return nil, nil, fmt.Errorf("core: engine snapshot H=%d out of range", h)
	}
	if v < h || r < 1 {
		return nil, nil, fmt.Errorf("core: engine snapshot has invalid V=%d R=%d for H=%d", v, r, h)
	}
	if len(b) < 16 {
		return nil, nil, errors.New("core: truncated engine snapshot header")
	}
	epsilon := math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	delta := math.Float64frombits(binary.BigEndian.Uint64(b[8:16]))
	b = b[16:]
	if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) {
		return nil, nil, errors.New("core: engine snapshot ε/δ out of (0, 1)")
	}
	var packets, weight uint64
	for _, dst := range []*uint64{&packets, &weight} {
		val, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errors.New("core: truncated engine snapshot header")
		}
		*dst, b = val, b[w:]
	}
	es := &EngineSnapshot[K]{
		Nodes:   make([]spacesaving.Snapshot[K], h),
		Packets: packets,
		Weight:  weight,
		V:       int(v),
		R:       int(r),
		Epsilon: epsilon,
		Delta:   delta,
	}
	for i := range es.Nodes {
		rest, err := es.Nodes[i].Decode(b, getKey)
		if err != nil {
			return nil, nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		b = rest
	}
	return es, b, nil
}

// keyCodecFor resolves the fixed-width big-endian key codec for the built-in
// lattice carriers at instantiation time (the same trick the Space Saving
// hash resolver uses). ok is false for carriers without a codec.
func keyCodecFor[K comparable]() (putKey func([]byte, K) []byte, getKey func([]byte) (K, []byte, error), ok bool) {
	var put, get any
	switch any(*new(K)).(type) {
	case uint32:
		put = func(b []byte, k uint32) []byte { return binary.BigEndian.AppendUint32(b, k) }
		get = func(b []byte) (uint32, []byte, error) {
			if len(b) < 4 {
				return 0, nil, errors.New("core: truncated key")
			}
			return binary.BigEndian.Uint32(b), b[4:], nil
		}
	case uint64:
		put = func(b []byte, k uint64) []byte { return binary.BigEndian.AppendUint64(b, k) }
		get = func(b []byte) (uint64, []byte, error) {
			if len(b) < 8 {
				return 0, nil, errors.New("core: truncated key")
			}
			return binary.BigEndian.Uint64(b), b[8:], nil
		}
	case hierarchy.Addr:
		put = func(b []byte, k hierarchy.Addr) []byte {
			b = binary.BigEndian.AppendUint64(b, k.Hi)
			return binary.BigEndian.AppendUint64(b, k.Lo)
		}
		get = func(b []byte) (hierarchy.Addr, []byte, error) {
			if len(b) < 16 {
				return hierarchy.Addr{}, nil, errors.New("core: truncated key")
			}
			return hierarchy.Addr{
				Hi: binary.BigEndian.Uint64(b[0:8]),
				Lo: binary.BigEndian.Uint64(b[8:16]),
			}, b[16:], nil
		}
	case hierarchy.AddrPair:
		put = func(b []byte, k hierarchy.AddrPair) []byte {
			b = binary.BigEndian.AppendUint64(b, k.Src.Hi)
			b = binary.BigEndian.AppendUint64(b, k.Src.Lo)
			b = binary.BigEndian.AppendUint64(b, k.Dst.Hi)
			return binary.BigEndian.AppendUint64(b, k.Dst.Lo)
		}
		get = func(b []byte) (hierarchy.AddrPair, []byte, error) {
			if len(b) < 32 {
				return hierarchy.AddrPair{}, nil, errors.New("core: truncated key")
			}
			return hierarchy.AddrPair{
				Src: hierarchy.Addr{Hi: binary.BigEndian.Uint64(b[0:8]), Lo: binary.BigEndian.Uint64(b[8:16])},
				Dst: hierarchy.Addr{Hi: binary.BigEndian.Uint64(b[16:24]), Lo: binary.BigEndian.Uint64(b[24:32])},
			}, b[32:], nil
		}
	default:
		return nil, nil, false
	}
	return put.(func([]byte, K) []byte), get.(func([]byte) (K, []byte, error)), true
}
