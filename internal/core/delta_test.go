package core

import (
	"math/rand/v2"
	"testing"
)

func res(node int, key uint64, up, lo, cond float64) Result[uint64] {
	return Result[uint64]{Key: key, Node: node, Upper: up, Lower: lo, Cond: cond}
}

func deltaKinds(d *Delta[uint64]) (adm, ret, upd int) {
	return len(d.Admitted), len(d.Retired), len(d.Updated)
}

func TestDifferBasicTransitions(t *testing.T) {
	df := NewDiffer[uint64]()

	// First set: everything admitted.
	s1 := []Result[uint64]{res(0, 10, 100, 90, 100), res(1, 20, 50, 40, 50)}
	d := df.Diff(s1, 0)
	if adm, ret, upd := deltaKinds(d); adm != 2 || ret != 0 || upd != 0 {
		t.Fatalf("first diff: got %d/%d/%d events, want 2 admitted", adm, ret, upd)
	}

	// Unchanged set: no events, even when the slice is a fresh copy.
	s2 := append([]Result[uint64](nil), s1...)
	if d := df.Diff(s2, 0); !d.Empty() {
		t.Fatalf("unchanged diff emitted events: %+v", d)
	}

	// One update, one retirement, one admission.
	s3 := []Result[uint64]{res(0, 10, 120, 95, 120), res(2, 30, 70, 60, 70)}
	d = df.Diff(s3, 0)
	if adm, ret, upd := deltaKinds(d); adm != 1 || ret != 1 || upd != 1 {
		t.Fatalf("mixed diff: got %d/%d/%d events", adm, ret, upd)
	}
	if d.Admitted[0].Key != 30 || d.Retired[0].Key != 20 || d.Updated[0].Key != 10 {
		t.Fatalf("mixed diff misclassified: %+v", d)
	}
	if d.Updated[0].Upper != 120 {
		t.Fatalf("updated event carries old value %v", d.Updated[0].Upper)
	}
	if d.Retired[0].Upper != 50 {
		t.Fatalf("retired event should carry the last reported value, got %v", d.Retired[0].Upper)
	}
}

func TestDifferHysteresisAgainstLastReported(t *testing.T) {
	df := NewDiffer[uint64]()
	df.Diff([]Result[uint64]{res(0, 1, 100, 90, 100)}, 0)

	// Sub-threshold drift is suppressed...
	if d := df.Diff([]Result[uint64]{res(0, 1, 104, 94, 104)}, 10); !d.Empty() {
		t.Fatalf("sub-threshold change reported: %+v", d)
	}
	// ...but the baseline stays at the last *reported* values, so continued
	// drift accumulates and fires once it crosses the threshold.
	d := df.Diff([]Result[uint64]{res(0, 1, 111, 97, 111)}, 10)
	if adm, ret, upd := deltaKinds(d); adm != 0 || ret != 0 || upd != 1 {
		t.Fatalf("accumulated drift: got %d/%d/%d events", adm, ret, upd)
	}
	if d.Updated[0].Upper != 111 {
		t.Fatalf("update should report current values, got %v", d.Updated[0].Upper)
	}
	if got := df.Reported()[0].Upper; got != 111 {
		t.Fatalf("baseline not refreshed on report: %v", got)
	}
	// A membership change is never suppressed.
	d = df.Diff(nil, 1e9)
	if adm, ret, upd := deltaKinds(d); adm != 0 || ret != 1 || upd != 0 {
		t.Fatalf("retirement suppressed by hysteresis: %d/%d/%d", adm, ret, upd)
	}
	if d.Retired[0].Upper != 111 {
		t.Fatalf("retired should carry last reported value, got %v", d.Retired[0].Upper)
	}
}

// TestDifferReplayRandom drives random result-set sequences through a Differ
// with zero hysteresis and checks the replayed stream reconstructs every set
// exactly — the property the standing-query layer's correctness rests on.
func TestDifferReplayRandom(t *testing.T) {
	type ident struct {
		node int
		key  uint64
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(7, uint64(trial)))
		df := NewDiffer[uint64]()
		replay := map[ident]Result[uint64]{}
		for step := 0; step < 40; step++ {
			// Random set over a small identity universe with random values.
			var cur []Result[uint64]
			seen := map[ident]bool{}
			for n := rng.IntN(12); n > 0; n-- {
				id := ident{node: rng.IntN(3), key: uint64(rng.IntN(8))}
				if seen[id] {
					continue
				}
				seen[id] = true
				cur = append(cur, res(id.node, id.key,
					float64(rng.IntN(1000)), float64(rng.IntN(500)), float64(rng.IntN(1000))))
			}
			d := df.Diff(cur, 0)
			for _, r := range d.Retired {
				delete(replay, ident{r.Node, r.Key})
			}
			for _, r := range d.Admitted {
				replay[ident{r.Node, r.Key}] = r
			}
			for _, r := range d.Updated {
				id := ident{r.Node, r.Key}
				if _, ok := replay[id]; !ok {
					t.Fatalf("trial %d step %d: update for absent %v", trial, step, id)
				}
				replay[id] = r
			}
			if len(replay) != len(cur) {
				t.Fatalf("trial %d step %d: replay has %d entries, set has %d",
					trial, step, len(replay), len(cur))
			}
			for _, r := range cur {
				if got := replay[ident{r.Node, r.Key}]; got != r {
					t.Fatalf("trial %d step %d: replay %+v != set %+v", trial, step, got, r)
				}
			}
		}
	}
}

func TestDifferUnchangedDiffZeroAlloc(t *testing.T) {
	df := NewDiffer[uint64]()
	set := make([]Result[uint64], 0, 64)
	for i := 0; i < 64; i++ {
		set = append(set, res(i%5, uint64(i), float64(1000-i), float64(900-i), float64(1000-i)))
	}
	df.Diff(set, 0)
	if n := testing.AllocsPerRun(100, func() {
		if d := df.Diff(set, 0); !d.Empty() {
			t.Fatal("unchanged diff emitted events")
		}
	}); n != 0 {
		t.Fatalf("unchanged diff allocates %v per run", n)
	}
}

func TestDifferReset(t *testing.T) {
	df := NewDiffer[uint64]()
	set := []Result[uint64]{res(0, 1, 10, 9, 10)}
	df.Diff(set, 0)
	df.Reset()
	d := df.Diff(set, 0)
	if adm, ret, upd := deltaKinds(d); adm != 1 || ret != 0 || upd != 0 {
		t.Fatalf("after Reset: got %d/%d/%d events, want full admit", adm, ret, upd)
	}
}
