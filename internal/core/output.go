package core

import (
	"hash/maphash"
	"math"
	"math/rand/v2"

	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
)

// Result is one HHH prefix produced by the Output procedure, with its
// frequency bounds (Algorithm 1 line 16 prints (p, f̂p−, f̂p+)) and the
// conservative conditioned-frequency estimate that admitted it.
type Result[K comparable] struct {
	// Key is the masked prefix value; Node the lattice node it lives at.
	Key  K
	Node int
	// Upper and Lower bound the prefix frequency: f̂p+ and f̂p−, already
	// scaled to stream units (counts × V/r for RHHH, raw counts for MST).
	Upper, Lower float64
	// Cond is the Ĉp|P estimate (including the sampling correction) that
	// was compared against θN.
	Cond float64
}

// Extractor is a reusable workspace for the paper's Output procedure
// (Algorithm 1 lines 8–21 with the calcPred estimators of Algorithms 2–3).
// It replaces the per-query map bookkeeping the procedure naturally wants —
// admitted prefixes indexed by their generalization at every ancestor node,
// plus per-node membership for the maximality filter — with flat slabs tied
// together by one open-addressing (node, key) index and index-linked
// per-entry lists, the same slab idiom the Space Saving summary uses. All
// scratch (result buffer, entry and list slabs, gSet buffers, GLB domination
// stamps, snapshot bounds indices) is retained across calls, so a warm query
// allocates nothing.
//
// An Extractor is bound to one lattice domain and is not safe for concurrent
// use. Its Extract methods return a slice owned by the Extractor: treat it
// as read-only, valid until the next call on the same Extractor — copy it to
// retain results across queries.
type Extractor[K comparable] struct {
	dom  *hierarchy.Domain[K]
	dims int
	h    int
	mask func(K, int) K
	hash func(K, int32) uint32

	// Static lattice tables: for each node, the other nodes whose pattern
	// generalizes it (genUp, used to fan a new result into its ancestors'
	// byGen lists) and the same set including the node itself (genUpSelf,
	// used by the GLB domination scan).
	genUp     [][]int32
	genUpSelf [][]int32

	// The admitted set P of the in-flight (or, between calls, the previous)
	// query. resEntry[i] is the slab entry of results[i]'s own (node, key).
	results  []Result[K]
	resEntry []int32

	// Entry slab: one entry per (node, key) touched this query — admitted
	// prefixes (flagInP), their generalizations at ancestor nodes (with the
	// index-linked list of admitted descendants that gSet consumes), and
	// seeds carried over from the previous query in incremental mode. The
	// slab is indexed by tab (open addressing, entry+1, 0 = empty) and
	// chained per node through eNext for the incremental tail scan.
	eKey   []K
	eNode  []int32
	eHash  []uint32
	eFlags []uint8
	eHead  []int32 // admitted-descendant list head (element slab index)
	eTail  []int32 // list tail, so lists preserve admission order
	eCount []int32
	eGMark []uint32 // stamp: member of the G set of the current calcPred
	eGWho  []int32  // result index owning the stamp
	eNext  []int32  // next entry at the same node

	tab      []int32
	tabMask  uint32
	nodeHead []int32 // per node: first entry + 1

	// Element slab: the per-entry admitted-descendant lists.
	elRes  []int32
	elNext []int32

	gBuf    []int32 // gSet result scratch
	gRound  uint32
	tailBuf []int32 // incremental tail-scan position scratch

	// Per-call state.
	scale, corr, threshold float64
	curNode                int32
	inst                   []Instance[K]
	snap                   *EngineSnapshot[K]
	visitCb                func(K, uint64, uint64)

	// Snapshot bounds-index cache: per-node key→position tables over the
	// last snapshot's Keys arrays, built lazily (only GLB nodes ever get
	// Bounds queries) and kept valid across queries until the snapshot's
	// generation changes.
	idxSnap *EngineSnapshot[K]
	idxGen  uint64
	nodeIdx []boundsIndex[K]

	// Incremental-query state: the previous result set (the seed), its
	// stream weight, and the identity of the last snapshot answered so an
	// unchanged snapshot at the same θ returns the retained results with no
	// work at all.
	maxGrowth float64
	prevKeys  []K
	prevNodes []int32
	prevN     float64
	prevValid bool
	lastSnap  *EngineSnapshot[K]
	lastGen   uint64
	lastTheta float64
}

const (
	extFlagInP  uint8 = 1 << 0 // entry's (node, key) is in the admitted set
	extFlagSeed uint8 = 1 << 1 // entry seeded from the previous query's result
)

// DefaultMaxGrowth is the default bound on relative stream growth between
// consecutive snapshot queries under which the incremental (seeded) path is
// used; beyond it the extractor falls back to a full scan. Both paths give
// bit-identical output — the bound only decides which evaluation strategy
// pays off.
const DefaultMaxGrowth = 0.25

// NewExtractor builds a reusable extraction workspace over dom.
func NewExtractor[K comparable](dom *hierarchy.Domain[K]) *Extractor[K] {
	h := dom.Size()
	ex := &Extractor[K]{
		dom:       dom,
		dims:      dom.Dims(),
		h:         h,
		mask:      dom.Masker(),
		hash:      extHashFor[K](),
		genUp:     make([][]int32, h),
		genUpSelf: make([][]int32, h),
		tab:       make([]int32, 1024),
		tabMask:   1023,
		nodeHead:  make([]int32, h),
		nodeIdx:   make([]boundsIndex[K], h),
		maxGrowth: DefaultMaxGrowth,
	}
	for node := 0; node < h; node++ {
		for v := 0; v < h; v++ {
			if !dom.NodeGeneralizes(v, node) {
				continue
			}
			ex.genUpSelf[node] = append(ex.genUpSelf[node], int32(v))
			if v != node {
				ex.genUp[node] = append(ex.genUp[node], int32(v))
			}
		}
	}
	ex.visitCb = ex.visit
	return ex
}

// SetMaxGrowth configures the incremental-query growth bound (see
// DefaultMaxGrowth). A negative value disables the seeded path entirely, so
// every changed snapshot takes the full scan; the unchanged-snapshot
// shortcut is unaffected. Output is bit-identical at any setting.
func (ex *Extractor[K]) SetMaxGrowth(g float64) { ex.maxGrowth = g }

// Extract runs the Output procedure over live per-node instances:
//
//	for level ℓ from most specific to most general, for each candidate p at ℓ:
//	    Ĉp|P = f̂p+ + calcPred(p, P) + correction
//	    if Ĉp|P ≥ θ·n: P ← P ∪ {p}
//
// scale converts instance counts to stream units (V/r for RHHH, 1 for MST);
// correction is the sampling slack (2·Z(1−δ)·√(N·V/r) for RHHH, 0 for
// deterministic algorithms); n is the total stream weight.
//
// calcPred subtracts the lower-bound frequencies of p's closest HHH
// descendants G(p|P) (Algorithm 2); in two dimensions it adds back the upper
// bounds of pairwise greatest lower bounds to avoid double counting
// (Algorithm 3).
func (ex *Extractor[K]) Extract(inst []Instance[K], n, scale, correction, theta float64) []Result[K] {
	if len(inst) != ex.dom.Size() {
		panic("core: instance count does not match lattice size")
	}
	ex.inst, ex.snap = inst, nil
	ex.lastSnap = nil // live instances mutate freely; no unchanged shortcut
	out := ex.run(n, scale, correction, theta, false)
	ex.inst = nil
	return out
}

// ExtractSnapshot answers the HHH query from an engine snapshot, exactly as
// the engine it was taken from would have at capture time (same candidate
// order, same bounds, same V/r scaling and sampling correction). The
// per-node bounds indices are cached inside the Extractor across calls; a
// snapshot whose generation is unchanged since the previous call at the same
// θ short-circuits to the retained result, and one whose stream weight moved
// by at most the configured growth bound takes the incremental path seeded
// with the previous result set. All paths return bit-identical output.
func (ex *Extractor[K]) ExtractSnapshot(es *EngineSnapshot[K], theta float64) []Result[K] {
	if len(es.Nodes) != ex.dom.Size() {
		panic("core: snapshot does not match lattice size")
	}
	n := float64(es.Weight)
	if n == 0 {
		return nil
	}
	if es.gen != 0 && ex.lastSnap == es && ex.lastGen == es.gen && ex.lastTheta == theta && ex.prevValid {
		return ex.resultsOrNil()
	}
	scale := float64(es.V) / float64(es.R)
	corr := SamplingCorrection(n, es.V, es.R, es.Delta)
	ex.snap, ex.inst = es, nil
	ex.refreshIndexCache(es)
	incremental := ex.maxGrowth >= 0 && ex.prevValid && ex.prevN > 0 &&
		math.Abs(n-ex.prevN) <= ex.maxGrowth*ex.prevN
	out := ex.run(n, scale, corr, theta, incremental)
	ex.lastSnap, ex.lastGen, ex.lastTheta = es, es.gen, theta
	return out
}

// run is the shared admission loop.
func (ex *Extractor[K]) run(n, scale, correction, theta float64, incremental bool) []Result[K] {
	ex.scale, ex.corr, ex.threshold = scale, correction, theta*n
	ex.resetQuery()
	if incremental {
		ex.seedPrev()
	}
	for _, level := range ex.dom.NodesByLevel() {
		for _, node := range level {
			ex.curNode = int32(node)
			if ex.snap != nil {
				ex.scanSnapshotNode(node, incremental)
			} else {
				ex.inst[node].Candidates(ex.visitCb)
			}
		}
	}
	ex.savePrev(n)
	return ex.resultsOrNil()
}

// resetQuery clears the per-query state, keeping all storage.
func (ex *Extractor[K]) resetQuery() {
	clear(ex.tab)
	clear(ex.nodeHead)
	ex.results = ex.results[:0]
	ex.resEntry = ex.resEntry[:0]
	ex.eKey = ex.eKey[:0]
	ex.eNode = ex.eNode[:0]
	ex.eHash = ex.eHash[:0]
	ex.eFlags = ex.eFlags[:0]
	ex.eHead = ex.eHead[:0]
	ex.eTail = ex.eTail[:0]
	ex.eCount = ex.eCount[:0]
	ex.eGMark = ex.eGMark[:0]
	ex.eGWho = ex.eGWho[:0]
	ex.eNext = ex.eNext[:0]
	ex.elRes = ex.elRes[:0]
	ex.elNext = ex.elNext[:0]
	ex.gRound = 0
}

func (ex *Extractor[K]) resultsOrNil() []Result[K] {
	if len(ex.results) == 0 {
		return nil
	}
	return ex.results
}

// visit evaluates one candidate at the current node (Algorithm 1 lines
// 12–15) and admits it when its conditioned estimate reaches the threshold.
func (ex *Extractor[K]) visit(k K, up, lo uint64) {
	fUp := float64(up) * ex.scale
	fLo := float64(lo) * ex.scale
	cond := fUp + ex.calcPred(k) + ex.corr
	if cond >= ex.threshold {
		ex.admit(k, fUp, fLo, cond)
	}
}

// admit appends the candidate to P and links it into the byGen list of every
// ancestor node, in the ancestors' node order (the list order itself is the
// admission order, which fixes the float summation order downstream).
func (ex *Extractor[K]) admit(k K, fUp, fLo, cond float64) {
	idx := int32(len(ex.results))
	ex.results = append(ex.results, Result[K]{
		Key: k, Node: int(ex.curNode),
		Upper: fUp, Lower: fLo,
		Cond: cond,
	})
	e := ex.entryFor(ex.curNode, k)
	ex.eFlags[e] |= extFlagInP
	ex.resEntry = append(ex.resEntry, e)
	for _, v := range ex.genUp[ex.curNode] {
		ex.pushElem(ex.entryFor(v, ex.mask(k, int(v))), idx)
	}
}

// pushElem appends result idx to entry e's admitted-descendant list.
func (ex *Extractor[K]) pushElem(e, idx int32) {
	el := int32(len(ex.elRes))
	ex.elRes = append(ex.elRes, idx)
	ex.elNext = append(ex.elNext, -1)
	if t := ex.eTail[e]; t >= 0 {
		ex.elNext[t] = el
	} else {
		ex.eHead[e] = el
	}
	ex.eTail[e] = el
	ex.eCount[e]++
}

// calcPred implements Algorithms 2 and 3: the adjustment added to f̂p+ to
// form the conditioned-frequency estimate for the candidate at the current
// node.
func (ex *Extractor[K]) calcPred(pKey K) float64 {
	e := ex.find(ex.curNode, pKey)
	if e < 0 || ex.eCount[e] == 0 {
		return 0
	}
	g := ex.gSet(e)
	r := 0.0
	for _, idx := range g {
		r -= ex.results[idx].Lower
	}
	if ex.dims == 1 || len(g) < 2 {
		return r
	}
	// Two dimensions: add back the pairwise overlaps (inclusion-exclusion),
	// skipping a glb that is itself inside a third element of G(p|P)
	// (Algorithm 3 line 8); missing glbs count as zero (Definition 12).
	//
	// The domination test has two equivalent forms: scan G directly, or look
	// the glb's ancestor positions up in the admitted-set index against the
	// G-membership stamps. The index costs O(ancestors(glb)) ≤ H per pair,
	// so it wins once |G| outgrows the hierarchy — the pre-convergence
	// regime where the old triple loop over G went cubic.
	useIdx := len(g) > ex.h
	round := uint32(0)
	if useIdx {
		ex.gRound++
		round = ex.gRound
		for _, idx := range g {
			me := ex.resEntry[idx]
			ex.eGMark[me] = round
			ex.eGWho[me] = idx
		}
	}
	for i := 0; i < len(g); i++ {
		hi := ex.results[g[i]]
		for j := i + 1; j < len(g); j++ {
			hj := ex.results[g[j]]
			qKey, qNode, ok := ex.dom.GLB(hi.Key, hi.Node, hj.Key, hj.Node)
			if !ok {
				continue
			}
			dominated := false
			if useIdx {
				for _, w := range ex.genUpSelf[qNode] {
					me := ex.find(w, ex.mask(qKey, int(w)))
					if me >= 0 && ex.eGMark[me] == round {
						if who := ex.eGWho[me]; who != g[i] && who != g[j] {
							dominated = true
							break
						}
					}
				}
			} else {
				for t := 0; t < len(g); t++ {
					if t == i || t == j {
						continue
					}
					h3 := ex.results[g[t]]
					if ex.dom.Generalizes(h3.Key, h3.Node, qKey, qNode) {
						dominated = true
						break
					}
				}
			}
			if dominated {
				continue
			}
			r += float64(ex.upperOf(qKey, qNode)) * ex.scale
		}
	}
	return r
}

// gSet computes G(p|P) (Definition 2) for the candidate at the current node
// whose entry is e: the prefixes in P that p properly generalizes, keeping
// only the maximal ones (no other element of P strictly between them and p).
// Returned as result indices in admission order, in ex.gBuf (valid until the
// next gSet call).
func (ex *Extractor[K]) gSet(e int32) []int32 {
	ex.gBuf = ex.gBuf[:0]
	if ex.eCount[e] == 1 {
		ex.gBuf = append(ex.gBuf, ex.elRes[ex.eHead[e]])
		return ex.gBuf
	}
	// Keep only maximal elements: h is dominated when some strictly closer
	// generalization of h (still strictly below p) is already in P. Each
	// intermediate lattice node is tested with one index probe, keeping this
	// O(|desc|·H) instead of O(|desc|²).
	pNode := int(ex.curNode)
	for el := ex.eHead[e]; el >= 0; el = ex.elNext[el] {
		idx := ex.elRes[el]
		h := &ex.results[idx]
		dominated := false
		for w := 0; w < ex.h; w++ {
			if w == pNode || w == h.Node {
				continue
			}
			if !ex.dom.NodeGeneralizes(pNode, w) || !ex.dom.NodeGeneralizes(w, h.Node) {
				continue
			}
			if me := ex.find(int32(w), ex.mask(h.Key, w)); me >= 0 && ex.eFlags[me]&extFlagInP != 0 {
				dominated = true
				break
			}
		}
		if !dominated {
			ex.gBuf = append(ex.gBuf, idx)
		}
	}
	return ex.gBuf
}

// upperOf returns the upper frequency bound of an arbitrary prefix, in raw
// instance units (the caller applies the scale).
func (ex *Extractor[K]) upperOf(k K, node int) uint64 {
	if ex.snap != nil {
		sn := &ex.snap.Nodes[node]
		if pos := ex.keyPos(k, node); pos >= 0 {
			return sn.Upper[pos]
		}
		return sn.Min
	}
	up, _ := ex.inst[node].Bounds(k)
	return up
}

// scanSnapshotNode enumerates one node's candidates from the snapshot. The
// full scan visits every monitored key in stored (non-ascending upper bound)
// order. The incremental scan uses that order: once a key's upper bound
// alone cannot reach the threshold, only keys with at least two admitted
// descendants (a positive add-back needs a pair, Algorithm 3) or seeded from
// the previous result can still matter, and those are fetched directly from
// the node's entry list — every skipped candidate is provably rejected, so
// both scans admit identical sets with identical estimates.
func (ex *Extractor[K]) scanSnapshotNode(node int, incremental bool) {
	sn := &ex.snap.Nodes[node]
	keys := sn.Keys
	if !incremental {
		for i, k := range keys {
			ex.visit(k, sn.Upper[i], sn.Lower[i])
		}
		return
	}
	i := 0
	for ; i < len(keys); i++ {
		if float64(sn.Upper[i])*ex.scale+ex.corr < ex.threshold {
			break
		}
		ex.visit(keys[i], sn.Upper[i], sn.Lower[i])
	}
	if i >= len(keys) {
		return
	}
	ex.tailBuf = ex.tailBuf[:0]
	for e := ex.nodeHead[node] - 1; e >= 0; e = ex.eNext[e] {
		if ex.eCount[e] < 2 && ex.eFlags[e]&extFlagSeed == 0 {
			continue
		}
		if pos := ex.keyPos(ex.eKey[e], node); pos >= int32(i) {
			ex.tailBuf = append(ex.tailBuf, pos)
		}
	}
	// Ascending position restores the reference evaluation order.
	for a := 1; a < len(ex.tailBuf); a++ {
		for b := a; b > 0 && ex.tailBuf[b] < ex.tailBuf[b-1]; b-- {
			ex.tailBuf[b], ex.tailBuf[b-1] = ex.tailBuf[b-1], ex.tailBuf[b]
		}
	}
	for _, pos := range ex.tailBuf {
		ex.visit(keys[pos], sn.Upper[pos], sn.Lower[pos])
	}
}

// seedPrev marks the previous query's admitted prefixes in the entry table,
// so the incremental tail scan re-evaluates them wherever they fall.
func (ex *Extractor[K]) seedPrev() {
	for i, k := range ex.prevKeys {
		ex.eFlags[ex.entryFor(ex.prevNodes[i], k)] |= extFlagSeed
	}
}

// savePrev retains the query's admitted set as the next query's seed.
func (ex *Extractor[K]) savePrev(n float64) {
	ex.prevKeys = ex.prevKeys[:0]
	ex.prevNodes = ex.prevNodes[:0]
	for i := range ex.results {
		ex.prevKeys = append(ex.prevKeys, ex.results[i].Key)
		ex.prevNodes = append(ex.prevNodes, int32(ex.results[i].Node))
	}
	ex.prevN = n
	ex.prevValid = true
}

// find returns the entry of (node, k), or −1.
func (ex *Extractor[K]) find(node int32, k K) int32 {
	h := ex.hash(k, node)
	pos := h & ex.tabMask
	for {
		v := ex.tab[pos]
		if v == 0 {
			return -1
		}
		if e := v - 1; ex.eHash[e] == h && ex.eNode[e] == node && ex.eKey[e] == k {
			return e
		}
		pos = (pos + 1) & ex.tabMask
	}
}

// entryFor returns the entry of (node, k), creating it if absent.
func (ex *Extractor[K]) entryFor(node int32, k K) int32 {
	h := ex.hash(k, node)
	pos := h & ex.tabMask
	for {
		v := ex.tab[pos]
		if v == 0 {
			break
		}
		if e := v - 1; ex.eHash[e] == h && ex.eNode[e] == node && ex.eKey[e] == k {
			return e
		}
		pos = (pos + 1) & ex.tabMask
	}
	e := int32(len(ex.eKey))
	ex.eKey = append(ex.eKey, k)
	ex.eNode = append(ex.eNode, node)
	ex.eHash = append(ex.eHash, h)
	ex.eFlags = append(ex.eFlags, 0)
	ex.eHead = append(ex.eHead, -1)
	ex.eTail = append(ex.eTail, -1)
	ex.eCount = append(ex.eCount, 0)
	ex.eGMark = append(ex.eGMark, 0)
	ex.eGWho = append(ex.eGWho, -1)
	ex.eNext = append(ex.eNext, ex.nodeHead[node]-1)
	ex.nodeHead[node] = e + 1
	ex.tab[pos] = e + 1
	if uint32(len(ex.eKey))*4 >= uint32(len(ex.tab))*3 {
		ex.growTable()
	}
	return e
}

// growTable doubles the open-addressing table and reinserts every entry.
func (ex *Extractor[K]) growTable() {
	n := uint32(len(ex.tab)) * 2
	ex.tab = make([]int32, n)
	ex.tabMask = n - 1
	for e := range ex.eHash {
		pos := ex.eHash[e] & ex.tabMask
		for ex.tab[pos] != 0 {
			pos = (pos + 1) & ex.tabMask
		}
		ex.tab[pos] = int32(e) + 1
	}
}

// boundsIndex is one node's key→position table over a snapshot's Keys array.
type boundsIndex[K comparable] struct {
	tab   []int32 // position + 1; 0 = empty
	mask  uint32
	gen   uint64 // node snapshot generation the index was built from
	built bool
}

// refreshIndexCache invalidates the per-node bounds indices whose node
// content changed since they were built; untouched nodes keep their lazily
// built index even when the snapshot as a whole moved (a partial re-merge
// bumps only the re-merged nodes' generations).
func (ex *Extractor[K]) refreshIndexCache(es *EngineSnapshot[K]) {
	if ex.idxSnap == es && ex.idxGen == es.gen && es.gen != 0 {
		return
	}
	for i := range ex.nodeIdx {
		bi := &ex.nodeIdx[i]
		if g := es.Nodes[i].Gen(); g == 0 || g != bi.gen {
			bi.built = false
		}
	}
	ex.idxSnap, ex.idxGen = es, es.gen
}

// keyPos returns k's position in the current snapshot's node Keys array, or
// −1 when unmonitored, building the node's index on first use.
func (ex *Extractor[K]) keyPos(k K, node int) int32 {
	bi := &ex.nodeIdx[node]
	sn := &ex.snap.Nodes[node]
	if !bi.built {
		ex.buildIndex(bi, int32(node))
	}
	h := ex.hash(k, int32(node))
	pos := h & bi.mask
	for {
		v := bi.tab[pos]
		if v == 0 {
			return -1
		}
		if p := v - 1; sn.Keys[p] == k {
			return p
		}
		pos = (pos + 1) & bi.mask
	}
}

// buildIndex (re)builds one node's bounds index over the node's snapshot
// Keys, reusing the table storage.
func (ex *Extractor[K]) buildIndex(bi *boundsIndex[K], node int32) {
	keys := ex.snap.Nodes[node].Keys
	n := uint32(8)
	for int(n) < 2*len(keys) {
		n <<= 1
	}
	if uint32(cap(bi.tab)) >= n {
		bi.tab = bi.tab[:n]
		clear(bi.tab)
	} else {
		bi.tab = make([]int32, n)
	}
	bi.mask = n - 1
	for i, k := range keys {
		pos := ex.hash(k, node) & bi.mask
		for bi.tab[pos] != 0 {
			pos = (pos + 1) & bi.mask
		}
		bi.tab[pos] = int32(i) + 1
	}
	bi.gen = ex.snap.Nodes[node].Gen()
	bi.built = true
}

// extHashFor resolves the (key, node) hash at instantiation time: integer
// carriers get an inline splitmix64 finalizer, Addr and AddrPair mix their
// words directly, and any other comparable type falls back to hash/maphash.
// Each extractor gets its own random seed; output never depends on the hash.
func extHashFor[K comparable]() func(k K, node int32) uint32 {
	seed := rand.Uint64()
	const phi = 0x9e3779b97f4a7c15
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var fn any
	switch any(*new(K)).(type) {
	case uint32:
		fn = func(k uint32, node int32) uint32 {
			return uint32(mix(seed ^ uint64(k) ^ uint64(node)*phi))
		}
	case uint64:
		fn = func(k uint64, node int32) uint32 {
			return uint32(mix(seed ^ k ^ uint64(node)*phi))
		}
	case hierarchy.Addr:
		fn = func(k hierarchy.Addr, node int32) uint32 {
			return uint32(mix(mix(seed^k.Hi) ^ k.Lo ^ uint64(node)*phi))
		}
	case hierarchy.AddrPair:
		fn = func(k hierarchy.AddrPair, node int32) uint32 {
			h := mix(seed ^ k.Src.Hi)
			h = mix(h ^ k.Src.Lo)
			h = mix(h ^ k.Dst.Hi)
			return uint32(mix(h ^ k.Dst.Lo ^ uint64(node)*phi))
		}
	default:
		ms := maphash.MakeSeed()
		return func(k K, node int32) uint32 {
			return uint32(maphash.Comparable(ms, k) ^ uint64(node)*phi)
		}
	}
	return fn.(func(k K, node int32) uint32)
}

// SamplingCorrection returns RHHH's conservative sampling slack, the term
// added to every conditioned estimate in the Output procedure:
// 2·Z(1−δ)·√(n·V/r).
func SamplingCorrection(n float64, v, r int, delta float64) float64 {
	return 2 * stats.Z(delta) * math.Sqrt(n*float64(v)/float64(r))
}

// Extract runs the Output procedure on a freshly allocated workspace — the
// convenience entry point for one-shot queries (the deterministic baselines
// use it). Hot query paths hold an Extractor and reuse it instead.
func Extract[K comparable](dom *hierarchy.Domain[K], inst []Instance[K], n, scale, correction, theta float64) []Result[K] {
	return NewExtractor(dom).Extract(inst, n, scale, correction, theta)
}
