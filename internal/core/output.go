package core

import "rhhh/internal/hierarchy"

// Result is one HHH prefix produced by the Output procedure, with its
// frequency bounds (Algorithm 1 line 16 prints (p, f̂p−, f̂p+)) and the
// conservative conditioned-frequency estimate that admitted it.
type Result[K comparable] struct {
	// Key is the masked prefix value; Node the lattice node it lives at.
	Key  K
	Node int
	// Upper and Lower bound the prefix frequency: f̂p+ and f̂p−, already
	// scaled to stream units (counts × V/r for RHHH, raw counts for MST).
	Upper, Lower float64
	// Cond is the Ĉp|P estimate (including the sampling correction) that
	// was compared against θN.
	Cond float64
}

// Extract runs the paper's Output procedure (Algorithm 1 lines 8–21) over
// per-node instances:
//
//	for level ℓ from most specific to most general, for each candidate p at ℓ:
//	    Ĉp|P = f̂p+ + calcPred(p, P) + correction
//	    if Ĉp|P ≥ θ·n: P ← P ∪ {p}
//
// scale converts instance counts to stream units (V/r for RHHH, 1 for MST);
// correction is the sampling slack (2·Z(1−δ)·√(N·V/r) for RHHH, 0 for
// deterministic algorithms); n is the total stream weight.
//
// calcPred subtracts the lower-bound frequencies of p's closest HHH
// descendants G(p|P) (Algorithm 2); in two dimensions it adds back the upper
// bounds of pairwise greatest lower bounds to avoid double counting
// (Algorithm 3).
func Extract[K comparable](dom *hierarchy.Domain[K], inst []Instance[K], n, scale, correction, theta float64) []Result[K] {
	if len(inst) != dom.Size() {
		panic("core: instance count does not match lattice size")
	}
	var results []Result[K]
	// byGen[v] indexes admitted prefixes by their generalization at node v:
	// gSet(p at v) is then a single map lookup instead of a scan over P,
	// keeping Output near-linear in the number of candidates even while the
	// pre-convergence output is large. inP holds per-node membership for the
	// maximality filter.
	byGen := make([]map[K][]int, dom.Size())
	inP := make([]map[K]bool, dom.Size())
	for i := range byGen {
		byGen[i] = make(map[K][]int)
		inP[i] = make(map[K]bool)
	}
	threshold := theta * n

	for _, level := range dom.NodesByLevel() {
		for _, node := range level {
			inst[node].Candidates(func(k K, up, lo uint64) {
				fUp := float64(up) * scale
				fLo := float64(lo) * scale
				cond := fUp + calcPred(dom, inst, byGen, inP, results, k, node, scale) + correction
				if cond >= threshold {
					idx := len(results)
					results = append(results, Result[K]{
						Key: k, Node: node,
						Upper: fUp, Lower: fLo,
						Cond: cond,
					})
					inP[node][k] = true
					for v := 0; v < dom.Size(); v++ {
						if v != node && dom.NodeGeneralizes(v, node) {
							gk := dom.Mask(k, v)
							byGen[v][gk] = append(byGen[v][gk], idx)
						}
					}
				}
			})
		}
	}
	return results
}

// calcPred implements Algorithms 2 and 3: the adjustment added to f̂p+ to
// form the conditioned-frequency estimate.
func calcPred[K comparable](
	dom *hierarchy.Domain[K],
	inst []Instance[K],
	byGen []map[K][]int,
	inP []map[K]bool,
	results []Result[K],
	pKey K, pNode int,
	scale float64,
) float64 {
	g := gSet(dom, byGen, inP, results, pKey, pNode)
	if len(g) == 0 {
		return 0
	}
	r := 0.0
	for _, idx := range g {
		r -= results[idx].Lower
	}
	if dom.Dims() == 1 {
		return r
	}
	// Two dimensions: add back the pairwise overlaps (inclusion-exclusion),
	// skipping a glb that is itself inside a third element of G(p|P)
	// (Algorithm 3 line 8); missing glbs count as zero (Definition 12).
	for i := 0; i < len(g); i++ {
		hi := results[g[i]]
		for j := i + 1; j < len(g); j++ {
			hj := results[g[j]]
			qKey, qNode, ok := dom.GLB(hi.Key, hi.Node, hj.Key, hj.Node)
			if !ok {
				continue
			}
			dominated := false
			for t := 0; t < len(g); t++ {
				if t == i || t == j {
					continue
				}
				h3 := results[g[t]]
				if dom.Generalizes(h3.Key, h3.Node, qKey, qNode) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			qUp, _ := inst[qNode].Bounds(qKey)
			r += float64(qUp) * scale
		}
	}
	return r
}

// gSet computes G(p|P) (Definition 2): the prefixes in P that p properly
// generalizes, keeping only the maximal ones (no other element of P strictly
// between them and p). Returned as indices into results.
func gSet[K comparable](
	dom *hierarchy.Domain[K],
	byGen []map[K][]int,
	inP []map[K]bool,
	results []Result[K],
	pKey K, pNode int,
) []int {
	desc := byGen[pNode][pKey]
	if len(desc) <= 1 {
		return desc
	}
	// Keep only maximal elements: h is dominated when some strictly closer
	// generalization of h (still strictly below p) is already in P. Testing
	// each intermediate lattice node with a membership lookup makes this
	// O(|desc|·H) instead of O(|desc|²).
	out := make([]int, 0, len(desc))
	for _, hIdx := range desc {
		h := results[hIdx]
		dominated := false
		for w := 0; w < len(inP); w++ {
			if w == pNode || w == h.Node {
				continue
			}
			if !dom.NodeGeneralizes(pNode, w) || !dom.NodeGeneralizes(w, h.Node) {
				continue
			}
			if inP[w][dom.Mask(h.Key, w)] {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, hIdx)
		}
	}
	return out
}
