package core_test

import (
	"bytes"
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// TestSnapshotOutputMatchesEngineOutput: the snapshot query path must be
// bit-identical to the live engine's Output — same candidates, same bounds,
// same correction — across dimensions and sampling modes.
func TestSnapshotOutputMatchesEngineOutput(t *testing.T) {
	t.Run("1D", func(t *testing.T) {
		dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 3})
		r := fastrand.New(4)
		for i := 0; i < 150000; i++ {
			eng.Update(uint32(r.Uint64n(1 << 14)))
		}
		for _, theta := range []float64{0.01, 0.1, 0.5} {
			a := eng.Output(theta)
			b := eng.Snapshot().Output(dom, theta)
			if len(a) != len(b) {
				t.Fatalf("theta=%v: %d vs %d results", theta, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("theta=%v result %d: %+v vs %+v", theta, i, a[i], b[i])
				}
			}
		}
	})
	t.Run("2D-V>H", func(t *testing.T) {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, V: 10 * dom.Size(), Seed: 5})
		r := fastrand.New(6)
		for i := 0; i < 400000; i++ {
			eng.Update(gen2D(r))
		}
		a := eng.Output(0.05)
		b := eng.Snapshot().Output(dom, 0.05)
		if len(a) != len(b) {
			t.Fatalf("%d vs %d results", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}

// TestSnapshotIsStable: a snapshot must not change when the engine keeps
// updating after capture.
func TestSnapshotIsStable(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 1})
	r := fastrand.New(2)
	for i := 0; i < 50000; i++ {
		eng.Update(uint32(r.Uint64n(1 << 10)))
	}
	snap := eng.Snapshot()
	before := snap.Output(dom, 0.1)
	for i := 0; i < 50000; i++ {
		eng.Update(uint32(r.Uint64n(1 << 10)))
	}
	after := snap.Output(dom, 0.1)
	if len(before) != len(after) {
		t.Fatalf("snapshot changed under live updates: %d vs %d results", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot result %d changed under live updates", i)
		}
	}
}

// TestReseedReproducesFreshEngine: Reset+Reseed(s) must make an engine
// behave bit-identically to a freshly constructed engine with Seed s, in
// both the per-draw (V=H) and skip-sampling (V>H) modes.
func TestReseedReproducesFreshEngine(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	for _, v := range []int{0, 10 * dom.Size()} {
		cfg := core.Config{Epsilon: 0.05, Delta: 0.05, V: v, Seed: 77}
		fresh := core.New(dom, cfg)
		reused := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, V: v, Seed: 1234})
		// Dirty the reused engine with unrelated traffic, then rewind.
		r := fastrand.New(8)
		for i := 0; i < 30000; i++ {
			reused.Update(uint32(r.Uint64n(1 << 16)))
		}
		reused.Reset()
		reused.Reseed(77)

		r2 := fastrand.New(9)
		for i := 0; i < 100000; i++ {
			k := uint32(r2.Uint64n(1 << 12))
			fresh.Update(k)
			reused.Update(k)
		}
		a := fresh.Output(0.05)
		b := reused.Output(0.05)
		if len(a) != len(b) {
			t.Fatalf("V=%d: %d vs %d results", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("V=%d result %d: %+v vs %+v", v, i, a[i], b[i])
			}
		}
		for node := 0; node < dom.Size(); node++ {
			if fresh.NodeUpdates(node) != reused.NodeUpdates(node) {
				t.Fatalf("V=%d node %d: %d vs %d updates — sampling diverged",
					v, node, fresh.NodeUpdates(node), reused.NodeUpdates(node))
			}
		}
	}
}

// TestSnapshotMergerMatchesMergeOutput: merging snapshots then querying
// equals MergeOutput over the live engines (which itself runs the snapshot
// path; this pins the reusable-buffer variant to the one-shot variant).
func TestSnapshotMergerMatchesMergeOutput(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	engines := make([]*core.Engine[uint64], 3)
	for i := range engines {
		engines[i] = core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: uint64(i + 1)})
	}
	r := fastrand.New(10)
	for i := 0; i < 200000; i++ {
		engines[i%3].Update(gen2D(r))
	}
	want := core.MergeOutput(0.05, engines...)

	var sm core.SnapshotMerger[uint64]
	var merged core.EngineSnapshot[uint64]
	snaps := make([]*core.EngineSnapshot[uint64], len(engines))
	bufs := make([]core.EngineSnapshot[uint64], len(engines))
	for round := 0; round < 2; round++ { // second round exercises buffer reuse
		for i, e := range engines {
			snaps[i] = e.SnapshotInto(&bufs[i])
		}
		sm.Merge(&merged, snaps...)
		got := merged.Output(dom, 0.05)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d vs %d results", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d result %d differs", round, i)
			}
		}
	}
}

func TestEngineSnapshotCodecRoundTrip(t *testing.T) {
	t.Run("uint32", func(t *testing.T) {
		dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 1})
		r := fastrand.New(11)
		for i := 0; i < 60000; i++ {
			eng.Update(uint32(r.Uint64n(1 << 12)))
		}
		roundTrip(t, dom, eng)
	})
	t.Run("uint64", func(t *testing.T) {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, Seed: 2})
		r := fastrand.New(12)
		for i := 0; i < 60000; i++ {
			eng.Update(gen2D(r))
		}
		roundTrip(t, dom, eng)
	})
	t.Run("Addr", func(t *testing.T) {
		dom := hierarchy.NewIPv6OneDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 3})
		r := fastrand.New(13)
		for i := 0; i < 60000; i++ {
			eng.Update(hierarchy.Addr{Hi: r.Uint64n(1 << 20), Lo: r.Uint64()})
		}
		roundTrip(t, dom, eng)
	})
	t.Run("AddrPair", func(t *testing.T) {
		dom := hierarchy.NewIPv6TwoDim(hierarchy.Bytes)
		eng := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1, Seed: 4})
		r := fastrand.New(14)
		for i := 0; i < 60000; i++ {
			eng.Update(hierarchy.AddrPair{
				Src: hierarchy.Addr{Hi: r.Uint64n(1 << 16)},
				Dst: hierarchy.Addr{Hi: r.Uint64n(1 << 16)},
			})
		}
		roundTrip(t, dom, eng)
	})
}

func roundTrip[K comparable](t *testing.T, dom *hierarchy.Domain[K], eng *core.Engine[K]) {
	t.Helper()
	es := eng.Snapshot()
	enc, err := es.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, rest, err := core.DecodeEngineSnapshot[K](enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	re, err := dec.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encoding is not bit-identical")
	}
	a := es.Output(dom, 0.1)
	b := dec.Output(dom, 0.1)
	if len(a) != len(b) {
		t.Fatalf("decoded snapshot query differs: %d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decoded snapshot result %d differs", i)
		}
	}
	// Truncations are rejected.
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, _, err := core.DecodeEngineSnapshot[K](enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestEngineLoadSnapshotRoundtrip: LoadSnapshot must restore an equally
// configured engine to a state whose queries are bit-identical to the
// source's at capture time, and the restored engine must keep counting from
// the snapshot's N. This is the restore half of snapshot-driven persistence
// (cmd/hhh and cmd/vswitchd checkpoints).
func TestEngineLoadSnapshotRoundtrip(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	cfg := core.Config{Epsilon: 0.02, Delta: 0.05, V: 2 * dom.Size(), Seed: 9}
	src := core.New(dom, cfg)
	r := fastrand.New(21)
	for i := 0; i < 120000; i++ {
		src.UpdateWeighted(gen2D(r), 1+r.Uint64n(3))
	}
	// Ship through the wire format, as the checkpoint files do.
	buf, err := src.Snapshot().AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	es, rest, err := core.DecodeEngineSnapshot[uint64](buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}

	dst := core.New(dom, cfg)
	if err := dst.LoadSnapshot(es); err != nil {
		t.Fatal(err)
	}
	if dst.N() != src.N() || dst.Weight() != src.Weight() {
		t.Fatalf("restored N=%d W=%d, want N=%d W=%d", dst.N(), dst.Weight(), src.N(), src.Weight())
	}
	for _, theta := range []float64{0.02, 0.1} {
		a := src.Output(theta)
		b := dst.Output(theta)
		if len(a) != len(b) {
			t.Fatalf("theta=%v: %d vs %d results", theta, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("theta=%v result %d: %+v vs %+v", theta, i, a[i], b[i])
			}
		}
	}
	// The restored engine keeps absorbing traffic on top of the snapshot.
	before := dst.Weight()
	for i := 0; i < 1000; i++ {
		dst.Update(gen2D(r))
	}
	if dst.Weight() != before+1000 {
		t.Fatalf("weight after restore+update = %d, want %d", dst.Weight(), before+1000)
	}

	// Config mismatches are rejected.
	other := core.New(dom, core.Config{Epsilon: 0.05, Delta: 0.05, V: 2 * dom.Size(), Seed: 9})
	if err := other.LoadSnapshot(es); err == nil {
		t.Fatal("ε mismatch accepted")
	}
	vMismatch := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 9})
	if err := vMismatch.LoadSnapshot(es); err == nil {
		t.Fatal("V mismatch accepted")
	}
}
