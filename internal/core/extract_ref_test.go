package core_test

import (
	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// extractMapRef is the reference Output implementation the flat Extractor
// replaced (mirroring the mergeMapSort precedent in internal/spacesaving): a
// per-query rebuild of the Algorithm 1–3 bookkeeping on Go maps — admitted
// prefixes indexed by their generalization at every node (byGen), per-node
// membership for the maximality filter (inP) — with the literal O(|G|³)
// triple loop for the Algorithm 3 line 8 domination check. It is kept
// test-only as the oracle for the differential tests: the Extractor must be
// bit-identical to it on every input.
func extractMapRef[K comparable](dom *hierarchy.Domain[K], inst []core.Instance[K], n, scale, correction, theta float64) []core.Result[K] {
	if len(inst) != dom.Size() {
		panic("core_test: instance count does not match lattice size")
	}
	var results []core.Result[K]
	byGen := make([]map[K][]int, dom.Size())
	inP := make([]map[K]bool, dom.Size())
	for i := range byGen {
		byGen[i] = make(map[K][]int)
		inP[i] = make(map[K]bool)
	}
	threshold := theta * n

	for _, level := range dom.NodesByLevel() {
		for _, node := range level {
			inst[node].Candidates(func(k K, up, lo uint64) {
				fUp := float64(up) * scale
				fLo := float64(lo) * scale
				cond := fUp + calcPredMapRef(dom, inst, byGen, inP, results, k, node, scale) + correction
				if cond >= threshold {
					idx := len(results)
					results = append(results, core.Result[K]{
						Key: k, Node: node,
						Upper: fUp, Lower: fLo,
						Cond: cond,
					})
					inP[node][k] = true
					for v := 0; v < dom.Size(); v++ {
						if v != node && dom.NodeGeneralizes(v, node) {
							gk := dom.Mask(k, v)
							byGen[v][gk] = append(byGen[v][gk], idx)
						}
					}
				}
			})
		}
	}
	return results
}

// calcPredMapRef is the reference Algorithms 2 and 3 estimator.
func calcPredMapRef[K comparable](
	dom *hierarchy.Domain[K],
	inst []core.Instance[K],
	byGen []map[K][]int,
	inP []map[K]bool,
	results []core.Result[K],
	pKey K, pNode int,
	scale float64,
) float64 {
	g := gSetMapRef(dom, byGen, inP, results, pKey, pNode)
	if len(g) == 0 {
		return 0
	}
	r := 0.0
	for _, idx := range g {
		r -= results[idx].Lower
	}
	if dom.Dims() == 1 {
		return r
	}
	for i := 0; i < len(g); i++ {
		hi := results[g[i]]
		for j := i + 1; j < len(g); j++ {
			hj := results[g[j]]
			qKey, qNode, ok := dom.GLB(hi.Key, hi.Node, hj.Key, hj.Node)
			if !ok {
				continue
			}
			dominated := false
			for t := 0; t < len(g); t++ {
				if t == i || t == j {
					continue
				}
				h3 := results[g[t]]
				if dom.Generalizes(h3.Key, h3.Node, qKey, qNode) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			qUp, _ := inst[qNode].Bounds(qKey)
			r += float64(qUp) * scale
		}
	}
	return r
}

// gSetMapRef is the reference G(p|P) computation (Definition 2).
func gSetMapRef[K comparable](
	dom *hierarchy.Domain[K],
	byGen []map[K][]int,
	inP []map[K]bool,
	results []core.Result[K],
	pKey K, pNode int,
) []int {
	desc := byGen[pNode][pKey]
	if len(desc) <= 1 {
		return desc
	}
	out := make([]int, 0, len(desc))
	for _, hIdx := range desc {
		h := results[hIdx]
		dominated := false
		for w := 0; w < len(inP); w++ {
			if w == pNode || w == h.Node {
				continue
			}
			if !dom.NodeGeneralizes(pNode, w) || !dom.NodeGeneralizes(w, h.Node) {
				continue
			}
			if inP[w][dom.Mask(h.Key, w)] {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, hIdx)
		}
	}
	return out
}
