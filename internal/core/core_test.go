package core_test

import (
	"math"
	"testing"

	"rhhh/internal/core"
	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/sketch"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// gen2D produces skewed two-dimensional traffic with heavy aggregates at
// several lattice levels: a heavy flow, a heavy source /24 spread over
// destinations, a heavy destination /16 spread over sources, and a uniform
// tail.
func gen2D(r *fastrand.Source) uint64 {
	switch r.Uint64n(10) {
	case 0, 1, 2: // 30%: single heavy flow
		return hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	case 3, 4: // 20%: heavy source /24, random destinations
		return hierarchy.Pack2D(ip4(30, 3, 3, byte(r.Uint64n(256))), uint32(r.Uint64()))
	case 5, 6: // 20%: heavy destination /16, random sources
		return hierarchy.Pack2D(uint32(r.Uint64()), ip4(40, 4, byte(r.Uint64n(256)), byte(r.Uint64n(256))))
	default: // 30%: uniform tail
		return hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64()))
	}
}

func refs[K comparable](rs []core.Result[K]) []exact.PrefixRef[K] {
	out := make([]exact.PrefixRef[K], len(rs))
	for i, p := range rs {
		out[i] = exact.PrefixRef[K]{Key: p.Key, Node: p.Node}
	}
	return out
}

func TestRHHHFindsPlantedAggregates(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 1})
	r := fastrand.New(2)
	n := int(eng.Psi()) + 100000
	for i := 0; i < n; i++ {
		eng.Update(gen2D(r))
	}
	if !eng.Converged() {
		t.Fatal("engine should report convergence past ψ")
	}
	out := eng.Output(0.1)

	find := func(srcBits, dstBits int, key uint64) bool {
		node, _ := dom.NodeByBits(srcBits, dstBits)
		for _, p := range out {
			if p.Node == node && p.Key == dom.Mask(key, node) {
				return true
			}
		}
		return false
	}
	flow := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	if !find(32, 32, flow) {
		t.Error("heavy flow (30%) missing from output")
	}
	src24 := hierarchy.Pack2D(ip4(30, 3, 3, 0), 0)
	if !find(24, 0, src24) {
		t.Error("heavy source /24 aggregate (20%) missing from output")
	}
	dst16 := hierarchy.Pack2D(0, ip4(40, 4, 0, 0))
	if !find(0, 16, dst16) {
		t.Error("heavy destination /16 aggregate (20%) missing from output")
	}
}

func TestRHHHCoverageAfterConvergence(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 3})
	oracle := exact.New(dom)
	r := fastrand.New(4)
	n := int(eng.Psi()) + 200000
	for i := 0; i < n; i++ {
		k := gen2D(r)
		eng.Update(k)
		oracle.Add(k)
	}
	out := eng.Output(0.1)
	v, evaluated := oracle.CoverageViolations(refs(out), 0.1)
	if evaluated == 0 {
		t.Fatal("nothing evaluated")
	}
	// Coverage holds per prefix with probability 1−δ; the planted heavy
	// aggregates are few, so any violation at all is suspicious.
	if v > 0 {
		t.Fatalf("%d/%d coverage violations after convergence", v, evaluated)
	}
}

func TestRHHHAccuracyAfterConvergence(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.05, Seed: 5})
	oracle := exact.New(dom)
	r := fastrand.New(6)
	n := int(eng.Psi()) + 200000
	for i := 0; i < n; i++ {
		k := gen2D(r)
		eng.Update(k)
		oracle.Add(k)
	}
	out := eng.Output(0.1)
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	// ε = εa + εs = 2·Epsilon for the combined guarantee (Theorem 6.6).
	bound := 2 * 0.02 * float64(eng.N())
	bad := 0
	for _, p := range out {
		f := float64(oracle.Frequency(p.Key, p.Node))
		if math.Abs(p.Upper-f) > bound {
			bad++
		}
	}
	if bad > (len(out)+9)/10 {
		t.Fatalf("%d/%d outputs outside the εN accuracy bound", bad, len(out))
	}
}

func TestMSTDeterministicGuarantees(t *testing.T) {
	// MST (scale 1, no correction) must satisfy accuracy and coverage
	// deterministically — via the shared Extract machinery.
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	inst := core.SpaceSavingInstances(dom, 200) // ε = 0.005
	oracle := exact.New(dom)
	r := fastrand.New(7)
	const n = 50000
	for i := 0; i < n; i++ {
		k := gen2D(r)
		for node := 0; node < dom.Size(); node++ {
			inst[node].Increment(dom.Mask(k, node))
		}
		oracle.Add(k)
	}
	out := core.Extract(dom, inst, float64(n), 1, 0, 0.1)
	v, _ := oracle.CoverageViolations(refs(out), 0.1)
	if v != 0 {
		t.Fatalf("deterministic baseline has %d coverage violations", v)
	}
	for _, p := range out {
		f := float64(oracle.Frequency(p.Key, p.Node))
		if p.Upper < f {
			t.Fatalf("upper bound %v below true frequency %v for %s",
				p.Upper, f, dom.Format(p.Key, p.Node))
		}
		if p.Upper-f > 0.005*n {
			t.Fatalf("overestimate beyond εN for %s: %v vs %v",
				dom.Format(p.Key, p.Node), p.Upper, f)
		}
		if p.Lower > f {
			t.Fatalf("lower bound %v above true frequency %v", p.Lower, f)
		}
	}
}

func TestOutputOneDim(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	inst := core.SpaceSavingInstances(dom, 1000)
	// 40% of traffic under 7.7.7.* spread across hosts, rest uniform.
	r := fastrand.New(8)
	const n = 20000
	for i := 0; i < n; i++ {
		var k uint32
		if r.Uint64n(10) < 4 {
			k = ip4(7, 7, 7, byte(r.Uint64n(256)))
		} else {
			k = uint32(r.Uint64())
		}
		for node := 0; node < dom.Size(); node++ {
			inst[node].Increment(dom.Mask(k, node))
		}
	}
	out := core.Extract(dom, inst, float64(n), 1, 0, 0.2)
	n24, _ := dom.NodeByBits(24, 0)
	found := false
	for _, p := range out {
		if p.Node == n24 && p.Key == ip4(7, 7, 7, 0) {
			found = true
		}
		if p.Node == dom.FullNode() {
			t.Errorf("no fully specified item should pass θ=20%%: %s", dom.Format(p.Key, p.Node))
		}
	}
	if !found {
		t.Fatal("7.7.7.* missing")
	}
	// Ancestors of 7.7.7.* must not be admitted: their conditioned
	// frequency (≈0.6·uniform share) is below θ.
	n16, _ := dom.NodeByBits(16, 0)
	for _, p := range out {
		if p.Node == n16 && p.Key == ip4(7, 7, 0, 0) {
			t.Error("7.7.* admitted despite covered traffic")
		}
	}
}

func TestCalcPredTwoDimInclusionExclusion(t *testing.T) {
	// Construct the classic 2D overlap: heavy (s,*) and (*,d) whose traffic
	// is the SAME flows (s→d). Without the glb add-back, (*,*) would be
	// counted negative twice and suppressed; with it, the estimate of (*,*)
	// must not go below zero traffic it actually adds.
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	inst := core.SpaceSavingInstances(dom, 1000)
	r := fastrand.New(9)
	const n = 30000
	src := ip4(1, 1, 1, 1)
	dst := ip4(2, 2, 2, 2)
	for i := 0; i < n; i++ {
		var k uint64
		if r.Uint64n(2) == 0 {
			k = hierarchy.Pack2D(src, dst) // 50%: s→d (heavy in both dims)
		} else {
			k = hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64()))
		}
		for node := 0; node < dom.Size(); node++ {
			inst[node].Increment(dom.Mask(k, node))
		}
	}
	out := core.Extract(dom, inst, float64(n), 1, 0, 0.3)
	// The flow itself is the only θ=30% HHH below the root.
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	full := dom.FullNode()
	foundFlow := false
	for _, p := range out {
		if p.Node == full && p.Key == hierarchy.Pack2D(src, dst) {
			foundFlow = true
		}
	}
	if !foundFlow {
		t.Fatal("heavy flow missing")
	}
	// The root's conditioned estimate must reflect the glb add-back: its
	// Cond should be ≥ the uncovered uniform traffic (~50%) and it should
	// be admitted (≥30%); a sign error in calcPred would push it negative.
	root := dom.RootNode()
	foundRoot := false
	for _, p := range out {
		if p.Node == root {
			foundRoot = true
			if p.Cond < 0.4*n {
				t.Errorf("root conditioned estimate %v unexpectedly low", p.Cond)
			}
		}
	}
	if !foundRoot {
		t.Error("(*,*) missing despite 50% uncovered traffic")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	mk := func() []core.Result[uint32] {
		eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 42})
		r := fastrand.New(43)
		for i := 0; i < 100000; i++ {
			eng.Update(uint32(r.Uint64n(1 << 16)))
		}
		return eng.Output(0.05)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestVScalesSampling(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	h := dom.Size()
	eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, V: 10 * h, Seed: 44})
	r := fastrand.New(45)
	const n = 100000
	for i := 0; i < n; i++ {
		eng.Update(uint32(r.Uint64()))
	}
	// With V = 10H, roughly 10% of packets update some node; the root node
	// instance sees ≈ n/V packets, and scaling by V recovers N.
	_, upRoot := eng.EstimateFrequency(0, dom.RootNode())
	want := float64(n)
	if upRoot < 0.7*want || upRoot > 1.3*want {
		t.Fatalf("root estimate %v not within 30%% of N=%v under V=10H", upRoot, want)
	}
	if eng.V() != 10*h {
		t.Fatalf("V = %d", eng.V())
	}
}

func TestPsiMatchesPaperOrder(t *testing.T) {
	// §4.1: with ε = δ = 0.001 and 2D bytes, RHHH's bound is ≈1e8 packets
	// and 10-RHHH's ≈1e9.
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	e1 := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1})
	e10 := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, V: 250, Seed: 1})
	if e1.Psi() < 5e7 || e1.Psi() > 2e8 {
		t.Errorf("ψ(RHHH) = %v, want ≈1e8", e1.Psi())
	}
	if e10.Psi() < 5e8 || e10.Psi() > 2e9 {
		t.Errorf("ψ(10-RHHH) = %v, want ≈1e9", e10.Psi())
	}
	if r := e10.Psi() / e1.Psi(); math.Abs(r-10) > 1e-9 {
		t.Errorf("ψ ratio %v, want exactly 10", r)
	}
}

func TestMultiUpdateSpeedsConvergence(t *testing.T) {
	// Corollary 6.8: r independent updates divide ψ by r.
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	e1 := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 1})
	e4 := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, R: 4, Seed: 1})
	if r := e1.Psi() / e4.Psi(); math.Abs(r-4) > 1e-9 {
		t.Fatalf("ψ ratio with R=4 is %v, want 4", r)
	}
	// And the estimates stay unbiased: feed a constant-key stream.
	r := fastrand.New(50)
	const n = 200000
	k := hierarchy.Pack2D(ip4(1, 2, 3, 4), ip4(5, 6, 7, 8))
	for i := 0; i < n; i++ {
		if r.Uint64n(2) == 0 {
			e4.Update(k)
		} else {
			e4.Update(hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64())))
		}
	}
	_, up := e4.EstimateFrequency(dom.Mask(k, dom.FullNode()), dom.FullNode())
	if up < 0.4*n || up > 0.62*n {
		t.Fatalf("R=4 estimate %v for a 50%% flow of %d packets", up, n)
	}
}

func TestUpdateWeighted(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 11, Backend: core.HeapBackend})
	r := fastrand.New(12)
	var total uint64
	k := ip4(1, 1, 1, 1)
	for i := 0; i < 100000; i++ {
		w := 1 + r.Uint64n(3)
		total += w
		if r.Uint64n(2) == 0 {
			eng.UpdateWeighted(k, w)
		} else {
			eng.UpdateWeighted(uint32(r.Uint64()), w)
		}
	}
	if eng.Weight() != total {
		t.Fatalf("Weight = %d, want %d", eng.Weight(), total)
	}
	_, up := eng.EstimateFrequency(k, dom.FullNode())
	if up < 0.35*float64(total) || up > 0.65*float64(total) {
		t.Fatalf("weighted estimate %v for a 50%%-weight flow (total %d)", up, total)
	}
}

func TestCountMinBackend(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	inst := core.CountMinInstances(dom, 0.01, 0.01, func(k uint32) uint64 {
		return sketch.Hash64(uint64(k))
	})
	cfg := core.Config{Epsilon: 0.01, Delta: 0.05, Seed: 13}
	eng := core.NewWithInstances(dom, cfg, inst)
	r := fastrand.New(14)
	n := int(eng.Psi()) + 100000
	for i := 0; i < n; i++ {
		var k uint32
		if r.Uint64n(10) < 3 {
			k = ip4(6, 6, 6, byte(r.Uint64n(4)))
		} else {
			k = uint32(r.Uint64())
		}
		eng.Update(k)
	}
	out := eng.Output(0.15)
	n24, _ := dom.NodeByBits(24, 0)
	found := false
	for _, p := range out {
		if p.Node == n24 && p.Key == ip4(6, 6, 6, 0) {
			found = true
		}
	}
	if !found {
		t.Fatal("Count-Min backend missed the 30% /24 aggregate")
	}
}

func TestResetClearsState(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 15})
	for i := 0; i < 1000; i++ {
		eng.Update(ip4(1, 1, 1, 1))
	}
	eng.Reset()
	if eng.N() != 0 || eng.Weight() != 0 {
		t.Fatal("Reset left counters")
	}
	if out := eng.Output(0.5); out != nil {
		t.Fatalf("Output after Reset = %v", out)
	}
}

func TestConfigValidation(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cases := []core.Config{
		{Epsilon: 0, Delta: 0.1},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 1.5, Delta: 0.1},
		{Epsilon: 0.1, Delta: 0.1, V: 2}, // V < H
		{Epsilon: 0.1, Delta: 0.1, R: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic: %+v", i, cfg)
				}
			}()
			core.New(dom, cfg)
		}()
	}
}

func TestOutputPanicsOnBadTheta(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.1, Delta: 0.1})
	for _, theta := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta %v did not panic", theta)
				}
			}()
			eng.Output(theta)
		}()
	}
}

func BenchmarkRHHHUpdate2D(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1})
	r := fastrand.New(2)
	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = gen2D(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Update(keys[i&8191])
	}
}

func BenchmarkMSTStyleUpdate2D(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	inst := core.SpaceSavingInstances(dom, 1000)
	r := fastrand.New(2)
	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = gen2D(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&8191]
		for node := 0; node < dom.Size(); node++ {
			inst[node].Increment(dom.Mask(k, node))
		}
	}
}
