package core

// Test-only hooks for the sampling equivalence tests.

// ForcePerDrawSampling disables geometric skip sampling, forcing the
// historical one-uniform-draw-per-packet path even when V > H. Used to
// compare the two samplers' node-hit distributions.
func (e *Engine[K]) ForcePerDrawSampling() { e.useSkip = false }

// NodeUpdates returns the number of updates node's instance has absorbed.
func (e *Engine[K]) NodeUpdates(node int) uint64 { return e.inst[node].Updates() }

// UsesSkipSampling reports whether the engine runs the geometric skip path.
func (e *Engine[K]) UsesSkipSampling() bool { return e.useSkip }

// UsesConcreteBackend reports whether the update path calls the concrete
// Space Saving summaries without interface dispatch.
func (e *Engine[K]) UsesConcreteBackend() bool { return e.ss != nil }

// ForceKernelApply disables the small-state direct apply so tests can pin
// the windowed resolve/apply kernel on lattices whose state would otherwise
// be applied directly.
func (e *Engine[K]) ForceKernelApply() { e.directApply = false }

// UsesDirectApply reports whether batches bypass the two-phase kernel.
func (e *Engine[K]) UsesDirectApply() bool { return e.directApply }

// UsesCHKBackend reports whether the update path calls the concrete CHK
// sketches without interface dispatch.
func (e *Engine[K]) UsesCHKBackend() bool { return e.chk != nil }

// Gen exposes the snapshot's mutation generation to the publication and
// merger-skip tests.
func (es *EngineSnapshot[K]) Gen() uint64 { return es.gen }
