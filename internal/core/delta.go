package core

import "math"

// Delta is the change between two consecutive result sets of a standing
// query: the prefixes that entered the HHH set, the ones that left it, and
// the surviving ones whose estimates moved past the update hysteresis.
// Replaying a delta stream onto the initial (empty) set — insert Admitted,
// remove Retired, overwrite Updated — reconstructs every reported set
// exactly (bit-identical to the full query output when the hysteresis is
// zero; see Differ).
type Delta[K comparable] struct {
	// Admitted holds results present now but absent from the last reported
	// set; Retired results absent now, carrying their last reported
	// estimates; Updated surviving results whose estimates changed (new
	// values).
	Admitted []Result[K]
	Retired  []Result[K]
	Updated  []Result[K]
}

// Empty reports whether the delta carries no events.
func (d *Delta[K]) Empty() bool {
	return len(d.Admitted) == 0 && len(d.Retired) == 0 && len(d.Updated) == 0
}

// Differ turns a standing query's consecutive full result sets into deltas.
// It retains the last reported set in a flat slab indexed by one
// open-addressing (node, key) table — the Extractor's index idiom — and all
// scratch (the double-buffered slabs, the event buffers, the seen stamps) is
// reused across calls, so a tick whose set did not change performs no
// allocation and no state rewrite at all.
//
// Updated events are gated by a count-change hysteresis: a surviving result
// is reported (and the retained copy refreshed) only when its frequency
// bounds moved at least minDelta away from the last values actually
// reported, so estimator jitter cannot spam subscribers while sustained
// drift still surfaces once it accumulates past the threshold. With
// minDelta == 0 any field change is reported and the retained set tracks the
// query output bit for bit.
//
// A Differ is not safe for concurrent use. The slices inside the returned
// Delta are owned by the Differ and valid until its next Diff call.
type Differ[K comparable] struct {
	hash func(K, int32) uint32

	// state[live] is the last reported set; the other buffer is the build
	// target when a diff changes membership or values. tab indexes the live
	// buffer (entry+1, 0 = empty), seen carries per-entry round stamps.
	state [2][]Result[K]
	live  int
	tab   []int32
	mask  uint32
	seen  []uint32
	round uint32
	cls   []int32 // per-candidate classification scratch (see Diff)
	out   Delta[K]
}

// NewDiffer builds a reusable delta workspace.
func NewDiffer[K comparable]() *Differ[K] {
	return &Differ[K]{hash: extHashFor[K](), tab: make([]int32, 64), mask: 63}
}

// Len returns the size of the last reported set (the entries the differ is
// tracking for the next Diff).
func (d *Differ[K]) Len() int { return len(d.state[d.live]) }

// cls sentinel values; non-negative entries are live-slab indices of
// survivors kept at their last reported values.
const (
	diffAdmitted int32 = -1
	diffUpdated  int32 = -2
)

// Diff computes the events between the retained last-reported set and cur,
// then folds cur into the retained set (survivors under the hysteresis keep
// their last reported values). cur's (node, key) pairs must be distinct —
// extraction output always is. The first call reports the whole set as
// Admitted.
func (d *Differ[K]) Diff(cur []Result[K], minDelta float64) *Delta[K] {
	d.out.Admitted = d.out.Admitted[:0]
	d.out.Retired = d.out.Retired[:0]
	d.out.Updated = d.out.Updated[:0]
	prev := d.state[d.live]
	d.round++
	if d.round == 0 { // stamp wrap: stale stamps could alias the new round
		clear(d.seen)
		d.round = 1
	}
	if cap(d.cls) < len(cur) {
		d.cls = make([]int32, len(cur))
	}
	d.cls = d.cls[:len(cur)]
	for i := range cur {
		r := &cur[i]
		e := d.find(prev, int32(r.Node), r.Key)
		if e < 0 {
			d.cls[i] = diffAdmitted
			d.out.Admitted = append(d.out.Admitted, *r)
			continue
		}
		d.seen[e] = d.round
		if d.changed(&prev[e], r, minDelta) {
			d.cls[i] = diffUpdated
			d.out.Updated = append(d.out.Updated, *r)
		} else {
			d.cls[i] = e
		}
	}
	// With no admissions and no updates, equal sizes mean every retained
	// entry was matched — no retirements either, and the retained set (and
	// its index) is already exactly right: the common idle tick ends here.
	if len(d.out.Admitted) == 0 && len(d.out.Updated) == 0 && len(cur) == len(prev) {
		return &d.out
	}
	for e := range prev {
		if d.seen[e] != d.round {
			d.out.Retired = append(d.out.Retired, prev[e])
		}
	}
	if d.out.Empty() {
		return &d.out
	}
	// Fold: the next retained set has cur's membership, with unreported
	// survivors kept at their last reported values (the hysteresis baseline).
	next := d.state[1-d.live][:0]
	for i := range cur {
		if e := d.cls[i]; e >= 0 {
			next = append(next, prev[e])
		} else {
			next = append(next, cur[i])
		}
	}
	d.state[1-d.live] = next
	d.live = 1 - d.live
	d.reindex(next)
	return &d.out
}

// Reported returns the retained last-reported set — what a subscriber that
// replayed every delta holds. Read-only, valid until the next Diff.
func (d *Differ[K]) Reported() []Result[K] { return d.state[d.live] }

// Reset forgets the retained set; the next Diff reports everything as
// Admitted. Storage is kept.
func (d *Differ[K]) Reset() {
	d.state[d.live] = d.state[d.live][:0]
	clear(d.tab)
}

// changed reports whether a surviving result must be re-reported given the
// hysteresis: with minDelta == 0 any field change counts (the retained set
// then tracks the query bit for bit); otherwise either frequency bound must
// have moved at least minDelta from the last reported value.
func (d *Differ[K]) changed(old, cur *Result[K], minDelta float64) bool {
	if minDelta <= 0 {
		return *old != *cur
	}
	return math.Abs(cur.Upper-old.Upper) >= minDelta ||
		math.Abs(cur.Lower-old.Lower) >= minDelta
}

// find returns the live-slab index of (node, k), or −1.
func (d *Differ[K]) find(prev []Result[K], node int32, k K) int32 {
	h := d.hash(k, node)
	pos := h & d.mask
	for {
		v := d.tab[pos]
		if v == 0 {
			return -1
		}
		if e := v - 1; int32(prev[e].Node) == node && prev[e].Key == k {
			return e
		}
		pos = (pos + 1) & d.mask
	}
}

// reindex rebuilds the (node, key) table and the stamp array over the new
// live set, reusing storage.
func (d *Differ[K]) reindex(set []Result[K]) {
	n := uint32(64)
	for int(n) < 2*len(set) {
		n <<= 1
	}
	if uint32(cap(d.tab)) >= n {
		d.tab = d.tab[:n]
		clear(d.tab)
	} else {
		d.tab = make([]int32, n)
	}
	d.mask = n - 1
	for i := range set {
		pos := d.hash(set[i].Key, int32(set[i].Node)) & d.mask
		for d.tab[pos] != 0 {
			pos = (pos + 1) & d.mask
		}
		d.tab[pos] = int32(i) + 1
	}
	if cap(d.seen) < len(set) {
		d.seen = make([]uint32, len(set))
	}
	d.seen = d.seen[:len(set)]
}
