package chk

import (
	"testing"

	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

// TestExactBelowContention: while the distinct key set fits in the table,
// every count is exact, nothing decays, and the unmonitored bound is 0.
func TestExactBelowContention(t *testing.T) {
	s := New[uint64](64, 1)
	r := fastrand.New(7)
	want := make(map[uint64]uint64)
	for i := 0; i < 5000; i++ {
		k := r.Uint64n(40)
		s.Increment(k)
		want[k]++
	}
	if s.N() != 5000 {
		t.Fatalf("N = %d, want 5000", s.N())
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	if s.MinCount() != 0 {
		t.Fatalf("MinCount = %d, want 0 before any displacement", s.MinCount())
	}
	for k, f := range want {
		up, lo := s.Bounds(k)
		if up != f || lo != f {
			t.Fatalf("Bounds(%d) = (%d, %d), want exact %d", k, up, lo, f)
		}
	}
	if up, lo := s.Bounds(999); up != 0 || lo != 0 {
		t.Fatalf("unmonitored Bounds = (%d, %d), want (0, 0)", up, lo)
	}
}

// TestUnderestimateInvariant: a monitored key's count never exceeds its true
// frequency — every unit on a slot came from an update of the key owning it,
// and decay only subtracts. This is the structural invariant that makes
// reports at θ precision-1: est ≥ θN implies f ≥ θN.
func TestUnderestimateInvariant(t *testing.T) {
	s := New[uint64](128, 3)
	r := fastrand.New(11)
	truth := make(map[uint64]uint64)
	for i := 0; i < 200_000; i++ {
		// Heavy-tailed-ish: small keys frequent, long uniform tail.
		var k uint64
		if r.Uint64n(4) == 0 {
			k = r.Uint64n(32)
		} else {
			k = 1000 + r.Uint64n(1<<16)
		}
		w := 1 + r.Uint64n(3)
		s.IncrementBy(k, w)
		truth[k] += w
	}
	viol := 0
	s.ForEach(func(k uint64, count uint64) {
		if count > truth[k] {
			viol++
			t.Errorf("key %d: estimate %d exceeds true frequency %d", k, count, truth[k])
		}
	})
	if viol > 0 {
		t.Fatalf("%d over-estimates — CHK counts must under-estimate", viol)
	}
	if !s.displace {
		t.Fatal("stream was built to overflow the table but nothing decayed")
	}
	if s.MinCount() == 0 {
		t.Fatal("MinCount = 0 after displacement")
	}
}

// TestHeavyRecallAndEnvelope measures CHK against the internal/exact oracle:
// every key with true frequency ≥ θN must be monitored (recall 1 at θ), its
// estimate must sit within an ε·N envelope below the true frequency, and —
// by the under-estimate invariant — everything reported at θ is a true
// positive (precision 1).
func TestHeavyRecallAndEnvelope(t *testing.T) {
	const (
		theta   = 0.01
		epsilon = 0.005 // empirical envelope; measured slack is logged
		nHeavy  = 24
		total   = 200_000
	)
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	oracle := exact.New(dom)
	s := New[uint32](1024, 5)
	r := fastrand.New(17)
	heavies := make([]uint32, nHeavy)
	for i := range heavies {
		heavies[i] = uint32(0x0a000000 + i) // 10.0.0.x
	}
	for i := 0; i < total; i++ {
		var k uint32
		if r.Uint64n(10) < 6 { // 60% of the stream on the planted heavies
			k = heavies[r.Uint64n(nHeavy)]
		} else {
			k = uint32(r.Uint64n(1 << 24)) // background tail
		}
		s.Increment(k)
		oracle.Add(k)
	}
	truth := oracle.Frequencies(dom.FullNode())
	n := float64(s.N())
	thresh := uint64(theta * n)
	envelope := uint64(epsilon * n)

	var maxErr uint64
	missed := 0
	for k, f := range truth {
		if f < thresh {
			continue
		}
		up, lo := s.Bounds(k)
		if lo == 0 {
			missed++
			t.Errorf("heavy key %08x (f=%d ≥ %d) not monitored", k, f, thresh)
			continue
		}
		if up > f {
			t.Errorf("key %08x: estimate %d exceeds true %d", k, up, f)
		}
		if err := f - up; err > envelope {
			t.Errorf("key %08x: error %d exceeds ε·N = %d (f=%d, est=%d)",
				k, err, envelope, f, up)
		} else if err > maxErr {
			maxErr = err
		}
	}
	if missed > 0 {
		t.Fatalf("recall at θ=%g: missed %d heavy keys", theta, missed)
	}
	// Precision at θ: every key the sketch reports above the threshold must
	// be a true heavy. Under-estimation makes this structural; verify anyway.
	s.ForEach(func(k uint32, count uint64) {
		if count >= thresh && truth[k] < thresh {
			t.Errorf("false positive at θ: key %08x est %d but true %d",
				k, count, truth[k])
		}
	})
	t.Logf("recall 1.0 at θ=%g over %d heavies; max error %d = %.4f·N (envelope ε·N = %d)",
		theta, nHeavy, maxErr, float64(maxErr)/n, envelope)
}

// TestWeightedMatchesUnitSemantics: the geometric skip-ahead in the weighted
// miss path must preserve the heavy-key recall of the unit path — a heavy
// key arriving in bursts of weight w is found just like w single packets.
func TestWeightedMatchesUnitSemantics(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	oracle := exact.New(dom)
	s := New[uint32](256, 9)
	r := fastrand.New(23)
	for i := 0; i < 60_000; i++ {
		var k uint32
		var w uint64
		if r.Uint64n(10) < 4 {
			k = uint32(r.Uint64n(8)) // 8 planted heavies
			w = 1 + r.Uint64n(64)    // bursty weights
		} else {
			k = 0x100 + uint32(r.Uint64n(1<<20))
			w = 1 + r.Uint64n(8)
		}
		s.IncrementBy(k, w)
		oracle.AddWeighted(k, w)
	}
	truth := oracle.Frequencies(dom.FullNode())
	thresh := uint64(0.02 * float64(s.N()))
	for k, f := range truth {
		if f < thresh {
			continue
		}
		up, lo := s.Bounds(k)
		if lo == 0 {
			t.Errorf("weighted heavy %08x (f=%d) not monitored", k, f)
		} else if up > f {
			t.Errorf("weighted key %08x over-estimated: %d > %d", k, up, f)
		}
	}
	if s.N() != oracle.N() {
		t.Fatalf("N = %d, oracle N = %d", s.N(), oracle.N())
	}
}

// TestDeterminism: equal seeds and equal update sequences give bit-identical
// state for integer key types; a different seed diverges.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) *Sketch[uint64] {
		s := New[uint64](64, seed)
		r := fastrand.New(31)
		for i := 0; i < 50_000; i++ {
			s.IncrementBy(r.Uint64n(5000), 1+r.Uint64n(4))
		}
		return s
	}
	a, b := run(42), run(42)
	encA := a.Snapshot().AppendBinary(nil, putU64)
	encB := b.Snapshot().AppendBinary(nil, putU64)
	if string(encA) != string(encB) {
		t.Fatal("same seed, same stream: snapshots differ")
	}
	c := run(43)
	if encC := c.Snapshot().AppendBinary(nil, putU64); string(encA) == string(encC) {
		t.Fatal("different seeds produced identical snapshots (suspicious)")
	}
}

// TestResetReseedReproduces: Reset + Reseed replays a fresh sketch bit for
// bit, mirroring the engine's Reset/Reseed contract.
func TestResetReseedReproduces(t *testing.T) {
	const seed = 77
	feed := func(s *Sketch[uint64]) {
		r := fastrand.New(13)
		for i := 0; i < 30_000; i++ {
			s.Increment(r.Uint64n(3000))
		}
	}
	s := New[uint64](32, seed)
	feed(s)
	first := s.Snapshot().AppendBinary(nil, putU64)
	s.Reset()
	s.Reseed(seed)
	feed(s)
	second := s.Snapshot().AppendBinary(nil, putU64)
	if string(first) != string(second) {
		t.Fatal("Reset+Reseed did not reproduce the first run")
	}
}

// TestForEachOrder: descending count, ascending slot id on ties — the same
// deterministic order the Stream-Summary's ForEach guarantees.
func TestForEachOrder(t *testing.T) {
	s := New[uint64](64, 2)
	r := fastrand.New(19)
	for i := 0; i < 20_000; i++ {
		s.Increment(r.Uint64n(200))
	}
	var counts []uint64
	seen := make(map[uint64]bool)
	s.ForEach(func(k uint64, count uint64) {
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		if up, _ := s.Bounds(k); up != count {
			t.Fatalf("ForEach count %d disagrees with Bounds %d for key %d", count, up, k)
		}
		counts = append(counts, count)
	})
	if len(counts) != s.Len() {
		t.Fatalf("visited %d keys, Len = %d", len(counts), s.Len())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("counts not descending at %d: %d after %d", i, counts[i], counts[i-1])
		}
	}
}

// TestZeroWeight: a zero-weight update touches nothing, including the RNG.
func TestZeroWeight(t *testing.T) {
	s := New[uint64](8, 4)
	for i := uint64(0); i < 100; i++ {
		s.IncrementBy(i, 2) // overflow the table so decay state matters
	}
	before := s.Snapshot().AppendBinary(nil, putU64)
	s.IncrementBy(12345, 0)
	after := s.Snapshot().AppendBinary(nil, putU64)
	if string(before) != string(after) {
		t.Fatal("zero-weight update changed the sketch")
	}
	if s.N() != 200 {
		t.Fatalf("N = %d, want 200", s.N())
	}
}

// TestCapacityRounding: capacity rounds up to the 4-way power-of-two
// geometry, never below the request, minimum two buckets.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{1, 8}, {8, 8}, {9, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
	} {
		if got := New[uint64](tc.req, 0).Capacity(); got != tc.want {
			t.Errorf("New(%d).Capacity() = %d, want %d", tc.req, got, tc.want)
		}
	}
}
